// Quickstart: boot a simulated Xeon Phi node, run one hard real-time
// periodic thread, and inspect its timing statistics.
//
//   build/examples/quickstart
//
// The thread asks for (phi = 1 ms, tau = 250 us, sigma = 100 us): starting
// 1 ms after admission, it is guaranteed at least 100 us of CPU every
// 250 us.  Admission control accepts it (utilization 0.4 against the 0.79
// available under the default 99%/10%/10% configuration of section 5.1),
// and the eager-EDF local scheduler then meets every deadline despite SMIs.
#include <cstdio>
#include <memory>

#include "rt/system.hpp"

int main() {
  using namespace hrt;

  // A 256-CPU Xeon Phi 7210 model with default scheduler configuration.
  System sys;
  sys.boot();
  std::printf("booted %u CPUs; TSC calibrated to within %lld cycles\n",
              sys.machine().num_cpus(),
              (long long)sys.kernel().calibration().max_abs_residual());

  // The thread's "code" is a Behavior: first request real-time constraints,
  // then compute in 40 us chunks forever (the scheduler slices this into
  // 100 us of execution per 250 us period).
  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(250), sim::micros(100)));
        }
        return nk::Action::compute(sim::micros(40));
      });
  nk::Thread* t = sys.spawn("worker", std::move(behavior), /*cpu=*/1);

  // Advance the simulated machine by one second of wall-clock time.
  sys.run_for(sim::seconds(1));

  std::printf("admitted: %s\n", t->last_admit_ok ? "yes" : "no");
  std::printf("arrivals:    %llu\n", (unsigned long long)t->rt.arrivals);
  std::printf("completions: %llu\n", (unsigned long long)t->rt.completions);
  std::printf("misses:      %llu\n", (unsigned long long)t->rt.misses);
  std::printf("cpu time:    %.3f ms (utilization %.1f%%)\n",
              (double)t->total_cpu_ns / 1e6,
              100.0 * (double)t->total_cpu_ns / (double)sim::seconds(1));
  const hrt::hw::SmiStats smi = sys.machine().smi().stats();
  std::printf("SMIs endured: %llu (stole %.1f us of machine time)\n",
              (unsigned long long)smi.count, (double)smi.total_stolen_ns / 1e3);
  return t->rt.misses == 0 ? 0 : 1;
}
