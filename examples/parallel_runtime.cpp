// A parallel run-time fused with the kernel (the paper's HRT premise):
// a persistent worker team executes parallel-for jobs, first as an
// ordinary (non-real-time) run-time, then admitted as a hard real-time
// group at a chosen CPU share.
//
//   build/examples/parallel_runtime
#include <cstdio>

#include "runtime/team.hpp"

using namespace hrt;

namespace {

// An irregular workload: cost ramps quadratically with the index, the
// classic case where static loop splitting leaves one worker holding the
// bag and guided self-scheduling evens it out.
sim::Nanos skewed_cost(std::uint64_t i) {
  return sim::Nanos{300} + static_cast<sim::Nanos>(i * i / 400);
}

}  // namespace

int main() {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(10);
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();

  std::printf("8-worker team, 2000-iteration irregular parallel-for\n\n");
  std::printf("%-34s %12s %12s\n", "configuration", "time (ms)", "imbalance");

  // 1. Plain run-time, static loop split.
  {
    nrt::TeamRuntime team(sys, nrt::TeamRuntime::Options{.workers = 8});
    nrt::Job& job =
        team.parallel_for(2000, skewed_cost, nrt::Dispatch::kStatic, 25);
    team.wait(job);
    std::printf("%-34s %12.3f %12.2f\n", "aperiodic, static split",
                (double)job.makespan() / 1e6, job.imbalance());
  }

  // 2. Plain run-time, guided self-scheduling.
  {
    nrt::TeamRuntime team(sys, nrt::TeamRuntime::Options{.workers = 8});
    nrt::Job& job =
        team.parallel_for(2000, skewed_cost, nrt::Dispatch::kGuided, 25);
    team.wait(job);
    std::printf("%-34s %12.3f %12.2f\n", "aperiodic, guided chunks",
                (double)job.makespan() / 1e6, job.imbalance());
  }

  // 3. The same run-time admitted as a hard real-time group at 50%: the
  //    job takes ~2x longer — commensurate with the share — and the
  //    machine's other 50% is guaranteed free for anything else.
  {
    nrt::TeamRuntime::Options to;
    to.workers = 8;
    to.hard_rt = true;
    to.period = sim::micros(1000);
    to.slice = sim::micros(500);
    nrt::TeamRuntime team(sys, to);
    nrt::Job& job =
        team.parallel_for(2000, skewed_cost, nrt::Dispatch::kGuided, 25);
    team.wait(job, sim::seconds(5));
    std::printf("%-34s %12.3f %12.2f   (admitted: %s, misses: 0 by design)\n",
                "hard RT group @ 50%, guided",
                (double)job.makespan() / 1e6, job.imbalance(),
                team.admission_ok() ? "yes" : "no");
  }

  std::printf("\nthe run-time IS the kernel's client: admission, gang\n"
              "scheduling, and throttling apply to the whole team at once\n");
  return 0;
}
