// Compile a periodic task set into a cyclic executive (paper section 8,
// future work) and run it on the simulated machine next to the dynamic
// EDF scheduler.
//
//   build/examples/cyclic_executive_demo
#include <cstdio>

#include "rt/ce_scheduler.hpp"
#include "rt/report.hpp"
#include "rt/system.hpp"

using namespace hrt;

int main() {
  const std::vector<rt::PeriodicTask> tasks = {
      {sim::micros(100), sim::micros(25), 0},
      {sim::micros(200), sim::micros(40), 0},
      {sim::micros(400), sim::micros(80), 0},
  };

  auto ce = rt::CyclicExecutiveBuilder::build(tasks);
  if (!ce) {
    std::printf("task set not compilable into a cyclic executive\n");
    return 1;
  }
  std::printf("compiled cyclic executive: frame %lld us, hyperperiod %lld us\n",
              (long long)(ce->frame / 1000),
              (long long)(ce->hyperperiod / 1000));
  for (std::size_t f = 0; f < ce->frames.size(); ++f) {
    std::printf("  frame %zu:", f);
    sim::Nanos used = 0;
    for (const auto& e : ce->frames[f]) {
      std::printf(" task%zu(%lldus)", e.task, (long long)(e.duration / 1000));
      used += e.duration;
    }
    std::printf("  idle %lldus\n", (long long)((ce->frame - used) / 1000));
  }

  // Run it: a kernel whose per-CPU scheduler IS the executive.
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine machine(spec, 42);
  nk::Kernel::Options ko;
  ko.scheduler_factory = rt::CyclicExecutiveScheduler::factory(*ce, tasks);
  nk::Kernel kernel(machine, std::move(ko));
  kernel.boot();

  std::vector<nk::Thread*> threads;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c = rt::Constraints::periodic(0, tasks[i].period, tasks[i].slice)](
            nk::ThreadCtx&, std::uint64_t step) {
          if (step == 0) return nk::Action::change_constraints(c);
          return nk::Action::compute(sim::micros(10));
        });
    threads.push_back(
        kernel.create_thread("task" + std::to_string(i), std::move(b), 1));
  }
  machine.engine().run_until(sim::millis(100));
  kernel.executor(1).sync_run_span();

  std::printf("\nafter 100 ms of static scheduling:\n");
  const double expected[] = {0.25, 0.20, 0.20};
  bool ok = true;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const double share =
        static_cast<double>(threads[i]->total_cpu_ns) / 100e6;
    std::printf("  task%zu: %.1f%% of the CPU (static share %.0f%%)\n", i,
                share * 100.0, expected[i] * 100.0);
    // Per-segment scheduler passes come out of the static windows.
    if (share < expected[i] - 0.05 || share > expected[i] + 0.01) ok = false;
  }
  std::printf("\nreal-time behavior by static construction: %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
