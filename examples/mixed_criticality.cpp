// A mixed-criticality node: one hard real-time control loop, a sporadic
// burst request, background aperiodic analytics, lightweight tasks, and a
// chatty I/O device — all sharing a machine, with the RT thread's timing
// isolated by admission control, reservations, interrupt steering, and
// eager EDF.
//
//   build/examples/mixed_criticality
#include <cstdio>

#include "rt/system.hpp"

using namespace hrt;

int main() {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(8);
  System sys(std::move(o));

  // A device raising ~20k interrupts/s, steered to CPU 0 (the
  // interrupt-laden partition); CPUs 1..7 stay interrupt-free.
  std::uint64_t device_work_done = 0;
  auto& dev = sys.machine().add_device(0x44, hw::Device::Arrival::kPoisson,
                                       sim::micros(50));
  sys.kernel().register_device_handler(
      0x44, 5000, [&device_work_done] { ++device_work_done; });
  sys.boot();
  sys.kernel().apply_interrupt_partition();
  dev.start();

  // 1. Hard real-time control loop: 200 us period, 60 us slice, on an
  //    interrupt-free CPU.
  auto control = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(200), sim::micros(60)));
        }
        return nk::Action::compute(sim::micros(30));
      });
  nk::Thread* rt_thread = sys.spawn("control", std::move(control), 2);

  // 2. Sporadic burst: needs 150 us of CPU within 2 ms of admission, then
  //    continues as a background aperiodic thread.
  auto burst = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::sporadic(
              sim::micros(100), sim::micros(150), sim::millis(2),
              rt::kDefaultPriority));
        }
        return nk::Action::compute(sim::micros(50));
      });
  nk::Thread* sporadic_thread = sys.spawn("burst", std::move(burst), 2);

  // 3. Background analytics: plain aperiodic threads on the same CPU,
  //    time-shared round-robin in whatever the RT load leaves over.
  nk::Thread* background = sys.spawn(
      "analytics", std::make_unique<nk::BusyLoopBehavior>(sim::micros(80)),
      2);

  // 4. Lightweight tasks: size-tagged callbacks the scheduler runs inline
  //    when (and only when) they cannot delay the RT thread.
  std::uint64_t tasks_run = 0;
  for (int i = 0; i < 200; ++i) {
    sys.kernel().submit_task(
        2, nk::Task{[&tasks_run] { ++tasks_run; }, sim::micros(5)});
  }

  sys.run_for(sim::seconds(1));

  std::printf("after 1 simulated second on CPU 2 (interrupt-free):\n");
  std::printf("  control loop:  %llu arrivals, %llu misses  <- hard RT held\n",
              (unsigned long long)rt_thread->rt.arrivals,
              (unsigned long long)rt_thread->rt.misses);
  std::printf("  sporadic:      %llu/%llu served, class now %s\n",
              (unsigned long long)sporadic_thread->rt.completions,
              (unsigned long long)sporadic_thread->rt.arrivals,
              sporadic_thread->constraints.cls ==
                      rt::ConstraintClass::kAperiodic
                  ? "aperiodic (tail)"
                  : "sporadic");
  std::printf("  analytics:     %.1f ms of CPU in the gaps\n",
              (double)background->total_cpu_ns / 1e6);
  std::printf("  tasks:         %llu/200 run inline by the scheduler\n",
              (unsigned long long)tasks_run);
  std::printf("  device:        %llu interrupts handled on CPU 0\n",
              (unsigned long long)device_work_done);

  const bool ok = rt_thread->rt.misses == 0 &&
                  sporadic_thread->rt.completions == 1 && tasks_run == 200 &&
                  device_work_done > 10000;
  std::printf("\nisolation %s\n", ok ? "HELD" : "VIOLATED");
  return ok ? 0 : 1;
}
