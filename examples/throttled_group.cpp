// Administrative resource control with commensurate performance
// (section 6.3): throttle a parallel group's CPU share up and down by its
// periodic constraint and watch the application's execution time follow.
//
//   build/examples/throttled_group
//
// Also demonstrates the failure path of group admission (Algorithm 1):
// when one member's CPU has insufficient utilization, the whole group falls
// back to aperiodic constraints.
#include <cstdio>

#include "bsp/bsp.hpp"
#include "group/group_admission.hpp"

using namespace hrt;

namespace {

double run_at_utilization(int slice_pct) {
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();

  bsp::BspConfig cfg;
  cfg.P = 32;
  cfg.NE = 2048;
  cfg.NC = 8;
  cfg.NW = 16;
  cfg.N = 40;
  cfg.mode = bsp::Mode::kGroupRt;
  cfg.barrier = true;
  cfg.period = sim::micros(1000);
  cfg.slice = sim::micros(10) * slice_pct;
  cfg.phase = sim::millis(6);
  auto res = bsp::run_bsp(sys, cfg);
  return res.all_done && res.admission_ok ? (double)res.makespan / 1e6 : -1.0;
}

bool demonstrate_group_rejection() {
  System sys;
  sys.boot();

  // Pre-load CPU 3 with a 60%-utilization periodic thread, so a group
  // demanding 50% everywhere cannot be admitted there.
  auto hog = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::millis(1), sim::micros(600)));
        }
        return nk::Action::compute(sim::micros(100));
      });
  sys.spawn("hog", std::move(hog), 3);
  sys.run_for(sim::millis(2));

  grp::ThreadGroup* group = sys.groups().create("doomed", 4);
  std::vector<grp::GroupAdmitThenBehavior*> members;
  for (std::uint32_t r = 0; r < 4; ++r) {
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(sim::millis(5), sim::millis(1),
                                  sim::micros(500)),
        std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)));
    members.push_back(b.get());
    sys.spawn("m" + std::to_string(r), std::move(b), 1 + r);
  }
  sys.run_for(sim::millis(50));

  bool all_done = true;
  bool any_success = false;
  for (auto* m : members) {
    if (!m->protocol().done()) all_done = false;
    if (m->protocol().succeeded()) any_success = true;
  }
  // Algorithm 1: the function "either succeeds or fails for all the
  // threads" — CPU 3's rejection must fail the whole group.
  return all_done && !any_success;
}

}  // namespace

int main() {
  std::printf("throttling a 32-CPU BSP group by its periodic constraint\n");
  std::printf("(tau = 1 ms; slice varied; same total work each run)\n\n");
  std::printf("%8s %12s %16s\n", "slice", "time (ms)", "time*util (ms)");
  double t50 = 0.0;
  double t25 = 0.0;
  for (int pct : {25, 50, 75, 90}) {
    const double ms = run_at_utilization(pct);
    std::printf("%7d%% %12.2f %16.2f\n", pct, ms, ms * pct / 100.0);
    if (pct == 50) t50 = ms;
    if (pct == 25) t25 = ms;
  }
  std::printf("\nhalving the share doubles the time: t(25%%)/t(50%%) = %.2f\n",
              t25 / t50);

  const bool rejected = demonstrate_group_rejection();
  std::printf("\ngroup admission all-or-nothing check (one overloaded CPU "
              "fails the whole group): %s\n",
              rejected ? "OK" : "FAILED");
  return rejected ? 0 : 1;
}
