// Barrier removal on a fine-grain BSP workload (the headline experiment of
// section 6.4).
//
//   build/examples/bsp_barrier_removal [num_cpus]
//
// Runs the same ring-pattern BSP computation three ways:
//   1. aperiodic (non-real-time) scheduling, barriers per iteration;
//   2. a hard real-time group with the same barriers;
//   3. the hard real-time group with barriers REMOVED — correctness is
//      preserved purely by the time-synchronized schedule, which the
//      harness verifies by tracking the iteration skew every remote write
//      observes at its target.
#include <cstdio>
#include <cstdlib>

#include "bsp/bsp.hpp"

using namespace hrt;

namespace {

bsp::BspResult run_mode(std::uint32_t p, bsp::Mode mode, bool barrier,
                        std::uint64_t seed) {
  System::Options o;
  o.spec = hw::MachineSpec::phi();
  o.seed = seed;
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();

  bsp::BspConfig cfg;
  cfg.P = p;
  cfg.NE = 512;
  cfg.NC = 8;
  cfg.NW = 16;
  cfg.N = 200;
  cfg.mode = mode;
  cfg.barrier = barrier;
  cfg.period = sim::micros(1000);
  cfg.slice = sim::micros(900);
  cfg.phase = sim::millis(3) + p * sim::micros(80);
  return bsp::run_bsp(sys, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t p =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;

  auto ap = run_mode(p, bsp::Mode::kAperiodic, true, 42);
  auto rt_with = run_mode(p, bsp::Mode::kGroupRt, true, 42);
  auto rt_without = run_mode(p, bsp::Mode::kGroupRt, false, 42);

  std::printf("fine-grain BSP, %u CPUs, 200 iterations:\n\n", p);
  std::printf("%-42s %10s %6s %6s\n", "configuration", "time (ms)", "skew",
              "done");
  std::printf("%-42s %10.2f %6llu %6s\n", "aperiodic + barriers (baseline)",
              (double)ap.makespan / 1e6,
              (unsigned long long)ap.max_write_skew,
              ap.all_done ? "yes" : "NO");
  std::printf("%-42s %10.2f %6llu %6s\n", "hard RT group (90%) + barriers",
              (double)rt_with.makespan / 1e6,
              (unsigned long long)rt_with.max_write_skew,
              rt_with.all_done ? "yes" : "NO");
  std::printf("%-42s %10.2f %6llu %6s\n", "hard RT group (90%), barriers REMOVED",
              (double)rt_without.makespan / 1e6,
              (unsigned long long)rt_without.max_write_skew,
              rt_without.all_done ? "yes" : "NO");

  std::printf("\nbarrier removal speedup vs RT-with-barriers: %.2fx\n",
              (double)rt_with.makespan / (double)rt_without.makespan);
  std::printf("barrier removal speedup vs aperiodic baseline: %.2fx\n",
              (double)ap.makespan / (double)rt_without.makespan);
  std::printf("\nlockstep check: max iteration skew without barriers = %llu "
              "(must stay tiny for BSP correctness)\n",
              (unsigned long long)rt_without.max_write_skew);
  return rt_without.all_done && rt_without.max_write_skew <= 2 ? 0 : 1;
}
