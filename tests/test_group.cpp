// Thread groups (section 4): registry, join/leave, collectives (election,
// barrier, reduction, broadcast), the full group admission protocol with
// success/failure paths, all-or-nothing semantics, and phase correction.
#include <gtest/gtest.h>

#include "group/group_admission.hpp"
#include "group/reusable_barrier.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options quiet(std::uint32_t cpus = 6) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  return o;
}

// ---------- Registry ----------

TEST(GroupRegistry, CreateFindDestroy) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("workers", 4);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->name(), "workers");
  EXPECT_EQ(sys.groups().find("workers"), g);
  EXPECT_EQ(sys.groups().find("nope"), nullptr);
  EXPECT_EQ(sys.groups().create("workers", 2), nullptr);  // duplicate
  EXPECT_TRUE(sys.groups().destroy("workers"));
  EXPECT_FALSE(sys.groups().destroy("workers"));
  EXPECT_EQ(sys.groups().count(), 0u);
}

TEST(Group, JoinAndLeaveTrackMembers) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 2);
  auto joiner = [g](bool leave) {
    std::vector<nk::Action> acts;
    acts.push_back(g->join_action());
    acts.push_back(nk::Action::compute(sim::micros(50)));
    if (leave) acts.push_back(g->leave_action());
    return std::make_unique<nk::SequenceBehavior>(std::move(acts));
  };
  sys.spawn("a", joiner(false), 1);
  sys.spawn("b", joiner(true), 2);
  sys.run_for(sim::millis(2));
  EXPECT_EQ(g->size(), 1u);
}

// ---------- Collectives ----------

TEST(GroupBarrier, ReleasesAllAtLastArrival) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 3);
  grp::GroupBarrier& bar = g->barrier(0);
  std::vector<sim::Nanos> released;
  for (std::uint32_t r = 0; r < 3; ++r) {
    std::vector<nk::Action> acts;
    // Stagger arrivals.
    acts.push_back(nk::Action::compute(sim::micros(10) * (r + 1)));
    acts.push_back(bar.scan_action());
    acts.push_back(bar.arrive_action());
    acts.push_back(bar.wait_action());
    acts.push_back(bar.depart_action([&released](nk::ThreadCtx& c, int) {
      released.push_back(c.kernel.machine().engine().now());
    }));
    sys.spawn("t" + std::to_string(r),
              std::make_unique<nk::SequenceBehavior>(std::move(acts)), 1 + r);
  }
  sys.run_for(sim::millis(2));
  ASSERT_EQ(released.size(), 3u);
  // All released within a handful of microseconds of each other (the last
  // arrival triggers it; departures serialize).
  EXPECT_LT(released.back() - released.front(), sim::micros(10));
}

TEST(GroupBarrier, DepartureOrdersAreDistinct) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 4);
  grp::GroupBarrier& bar = g->barrier(0);
  std::vector<int> orders;
  for (std::uint32_t r = 0; r < 4; ++r) {
    std::vector<nk::Action> acts;
    acts.push_back(bar.scan_action());
    acts.push_back(bar.arrive_action());
    acts.push_back(bar.wait_action());
    acts.push_back(bar.depart_action(
        [&orders](nk::ThreadCtx&, int i) { orders.push_back(i); }));
    sys.spawn("t" + std::to_string(r),
              std::make_unique<nk::SequenceBehavior>(std::move(acts)), 1 + r);
  }
  sys.run_for(sim::millis(2));
  ASSERT_EQ(orders.size(), 4u);
  std::sort(orders.begin(), orders.end());
  EXPECT_EQ(orders, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Group, ReductionAccumulates) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 3);
  for (std::uint32_t r = 0; r < 3; ++r) {
    sys.spawn("t" + std::to_string(r),
              std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                  g->reduce_add_action(static_cast<std::int64_t>(r + 1))}),
              1 + r);
  }
  sys.run_for(sim::millis(2));
  EXPECT_EQ(g->reduction_value(), 6);
}

TEST(Group, ElectionPicksExactlyOneLeader) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 4);
  for (std::uint32_t r = 0; r < 4; ++r) {
    sys.spawn("t" + std::to_string(r),
              std::make_unique<nk::SequenceBehavior>(
                  std::vector<nk::Action>{g->elect_action()}),
              1 + r);
  }
  sys.run_for(sim::millis(2));
  EXPECT_NE(g->leader(), nullptr);
}

TEST(Group, BroadcastPublishes) {
  System sys(quiet());
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 1);
  g->publish(1234);
  EXPECT_EQ(g->published(), 1234);
}

// ---------- ReusableBarrier ----------

TEST(ReusableBarrier, ManyRoundsAllRanksTogether) {
  System sys(quiet());
  sys.boot();
  auto bar = std::make_shared<grp::ReusableBarrier>(sys.kernel(), 3);
  std::vector<std::uint64_t> rounds(3, 0);
  for (std::uint32_t r = 0; r < 3; ++r) {
    auto b = std::make_unique<nk::FnBehavior>(
        [bar, r, &rounds, ticket = grp::ReusableBarrier::Ticket{}](
            nk::ThreadCtx&, std::uint64_t step) mutable {
          if (step >= 3 * 20) return nk::Action::exit();
          switch (step % 3) {
            case 0:
              return nk::Action::compute(sim::micros(5) * (r + 1));
            case 1:
              return bar->arrive_action(&ticket);
            default:
              return bar->wait_action(&ticket);
          }
        });
    sys.spawn("t" + std::to_string(r), std::move(b), 1 + r);
  }
  sys.run_for(sim::millis(20));
  EXPECT_EQ(bar->rounds_completed(), 20u);
}

// ---------- Group admission (Algorithm 1) ----------

struct AdmitFixture : ::testing::Test {
  void run_group(System& sys, std::uint32_t n, rt::Constraints c,
                 bool phase_correction = true) {
    group = sys.groups().create("g", n);
    for (std::uint32_t r = 0; r < n; ++r) {
      auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
          *group, c, std::make_unique<nk::BusyLoopBehavior>(sim::micros(20)));
      b->protocol_mutable().set_phase_correction(phase_correction);
      members.push_back(b.get());
      threads.push_back(sys.spawn("m" + std::to_string(r), std::move(b),
                                  1 + r));
    }
  }
  bool all_done() const {
    for (auto* m : members) {
      if (!m->protocol().done()) return false;
    }
    return true;
  }
  grp::ThreadGroup* group = nullptr;
  std::vector<grp::GroupAdmitThenBehavior*> members;
  std::vector<nk::Thread*> threads;
};

TEST_F(AdmitFixture, SuccessfulAdmissionMakesAllPeriodic) {
  System sys(quiet());
  sys.boot();
  run_group(sys, 4,
            rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                      sim::micros(100)));
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(all_done());
  for (auto* m : members) EXPECT_TRUE(m->protocol().succeeded());
  for (auto* t : threads) {
    EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kPeriodic);
    EXPECT_GT(t->rt.arrivals, 10u);
    EXPECT_EQ(t->rt.misses, 0u);
  }
  EXPECT_FALSE(group->locked());  // leader unlocked at the end
}

TEST_F(AdmitFixture, ReleaseOrdersAreDistinctAndComplete) {
  System sys(quiet());
  sys.boot();
  run_group(sys, 4,
            rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                      sim::micros(80)));
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(all_done());
  std::vector<int> orders;
  for (auto* m : members) orders.push_back(m->protocol().release_order());
  std::sort(orders.begin(), orders.end());
  EXPECT_EQ(orders, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(AdmitFixture, PhaseCorrectionAlignsFirstArrivals) {
  // Gammas are staggered by the serialized barrier departure; the corrected
  // phases (phi + (n - i) * delta) compensate, so first arrivals
  // (gamma + phase) align far more tightly than gammas do.
  System sys(quiet());
  sys.boot();
  run_group(sys, 4,
            rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                      sim::micros(80)),
            /*phase_correction=*/true);
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(all_done());
  sim::Nanos lo = -1;
  sim::Nanos hi = -1;
  sim::Nanos glo = -1;
  sim::Nanos ghi = -1;
  for (auto* t : threads) {
    const sim::Nanos first_arrival = t->rt.gamma + t->constraints.phase;
    if (lo < 0 || first_arrival < lo) lo = first_arrival;
    if (first_arrival > hi) hi = first_arrival;
    if (glo < 0 || t->rt.gamma < glo) glo = t->rt.gamma;
    if (t->rt.gamma > ghi) ghi = t->rt.gamma;
  }
  EXPECT_GT(ghi - glo, 0);                        // staggering existed
  EXPECT_LT(hi - lo, (ghi - glo) / 2 + sim::micros(1));
}

TEST_F(AdmitFixture, InfeasibleGroupFailsForAll) {
  System sys(quiet());
  sys.boot();
  // 95% > 79% available: every local admission rejects.
  run_group(sys, 4,
            rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                      sim::micros(190)));
  sys.run_for(sim::millis(20));
  ASSERT_TRUE(all_done());
  for (auto* m : members) EXPECT_FALSE(m->protocol().succeeded());
  for (auto* t : threads) {
    // "readmit myself using default constraints": all still aperiodic and
    // eventually exited (the wrapper exits on failure).
    EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
  }
  EXPECT_FALSE(group->locked());
}

TEST_F(AdmitFixture, OneOverloadedCpuFailsWholeGroup) {
  System sys(quiet());
  sys.boot();
  // Load CPU 2 to 60%; a 50%-demand group then fails *everywhere*.
  auto hog = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::millis(1), sim::micros(600)));
        }
        return nk::Action::compute(sim::micros(50));
      });
  sys.spawn("hog", std::move(hog), 2, 10);
  sys.run_for(sim::millis(1));

  run_group(sys, 4,
            rt::Constraints::periodic(sim::millis(3), sim::millis(1),
                                      sim::micros(500)));
  sys.run_for(sim::millis(30));
  ASSERT_TRUE(all_done());
  for (auto* m : members) EXPECT_FALSE(m->protocol().succeeded());
  // No utilization leaked on the CPUs whose local admission succeeded.
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
  EXPECT_NEAR(sys.sched(3).admitted_utilization(), 0.0, 1e-9);
  EXPECT_NEAR(sys.sched(4).admitted_utilization(), 0.0, 1e-9);
}

TEST_F(AdmitFixture, TimingRecordsMonotoneSteps) {
  System sys(quiet());
  sys.boot();
  run_group(sys, 3,
            rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                      sim::micros(60)));
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(all_done());
  for (auto* m : members) {
    const auto& t = m->protocol().timing();
    EXPECT_LE(t.start, t.join_done);
    EXPECT_LE(t.join_done, t.election_done);
    EXPECT_LE(t.election_done, t.admission_done);
    EXPECT_LE(t.admission_done, t.barrier_done);
    EXPECT_LE(t.barrier_done, t.total_done);
  }
}

TEST_F(AdmitFixture, MembersOnSameCpuAdmitAgainstSharedBudget) {
  // Two members time-share one CPU, so each spin-phase of the protocol must
  // wait for a round-robin rotation before its partner can progress — the
  // very pathology gang scheduling exists to avoid.  A short quantum keeps
  // the test fast.
  System::Options o = quiet();
  o.sched.aperiodic_quantum = sim::micros(200);
  System sys(std::move(o));
  sys.boot();
  // Two members on one CPU demanding 50% each: joint admission must fail.
  group = sys.groups().create("same-cpu", 2);
  for (int r = 0; r < 2; ++r) {
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(sim::millis(3), sim::micros(200),
                                  sim::micros(100)),
        std::make_unique<nk::BusyLoopBehavior>(sim::micros(20)));
    members.push_back(b.get());
    sys.spawn("m" + std::to_string(r), std::move(b), 1);
  }
  sys.run_for(sim::millis(30));
  ASSERT_TRUE(all_done());
  for (auto* m : members) EXPECT_FALSE(m->protocol().succeeded());
}

}  // namespace
}  // namespace hrt
