// BoundedHeap: correctness against a reference model, capacity bounds,
// arbitrary removal, extract_if.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rt/queues.hpp"
#include "sim/rng.hpp"

namespace hrt::rt {
namespace {

struct Less {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(BoundedHeap, PopsInOrder) {
  BoundedHeap<int, Less> h(16);
  for (int v : {5, 1, 9, 3, 7}) EXPECT_TRUE(h.push(v));
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(BoundedHeap, CapacityEnforced) {
  BoundedHeap<int, Less> h(3);
  EXPECT_TRUE(h.push(1));
  EXPECT_TRUE(h.push(2));
  EXPECT_TRUE(h.push(3));
  EXPECT_FALSE(h.push(4));
  EXPECT_EQ(h.size(), 3u);
}

TEST(BoundedHeap, TopDoesNotRemove) {
  BoundedHeap<int, Less> h(4);
  ASSERT_TRUE(h.push(2));
  ASSERT_TRUE(h.push(1));
  EXPECT_EQ(h.top(), 1);
  EXPECT_EQ(h.size(), 2u);
}

TEST(BoundedHeap, EmptyAccessThrows) {
  BoundedHeap<int, Less> h(4);
  EXPECT_THROW((void)h.top(), std::logic_error);
  EXPECT_THROW(h.pop(), std::logic_error);
}

TEST(BoundedHeap, RemoveArbitraryElement) {
  BoundedHeap<int, Less> h(8);
  for (int v : {4, 2, 6, 1, 5}) ASSERT_TRUE(h.push(v));
  EXPECT_TRUE(h.remove(6));
  EXPECT_FALSE(h.remove(42));
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 5}));
}

TEST(BoundedHeap, ExtractIfFindsMatchingElement) {
  BoundedHeap<int, Less> h(8);
  for (int v : {3, 8, 5, 12}) ASSERT_TRUE(h.push(v));
  const std::optional<int> got = h.extract_if([](int v) { return v > 6; });
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(*got == 8 || *got == 12);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.extract_if([](int v) { return v > 100; }), std::nullopt);
}

TEST(BoundedHeap, ExtractIfDistinguishesMatchedDefaultFromMiss) {
  // A matched default-constructed value used to be indistinguishable from
  // "nothing matched"; std::optional separates the two.
  BoundedHeap<int, Less> h(8);
  ASSERT_TRUE(h.push(0));
  const std::optional<int> got = h.extract_if([](int v) { return v == 0; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0);
  EXPECT_EQ(h.extract_if([](int v) { return v == 0; }), std::nullopt);
}

TEST(BoundedHeap, ForEachVisitsAll) {
  BoundedHeap<int, Less> h(8);
  for (int v : {3, 8, 5}) ASSERT_TRUE(h.push(v));
  int sum = 0;
  h.for_each([&sum](int v) { sum += v; });
  EXPECT_EQ(sum, 16);
}

class HeapRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapRandomSweep, MatchesReferenceModel) {
  BoundedHeap<int, Less> h(64);
  std::vector<int> model;
  sim::Rng rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    const double p = rng.next_double();
    if (p < 0.5 && model.size() < 64) {
      const int v = static_cast<int>(rng.uniform(0, 1000));
      ASSERT_TRUE(h.push(v));
      model.push_back(v);
    } else if (p < 0.8 && !model.empty()) {
      const int got = h.pop();
      auto it = std::min_element(model.begin(), model.end());
      ASSERT_EQ(got, *it);
      model.erase(it);
    } else if (!model.empty()) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0, model.size() - 1));
      ASSERT_TRUE(h.remove(model[idx]));
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(h.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(h.top(), *std::min_element(model.begin(), model.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapRandomSweep,
                         ::testing::Values(1, 7, 13, 21, 42, 1001));

// ---------- Intrusive index tracking ----------

struct Item {
  int key = 0;
  HeapIndex heap_index;
};

struct ItemBefore {
  bool operator()(const Item* a, const Item* b) const {
    return a->key < b->key;
  }
};

using IndexedHeap = BoundedHeap<Item*, ItemBefore, MemberIndex<Item*>>;

TEST(IndexedHeap, RemoveIsExactAndMissesAreCheap) {
  std::vector<Item> items(8);
  for (int i = 0; i < 8; ++i) items[static_cast<std::size_t>(i)].key = i;
  IndexedHeap h(8);
  for (auto& it : items) ASSERT_TRUE(h.push(&it));

  EXPECT_TRUE(h.contains(&items[3]));
  EXPECT_TRUE(h.remove(&items[3]));
  EXPECT_FALSE(h.contains(&items[3]));
  EXPECT_FALSE(h.remove(&items[3]));  // already gone: O(1) miss
  EXPECT_EQ(items[3].heap_index.owner, nullptr);

  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop()->key);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 4, 5, 6, 7}));
  for (const auto& it : items) {
    EXPECT_EQ(it.heap_index.owner, nullptr);
  }
}

TEST(IndexedHeap, RemoveFromOtherHeapIsRejected) {
  Item a{1, {}};
  Item b{2, {}};
  IndexedHeap h1(4);
  IndexedHeap h2(4);
  ASSERT_TRUE(h1.push(&a));
  ASSERT_TRUE(h2.push(&b));
  // b lives in h2: h1 must refuse without touching it.
  EXPECT_FALSE(h1.remove(&b));
  EXPECT_TRUE(h2.contains(&b));
  EXPECT_TRUE(h2.remove(&b));
  EXPECT_TRUE(h1.remove(&a));
}

TEST(IndexedHeap, ExtractIfClearsIndex) {
  Item a{5, {}};
  IndexedHeap h(4);
  ASSERT_TRUE(h.push(&a));
  const auto got = h.extract_if([](const Item* i) { return i->key == 5; });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, &a);
  EXPECT_EQ(a.heap_index.owner, nullptr);
  EXPECT_EQ(h.extract_if([](const Item*) { return true; }), std::nullopt);
}

class IndexedHeapSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property test: heap order, capacity, and index integrity (owner + position
// agree with the heap's actual contents) under random push/pop/remove/
// extract_if, with elements migrating between two heaps.
TEST_P(IndexedHeapSweep, InvariantsUnderRandomOps) {
  constexpr std::size_t kCap = 48;
  std::vector<Item> arena(128);
  for (std::size_t i = 0; i < arena.size(); ++i) {
    arena[i].key = static_cast<int>(i % 31);
  }
  IndexedHeap heaps[2] = {IndexedHeap(kCap), IndexedHeap(kCap)};
  std::vector<Item*> model[2];
  std::vector<Item*> free_items;
  for (auto& it : arena) free_items.push_back(&it);
  sim::Rng rng(GetParam());

  auto check_invariants = [&](int side) {
    ASSERT_EQ(heaps[side].size(), model[side].size());
    ASSERT_LE(heaps[side].size(), kCap);
    if (!model[side].empty()) {
      Item* best = *std::min_element(model[side].begin(), model[side].end(),
                                     ItemBefore());
      ASSERT_EQ(heaps[side].top()->key, best->key);
    }
    std::size_t visited = 0;
    heaps[side].for_each([&](const Item* it) {
      ++visited;
      ASSERT_EQ(it->heap_index.owner, &heaps[side]);
    });
    ASSERT_EQ(visited, model[side].size());
  };

  for (int step = 0; step < 4000; ++step) {
    const int side = static_cast<int>(rng.uniform(0, 1));
    const double p = rng.next_double();
    if (p < 0.40 && !free_items.empty()) {
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(free_items.size()) - 1));
      Item* it = free_items[i];
      const bool pushed = heaps[side].push(it);
      ASSERT_EQ(pushed, model[side].size() < kCap);
      if (pushed) {
        model[side].push_back(it);
        free_items.erase(free_items.begin() +
                         static_cast<std::ptrdiff_t>(i));
      }
    } else if (p < 0.65 && !model[side].empty()) {
      Item* got = heaps[side].pop();
      auto it = std::min_element(model[side].begin(), model[side].end(),
                                 ItemBefore());
      ASSERT_EQ(got->key, (*it)->key);
      // Equal keys are interchangeable for ordering; drop the exact pointer
      // the heap returned.
      auto exact = std::find(model[side].begin(), model[side].end(), got);
      ASSERT_NE(exact, model[side].end());
      model[side].erase(exact);
      free_items.push_back(got);
      ASSERT_EQ(got->heap_index.owner, nullptr);
    } else if (p < 0.85 && !model[side].empty()) {
      const auto i = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(model[side].size()) - 1));
      Item* it = model[side][i];
      ASSERT_TRUE(heaps[side].remove(it));
      ASSERT_FALSE(heaps[side].remove(it));
      ASSERT_EQ(it->heap_index.owner, nullptr);
      model[side].erase(model[side].begin() + static_cast<std::ptrdiff_t>(i));
      free_items.push_back(it);
    } else if (!model[side].empty()) {
      const int want = static_cast<int>(rng.uniform(0, 30));
      const auto got = heaps[side].extract_if(
          [want](const Item* it) { return it->key == want; });
      auto it = std::find_if(model[side].begin(), model[side].end(),
                             [want](Item* m) { return m->key == want; });
      if (it == model[side].end()) {
        ASSERT_EQ(got, std::nullopt);
      } else {
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ((*got)->key, want);
        auto exact = std::find(model[side].begin(), model[side].end(), *got);
        ASSERT_NE(exact, model[side].end());
        model[side].erase(exact);
        free_items.push_back(*got);
      }
    }
    check_invariants(0);
    check_invariants(1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapSweep,
                         ::testing::Values(3, 17, 29, 77, 424242));

}  // namespace
}  // namespace hrt::rt
