// BoundedHeap: correctness against a reference model, capacity bounds,
// arbitrary removal, extract_if.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "rt/queues.hpp"
#include "sim/rng.hpp"

namespace hrt::rt {
namespace {

struct Less {
  bool operator()(int a, int b) const { return a < b; }
};

TEST(BoundedHeap, PopsInOrder) {
  BoundedHeap<int, Less> h(16);
  for (int v : {5, 1, 9, 3, 7}) EXPECT_TRUE(h.push(v));
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(BoundedHeap, CapacityEnforced) {
  BoundedHeap<int, Less> h(3);
  EXPECT_TRUE(h.push(1));
  EXPECT_TRUE(h.push(2));
  EXPECT_TRUE(h.push(3));
  EXPECT_FALSE(h.push(4));
  EXPECT_EQ(h.size(), 3u);
}

TEST(BoundedHeap, TopDoesNotRemove) {
  BoundedHeap<int, Less> h(4);
  ASSERT_TRUE(h.push(2));
  ASSERT_TRUE(h.push(1));
  EXPECT_EQ(h.top(), 1);
  EXPECT_EQ(h.size(), 2u);
}

TEST(BoundedHeap, EmptyAccessThrows) {
  BoundedHeap<int, Less> h(4);
  EXPECT_THROW((void)h.top(), std::logic_error);
  EXPECT_THROW(h.pop(), std::logic_error);
}

TEST(BoundedHeap, RemoveArbitraryElement) {
  BoundedHeap<int, Less> h(8);
  for (int v : {4, 2, 6, 1, 5}) ASSERT_TRUE(h.push(v));
  EXPECT_TRUE(h.remove(6));
  EXPECT_FALSE(h.remove(42));
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 4, 5}));
}

TEST(BoundedHeap, ExtractIfFindsMatchingElement) {
  BoundedHeap<int, Less> h(8);
  for (int v : {3, 8, 5, 12}) ASSERT_TRUE(h.push(v));
  const int got = h.extract_if([](int v) { return v > 6; });
  EXPECT_TRUE(got == 8 || got == 12);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.extract_if([](int v) { return v > 100; }), 0);  // T{}
}

TEST(BoundedHeap, ForEachVisitsAll) {
  BoundedHeap<int, Less> h(8);
  for (int v : {3, 8, 5}) ASSERT_TRUE(h.push(v));
  int sum = 0;
  h.for_each([&sum](int v) { sum += v; });
  EXPECT_EQ(sum, 16);
}

class HeapRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapRandomSweep, MatchesReferenceModel) {
  BoundedHeap<int, Less> h(64);
  std::vector<int> model;
  sim::Rng rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    const double p = rng.next_double();
    if (p < 0.5 && model.size() < 64) {
      const int v = static_cast<int>(rng.uniform(0, 1000));
      ASSERT_TRUE(h.push(v));
      model.push_back(v);
    } else if (p < 0.8 && !model.empty()) {
      const int got = h.pop();
      auto it = std::min_element(model.begin(), model.end());
      ASSERT_EQ(got, *it);
      model.erase(it);
    } else if (!model.empty()) {
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0, model.size() - 1));
      ASSERT_TRUE(h.remove(model[idx]));
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(h.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(h.top(), *std::min_element(model.begin(), model.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapRandomSweep,
                         ::testing::Values(1, 7, 13, 21, 42, 1001));

}  // namespace
}  // namespace hrt::rt
