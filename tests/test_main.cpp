// Placeholder aggregator; real test files are added as modules land.
#include <gtest/gtest.h>

TEST(Scaffold, Builds) { SUCCEED(); }
