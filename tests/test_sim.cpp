// Unit tests for the simulation core: time conversion, event engine,
// deterministic RNG, statistics, histogram, scope analyzer.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/histogram.hpp"
#include "sim/rng.hpp"
#include "sim/scope.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hrt::sim {
namespace {

// ---------- Frequency ----------

TEST(Frequency, RoundTripAtPhiClock) {
  const Frequency f(1'300'000'000);
  EXPECT_EQ(f.cycles_to_ns(1'300'000'000), kNanosPerSecond);
  EXPECT_EQ(f.ns_to_cycles(kNanosPerSecond), 1'300'000'000);
  EXPECT_EQ(f.ns_to_cycles(micros(10)), 13'000);  // the paper's 10us = 13k cy
}

TEST(Frequency, FloorConversionNeverLate) {
  const Frequency f(1'300'000'000);
  for (Nanos ns = 1; ns < 1000; ns += 7) {
    const Cycles c = f.ns_to_cycles_floor(ns);
    EXPECT_LE(f.cycles_to_ns(c), ns + 1);  // floor never overshoots
  }
}

TEST(Frequency, CeilConversionCoversCycles) {
  const Frequency f(2'200'000'000);
  for (Cycles c = 1; c < 10000; c += 97) {
    EXPECT_GE(f.ns_to_cycles(f.cycles_to_ns_ceil(c)), c);
  }
}

TEST(Frequency, LargeValuesNoOverflow) {
  const Frequency f(2'200'000'000);
  const Nanos day = seconds(86'400);
  const Cycles c = f.ns_to_cycles(day);
  EXPECT_GT(c, 0);
  EXPECT_NEAR(static_cast<double>(f.cycles_to_ns(c)),
              static_cast<double>(day), 1.0);
}

class FrequencySweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(FrequencySweep, ConversionsMonotone) {
  const Frequency f(GetParam());
  Cycles prev = -1;
  for (Nanos ns = 0; ns < 2000; ns += 13) {
    const Cycles c = f.ns_to_cycles(ns);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Clocks, FrequencySweep,
                         ::testing::Values(1'000'000'000, 1'300'000'000,
                                           2'200'000'000, 3'500'000'000));

// ---------- Engine ----------

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, SameTimeFifoWithinBand) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, BandsOrderSimultaneousEvents) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(10, [&] { order.push_back(2); }, EventBand::kDefault);
  eng.schedule_at(10, [&] { order.push_back(0); }, EventBand::kSmi);
  eng.schedule_at(10, [&] { order.push_back(3); }, EventBand::kObserver);
  eng.schedule_at(10, [&] { order.push_back(1); }, EventBand::kHardware);
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool ran = false;
  EventId id = eng.schedule_at(10, [&] { ran = true; });
  eng.cancel(id);
  eng.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(eng.events_executed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndSafeOnInvalid) {
  Engine eng;
  eng.cancel(EventId{});      // invalid
  EventId id = eng.schedule_at(5, [] {});
  eng.cancel(id);
  eng.cancel(id);             // double cancel
  EXPECT_EQ(eng.run_all(), 0u);
}

TEST(Engine, RunUntilStopsAtHorizonAndAdvancesClock) {
  Engine eng;
  int count = 0;
  for (Nanos t = 10; t <= 100; t += 10) {
    eng.schedule_at(t, [&] { ++count; });
  }
  eng.run_until(55);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), 55);
  eng.run_until(200);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(eng.now(), 200);  // clock reaches the horizon past last event
}

TEST(Engine, EventsScheduledFromCallbacksRun) {
  Engine eng;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) eng.schedule_after(5, recurse);
  };
  eng.schedule_at(0, recurse);
  eng.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(eng.now(), 45);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine eng;
  eng.schedule_at(100, [] {});
  eng.run_all();
  EXPECT_THROW(eng.schedule_at(50, [] {}), std::logic_error);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine eng;
  int count = 0;
  eng.schedule_at(1, [&] { ++count; });
  eng.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(eng.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(eng.step());
  EXPECT_FALSE(eng.step());
  EXPECT_EQ(count, 2);
}

// ---------- Rng ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng r(99);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.exponential(250.0));
  EXPECT_NEAR(s.mean(), 250.0, 10.0);
}

TEST(Rng, JitteredRespectsFloorAndMean) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    const auto v = r.jittered(1000, 0.1);
    EXPECT_GE(v, 500);  // min_fraction default 0.5
    s.add(static_cast<double>(v));
  }
  EXPECT_NEAR(s.mean(), 1000.0, 10.0);
}

TEST(Rng, JitterDisabledReturnsBase) {
  Rng r(1);
  EXPECT_EQ(r.jittered(1000, 0.0), 1000);
  EXPECT_EQ(r.jittered(0, 0.5), 0);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root(42);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ---------- Stats ----------

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Samples, PercentilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(Samples, MeanStdMatchRunningStats) {
  Rng r(3);
  Samples s;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(5, 2);
    s.add(v);
    rs.add(v);
  }
  EXPECT_NEAR(s.mean(), rs.mean(), 1e-9);
  EXPECT_NEAR(s.stddev(), rs.stddev(), 1e-9);
}

// ---------- Histogram ----------

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0, 100, 10);
  h.add(5);     // bin 0
  h.add(95);    // bin 9
  h.add(-1);    // underflow
  h.add(100);   // overflow (hi is exclusive)
  h.add(150);   // overflow
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0, 100, 10);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 30.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 40.0);
}

// ---------- ScopeAnalyzer ----------

TEST(Scope, MeasuresPulsesAndDuty) {
  ScopeAnalyzer s;
  // A clean 50% duty, 100-unit period square wave.
  for (Nanos t = 0; t < 1000; t += 100) {
    s.transition(t, true);
    s.transition(t + 50, false);
  }
  auto w = s.pulse_width_stats();
  EXPECT_EQ(w.count(), 10u);  // every high interval measured
  EXPECT_DOUBLE_EQ(w.mean(), 50.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  auto p = s.period_stats();
  EXPECT_DOUBLE_EQ(p.mean(), 100.0);
  EXPECT_NEAR(s.duty_cycle(), 0.5, 0.07);
}

TEST(Scope, IgnoresSameLevelRepeats) {
  ScopeAnalyzer s;
  s.transition(0, false);
  s.transition(10, true);
  s.transition(12, true);  // ignored
  s.transition(20, false);
  EXPECT_EQ(s.pulses().size(), 1u);
  EXPECT_EQ(s.pulses()[0].width, 10);
}

TEST(Scope, FuzzDetectedAsWidthSpread) {
  ScopeAnalyzer sharp;
  ScopeAnalyzer fuzzy;
  Rng r(17);
  for (Nanos t = 0; t < 100000; t += 100) {
    sharp.transition(t, true);
    sharp.transition(t + 50, false);
    fuzzy.transition(t, true);
    fuzzy.transition(t + 40 + r.uniform(0, 20), false);
  }
  EXPECT_LT(sharp.pulse_width_stats().stddev(), 0.001);
  EXPECT_GT(fuzzy.pulse_width_stats().stddev(), 3.0);
}

}  // namespace
}  // namespace hrt::sim
