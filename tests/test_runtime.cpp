// The miniature parallel run-time (runtime/team.hpp): correctness of both
// dispatch modes, sequential jobs, skewed-load balancing, and the hard
// real-time team mode.
#include <gtest/gtest.h>

#include "runtime/team.hpp"

namespace hrt::nrt {
namespace {

System::Options quiet(std::uint32_t cpus = 6) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  return o;
}

TEST(Team, StaticDispatchRunsEveryIteration) {
  System sys(quiet());
  sys.boot();
  TeamRuntime team(sys, TeamRuntime::Options{.workers = 4});
  Job& job = team.parallel_for(1000, sim::micros(2), Dispatch::kStatic, 32);
  ASSERT_TRUE(team.wait(job));
  EXPECT_EQ(job.iterations_run(), 1000u);
  EXPECT_GT(job.makespan(), 0);
  // 1000 x 2us over 4 workers = ~500us ideal.
  EXPECT_LT(job.makespan(), sim::micros(700));
}

TEST(Team, GuidedDispatchRunsEveryIterationOnce) {
  System sys(quiet());
  sys.boot();
  TeamRuntime team(sys, TeamRuntime::Options{.workers = 4});
  Job& job = team.parallel_for(1000, sim::micros(2), Dispatch::kGuided, 16);
  ASSERT_TRUE(team.wait(job));
  EXPECT_EQ(job.iterations_run(), 1000u);
}

TEST(Team, SequentialJobsRunInOrder) {
  System sys(quiet());
  sys.boot();
  TeamRuntime team(sys, TeamRuntime::Options{.workers = 3});
  Job& j1 = team.parallel_for(300, sim::micros(1));
  Job& j2 = team.parallel_for(300, sim::micros(1));
  ASSERT_TRUE(team.wait(j2));
  EXPECT_TRUE(j1.done());
  EXPECT_EQ(j1.iterations_run(), 300u);
  EXPECT_EQ(j2.iterations_run(), 300u);
  EXPECT_GE(j2.finish_time(), j1.finish_time());
}

TEST(Team, JobSubmittedAfterWorkersParked) {
  System sys(quiet());
  sys.boot();
  TeamRuntime team(sys, TeamRuntime::Options{.workers = 3});
  sys.run_for(sim::millis(5));  // workers spin waiting for work
  Job& job = team.parallel_for(120, sim::micros(3));
  ASSERT_TRUE(team.wait(job));
  EXPECT_EQ(job.iterations_run(), 120u);
}

TEST(Team, GuidedBeatsStaticOnSkewedLoad) {
  // Iteration cost ramps steeply: a static split gives the last worker far
  // more work; guided chunking evens it out.
  auto skewed = [](std::uint64_t i) {
    return sim::Nanos{200} + static_cast<sim::Nanos>(i * i / 300);
  };
  auto run = [&](Dispatch d) {
    System sys(quiet());
    sys.boot();
    TeamRuntime team(sys, TeamRuntime::Options{.workers = 4});
    Job& job = team.parallel_for(1200, skewed, d, 16);
    EXPECT_TRUE(team.wait(job));
    return std::pair{job.makespan(), job.imbalance()};
  };
  const auto [t_static, imb_static] = run(Dispatch::kStatic);
  const auto [t_guided, imb_guided] = run(Dispatch::kGuided);
  EXPECT_GT(imb_static, 1.5);             // static split is badly skewed
  EXPECT_LT(imb_guided, 1.15);            // guided evens out
  EXPECT_LT(t_guided, t_static * 3 / 4);  // and finishes much earlier
}

TEST(Team, HardRtTeamAdmitsAndCompletes) {
  System sys(quiet());
  sys.boot();
  TeamRuntime::Options o;
  o.workers = 4;
  o.hard_rt = true;
  o.period = sim::micros(500);
  o.slice = sim::micros(400);
  TeamRuntime team(sys, o);
  Job& job = team.parallel_for(800, sim::micros(2), Dispatch::kStatic, 32);
  ASSERT_TRUE(team.wait(job, sim::seconds(2)));
  EXPECT_TRUE(team.admission_ok());
  EXPECT_EQ(job.iterations_run(), 800u);
  for (nk::Thread* t : team.worker_threads()) {
    EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kPeriodic);
    EXPECT_EQ(t->rt.misses, 0u);
  }
}

TEST(Team, HardRtThrottlingScalesJobTime) {
  auto run_at = [](sim::Nanos slice) {
    System sys(quiet());
    sys.boot();
    TeamRuntime::Options o;
    o.workers = 4;
    o.hard_rt = true;
    o.period = sim::micros(1000);
    o.slice = slice;
    TeamRuntime team(sys, o);
    Job& job = team.parallel_for(2000, sim::micros(2));
    EXPECT_TRUE(team.wait(job, sim::seconds(2)));
    return job.makespan();
  };
  const sim::Nanos full = run_at(sim::micros(800));
  const sim::Nanos half = run_at(sim::micros(400));
  EXPECT_NEAR(static_cast<double>(half) / static_cast<double>(full), 2.0,
              0.35);
}

TEST(Team, RtTeamIsolatedFromBackgroundNoise) {
  System sys(quiet());
  sys.boot();
  // Aperiodic load on every team CPU.
  for (std::uint32_t c = 1; c <= 4; ++c) {
    sys.spawn("noise" + std::to_string(c),
              std::make_unique<nk::BusyLoopBehavior>(sim::micros(40)), c);
  }
  TeamRuntime::Options o;
  o.workers = 4;
  o.hard_rt = true;
  o.period = sim::micros(500);
  o.slice = sim::micros(300);
  TeamRuntime team(sys, o);
  Job& job = team.parallel_for(1000, sim::micros(2));
  ASSERT_TRUE(team.wait(job, sim::seconds(2)));
  // The team got its 60% share; the job time reflects that share, noise or
  // not (within jitter).
  const double ideal =
      1000.0 * 2000.0 / 4.0 / 0.6;  // iters * cost / workers / share
  EXPECT_NEAR(static_cast<double>(job.makespan()), ideal, ideal * 0.25);
}

TEST(Team, ZeroIterationJobCompletes) {
  System sys(quiet());
  sys.boot();
  TeamRuntime team(sys, TeamRuntime::Options{.workers = 3});
  Job& job = team.parallel_for(0, sim::micros(1));
  ASSERT_TRUE(team.wait(job));
  EXPECT_EQ(job.iterations_run(), 0u);
}

TEST(Team, TooManyWorkersThrows) {
  System sys(quiet(3));
  sys.boot();
  EXPECT_THROW(TeamRuntime(sys, TeamRuntime::Options{.workers = 8}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hrt::nrt
