// Integration and property tests across the whole stack:
//   * determinism: identical seeds give identical simulations,
//   * hard invariant: admitted (feasible) constraints never miss, across a
//     parameter sweep and under SMI storms and device-interrupt load,
//   * isolation: RT timing is independent of background load,
//   * group lockstep survives missing time,
//   * full-machine sanity at 256 CPUs.
#include <gtest/gtest.h>

#include "bsp/bsp.hpp"
#include "group/group_admission.hpp"

namespace hrt {
namespace {

nk::Thread* spawn_periodic(System& sys, std::uint32_t cpu, sim::Nanos period,
                           sim::Nanos slice,
                           sim::Nanos phase = sim::millis(1)) {
  auto b = std::make_unique<nk::FnBehavior>(
      [=](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(
              rt::Constraints::periodic(phase, period, slice));
        }
        return nk::Action::compute(period / 7);
      });
  return sys.spawn("p", std::move(b), cpu, 10);
}

// ---------- Determinism ----------

TEST(Determinism, SameSeedSameTrajectory) {
  auto run = [](std::uint64_t seed) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(4);
    o.seed = seed;
    System sys(std::move(o));
    sys.boot();
    nk::Thread* t = spawn_periodic(sys, 1, sim::micros(100), sim::micros(40));
    sys.run_for(sim::millis(50));
    return std::tuple{t->rt.arrivals, t->rt.misses, t->total_cpu_ns,
                      sys.engine().events_executed(),
                      sys.machine().smi().stats().count};
  };
  EXPECT_EQ(run(12345), run(12345));
  EXPECT_NE(std::get<3>(run(1)), std::get<3>(run(2)));
}

// ---------- The hard real-time invariant ----------

struct FeasiblePoint {
  sim::Nanos period;
  int slice_pct;
};

class FeasibleSweep : public ::testing::TestWithParam<FeasiblePoint> {};

TEST_P(FeasibleSweep, AdmittedConstraintsNeverMissOnPhi) {
  const auto p = GetParam();
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = true;  // storms included: eager EDF must absorb them
  System sys(std::move(o));
  sys.boot();
  const sim::Nanos slice = p.period * p.slice_pct / 100;
  nk::Thread* t = spawn_periodic(sys, 1, p.period, slice);
  sys.run_for(sim::millis(200));
  ASSERT_TRUE(t->last_admit_ok) << "sweep point should be admissible";
  EXPECT_GT(t->rt.arrivals, 100u);
  EXPECT_EQ(t->rt.misses, 0u)
      << "admitted constraint missed: tau=" << p.period
      << " sigma%=" << p.slice_pct;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FeasibleSweep,
    ::testing::Values(FeasiblePoint{sim::millis(1), 70},
                      FeasiblePoint{sim::millis(1), 30},
                      FeasiblePoint{sim::micros(500), 60},
                      FeasiblePoint{sim::micros(200), 50},
                      FeasiblePoint{sim::micros(100), 50},
                      FeasiblePoint{sim::micros(100), 20},
                      FeasiblePoint{sim::micros(50), 30},
                      FeasiblePoint{sim::micros(50), 10}));

TEST(Invariant, MultipleRtThreadsAllMeetDeadlines) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  System sys(std::move(o));
  sys.boot();
  nk::Thread* a = spawn_periodic(sys, 1, sim::micros(200), sim::micros(40));
  nk::Thread* b = spawn_periodic(sys, 1, sim::micros(500), sim::micros(120));
  nk::Thread* c = spawn_periodic(sys, 1, sim::millis(2), sim::micros(500));
  sys.run_for(sim::millis(300));
  for (nk::Thread* t : {a, b, c}) {
    ASSERT_TRUE(t->last_admit_ok);
    EXPECT_EQ(t->rt.misses, 0u);
  }
}

TEST(Invariant, SurvivesExtremeSmiStorm) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  // Brutal: ~25 us stolen every ~300 us (~8% of the machine).
  o.spec.smi.mean_interval_ns = sim::micros(300);
  o.spec.smi.min_duration_ns = sim::micros(15);
  o.spec.smi.mean_duration_ns = sim::micros(25);
  o.spec.smi.max_duration_ns = sim::micros(40);
  System sys(std::move(o));
  sys.boot();
  // Modest utilization leaves headroom to absorb the storm.
  nk::Thread* t = spawn_periodic(sys, 1, sim::millis(1), sim::micros(300));
  sys.run_for(sim::millis(500));
  ASSERT_TRUE(t->last_admit_ok);
  EXPECT_GT(sys.machine().smi().stats().count, 1000u);
  // Eager scheduling keeps the miss rate tiny even under this storm.
  EXPECT_LT(static_cast<double>(t->rt.misses),
            0.01 * static_cast<double>(t->rt.arrivals) + 1.0);
}

// ---------- Isolation ----------

TEST(Isolation, RtTimingIndependentOfBackgroundLoad) {
  auto measure = [](int background_threads) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(4);
    o.seed = 77;
    System sys(std::move(o));
    sys.boot();
    nk::Thread* t =
        spawn_periodic(sys, 1, sim::micros(200), sim::micros(60));
    for (int i = 0; i < background_threads; ++i) {
      sys.spawn("bg" + std::to_string(i),
                std::make_unique<nk::BusyLoopBehavior>(sim::micros(70)), 1);
    }
    sys.run_for(sim::millis(200));
    return std::tuple{t->rt.misses, t->total_cpu_ns, t->rt.completions};
  };
  const auto alone = measure(0);
  const auto crowded = measure(6);
  EXPECT_EQ(std::get<0>(alone), 0u);
  EXPECT_EQ(std::get<0>(crowded), 0u);
  // Same CPU share delivered regardless of competition (within jitter).
  EXPECT_NEAR(static_cast<double>(std::get<1>(alone)),
              static_cast<double>(std::get<1>(crowded)),
              0.02 * static_cast<double>(std::get<1>(alone)));
}

TEST(Isolation, AperiodicWorkFillsExactlyTheLeftover) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  spawn_periodic(sys, 1, sim::micros(200), sim::micros(120));  // 60%
  nk::Thread* bg = sys.spawn(
      "bg", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1);
  sys.run_for(sim::millis(200));
  sys.sync_accounting();
  // Background gets roughly the remaining 40% minus overheads.
  const double share = static_cast<double>(bg->total_cpu_ns) / 200e6;
  EXPECT_GT(share, 0.30);
  EXPECT_LT(share, 0.42);
}

// ---------- Groups under fire ----------

TEST(GroupsUnderFire, LockstepSurvivesSmis) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(10);
  o.spec.smi.mean_interval_ns = sim::millis(2);
  o.spec.smi.mean_duration_ns = sim::micros(12);
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();
  bsp::BspConfig cfg;
  cfg.P = 8;
  cfg.NE = 128;
  cfg.NC = 4;
  cfg.NW = 8;
  cfg.N = 150;
  cfg.barrier = false;
  cfg.mode = bsp::Mode::kGroupRt;
  cfg.period = sim::micros(500);
  cfg.slice = sim::micros(350);
  auto r = bsp::run_bsp(sys, cfg);
  EXPECT_TRUE(r.admission_ok);
  EXPECT_TRUE(r.all_done);
  // SMIs are machine-wide (all CPUs freeze together), so they do not break
  // lockstep; the skew bound holds.
  EXPECT_LE(r.max_write_skew, 2u);
  EXPECT_GT(sys.machine().smi().stats().count, 0u);
}

TEST(GroupsUnderFire, SequentialGroupsOnSameSystem) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(10);
  o.smi_enabled = false;
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  System sys(std::move(o));
  sys.boot();
  for (int round = 0; round < 3; ++round) {
    bsp::BspConfig cfg;
    cfg.P = 8;
    cfg.NE = 64;
    cfg.NC = 4;
    cfg.NW = 4;
    cfg.N = 30;
    cfg.mode = bsp::Mode::kGroupRt;
    cfg.period = sim::micros(300);
    cfg.slice = sim::micros(200);
    auto r = bsp::run_bsp(sys, cfg);
    EXPECT_TRUE(r.admission_ok) << "round " << round;
    EXPECT_TRUE(r.all_done) << "round " << round;
  }
  // Utilization fully released between rounds.
  for (std::uint32_t c = 1; c <= 8; ++c) {
    EXPECT_NEAR(sys.sched(c).admitted_utilization(), 0.0, 1e-9);
  }
}

// ---------- Full machine ----------

TEST(FullMachine, Boot256AndRunMixedLoad) {
  System sys;  // full Phi, SMIs on
  sys.boot();
  std::vector<nk::Thread*> rts;
  for (std::uint32_t c = 1; c <= 64; c += 4) {
    rts.push_back(
        spawn_periodic(sys, c, sim::micros(100) * (1 + c % 5),
                       sim::micros(30) * (1 + c % 5)));
  }
  for (std::uint32_t c = 2; c <= 32; c += 8) {
    sys.spawn("bg" + std::to_string(c),
              std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), c);
  }
  sys.run_for(sim::millis(100));
  for (nk::Thread* t : rts) {
    ASSERT_TRUE(t->last_admit_ok);
    EXPECT_GT(t->rt.arrivals, 100u);
    EXPECT_EQ(t->rt.misses, 0u);
  }
}

TEST(FullMachine, IdleMachineIsQuiet) {
  // Tickless design: an idle 256-CPU machine executes almost no events.
  System::Options o;
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  const auto before = sys.engine().events_executed();
  sys.run_for(sim::seconds(1));
  EXPECT_LT(sys.engine().events_executed() - before, 100u);
}

// ---------- R415 cross-machine ----------

TEST(R415, FinerConstraintsFeasible) {
  System::Options o;
  o.spec = hw::MachineSpec::r415();
  // A 10 us period leaves only ~4 us of slack; an SMI stealing 8-25 us
  // cannot be absorbed at that granularity on *any* scheduler (section 3.6
  // bounds the damage, it cannot erase it), so isolate quantization from
  // missing time here.
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = spawn_periodic(sys, 1, sim::micros(10), sim::micros(3));
  sys.run_for(sim::millis(100));
  ASSERT_TRUE(t->last_admit_ok);
  EXPECT_GT(t->rt.arrivals, 5000u);
  EXPECT_EQ(t->rt.misses, 0u);  // infeasible on the Phi, fine here
}

}  // namespace
}  // namespace hrt
