// Failure injection: SMIs and interrupt storms striking at the worst
// moments (during group admission, during barrier waits, mid-handler), and
// robustness of the protocols under them.
#include <gtest/gtest.h>

#include "audit/replay.hpp"
#include "bsp/bsp.hpp"
#include "group/group_admission.hpp"
#include "runtime/team.hpp"

namespace hrt {
namespace {

System::Options base(std::uint32_t cpus = 6) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;  // injected explicitly per test
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  return o;
}

TEST(FailureInjection, SmiDuringGroupAdmissionStillSucceeds) {
  System sys(base());
  sys.boot();
  grp::ThreadGroup* group = sys.groups().create("g", 4);
  std::vector<grp::GroupAdmitThenBehavior*> members;
  for (std::uint32_t r = 0; r < 4; ++r) {
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(sim::millis(5), sim::micros(500),
                                  sim::micros(200)),
        std::make_unique<nk::BusyLoopBehavior>(sim::micros(20)));
    members.push_back(b.get());
    sys.spawn("m" + std::to_string(r), std::move(b), 1 + r);
  }
  // Hammer the admission window with stop-the-world freezes.
  for (int i = 1; i <= 20; ++i) {
    sys.engine().schedule_at(sys.engine().now() + i * sim::micros(40), [&] {
      sys.machine().smi().force(sim::micros(15));
    });
  }
  sys.run_for(sim::millis(30));
  for (auto* m : members) {
    ASSERT_TRUE(m->protocol().done());
    EXPECT_TRUE(m->protocol().succeeded());
  }
  // The group still runs in lockstep afterwards (phases were corrected
  // against the *observed* gammas).
  sys.run_for(sim::millis(20));
  for (nk::Thread* t : group->members()) {
    EXPECT_GT(t->rt.arrivals, 20u);
  }
}

TEST(FailureInjection, SmiStormDuringBspBarrierRuns) {
  System::Options o = base(10);
  o.spec.smi.enabled = true;
  o.spec.smi.mean_interval_ns = sim::micros(500);
  o.spec.smi.min_duration_ns = sim::micros(10);
  o.spec.smi.mean_duration_ns = sim::micros(15);
  o.spec.smi.max_duration_ns = sim::micros(25);
  o.smi_enabled = true;
  System sys(std::move(o));
  sys.boot();
  bsp::BspConfig cfg;
  cfg.P = 8;
  cfg.NE = 128;
  cfg.NC = 4;
  cfg.NW = 8;
  cfg.N = 100;
  cfg.barrier = true;
  cfg.mode = bsp::Mode::kAperiodic;
  auto r = bsp::run_bsp(sys, cfg);
  EXPECT_TRUE(r.all_done);
  EXPECT_LE(r.max_write_skew, 1u);  // barriers still correct under SMIs
  EXPECT_GT(sys.machine().smi().stats().count, 5u);
}

TEST(FailureInjection, DeviceStormDuringAdmissionOnLadenCpu) {
  System sys(base());
  auto& dev = sys.machine().add_device(0x50, hw::Device::Arrival::kPoisson,
                                       sim::micros(15));
  sys.kernel().register_device_handler(0x50, 8000);
  sys.boot();
  sys.kernel().apply_interrupt_partition();
  dev.start();
  // Admission runs on CPU 0 (interrupt-laden) while ~65k irq/s arrive.
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(2), sim::micros(500), sim::micros(150)));
        }
        return nk::Action::compute(sim::micros(30));
      });
  nk::Thread* t = sys.spawn("rt", std::move(b), 0, 10);
  sys.run_for(sim::millis(100));
  ASSERT_TRUE(t->last_admit_ok);
  // Once admitted, TPR steering shields the slices: no misses despite the
  // storm on this very CPU.
  EXPECT_GT(t->rt.arrivals, 150u);
  EXPECT_EQ(t->rt.misses, 0u);
}

TEST(FailureInjection, BackToBackSmisExtendSingleFreeze) {
  System sys(base(2));
  sys.boot();
  sim::Nanos done_at = -1;
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(100),
                                    [&](nk::ThreadCtx& c) {
                                      done_at =
                                          c.kernel.machine().engine().now();
                                    })}),
            1);
  sys.run_for(sim::micros(20));
  const sim::Nanos t0 = sys.engine().now();
  // Three overlapping SMIs: 0..50, 30..80, 60..110 us -> one 110 us window.
  sys.machine().smi().force(sim::micros(50));
  sys.engine().schedule_at(t0 + sim::micros(30),
                           [&] { sys.machine().smi().force(sim::micros(50)); });
  sys.engine().schedule_at(t0 + sim::micros(60),
                           [&] { sys.machine().smi().force(sim::micros(50)); });
  sys.run_for(sim::millis(1));
  ASSERT_GT(done_at, 0);
  // Timeline: ~15 us of the 100 us compute ran before t0; the merged
  // freeze spans [t0, t0+110]; the remaining ~85 us complete after it.
  EXPECT_GE(done_at, t0 + sim::micros(110 + 75));
  EXPECT_LT(done_at, t0 + sim::micros(110 + 100));
}

TEST(FailureInjection, TeamSurvivesSmiMidJob) {
  System::Options o = base(8);
  System sys(std::move(o));
  sys.boot();
  nrt::TeamRuntime team(sys, nrt::TeamRuntime::Options{.workers = 6});
  nrt::Job& job =
      team.parallel_for(1200, sim::micros(3), nrt::Dispatch::kGuided, 16);
  sys.run_for(sim::micros(300));
  sys.machine().smi().force(sim::micros(80));
  ASSERT_TRUE(team.wait(job));
  EXPECT_EQ(job.iterations_run(), 1200u);
}

TEST(FailureInjection, WorstCaseSmiAtSliceEndCausesBoundedLateness) {
  System sys(base(2));
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(70)));
        }
        return nk::Action::compute(sim::micros(20));
      });
  nk::Thread* t = sys.spawn("rt", std::move(b), 1, 10);
  sys.run_for(sim::millis(2));
  // Fire an SMI at exactly the point where only ~15 us of slack remain.
  const sim::Nanos arrival_aligned =
      ((sys.engine().now() / sim::micros(100)) + 1) * sim::micros(100);
  sys.engine().schedule_at(arrival_aligned + sim::micros(80), [&] {
    sys.machine().smi().force(sim::micros(40));
  });
  sys.run_for(sim::millis(5));
  // One miss at most, and its lateness is bounded by the SMI length.
  EXPECT_LE(t->rt.misses, 1u);
  if (t->rt.misses == 1) {
    EXPECT_LT(t->rt.miss_ns.max(), sim::micros(45));
  }
}

// ---------- EDF replay oracle under SMI injection ----------
//
// The oracle's tolerances (replay_config_for) include the machine's maximum
// SMI missing-time, so a trace recorded under live firmware theft must still
// replay clean: every dispatch EDF-ordered, every miss accounted for.

std::unique_ptr<nk::FnBehavior> replay_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

void expect_replay_clean(System& sys, const std::vector<nk::Thread*>& threads,
                         std::uint32_t cpu) {
  std::vector<audit::ReplayTask> tasks;
  for (nk::Thread* t : threads) {
    tasks.push_back({t->id, t->constraints, t->rt.gamma});
  }
  const audit::ReplayConfig cfg =
      audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), cpu, tasks,
                                            cfg, sys.engine().now());
  for (nk::Thread* t : threads) {
    const std::uint64_t tol = std::max<std::uint64_t>(3, t->rt.arrivals / 50);
    audit::verify_stats(r, t->id, t->rt.arrivals, t->rt.completions,
                        t->rt.misses, tol);
  }
  for (const auto& d : r.divergences) {
    ADD_FAILURE() << "t=" << d.time << "ns: " << d.detail;
  }
  EXPECT_TRUE(r.ok());
}

TEST(FailureInjection, ReplayOracleValidatesSmiStormTrace) {
  System::Options o = base(2);
  o.spec.smi.enabled = true;
  o.spec.smi.mean_interval_ns = sim::micros(400);
  o.spec.smi.min_duration_ns = sim::micros(10);
  o.spec.smi.mean_duration_ns = sim::micros(20);
  o.spec.smi.max_duration_ns = sim::micros(40);
  o.smi_enabled = true;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a =
      sys.spawn("a",
                replay_worker(rt::Constraints::periodic(
                    sim::millis(1), sim::micros(200), sim::micros(40))),
                1);
  nk::Thread* b =
      sys.spawn("b",
                replay_worker(rt::Constraints::periodic(
                    sim::millis(1), sim::micros(500), sim::micros(100))),
                1);
  sys.run_for(sim::millis(50));
  ASSERT_TRUE(a->last_admit_ok);
  ASSERT_TRUE(b->last_admit_ok);
  EXPECT_GT(sys.machine().smi().stats().count, 50u);
  EXPECT_GT(a->rt.arrivals, 200u);
  expect_replay_clean(sys, {a, b}, 1);
}

TEST(FailureInjection, ReplayOracleValidatesBurstSmiTrace) {
  System::Options o = base(2);
  o.spec.smi.enabled = true;
  o.spec.smi.mean_interval_ns = sim::millis(2);
  o.spec.smi.min_duration_ns = sim::micros(10);
  o.spec.smi.mean_duration_ns = sim::micros(15);
  o.spec.smi.max_duration_ns = sim::micros(30);
  o.spec.smi.burst_enabled = true;
  o.spec.smi.storm_mean_interval_ns = sim::micros(120);
  o.spec.smi.mean_quiet_ns = sim::millis(4);
  o.spec.smi.mean_storm_ns = sim::millis(2);
  o.smi_enabled = true;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* t =
      sys.spawn("rt",
                replay_worker(rt::Constraints::periodic(
                    sim::millis(1), sim::micros(250), sim::micros(60))),
                1);
  sys.run_for(sim::millis(60));
  ASSERT_TRUE(t->last_admit_ok);
  // The Markov modulation actually cycled through storm states.
  EXPECT_GT(sys.machine().smi().stats().storm_transitions, 2u);
  EXPECT_GT(sys.machine().smi().stats().count, 30u);
  EXPECT_GT(t->rt.arrivals, 150u);
  expect_replay_clean(sys, {t}, 1);
}

}  // namespace
}  // namespace hrt
