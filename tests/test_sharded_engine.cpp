// Sharded deterministic simulation engine (sim/sharded_engine.hpp) and the
// shared host worker pool (sim/worker_pool.hpp).
//
// The load-bearing claims under test:
//   1. Serial-commit ShardedEngine executes the EXACT (when, band, seq)
//      order of the serial Engine and the seed LegacyEngine — fuzzed over
//      randomized schedule/cancel/reschedule workloads including
//      cross-domain IPI storms and same-timestamp band ties, at shard
//      counts {1, 2, 4, 8}.
//   2. Full-kernel scenarios (fig06-style miss-rate cells, fig12-style
//      group sync) produce byte-identical sim::Trace output across host
//      thread counts {1, 2, 4, 8} and across repeated runs, and the EDF
//      replay oracle validates sharded traces unchanged.
//   3. Parallel-commit mode is deterministic across shard counts for
//      shard-confined workloads, and enforces the conservative-lookahead
//      contract on cross-shard posts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "group/group_admission.hpp"
#include "rt/system.hpp"
#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/worker_pool.hpp"

namespace hrt {
namespace {

// ---------- WorkerPool ----------

TEST(WorkerPool, DynamicCoversEveryIndexExactlyOnce) {
  sim::WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, StripedCoversEveryIndexExactlyOnce) {
  sim::WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(257);  // not a multiple of the stride
  pool.for_stripes(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SingleThreadRunsInline) {
  sim::WorkerPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(WorkerPool, ExceptionPropagatesAndPoolStaysUsable) {
  sim::WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  std::atomic<int> n{0};
  pool.parallel_for(100, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

// ---------- Cross-engine equivalence fuzz ----------

// One executed event: (when, band, tag).  Identical sequences across
// backends == identical pop order.
struct PopRecord {
  sim::Nanos when;
  int band;
  std::uint64_t tag;
  bool operator==(const PopRecord& o) const {
    return when == o.when && band == o.band && tag == o.tag;
  }
};

constexpr sim::Nanos kIpiLat = 400;  // fuzz lookahead / cross-domain latency
constexpr std::uint32_t kFuzzDomains = 9;  // global + 8 CPUs

// A backend executes the shared op stream against one engine type.  The op
// stream is addressed by (domain, slot): slots identify cancellable
// handles uniformly across backends.
class FuzzBackend {
 public:
  virtual ~FuzzBackend() = default;
  virtual void schedule(std::uint32_t domain, sim::Nanos when,
                        sim::EventBand band, std::uint64_t tag,
                        int action) = 0;
  virtual void cancel_slot(std::size_t slot) = 0;
  virtual void run_until(sim::Nanos t) = 0;
  virtual std::size_t slots() const = 0;
  std::vector<PopRecord> log;

 protected:
  // Callback actions exercised from inside event execution:
  //   0: none
  //   1: reschedule on the same domain at now + 1 (late-event path)
  //   2: "IPI": schedule on the next domain at now + kIpiLat
  //   3: cancel the most recent still-live slot
  static constexpr int kNone = 0, kLate = 1, kIpi = 2, kCancel = 3;
};

template <typename EngineT>
class SerialBackend : public FuzzBackend {
 public:
  void schedule(std::uint32_t domain, sim::Nanos when, sim::EventBand band,
                std::uint64_t tag, int action) override {
    ids_.push_back(eng_.schedule_at(
        when, [this, domain, when, band, tag, action] {
          on_fire(domain, when, band, tag, action);
        },
        band));
  }
  void cancel_slot(std::size_t slot) override { eng_.cancel(ids_[slot]); }
  void run_until(sim::Nanos t) override { eng_.run_until(t); }
  std::size_t slots() const override { return ids_.size(); }

 private:
  void on_fire(std::uint32_t domain, sim::Nanos when, sim::EventBand band,
               std::uint64_t tag, int action) {
    log.push_back(PopRecord{when, static_cast<int>(band), tag});
    if (action == kLate) {
      schedule(domain, eng_.now() + 1, sim::EventBand::kDefault, tag ^ 0x10,
               kNone);
    } else if (action == kIpi) {
      schedule((domain + 1) % kFuzzDomains, eng_.now() + kIpiLat,
               sim::EventBand::kHardware, tag ^ 0x20, kNone);
    } else if (action == kCancel && !ids_.empty()) {
      eng_.cancel(ids_.back());
    }
  }
  EngineT eng_;
  std::vector<sim::EventId> ids_;
};

class ShardedBackend : public FuzzBackend {
 public:
  explicit ShardedBackend(std::uint32_t shards)
      : eng_(make_config(shards)) {}

  void schedule(std::uint32_t domain, sim::Nanos when, sim::EventBand band,
                std::uint64_t tag, int action) override {
    refs_.push_back(eng_.schedule_at(
        domain, when,
        [this, domain, when, band, tag, action] {
          on_fire(domain, when, band, tag, action);
        },
        band));
  }
  void cancel_slot(std::size_t slot) override { eng_.cancel(refs_[slot]); }
  void run_until(sim::Nanos t) override { eng_.run_until(t); }
  std::size_t slots() const override { return refs_.size(); }

 private:
  static sim::ShardedEngine::Config make_config(std::uint32_t shards) {
    sim::ShardedEngine::Config cfg;
    cfg.shards = shards;
    cfg.domains = kFuzzDomains;
    cfg.lookahead = kIpiLat;
    cfg.commit = sim::ShardedEngine::CommitMode::kSerial;
    return cfg;
  }
  void on_fire(std::uint32_t domain, sim::Nanos when, sim::EventBand band,
               std::uint64_t tag, int action) {
    log.push_back(PopRecord{when, static_cast<int>(band), tag});
    if (action == kLate) {
      schedule(domain, eng_.now() + 1, sim::EventBand::kDefault, tag ^ 0x10,
               kNone);
    } else if (action == kIpi) {
      schedule((domain + 1) % kFuzzDomains, eng_.now() + kIpiLat,
               sim::EventBand::kHardware, tag ^ 0x20, kNone);
    } else if (action == kCancel && !refs_.empty()) {
      eng_.cancel(refs_.back());
    }
  }
  sim::ShardedEngine eng_;
  std::vector<sim::ShardedEngine::EventRef> refs_;
};

// Drive one deterministic op stream into `b`.  Same seed -> same stream.
void drive_fuzz(FuzzBackend& b, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  sim::Nanos t = 0;
  std::uint64_t tag = 0;
  for (int batch = 0; batch < 40; ++batch) {
    const int ops = 1 + static_cast<int>(rng() % 64);
    for (int i = 0; i < ops; ++i) {
      const std::uint64_t r = rng();
      if (r % 100 < 12 && b.slots() > 0) {
        b.cancel_slot(rng() % b.slots());
        continue;
      }
      // Round timestamps force same-(when) collisions so band/seq
      // tie-breaks carry the ordering.
      sim::Nanos when = t + static_cast<sim::Nanos>(rng() % 5000);
      if (r % 100 < 30) when &= ~sim::Nanos{63};
      if (when < t) when = t;
      const auto band = static_cast<sim::EventBand>(rng() % 4);
      const auto domain = static_cast<std::uint32_t>(rng() % kFuzzDomains);
      const int action = static_cast<int>(rng() % 4);
      b.schedule(domain, when, band, ++tag, action);
    }
    t += static_cast<sim::Nanos>(500 + rng() % 3000);
    b.run_until(t);
  }
  b.run_until(t + sim::millis(1));  // drain stragglers
}

TEST(ShardedEngineFuzz, PopOrderMatchesSerialAndLegacyEngines) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    SerialBackend<sim::LegacyEngine> legacy;
    SerialBackend<sim::Engine> wheel;
    drive_fuzz(legacy, seed);
    drive_fuzz(wheel, seed);
    ASSERT_EQ(wheel.log.size(), legacy.log.size()) << "seed " << seed;
    ASSERT_TRUE(wheel.log == legacy.log) << "seed " << seed;
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      ShardedBackend sharded(shards);
      drive_fuzz(sharded, seed);
      ASSERT_EQ(sharded.log.size(), wheel.log.size())
          << "seed " << seed << " shards " << shards;
      ASSERT_TRUE(sharded.log == wheel.log)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardedEngine, RunSemanticsMatchSerialEngine) {
  // now() advances to t_end, events at exactly t_end run, counters agree.
  sim::Engine serial;
  sim::ShardedEngine::Config cfg;
  cfg.shards = 4;
  cfg.domains = kFuzzDomains;
  cfg.lookahead = kIpiLat;
  sim::ShardedEngine sharded(cfg);

  int serial_fired = 0;
  int sharded_fired = 0;
  serial.schedule_at(1000, [&] { ++serial_fired; });
  serial.schedule_at(2000, [&] { ++serial_fired; });
  sharded.schedule_at(3, 1000, [&] { ++sharded_fired; });
  sharded.schedule_at(5, 2000, [&] { ++sharded_fired; });

  EXPECT_EQ(serial.run_until(1000), 1u);
  EXPECT_EQ(sharded.run_until(1000), 1u);
  EXPECT_EQ(serial.now(), sharded.now());
  EXPECT_EQ(serial.pending_count(), sharded.pending_count());
  EXPECT_EQ(serial.run_until(5000), 1u);
  EXPECT_EQ(sharded.run_until(5000), 1u);
  EXPECT_EQ(serial.now(), 5000);
  EXPECT_EQ(sharded.now(), 5000);
  EXPECT_TRUE(sharded.empty());
  EXPECT_EQ(sharded.events_executed(), 2u);
  EXPECT_EQ(sharded_fired, serial_fired);

  // Shard-0 delegation: components holding a plain Engine& drive the whole
  // sharded run through it.
  sim::Engine& front = sharded.shard(0);
  sharded.schedule_at(2, 6000, [&] { ++sharded_fired; });
  EXPECT_FALSE(front.empty());
  EXPECT_EQ(front.pending_count(), 1u);
  EXPECT_EQ(front.run_until(7000), 1u);
  EXPECT_EQ(front.now(), 7000);
  EXPECT_EQ(sharded_fired, 3);
  EXPECT_EQ(front.events_executed(), 3u);
}

// ---------- Full-kernel determinism fingerprints ----------

std::string trace_bytes(const sim::Trace& trace) {
  std::ostringstream os;
  for (const auto& r : trace.records()) {
    os << r.time << '|' << r.cpu << '|' << static_cast<int>(r.kind) << '|'
       << r.value << '\n';
  }
  return os.str();
}

std::unique_ptr<nk::FnBehavior> rt_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

struct KernelFingerprint {
  std::string trace;
  std::uint64_t events = 0;
  sim::Nanos end = 0;
  std::vector<std::uint64_t> thread_stats;
  bool operator==(const KernelFingerprint& o) const {
    return trace == o.trace && events == o.events && end == o.end &&
           thread_stats == o.thread_stats;
  }
};

// fig06-style miss-rate cell: phi_small machine, periodic RT workers with
// distinct periods/slices (one infeasible mix), SMIs enabled.
KernelFingerprint run_fig06_style(unsigned host_threads) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.seed = 1234;
  o.sched.admission_enabled = false;
  o.sim_host_threads = host_threads;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  std::vector<nk::Thread*> threads;
  threads.push_back(sys.spawn(
      "a",
      rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(450),
                                          sim::micros(100))),
      1));
  threads.push_back(sys.spawn(
      "b",
      rt_worker(rt::Constraints::periodic(sim::micros(500), sim::micros(250),
                                          sim::micros(50))),
      2));
  threads.push_back(sys.spawn(
      "c",
      rt_worker(rt::Constraints::periodic(sim::millis(2), sim::millis(1),
                                          sim::micros(200))),
      3));
  sys.run_for(sim::millis(50));
  if (host_threads > 1) {
    // The sharded path must actually be engaged, windows and all.
    EXPECT_NE(sys.machine().sharded(), nullptr);
    EXPECT_GT(sys.machine().num_shards(), 1u);
    EXPECT_GT(sys.machine().sharded()->windows_run(), 0u);
  }
  KernelFingerprint fp;
  fp.trace = trace_bytes(sys.machine().trace());
  fp.events = sys.engine().events_executed();
  fp.end = sys.engine().now();
  for (auto* t : threads) {
    fp.thread_stats.push_back(t->rt.arrivals);
    fp.thread_stats.push_back(t->rt.completions);
    fp.thread_stats.push_back(t->rt.misses);
    fp.thread_stats.push_back(static_cast<std::uint64_t>(t->total_cpu_ns));
  }
  return fp;
}

TEST(DeterminismFingerprint, Fig06StyleBitIdenticalAcrossHostThreads) {
  const KernelFingerprint baseline = run_fig06_style(1);
  ASSERT_FALSE(baseline.trace.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    const KernelFingerprint fp = run_fig06_style(threads);
    EXPECT_EQ(fp.trace, baseline.trace) << "host_threads=" << threads;
    EXPECT_TRUE(fp == baseline) << "host_threads=" << threads;
  }
  // Repeated runs at the same thread count are also identical.
  EXPECT_TRUE(run_fig06_style(4) == run_fig06_style(4));
}

// fig12-style group sync: a hard real-time group spanning CPUs, admitted
// through the full group protocol, generating cross-CPU kick IPIs — the
// cross-shard traffic the mailbox/late-event machinery must order exactly.
KernelFingerprint run_fig12_style(unsigned host_threads) {
  constexpr std::uint32_t kMembers = 4;
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(kMembers + 2);
  o.seed = 99;
  o.sim_host_threads = host_threads;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  grp::ThreadGroup* group = sys.groups().create("sync", kMembers);
  const sim::Nanos phase = sim::millis(2) + kMembers * sim::micros(60);
  for (std::uint32_t r = 0; r < kMembers; ++r) {
    auto inner = std::make_unique<nk::BusyLoopBehavior>(sim::micros(20));
    auto b = std::make_unique<grp::GroupAdmitThenBehavior>(
        *group,
        rt::Constraints::periodic(phase, sim::micros(100), sim::micros(50)),
        std::move(inner));
    sys.spawn("s" + std::to_string(r), std::move(b), 1 + r);
  }
  sys.run_for(sim::millis(30));
  KernelFingerprint fp;
  fp.trace = trace_bytes(sys.machine().trace());
  fp.events = sys.engine().events_executed();
  fp.end = sys.engine().now();
  return fp;
}

TEST(DeterminismFingerprint, Fig12StyleBitIdenticalAcrossHostThreads) {
  const KernelFingerprint baseline = run_fig12_style(1);
  ASSERT_FALSE(baseline.trace.empty());
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_TRUE(run_fig12_style(threads) == baseline)
        << "host_threads=" << threads;
  }
}

// The EDF replay oracle consumes a sharded trace unchanged: the schedule a
// 4-shard machine produced is the schedule the serial oracle re-derives.
TEST(ShardedReplay, OracleValidatesShardedTrace) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.audit.enabled = true;
  o.sim_host_threads = 4;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a",
      rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                          sim::micros(20))),
      1);
  nk::Thread* b = sys.spawn(
      "b",
      rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(250),
                                          sim::micros(50))),
      1);
  sys.run_for(sim::millis(50));

  const std::vector<audit::ReplayTask> tasks = {
      {a->id, a->constraints, a->rt.gamma},
      {b->id, b->constraints, b->rt.gamma},
  };
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), 1, tasks,
                                            cfg, sys.engine().now());
  for (const auto& d : r.divergences) {
    ADD_FAILURE() << "t=" << d.time << "ns: " << d.detail;
  }
  EXPECT_TRUE(r.ok());
  ASSERT_NE(r.find(a->id), nullptr);
  EXPECT_GT(r.find(a->id)->arrivals, 400u);
}

// ---------- Parallel-commit mode ----------

sim::ShardedEngine::Config parallel_cfg(std::uint32_t shards,
                                        std::uint32_t domains) {
  sim::ShardedEngine::Config cfg;
  cfg.shards = shards;
  cfg.domains = domains;
  cfg.lookahead = kIpiLat;
  cfg.commit = sim::ShardedEngine::CommitMode::kParallel;
  return cfg;
}

// Shard-confined workload: every domain runs a self-rescheduling timer
// chain and occasionally posts to a neighbor domain.  Logs are per-domain,
// so concurrent commits never share a log vector.
std::vector<std::vector<sim::Nanos>> run_parallel_chains(
    std::uint32_t shards, std::uint32_t domains, sim::Nanos horizon) {
  sim::ShardedEngine eng(parallel_cfg(shards, domains));
  std::vector<std::vector<sim::Nanos>> logs(domains);
  std::function<void(std::uint32_t, sim::Nanos, int)> arm =
      [&](std::uint32_t d, sim::Nanos when, int hops) {
        eng.schedule_at(d, when, [&, d, hops] {
          sim::Nanos now = eng.engine_for(d).now();
          logs[d].push_back(now);
          // Deterministic per-domain cadence, plus a cross-domain post
          // every 8th firing.
          const sim::Nanos step = 200 + 37 * static_cast<sim::Nanos>(d % 11);
          if (hops > 0) arm(d, now + step, hops - 1);
          if (hops % 8 == 3) {
            const std::uint32_t dst = (d + 1) % domains;
            eng.post(d, dst, now + kIpiLat, [&logs, dst, &eng] {
              logs[dst].push_back(-eng.engine_for(dst).now());
            });
          }
        });
      };
  for (std::uint32_t d = 0; d < domains; ++d) {
    arm(d, 100 + 13 * static_cast<sim::Nanos>(d), /*hops=*/64);
  }
  eng.run_until(horizon);
  return logs;
}

TEST(ShardedParallelCommit, DeterministicAcrossShardCounts) {
  constexpr std::uint32_t kDomains = 33;
  const auto baseline = run_parallel_chains(1, kDomains, sim::micros(200));
  std::size_t total = 0;
  for (const auto& l : baseline) total += l.size();
  ASSERT_GT(total, 500u);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_TRUE(run_parallel_chains(shards, kDomains, sim::micros(200)) ==
                baseline)
        << "shards=" << shards;
  }
  // Repeatability at a fixed shard count.
  EXPECT_TRUE(run_parallel_chains(4, kDomains, sim::micros(200)) == baseline);
}

TEST(ShardedParallelCommit, LookaheadViolationThrows) {
  sim::ShardedEngine eng(parallel_cfg(4, 9));
  eng.schedule_at(1, 1000, [&] {
    // A cross-domain post below the lookahead horizon must be rejected:
    // the destination shard may already be past this time.
    eng.post(1, 2, eng.engine_for(1).now() + 1, [] {});
  });
  EXPECT_THROW(eng.run_until(sim::micros(10)), std::logic_error);
}

}  // namespace
}  // namespace hrt
