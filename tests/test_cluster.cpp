// Cluster tier (src/cluster/, docs/CLUSTER.md): ledger rollup + kClusterLedger
// audit, tenant fairshare, criticality ordering, node failover with zero
// post-failover misses, drains (make-before-break), seeded-fault regressions
// (corrupt rollup, mid-drain crash, double-failure shed ordering, placement
// rollback), best-effort preemption/backfill, zombie fencing on restore, and
// replay-oracle validation of a full failover trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "audit/replay.hpp"
#include "cluster/controller.hpp"

namespace hrt::cluster {
namespace {

ClusterController::Options clustered(std::uint32_t nodes = 2,
                                     std::uint32_t cpus = 2) {
  ClusterController::Options o;
  o.nodes = nodes;
  o.node_options.spec = hw::MachineSpec::phi_small(cpus);
  o.node_options.smi_enabled = false;
  o.node_options.spec.smi.enabled = false;
  o.node_options.audit.enabled = true;  // accumulate; FORCE builds throw
  o.audit.enabled = true;
  return o;
}

JobSpec gang(const std::string& tenant, const std::string& name,
             std::uint32_t threads, sim::Nanos slice,
             sim::Nanos period = sim::millis(1)) {
  JobSpec s;
  s.tenant = tenant;
  s.name = name;
  s.kind = JobKind::kGang;
  s.threads = threads;
  s.constraints = rt::Constraints::periodic(period, period, slice);
  s.work_chunk = sim::micros(200);  // fast eviction boundaries for tests
  return s;
}

JobSpec best_effort(const std::string& tenant, const std::string& name,
                    std::uint32_t threads) {
  JobSpec s;
  s.tenant = tenant;
  s.name = name;
  s.kind = JobKind::kBestEffort;
  s.threads = threads;
  s.work_chunk = sim::micros(200);
  return s;
}

/// Run `fn`, tolerating the AuditError a throwing-mode (HRT_FORCE_AUDIT)
/// auditor raises, and return how many `inv` violations were seen.
std::uint64_t run_counting(ClusterController& ctl, audit::Invariant inv,
                           const std::function<void()>& fn) {
  try {
    fn();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), inv) << e.what();
  }
  return ctl.auditor().count(inv);
}

std::uint64_t rt_misses_on_current_placements(const ClusterController& ctl) {
  std::uint64_t misses = 0;
  for (const auto& j : ctl.jobs()) {
    if (j.kind != JobKind::kBestEffort) misses += j.misses;
  }
  return misses;
}

// ---------- ledger rollup + audit ----------

TEST(ClusterLedger, RollupMatchesNodeLedgers) {
  ClusterController ctl(clustered(2, 2));
  ctl.submit(gang("acme", "web", 2, sim::micros(300)));
  ctl.submit(gang("acme", "db", 1, sim::micros(200)));
  ctl.run_for(sim::millis(10));

  for (std::uint32_t n = 0; n < ctl.num_nodes(); ++n) {
    const auto& src = ctl.node(n).placement().ledger();
    rt::fp::Raw committed = 0;
    rt::fp::Raw capacity = 0;
    for (std::uint32_t c = 0; c < src.num_cpus(); ++c) {
      committed += src.committed_raw(c);
      capacity += src.capacity_raw(c);
    }
    EXPECT_EQ(ctl.ledger().entry(n).committed, committed) << "node " << n;
    EXPECT_EQ(ctl.ledger().entry(n).capacity, capacity) << "node " << n;
  }
  // Both jobs admitted somewhere, so the cluster rollup carries real load.
  EXPECT_GT(ctl.ledger().total_committed(), 0.4);
  EXPECT_EQ(ctl.auditor().count(audit::Invariant::kClusterLedger), 0u);
}

TEST(ClusterLedger, AuditCatchesCorruptRollup) {
  ClusterController::Options o = clustered(2, 2);
  o.test_faults.corrupt_rollup = true;
  ClusterController ctl(std::move(o));
  const std::uint64_t violations =
      run_counting(ctl, audit::Invariant::kClusterLedger,
                   [&] { ctl.run_for(sim::millis(5)); });
  EXPECT_GE(violations, 1u);
}

// ---------- tenants: fairshare + criticality ----------

TEST(ClusterTenants, FairShareFollowsWeights) {
  ClusterController ctl(clustered(2, 2));
  ctl.add_tenant({"gold", 3.0, 10});
  ctl.add_tenant({"bronze", 1.0, 100});
  ctl.submit(gang("gold", "g", 1, sim::micros(200)));
  ctl.submit(gang("bronze", "b", 1, sim::micros(200)));
  ctl.run_for(sim::millis(5));

  const auto tenants = ctl.tenants();
  ASSERT_EQ(tenants.size(), 2u);
  ASSERT_GT(tenants[1].fair_share, 0.0);
  EXPECT_NEAR(tenants[0].fair_share / tenants[1].fair_share, 3.0, 1e-9);
  // Both tenants' placed demand is tracked against their share.
  EXPECT_NEAR(tenants[0].placed_util, 0.2, 0.01);
  EXPECT_NEAR(tenants[1].placed_util, 0.2, 0.01);
}

TEST(ClusterTenants, CriticalJobDisplacesLessCriticalWhenFull) {
  ClusterController ctl(clustered(1, 2));  // one node: force contention
  ctl.add_tenant({"crit", 1.0, 10});
  ctl.add_tenant({"bulk", 1.0, 200});
  // Bulk fills the node (2 CPUs x 0.79 capacity = 1.58).
  ctl.submit(gang("bulk", "b0", 2, sim::micros(700)));  // demand 1.4
  ctl.run_for(sim::millis(5));
  ASSERT_EQ(ctl.jobs()[0].state, JobState::kRunning);

  // Critical demand arrives; nothing fits until bulk is shed.
  ctl.submit(gang("crit", "c0", 2, sim::micros(500)));  // demand 1.0
  ctl.run_for(sim::millis(10));

  const auto jobs = ctl.jobs();
  EXPECT_EQ(jobs[1].state, JobState::kRunning) << "critical job must run";
  EXPECT_NE(jobs[0].state, JobState::kRunning) << "bulk job must be shed";
  EXPECT_GE(ctl.stats().sheds, 1u);
  EXPECT_EQ(jobs[1].misses, 0u);
}

TEST(ClusterTenants, EqualCriticalityNeverSheds) {
  ClusterController ctl(clustered(1, 2));
  ctl.add_tenant({"a", 1.0, 50});
  ctl.add_tenant({"b", 1.0, 50});
  ctl.submit(gang("a", "a0", 2, sim::micros(700)));
  ctl.run_for(sim::millis(5));
  ctl.submit(gang("b", "b0", 2, sim::micros(500)));
  ctl.run_for(sim::millis(10));

  // Strictly-less-critical only: an equal-rank tenant cannot displace.
  EXPECT_EQ(ctl.jobs()[0].state, JobState::kRunning);
  EXPECT_EQ(ctl.jobs()[1].state, JobState::kPending);
  EXPECT_EQ(ctl.stats().sheds, 0u);
}

// ---------- failover ----------

TEST(ClusterFailover, ReplacesJobsWithZeroPostFailoverMisses) {
  ClusterController ctl(clustered(3, 2));
  ctl.add_tenant({"acme", 1.0, 10});
  const JobId a = ctl.submit(gang("acme", "web", 2, sim::micros(300)));
  const JobId b = ctl.submit(gang("acme", "db", 1, sim::micros(200)));
  ctl.run_for(sim::millis(10));
  ASSERT_EQ(ctl.job(a).state, JobState::kRunning);
  ASSERT_EQ(ctl.job(b).state, JobState::kRunning);

  const std::uint32_t victim = ctl.job(a).node;
  ctl.fail_node(victim, ctl.now() + sim::millis(1));
  ctl.run_for(sim::millis(30));

  EXPECT_EQ(ctl.node_state(victim), NodeState::kDown);
  EXPECT_GE(ctl.stats().failovers, 1u);
  EXPECT_GE(ctl.stats().replacements, 1u);
  for (const auto& j : ctl.jobs()) {
    EXPECT_EQ(j.state, JobState::kRunning) << j.name;
    EXPECT_NE(j.node, victim) << j.name;
    EXPECT_EQ(j.misses, 0u) << j.name << ": post-failover misses";
  }
  // Detection is bounded by one control period; re-run latency was recorded.
  ASSERT_GT(ctl.stats().detect_ns.count(), 0u);
  EXPECT_LE(ctl.stats().detect_ns.max(),
            static_cast<double>(ctl.options().control_period));
  EXPECT_GT(ctl.stats().replace_ns.count(), 0u);
  EXPECT_GE(ctl.job(a).last_replace_latency, 0);
}

TEST(ClusterFailover, NoFailoverBaselineLosesAvailability) {
  auto scenario = [](bool failover) {
    ClusterController::Options o = clustered(2, 2);
    o.failover = failover;
    ClusterController ctl(std::move(o));
    const JobId id = ctl.submit(gang("acme", "web", 2, sim::micros(300)));
    ctl.run_for(sim::millis(5));
    ctl.fail_node(ctl.job(id).node);
    ctl.run_for(sim::millis(45));
    return std::make_pair(ctl.availability(), ctl.job(id).state);
  };
  const auto [with, state_with] = scenario(true);
  const auto [without, state_without] = scenario(false);
  EXPECT_EQ(state_with, JobState::kRunning);
  EXPECT_EQ(state_without, JobState::kLost);
  EXPECT_GT(with, without);
  EXPECT_GT(with, 0.8);
  // The lost job keeps accruing expected time: the baseline pays for the
  // whole outage.
  EXPECT_LT(without, 0.25);
}

TEST(ClusterFailover, FailoverTraceReplaysCleanOnSurvivor) {
  ClusterController ctl(clustered(2, 2));
  for (std::uint32_t n = 0; n < ctl.num_nodes(); ++n) {
    ctl.node(n).machine().trace().enable();
  }
  const JobId id = ctl.submit(gang("acme", "web", 2, sim::micros(250)));
  ctl.run_for(sim::millis(10));
  ASSERT_EQ(ctl.job(id).state, JobState::kRunning);
  const std::uint32_t victim = ctl.job(id).node;
  ctl.fail_node(victim);
  ctl.run_for(sim::millis(40));
  ASSERT_EQ(ctl.job(id).state, JobState::kRunning);
  const std::uint32_t survivor = ctl.job(id).node;
  ASSERT_NE(survivor, victim);

  // Replay each surviving CPU hosting a re-placed worker: the failover
  // placement must be an ordinary clean EDF schedule — every dispatch
  // ordered, every arrival served, zero misses.
  System& sys = ctl.node(survivor);
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  const auto threads = ctl.job_threads(id);
  ASSERT_EQ(threads.size(), 2u);
  for (const nk::Thread* t : threads) {
    const std::vector<audit::ReplayTask> tasks = {
        {t->id, t->constraints, t->rt.gamma}};
    audit::ReplayResult r = audit::replay_edf(
        sys.machine().trace(), t->cpu, tasks, cfg, sys.engine().now());
    for (const auto& d : r.divergences) {
      ADD_FAILURE() << "cpu " << t->cpu << " t=" << d.time << "ns: "
                    << d.detail;
    }
    ASSERT_NE(r.find(t->id), nullptr);
    EXPECT_GT(r.find(t->id)->arrivals, 10u);
    audit::verify_stats(r, t->id, t->rt.arrivals, t->rt.completions,
                        t->rt.misses, 2);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(t->rt.misses, 0u);
  }
}

TEST(ClusterFailover, DoubleFailureShedsLeastCriticalFirst) {
  ClusterController ctl(clustered(3, 2));
  ctl.add_tenant({"crit", 1.0, 10});
  ctl.add_tenant({"bulk", 1.0, 200});
  const JobId c0 = ctl.submit(gang("crit", "c0", 2, sim::micros(500)));
  ctl.submit(gang("bulk", "b0", 2, sim::micros(500)));
  ctl.submit(gang("bulk", "b1", 2, sim::micros(400)));
  ctl.run_for(sim::millis(10));
  for (const auto& j : ctl.jobs()) {
    ASSERT_EQ(j.state, JobState::kRunning) << j.name;
  }

  // Two of three nodes die: 1.58 of capacity remains for 2.8 of demand.
  // Criticality decides who keeps running.
  ctl.fail_node(0);
  ctl.run_for(sim::millis(15));
  ctl.fail_node(1);
  ctl.run_for(sim::millis(30));

  EXPECT_EQ(ctl.job(c0).state, JobState::kRunning)
      << "most critical job survives a double failure";
  EXPECT_EQ(ctl.job(c0).misses, 0u);
  // At least one bulk job cannot fit the last node alongside crit.
  std::uint64_t bulk_not_running = 0;
  for (const auto& j : ctl.jobs()) {
    if (j.tenant == "bulk" && j.state != JobState::kRunning) {
      ++bulk_not_running;
      EXPECT_TRUE(j.state == JobState::kShed || j.state == JobState::kPending)
          << job_state_name(j.state);
    }
  }
  EXPECT_GE(bulk_not_running, 1u);
}

TEST(ClusterFailover, UnplaceableJobRollsBackCleanly) {
  ClusterController::Options o = clustered(2, 2);
  o.max_place_attempts = 3;
  ClusterController ctl(std::move(o));
  // A pipeline needing u = 2.0 can never fit a 2-CPU node (max split
  // 2 x 0.79): every spawn attempt must fail atomically.
  JobSpec s;
  s.tenant = "acme";
  s.name = "huge";
  s.kind = JobKind::kPipeline;
  s.constraints =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::millis(2));
  ctl.submit(std::move(s));
  ctl.run_for(sim::millis(10));

  const auto j = ctl.jobs()[0];
  EXPECT_EQ(j.state, JobState::kFailed);
  EXPECT_EQ(j.threads_alive, 0u) << "no orphan threads after rollback";
  EXPECT_GE(ctl.stats().failed_placements, 3u);
  // No partial admission leaked into any ledger.
  EXPECT_NEAR(ctl.ledger().total_committed(), 0.0, 1e-9);
  EXPECT_EQ(ctl.auditor().count(audit::Invariant::kClusterLedger), 0u);
}

// ---------- drain ----------

TEST(ClusterDrain, MovesJobsMakeBeforeBreak) {
  ClusterController ctl(clustered(2, 2));
  const JobId id = ctl.submit(gang("acme", "web", 1, sim::micros(300)));
  ctl.run_for(sim::millis(10));
  const std::uint32_t src = ctl.job(id).node;
  // Any availability deficit so far is initial admission latency; the drain
  // itself must not add to it.
  const sim::Nanos deficit =
      ctl.stats().rt_expected_ns - ctl.stats().rt_delivered_ns;
  ctl.drain_node(src);
  ctl.run_for(sim::millis(20));

  EXPECT_EQ(ctl.node_state(src), NodeState::kDrained);
  EXPECT_EQ(ctl.job(id).state, JobState::kRunning);
  EXPECT_NE(ctl.job(id).node, src);
  EXPECT_GE(ctl.stats().replacements, 1u);
  EXPECT_EQ(ctl.job(id).misses, 0u);
  // Make-before-break: the job never stopped serving during the move.
  EXPECT_EQ(ctl.stats().rt_expected_ns - ctl.stats().rt_delivered_ns, deficit);
  // A drained node offers no capacity cluster-wide.
  EXPECT_NEAR(ctl.ledger().capacity(src), 0.0, 1e-9);
}

TEST(ClusterDrain, MidDrainCrashStillRecovers) {
  ClusterController ctl(clustered(3, 2));
  const JobId a = ctl.submit(gang("acme", "web", 2, sim::micros(400)));
  const JobId b = ctl.submit(gang("acme", "db", 1, sim::micros(300)));
  ctl.run_for(sim::millis(10));
  const std::uint32_t src = ctl.job(a).node;
  ctl.drain_node(src);
  // Crash before the drain can finish moving everything off.
  ctl.fail_node(src, ctl.now() + ctl.options().control_period / 2);
  ctl.run_for(sim::millis(40));

  EXPECT_EQ(ctl.node_state(src), NodeState::kDown);
  EXPECT_EQ(ctl.job(a).state, JobState::kRunning);
  EXPECT_EQ(ctl.job(b).state, JobState::kRunning);
  EXPECT_NE(ctl.job(a).node, src);
  EXPECT_NE(ctl.job(b).node, src);
  EXPECT_EQ(rt_misses_on_current_placements(ctl), 0u);
}

// ---------- restore / zombie fencing ----------

TEST(ClusterRestore, FencedZombiesExitAndCapacityReturns) {
  ClusterController ctl(clustered(2, 2));
  const JobId id = ctl.submit(gang("acme", "web", 2, sim::micros(300)));
  ctl.run_for(sim::millis(10));
  const std::uint32_t victim = ctl.job(id).node;
  ctl.fail_node(victim);
  ctl.run_for(sim::millis(20));
  ASSERT_EQ(ctl.job(id).state, JobState::kRunning);
  ASSERT_NE(ctl.job(id).node, victim);

  ctl.restore_node(victim);
  ctl.run_for(sim::millis(20));

  // The restored node caught up, its fenced zombies exited (releasing their
  // stale reservations), and its capacity is back on the cluster books.
  EXPECT_EQ(ctl.node_state(victim), NodeState::kUp);
  EXPECT_NEAR(ctl.ledger().committed(victim), 0.0, 1e-9);
  EXPECT_GT(ctl.ledger().capacity(victim), 1.0);
  // Exactly one live placement: the job was never double-run after restore.
  EXPECT_EQ(ctl.job(id).state, JobState::kRunning);
  EXPECT_NE(ctl.job(id).node, victim);
  EXPECT_EQ(ctl.job(id).threads_alive, 2u);
  EXPECT_EQ(ctl.auditor().count(audit::Invariant::kClusterLedger), 0u);
}

// ---------- best-effort preemption + backfill ----------

TEST(ClusterBestEffort, RtDemandPreemptsAndBackfills) {
  ClusterController::Options o = clustered(2, 2);
  o.best_effort_slot_util = 0.75;  // 2 slots per idle node
  ClusterController ctl(std::move(o));
  ctl.add_tenant({"rt", 1.0, 10});
  ctl.add_tenant({"batchy", 1.0, 200});
  const JobId be = ctl.submit(best_effort("batchy", "scrub", 2));
  ctl.run_for(sim::millis(5));
  ASSERT_EQ(ctl.job(be).state, JobState::kRunning);
  const std::uint32_t be_node = ctl.job(be).node;

  // RT demand lands on the BE node and eats its slack.
  const JobId rt_id = ctl.submit(gang("rt", "ctrl", 2, sim::micros(600)));
  ctl.run_for(sim::millis(20));

  EXPECT_EQ(ctl.job(rt_id).state, JobState::kRunning);
  EXPECT_GE(ctl.stats().preemptions, 1u);
  // The preempted BE job backfilled onto the other node's slots.
  EXPECT_EQ(ctl.job(be).state, JobState::kRunning);
  EXPECT_NE(ctl.job(be).node, be_node);
  EXPECT_GE(ctl.stats().backfills, 1u);
  EXPECT_EQ(ctl.job(rt_id).misses, 0u);
}

// ---------- telemetry events ----------

TEST(ClusterTelemetry, LifecycleEventsReachFlightRecorder) {
  ClusterController::Options o = clustered(2, 2);
  o.telemetry.enabled = true;
  ClusterController ctl(std::move(o));
  const JobId id = ctl.submit(gang("acme", "web", 1, sim::micros(300)));
  ctl.run_for(sim::millis(5));
  ctl.fail_node(ctl.job(id).node);
  ctl.run_for(sim::millis(20));
  ASSERT_EQ(ctl.job(id).state, JobState::kRunning);

  const auto& rec = ctl.telemetry().recorder();
  EXPECT_GE(rec.kind_count(telemetry::EventKind::kNodeUp), 2u);
  EXPECT_GE(rec.kind_count(telemetry::EventKind::kNodeDown), 1u);
  EXPECT_GE(rec.kind_count(telemetry::EventKind::kReplace), 1u);
}

// ---------- name helpers ----------

TEST(ClusterNames, EnumNamesAreStable) {
  EXPECT_STREQ(job_kind_name(JobKind::kPipeline), "pipeline");
  EXPECT_STREQ(job_state_name(JobState::kShed), "shed");
  EXPECT_STREQ(node_state_name(NodeState::kDraining), "draining");
}

}  // namespace
}  // namespace hrt::cluster
