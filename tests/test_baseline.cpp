// Baseline fixed-tick scheduler: demonstrates the kernel's scheduler
// pluggability and the contrast with the tickless hard real-time design.
#include <gtest/gtest.h>

#include "baseline/tick_scheduler.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

std::unique_ptr<nk::Kernel> make_tick_kernel(hw::Machine& m,
                                             baseline::TickScheduler::Config c =
                                                 {}) {
  nk::Kernel::Options ko;
  ko.scheduler_factory = baseline::TickScheduler::factory(c);
  auto k = std::make_unique<nk::Kernel>(m, std::move(ko));
  k->boot();
  return k;
}

TEST(TickScheduler, RunsThreadsRoundRobin) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine m(spec, 42);
  auto k = make_tick_kernel(m);
  nk::Thread* a = k->create_thread(
      "a", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1);
  nk::Thread* b = k->create_thread(
      "b", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1);
  m.engine().run_until(sim::millis(100));
  k->executor(1).sync_run_span();
  EXPECT_GT(a->total_cpu_ns, sim::millis(30));
  EXPECT_GT(b->total_cpu_ns, sim::millis(30));
}

TEST(TickScheduler, TicksEvenWhenIdle) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine m(spec, 42);
  auto k = make_tick_kernel(m);
  m.engine().run_until(sim::millis(100));
  // 1 kHz tick, no workload: ~100 passes of pure noise per CPU — exactly
  // what the paper's tickless design avoids.
  const auto& st =
      static_cast<baseline::TickScheduler&>(k->scheduler(1));
  EXPECT_GE(st.ticks_seen(), 95u);
  EXPECT_LE(st.ticks_seen(), 110u);
}

TEST(TickScheduler, RefusesRealTimeConstraints) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine m(spec, 42);
  auto k = make_tick_kernel(m);
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::exit();
      });
  nk::Thread* t = k->create_thread("rt", std::move(b), 1);
  m.engine().run_until(sim::millis(10));
  EXPECT_FALSE(t->last_admit_ok);
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
}

TEST(TickScheduler, SleepWorks) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
  spec.smi.enabled = false;
  hw::Machine m(spec, 42);
  auto k = make_tick_kernel(m);
  sim::Nanos woke = -1;
  auto b = std::make_unique<nk::FnBehavior>(
      [&](nk::ThreadCtx& c, std::uint64_t step) {
        if (step == 0) return nk::Action::sleep(sim::millis(5));
        woke = c.kernel.machine().engine().now();
        return nk::Action::exit();
      });
  k->create_thread("s", std::move(b), 1);
  m.engine().run_until(sim::millis(20));
  // Wakes at the first tick after the sleep expires (tick granularity!).
  EXPECT_GE(woke, sim::millis(5));
  EXPECT_LT(woke, sim::millis(5) + sim::millis(2));
}

TEST(TickScheduler, TickNoiseSlowsDownCompute) {
  // The same compute takes longer wall time under a 10 kHz tick than a
  // 100 Hz tick: tick overhead is pure loss.
  auto measure = [](sim::Nanos tick) {
    hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
    spec.smi.enabled = false;
    hw::Machine m(spec, 42);
    baseline::TickScheduler::Config c;
    c.tick = tick;
    auto k = make_tick_kernel(m, c);
    sim::Nanos done = -1;
    k->create_thread(
        "w",
        std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
            nk::Action::compute(sim::millis(10),
                                [&done](nk::ThreadCtx& cc) {
                                  done = cc.kernel.machine().engine().now();
                                })}),
        1);
    m.engine().run_until(sim::millis(100));
    return done;
  };
  const sim::Nanos slow = measure(sim::micros(100));
  const sim::Nanos fast = measure(sim::millis(10));
  EXPECT_GT(slow, fast + sim::micros(100));
}

}  // namespace
}  // namespace hrt
