// hrt-metrics-diff (telemetry/metrics_diff.hpp): parsing real
// write_metrics_json output into flat keys, diffing two snapshots
// (deltas, appeared/vanished rows, ordering), and the formatter.
#include <gtest/gtest.h>

#include <sstream>

#include "rt/system.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics_diff.hpp"

namespace hrt::telemetry {
namespace {

System::Options telemetered(std::uint32_t cpus = 2) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.telemetry.enabled = true;
  return o;
}

std::unique_ptr<nk::FnBehavior> rt_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

std::string snapshot_json(System& sys) {
  std::ostringstream os;
  write_metrics_json(os, sys.telemetry(), sys.engine().now());
  return os.str();
}

TEST(MetricsDiff, ParsesRealSnapshotIntoFlatKeys) {
  System sys(telemetered());
  sys.boot();
  sys.spawn("web", rt_worker(rt::Constraints::periodic(
                       sim::millis(1), sim::millis(1), sim::micros(200))), 1);
  sys.run_for(sim::millis(20));

  const MetricsSnapshot snap = parse_metrics_snapshot(snapshot_json(sys));
  ASSERT_TRUE(snap.ok) << snap.error;
  EXPECT_EQ(snap.names.at("schema"), "hrt-metrics-v1");
  EXPECT_GT(snap.values.at("now_ns"), 0.0);
  // Per-CPU counters flattened under cpu.<n>.*; thread histograms under
  // thread.<name>.*.
  EXPECT_GT(snap.values.at("cpu.1.passes"), 0.0);
  EXPECT_GT(snap.values.at("thread.web.completions"), 0.0);
  EXPECT_EQ(snap.values.count("thread.web.slack_ns.p99"), 1u);
  EXPECT_GT(snap.values.at("recorder.written"), 0.0);
}

TEST(MetricsDiff, DiffReportsDeltasAndNewRows) {
  System sys(telemetered());
  sys.boot();
  sys.spawn("web", rt_worker(rt::Constraints::periodic(
                       sim::millis(1), sim::millis(1), sim::micros(200))), 1);
  sys.run_for(sim::millis(10));
  const MetricsSnapshot before = parse_metrics_snapshot(snapshot_json(sys));
  // More time passes and a second thread appears between the snapshots.
  sys.spawn("db", rt_worker(rt::Constraints::periodic(
                      sim::millis(1), sim::millis(2), sim::micros(100))), 0);
  sys.run_for(sim::millis(10));
  const MetricsSnapshot after = parse_metrics_snapshot(snapshot_json(sys));
  ASSERT_TRUE(before.ok && after.ok);

  const auto rows = diff_metrics(before, after);
  ASSERT_FALSE(rows.empty());
  // Appeared rows (the new thread) sort before plain deltas.
  bool saw_new_thread = false;
  bool saw_completions_delta = false;
  std::size_t last_new = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].only_after || rows[i].only_before) {
      EXPECT_FALSE(saw_completions_delta)
          << "appear/vanish rows must sort first";
      last_new = i;
    }
    if (rows[i].only_after && rows[i].key.rfind("thread.db.", 0) == 0) {
      saw_new_thread = true;
    }
    if (rows[i].key == "thread.web.completions") {
      saw_completions_delta = true;
      EXPECT_GT(rows[i].delta, 0.0);
      EXPECT_EQ(rows[i].after - rows[i].before, rows[i].delta);
    }
  }
  EXPECT_TRUE(saw_new_thread);
  EXPECT_TRUE(saw_completions_delta);
  (void)last_new;

  // Identical snapshots diff to nothing.
  EXPECT_TRUE(diff_metrics(after, after).empty());
  EXPECT_NE(format_metrics_diff({}).find("(no differences)"),
            std::string::npos);
}

TEST(MetricsDiff, HandWrittenCornerCases) {
  const char* a = R"({"schema": "hrt-metrics-v1", "now_ns": 10,
    "cpus": [{"cpu": 3, "passes": 100}],
    "threads": [{"tid": 7, "name": "w", "misses": 2}]})";
  const char* b = R"({"schema": "hrt-metrics-v1", "now_ns": 20,
    "cpus": [{"cpu": 3, "passes": 150}],
    "threads": []})";
  const MetricsSnapshot sa = parse_metrics_snapshot(a);
  const MetricsSnapshot sb = parse_metrics_snapshot(b);
  ASSERT_TRUE(sa.ok) << sa.error;
  ASSERT_TRUE(sb.ok) << sb.error;
  // Identity keys: the cpu id names the row; the tid is dropped (ids shift
  // across runs).
  EXPECT_EQ(sa.values.at("cpu.3.passes"), 100.0);
  EXPECT_EQ(sa.values.count("cpu.3.cpu"), 0u);
  EXPECT_EQ(sa.values.count("thread.w.tid"), 0u);
  EXPECT_EQ(sa.values.at("thread.w.misses"), 2.0);

  const auto rows = diff_metrics(sa, sb);
  ASSERT_EQ(rows.size(), 3u);
  // Vanished thread row first, then deltas by |delta| descending.
  EXPECT_TRUE(rows[0].only_before);
  EXPECT_EQ(rows[0].key, "thread.w.misses");
  EXPECT_EQ(rows[1].key, "cpu.3.passes");
  EXPECT_EQ(rows[1].delta, 50.0);
  EXPECT_EQ(rows[2].key, "now_ns");

  const std::string text = format_metrics_diff(rows, 2);
  EXPECT_NE(text.find("(gone, was 2)"), std::string::npos);
  EXPECT_NE(text.find("100 -> 150  (+50)"), std::string::npos);
  EXPECT_NE(text.find("1 more rows truncated"), std::string::npos);
}

TEST(MetricsDiff, RejectsMalformedAndWrongSchema) {
  EXPECT_FALSE(parse_metrics_snapshot("{\"schema\": \"other\"}").ok);
  EXPECT_FALSE(parse_metrics_snapshot("not json").ok);
  EXPECT_FALSE(parse_metrics_snapshot("{\"schema\": ").ok);
  // nan/inf from empty histograms parse as 0 instead of failing.
  const MetricsSnapshot s = parse_metrics_snapshot(
      R"({"schema": "hrt-metrics-v1", "x": nan, "y": -inf})");
  ASSERT_TRUE(s.ok) << s.error;
  EXPECT_EQ(s.values.at("x"), 0.0);
}

}  // namespace
}  // namespace hrt::telemetry
