// Global placement subsystem (src/global/, docs/GLOBAL.md): policy packing
// against real per-CPU admission, semi-partitioned overflow, the utilization
// ledger and its audit invariant, job-boundary RT migration, rebalancing,
// and the auto-placement spawn API.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "audit/replay.hpp"
#include "global/global_scheduler.hpp"
#include "group/group_admission.hpp"
#include "rt/system.hpp"
#include "rt/taskset_gen.hpp"

namespace hrt {
namespace {

System::Options placed(std::uint32_t cpus = 4, std::uint32_t laden = 1) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.audit.enabled = true;  // accumulate mode; FORCE builds throw instead
  o.interrupt_laden_cpus = laden;
  return o;
}

/// Run `fn`, tolerating the AuditError a throwing-mode (HRT_FORCE_AUDIT)
/// auditor raises, and return how many `inv` violations were seen.
std::uint64_t run_counting(System& sys, audit::Invariant inv,
                           const std::function<void()>& fn) {
  try {
    fn();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), inv) << e.what();
  }
  return sys.auditor().count(inv);
}

/// Self-admitting RT worker for pinned spawns (the spawn_auto wrapper does
/// the admission itself, so auto-spawned inners just compute).
std::unique_ptr<nk::FnBehavior> rt_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

/// Inner behavior that computes `jobs` chunks then exits.
std::unique_ptr<nk::FnBehavior> finite_worker(std::uint64_t jobs,
                                              sim::Nanos chunk) {
  return std::make_unique<nk::FnBehavior>(
      [jobs, chunk](nk::ThreadCtx&, std::uint64_t step) {
        if (step < jobs) return nk::Action::compute(chunk);
        return nk::Action::exit();
      });
}

std::unique_ptr<nk::Behavior> busy(sim::Nanos chunk = sim::micros(100)) {
  return std::make_unique<nk::BusyLoopBehavior>(chunk);
}

bool admitted_rt(const nk::Thread* t) {
  return t->is_realtime() && t->rt.arrivals > 0;
}

// ---------- satellite: spawn rejects out-of-range CPUs ----------

TEST(SystemSpawn, RejectsOutOfRangeCpu) {
  System sys(placed(2));
  sys.boot();
  EXPECT_THROW(sys.spawn("oob", busy(), 2), std::out_of_range);
  EXPECT_THROW(sys.spawn("oob", busy(), 99), std::out_of_range);
  nk::Thread* ok = sys.spawn("ok", busy(), 1);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->cpu, 1u);
}

// ---------- utilization ledger ----------

TEST(Ledger, TracksAdmitAndExit) {
  System sys(placed(2, 0));
  sys.boot();
  auto& ledger = sys.placement().ledger();
  EXPECT_DOUBLE_EQ(ledger.total_committed(), 0.0);

  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(300));
  nk::Thread* t =
      sys.spawn_auto("worker", finite_worker(6, sim::micros(250)), c);
  sys.run_for(sim::millis(4));
  EXPECT_TRUE(admitted_rt(t));
  EXPECT_NEAR(ledger.committed(t->cpu), 0.3, 1e-9);
  EXPECT_GE(ledger.admits(), 1u);

  sys.run_for(sim::millis(30));  // worker exits (and is reaped), util returns
  EXPECT_TRUE(t->state == nk::Thread::State::kExited ||
              t->state == nk::Thread::State::kPooled);
  EXPECT_NEAR(ledger.total_committed(), 0.0, 1e-9);
  EXPECT_GE(ledger.releases(), 1u);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(Ledger, AuditCatchesDroppedRelease) {
  System::Options o = placed(2, 0);
  o.sched.test_faults.drop_ledger_release = true;
  System sys(o);
  sys.boot();
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(300));
  const std::uint64_t n =
      run_counting(sys, audit::Invariant::kPlacementLedger, [&] {
        sys.spawn_auto("leaky", finite_worker(4, sim::micros(250)), c);
        sys.run_for(sim::millis(30));
      });
  EXPECT_GE(n, 1u);
}

// ---------- policy packing vs real per-CPU admission ----------

TEST(Placement, PoliciesPassPerCpuAdmission) {
  constexpr std::uint32_t kCpus = 4;
  constexpr double kCapacity = 0.79;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::Rng rng(seed);
    rt::TaskSetParams params;
    params.n = 10;
    params.total_utilization = 2.4;
    params.min_slice = sim::micros(10);
    const auto tasks = rt::generate_taskset(params, rng);
    for (global::Policy p :
         {global::Policy::kFirstFit, global::Policy::kBestFit,
          global::Policy::kWorstFit, global::Policy::kTopology}) {
      const auto r = global::pack_decreasing(tasks, kCpus, kCapacity, p,
                                             /*interrupt_laden_cpus=*/1);
      std::vector<std::vector<rt::PeriodicTask>> sets(kCpus);
      double placed_util = 0.0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (r.assignment[i] == global::kInvalidCpu) continue;
        ASSERT_LT(r.assignment[i], kCpus);
        sets[r.assignment[i]].push_back(tasks[i]);
        placed_util += static_cast<double>(tasks[i].slice) /
                       static_cast<double>(tasks[i].period);
      }
      for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
        EXPECT_TRUE(rt::edf_admissible(sets[cpu], kCapacity))
            << global::policy_name(p) << " overloaded cpu " << cpu
            << " (seed " << seed << ")";
        EXPECT_NEAR(r.per_cpu[cpu], rt::total_utilization(sets[cpu]), 1e-9);
      }
      EXPECT_NEAR(r.admitted_util, placed_util, 1e-9);
    }
  }
}

TEST(Placement, SemiPartitionedBeatsBestPure) {
  constexpr std::uint32_t kCpus = 4;
  constexpr double kCapacity = 0.79;
  bool strictly_better_somewhere = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(seed);
    rt::TaskSetParams params;
    params.n = 5;
    params.total_utilization = 3.0;  // heavy tasks: some exceed one CPU
    params.min_slice = sim::micros(10);
    const auto tasks = rt::generate_taskset(params, rng);
    const auto semi = global::pack_semi_partitioned(
        tasks, kCpus, kCapacity, sim::micros(10), /*max_chunks=*/4);
    double best_pure = 0.0;
    for (global::Policy p :
         {global::Policy::kFirstFit, global::Policy::kBestFit,
          global::Policy::kWorstFit}) {
      const auto r = global::pack_decreasing(tasks, kCpus, kCapacity, p);
      best_pure = std::max(best_pure, r.admitted_util);
    }
    EXPECT_GE(semi.admitted_util, best_pure - 1e-9) << "seed " << seed;
    if (semi.admitted_util > best_pure + 1e-9) strictly_better_somewhere = true;
    // Split chunks never exceed any CPU's capacity either.
    for (std::uint32_t cpu = 0; cpu < kCpus; ++cpu) {
      EXPECT_LE(semi.per_cpu[cpu], kCapacity + 1e-9);
    }
  }
  EXPECT_TRUE(strictly_better_somewhere)
      << "splitting never admitted more than pure partitioning";
}

TEST(Placement, SplitPlanPipelineMath) {
  rt::PeriodicTask task;
  task.period = sim::millis(1);
  task.slice = sim::micros(900);  // u = 0.9: fits no single CPU below
  task.phase = sim::micros(500);
  const std::vector<double> headroom = {0.5, 0.3, 0.5};
  const auto plan =
      global::split_task(task, headroom, sim::micros(10), /*max_chunks=*/8);
  ASSERT_TRUE(plan.ok);
  ASSERT_GE(plan.chunks.size(), 2u);
  sim::Nanos total = 0;
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const auto& c = plan.chunks[i].constraints;
    ASSERT_EQ(c.cls, rt::ConstraintClass::kPeriodic);
    EXPECT_EQ(c.period, task.period);
    // Pipeline phasing: chunk i's window is [phase + i*tau, phase+(i+1)*tau),
    // so chunk i's deadline is exactly chunk i+1's release — the chunks of
    // one logical job can never run concurrently.
    EXPECT_EQ(c.phase, task.phase + static_cast<sim::Nanos>(i) * task.period);
    ASSERT_LT(plan.chunks[i].cpu, headroom.size());
    EXPECT_LE(c.utilization(), headroom[plan.chunks[i].cpu] + 1e-9);
    EXPECT_GE(c.slice, sim::micros(10));
    total += c.slice;
  }
  EXPECT_EQ(total, task.slice);  // the whole job's work is preserved
}

// A split plan is a long-lived commitment, so chunk sizing must respect what
// each CPU can actually deliver: the ledger headroom minus the CPU's worst
// recent missing-time window (docs/RESILIENCE.md follow-up).
TEST(Placement, SplitPlanDegradesByMissingTime) {
  auto slice_on = [](const global::SplitPlan& plan, std::uint32_t cpu) {
    sim::Nanos s = 0;
    for (const auto& c : plan.chunks) {
      if (c.cpu == cpu) s += c.constraints.slice;
    }
    return s;
  };
  auto degrade_cpu0 = [](System& sys) {
    // Seed the estimator directly (no SMIs in this test): one 800 us episode
    // in a 2 ms window is a 0.4 worst-window fraction once the window closes.
    auto& est = sys.sched(0).missing_time();
    const sim::Nanos t0 = sys.engine().now();
    est.note_episode(sim::micros(800), 0, t0);
    est.advance(t0 + est.config().window_ns + 1);
    ASSERT_NEAR(est.windowed_max_fraction(), 0.4, 0.02);
  };
  const auto wide =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(900));

  System::Options o = placed(2, 0);
  o.sched.estimator.enabled = true;  // estimator only; no storm controller
  System sys(std::move(o));
  sys.boot();
  const sim::Nanos min_slice = sys.options().sched.min_slice;

  const auto clean = sys.placement().plan_split(wide, min_slice);
  ASSERT_TRUE(clean.ok);
  // Equal headroom: the stable sort fills cpu0 first (0.79), tail on cpu1.
  EXPECT_GT(slice_on(clean, 0), slice_on(clean, 1));

  degrade_cpu0(sys);
  const auto degraded = sys.placement().plan_split(wide, min_slice);
  ASSERT_TRUE(degraded.ok);
  // The degraded CPU's chunk shrank; the work moved to the healthy CPU.
  EXPECT_LT(slice_on(degraded, 0), slice_on(clean, 0));
  EXPECT_GT(slice_on(degraded, 1), slice_on(clean, 1));
  // Chunks respect the *degraded* headroom, not just the ledger's.
  EXPECT_LE(static_cast<double>(slice_on(degraded, 0)) /
                static_cast<double>(wide.period),
            sys.placement().ledger().headroom(0) - 0.4 + 1e-9);
  sim::Nanos total = 0;
  for (const auto& c : degraded.chunks) total += c.constraints.slice;
  EXPECT_EQ(total, wide.slice);  // work conserved either way

  // The config gate restores the old (ledger-only) sizing.
  System::Options o2 = placed(2, 0);
  o2.sched.estimator.enabled = true;
  o2.placement_config.split_degrade_missing_time = false;
  System gated(std::move(o2));
  gated.boot();
  degrade_cpu0(gated);
  const auto ungated = gated.placement().plan_split(wide, min_slice);
  ASSERT_TRUE(ungated.ok);
  EXPECT_EQ(slice_on(ungated, 0), slice_on(clean, 0));
  EXPECT_EQ(slice_on(ungated, 1), slice_on(clean, 1));
}

// ---------- job-boundary RT migration ----------

TEST(Migration, JobBoundaryHandoff) {
  System sys(placed(4));
  sys.boot();
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(300));
  nk::Thread* t = sys.spawn("mover", rt_worker(c), 1);
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(admitted_rt(t));
  ASSERT_EQ(t->cpu, 1u);
  const std::uint64_t arrivals_before = t->rt.arrivals;

  ASSERT_TRUE(sys.sched(1).request_migration(*t, 2));
  sys.run_for(sim::millis(20));

  EXPECT_EQ(t->cpu, 2u);
  EXPECT_EQ(t->migrate_to, nk::kNoMigrateTarget);
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
  EXPECT_NEAR(sys.sched(2).admitted_utilization(), 0.3, 1e-9);
  EXPECT_NEAR(sys.placement().ledger().committed(1), 0.0, 1e-9);
  EXPECT_NEAR(sys.placement().ledger().committed(2), 0.3, 1e-9);
  EXPECT_EQ(sys.sched(1).stats().migrations_requested, 1u);
  EXPECT_EQ(sys.sched(1).stats().migrations_out, 1u);
  EXPECT_EQ(sys.sched(2).stats().migrations_in, 1u);
  EXPECT_EQ(sys.sched(1).stats().migration_failures, 0u);
  // Lifetime stats survived the move and the thread kept running.
  EXPECT_GT(t->rt.arrivals, arrivals_before);
  EXPECT_EQ(t->rt.misses, 0u);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(Migration, AuditCatchesStaleCpu) {
  System::Options o = placed(4);
  o.sched.test_faults.stale_migrate_cpu = true;
  System sys(o);
  sys.boot();
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(300));
  const std::uint64_t n = run_counting(sys, audit::Invariant::kMigration, [&] {
    nk::Thread* t = sys.spawn("stale", rt_worker(c), 1);
    sys.run_for(sim::millis(10));
    ASSERT_TRUE(sys.sched(1).request_migration(*t, 2));
    sys.run_for(sim::millis(3));
  });
  EXPECT_GE(n, 1u);
}

// ---------- rebalancer ----------

TEST(Rebalance, MakeRoomAdmitsAfterMigration) {
  System sys(placed(2, 0));
  sys.boot();
  auto util = [](sim::Nanos slice) {
    return rt::Constraints::periodic(sim::millis(1), sim::millis(1), slice);
  };
  nk::Thread* a = sys.spawn_auto("a", busy(), util(sim::micros(300)));
  sys.run_for(sim::millis(3));
  nk::Thread* b = sys.spawn_auto("b", busy(), util(sim::micros(300)));
  sys.run_for(sim::millis(3));
  ASSERT_TRUE(admitted_rt(a));
  ASSERT_TRUE(admitted_rt(b));
  ASSERT_NE(a->cpu, b->cpu);  // worst-fit spread them out

  // 0.6 fits neither CPU (capacity 0.79, each holds 0.3) — the auto-admit
  // retry path must migrate one of a/b aside to make room.
  nk::Thread* big = sys.spawn_auto("big", busy(), util(sim::micros(600)));
  sys.run_for(sim::millis(50));

  EXPECT_TRUE(admitted_rt(big));
  EXPECT_GE(sys.placement().rebalancer().stats().make_room_migrations, 1u);
  EXPECT_EQ(a->rt.misses, 0u);
  EXPECT_EQ(b->rt.misses, 0u);
  EXPECT_EQ(big->rt.misses, 0u);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(Rebalance, ExitTriggersRebalance) {
  System sys(placed(2, 0));
  sys.boot();
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(300));
  // Four 0.3 threads spread 2+2; the two transient ones land on the same
  // CPU (worst-fit alternates), and their exits leave a 0.6-vs-0 imbalance
  // the exit-rebalance pass must level with one migration.
  nk::Thread* t1 = sys.spawn_auto("short1", finite_worker(8, sim::micros(250)), c);
  sys.run_for(sim::millis(2));
  nk::Thread* p1 = sys.spawn_auto("long1", busy(), c);
  sys.run_for(sim::millis(2));
  nk::Thread* t2 = sys.spawn_auto("short2", finite_worker(8, sim::micros(250)), c);
  sys.run_for(sim::millis(2));
  nk::Thread* p2 = sys.spawn_auto("long2", busy(), c);
  sys.run_for(sim::millis(2));
  ASSERT_TRUE(admitted_rt(t1) && admitted_rt(p1) && admitted_rt(t2) &&
              admitted_rt(p2));
  ASSERT_EQ(t1->cpu, t2->cpu);
  ASSERT_EQ(p1->cpu, p2->cpu);
  ASSERT_NE(t1->cpu, p1->cpu);

  sys.run_for(sim::millis(40));  // transients exit; rebalancer levels

  EXPECT_TRUE(t1->state == nk::Thread::State::kExited ||
              t1->state == nk::Thread::State::kPooled);
  EXPECT_TRUE(t2->state == nk::Thread::State::kExited ||
              t2->state == nk::Thread::State::kPooled);
  EXPECT_GE(sys.placement().rebalancer().stats().migrations_proposed, 1u);
  const auto& ledger = sys.placement().ledger();
  EXPECT_LE(std::abs(ledger.committed(0) - ledger.committed(1)), 0.25 + 1e-9);
  EXPECT_EQ(p1->rt.misses, 0u);
  EXPECT_EQ(p2->rt.misses, 0u);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

// ---------- topology-aware + group placement ----------

TEST(Placement, TopologySteersRtOffLadenCpu) {
  System sys(placed(4, 2));
  sys.boot();
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(200));
  std::vector<nk::Thread*> rts;
  for (int i = 0; i < 4; ++i) {
    rts.push_back(sys.spawn_auto("rt" + std::to_string(i), busy(), c));
    sys.run_for(sim::millis(3));
  }
  for (nk::Thread* t : rts) {
    EXPECT_TRUE(admitted_rt(t));
    EXPECT_GE(t->cpu, 2u) << "RT thread placed on interrupt-laden cpu";
  }
  nk::Thread* ap =
      sys.spawn_auto("aper", busy(), rt::Constraints::aperiodic());
  EXPECT_LT(ap->cpu, 2u) << "aperiodic thread wasted interrupt-free cpu";
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(Group, AutoPlacementCoLocates) {
  System sys(placed(4, 1));
  sys.boot();
  const auto c = rt::Constraints::periodic(sim::millis(2), sim::millis(1),
                                           sim::micros(150));
  const auto members = sys.spawn_group_auto(
      "team", 3, c, [](std::uint32_t) { return busy(); });
  ASSERT_EQ(members.size(), 3u);
  std::set<std::uint32_t> cpus;
  for (nk::Thread* t : members) cpus.insert(t->cpu);
  EXPECT_EQ(cpus.size(), 3u);  // distinct CPUs: members run concurrently
  for (std::uint32_t cpu : cpus) EXPECT_GE(cpu, 1u);  // interrupt-free

  sys.run_for(sim::millis(40));
  for (nk::Thread* t : members) {
    auto* b = dynamic_cast<grp::GroupAdmitThenBehavior*>(t->behavior);
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->protocol().succeeded());
    EXPECT_TRUE(admitted_rt(t));
    EXPECT_EQ(t->rt.misses, 0u);
  }
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

// ---------- overflow spawn + churn ----------

TEST(Overflow, SpawnSplitAdmitsOversizedTask) {
  System sys(placed(2, 0));
  sys.boot();
  // u = 0.9 fits no single CPU (capacity 0.79); the split spawns pipeline
  // chunks whose phases differ by exactly one period.
  const auto c =
      rt::Constraints::periodic(sim::millis(1), sim::millis(1), sim::micros(900));
  const auto chunks = sys.spawn_split("wide", c);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_NE(chunks[0]->cpu, chunks[1]->cpu);

  sys.run_for(sim::millis(40));
  sim::Nanos total_slice = 0;
  for (nk::Thread* t : chunks) {
    EXPECT_TRUE(admitted_rt(t));
    EXPECT_EQ(t->rt.misses, 0u);
    total_slice += t->constraints.slice;
  }
  EXPECT_EQ(total_slice, c.slice);
  // Aligned release grids (docs/GLOBAL.md): the chunks' absolute first
  // arrivals (gamma + committed phase) sit exactly one period apart on one
  // shared grid, and the whole-period pipeline offsets are preserved.
  const sim::Nanos a0 = chunks[0]->rt.gamma + chunks[0]->constraints.phase;
  const sim::Nanos a1 = chunks[1]->rt.gamma + chunks[1]->constraints.phase;
  EXPECT_EQ(((a1 - a0) % c.period + c.period) % c.period, 0);
  // Whole-period phase parts: the spec's own phase offset plus the chunk
  // index (chunk i trails chunk 0 by i periods in the pipeline).
  EXPECT_EQ(chunks[0]->constraints.phase / c.period, c.phase / c.period);
  EXPECT_EQ(chunks[1]->constraints.phase / c.period, c.phase / c.period + 1);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

// Regression for the docs/GLOBAL.md caveat this PR closes: chunks admitting
// at skewed gammas used to carry grids offset by the skew.  With aligned
// release (the default) the commit-time rewrite lands every chunk on the
// shared anchor grid exactly; with it disabled the historical misalignment
// is reproduced, proving the fix is load-bearing.
TEST(Overflow, SplitChunksShareExactReleaseGridUnderSkew) {
  for (const bool aligned : {true, false}) {
    System::Options o = placed(2, 0);
    o.placement_config.split_aligned_release = aligned;
    System sys(std::move(o));
    sys.machine().trace().enable();
    sys.boot();
    // One-shot aperiodic hogs of different lengths delay each chunk's first
    // run — and therefore its admission gamma — by different amounts.
    sys.spawn("hog0", finite_worker(1, sim::micros(70)), 0, 5);
    sys.spawn("hog1", finite_worker(1, sim::micros(130)), 1, 5);
    const auto c = rt::Constraints::periodic(sim::millis(1), sim::millis(1),
                                             sim::micros(900));
    const auto chunks = sys.spawn_split("wide", c);
    ASSERT_EQ(chunks.size(), 2u);
    sys.run_for(sim::millis(40));
    for (nk::Thread* t : chunks) ASSERT_TRUE(admitted_rt(t));
    const sim::Nanos skew = chunks[1]->rt.gamma - chunks[0]->rt.gamma;
    ASSERT_NE(skew % c.period, 0) << "scenario must produce admission skew";

    const sim::Nanos a0 = chunks[0]->rt.gamma + chunks[0]->constraints.phase;
    const sim::Nanos a1 = chunks[1]->rt.gamma + chunks[1]->constraints.phase;
    const sim::Nanos grid_offset = ((a1 - a0) % c.period + c.period) % c.period;
    if (!aligned) {
      EXPECT_NE(grid_offset, 0) << "pre-fix behavior: grids offset by skew";
      continue;
    }
    EXPECT_EQ(grid_offset, 0) << "chunks must share one release grid";
    EXPECT_EQ(chunks[1]->constraints.phase / c.period -
                  chunks[0]->constraints.phase / c.period,
              1)
        << "pipeline offset preserved";
    // The previously-misaligned split now passes the replay oracle with
    // zero misses on both CPUs.
    const audit::ReplayConfig cfg =
        audit::replay_config_for(sys.machine().spec());
    for (nk::Thread* t : chunks) {
      EXPECT_EQ(t->rt.misses, 0u);
      const std::vector<audit::ReplayTask> tasks = {
          {t->id, t->constraints, t->rt.gamma}};
      audit::ReplayResult r = audit::replay_edf(
          sys.machine().trace(), t->cpu, tasks, cfg, sys.engine().now());
      for (const auto& d : r.divergences) {
        ADD_FAILURE() << "cpu " << t->cpu << " t=" << d.time << "ns: "
                      << d.detail;
      }
      audit::verify_stats(r, t->id, t->rt.arrivals, t->rt.completions,
                          t->rt.misses, 2);
      EXPECT_TRUE(r.ok());
    }
    EXPECT_EQ(sys.auditor().total_violations(), 0u);
  }
}

TEST(Placement, ChurnKeepsLedgerInvariants) {
  System sys(placed(4, 1));
  sys.boot();
  auto periodic = [](sim::Nanos slice) {
    return rt::Constraints::periodic(sim::millis(1), sim::millis(1), slice);
  };
  // Waves of transient RT threads plus one sporadic: admissions, exits, and
  // rebalance migrations all feed the ledger; every scheduler pass
  // cross-checks it against the per-CPU ledgers (kPlacementLedger).
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 4; ++i) {
      sys.spawn_auto("w" + std::to_string(wave) + "." + std::to_string(i),
                     finite_worker(12, sim::micros(120)),
                     periodic(sim::micros(150)));
      sys.run_for(sim::millis(2));
    }
    sys.spawn_auto("s" + std::to_string(wave),
                   finite_worker(3, sim::micros(80)),
                   rt::Constraints::sporadic(sim::micros(500), sim::micros(200),
                                             sim::millis(2)));
    sys.run_for(sim::millis(25));
  }
  sys.run_for(sim::millis(50));

  EXPECT_EQ(sys.auditor().total_violations(), 0u);
  const auto& ledger = sys.placement().ledger();
  double sched_total = 0.0;
  for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
    EXPECT_NEAR(ledger.committed(cpu), sys.sched(cpu).admitted_utilization(),
                1e-9);
    sched_total += sys.sched(cpu).admitted_utilization();
  }
  EXPECT_NEAR(ledger.total_committed(), sched_total, 1e-9);
  EXPECT_GE(ledger.admits(), 12u);
  EXPECT_GE(ledger.releases(), 12u);
}

}  // namespace
}  // namespace hrt
