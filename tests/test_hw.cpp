// Unit tests for the simulated hardware: TSC, APIC timer, CPU interrupt
// acceptance rules, SMI source, GPIO, IoApic routing, machine-wide freeze.
#include <gtest/gtest.h>

#include <vector>

#include "hw/machine.hpp"

namespace hrt::hw {
namespace {

MachineSpec tiny() { return MachineSpec::phi_small(2); }

// ---------- Tsc ----------

TEST(Tsc, ReadTracksEngineAtFrequency) {
  sim::Engine eng;
  Tsc tsc(eng, sim::Frequency(1'000'000'000), 0);
  eng.schedule_at(1000, [] {});
  eng.run_all();
  EXPECT_EQ(tsc.read(), 1000);  // 1 GHz: 1 cycle per ns
}

TEST(Tsc, OffsetShiftsReads) {
  sim::Engine eng;
  Tsc tsc(eng, sim::Frequency(1'000'000'000), 500);
  EXPECT_EQ(tsc.read(), 500);
  EXPECT_EQ(tsc.wall_ns(), 500);
}

TEST(Tsc, WriteRebasesCounter) {
  sim::Engine eng;
  Tsc tsc(eng, sim::Frequency(1'000'000'000), 777);
  tsc.write(0);
  EXPECT_EQ(tsc.read(), 0);
  EXPECT_EQ(tsc.true_offset_ns(), 0);
}

TEST(Tsc, AdjustCyclesAppliesDelta) {
  sim::Engine eng;
  Tsc tsc(eng, sim::Frequency(2'000'000'000), 100);
  tsc.adjust_cycles(-200);  // 200 cycles @2GHz = 100 ns
  EXPECT_EQ(tsc.true_offset_ns(), 0);
}

// ---------- Apic ----------

TEST(Apic, OneShotFiresAtQuantizedDelay) {
  sim::Engine eng;
  std::vector<Vector> fired;
  Apic apic(eng, TimerSpec{20, false, 400}, sim::Frequency(1'300'000'000),
            [&](Vector v) { fired.push_back(v); });
  apic.arm_oneshot(105);  // 5 ticks of 20 ns = 100 ns, conservative
  eng.run_all();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], kTimerVector);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Apic, MinimumOneTick) {
  sim::Engine eng;
  int fires = 0;
  Apic apic(eng, TimerSpec{20, false, 400}, sim::Frequency(1'300'000'000),
            [&](Vector) { ++fires; });
  apic.arm_oneshot(0);
  eng.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(eng.now(), 20);
}

TEST(Apic, RearmReplacesPrevious) {
  sim::Engine eng;
  int fires = 0;
  Apic apic(eng, TimerSpec{20, false, 400}, sim::Frequency(1'300'000'000),
            [&](Vector) { ++fires; });
  apic.arm_oneshot(1000);
  apic.arm_oneshot(200);
  eng.run_all();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(eng.now(), 200);
}

TEST(Apic, CancelStopsTimer) {
  sim::Engine eng;
  int fires = 0;
  Apic apic(eng, TimerSpec{20, false, 400}, sim::Frequency(1'300'000'000),
            [&](Vector) { ++fires; });
  apic.arm_oneshot(100);
  apic.cancel();
  eng.run_all();
  EXPECT_EQ(fires, 0);
}

TEST(Apic, TscDeadlineModeIsCycleGranular) {
  sim::Engine eng;
  Apic apic(eng, TimerSpec{20, true, 400}, sim::Frequency(1'000'000'000),
            [](Vector) {});
  apic.arm_oneshot(105);
  EXPECT_EQ(apic.armed_delay(), 105);  // 1 GHz: 1 cycle = 1 ns, exact
  EXPECT_LT(apic.max_earliness(), 2);
}

TEST(Apic, EarlinessNeverLate) {
  sim::Engine eng;
  Apic apic(eng, TimerSpec{20, false, 400}, sim::Frequency(1'300'000'000),
            [](Vector) {});
  for (sim::Nanos d = 1; d < 500; d += 7) {
    apic.arm_oneshot(d);
    EXPECT_LE(apic.armed_delay(), std::max<sim::Nanos>(d, 20));
    apic.cancel();
  }
  EXPECT_LE(apic.earliness().max(), 20.0);
}

// ---------- Cpu interrupt rules ----------

struct CpuFixture : ::testing::Test {
  CpuFixture() : machine(tiny(), 7) {}
  hw::Machine machine;
};

TEST_F(CpuFixture, DeliversWhenAcceptable) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) { got.push_back(v); });
  cpu.raise(0x40);
  EXPECT_EQ(got, (std::vector<Vector>{0x40}));
}

TEST_F(CpuFixture, PendsWhileInterruptsDisabled) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) { got.push_back(v); });
  cpu.set_interrupts_enabled(false);
  cpu.raise(0x40);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(cpu.is_pending(0x40));
  cpu.set_interrupts_enabled(true);
  EXPECT_EQ(got, (std::vector<Vector>{0x40}));
  EXPECT_FALSE(cpu.is_pending(0x40));
}

TEST_F(CpuFixture, TprBlocksLowPriorityVectors) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) { got.push_back(v); });
  cpu.set_tpr(kTprRealTime);
  cpu.raise(0x40);            // class 4 <= 0xE: blocked
  EXPECT_TRUE(got.empty());
  cpu.raise(kTimerVector);    // class 0xF > 0xE: delivered
  EXPECT_EQ(got, (std::vector<Vector>{kTimerVector}));
  cpu.set_tpr(kTprOpen);      // lowering TPR releases the pended vector
  EXPECT_EQ(got, (std::vector<Vector>{kTimerVector, 0x40}));
}

TEST_F(CpuFixture, HighestPriorityPendingDeliveredFirst) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) { got.push_back(v); });
  cpu.set_interrupts_enabled(false);
  cpu.raise(0x35);
  cpu.raise(kTimerVector);
  cpu.raise(0x60);
  cpu.set_interrupts_enabled(true);
  EXPECT_EQ(got, (std::vector<Vector>{kTimerVector, 0x60, 0x35}));
}

TEST_F(CpuFixture, FrozenCpuPendsEverything) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) { got.push_back(v); });
  cpu.freeze();
  cpu.raise(kTimerVector);
  EXPECT_TRUE(got.empty());
  cpu.unfreeze();
  EXPECT_EQ(got, (std::vector<Vector>{kTimerVector}));
}

TEST_F(CpuFixture, HookDisablingInterruptsPreventsNestedDelivery) {
  std::vector<Vector> got;
  Cpu& cpu = machine.cpu(0);
  cpu.set_deliver_hook([&](Vector v) {
    got.push_back(v);
    cpu.set_interrupts_enabled(false);  // handler entry behavior
    cpu.raise(0x50);                    // arrives during handler
    EXPECT_TRUE(got.size() == 1 || v == 0x50);
  });
  cpu.raise(0x40);
  EXPECT_EQ(got.size(), 1u);
  cpu.set_interrupts_enabled(true);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], 0x50);
}

// ---------- SMI source ----------

TEST(Smi, DisabledSpecNeverFires) {
  MachineSpec spec = tiny();
  spec.smi.enabled = false;
  Machine m(spec, 3);
  m.smi().start();
  m.engine().run_until(sim::seconds(1));
  EXPECT_EQ(m.smi().stats().count, 0u);
}

TEST(Smi, RateAndDurationFollowSpec) {
  MachineSpec spec = tiny();
  spec.smi.enabled = true;
  spec.smi.mean_interval_ns = sim::millis(1);
  spec.smi.min_duration_ns = sim::micros(5);
  spec.smi.mean_duration_ns = sim::micros(10);
  spec.smi.max_duration_ns = sim::micros(20);
  Machine m(spec, 3);
  m.smi().start();
  m.engine().run_until(sim::seconds(1));
  // ~1000 expected; allow generous tolerance.
  const SmiStats st = m.smi().stats();
  EXPECT_GT(st.count, 700u);
  EXPECT_LT(st.count, 1400u);
  EXPECT_EQ(st.forced, 0u);
  const double avg = static_cast<double>(st.total_stolen_ns) /
                     static_cast<double>(st.count);
  EXPECT_GT(avg, 5000.0);
  EXPECT_LT(avg, 20000.0);
}

TEST(Smi, ForceInjectsExactDuration) {
  Machine m(tiny(), 3);
  sim::Nanos frozen_at = -1;
  sim::Nanos unfrozen_at = -1;
  m.set_freeze_hooks(Machine::FreezeHooks{
      [&](std::uint32_t cpu) {
        if (cpu == 0) frozen_at = m.engine().now();
      },
      [&](std::uint32_t cpu, sim::Nanos) {
        if (cpu == 0) unfrozen_at = m.engine().now();
      }});
  m.engine().schedule_at(100, [&] { m.smi().force(sim::micros(7)); });
  m.engine().run_all();
  EXPECT_EQ(frozen_at, 100);
  EXPECT_EQ(unfrozen_at, 100 + sim::micros(7));
}

TEST(Machine, OverlappingFreezesExtendTheWindow) {
  Machine m(tiny(), 3);
  sim::Nanos unfrozen_at = -1;
  int freezes = 0;
  m.set_freeze_hooks(Machine::FreezeHooks{
      [&](std::uint32_t cpu) {
        if (cpu == 0) ++freezes;
      },
      [&](std::uint32_t cpu, sim::Nanos) {
        if (cpu == 0) unfrozen_at = m.engine().now();
      }});
  m.engine().schedule_at(100, [&] { m.freeze_all(1000); });
  m.engine().schedule_at(600, [&] { m.freeze_all(1000); });
  m.engine().run_all();
  EXPECT_EQ(freezes, 1);  // second SMI extends, doesn't re-freeze
  EXPECT_EQ(unfrozen_at, 1600);
}

TEST(Machine, TimersKeepCountingAcrossFreeze) {
  // The TSC advances during an SMI — that is the whole "missing time"
  // problem (section 3.6).
  Machine m(tiny(), 3);
  m.engine().schedule_at(100, [&] { m.freeze_all(sim::micros(50)); });
  m.engine().run_all();
  EXPECT_EQ(m.cpu(0).tsc().wall_ns(), m.engine().now());
}

// ---------- Gpio + IoApic + Device ----------

TEST(Gpio, RecordsOnlyChangedPins) {
  sim::Trace trace;
  trace.enable();
  Gpio gpio(trace);
  gpio.outb(10, 0, 0b0000'0101);
  gpio.outb(20, 0, 0b0000'0100);  // pin 0 falls
  auto pins = trace.filter(sim::TraceKind::kPin);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0].value, (0 << 1) | 1);
  EXPECT_EQ(pins[1].value, (2 << 1) | 1);
  EXPECT_EQ(pins[2].value, (0 << 1) | 0);
}

TEST(Gpio, SetPinPreservesLatch) {
  sim::Trace trace;
  Gpio gpio(trace);
  gpio.set_pin(0, 0, 3, true);
  gpio.set_pin(0, 0, 5, true);
  EXPECT_EQ(gpio.latch(), 0b0010'1000);
  gpio.set_pin(0, 0, 3, false);
  EXPECT_EQ(gpio.latch(), 0b0010'0000);
}

TEST(IoApic, RoutesToProgrammedCpu) {
  Machine m(tiny(), 3);
  std::vector<std::pair<std::uint32_t, Vector>> got;
  for (std::uint32_t c = 0; c < 2; ++c) {
    m.cpu(c).set_deliver_hook([&got, c](Vector v) { got.emplace_back(c, v); });
  }
  m.ioapic().route(0x40, 1);
  m.ioapic().assert_irq(0x40);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1u);
}

TEST(Device, PeriodicArrivalsAtConfiguredRate) {
  Machine m(tiny(), 3);
  int count = 0;
  m.cpu(0).set_deliver_hook([&](Vector) { ++count; });
  auto& dev = m.add_device(0x41, Device::Arrival::kPeriodic, sim::micros(100));
  dev.start();
  m.engine().run_until(sim::millis(10));
  EXPECT_EQ(count, 100);
}

TEST(Device, StopHaltsInterrupts) {
  Machine m(tiny(), 3);
  int count = 0;
  m.cpu(0).set_deliver_hook([&](Vector) { ++count; });
  auto& dev = m.add_device(0x41, Device::Arrival::kPeriodic, sim::micros(100));
  dev.start();
  m.engine().run_until(sim::millis(1));
  dev.stop();
  const int at_stop = count;
  m.engine().run_until(sim::millis(10));
  EXPECT_LE(count, at_stop + 1);
}

TEST(Device, PoissonArrivalsApproximateRate) {
  Machine m(tiny(), 3);
  int count = 0;
  m.cpu(0).set_deliver_hook([&](Vector) { ++count; });
  auto& dev = m.add_device(0x42, Device::Arrival::kPoisson, sim::micros(50));
  dev.start();
  m.engine().run_until(sim::millis(50));
  EXPECT_GT(count, 700);   // expect ~1000
  EXPECT_LT(count, 1300);
}

TEST(Machine, IpiDeliveredAfterLatency) {
  Machine m(tiny(), 3);
  sim::Nanos at = -1;
  m.cpu(1).set_deliver_hook([&](Vector v) {
    if (v == kKickVector) at = m.engine().now();
  });
  m.engine().schedule_at(100, [&] { m.send_ipi(0, 1, kKickVector); });
  m.engine().run_all();
  EXPECT_EQ(at, 100 + tiny().timer.ipi_latency_ns);
}

TEST(Machine, BootSkewWithinSpec) {
  Machine m(MachineSpec::phi(), 9);
  for (std::uint32_t c = 1; c < m.num_cpus(); ++c) {
    EXPECT_GE(m.cpu(c).tsc().true_offset_ns(), 0);
    EXPECT_LE(m.cpu(c).tsc().true_offset_ns(),
              MachineSpec::phi().skew.boot_skew_max_ns);
  }
  EXPECT_EQ(m.cpu(0).tsc().true_offset_ns(), 0);
}

}  // namespace
}  // namespace hrt::hw
