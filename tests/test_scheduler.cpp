// LocalScheduler policy tests: admission control (all classes and
// policies), budget enforcement precision, deadline/miss accounting,
// aperiodic priorities and round-robin, sporadic lifecycle, reservations,
// lightweight tasks, work stealing, and the lazy-EDF variant.
#include <gtest/gtest.h>

#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options quiet(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  return o;
}

/// Spawn a thread that requests constraints `c` and then computes forever.
nk::Thread* spawn_rt(System& sys, std::uint32_t cpu, rt::Constraints c,
                     sim::Nanos chunk = sim::micros(20)) {
  auto b = std::make_unique<nk::FnBehavior>(
      [c, chunk](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(chunk);
      });
  return sys.spawn("rt", std::move(b), cpu, /*priority=*/10);
}

// ---------- Admission ----------

TEST(Admission, UtilizationLimitRespected) {
  System sys(quiet());
  sys.boot();
  // available = 0.99 - 0.10 - 0.10 = 0.79
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(50)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(a->last_admit_ok);
  nk::Thread* b = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(30)));
  sys.run_for(sim::millis(2));
  EXPECT_FALSE(b->last_admit_ok);  // 0.5 + 0.3 > 0.79
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.5, 1e-9);
}

TEST(Admission, PerCpuIndependence) {
  System sys(quiet());
  sys.boot();
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(70)));
  nk::Thread* b = spawn_rt(sys, 2,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(70)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(a->last_admit_ok);
  EXPECT_TRUE(b->last_admit_ok);  // different CPU: independent budget
}

TEST(Admission, ExitReleasesUtilization) {
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::micros(100), sim::micros(70)));
        }
        if (step < 4) return nk::Action::compute(sim::micros(10));
        return nk::Action::exit();
      });
  sys.spawn("short", std::move(b), 1, 10);
  sys.run_for(sim::millis(5));
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
  nk::Thread* n = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(70)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(n->last_admit_ok);
}

TEST(Admission, GranularityBoundsEnforced) {
  System sys(quiet());
  sys.boot();
  // min period / slice: 1 us by default.
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1), 500,
                                                     200));
  sys.run_for(sim::millis(2));
  EXPECT_FALSE(t->last_admit_ok);
}

TEST(Admission, MalformedConstraintsRejected) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(200)));
  sys.run_for(sim::millis(2));
  EXPECT_FALSE(t->last_admit_ok);  // slice > period
}

TEST(Admission, RmPolicyMoreConservativeThanEdf) {
  System::Options o = quiet();
  o.sched.policy = rt::AdmissionPolicy::kRmLl;
  System sys(std::move(o));
  sys.boot();
  // Two tasks at combined U = 0.70 < 0.79 (EDF ok) but > 0.828 * 0.79 =
  // 0.654 (LL bound on the available fraction).
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(35)));
  sys.run_for(sim::millis(2));
  nk::Thread* b = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(130),
                                                     sim::micros(45)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(a->last_admit_ok);
  EXPECT_FALSE(b->last_admit_ok);
}

TEST(Admission, SimulationPolicyAdmitsFeasibleSets) {
  System::Options o = quiet();
  o.sched.policy = rt::AdmissionPolicy::kSimulation;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(200),
                                                     sim::micros(80)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(a->last_admit_ok);
  nk::Thread* t = spawn_rt(sys, 1, rt::Constraints::periodic(
                                       sim::millis(1), sim::micros(400),
                                       sim::micros(380)));
  sys.run_for(sim::millis(2));
  EXPECT_FALSE(t->last_admit_ok);  // would overload with overheads
}

TEST(Admission, DisabledAdmissionAcceptsAnything) {
  System::Options o = quiet();
  o.sched.admission_enabled = false;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(10),
                                                     sim::micros(9)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(t->last_admit_ok);
}

// ---------- Periodic execution ----------

TEST(Periodic, ArrivalCadenceMatchesPeriod) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(200),
                                                     sim::micros(50)));
  sys.run_for(sim::millis(21));
  // ~(21 - 1) ms / 200 us = ~100 arrivals.
  EXPECT_GE(t->rt.arrivals, 98u);
  EXPECT_LE(t->rt.arrivals, 102u);
  EXPECT_EQ(t->rt.misses, 0u);
}

TEST(Periodic, PhaseDelaysFirstArrival) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(5),
                                                     sim::micros(100),
                                                     sim::micros(30)));
  sys.run_for(sim::millis(4));
  EXPECT_EQ(t->rt.arrivals, 0u);  // still in phase
  sys.run_for(sim::millis(3));
  EXPECT_GT(t->rt.arrivals, 5u);
}

TEST(Periodic, BudgetDeliveredPerArrival) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(200),
                                                     sim::micros(80)));
  sys.run_for(sim::millis(41));
  // 40 ms of admitted time at 40% utilization => ~16 ms CPU.
  EXPECT_NEAR(static_cast<double>(t->total_cpu_ns), 16e6, 0.8e6);
  const double per_arrival = static_cast<double>(t->total_cpu_ns) /
                             static_cast<double>(t->rt.completions);
  EXPECT_NEAR(per_arrival, 80e3, 2e3);  // sigma +- timer tick/jitter
}

TEST(Periodic, TwoRtThreadsEdfOrdering) {
  System sys(quiet());
  sys.boot();
  nk::Thread* fast = spawn_rt(sys, 1,
                              rt::Constraints::periodic(sim::millis(1),
                                                        sim::micros(100),
                                                        sim::micros(30)));
  nk::Thread* slow = spawn_rt(sys, 1,
                              rt::Constraints::periodic(sim::millis(1),
                                                        sim::micros(400),
                                                        sim::micros(150)));
  sys.run_for(sim::millis(50));
  EXPECT_TRUE(fast->last_admit_ok);
  EXPECT_TRUE(slow->last_admit_ok);
  EXPECT_EQ(fast->rt.misses, 0u);
  EXPECT_EQ(slow->rt.misses, 0u);
  EXPECT_GT(fast->rt.completions, 400u);
  EXPECT_GT(slow->rt.completions, 100u);
}

TEST(Periodic, ChangeConstraintsBackToAperiodic) {
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::micros(100), sim::micros(40)));
        }
        if (step == 20) {
          return nk::Action::change_constraints(
              rt::Constraints::aperiodic());
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t = sys.spawn("flip", std::move(b), 1, 10);
  sys.run_for(sim::millis(20));
  sys.sync_accounting();
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
  EXPECT_GT(t->total_cpu_ns, sim::millis(1));  // still runs as aperiodic
}

// ---------- Sporadic ----------

TEST(Sporadic, ServedBeforeDeadlineThenAperiodic) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::sporadic(sim::micros(100),
                                                     sim::micros(150),
                                                     sim::millis(2)),
                           sim::micros(25));
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(t->last_admit_ok);
  EXPECT_EQ(t->rt.arrivals, 1u);
  EXPECT_EQ(t->rt.completions, 1u);
  EXPECT_EQ(t->rt.misses, 0u);
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
}

TEST(Sporadic, ReservationLimitsConcurrentSporadics) {
  System sys(quiet());
  sys.boot();
  // density 150us / 1.9ms ~ 0.079 each; two of them exceed the 0.10
  // sporadic reservation.
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::sporadic(sim::micros(100),
                                                     sim::micros(150),
                                                     sim::millis(2)));
  nk::Thread* b = spawn_rt(sys, 1,
                           rt::Constraints::sporadic(sim::micros(100),
                                                     sim::micros(150),
                                                     sim::millis(2)));
  sys.run_for(sim::millis(1));
  EXPECT_NE(a->last_admit_ok, b->last_admit_ok);
}

TEST(Sporadic, CompletionReleasesReservationForNext) {
  System sys(quiet());
  sys.boot();
  nk::Thread* a = spawn_rt(sys, 1,
                           rt::Constraints::sporadic(sim::micros(100),
                                                     sim::micros(150),
                                                     sim::millis(2)));
  sys.run_for(sim::millis(5));  // a served, now aperiodic
  EXPECT_EQ(a->rt.completions, 1u);
  nk::Thread* b = spawn_rt(sys, 1,
                           rt::Constraints::sporadic(sim::micros(100),
                                                     sim::micros(150),
                                                     sim::millis(2)));
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(b->last_admit_ok);
  EXPECT_EQ(b->rt.completions, 1u);
}

// ---------- Aperiodic scheduling ----------

TEST(Aperiodic, StrictPriorityPreemptsAtPass) {
  System sys(quiet());
  sys.boot();
  nk::Thread* low = sys.spawn(
      "low", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1, 200);
  nk::Thread* high = sys.spawn(
      "high", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1, 5);
  sys.run_for(sim::millis(50));
  sys.sync_accounting();
  // Strict priority: high hogs the CPU; low starves.
  EXPECT_GT(high->total_cpu_ns, 40 * low->total_cpu_ns + 1);
}

TEST(Aperiodic, RoundRobinSharesEqualPriority) {
  System::Options o = quiet();
  o.sched.aperiodic_quantum = sim::millis(1);  // faster than 10 Hz for test
  System sys(std::move(o));
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1);
  nk::Thread* b = sys.spawn(
      "b", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1);
  sys.run_for(sim::millis(50));
  const double ratio = static_cast<double>(a->total_cpu_ns) /
                       static_cast<double>(b->total_cpu_ns);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
  EXPECT_GT(sys.sched(1).stats().rr_rotations, 20u);
}

// ---------- Lightweight tasks ----------

TEST(Tasks, SizedTasksRunInline) {
  System sys(quiet());
  sys.boot();
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    sys.kernel().submit_task(1, nk::Task{[&ran] { ++ran; }, sim::micros(3)});
  }
  sys.run_for(sim::millis(1));
  EXPECT_EQ(ran, 10);
  EXPECT_EQ(sys.sched(1).stats().tasks_inline, 10u);
}

TEST(Tasks, SizedTasksNeverDelayRtThread) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(60)));
  sys.run_for(sim::millis(3));
  int ran = 0;
  for (int i = 0; i < 500; ++i) {
    sys.kernel().submit_task(1, nk::Task{[&ran] { ++ran; }, sim::micros(8)});
  }
  sys.run_for(sim::millis(60));
  EXPECT_EQ(t->rt.misses, 0u);  // the RT thread was never delayed
  EXPECT_GT(ran, 400);          // tasks drained in the gaps
}

TEST(Tasks, UnsizedTasksQueueForHelperThread) {
  System sys(quiet());
  sys.boot();
  int ran = 0;
  sys.kernel().submit_task(1, nk::Task{[&ran] { ++ran; }, -1});
  sys.run_for(sim::millis(1));
  EXPECT_EQ(ran, 0);  // unsized: not run inline
  EXPECT_TRUE(sys.sched(1).has_unsized_task());
  // A helper thread drains them.
  auto helper = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx& c, std::uint64_t) {
        auto& sched = static_cast<rt::LocalScheduler&>(
            c.kernel.scheduler(c.self.cpu));
        if (!sched.has_unsized_task()) return nk::Action::exit();
        auto task = sched.pop_unsized_task();
        return nk::Action::compute(sim::micros(5),
                                   [fn = std::move(task.fn)](nk::ThreadCtx&) {
                                     fn();
                                   });
      });
  sys.spawn("taskexec", std::move(helper), 1, 10);
  sys.run_for(sim::millis(1));
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(sys.sched(1).has_unsized_task());
}

// ---------- Work stealing ----------

TEST(Stealing, UnboundAperiodicThreadMigrates) {
  System::Options o = quiet();
  o.work_stealing = true;
  System sys(std::move(o));
  sys.boot();
  // Two unbound threads stuck behind a hog on CPU 1; idle CPUs 2/3 steal.
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)),
            1, 5);
  nk::Thread* w1 = sys.kernel().create_thread(
      "w1", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1,
      rt::kDefaultPriority, /*bound=*/false);
  nk::Thread* w2 = sys.kernel().create_thread(
      "w2", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1,
      rt::kDefaultPriority, /*bound=*/false);
  sys.run_for(sim::millis(50));
  sys.sync_accounting();
  EXPECT_GT(sys.kernel().steals(), 0u);
  EXPECT_TRUE(w1->cpu != 1 || w2->cpu != 1);
  EXPECT_GT(w1->total_cpu_ns + w2->total_cpu_ns, sim::millis(10));
}

TEST(Stealing, BoundThreadsAreNeverStolen) {
  System::Options o = quiet();
  o.work_stealing = true;
  System sys(std::move(o));
  sys.boot();
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)),
            1, 5);
  nk::Thread* w = sys.spawn(
      "bound", std::make_unique<nk::BusyLoopBehavior>(sim::micros(100)), 1);
  sys.run_for(sim::millis(30));
  EXPECT_EQ(w->cpu, 1u);
  EXPECT_EQ(sys.kernel().steals(), 0u);
}

TEST(Stealing, RtThreadsAreNeverStolen) {
  System::Options o = quiet();
  o.work_stealing = true;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(50)));
  sys.run_for(sim::millis(30));
  EXPECT_EQ(t->cpu, 1u);
  EXPECT_EQ(t->rt.misses, 0u);
}

// ---------- Reservations (group admission building block) ----------

TEST(Reservation, ReserveThenCommit) {
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx& c, std::uint64_t step) {
        auto& sched = static_cast<rt::LocalScheduler&>(
            c.kernel.scheduler(c.self.cpu));
        if (step == 0) {
          return nk::Action::compute(
              sim::micros(10), [&sched](nk::ThreadCtx& cc) {
                EXPECT_TRUE(sched.reserve_constraints(
                    cc.self, rt::Constraints::periodic(sim::micros(500),
                                                       sim::micros(100),
                                                       sim::micros(40))));
                EXPECT_TRUE(sched.has_reservation(cc.self));
              });
        }
        if (step == 1) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(500), sim::micros(100), sim::micros(40)));
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t = sys.spawn("r", std::move(b), 1, 10);
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(t->last_admit_ok);
  EXPECT_FALSE(sys.sched(1).has_reservation(*t));
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kPeriodic);
  EXPECT_GT(t->rt.arrivals, 10u);
}

TEST(Reservation, ReservedUtilizationBlocksOthers) {
  System sys(quiet());
  sys.boot();
  nk::Thread* holder = sys.spawn(
      "holder", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1,
      50);
  sys.run_for(sim::millis(1));
  EXPECT_TRUE(sys.sched(1).reserve_constraints(
      *holder, rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                         sim::micros(60))));
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(100),
                                                     sim::micros(30)));
  sys.run_for(sim::millis(2));
  EXPECT_FALSE(t->last_admit_ok);  // 0.6 reserved + 0.3 > 0.79
  sys.sched(1).cancel_reservation(*holder);
  nk::Thread* t2 = spawn_rt(sys, 1,
                            rt::Constraints::periodic(sim::millis(1),
                                                      sim::micros(100),
                                                      sim::micros(30)));
  sys.run_for(sim::millis(2));
  EXPECT_TRUE(t2->last_admit_ok);
}

// ---------- Lazy variant ----------

TEST(LazyEdf, StillMeetsDeadlinesWithoutMissingTime) {
  System::Options o = quiet();
  o.sched.eager = false;
  System sys(std::move(o));
  sys.boot();
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)),
            1, 200);
  nk::Thread* t = spawn_rt(sys, 1,
                           rt::Constraints::periodic(sim::millis(1),
                                                     sim::micros(200),
                                                     sim::micros(60)));
  sys.run_for(sim::millis(50));
  EXPECT_TRUE(t->last_admit_ok);
  EXPECT_GT(t->rt.completions, 200u);
  // Lazy leaves margin only for *nominal* overheads; cost jitter is already
  // "badly predicted time", so the occasional miss is inherent to the
  // variant even without SMIs (the point of section 3.6).
  EXPECT_LE(t->rt.misses, 3u);
}

// ---------- Stats ----------

TEST(Stats, PassCountsByReason) {
  System sys(quiet());
  sys.boot();
  spawn_rt(sys, 1,
           rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                     sim::micros(50)));
  sys.run_for(sim::millis(10));
  const auto& st = sys.sched(1).stats();
  EXPECT_GT(st.passes, 100u);
  EXPECT_GT(st.timer_passes, 100u);
  EXPECT_GE(st.kick_passes, 1u);  // the spawn kick
  EXPECT_EQ(st.admissions_ok, 1u);
}

}  // namespace
}  // namespace hrt
