// Unit tests for the Constraints value type and the reporting module.
#include <gtest/gtest.h>

#include <sstream>

#include "rt/constraints.hpp"
#include "rt/report.hpp"
#include "rt/system.hpp"

namespace hrt::rt {
namespace {

// ---------- Constraints ----------

TEST(Constraints, FactoriesSetClass) {
  EXPECT_EQ(Constraints::aperiodic().cls, ConstraintClass::kAperiodic);
  EXPECT_EQ(Constraints::periodic(0, 100, 50).cls,
            ConstraintClass::kPeriodic);
  EXPECT_EQ(Constraints::sporadic(0, 50, 100).cls,
            ConstraintClass::kSporadic);
}

TEST(Constraints, RealtimePredicate) {
  EXPECT_FALSE(Constraints::aperiodic().is_realtime());
  EXPECT_TRUE(Constraints::periodic(0, 100, 50).is_realtime());
  EXPECT_TRUE(Constraints::sporadic(0, 50, 100).is_realtime());
}

TEST(Constraints, UtilizationPerClass) {
  EXPECT_DOUBLE_EQ(Constraints::aperiodic().utilization(), 0.0);
  EXPECT_DOUBLE_EQ(Constraints::periodic(0, 200, 50).utilization(), 0.25);
  // Sporadic density: omega / (deadline - phase) = 60 / (300 - 100).
  EXPECT_DOUBLE_EQ(Constraints::sporadic(100, 60, 300).utilization(), 0.3);
}

TEST(Constraints, WellFormedChecks) {
  EXPECT_TRUE(Constraints::aperiodic().well_formed());
  EXPECT_TRUE(Constraints::periodic(0, 100, 100).well_formed());
  EXPECT_FALSE(Constraints::periodic(0, 100, 101).well_formed());
  EXPECT_FALSE(Constraints::periodic(-1, 100, 50).well_formed());
  EXPECT_FALSE(Constraints::periodic(0, 0, 0).well_formed());
  EXPECT_TRUE(Constraints::sporadic(0, 50, 100).well_formed());
  EXPECT_FALSE(Constraints::sporadic(0, 150, 100).well_formed());  // w > d
  EXPECT_FALSE(Constraints::sporadic(100, 50, 100).well_formed());  // d<=phi
}

TEST(Constraints, EqualityComparesRelevantFields) {
  EXPECT_EQ(Constraints::periodic(1, 2, 3), Constraints::periodic(1, 2, 3));
  EXPECT_FALSE(Constraints::periodic(1, 2, 3) ==
               Constraints::periodic(1, 2, 2));
  EXPECT_FALSE(Constraints::periodic(1, 2, 2) == Constraints::aperiodic());
  EXPECT_EQ(Constraints::aperiodic(5), Constraints::aperiodic(5));
  EXPECT_FALSE(Constraints::aperiodic(5) == Constraints::aperiodic(6));
}

// ---------- Report ----------

TEST(Report, ContainsThreadsAndCpus) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(Constraints::periodic(
              sim::millis(1), sim::micros(200), sim::micros(60)));
        }
        return nk::Action::compute(sim::micros(20));
      });
  sys.spawn("reporter", std::move(b), 1, 10);
  sys.run_for(sim::millis(20));

  std::ostringstream os;
  print_report(sys, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("=== machine: phi"), std::string::npos);
  EXPECT_NE(out.find("reporter"), std::string::npos);
  EXPECT_NE(out.find("periodic"), std::string::npos);
  // Only the busy CPU appears (skip_quiet_cpus).
  EXPECT_EQ(out.find("\n  2 "), std::string::npos);
}

TEST(Report, IdleThreadsHiddenByDefault) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  sys.run_for(sim::millis(1));
  std::ostringstream hidden;
  print_thread_report(sys, hidden);
  EXPECT_EQ(hidden.str().find("idle0"), std::string::npos);
  std::ostringstream shown;
  ReportOptions opt;
  opt.include_idle_threads = true;
  print_thread_report(sys, shown, opt);
  EXPECT_NE(shown.str().find("idle0"), std::string::npos);
}

}  // namespace
}  // namespace hrt::rt
