// Tests for the UUniFast task-set generator, the ticket spinlock, and the
// machine-level property that randomly generated admissible task sets run
// without misses on the simulated node.
#include <gtest/gtest.h>

#include <numeric>

#include "nautilus/spinlock.hpp"
#include "rt/system.hpp"
#include "rt/taskset_gen.hpp"

namespace hrt {
namespace {

// ---------- UUniFast ----------

TEST(UUniFast, SumsExactlyToTarget) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    auto u = rt::uunifast(6, 0.75, rng);
    const double sum = std::accumulate(u.begin(), u.end(), 0.0);
    EXPECT_NEAR(sum, 0.75, 1e-12);
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 0.75 + 1e-12);
    }
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  sim::Rng rng(2);
  auto u = rt::uunifast(1, 0.5, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.5);
}

TEST(UUniFast, EmptyIsEmpty) {
  sim::Rng rng(3);
  EXPECT_TRUE(rt::uunifast(0, 0.5, rng).empty());
}

TEST(UUniFast, MarginalsAreUnbiased) {
  // Each task's expected utilization is total/n.
  sim::Rng rng(4);
  const int trials = 20000;
  std::vector<double> sums(4, 0.0);
  for (int t = 0; t < trials; ++t) {
    auto u = rt::uunifast(4, 0.8, rng);
    for (std::size_t i = 0; i < 4; ++i) sums[i] += u[i];
  }
  for (double s : sums) {
    EXPECT_NEAR(s / trials, 0.2, 0.01);
  }
}

TEST(TaskSetGen, RespectsParameterBounds) {
  sim::Rng rng(5);
  rt::TaskSetParams p;
  p.n = 8;
  p.total_utilization = 0.6;
  p.min_period = sim::micros(100);
  p.max_period = sim::millis(5);
  p.period_granule = sim::micros(100);
  for (int trial = 0; trial < 50; ++trial) {
    auto set = rt::generate_taskset(p, rng);
    ASSERT_EQ(set.size(), 8u);
    double u = 0.0;
    for (const auto& t : set) {
      EXPECT_GE(t.period, p.min_period);
      EXPECT_LE(t.period, p.max_period);
      EXPECT_EQ(t.period % p.period_granule, 0);
      EXPECT_GE(t.slice, sim::micros(1));
      EXPECT_LE(t.slice, t.period);
      u += static_cast<double>(t.slice) / static_cast<double>(t.period);
    }
    // Truncation and the min-slice floor move utilization only slightly.
    EXPECT_LE(u, 0.62);
    EXPECT_GT(u, 0.5);
  }
}

// ---------- SpinLock ----------

TEST(SpinLock, MutualExclusionAcrossCpus) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(5);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  nk::SpinLock lock(sys.kernel());
  for (std::uint32_t r = 0; r < 4; ++r) {
    auto b = std::make_unique<nk::FnBehavior>(
        [&lock, ticket = nk::SpinLock::Ticket{}](nk::ThreadCtx&,
                                                 std::uint64_t step) mutable {
          const std::uint64_t round = step / 4;
          if (round >= 25) return nk::Action::exit();
          switch (step % 4) {
            case 0:
              return lock.take_ticket_action(&ticket);
            case 1:
              return lock.wait_action(&ticket);
            case 2:
              return nk::Action::compute(sim::micros(5));
            default:
              return lock.release_action();
          }
        });
    sys.spawn("l" + std::to_string(r), std::move(b), 1 + r);
  }
  // All 4x25 acquisitions complete and the lock ends free.
  sys.run_for(sim::millis(100));
  EXPECT_EQ(lock.acquisitions(), 100u);
  EXPECT_FALSE(lock.held());
}

TEST(SpinLock, CriticalSectionsNeverOverlap) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  nk::SpinLock lock(sys.kernel());
  // Record [enter, leave] intervals and check pairwise disjointness.
  std::vector<std::pair<sim::Nanos, sim::Nanos>> sections;
  for (std::uint32_t r = 0; r < 3; ++r) {
    auto b = std::make_unique<nk::FnBehavior>(
        [&sections, &lock, enter = sim::Nanos{0},
         ticket = nk::SpinLock::Ticket{}](nk::ThreadCtx& c,
                                          std::uint64_t step) mutable {
          if (step / 4 >= 15) return nk::Action::exit();
          switch (step % 4) {
            case 0:
              return lock.take_ticket_action(&ticket);
            case 1:
              return lock.wait_action(&ticket);
            case 2:
              enter = c.kernel.machine().engine().now();
              return nk::Action::compute(sim::micros(3));
            default:
              sections.emplace_back(enter,
                                    c.kernel.machine().engine().now());
              return lock.release_action();
          }
        });
    sys.spawn("c" + std::to_string(r), std::move(b), 1 + r);
  }
  sys.run_for(sim::millis(50));
  ASSERT_EQ(sections.size(), 45u);
  std::sort(sections.begin(), sections.end());
  for (std::size_t i = 1; i < sections.size(); ++i) {
    EXPECT_GE(sections[i].first, sections[i - 1].second)
        << "critical sections overlap at index " << i;
  }
}

TEST(SpinLock, UncontendedAcquireIsImmediate) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  nk::SpinLock lock(sys.kernel());
  sim::Nanos acquired_at = -1;
  sim::Nanos started_at = -1;
  auto b = std::make_unique<nk::FnBehavior>(
      [&, ticket = nk::SpinLock::Ticket{}](nk::ThreadCtx& c,
                                           std::uint64_t step) mutable {
        switch (step) {
          case 0:
            started_at = c.kernel.machine().engine().now();
            return lock.take_ticket_action(&ticket);
          case 1:
            return lock.wait_action(&ticket);
          case 2:
            acquired_at = c.kernel.machine().engine().now();
            return lock.release_action();
          default:
            return nk::Action::exit();
        }
      });
  sys.spawn("solo", std::move(b), 1);
  sys.run_for(sim::millis(1));
  ASSERT_GT(acquired_at, 0);
  EXPECT_LT(acquired_at - started_at, sim::micros(2));
}

// ---------- Machine-level property: admissible sets never miss ----------

class RandomTaskSetOnMachine : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomTaskSetOnMachine, AdmittedSetsRunWithoutMisses) {
  sim::Rng rng(GetParam());
  rt::TaskSetParams p;
  p.n = 3;
  p.total_utilization = 0.55;
  p.min_period = sim::micros(300);
  p.max_period = sim::millis(3);
  p.period_granule = sim::micros(100);
  const auto set = rt::generate_taskset(p, rng);

  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.seed = GetParam();
  System sys(std::move(o));
  sys.boot();
  std::vector<nk::Thread*> threads;
  for (const auto& task : set) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c = rt::Constraints::periodic(sim::millis(1), task.period,
                                       task.slice)](nk::ThreadCtx&,
                                                    std::uint64_t step) {
          if (step == 0) return nk::Action::change_constraints(c);
          return nk::Action::compute(sim::micros(15));
        });
    threads.push_back(sys.spawn("p", std::move(b), 1, 10));
  }
  sys.run_for(sim::millis(300));
  for (nk::Thread* t : threads) {
    ASSERT_TRUE(t->last_admit_ok) << "U=0.55 set must be admissible";
    EXPECT_GT(t->rt.arrivals, 50u);
    EXPECT_EQ(t->rt.misses, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaskSetOnMachine,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

}  // namespace
}  // namespace hrt
