// Buddy allocator tests: correctness, coalescing, invariants, and
// property-style randomized sweeps.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "nautilus/buddy.hpp"
#include "sim/rng.hpp"

namespace hrt::nk {
namespace {

TEST(Buddy, AllocatesAndFreesOneBlock) {
  BuddyAllocator b(0x10000, 12, 20);  // 4 KiB .. 1 MiB
  EXPECT_EQ(b.capacity(), 1u << 20);
  auto a = b.alloc(4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_GE(*a, 0x10000u);
  EXPECT_EQ(b.bytes_allocated(), 4096u);
  b.free(*a);
  EXPECT_EQ(b.bytes_allocated(), 0u);
  EXPECT_EQ(b.largest_free_block(), 1u << 20);
}

TEST(Buddy, RoundsUpToPowerOfTwo) {
  BuddyAllocator b(0, 12, 20);
  auto a = b.alloc(5000);  // -> 8192
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(b.bytes_allocated(), 8192u);
  b.free(*a);
}

TEST(Buddy, ZeroSizeGetsMinBlock) {
  BuddyAllocator b(0, 12, 20);
  auto a = b.alloc(0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(b.bytes_allocated(), 4096u);
  b.free(*a);
}

TEST(Buddy, ExhaustionReturnsNullopt) {
  BuddyAllocator b(0, 12, 14);  // 16 KiB total, 4 KiB min
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 4; ++i) {
    auto a = b.alloc(4096);
    ASSERT_TRUE(a.has_value());
    blocks.push_back(*a);
  }
  EXPECT_FALSE(b.alloc(4096).has_value());
  for (auto a : blocks) b.free(a);
  EXPECT_TRUE(b.alloc(16384).has_value());
}

TEST(Buddy, OversizeRequestRejected) {
  BuddyAllocator b(0, 12, 16);
  EXPECT_FALSE(b.alloc((1u << 16) + 1).has_value());
}

TEST(Buddy, CoalescingRestoresLargeBlocks) {
  BuddyAllocator b(0, 12, 16);  // 64 KiB
  auto a1 = b.alloc(4096);
  auto a2 = b.alloc(4096);
  auto a3 = b.alloc(4096);
  ASSERT_TRUE(a1 && a2 && a3);
  EXPECT_LT(b.largest_free_block(), 1u << 16);
  b.free(*a1);
  b.free(*a2);
  b.free(*a3);
  EXPECT_EQ(b.largest_free_block(), 1u << 16);
  EXPECT_TRUE(b.check_invariants());
}

TEST(Buddy, DoubleFreeThrows) {
  BuddyAllocator b(0, 12, 16);
  auto a = b.alloc(4096);
  ASSERT_TRUE(a.has_value());
  b.free(*a);
  EXPECT_THROW(b.free(*a), std::invalid_argument);
}

TEST(Buddy, FreeOfUnknownAddressThrows) {
  BuddyAllocator b(0x1000, 12, 16);
  EXPECT_THROW(b.free(0x1234), std::invalid_argument);
  EXPECT_THROW(b.free(0x10), std::invalid_argument);  // below base
}

TEST(Buddy, BadOrderRangeThrows) {
  EXPECT_THROW(BuddyAllocator(0, 20, 12), std::invalid_argument);
  EXPECT_THROW(BuddyAllocator(0, 10, 63), std::invalid_argument);
}

TEST(Buddy, AllocationsDoNotOverlap) {
  BuddyAllocator b(0, 12, 18);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // addr, size
  sim::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t size = 4096u << rng.uniform(0, 2);
    auto a = b.alloc(size);
    if (!a) continue;
    for (const auto& [addr, sz] : live) {
      const bool disjoint = *a + size <= addr || addr + sz <= *a;
      EXPECT_TRUE(disjoint) << "overlap at " << *a;
    }
    live.emplace_back(*a, size);
  }
  for (const auto& [addr, sz] : live) b.free(addr);
  EXPECT_TRUE(b.check_invariants());
}

class BuddyRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BuddyRandomSweep, RandomOpsPreserveInvariants) {
  BuddyAllocator b(0x4000, 12, 22);  // 4 MiB
  sim::Rng rng(GetParam());
  std::vector<std::uint64_t> live;
  std::uint64_t expected_allocated = 0;
  std::map<std::uint64_t, std::uint64_t> sizes;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_double() < 0.55) {
      const std::uint64_t want = 1u << rng.uniform(8, 15);  // up to 32 KiB
      auto a = b.alloc(want);
      if (a) {
        live.push_back(*a);
        std::uint64_t rounded = 4096;
        while (rounded < want) rounded <<= 1;
        sizes[*a] = rounded;
        expected_allocated += rounded;
      }
    } else {
      const auto idx =
          static_cast<std::size_t>(rng.uniform(0, live.size() - 1));
      const std::uint64_t addr = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      b.free(addr);
      expected_allocated -= sizes[addr];
      sizes.erase(addr);
    }
    ASSERT_EQ(b.bytes_allocated(), expected_allocated);
  }
  EXPECT_TRUE(b.check_invariants());
  for (auto a : live) b.free(a);
  EXPECT_EQ(b.bytes_allocated(), 0u);
  EXPECT_EQ(b.largest_free_block(), b.capacity());
  EXPECT_TRUE(b.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace hrt::nk
