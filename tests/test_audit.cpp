// Scheduler invariant auditor + EDF replay oracle (audit/), and regression
// tests for the queue-state bugfixes that shipped with it.  Each fixed bug
// can be deliberately re-introduced via Config::TestFaults, and the tests
// prove both the fixed behavior and that the auditor catches the fault.
//
// The suite runs in two modes: the default build configures auditors in
// accumulate mode and inspects counters; an HRT_FORCE_AUDIT build forces
// every auditor into throwing mode, so fault tests tolerate either an
// AuditError or an accumulated violation (run_counting below).
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "audit/replay.hpp"
#include "rt/report.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options audited(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;  // keep replay tolerances tight
  o.audit.enabled = true;      // accumulate mode; FORCE builds throw instead
  return o;
}

/// Run `fn`, tolerating the AuditError a throwing-mode (HRT_FORCE_AUDIT)
/// auditor raises, and return how many `inv` violations were seen either
/// way (record() counts before throwing).
std::uint64_t run_counting(System& sys, audit::Invariant inv,
                           const std::function<void()>& fn) {
  try {
    fn();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), inv) << e.what();
  }
  return sys.auditor().count(inv);
}

std::unique_ptr<nk::FnBehavior> rt_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

// ---------- Auditor unit behavior ----------

TEST(Auditor, AccumulatesOrThrowsPerConfig) {
  audit::Config cfg;
  cfg.enabled = true;
  cfg.throw_on_violation = false;
  audit::Auditor a(cfg);
  if (a.config().throw_on_violation) {
    // HRT_FORCE_AUDIT build: the constructor forces throwing mode.
    EXPECT_THROW(a.record(audit::Invariant::kBudget, 1, 100, "x"),
                 audit::AuditError);
    EXPECT_EQ(a.count(audit::Invariant::kBudget), 1u);
  } else {
    a.record(audit::Invariant::kBudget, 1, 100, "over");
    a.record(audit::Invariant::kQueueState, 2, 200, "queued twice");
    EXPECT_EQ(a.total_violations(), 2u);
    EXPECT_EQ(a.count(audit::Invariant::kBudget), 1u);
    EXPECT_EQ(a.count(audit::Invariant::kQueueState), 1u);
    ASSERT_EQ(a.violations().size(), 2u);
    EXPECT_EQ(a.violations()[0].cpu, 1u);
    EXPECT_EQ(a.violations()[1].detail, "queued twice");
  }
  a.clear();
  EXPECT_EQ(a.total_violations(), 0u);
  EXPECT_TRUE(a.violations().empty());
}

TEST(Auditor, ThrowingModeCarriesInvariant) {
  audit::Config cfg;
  cfg.enabled = true;
  cfg.throw_on_violation = true;
  audit::Auditor a(cfg);
  try {
    a.record(audit::Invariant::kEdfOrder, 3, 42, "wrong order");
    FAIL() << "record() did not throw";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), audit::Invariant::kEdfOrder);
    EXPECT_NE(std::string(e.what()).find("edf-order"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("wrong order"), std::string::npos);
  }
}

TEST(Auditor, RecordingIsBounded) {
  audit::Config cfg;
  cfg.enabled = true;
  cfg.max_recorded = 4;
  audit::Auditor a(cfg);
  if (a.config().throw_on_violation) GTEST_SKIP() << "force-audit build";
  for (int i = 0; i < 100; ++i) {
    a.record(audit::Invariant::kGroup, 0, i, "v");
  }
  EXPECT_EQ(a.total_violations(), 100u);
  EXPECT_EQ(a.violations().size(), 4u);
}

// ---------- Healthy system: audits on, no violations ----------

TEST(AuditClean, RealtimeWorkloadPassesAllInvariants) {
  System sys(audited());
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                               sim::micros(20))), 1);
  nk::Thread* b = sys.spawn(
      "b", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(250),
                                               sim::micros(50))), 1);
  sys.run_for(sim::millis(50));
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
  // The checks actually ran: every pass audits queues + ledgers, every
  // arrival close audits the budget.
  EXPECT_GT(sys.auditor().checks_run(), 1000u);
  EXPECT_GT(a->rt.arrivals, 400u);
  EXPECT_GT(b->rt.arrivals, 150u);

  std::ostringstream os;
  rt::print_audit_report(sys, os);
  EXPECT_NE(os.str().find("audit:"), std::string::npos);
  EXPECT_NE(os.str().find("0 violations"), std::string::npos);
}

TEST(AuditClean, GroupBarrierWorkloadPassesAllInvariants) {
  System sys(audited(6));
  sys.boot();
  grp::ThreadGroup* g = sys.groups().create("g", 3);
  grp::GroupBarrier& bar = g->barrier(0);
  for (std::uint32_t r = 0; r < 3; ++r) {
    std::vector<nk::Action> acts;
    acts.push_back(nk::Action::compute(sim::micros(10) * (r + 1)));
    acts.push_back(bar.scan_action());
    acts.push_back(bar.arrive_action());
    acts.push_back(bar.wait_action());
    acts.push_back(bar.depart_action());
    sys.spawn("t" + std::to_string(r),
              std::make_unique<nk::SequenceBehavior>(std::move(acts)), 1 + r);
  }
  sys.run_for(sim::millis(2));
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
  EXPECT_GT(sys.auditor().checks_run(), 0u);
}

// ---------- Bugfix 1: class change on a sleeping thread ----------

TEST(SleepingChange, AperiodicChangeKeepsThreadSleeping) {
  System sys(audited());
  sys.boot();
  bool woke = false;
  auto b = std::make_unique<nk::FnBehavior>(
      [&woke](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::sleep(sim::millis(5));
        return nk::Action::compute(sim::micros(50),
                                   [&woke](nk::ThreadCtx&) { woke = true; });
      });
  nk::Thread* t = sys.spawn("napper", std::move(b), 1, 50);
  sys.run_for(sim::millis(1));
  ASSERT_EQ(t->state, nk::Thread::State::kSleeping);
  const std::size_t sleepers = sys.sched(1).sleeper_count();
  const sim::Nanos wake_before = t->wake_time;

  // Re-prioritize the sleeper (aperiodic -> aperiodic): it must stay
  // asleep with its wake time intact, not get parked runnable in nonrt_.
  EXPECT_TRUE(sys.sched(1).change_constraints(
      *t, rt::Constraints::aperiodic(10), sys.engine().now()));
  EXPECT_EQ(t->state, nk::Thread::State::kSleeping);
  EXPECT_EQ(sys.sched(1).sleeper_count(), sleepers);
  EXPECT_EQ(t->wake_time, wake_before);
  EXPECT_FALSE(woke);
  EXPECT_EQ(t->constraints.priority, 10u);

  sys.run_for(sim::millis(10));  // past the original wake time
  EXPECT_TRUE(woke);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(SleepingChange, SeededFaultIsCaughtByQueueAudit) {
  System::Options o = audited();
  o.sched.test_faults.sleeping_change_to_nonrt = true;
  System sys(std::move(o));
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::sleep(sim::millis(5));
        return nk::Action::compute(sim::micros(50));
      });
  nk::Thread* t = sys.spawn("napper", std::move(b), 1, 50);
  sys.run_for(sim::millis(1));
  ASSERT_EQ(t->state, nk::Thread::State::kSleeping);

  const std::uint64_t violations = run_counting(
      sys, audit::Invariant::kQueueState, [&] {
        (void)sys.sched(1).change_constraints(
            *t, rt::Constraints::aperiodic(10), sys.engine().now());
        // The faulty path parks the still-sleeping thread in nonrt_; the
        // next state audit flags the state/queue mismatch.
        sys.sched(1).audit_state(sys.engine().now());
      });
  EXPECT_GE(violations, 1u);
}

// ---------- Bugfix 2: sporadic -> aperiodic tail ----------

TEST(SporadicTail, DropsReservationAndRejoinsRoundRobinAtTheBack) {
  System sys(audited());
  sys.boot();
  nk::Thread* t = sys.spawn(
      "sp", rt_worker(rt::Constraints::sporadic(
                sim::millis(1), sim::micros(500), sim::millis(11), 30)), 1);
  sys.run_for(sim::micros(1200));  // mid sporadic service
  ASSERT_EQ(t->constraints.cls, rt::ConstraintClass::kSporadic);
  ASSERT_TRUE(t->rt.arrival_open);
  const std::uint64_t seq_before = t->rr_seq;

  // A (group-admission style) reservation made during the RT phase claims
  // utilization the tail no longer needs.
  ASSERT_TRUE(sys.sched(1).reserve_constraints(
      *t, rt::Constraints::periodic(0, sim::millis(1), sim::micros(100))));
  ASSERT_TRUE(sys.sched(1).has_reservation(*t));

  sys.run_for(sim::millis(10));  // budget delivered; tail is aperiodic now
  ASSERT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
  EXPECT_EQ(t->constraints.priority, 30u);
  EXPECT_EQ(t->rt.completions, 1u);
  EXPECT_FALSE(sys.sched(1).has_reservation(*t));
  // The tail queues behind aperiodics that were already waiting, instead of
  // jumping ahead on its stale pre-admission sequence number.
  EXPECT_GT(t->rr_seq, seq_before);
  EXPECT_EQ(sys.auditor().total_violations(), 0u);
}

TEST(SporadicTail, SeededFaultKeepsStaleReservation) {
  System::Options o = audited();
  o.sched.test_faults.stale_sporadic_tail = true;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = sys.spawn(
      "sp", rt_worker(rt::Constraints::sporadic(
                sim::millis(1), sim::micros(500), sim::millis(11), 30)), 1);
  sys.run_for(sim::micros(1200));
  ASSERT_EQ(t->constraints.cls, rt::ConstraintClass::kSporadic);
  const std::uint64_t seq_before = t->rr_seq;
  ASSERT_TRUE(sys.sched(1).reserve_constraints(
      *t, rt::Constraints::periodic(0, sim::millis(1), sim::micros(100))));

  sys.run_for(sim::millis(10));
  ASSERT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
  // The bug: the dead reservation still pins 10% utilization, and the tail
  // kept its pre-admission round-robin slot.
  EXPECT_TRUE(sys.sched(1).has_reservation(*t));
  EXPECT_EQ(t->rr_seq, seq_before);
}

// ---------- Bugfix 3: thread_count() double-counting the current ----------

TEST(ThreadCount, DoubleCountFaultInflatesPassCost) {
  // Two equal-priority aperiodic hogs force a round-robin rotation every
  // quantum; the rotation re-queues the current thread before pass() charges
  // its cost, which is exactly where the double count fired.  With cost
  // jitter disabled the two runs differ only by the per-thread term.
  auto opts = [](bool fault) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(4);
    o.smi_enabled = false;
    o.spec.cost.jitter_rel_std = 0.0;
    o.sched.aperiodic_quantum = sim::micros(200);
    o.sched.test_faults.double_count_current = fault;
    return o;
  };
  auto run = [](System::Options o) {
    System sys(std::move(o));
    sys.boot();
    sys.spawn("a", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1);
    sys.spawn("b", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1);
    sys.run_for(sim::millis(20));
    EXPECT_GT(sys.sched(1).stats().rr_rotations, 40u);
    return sys.kernel().executor(1).overheads().pass.mean();
  };
  const double fixed = run(opts(false));
  const double faulty = run(opts(true));
  EXPECT_GT(faulty, fixed);
}

// ---------- Bugfix 4: one-shot re-armed at a stale quantum target ----------

TEST(TimerArm, RotationTargetInThePastIsClamped) {
  // A high-priority hog over a low-priority waiter never rotates, so the
  // quantum expiry point recedes into the past while the hog runs.  The
  // fixed scheduler re-arms one full quantum out; re-arming at the stale
  // target fires a one-shot every APIC tick.
  System::Options o = audited();
  o.sched.aperiodic_quantum = sim::micros(500);
  System sys(std::move(o));
  sys.boot();
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1, 5);
  sys.spawn("low", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1,
            200);
  sys.run_for(sim::millis(20));
  EXPECT_LT(sys.sched(1).stats().zero_delay_arms, 64u);
  EXPECT_LT(sys.sched(1).stats().timer_passes, 200u);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kTimerArm), 0u);
}

TEST(TimerArm, SeededStormIsCaughtByTimerAudit) {
  System::Options o = audited();
  o.sched.aperiodic_quantum = sim::micros(500);
  o.sched.test_faults.rearm_past_quantum = true;
  System sys(std::move(o));
  sys.boot();
  sys.spawn("hog", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1, 5);
  sys.spawn("low", std::make_unique<nk::BusyLoopBehavior>(sim::millis(2)), 1,
            200);
  const std::uint64_t violations = run_counting(
      sys, audit::Invariant::kTimerArm,
      [&] { sys.run_for(sim::millis(20)); });
  EXPECT_GE(violations, 1u);
  EXPECT_GE(sys.sched(1).stats().zero_delay_arms, 64u);
}

// ---------- EDF replay oracle ----------

struct ReplayFixtureResult {
  std::vector<audit::ReplayTask> tasks;
  std::vector<nk::Thread*> threads;
};

void dump_divergences(const audit::ReplayResult& r) {
  for (const auto& d : r.divergences) {
    ADD_FAILURE() << "t=" << d.time << "ns: " << d.detail;
  }
}

TEST(Replay, CleanPeriodicScheduleHasNoDivergences) {
  System sys(audited());
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                               sim::micros(20))), 1);
  nk::Thread* b = sys.spawn(
      "b", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(250),
                                               sim::micros(50))), 1);
  sys.run_for(sim::millis(50));

  const std::vector<audit::ReplayTask> tasks = {
      {a->id, a->constraints, a->rt.gamma},
      {b->id, b->constraints, b->rt.gamma},
  };
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), 1, tasks,
                                            cfg, sys.engine().now());
  dump_divergences(r);
  EXPECT_TRUE(r.ok());
  ASSERT_NE(r.find(a->id), nullptr);
  EXPECT_GT(r.find(a->id)->arrivals, 400u);
  audit::verify_stats(r, a->id, a->rt.arrivals, a->rt.completions,
                      a->rt.misses, 2);
  audit::verify_stats(r, b->id, b->rt.arrivals, b->rt.completions,
                      b->rt.misses, 2);
  dump_divergences(r);
  EXPECT_TRUE(r.ok());
}

// The bench harness's figure scenario: admission off, one periodic thread
// per cell, including a deliberately infeasible (overloaded) cell.  The
// oracle must agree with the scheduler in both regimes.
TEST(Replay, BenchMissSweepCellsValidate) {
  for (const int pct : {45, 90}) {
    System::Options o = audited();
    o.sched.admission_enabled = false;
    System sys(std::move(o));
    sys.machine().trace().enable();
    sys.boot();
    const sim::Nanos period = sim::micros(50);
    nk::Thread* t = sys.spawn(
        "sweep",
        rt_worker(rt::Constraints::periodic(sim::millis(1), period,
                                            period * pct / 100)),
        1);
    sys.run_for(sim::millis(30));

    const std::vector<audit::ReplayTask> tasks = {
        {t->id, t->constraints, t->rt.gamma}};
    const audit::ReplayConfig cfg =
        audit::replay_config_for(sys.machine().spec());
    audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), 1, tasks,
                                              cfg, sys.engine().now());
    const std::uint64_t tol =
        std::max<std::uint64_t>(3, t->rt.arrivals / 50);
    audit::verify_stats(r, t->id, t->rt.arrivals, t->rt.completions,
                        t->rt.misses, tol);
    dump_divergences(r);
    EXPECT_TRUE(r.ok()) << "slice " << pct << "%";
    EXPECT_GT(t->rt.arrivals, 500u);
    if (pct == 90) {
      // The overloaded cell does miss; the point is the oracle accounts for
      // every miss rather than finding divergences.
      EXPECT_GT(t->rt.misses, 0u);
    }
  }
}

TEST(Replay, DoctoredTraceIsFlagged) {
  System sys(audited());
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                               sim::micros(20))), 1);
  nk::Thread* b = sys.spawn(
      "b", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(250),
                                               sim::micros(50))), 1);
  sys.run_for(sim::millis(50));

  // Forge the stream: for a 2 ms window mid-run, swap the two threads'
  // dispatch records, as if the scheduler had served the wrong thread.
  sim::Trace doctored;
  doctored.enable();
  for (const sim::TraceRecord& rec : sys.machine().trace().records()) {
    sim::TraceRecord f = rec;
    if (f.time >= sim::millis(20) && f.time < sim::millis(22) &&
        (f.kind == sim::TraceKind::kThreadActive ||
         f.kind == sim::TraceKind::kThreadInactive)) {
      if (f.value == static_cast<std::int64_t>(a->id)) {
        f.value = b->id;
      } else if (f.value == static_cast<std::int64_t>(b->id)) {
        f.value = a->id;
      }
    }
    doctored.record(f.time, f.cpu, f.kind, f.value);
  }
  const std::vector<audit::ReplayTask> tasks = {
      {a->id, a->constraints, a->rt.gamma},
      {b->id, b->constraints, b->rt.gamma},
  };
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(doctored, 1, tasks, cfg,
                                            sys.engine().now());
  EXPECT_FALSE(r.ok());
}

TEST(Replay, VerifyStatsFlagsUnaccountedMisses) {
  System sys(audited());
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                               sim::micros(20))), 1);
  sys.run_for(sim::millis(20));
  const std::vector<audit::ReplayTask> tasks = {
      {a->id, a->constraints, a->rt.gamma}};
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), 1, tasks,
                                            cfg, sys.engine().now());
  ASSERT_TRUE(r.ok());
  // A scheduler that under-reported 50 misses would not match the oracle.
  audit::verify_stats(r, a->id, a->rt.arrivals, a->rt.completions,
                      a->rt.misses + 50, 2);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.divergences.back().detail.find("misses"), std::string::npos);
}

}  // namespace
}  // namespace hrt
