// BSP microbenchmark harness tests: work derivation, completion,
// correctness (skew) under all modes, throttling proportionality, barrier
// accounting, and parameter sweeps.
#include <gtest/gtest.h>

#include "bsp/bsp.hpp"

namespace hrt::bsp {
namespace {

System::Options quiet(std::uint32_t cpus = 9) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.sched.sporadic_reservation = 0.04;
  o.sched.aperiodic_reservation = 0.05;
  return o;
}

BspConfig small_cfg() {
  BspConfig c;
  c.P = 8;
  c.NE = 64;
  c.NC = 4;
  c.NW = 4;
  c.N = 40;
  return c;
}

TEST(BspWork, DerivationMatchesSpec) {
  const auto spec = hw::MachineSpec::phi();
  BspConfig c = small_cfg();
  const BspWork w = derive_work(spec, c);
  // 64 * 4 * 6 cycles = 1536 cycles at 1.3 GHz ~ 1182 ns.
  EXPECT_NEAR(static_cast<double>(w.compute_ns), 1182.0, 2.0);
  // 4 writes * 300 cycles ~ 924 ns.
  EXPECT_NEAR(static_cast<double>(w.write_ns), 924.0, 2.0);
}

TEST(Bsp, AperiodicBarrierRunCompletesWithBoundedSkew) {
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.mode = Mode::kAperiodic;
  c.barrier = true;
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.all_done);
  EXPECT_LE(r.max_write_skew, 1u);
  EXPECT_EQ(r.barrier_rounds, c.N);
  EXPECT_GT(r.makespan, 0);
}

TEST(Bsp, NoWritesConfigSkipsWriteStep) {
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.NW = 0;
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.max_write_skew, 0u);
}

TEST(Bsp, GroupRtBarrierFreeLockstep) {
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.mode = Mode::kGroupRt;
  c.barrier = false;
  c.period = sim::micros(200);
  c.slice = sim::micros(160);
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.admission_ok);
  EXPECT_TRUE(r.all_done);
  EXPECT_LE(r.max_write_skew, 2u);
  EXPECT_EQ(r.barrier_rounds, 0u);
}

TEST(Bsp, ThrottlingScalesExecutionTime) {
  auto run_at = [](int pct) {
    System sys(quiet());
    sys.boot();
    BspConfig c = small_cfg();
    c.N = 60;
    c.mode = Mode::kGroupRt;
    c.barrier = true;
    c.period = sim::micros(500);
    c.slice = sim::micros(5) * pct;
    auto r = run_bsp(sys, c);
    EXPECT_TRUE(r.all_done);
    return static_cast<double>(r.makespan);
  };
  const double t30 = run_at(30);
  const double t60 = run_at(60);
  EXPECT_NEAR(t30 / t60, 2.0, 0.3);
}

TEST(Bsp, BarrierRemovalNeverBreaksCompletion) {
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.mode = Mode::kGroupRt;
  c.barrier = false;
  c.period = sim::micros(500);
  c.slice = sim::micros(250);
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.all_done);
  EXPECT_GT(r.avg_iterations_per_second, 0.0);
}

TEST(Bsp, RejectedGroupReportsAdmissionFailure) {
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.mode = Mode::kGroupRt;
  c.period = sim::micros(100);
  c.slice = sim::micros(95);  // > 90% available
  auto r = run_bsp(sys, c);
  EXPECT_FALSE(r.admission_ok);
}

TEST(Bsp, TooManyCpusThrows) {
  System sys(quiet(4));
  sys.boot();
  BspConfig c = small_cfg();  // P=8 > 3 available
  EXPECT_THROW((void)run_bsp(sys, c), std::invalid_argument);
}

TEST(Bsp, RunBeforeBootThrows) {
  System sys(quiet());
  BspConfig c = small_cfg();
  EXPECT_THROW((void)run_bsp(sys, c), std::logic_error);
}

struct SweepParam {
  std::uint64_t ne;
  std::uint64_t nc;
  std::uint64_t nw;
  bool barrier;
};

class BspSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(BspSweep, AperiodicRunsCompleteCorrectly) {
  const auto p = GetParam();
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.NE = p.ne;
  c.NC = p.nc;
  c.NW = p.nw;
  c.barrier = p.barrier;
  c.N = 25;
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.all_done);
  if (p.barrier) {
    EXPECT_LE(r.max_write_skew, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BspSweep,
    ::testing::Values(SweepParam{16, 2, 2, true}, SweepParam{16, 2, 2, false},
                      SweepParam{256, 8, 8, true},
                      SweepParam{256, 8, 8, false},
                      SweepParam{1024, 16, 0, true},
                      SweepParam{64, 1, 16, true}));

class BspRtSweep : public ::testing::TestWithParam<int> {};

TEST_P(BspRtSweep, GroupRtLockstepHoldsAcrossUtilizations) {
  const int pct = GetParam();
  System sys(quiet());
  sys.boot();
  BspConfig c = small_cfg();
  c.mode = Mode::kGroupRt;
  c.barrier = false;
  c.N = 30;
  c.period = sim::micros(400);
  c.slice = sim::micros(4) * pct;
  auto r = run_bsp(sys, c);
  EXPECT_TRUE(r.admission_ok);
  EXPECT_TRUE(r.all_done);
  EXPECT_LE(r.max_write_skew, 2u);
}

INSTANTIATE_TEST_SUITE_P(Utilization, BspRtSweep,
                         ::testing::Values(20, 40, 60, 80, 90));

}  // namespace
}  // namespace hrt::bsp
