// Tests for the extension modules: the interrupt thread (section 3.5's
// second steering mechanism), the cyclic-executive scheduler (section 8
// future work, running on the simulated machine), and trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "nautilus/interrupt_thread.hpp"
#include "rt/ce_scheduler.hpp"
#include "rt/system.hpp"
#include "sim/trace_export.hpp"

namespace hrt {
namespace {

// ---------- InterruptThread ----------

System::Options quiet(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  return o;
}

TEST(InterruptThread, ProcessesBacklogAndSleeps) {
  System sys(quiet());
  auto& dev = sys.machine().add_device(0x48, hw::Device::Arrival::kPeriodic,
                                       sim::micros(200));
  sys.boot();
  nk::InterruptThread it(sys.kernel(), 0, /*bottom_half=*/8000);
  it.attach_vector(0x48, /*top_half=*/800);
  sys.kernel().apply_interrupt_partition();
  dev.start();
  sys.run_for(sim::millis(20));
  EXPECT_GT(it.interrupts_queued(), 90u);
  EXPECT_EQ(it.backlog(), 0u);  // the bottom half keeps up
  EXPECT_EQ(it.interrupts_processed(), it.interrupts_queued());
}

TEST(InterruptThread, BottomHalfYieldsToRtThread) {
  System sys(quiet());
  auto& dev = sys.machine().add_device(0x48, hw::Device::Arrival::kPoisson,
                                       sim::micros(100));
  sys.boot();
  nk::InterruptThread it(sys.kernel(), 0, 20000);
  it.attach_vector(0x48, 800);
  sys.kernel().apply_interrupt_partition();
  dev.start();
  // RT thread on the SAME interrupt-laden CPU: TPR steering defers the top
  // halves and the bottom half is just an aperiodic thread, so deadlines
  // hold.
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(200), sim::micros(80)));
        }
        return nk::Action::compute(sim::micros(40));
      });
  nk::Thread* t = sys.spawn("rt", std::move(b), 0, 10);
  sys.run_for(sim::millis(100));
  ASSERT_TRUE(t->last_admit_ok);
  EXPECT_EQ(t->rt.misses, 0u);
  EXPECT_GT(it.interrupts_processed(), 500u);
}

TEST(InterruptThread, WakeThreadOnNonSleepingIsFalse) {
  System sys(quiet());
  sys.boot();
  nk::Thread* t = sys.spawn(
      "w", std::make_unique<nk::BusyLoopBehavior>(sim::micros(10)), 1);
  sys.run_for(sim::millis(1));
  EXPECT_FALSE(sys.kernel().wake_thread(t));
}

// ---------- CyclicExecutiveScheduler ----------

struct CeFixture : ::testing::Test {
  void build(std::vector<rt::PeriodicTask> tasks) {
    tasks_ = std::move(tasks);
    auto ce = rt::CyclicExecutiveBuilder::build(tasks_);
    ASSERT_TRUE(ce.has_value());
    hw::MachineSpec spec = hw::MachineSpec::phi_small(2);
    spec.smi.enabled = false;
    machine_ = std::make_unique<hw::Machine>(spec, 42);
    nk::Kernel::Options ko;
    ko.scheduler_factory =
        rt::CyclicExecutiveScheduler::factory(*ce, tasks_);
    kernel_ = std::make_unique<nk::Kernel>(*machine_, std::move(ko));
    kernel_->boot();
  }

  nk::Thread* claim_slot(std::size_t i, sim::Nanos chunk = sim::micros(10)) {
    auto b = std::make_unique<nk::FnBehavior>(
        [c = rt::Constraints::periodic(0, tasks_[i].period, tasks_[i].slice),
         chunk](nk::ThreadCtx&, std::uint64_t step) {
          if (step == 0) return nk::Action::change_constraints(c);
          return nk::Action::compute(chunk);
        });
    return kernel_->create_thread("slot" + std::to_string(i), std::move(b),
                                  1);
  }

  rt::CyclicExecutiveScheduler& sched() {
    return static_cast<rt::CyclicExecutiveScheduler&>(kernel_->scheduler(1));
  }

  std::vector<rt::PeriodicTask> tasks_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<nk::Kernel> kernel_;
};

TEST_F(CeFixture, ActivatesWhenAllSlotsClaimed) {
  build({{sim::micros(100), sim::micros(30), 0},
         {sim::micros(200), sim::micros(50), 0}});
  nk::Thread* a = claim_slot(0);
  machine_->engine().run_until(sim::millis(1));
  EXPECT_TRUE(a->last_admit_ok);
  EXPECT_FALSE(sched().active());  // one slot still open
  claim_slot(1);
  machine_->engine().run_until(sim::millis(2));
  EXPECT_TRUE(sched().active());
  EXPECT_EQ(sched().epoch() % sim::micros(200), 0);  // hyperperiod aligned
}

TEST_F(CeFixture, SlotsReceiveTheirStaticShares) {
  build({{sim::micros(100), sim::micros(30), 0},
         {sim::micros(200), sim::micros(50), 0}});
  nk::Thread* a = claim_slot(0);
  nk::Thread* b = claim_slot(1);
  machine_->engine().run_until(sim::millis(52));
  kernel_->executor(1).sync_run_span();
  // ~50 ms of active executive: slot0 30%, slot1 25%.
  EXPECT_NEAR(static_cast<double>(a->total_cpu_ns), 15e6, 1.2e6);
  EXPECT_NEAR(static_cast<double>(b->total_cpu_ns), 12.5e6, 1.2e6);
}

TEST_F(CeFixture, NonMatchingConstraintRejected) {
  build({{sim::micros(100), sim::micros(30), 0}});
  auto bb = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              0, sim::micros(100), sim::micros(40)));  // no such slot
        }
        return nk::Action::exit();
      });
  nk::Thread* t = kernel_->create_thread("bad", std::move(bb), 1);
  machine_->engine().run_until(sim::millis(1));
  EXPECT_FALSE(t->last_admit_ok);
}

TEST_F(CeFixture, DuplicateClaimRejected) {
  build({{sim::micros(100), sim::micros(30), 0},
         {sim::micros(200), sim::micros(50), 0}});
  nk::Thread* a = claim_slot(0);
  machine_->engine().run_until(sim::millis(1));
  nk::Thread* dup = claim_slot(0);
  machine_->engine().run_until(sim::millis(2));
  EXPECT_TRUE(a->last_admit_ok);
  EXPECT_FALSE(dup->last_admit_ok);
  EXPECT_NEAR(sched().admitted_utilization(), 0.3, 1e-9);
}

TEST_F(CeFixture, AperiodicThreadsFillIdleSegments) {
  build({{sim::micros(100), sim::micros(30), 0}});
  claim_slot(0);
  nk::Thread* bg = kernel_->create_thread(
      "bg", std::make_unique<nk::BusyLoopBehavior>(sim::micros(20)), 1);
  machine_->engine().run_until(sim::millis(50));
  kernel_->executor(1).sync_run_span();
  // Slot takes 30%; background gets most of the rest.
  EXPECT_GT(bg->total_cpu_ns, sim::millis(25));
}

TEST_F(CeFixture, ExitedSlotThreadLeavesIdleSegment) {
  build({{sim::micros(100), sim::micros(30), 0}});
  auto b = std::make_unique<nk::FnBehavior>(
      [this](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              0, tasks_[0].period, tasks_[0].slice));
        }
        if (step < 10) return nk::Action::compute(sim::micros(10));
        return nk::Action::exit();
      });
  kernel_->create_thread("short", std::move(b), 1);
  machine_->engine().run_until(sim::millis(20));
  EXPECT_NEAR(sched().admitted_utilization(), 0.0, 1e-9);
}

// ---------- Trace export ----------

TEST(TraceExport, CsvContainsAllRecords) {
  sim::Trace trace;
  trace.enable();
  trace.record(100, 1, sim::TraceKind::kSwitch, 7);
  trace.record(200, 2, sim::TraceKind::kPin, 3);
  std::ostringstream os;
  sim::export_csv(trace, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("time_ns,cpu,kind,value"), std::string::npos);
  EXPECT_NE(out.find("100,1,switch,7"), std::string::npos);
  EXPECT_NE(out.find("200,2,pin,3"), std::string::npos);
}

TEST(TraceExport, VcdHasHeaderAndTransitions) {
  sim::Trace trace;
  trace.enable();
  // pin 0 high at t=10, low at t=50; pin 2 high at t=50.
  trace.record(10, 0, sim::TraceKind::kPin, (0 << 1) | 1);
  trace.record(50, 0, sim::TraceKind::kPin, (0 << 1) | 0);
  trace.record(50, 0, sim::TraceKind::kPin, (2 << 1) | 1);
  trace.record(60, 1, sim::TraceKind::kPin, (1 << 1) | 1);  // other cpu
  std::ostringstream os;
  sim::export_pins_vcd(trace, 0, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! pin0 $end"), std::string::npos);
  EXPECT_NE(out.find("#10\n1!"), std::string::npos);
  EXPECT_NE(out.find("#50\n0!\n1#"), std::string::npos);
  EXPECT_EQ(out.find("#60"), std::string::npos);  // cpu 1 excluded
}

TEST(TraceExport, KindNamesStable) {
  EXPECT_STREQ(sim::trace_kind_name(sim::TraceKind::kIrqEnter), "irq_enter");
  EXPECT_STREQ(sim::trace_kind_name(sim::TraceKind::kSchedPass),
               "sched_pass");
}

}  // namespace
}  // namespace hrt
