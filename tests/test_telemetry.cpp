// Telemetry flight recorder + SLO observability (src/telemetry/,
// docs/OBSERVABILITY.md):
//   * the per-CPU seqlock SPSC ring: ordering, drop-oldest wraparound,
//     generation tags, and torn-read rejection under a real writer thread,
//   * the recorder's kind counters and self-measured record cost,
//   * log-bucketed histograms and their quantile extraction,
//   * the streaming metrics registry and the declarative SLO monitor
//     (burn-rate windows, alert transitions, the kSloBudget invariant),
//   * end-to-end capture through rt::System: default-off null-pointer
//     wiring, bit-identical scheduling on vs off, scheduler/migration
//     events landing in the right rings,
//   * the export layer: Chrome trace JSON round-trips through the bundled
//     parser, and a sim::Trace adapted through the same exporter agrees
//     with the EDF replay oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <sstream>
#include <thread>

#include "audit/replay.hpp"
#include "rt/report.hpp"
#include "rt/system.hpp"
#include "sim/histogram.hpp"
#include "telemetry/export.hpp"

namespace hrt {
namespace {

using telemetry::EventKind;
using telemetry::Record;

System::Options observed(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.telemetry.enabled = true;
  return o;
}

/// Run `fn`, tolerating the AuditError a throwing-mode (HRT_FORCE_AUDIT)
/// auditor raises, and return how many `inv` violations were seen.
std::uint64_t run_counting(System& sys, audit::Invariant inv,
                           const std::function<void()>& fn) {
  try {
    fn();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), inv) << e.what();
  }
  return sys.auditor().count(inv);
}

std::unique_ptr<nk::FnBehavior> rt_worker(rt::Constraints c) {
  return std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(sim::millis(2));
      });
}

Record rec_at(sim::Nanos t, std::int64_t arg) {
  Record r;
  r.time = t;
  r.arg = arg;
  r.kind = EventKind::kCustom;
  return r;
}

// ---------- ring ----------

TEST(TelemetryRing, OrderAndWraparound) {
  telemetry::SpscRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::int64_t i = 0; i < 20; ++i) ring.push(rec_at(i, i));
  EXPECT_EQ(ring.written(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.first_retained(), 12u);

  std::uint64_t torn = ~0ull;
  const auto snap = ring.snapshot(&torn);
  EXPECT_EQ(torn, 0u);  // single-threaded: nothing can tear
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const std::int64_t logical = 12 + static_cast<std::int64_t>(i);
    EXPECT_EQ(snap[i].time, logical);
    EXPECT_EQ(snap[i].arg, logical);
    // gen = lap count at write: records 12..15 were lap 1, 16..19 lap 2.
    EXPECT_EQ(snap[i].gen, logical < 16 ? 1 : 2);
  }
  // Capacity rounds up to a power of two with a floor of 8.
  EXPECT_EQ(telemetry::SpscRing(1).capacity(), 8u);
  EXPECT_EQ(telemetry::SpscRing(100).capacity(), 128u);
}

TEST(TelemetryRing, ConcurrentWriterReaderNoTornRecords) {
  // The simulator never races writer against reader (one host thread), but
  // the seqlock protocol must hold for a native port: hammer the ring from
  // a real writer thread while snapshotting, and verify every returned
  // record is internally consistent (arg == time) and in order.
  telemetry::SpscRing ring(256);
  constexpr std::int64_t kN = 200000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::int64_t i = 0; i < kN; ++i) ring.push(rec_at(i, i));
    done.store(true, std::memory_order_release);
  });
  std::uint64_t total_torn = 0;
  std::uint64_t snapshots = 0;
  while (!done.load(std::memory_order_acquire)) {
    std::uint64_t torn = 0;
    const auto snap = ring.snapshot(&torn);
    total_torn += torn;
    ++snapshots;
    sim::Nanos prev = -1;
    for (const Record& r : snap) {
      ASSERT_EQ(r.arg, r.time) << "torn record leaked through the seqlock";
      ASSERT_GT(r.time, prev) << "snapshot out of order";
      prev = r.time;
    }
  }
  writer.join();
  EXPECT_EQ(ring.written(), static_cast<std::uint64_t>(kN));
  EXPECT_GT(snapshots, 0u);
  // A final quiescent snapshot sees the full retained window.
  const auto snap = ring.snapshot();
  EXPECT_EQ(snap.size(), ring.capacity());
  EXPECT_EQ(snap.front().time, kN - 256);
  EXPECT_EQ(snap.back().time, kN - 1);
}

// ---------- recorder ----------

TEST(TelemetryRecorder, KindCountsMergedSnapshotAndSelfCost) {
  telemetry::RecorderConfig cfg;
  cfg.ring_capacity = 64;
  cfg.cost_sample_every = 1;  // probe every record
  telemetry::FlightRecorder rec(2, cfg);
  rec.record(0, EventKind::kPass, 100, 0, 1);
  rec.record(1, EventKind::kSwitch, 50, 7, 0);
  rec.record(0, EventKind::kSwitch, 200, 9, 0);
  rec.record(1, EventKind::kDeadlineMiss, 300, 7, 5000);
  EXPECT_EQ(rec.written(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.kind_count(EventKind::kSwitch), 2u);
  EXPECT_EQ(rec.kind_count(EventKind::kPass), 1u);
  EXPECT_EQ(rec.kind_count(EventKind::kDeadlineMiss), 1u);
  EXPECT_EQ(rec.kind_count(EventKind::kKick), 0u);
  EXPECT_EQ(rec.retained_kind_count(1, EventKind::kDeadlineMiss), 1u);
  EXPECT_EQ(rec.retained_kind_count(0, EventKind::kDeadlineMiss), 0u);

  // snapshot_all merges by time across rings.
  const auto all = rec.snapshot_all();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].time, 50);
  EXPECT_EQ(all[1].time, 100);
  EXPECT_EQ(all[2].time, 200);
  EXPECT_EQ(all[3].time, 300);
  EXPECT_EQ(all[0].cpu, 1u);

  // Self-measured cost: both the in-line probe and the batch calibration
  // must produce a sane host-ns figure (sub-microsecond on any host).
  EXPECT_EQ(rec.sampled_cost_ns().count(), 4u);
  const double cost = telemetry::FlightRecorder::measure_record_cost_ns(50000);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1000.0);

  for (std::size_t k = 0; k < telemetry::kEventKindCount; ++k) {
    EXPECT_NE(telemetry::event_kind_name(static_cast<EventKind>(k)),
              std::string("?"));
  }
}

// ---------- histograms ----------

TEST(TelemetryHistogram, LogBucketsAndQuantiles) {
  using telemetry::LogHistogram;
  EXPECT_EQ(LogHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_lo(4), 8u);

  LogHistogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-bucket interpolation is coarse; quantiles must be ordered, inside
  // the observed range, and in the right octave.
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_GE(h.quantile(0.0), 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);

  // The fixed-bin sim::Histogram gained the same cumulative-walk quantile.
  sim::Histogram fixed(0.0, 100.0, 20);
  for (int v = 0; v < 100; ++v) fixed.add(v);
  EXPECT_NEAR(fixed.quantile(0.5), 50.0, 5.0);
  EXPECT_NEAR(fixed.quantile(0.9), 90.0, 5.0);
  fixed.add(-5.0);   // underflow resolves to lo
  EXPECT_EQ(fixed.quantile(0.0), 0.0);
}

// ---------- metrics registry ----------

TEST(TelemetryMetrics, ThreadSlackLatenessAndOverflow) {
  telemetry::MetricsRegistry reg(2, /*max_threads=*/2);
  reg.on_completion(0, 1, "a", -sim::micros(10));  // met, 10 us slack
  reg.on_completion(0, 1, "a", sim::micros(5));    // missed by 5 us
  reg.on_skipped(0, 1, "a", 3);                    // 3 whole windows gone
  reg.on_completion(1, 2, "b", -sim::micros(1));
  reg.on_completion(1, 3, "c", -sim::micros(1));   // third thread: dropped

  EXPECT_EQ(reg.cpu(0).completions, 2u);
  EXPECT_EQ(reg.cpu(0).misses, 4u);  // 1 late completion + 3 skipped
  EXPECT_EQ(reg.cpu(1).completions, 2u);
  EXPECT_EQ(reg.cpu(1).misses, 0u);

  const telemetry::ThreadMetrics* a = reg.thread(1);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "a");
  EXPECT_EQ(a->completions, 2u);
  EXPECT_EQ(a->misses, 4u);
  EXPECT_EQ(a->slack_ns.total(), 1u);
  EXPECT_EQ(a->slack_ns.max(), sim::micros(10));
  EXPECT_EQ(a->lateness_ns.total(), 1u);
  EXPECT_EQ(a->lateness_ns.max(), sim::micros(5));

  // Bounded registry: thread 3 overflowed (counted, not silently lost), but
  // its per-CPU counters still advanced.
  EXPECT_EQ(reg.thread(3), nullptr);
  EXPECT_EQ(reg.threads_dropped(), 1u);
  const auto sorted = reg.threads_sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0]->tid, 1u);
  EXPECT_EQ(sorted[1]->tid, 2u);
}

// ---------- SLO monitor ----------

TEST(SloMonitor, BurnRateWindowsAndAlertTransitions) {
  telemetry::SloSpec spec;
  spec.name = "workers";
  spec.thread_match = "w";
  spec.miss_budget = 0.1;
  spec.window_ns = sim::millis(1);
  spec.min_completions = 4;
  telemetry::SloMonitor mon({spec});

  std::vector<double> burns;
  mon.set_alert_fn(
      [&](std::size_t i, sim::Nanos, double burn) {
        EXPECT_EQ(i, 0u);
        burns.push_back(burn);
      });

  // Non-matching threads are invisible to the spec.
  mon.on_completion("other", true, sim::micros(10));
  EXPECT_FALSE(mon.burn_rate_for("other", sim::micros(10)).has_value());

  // 4 completions, 2 missed: miss fraction 0.5 vs budget 0.1 -> burn 5.
  for (int i = 0; i < 4; ++i) {
    mon.on_completion("w0", i < 2, sim::micros(100 + i));
  }
  ASSERT_EQ(burns.size(), 1u);  // one transition, not one alert per miss
  EXPECT_NEAR(burns[0], 5.0, 1e-9);
  EXPECT_EQ(mon.alerts(), 1u);
  EXPECT_NEAR(mon.burn_rate(0, sim::micros(104)), 5.0, 0.1);

  // Jump several windows ahead: both buckets clear, clean completions
  // drop the burn to zero and rearm the alert edge.
  for (int i = 0; i < 4; ++i) {
    mon.on_completion("w1", false, sim::millis(10) + i);
  }
  EXPECT_EQ(mon.alerts(), 1u);
  EXPECT_NEAR(mon.burn_rate(0, sim::millis(10) + 4), 0.0, 1e-9);

  // A second burst is a second transition.
  for (int i = 0; i < 4; ++i) {
    mon.on_completion("w0", true, sim::millis(30) + i);
  }
  EXPECT_EQ(mon.alerts(), 2u);
  ASSERT_EQ(burns.size(), 2u);

  const auto status = mon.status(sim::millis(30) + 5);
  ASSERT_EQ(status.size(), 1u);
  EXPECT_EQ(status[0].spec->name, "workers");
  EXPECT_EQ(status[0].completions, 12u);
  EXPECT_EQ(status[0].misses, 6u);
  EXPECT_TRUE(status[0].alerting);
  EXPECT_EQ(status[0].alerts, 2u);
}

TEST(SloMonitor, SanitizesDegenerateSpecs) {
  telemetry::SloSpec bad;
  bad.name = "bad";
  bad.miss_budget = 0.0;
  bad.window_ns = -5;
  telemetry::SloMonitor mon({bad});
  EXPECT_EQ(mon.spec(0).window_ns, sim::millis(100));
  EXPECT_GT(mon.spec(0).miss_budget, 0.0);
  // All-clean traffic never divides by zero or alerts.
  for (int i = 0; i < 100; ++i) mon.on_completion("x", false, 1000 + i);
  EXPECT_EQ(mon.alerts(), 0u);
}

// ---------- system wiring ----------

TEST(TelemetrySystem, DisabledByDefaultIsNullPointerAndRecordsNothing) {
  System sys;  // default options: telemetry off
  EXPECT_FALSE(sys.telemetry().enabled());
  EXPECT_EQ(sys.kernel().telemetry(), nullptr);
  sys.boot();
  sys.spawn("w", rt_worker(rt::Constraints::periodic(
                     sim::millis(1), sim::micros(200), sim::micros(40))), 1);
  sys.run_for(sim::millis(10));
  EXPECT_EQ(sys.telemetry().recorder().written(), 0u);
  EXPECT_EQ(sys.telemetry().metrics().cpu(1).passes, 0u);
  EXPECT_EQ(sys.telemetry().metrics().cpu(1).completions, 0u);
}

TEST(TelemetrySystem, BitIdenticalScheduleOnVsOff) {
  // Telemetry is a pure host-side observer: with the same seed — and SMIs
  // left on so the stochastic path is exercised too — every simulated
  // quantity must match exactly between a telemetry-on and -off run.
  struct Fingerprint {
    std::uint64_t events = 0;
    sim::Nanos now = 0;
    std::uint64_t smis = 0;
    std::int64_t stolen = 0;
    std::map<std::string, std::vector<std::uint64_t>> threads;
    std::vector<std::uint64_t> passes;
    std::vector<std::uint64_t> switches;
  };
  auto run = [](bool telemetry_on) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(4);
    o.seed = 1234;
    o.telemetry.enabled = telemetry_on;
    telemetry::SloSpec spec;
    spec.thread_match = "";  // match everything: exercise the SLO path too
    spec.name = "all";
    o.telemetry.slos.push_back(spec);
    System sys(std::move(o));
    sys.boot();
    sys.spawn("rt-a", rt_worker(rt::Constraints::periodic(
                          sim::millis(1), sim::micros(100), sim::micros(25))),
              1);
    sys.spawn("rt-b", rt_worker(rt::Constraints::periodic(
                          sim::millis(1), sim::micros(250), sim::micros(60))),
              2);
    sys.spawn("bg", std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 3);
    sys.run_for(sim::millis(50));
    if (telemetry_on) {
      EXPECT_GT(sys.telemetry().recorder().written(), 1000u);
    }
    Fingerprint fp;
    fp.events = sys.engine().events_executed();
    fp.now = sys.engine().now();
    fp.smis = sys.machine().smi().stats().count;
    fp.stolen = sys.machine().smi().stats().total_stolen_ns;
    for (const nk::Thread* t : sys.kernel().live_threads()) {
      fp.threads[t->name] = {t->rt.arrivals, t->rt.completions, t->rt.misses,
                            t->dispatches,
                            static_cast<std::uint64_t>(t->total_cpu_ns)};
    }
    for (std::uint32_t c = 0; c < 4; ++c) {
      fp.passes.push_back(sys.sched(c).stats().passes);
      fp.switches.push_back(sys.kernel().executor(c).overheads().switches);
    }
    return fp;
  };
  const Fingerprint off = run(false);
  const Fingerprint on = run(true);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.now, on.now);
  EXPECT_EQ(off.smis, on.smis);
  EXPECT_EQ(off.stolen, on.stolen);
  EXPECT_EQ(off.passes, on.passes);
  EXPECT_EQ(off.switches, on.switches);
  EXPECT_EQ(off.threads, on.threads);
  EXPECT_GT(off.threads.size(), 2u);
}

TEST(TelemetrySystem, CapturesSchedulerEventsOnAllCpus) {
  // fig06-style: one periodic sweep thread per CPU with admission off, the
  // infeasible slice guarantees misses; every CPU's ring must carry the
  // full event vocabulary of its scheduler.
  System::Options o = observed(4);
  o.sched.admission_enabled = false;
  System sys(std::move(o));
  sys.boot();
  const sim::Nanos period = sim::micros(50);
  for (std::uint32_t c = 0; c < 4; ++c) {
    sys.spawn("sweep" + std::to_string(c),
              rt_worker(rt::Constraints::periodic(sim::millis(1), period,
                                                  period * 9 / 10)),
              c);
  }
  sys.run_for(sim::millis(30));

  const telemetry::FlightRecorder& rec = sys.telemetry().recorder();
  EXPECT_GT(rec.written(), 0u);
  for (std::uint32_t c = 0; c < 4; ++c) {
    const telemetry::CpuMetrics& m = sys.telemetry().metrics().cpu(c);
    EXPECT_GT(m.passes, 100u) << "cpu " << c;
    EXPECT_GT(m.switches, 100u) << "cpu " << c;
    EXPECT_GT(m.timer_arms, 100u) << "cpu " << c;
    EXPECT_EQ(m.admits_ok, 1u) << "cpu " << c;
    EXPECT_GT(m.completions, 100u) << "cpu " << c;
    EXPECT_GT(m.misses, 0u) << "cpu " << c;
    EXPECT_GT(m.pass_span_ns.count(), 0u) << "cpu " << c;
    EXPECT_GT(m.pass_span_ns.mean(), 0.0) << "cpu " << c;
    EXPECT_GT(m.effective_capacity, 0.0) << "cpu " << c;
    // The retained window (most recent history) still shows the kinds.
    EXPECT_GT(rec.retained_kind_count(c, EventKind::kSwitch), 0u);
    EXPECT_GT(rec.retained_kind_count(c, EventKind::kTimerArm), 0u);
    EXPECT_GT(rec.retained_kind_count(c, EventKind::kDeadlineMiss), 0u);
    for (const Record& r : rec.snapshot(c)) {
      EXPECT_EQ(r.cpu, c) << "record leaked into the wrong ring";
    }
  }
  // The scheduler's own miss counters and the metrics registry agree.
  for (const nk::Thread* t : sys.kernel().live_threads()) {
    if (t->rt.arrivals == 0) continue;
    const telemetry::ThreadMetrics* tm = sys.telemetry().metrics().thread(
        static_cast<std::uint32_t>(t->id));
    ASSERT_NE(tm, nullptr);
    EXPECT_EQ(tm->misses, t->rt.misses) << t->name;
  }
}

TEST(TelemetrySystem, MigrationEventsLandInBothRings) {
  System sys(observed(4));
  sys.boot();
  nk::Thread* t = sys.spawn(
      "mover", rt_worker(rt::Constraints::periodic(
                   sim::millis(1), sim::millis(1), sim::micros(300))), 1);
  sys.run_for(sim::millis(10));
  ASSERT_TRUE(t->is_realtime());
  ASSERT_TRUE(sys.sched(1).request_migration(*t, 2));
  sys.run_for(sim::millis(20));
  ASSERT_EQ(t->cpu, 2u);

  const telemetry::FlightRecorder& rec = sys.telemetry().recorder();
  EXPECT_EQ(rec.kind_count(EventKind::kMigrateRequest), 1u);
  EXPECT_EQ(rec.kind_count(EventKind::kMigrateOut), 1u);
  EXPECT_EQ(rec.kind_count(EventKind::kMigrateIn), 1u);
  EXPECT_EQ(sys.telemetry().metrics().cpu(1).migrations_out, 1u);
  EXPECT_EQ(sys.telemetry().metrics().cpu(2).migrations_in, 1u);
  // The out record names the destination, the in record the source.
  bool saw_out = false;
  for (const Record& r : rec.snapshot(1)) {
    if (r.kind == EventKind::kMigrateOut) {
      saw_out = true;
      EXPECT_EQ(r.arg, 2);
      EXPECT_EQ(r.tid, static_cast<std::uint32_t>(t->id));
    }
  }
  bool saw_in = false;
  for (const Record& r : rec.snapshot(2)) {
    if (r.kind == EventKind::kMigrateIn) {
      saw_in = true;
      EXPECT_EQ(r.arg, 1);
    }
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST(TelemetrySloSystem, MissStormFiresAlertAndAuditInvariant) {
  System::Options o = observed(2);
  o.audit.enabled = true;  // accumulate mode; FORCE builds throw instead
  o.sched.admission_enabled = false;
  telemetry::SloSpec spec;
  spec.name = "sweep-slo";
  spec.thread_match = "sweep";
  spec.miss_budget = 0.001;
  spec.window_ns = sim::millis(5);
  o.telemetry.slos.push_back(spec);
  System sys(std::move(o));
  sys.boot();
  const sim::Nanos period = sim::micros(50);
  const std::uint64_t violations =
      run_counting(sys, audit::Invariant::kSloBudget, [&] {
        sys.spawn("sweep",
                  rt_worker(rt::Constraints::periodic(sim::millis(1), period,
                                                      period * 9 / 10)),
                  1);
        sys.run_for(sim::millis(40));
      });
  EXPECT_GE(violations, 1u);
  EXPECT_GE(sys.telemetry().slo().alerts(), 1u);
  EXPECT_GE(sys.telemetry().recorder().kind_count(EventKind::kSloAlert), 1u);
  const auto status = sys.telemetry().slo().status(sys.engine().now());
  ASSERT_EQ(status.size(), 1u);
  EXPECT_GT(status[0].misses, 0u);
  EXPECT_GE(status[0].burn_rate, 1.0);
}

TEST(TelemetrySystem, ReportCarriesTelemetrySections) {
  System::Options o = observed(2);
  telemetry::SloSpec spec;
  spec.name = "workers";
  spec.thread_match = "w";
  spec.miss_budget = 0.5;
  o.telemetry.slos.push_back(spec);
  System sys(std::move(o));
  sys.boot();
  sys.spawn("w0", rt_worker(rt::Constraints::periodic(
                      sim::millis(1), sim::micros(200), sim::micros(40))), 1);
  sys.run_for(sim::millis(20));
  std::ostringstream os;
  rt::print_report(sys, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("eff-cap"), std::string::npos);       // per-CPU column
  EXPECT_NE(s.find("slo-burn"), std::string::npos);      // per-thread column
  EXPECT_NE(s.find("telemetry:"), std::string::npos);    // recorder summary
  EXPECT_NE(s.find("workers"), std::string::npos);       // SLO status line

  // The dedicated printer stays silent when the subsystem is off.
  System quiet;
  quiet.boot();
  std::ostringstream qs;
  rt::print_telemetry_report(quiet, qs);
  EXPECT_TRUE(qs.str().empty());
}

// ---------- export ----------

TEST(TelemetryExport, ChromeTraceRoundTripsThroughParser) {
  System sys(observed(2));
  sys.boot();
  sys.spawn("w0", rt_worker(rt::Constraints::periodic(
                      sim::millis(1), sim::micros(200), sim::micros(40))), 1);
  sys.run_for(sim::millis(20));

  std::ostringstream os;
  telemetry::write_chrome_trace(os, sys.telemetry());
  const std::string json = os.str();
  const telemetry::ParsedTrace parsed = telemetry::parse_chrome_trace(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_FALSE(parsed.events.empty());

  std::size_t instants = 0, spans = 0, counters = 0;
  for (const telemetry::ParsedEvent& e : parsed.events) {
    EXPECT_GE(e.pid, 1);  // pid = cpu + 1: Perfetto dislikes pid 0
    EXPECT_LE(e.pid, 2);
    if (e.phase == "i") {
      ++instants;
      // µs timestamp and the exact-ns arg agree to rounding.
      EXPECT_NEAR(e.ts_us * 1000.0, static_cast<double>(e.t_ns), 1.0);
    } else if (e.phase == "X") {
      ++spans;
      EXPECT_GE(e.dur_us, 0.0);
    } else if (e.phase == "C") {
      ++counters;
      EXPECT_EQ(e.name, "effective-capacity");
    }
  }
  EXPECT_EQ(instants, sys.telemetry().recorder().snapshot_all().size());
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(counters, 2u);  // one capacity counter per CPU

  // Garbage inputs fail gracefully instead of crashing.
  EXPECT_FALSE(telemetry::parse_chrome_trace("{}").ok);
  EXPECT_FALSE(telemetry::parse_chrome_trace(
                   R"({"traceEvents": [{"name":"x")")
                   .ok);
}

TEST(TelemetryExport, SimTraceAgreesWithExporterAndReplayOracle) {
  // Satellite: the machine-level sim::Trace adapts into the same exporter,
  // and the events it carries are exactly the schedule the EDF replay
  // oracle validates — tying the new observability path to the existing
  // ground truth.
  System::Options o = observed(2);
  o.audit.enabled = true;
  System sys(std::move(o));
  sys.machine().trace().enable();
  sys.boot();
  nk::Thread* a = sys.spawn(
      "a", rt_worker(rt::Constraints::periodic(sim::millis(1), sim::micros(100),
                                               sim::micros(20))), 1);
  sys.run_for(sim::millis(30));

  // Oracle first: the trace describes a valid EDF schedule.
  const std::vector<audit::ReplayTask> tasks = {
      {a->id, a->constraints, a->rt.gamma}};
  const audit::ReplayConfig cfg = audit::replay_config_for(sys.machine().spec());
  audit::ReplayResult r = audit::replay_edf(sys.machine().trace(), 1, tasks,
                                            cfg, sys.engine().now());
  for (const auto& d : r.divergences) {
    ADD_FAILURE() << "t=" << d.time << "ns: " << d.detail;
  }
  EXPECT_TRUE(r.ok());

  // Adapt -> export -> parse: the switch stream survives byte-exact.
  const auto records = telemetry::from_sim_trace(sys.machine().trace(), 1);
  ASSERT_FALSE(records.empty());
  std::ostringstream os;
  telemetry::write_chrome_trace(os, records);
  const telemetry::ParsedTrace parsed = telemetry::parse_chrome_trace(os.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;

  const auto sim_switches = sys.machine().trace().filter(sim::TraceKind::kSwitch, 1);
  std::vector<const telemetry::ParsedEvent*> parsed_switches;
  for (const telemetry::ParsedEvent& e : parsed.events) {
    if (e.phase == "i" && e.name == "switch") parsed_switches.push_back(&e);
  }
  ASSERT_EQ(parsed_switches.size(), sim_switches.size());
  ASSERT_GT(parsed_switches.size(), 100u);
  for (std::size_t i = 0; i < sim_switches.size(); ++i) {
    EXPECT_EQ(parsed_switches[i]->t_ns, sim_switches[i].time);
    EXPECT_EQ(parsed_switches[i]->tid, sim_switches[i].value);
  }
  // The telemetry recorder's own switch stream and the machine trace agree
  // on volume: the two observers watched the same schedule.
  EXPECT_EQ(sys.telemetry().recorder().kind_count(EventKind::kSwitch),
            [&] {
              std::uint64_t n = 0;
              for (std::uint32_t c = 0; c < 2; ++c) {
                n += sys.machine().trace().filter(sim::TraceKind::kSwitch, c)
                         .size();
              }
              return n;
            }());
}

TEST(TelemetryExport, MetricsJsonIsWellFormed) {
  System::Options o = observed(2);
  telemetry::SloSpec spec;
  spec.name = "w-slo";
  spec.thread_match = "w";
  o.telemetry.slos.push_back(spec);
  System sys(std::move(o));
  sys.boot();
  sys.spawn("w\"quoted\"", rt_worker(rt::Constraints::periodic(
                               sim::millis(1), sim::micros(200),
                               sim::micros(40))), 1);
  sys.run_for(sim::millis(20));

  std::ostringstream os;
  telemetry::write_metrics_json(os, sys.telemetry(), sys.engine().now());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"hrt-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"cpus\":"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":"), std::string::npos);
  EXPECT_NE(json.find("\"slos\":"), std::string::npos);
  EXPECT_NE(json.find("\"recorder\":"), std::string::npos);
  EXPECT_NE(json.find("w\\\"quoted\\\""), std::string::npos);  // escaping
  // Structurally balanced (the exporter never emits braces in strings
  // except escaped quotes, which the check above just verified).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------- satellite: auto-derived group SLOs ----------

TEST(TelemetrySloSystem, GroupAdmissionDerivesSloSpec) {
  System::Options o = observed(4);
  o.telemetry.group_slo_budget = 0.02;
  o.telemetry.group_slo_windows = 50;
  System sys(std::move(o));
  sys.boot();
  const auto c = rt::Constraints::periodic(sim::millis(2), sim::millis(1),
                                           sim::micros(150));
  const auto members = sys.spawn_group_auto(
      "team", 3, c,
      [](std::uint32_t) { return std::make_unique<nk::BusyLoopBehavior>(
                              sim::micros(100)); });
  ASSERT_EQ(members.size(), 3u);
  EXPECT_FALSE(sys.telemetry().slo().has("group:team"))
      << "spec must appear at commit, not at spawn";
  sys.run_for(sim::millis(40));

  // The commit step of the group admission protocol derived one spec from
  // the admitted constraints: window = 50 periods, prefix "team.".
  ASSERT_TRUE(sys.telemetry().slo().has("group:team"));
  const auto status = sys.telemetry().slo().status(sys.engine().now());
  const telemetry::SloStatus* st = nullptr;
  for (const auto& s : status) {
    if (s.spec->name == "group:team") st = &s;
  }
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->spec->thread_match, "team.");
  EXPECT_DOUBLE_EQ(st->spec->miss_budget, 0.02);
  EXPECT_EQ(st->spec->window_ns, 50 * c.period);
  // The derived spec tracks the members' completions and stays quiet on a
  // feasible group.
  EXPECT_GT(st->completions, 50u);
  EXPECT_EQ(st->misses, 0u);
  EXPECT_FALSE(st->alerting);
  // Idempotent under churn: only one spec per group name ever exists.
  std::size_t team_specs = 0;
  for (const auto& s : status) {
    if (s.spec->name == "group:team") ++team_specs;
  }
  EXPECT_EQ(team_specs, 1u);
}

TEST(TelemetrySloSystem, GroupSloDerivationCanBeDisabled) {
  System::Options o = observed(4);
  o.telemetry.auto_group_slos = false;
  System sys(std::move(o));
  sys.boot();
  const auto c = rt::Constraints::periodic(sim::millis(2), sim::millis(1),
                                           sim::micros(150));
  sys.spawn_group_auto("quiet", 2, c, [](std::uint32_t) {
    return std::make_unique<nk::BusyLoopBehavior>(sim::micros(100));
  });
  sys.run_for(sim::millis(20));
  EXPECT_FALSE(sys.telemetry().slo().has("group:quiet"));
}

}  // namespace
}  // namespace hrt
