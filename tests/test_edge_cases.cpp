// Edge cases across the stack: engine pathologies, scheduler class
// transitions, sporadic deadline misses, RT thread exit cleanup, interrupt
// thread overload, APIC re-arm patterns, machine-spec sanity.
#include <gtest/gtest.h>

#include "nautilus/interrupt_thread.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options quiet(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  return o;
}

// ---------- Engine pathologies ----------

TEST(EngineEdge, CancelFromInsideACallback) {
  sim::Engine eng;
  bool second_ran = false;
  sim::EventId second = eng.schedule_at(20, [&] { second_ran = true; });
  eng.schedule_at(10, [&] { eng.cancel(second); });
  eng.run_all();
  EXPECT_FALSE(second_ran);
}

TEST(EngineEdge, ScheduleAtCurrentTimeFromCallback) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(10, [&] {
    order.push_back(1);
    eng.schedule_at(10, [&] { order.push_back(2); });  // same timestamp
  });
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), 10);
}

TEST(EngineEdge, ManyCancellationsDoNotLeak) {
  sim::Engine eng;
  for (int round = 0; round < 100; ++round) {
    std::vector<sim::EventId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(eng.schedule_at(eng.now() + 10 + i, [] {}));
    }
    for (auto id : ids) eng.cancel(id);
    eng.run_until(eng.now() + 200);
  }
  EXPECT_EQ(eng.events_executed(), 0u);
  EXPECT_TRUE(eng.empty());
}

// ---------- Scheduler class transitions ----------

TEST(SchedEdge, PeriodicToPeriodicReAdmissionReplacesUtilization) {
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(200), sim::micros(100), sim::micros(60)));
        }
        if (step == 30) {
          // Tighten to 20%: the old 60% must be released, not leaked.
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(200), sim::micros(100), sim::micros(20)));
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t = sys.spawn("morph", std::move(b), 1, 10);
  sys.run_for(sim::millis(20));
  EXPECT_TRUE(t->last_admit_ok);
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.2, 1e-9);
  // Another 50% thread now fits (0.2 + 0.5 < 0.79).
  auto b2 = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(200), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(10));
      });
  nk::Thread* t2 = sys.spawn("second", std::move(b2), 1, 10);
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(t2->last_admit_ok);
}

TEST(SchedEdge, RtThreadExitWhilePendingCleansQueues) {
  System sys(quiet());
  sys.boot();
  // Large phase: the thread is admitted and sits pending, then exits
  // before its first arrival (behavior exits right after admission).
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(50), sim::millis(1), sim::micros(200)));
        }
        return nk::Action::exit();  // runs at first arrival
      });
  nk::Thread* t = sys.spawn("brief", std::move(b), 1, 10);
  sys.run_for(sim::millis(60));
  EXPECT_EQ(t->state, nk::Thread::State::kPooled);
  EXPECT_EQ(sys.sched(1).pending_count(), 0u);
  EXPECT_NEAR(sys.sched(1).admitted_utilization(), 0.0, 1e-9);
}

TEST(SchedEdge, SporadicDeadlineMissIsRecorded) {
  System::Options o = quiet();
  o.sched.admission_enabled = false;  // density far above the reservation
  System sys(std::move(o));
  sys.boot();
  // 200 us of work due 250 us after admission is feasible in isolation —
  // but a 100 us SMI lands mid-service and cannot be absorbed.
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::sporadic(
              sim::micros(50), sim::micros(200), sim::micros(250)));
        }
        return nk::Action::compute(sim::micros(50));
      });
  nk::Thread* t = sys.spawn("late", std::move(b), 1, 10);
  sys.run_for(sim::micros(200));
  sys.machine().smi().force(sim::micros(100));
  sys.run_for(sim::millis(5));
  EXPECT_EQ(t->rt.arrivals, 1u);
  EXPECT_EQ(t->rt.misses, 1u);
  // Section 3.6 semantics: the frozen window is charged against the budget
  // (software cannot tell missing time from execution), so the *recorded*
  // lateness is only the overshoot past the deadline at budget exhaustion —
  // small — while the application actually lost the whole SMI of real work.
  EXPECT_GT(t->rt.miss_ns.mean(), 0.0);
  EXPECT_LT(t->rt.miss_ns.mean(), 30e3);
  // Tail behavior still applies: the thread continues as aperiodic.
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
}

TEST(SchedEdge, ManyThreadsOnOneCpuStayBounded) {
  System::Options o = quiet();
  o.sched.aperiodic_quantum = sim::micros(500);
  System sys(std::move(o));
  sys.boot();
  std::vector<nk::Thread*> threads;
  for (int i = 0; i < 40; ++i) {
    threads.push_back(sys.spawn(
        "w" + std::to_string(i),
        std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1));
  }
  sys.run_for(sim::millis(100));
  sys.sync_accounting();
  // Everyone makes progress under RR.
  for (nk::Thread* t : threads) {
    EXPECT_GT(t->total_cpu_ns, sim::micros(500)) << t->name;
  }
  // Pass cost grew with queue length but stayed bounded.
  const auto& oh = sys.kernel().executor(1).overheads();
  EXPECT_LT(oh.pass.mean(), 4000.0);
}

TEST(SchedEdge, ThreadLimitEnforced) {
  System::Options o = quiet();
  o.sched.max_threads = 4;
  System sys(std::move(o));
  sys.boot();
  // Capacity 4 bounds the *queued* threads; the running one is not queued,
  // so the fifth spawn fits and the sixth overflows.
  for (int i = 0; i < 5; ++i) {
    sys.spawn("w" + std::to_string(i),
              std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1);
  }
  EXPECT_THROW(
      sys.spawn("overflow",
                std::make_unique<nk::BusyLoopBehavior>(sim::micros(50)), 1),
      std::runtime_error);
}

// ---------- Interrupt thread overload ----------

TEST(InterruptThreadEdge, BacklogGrowsWhenBottomHalfCannotKeepUp) {
  System sys(quiet());
  auto& dev = sys.machine().add_device(0x48, hw::Device::Arrival::kPeriodic,
                                       sim::micros(50));
  sys.boot();
  // Bottom half costs 100 us per interrupt but they arrive every 50 us.
  nk::InterruptThread it(sys.kernel(), 0, 130'000);
  it.attach_vector(0x48, 800);
  sys.kernel().apply_interrupt_partition();
  dev.start();
  sys.run_for(sim::millis(20));
  EXPECT_GT(it.backlog(), 50u);  // overload is visible, not silent
  dev.stop();
  sys.run_for(sim::millis(60));
  EXPECT_EQ(it.backlog(), 0u);  // and drains once the storm stops
}

// ---------- Machine spec sanity ----------

TEST(SpecEdge, R415FasterThanPhiInEveryPathLength) {
  const auto phi = hw::MachineSpec::phi();
  const auto r = hw::MachineSpec::r415();
  EXPECT_LT(r.cost.irq_dispatch, phi.cost.irq_dispatch);
  EXPECT_LT(r.cost.sched_pass_base, phi.cost.sched_pass_base);
  EXPECT_LT(r.cost.context_switch, phi.cost.context_switch);
  EXPECT_LT(r.cost.sched_other, phi.cost.sched_other);
  EXPECT_LT(r.cost.atomic_rmw, phi.cost.atomic_rmw);
  EXPECT_GT(r.freq.hz(), phi.freq.hz());
  EXPECT_LT(r.num_cpus, phi.num_cpus);
}

TEST(SpecEdge, PhiSmallKeepsCostsIdentical) {
  const auto full = hw::MachineSpec::phi();
  const auto small = hw::MachineSpec::phi_small(4);
  EXPECT_EQ(small.num_cpus, 4u);
  EXPECT_EQ(small.cost.sched_pass_base, full.cost.sched_pass_base);
  EXPECT_EQ(small.freq.hz(), full.freq.hz());
}

// ---------- NUMA placement ----------

TEST(NumaEdge, ThreadStateAllocatedInOwningZone) {
  System::Options o = quiet(8);
  o.spec.num_cpus = 8;
  System sys(std::move(o));
  // Configure 2 zones via the kernel options path: System does not expose
  // numa_zones directly, so verify the default single-zone case here and
  // the multi-zone case through a raw kernel below.
  sys.boot();
  nk::Thread* t = sys.spawn(
      "z", std::make_unique<nk::BusyLoopBehavior>(sim::micros(10)), 3);
  EXPECT_NE(t->state_addr, 0u);
  EXPECT_EQ(t->state_zone, 0u);
  EXPECT_GT(sys.kernel().zone_arena(0).bytes_allocated(), 0u);
}

TEST(NumaEdge, TwoZoneKernelSplitsAllocations) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(8);
  spec.smi.enabled = false;
  hw::Machine m(spec, 42);
  nk::Kernel::Options ko;
  ko.scheduler_factory =
      rt::make_scheduler_factory(rt::LocalScheduler::Config{});
  ko.numa_zones = 2;
  nk::Kernel k(m, std::move(ko));
  k.boot();
  nk::Thread* low = k.create_thread(
      "low", std::make_unique<nk::BusyLoopBehavior>(sim::micros(10)), 1);
  nk::Thread* high = k.create_thread(
      "high", std::make_unique<nk::BusyLoopBehavior>(sim::micros(10)), 6);
  EXPECT_EQ(low->state_zone, 0u);
  EXPECT_EQ(high->state_zone, 1u);
  EXPECT_NE(low->state_addr, high->state_addr);
  // Arena bases are disjoint.
  EXPECT_NE(k.zone_arena(0).base(), k.zone_arena(1).base());
}

// ---------- Sleep precision ----------

TEST(SleepEdge, SleepWakesWithinTimerResolution) {
  System sys(quiet());
  sys.boot();
  std::vector<sim::Nanos> overshoot;
  auto b = std::make_unique<nk::FnBehavior>(
      [&overshoot, asleep_at = sim::Nanos{0}](nk::ThreadCtx& c,
                                              std::uint64_t step) mutable {
        if (step >= 40) return nk::Action::exit();
        if (step % 2 == 0) {
          asleep_at = c.kernel.machine().engine().now();
          return nk::Action::sleep(sim::micros(37));
        }
        overshoot.push_back(c.kernel.machine().engine().now() - asleep_at -
                            sim::micros(37));
        return nk::Action::compute(sim::micros(5));
      });
  sys.spawn("napper", std::move(b), 1);
  sys.run_for(sim::millis(10));
  ASSERT_GE(overshoot.size(), 15u);
  for (sim::Nanos ov : overshoot) {
    EXPECT_GE(ov, -sim::micros(1));      // never woken meaningfully early
    EXPECT_LT(ov, sim::micros(15));      // handler + tick bound the lateness
  }
}

}  // namespace
}  // namespace hrt
