// CpuExecutor behavior: action execution and preemption accounting, spin
// semantics, atomic non-preemptibility, sleep/yield/exit paths, SMI freeze
// handling, run-span budget charging, device handlers, livelock guard.
#include <gtest/gtest.h>

#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options quiet(std::uint32_t cpus = 4) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  return o;
}

TEST(Executor, ComputeChargesExactSimulatedTime) {
  System sys(quiet());
  sys.boot();
  sim::Nanos done_at = -1;
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(100),
                                    [&](nk::ThreadCtx& c) {
                                      done_at =
                                          c.kernel.machine().engine().now();
                                    })}),
            1);
  const sim::Nanos t0 = sys.engine().now();
  sys.run_for(sim::millis(2));
  // Dispatch overhead (kick handler) precedes the compute; bound it.
  EXPECT_GT(done_at, t0 + sim::micros(100));
  EXPECT_LT(done_at, t0 + sim::micros(100) + sim::micros(20));
}

TEST(Executor, ActionsRunInSequenceWithSideEffects) {
  System sys(quiet());
  sys.boot();
  std::vector<int> order;
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(10),
                                    [&](nk::ThreadCtx&) { order.push_back(1); }),
                nk::Action::compute(0,
                                    [&](nk::ThreadCtx&) { order.push_back(2); }),
                nk::Action::compute(sim::micros(5),
                                    [&](nk::ThreadCtx&) { order.push_back(3); }),
            }),
            1);
  sys.run_for(sim::millis(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Executor, PreemptionPreservesTotalComputeTime) {
  // A long compute interleaved with a periodic RT thread still takes
  // exactly its work time of CPU, spread over more wall time.
  System sys(quiet());
  sys.boot();
  sim::Nanos done_at = -1;
  nk::Thread* bg = sys.spawn(
      "bg",
      std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
          nk::Action::compute(sim::millis(2),
                              [&](nk::ThreadCtx& c) {
                                done_at = c.kernel.machine().engine().now();
                              })}),
      1);
  auto rt_b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(20));
      });
  // Higher aperiodic priority so the admission request runs promptly
  // instead of waiting out the 10 Hz round-robin quantum.
  sys.spawn("rt", std::move(rt_b), 1, /*priority=*/10);
  sys.run_for(sim::millis(10));
  ASSERT_GT(done_at, 0);
  // The bg thread got ~50% of the CPU: 2 ms of work takes ~4+ ms of wall.
  EXPECT_GT(done_at, sim::millis(3));
  EXPECT_NEAR(static_cast<double>(bg->total_cpu_ns), 2e6, 1e5);
}

TEST(Executor, SpinWaitBurnsCpuUntilFlagSet) {
  System sys(quiet());
  sys.boot();
  nk::WaitFlag flag(sys.kernel());
  sim::Nanos woke_at = -1;
  nk::Thread* spinner = sys.spawn(
      "spin",
      std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
          nk::Action::spin_until(&flag,
                                 [&](nk::ThreadCtx& c) {
                                   woke_at = c.kernel.machine().engine().now();
                                 })}),
      1);
  sys.run_for(sim::millis(1));
  EXPECT_EQ(woke_at, -1);
  EXPECT_EQ(spinner->state, nk::Thread::State::kRunning);  // spinning = on cpu
  const sim::Nanos set_time = sys.engine().now();
  flag.set();
  sys.run_for(sim::millis(1));
  ASSERT_GT(woke_at, 0);
  // Observed after the spin-notice latency, promptly.
  EXPECT_LT(woke_at - set_time, sim::micros(1));
  // Spinning charged as CPU time.
  EXPECT_GT(spinner->total_cpu_ns, sim::micros(900));
}

TEST(Executor, FlagSetBeforeSpinCompletesImmediately) {
  System sys(quiet());
  sys.boot();
  nk::WaitFlag flag(sys.kernel());
  flag.set();
  bool done = false;
  sys.spawn("spin",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::spin_until(
                    &flag, [&](nk::ThreadCtx&) { done = true; })}),
            1);
  sys.run_for(sim::millis(1));
  EXPECT_TRUE(done);
}

TEST(Executor, DescheduledSpinnerObservesFlagOnRedispatch) {
  // Spinner on CPU 1 shares it with an RT thread; the flag is set while the
  // spinner is descheduled (RT thread running); it completes after being
  // re-dispatched.
  System sys(quiet());
  sys.boot();
  nk::WaitFlag flag(sys.kernel());
  bool done = false;
  sys.spawn("spin",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::spin_until(
                    &flag, [&](nk::ThreadCtx&) { done = true; })}),
            1);
  auto rt_b = std::make_unique<nk::FnBehavior>(
      [&flag](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(200), sim::micros(100), sim::micros(60)));
        }
        if (step == 5) {
          // Set the flag from within the RT thread's slice, while the
          // spinner is certainly descheduled.
          return nk::Action::compute(sim::micros(10),
                                     [&flag](nk::ThreadCtx&) { flag.set(); });
        }
        return nk::Action::compute(sim::micros(10));
      });
  sys.spawn("rt", std::move(rt_b), 1, /*priority=*/10);
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(done);
}

TEST(Executor, AtomicActionIsNotPreempted) {
  // An atomic op spanning a timer-interrupt instant delays the interrupt
  // rather than being split.
  System sys(quiet());
  sys.boot();
  nk::SeqResource res;
  std::vector<sim::Nanos> boundaries;
  auto b = std::make_unique<nk::FnBehavior>(
      [&](nk::ThreadCtx& c, std::uint64_t step) {
        boundaries.push_back(c.kernel.machine().engine().now());
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::atomic(&res, sim::micros(40));
      });
  sys.spawn("t", std::move(b), 1);
  sys.run_for(sim::millis(2));
  // Each atomic hold completes in one piece: consecutive behavior
  // boundaries within a slice are exactly one hold apart (with jitter), and
  // none is split by the slice-exhaustion interrupt.
  ASSERT_GT(boundaries.size(), 4u);
  EXPECT_GT(res.ops, 3u);
}

TEST(Executor, SleepBlocksAndWakes) {
  System sys(quiet());
  sys.boot();
  sim::Nanos woke = -1;
  sim::Nanos slept = -1;
  auto b = std::make_unique<nk::FnBehavior>(
      [&](nk::ThreadCtx& c, std::uint64_t step) {
        if (step == 0) {
          slept = c.kernel.machine().engine().now();
          return nk::Action::sleep(sim::micros(500));
        }
        woke = c.kernel.machine().engine().now();
        return nk::Action::exit();
      });
  nk::Thread* t = sys.spawn("sleepy", std::move(b), 1);
  sys.run_for(sim::millis(2));
  ASSERT_GE(woke, 0);
  EXPECT_GE(woke - slept, sim::micros(500));
  EXPECT_LT(woke - slept, sim::micros(520));
  EXPECT_EQ(t->state, nk::Thread::State::kPooled);  // exited and reaped
}

TEST(Executor, ExitReapsIntoThreadPool) {
  System sys(quiet());
  sys.boot();
  const std::size_t created_before = sys.kernel().threads_created();
  sys.spawn("a",
            std::make_unique<nk::SequenceBehavior>(
                std::vector<nk::Action>{nk::Action::exit()}),
            1);
  sys.run_for(sim::millis(1));
  EXPECT_EQ(sys.kernel().pool_size(), 1u);
  sys.spawn("b",
            std::make_unique<nk::SequenceBehavior>(
                std::vector<nk::Action>{nk::Action::exit()}),
            1);
  sys.run_for(sim::millis(1));
  // Thread object reused, not newly created.
  EXPECT_EQ(sys.kernel().threads_created(), created_before + 1);
  EXPECT_EQ(sys.kernel().pool_reuses(), 1u);
}

TEST(Executor, YieldRotatesEqualPriorityThreads) {
  System sys(quiet());
  sys.boot();
  std::vector<char> order;
  auto mk = [&order](char who) {
    return std::make_unique<nk::FnBehavior>(
        [&order, who](nk::ThreadCtx&, std::uint64_t step) {
          if (step >= 6) return nk::Action::exit();
          return nk::Action::compute(
              sim::micros(10),
              [&order, who](nk::ThreadCtx&) { order.push_back(who); });
        });
  };
  // FnBehavior computes then yields via a zero-cost action: interleave by
  // yielding explicitly.
  auto mk_yield = [&order](char who) {
    return std::make_unique<nk::FnBehavior>(
        [&order, who](nk::ThreadCtx&, std::uint64_t step) {
          if (step >= 12) return nk::Action::exit();
          if (step % 2 == 0) {
            return nk::Action::compute(
                sim::micros(10),
                [&order, who](nk::ThreadCtx&) { order.push_back(who); });
          }
          return nk::Action::yield();
        });
  };
  sys.spawn("a", mk_yield('a'), 1);
  sys.spawn("b", mk_yield('b'), 1);
  (void)mk;
  sys.run_for(sim::millis(2));
  // Both made progress interleaved: the sequence alternates.
  ASSERT_GE(order.size(), 8u);
  int alternations = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] != order[i - 1]) ++alternations;
  }
  EXPECT_GE(alternations, static_cast<int>(order.size()) / 2);
}

TEST(Executor, SmiFreezeExtendsComputeWallTime) {
  System sys(quiet());
  sys.boot();
  sim::Nanos done_at = -1;
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(100),
                                    [&](nk::ThreadCtx& c) {
                                      done_at =
                                          c.kernel.machine().engine().now();
                                    })}),
            1);
  // Let the compute begin, then freeze the world for 50 us mid-flight.
  sys.run_for(sim::micros(30));
  sys.machine().smi().force(sim::micros(50));
  sys.run_for(sim::millis(2));
  ASSERT_GT(done_at, 0);
  EXPECT_GE(done_at, sim::micros(100 + 50));
  EXPECT_LT(done_at, sim::micros(100 + 50 + 30));
}

TEST(Executor, SmiDuringHandlerShiftsHandlerEnd) {
  System sys(quiet());
  sys.boot();
  // Schedule an SMI to land inside the thread-creation kick handler.
  bool ran = false;
  sys.engine().schedule_at(sys.engine().now() + 1000, [&] {
    sys.machine().smi().force(sim::micros(20));
  });
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(1),
                                    [&](nk::ThreadCtx&) { ran = true; })}),
            1);
  sys.run_for(sim::millis(1));
  EXPECT_TRUE(ran);
}

TEST(Executor, BudgetChargedIncludesStolenTime) {
  // Section 3.6: software cannot distinguish missing time from execution,
  // so SMI-stolen time is charged against a thread's slice.
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::millis(1), sim::micros(500)));
        }
        return nk::Action::compute(sim::micros(100));
      });
  nk::Thread* t = sys.spawn("rt", std::move(b), 1);
  sys.run_for(sim::millis(1));  // now mid-first-slice
  const sim::Nanos cpu_before = t->total_cpu_ns;
  sys.machine().smi().force(sim::micros(60));
  sys.run_for(sim::millis(20));
  EXPECT_GT(t->total_cpu_ns, cpu_before);
  // The thread still completes arrivals; it just observed less real work.
  EXPECT_GT(t->rt.completions, 10u);
}

TEST(Executor, DeviceHandlerRunsCallbackAndResumesThread) {
  System sys(quiet());
  int irqs = 0;
  sys.kernel().register_device_handler(0x40, 4000, [&] { ++irqs; });
  auto& dev = sys.machine().add_device(0x40, hw::Device::Arrival::kPeriodic,
                                       sim::micros(100));
  sys.boot();
  sys.kernel().apply_interrupt_partition();
  dev.start();
  sim::Nanos done_at = -1;
  sys.spawn("t",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::millis(1),
                                    [&](nk::ThreadCtx& c) {
                                      done_at =
                                          c.kernel.machine().engine().now();
                                    })}),
            0);  // on the interrupt-laden CPU
  sys.run_for(sim::millis(5));
  EXPECT_GT(irqs, 30);
  ASSERT_GT(done_at, 0);
  // The compute finished but was delayed by handler time.
  EXPECT_GT(done_at, sim::millis(1));
}

TEST(Executor, ZeroWidthActionLoopDetected) {
  System sys(quiet());
  sys.boot();
  // A behavior that livelocks: infinite zero-cost computes.
  sys.spawn("bad",
            std::make_unique<nk::FnBehavior>(
                [](nk::ThreadCtx&, std::uint64_t) {
                  return nk::Action::compute(0);
                }),
            1);
  EXPECT_THROW(sys.run_for(sim::millis(1)), std::logic_error);
}

TEST(Executor, OverheadStatsAccumulate) {
  System sys(quiet());
  sys.boot();
  auto b = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::micros(100), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(25));
      });
  sys.spawn("rt", std::move(b), 1);
  sys.run_for(sim::millis(10));
  const auto& oh = sys.kernel().executor(1).overheads();
  EXPECT_GT(oh.passes, 150u);
  EXPECT_GT(oh.switches, 150u);
  // Means match the spec's cost model (jitter averages out).
  const auto& cost = sys.machine().spec().cost;
  EXPECT_NEAR(oh.irq.mean(), static_cast<double>(cost.irq_dispatch),
              0.1 * static_cast<double>(cost.irq_dispatch));
  EXPECT_NEAR(oh.pass.mean(), static_cast<double>(cost.sched_pass_base),
              0.15 * static_cast<double>(cost.sched_pass_base));
}

}  // namespace
}  // namespace hrt
