// Admission-control analyses: EDF utilization test, Liu-Layland RM bound,
// exact response-time analysis, and the hyperperiod-simulation prototype —
// including cross-validation properties between them.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rt/admission.hpp"
#include "sim/rng.hpp"

namespace hrt::rt {
namespace {

using sim::micros;

std::vector<PeriodicTask> set_of(
    std::initializer_list<std::pair<sim::Nanos, sim::Nanos>> ts) {
  std::vector<PeriodicTask> out;
  for (const auto& [tau, sigma] : ts) out.push_back({tau, sigma, 0});
  return out;
}

TEST(Utilization, SumsSliceOverPeriod) {
  auto s = set_of({{micros(100), micros(25)}, {micros(200), micros(50)}});
  EXPECT_DOUBLE_EQ(total_utilization(s), 0.5);
}

// ---------- EDF ----------

TEST(Edf, AdmitsUpToAvailable) {
  auto s = set_of({{micros(100), micros(40)}, {micros(200), micros(78)}});
  EXPECT_TRUE(edf_admissible(s, 0.79));   // U = 0.79
  EXPECT_FALSE(edf_admissible(s, 0.78));
}

TEST(Edf, EmptySetAlwaysAdmissible) {
  EXPECT_TRUE(edf_admissible({}, 0.0));
}

TEST(Edf, MalformedTaskRejected) {
  EXPECT_FALSE(edf_admissible(set_of({{micros(100), micros(150)}}), 1.0));
  EXPECT_FALSE(edf_admissible({{0, 10, 0}}, 1.0));
  EXPECT_FALSE(edf_admissible({{100, 0, 0}}, 1.0));
}

TEST(Edf, ExactAtFullUtilization) {
  // EDF is optimal: U == 1.0 is schedulable on a full CPU.
  auto s = set_of({{micros(100), micros(50)}, {micros(200), micros(100)}});
  EXPECT_TRUE(edf_admissible(s, 1.0));
}

// ---------- RM Liu-Layland ----------

TEST(RmLl, SingleTaskBoundIsFullCpu) {
  // n=1: bound = 1.0.
  EXPECT_TRUE(rm_ll_admissible(set_of({{micros(100), micros(99)}}), 1.0));
}

TEST(RmLl, TwoTaskBound) {
  // n=2: bound = 2(sqrt(2)-1) ~ 0.828.
  auto under = set_of({{micros(100), micros(41)}, {micros(200), micros(82)}});
  EXPECT_TRUE(rm_ll_admissible(under, 1.0));  // U = 0.82
  auto over = set_of({{micros(100), micros(42)}, {micros(200), micros(84)}});
  EXPECT_FALSE(rm_ll_admissible(over, 1.0));  // U = 0.84
}

TEST(RmLl, MoreConservativeThanEdf) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<PeriodicTask> s;
    const int n = static_cast<int>(rng.uniform(1, 6));
    for (int i = 0; i < n; ++i) {
      const sim::Nanos tau = micros(rng.uniform(50, 2000));
      const sim::Nanos sigma = std::max<sim::Nanos>(1, tau * rng.uniform(1, 40) / 100);
      s.push_back({tau, sigma, 0});
    }
    if (rm_ll_admissible(s, 0.79)) {
      EXPECT_TRUE(edf_admissible(s, 0.79))
          << "LL admitted a set EDF rejected";
    }
  }
}

// ---------- RM response-time analysis ----------

TEST(RmRta, ClassicFeasibleExample) {
  // Liu & Layland's canonical example: C=(20,40,100), T=(100,150,350).
  std::vector<PeriodicTask> s = {{micros(100), micros(20), 0},
                                 {micros(150), micros(40), 0},
                                 {micros(350), micros(100), 0}};
  EXPECT_TRUE(rm_rta_admissible(s, 1.0));
}

TEST(RmRta, DetectsInfeasibleLowPriorityTask) {
  std::vector<PeriodicTask> s = {{micros(100), micros(60), 0},
                                 {micros(150), micros(70), 0}};
  // Response time of task 2: 70 + 2*60 = 190 > 150.
  EXPECT_FALSE(rm_rta_admissible(s, 1.0));
}

TEST(RmRta, AcceptsWhereLlBoundIsTooConservative) {
  // Harmonic periods are RM-schedulable up to U = 1.0, beyond the LL bound.
  auto s = set_of({{micros(100), micros(50)}, {micros(200), micros(100)}});
  EXPECT_FALSE(rm_ll_admissible(s, 1.0));  // U = 1.0 > 0.828
  EXPECT_TRUE(rm_rta_admissible(s, 1.0));
}

TEST(RmRta, PartialAvailabilityInflatesDemand) {
  auto s = set_of({{micros(100), micros(40)}});
  EXPECT_TRUE(rm_rta_admissible(s, 0.5));   // 40/0.5 = 80 <= 100
  EXPECT_FALSE(rm_rta_admissible(s, 0.3));  // 40/0.3 = 134 > 100
}

TEST(RmRta, LlImpliesRta) {
  sim::Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<PeriodicTask> s;
    const int n = static_cast<int>(rng.uniform(1, 5));
    for (int i = 0; i < n; ++i) {
      const sim::Nanos tau = micros(rng.uniform(100, 1000));
      const sim::Nanos sigma = std::max<sim::Nanos>(1, tau * rng.uniform(1, 30) / 100);
      s.push_back({tau, sigma, 0});
    }
    if (rm_ll_admissible(s, 1.0)) {
      EXPECT_TRUE(rm_rta_admissible(s, 1.0))
          << "LL (sufficient) admitted what exact RTA rejected";
    }
  }
}

// ---------- Simulation-based admission ----------

TEST(SimAdmission, FeasibleSetPasses) {
  std::vector<PeriodicTask> s = {{micros(100), micros(30), 0},
                                 {micros(200), micros(60), 0}};
  SimAdmissionConfig cfg;
  auto r = simulate_edf_admission(s, cfg);
  EXPECT_TRUE(r.admissible);
  EXPECT_EQ(r.hyperperiod, micros(200));
  EXPECT_EQ(r.missed_deadlines, 0u);
}

TEST(SimAdmission, OverloadedSetFails) {
  std::vector<PeriodicTask> s = {{micros(100), micros(70), 0},
                                 {micros(200), micros(80), 0}};  // U = 1.1
  SimAdmissionConfig cfg;
  auto r = simulate_edf_admission(s, cfg);
  EXPECT_FALSE(r.admissible);
  EXPECT_GT(r.missed_deadlines, 0u);
}

TEST(SimAdmission, OverheadTipsTightSets) {
  // U = 0.95 is fine with zero overhead but not once each slice pays two
  // 5 us scheduler invocations.
  std::vector<PeriodicTask> s = {{micros(100), micros(95), 0}};
  SimAdmissionConfig free_cfg;
  EXPECT_TRUE(simulate_edf_admission(s, free_cfg).admissible);
  SimAdmissionConfig costly;
  costly.per_invocation_overhead = micros(5);
  EXPECT_FALSE(simulate_edf_admission(s, costly).admissible);
}

TEST(SimAdmission, HorizonGuard) {
  // Co-prime periods in ns make the hyperperiod astronomically large.
  std::vector<PeriodicTask> s = {{1000003, 100, 0}, {999983, 100, 0}};
  SimAdmissionConfig cfg;
  cfg.max_horizon = sim::millis(100);
  auto r = simulate_edf_admission(s, cfg);
  EXPECT_TRUE(r.horizon_exceeded);
  EXPECT_FALSE(r.admissible);
}

TEST(SimAdmission, PhasesRespected) {
  std::vector<PeriodicTask> s = {{micros(100), micros(50), micros(25)},
                                 {micros(100), micros(50), micros(75)}};
  SimAdmissionConfig cfg;
  EXPECT_TRUE(simulate_edf_admission(s, cfg).admissible);
}

TEST(SimAdmission, AgreesWithEdfUtilizationTest) {
  // Without overhead, the simulation and the utilization test agree (EDF
  // optimality), on harmonic sets where simulation horizons stay small.
  sim::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<PeriodicTask> s;
    const int n = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      const sim::Nanos tau = micros(100) << rng.uniform(0, 3);
      const sim::Nanos sigma = std::max<sim::Nanos>(1, tau * rng.uniform(5, 60) / 100);
      s.push_back({tau, sigma, 0});
    }
    SimAdmissionConfig cfg;
    const bool sim_ok = simulate_edf_admission(s, cfg).admissible;
    const bool edf_ok = edf_admissible(s, 1.0);
    EXPECT_EQ(sim_ok, edf_ok) << "trial " << trial;
  }
}

// ---------- Boundary / edge cases ----------

TEST(RmRta, SliceInflationToExactlyThePeriodIsAdmissible) {
  // available = 0.4 inflates the 40 us demand to exactly the 100 us period:
  // response time equals the deadline, which RTA must still admit.
  auto s = set_of({{micros(100), micros(40)}});
  EXPECT_TRUE(rm_rta_admissible(s, 0.4));
  EXPECT_FALSE(rm_rta_admissible(s, 0.39));
}

TEST(RmRta, PartialAvailabilityWithInterference) {
  // Inflated demands: C = (40, 80) at 0.5 — the low-priority response time
  // converges at 160 <= 200.  At 0.35 the demand no longer fits.
  auto s = set_of({{micros(100), micros(20)}, {micros(200), micros(40)}});
  EXPECT_TRUE(rm_rta_admissible(s, 0.5));
  EXPECT_FALSE(rm_rta_admissible(s, 0.35));
}

TEST(SimAdmission, NonZeroPhasesNearTheHorizonStillSimulate) {
  // First arrivals land just before the horizon guard would trip: the
  // simulated window is max_phase + 2 * hyperperiod, not just a hyperperiod
  // from zero, so late phases must not starve the check.
  std::vector<PeriodicTask> s = {{micros(100), micros(60), micros(900)},
                                 {micros(200), micros(80), micros(870)}};
  SimAdmissionConfig cfg;
  cfg.max_horizon = sim::millis(1);
  auto r = simulate_edf_admission(s, cfg);
  EXPECT_FALSE(r.horizon_exceeded);
  EXPECT_EQ(r.hyperperiod, micros(200));
  EXPECT_TRUE(r.admissible);  // U = 1.0 exactly; EDF optimality
}

TEST(SimAdmission, NonZeroPhasesDoNotMaskOverload) {
  std::vector<PeriodicTask> s = {{micros(100), micros(90), micros(900)},
                                 {micros(200), micros(80), micros(870)}};
  SimAdmissionConfig cfg;
  auto r = simulate_edf_admission(s, cfg);
  EXPECT_FALSE(r.admissible);  // U = 1.3
  EXPECT_GT(r.missed_deadlines, 0u);
}

TEST(Edf, BoundaryUtilizationAgainstPartialAvailability) {
  // Exactly at the available fraction is admissible; one part in 10^4
  // over is not (the epsilon guard is far smaller than that).
  EXPECT_TRUE(edf_admissible(set_of({{micros(100), micros(79)}}), 0.79));
  EXPECT_FALSE(
      edf_admissible(set_of({{micros(10000), micros(7901)}}), 0.79));
}

// ---------- exact-boundary rounding (the PR-7 kEps bugfix) ----------
//
// The old blanket `total <= available + 1e-9` guard admitted sets a full
// 10^-9 over capacity.  The replacement scales with the set: slack is
// O(eps * terms), so representation noise is forgiven but real overload —
// even 2^-43, five orders of magnitude below the old guard — is rejected.

TEST(Edf, ExactlyFullUtilizationIsAdmissible) {
  // Dyadic slice/period pairs sum to exactly 1.0 with no rounding at all.
  auto s = set_of({{micros(128), micros(64)}, {micros(256), micros(128)}});
  EXPECT_DOUBLE_EQ(total_utilization(s), 1.0);
  EXPECT_TRUE(edf_admissible(s, 1.0));
}

TEST(Edf, OneQuantumOverFullUtilizationIsRejected) {
  // U = 1.0 + 2^-43: one 1ns slice against a 2^43 ns period on top of an
  // exactly-full set.  The old 1e-9 guard admitted this overload.
  const sim::Nanos huge = sim::Nanos{1} << 43;
  auto s = set_of({{micros(128), micros(128)}, {huge, 1}});
  EXPECT_GT(total_utilization(s), 1.0);
  EXPECT_FALSE(edf_admissible(s, 1.0));
}

TEST(Edf, OneQuantumUnderFullUtilizationIsAdmissible) {
  // U = 1.0 - 2^-43: conservative rounding must not spuriously reject a
  // set that is strictly under capacity.
  const sim::Nanos huge = sim::Nanos{1} << 43;
  auto s = set_of({{huge, huge - 1}});
  EXPECT_LT(total_utilization(s), 1.0);
  EXPECT_TRUE(edf_admissible(s, 1.0));
}

TEST(Edf, DecimalRepresentationNoiseIsForgiven) {
  // 0.4 + 0.39 sums to 0.79 only up to double representation error; the
  // scaled slack absorbs it instead of rejecting at the exact boundary.
  auto s = set_of({{micros(1000), micros(400)}, {micros(1000), micros(390)}});
  EXPECT_TRUE(edf_admissible(s, 0.79));
}

TEST(Utilization, SlackScalesWithTermsAndForgivesUlps) {
  EXPECT_LT(admission_slack(1, 1.0), 1e-14);  // far below the old 1e-9
  EXPECT_LT(admission_slack(1000, 1.0), 1e-11);
  EXPECT_GT(admission_slack(2, 1.0), admission_slack(1, 1.0));
  // One double ulp of noise at the boundary fits; a real 1e-13 excess is
  // rejected.
  EXPECT_TRUE(utilization_fits(std::nextafter(1.0, 2.0), 1, 1.0));
  EXPECT_FALSE(utilization_fits(1.0 + 1e-13, 1, 1.0));
  // Neumaier summation keeps a long tail of tiny terms exact enough that
  // the verdict at the boundary is still right.
  std::vector<PeriodicTask> many;
  for (int i = 0; i < 1000; ++i) many.push_back({micros(1000), sim::micros(1), 0});
  EXPECT_TRUE(utilization_fits(total_utilization(many), many.size(), 1.0));
}

TEST(Utilization, DegenerateConstraintsSaturateAndNeverFit) {
  // Zero-period constraints report the kDegenerateUtilization sentinel, not
  // inf/NaN, and no capacity admits them.
  Constraints zero = Constraints::periodic(0, 0, micros(10));
  EXPECT_DOUBLE_EQ(zero.utilization(), kDegenerateUtilization);
  EXPECT_FALSE(utilization_fits(zero.utilization(), 1, 1.0));
  EXPECT_FALSE(zero.well_formed());
}

}  // namespace
}  // namespace hrt::rt
