// SMI missing-time resilience (src/resilience/, docs/RESILIENCE.md):
//   * the online estimator infers stolen time from timer lateness alone
//     (never from hw::SmiSource ground truth) to within the accuracy bound,
//   * SmiSpec validation and the Markov burst mode,
//   * degraded-capacity admission under a storm,
//   * storm drain, graceful shedding in criticality order, and
//     hysteresis-guarded restoration, all recorded in the transition log,
//   * the kShedState / kEffectiveCapacity audit invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "resilience/estimator.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

using resilience::Transition;

nk::Thread* spawn_rt(System& sys, std::string name, std::uint32_t cpu,
                     sim::Nanos period, sim::Nanos slice,
                     rt::AperiodicPriority crit = rt::kDefaultPriority,
                     sim::Nanos phase = sim::millis(1)) {
  rt::Constraints c = rt::Constraints::periodic(phase, period, slice);
  c.priority = crit;  // shed criticality: lower value = more important
  auto b = std::make_unique<nk::FnBehavior>(
      [c](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) return nk::Action::change_constraints(c);
        return nk::Action::compute(c.period / 7);
      });
  return sys.spawn(std::move(name), std::move(b), cpu, 10);
}

std::vector<Transition> of_kind(System& sys, Transition::Kind kind) {
  std::vector<Transition> out;
  for (const Transition& t : sys.resilience().transitions()) {
    if (t.kind == kind) out.push_back(t);
  }
  return out;
}

/// Deterministic storm: a stop-the-world freeze of `duration` every
/// `interval` over [from, to).
void inject_storm(System& sys, sim::Nanos from, sim::Nanos to,
                  sim::Nanos interval, sim::Nanos duration) {
  for (sim::Nanos t = from; t < to; t += interval) {
    sys.engine().schedule_at(t, [&sys, duration] {
      sys.machine().smi().force(duration);
    });
  }
}

// ---------- Estimator unit behavior ----------

TEST(Estimator, UnbiasedEpisodeChargingAndWindowing) {
  resilience::EstimatorConfig cfg;
  cfg.enabled = true;
  cfg.window_ns = sim::millis(1);
  cfg.windows_tracked = 4;
  cfg.ewma_alpha = 0.5;
  resilience::MissingTimeEstimator est(cfg);

  est.advance(0);
  // One caught episode: 20 us late with a 10 us arming gap charges
  // lateness + gap/2 = 25 us.
  est.note_episode(sim::micros(20), sim::micros(10), sim::micros(100));
  EXPECT_EQ(est.stolen_total_ns(), 25000u);
  EXPECT_EQ(est.episodes(), 1u);
  // Below the lateness floor: handler jitter, not an SMI.
  est.note_episode(500, sim::micros(10), sim::micros(200));
  EXPECT_EQ(est.episodes(), 1u);
  // The arming-gap credit is capped.
  est.note_episode(sim::micros(10), sim::millis(1), sim::micros(300));
  EXPECT_EQ(est.stolen_total_ns(),
            25000u + 10000u + cfg.episode_credit_cap_ns / 2);

  // Nothing closed yet: fractions still zero.
  EXPECT_EQ(est.ewma_fraction(), 0.0);
  // Advance past the first window: 60 us stolen / 1 ms = 0.06.
  est.advance(sim::millis(1) + 1);
  EXPECT_NEAR(est.windowed_max_fraction(), 0.06, 1e-9);
  EXPECT_NEAR(est.ewma_fraction(), 0.03, 1e-9);  // alpha 0.5 from 0
  // The elevated estimate switches the watchdog to the alert cadence.
  EXPECT_EQ(est.watchdog_period(), cfg.watchdog_alert_ns);
  // Quiet windows decay the EWMA but the ring remembers the worst window.
  est.advance(sim::millis(3) + 1);
  EXPECT_NEAR(est.windowed_max_fraction(), 0.06, 1e-9);
  EXPECT_LT(est.ewma_fraction(), 0.01);
  EXPECT_EQ(est.watchdog_period(), cfg.watchdog_quiet_ns);
  // Once the hot window ages out of the ring, the max drops too.
  est.advance(sim::millis(6));
  EXPECT_EQ(est.windowed_max_fraction(), 0.0);

  // Handler-span residuals: the first observation calibrates the un-frozen
  // floor; only stretch beyond it (a freeze) is charged.
  const std::uint64_t before = est.stolen_total_ns();
  est.advance(sim::millis(6) + 1);
  est.note_span(150, sim::millis(6) + 2);   // learns min = 150
  est.note_span(150, sim::millis(6) + 3);   // excess 0: no charge
  EXPECT_EQ(est.stolen_total_ns(), before);
  est.note_span(150 + sim::micros(30), sim::millis(6) + 4);
  EXPECT_EQ(est.stolen_total_ns(), before + sim::micros(30));
  EXPECT_EQ(est.span_episodes(), 1u);
}

// ---------- SmiSpec validation + burst mode (hw layer satellites) ----------

TEST(SmiSpec, InvalidSpecsRejectedAtMachineConstruction) {
  {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.spec.smi.mean_duration_ns = o.spec.smi.min_duration_ns - 1;
    EXPECT_THROW(System sys(std::move(o)), std::invalid_argument);
  }
  {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.spec.smi.max_duration_ns = o.spec.smi.min_duration_ns - 1;
    EXPECT_THROW(System sys(std::move(o)), std::invalid_argument);
  }
  {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.spec.smi.mean_interval_ns = 0;
    EXPECT_THROW(System sys(std::move(o)), std::invalid_argument);
  }
  {
    // Burst mode needs its dwell times.
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.spec.smi.burst_enabled = true;
    EXPECT_THROW(System sys(std::move(o)), std::invalid_argument);
  }
  {
    // An invalid spec is fine as long as SMIs are disabled.
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.spec.smi.mean_duration_ns = -5;
    o.smi_enabled = false;
    System sys(std::move(o));
    sys.boot();
    EXPECT_EQ(sys.machine().smi().stats().count, 0u);
  }
}

TEST(SmiBurst, MarkovModeTransitionsAndIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.seed = seed;
    o.spec.smi.mean_interval_ns = sim::millis(5);     // quiet: sparse
    o.spec.smi.burst_enabled = true;
    o.spec.smi.storm_mean_interval_ns = sim::micros(100);  // storm: dense
    o.spec.smi.mean_quiet_ns = sim::millis(10);
    o.spec.smi.mean_storm_ns = sim::millis(5);
    System sys(std::move(o));
    sys.boot();
    sys.run_for(sim::millis(100));
    return sys.machine().smi().stats();
  };
  const hw::SmiStats a = run(7);
  const hw::SmiStats b = run(7);
  const hw::SmiStats c = run(8);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.total_stolen_ns, b.total_stolen_ns);
  EXPECT_EQ(a.storm_transitions, b.storm_transitions);
  EXPECT_GT(a.storm_transitions, 2u);  // flipped into a storm at least once
  // Storm phases are ~50x denser than quiet; 100 ms must show far more SMIs
  // than the quiet rate alone (100ms / 5ms = 20) would produce.
  EXPECT_GT(a.count, 60u);
  EXPECT_NE(a.count, c.count);  // different seed, different trajectory
}

TEST(SmiForce, BeforeStartCountsAndFreezes) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.smi_enabled = false;  // source never starts; force must still work
  System sys(std::move(o));
  sys.machine().smi().force(sim::micros(10));
  const hw::SmiStats st = sys.machine().smi().stats();
  EXPECT_EQ(st.count, 1u);
  EXPECT_EQ(st.forced, 1u);
  EXPECT_EQ(st.total_stolen_ns, sim::micros(10));
  sys.machine().smi().force(0);  // non-positive durations are ignored
  EXPECT_EQ(sys.machine().smi().stats().count, 1u);
  sys.boot();
  sys.run_for(sim::millis(1));
  EXPECT_EQ(sys.machine().smi().stats().count, 1u);  // source stayed off
}

// ---------- Online estimation against ground truth ----------

TEST(Resilience, EstimatorTracksGroundTruthWithin20Percent) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.spec.smi.mean_interval_ns = sim::micros(400);
  o.spec.smi.min_duration_ns = sim::micros(20);
  o.spec.smi.mean_duration_ns = sim::micros(35);
  o.spec.smi.max_duration_ns = sim::micros(80);
  o.resilience.enabled = true;
  System sys(std::move(o));
  sys.boot();
  spawn_rt(sys, "busy", 1, sim::micros(100), sim::micros(30));
  sys.run_for(sim::seconds(3));

  const auto truth =
      static_cast<double>(sys.machine().smi().stats().total_stolen_ns);
  const auto est =
      static_cast<double>(sys.sched(1).missing_time().stolen_total_ns());
  ASSERT_GT(truth, 0.0);
  EXPECT_GT(sys.sched(1).missing_time().episodes(), 1000u);
  const double ratio = est / truth;
  EXPECT_GE(ratio, 0.80) << "estimator " << est << " truth " << truth;
  EXPECT_LE(ratio, 1.25) << "estimator " << est << " truth " << truth;
  // The smoothed fraction lands near the configured ~8.75% theft rate.
  EXPECT_GT(sys.sched(1).missing_time().ewma_fraction(), 0.04);
  EXPECT_LT(sys.sched(1).missing_time().ewma_fraction(), 0.15);
}

// ---------- Degraded-capacity admission ----------

TEST(Resilience, DegradedAdmissionRejectsWhatAQuietCpuAccepts) {
  auto run = [](bool storm) {
    System::Options o;
    o.spec = hw::MachineSpec::phi_small(2);
    o.smi_enabled = false;  // injected by hand below
    o.resilience.enabled = true;
    System sys(std::move(o));
    sys.boot();
    if (storm) {
      // ~31% of the machine stolen while the estimate builds.  The 97 us
      // interval is deliberately coprime with the watchdog cadence so the
      // deterministic injection cannot phase-lock against the timer grid
      // (real SMI arrivals are exponential and never lock).
      inject_storm(sys, sim::millis(1), sim::millis(40), sim::micros(97),
                   sim::micros(30));
    }
    sys.run_for(sim::millis(40));
    // 0.70 fits the quiet budget (0.79 - 0.02 reserve) but not a CPU that
    // knows ~30% of its time is being stolen.
    nk::Thread* t =
        spawn_rt(sys, "big", 1, sim::millis(1), sim::micros(700), 5, 0);
    sys.run_for(sim::millis(5));
    return t->last_admit_ok;
  };
  EXPECT_TRUE(run(false));
  EXPECT_FALSE(run(true));
}

// ---------- Drain ----------

TEST(Resilience, StormDrainsOverCommittedCpuToQuietHeadroom) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  o.resilience.enabled = true;
  o.audit.enabled = true;
  // The spec says no SMIs, so the auto-derived budget tolerance has no
  // missing-time allowance — but the hand-forced freezes below do charge
  // slices.  Widen explicitly (up to two 25 us freezes fit a 150 us slice).
  o.audit.budget_slop = sim::micros(120);
  System sys(std::move(o));
  sys.boot();
  // cpu1 carries 0.65; cpus 2-3 are empty, so under a ~26% storm (effective
  // capacity ~0.51) the overload must drain off cpu1 — the empty CPUs keep
  // plenty of degraded headroom — instead of shedding anything.
  nk::Thread* a = spawn_rt(sys, "a", 1, sim::micros(100), sim::micros(35), 1);
  nk::Thread* b = spawn_rt(sys, "b", 1, sim::micros(500), sim::micros(150), 4);
  sys.run_for(sim::millis(5));
  ASSERT_TRUE(a->last_admit_ok);
  ASSERT_TRUE(b->last_admit_ok);
  inject_storm(sys, sim::millis(5), sim::millis(60), sim::micros(97),
               sim::micros(25));
  sys.run_for(sim::millis(70));

  const auto& st = sys.resilience().stats();
  EXPECT_GT(st.storms_entered, 0u);
  EXPECT_GT(st.drains, 0u);
  EXPECT_EQ(st.sheds, 0u);  // headroom existed; nothing needed shedding
  EXPECT_FALSE(of_kind(sys, Transition::Kind::kDrain).empty());
  // At least one of the two left cpu1, and both remain periodic.
  EXPECT_TRUE(a->cpu != 1 || b->cpu != 1);
  EXPECT_EQ(a->constraints.cls, rt::ConstraintClass::kPeriodic);
  EXPECT_EQ(b->constraints.cls, rt::ConstraintClass::kPeriodic);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kShedState), 0u);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kEffectiveCapacity), 0u);
}

// ---------- Shed + restore ----------

TEST(Resilience, ShedsLeastCriticalFirstAndRestoresAfterStorm) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(4);
  o.smi_enabled = false;
  o.resilience.enabled = true;
  o.audit.enabled = true;
  // Forced freezes charge budgets the spec-derived tolerance knows nothing
  // about (spec.smi.enabled is false): up to three 35 us freezes can land
  // in the 200 us "low" slice.
  o.audit.budget_slop = sim::micros(120);
  System sys(std::move(o));
  sys.boot();
  // Anchors keep every other CPU too full to absorb a drain under storm.
  spawn_rt(sys, "anchor0", 0, sim::millis(1), sim::micros(300), 0);
  spawn_rt(sys, "anchor2", 2, sim::millis(1), sim::micros(300), 0);
  spawn_rt(sys, "anchor3", 3, sim::millis(1), sim::micros(300), 0);
  // The contested CPU: 0.75 committed across three criticalities.
  nk::Thread* a = spawn_rt(sys, "crit", 1, sim::micros(100), sim::micros(30), 1);
  nk::Thread* b = spawn_rt(sys, "mid", 1, sim::micros(500), sim::micros(125), 4);
  nk::Thread* c = spawn_rt(sys, "low", 1, sim::millis(1), sim::micros(200), 6);
  sys.run_for(sim::millis(5));
  for (nk::Thread* t : {a, b, c}) ASSERT_TRUE(t->last_admit_ok);
  const rt::Constraints b_orig = b->constraints;

  // ~36% theft for 55 ms: cpu1's 0.75 no longer fits (effective ~0.41), and
  // the anchors leave no drain headroom anywhere (~0.11 < 0.20).
  inject_storm(sys, sim::millis(5), sim::millis(60), sim::micros(97),
               sim::micros(35));
  sys.run_for(sim::millis(55));

  // Mid-storm: the controller shed from the bottom of the criticality order.
  const auto sheds = of_kind(sys, Transition::Kind::kShed);
  ASSERT_FALSE(sheds.empty());
  for (const Transition& t : sheds) {
    EXPECT_NE(t.thread_id, a->id) << "most-critical thread must survive";
  }
  // B was either shed or (with C gone) still fits; C always goes first when
  // both are shed — verify the order whenever both appear.
  std::vector<std::uint32_t> shed_order;
  for (const Transition& t : sheds) shed_order.push_back(t.thread_id);
  const auto pos_b = std::find(shed_order.begin(), shed_order.end(), b->id);
  const auto pos_c = std::find(shed_order.begin(), shed_order.end(), c->id);
  if (pos_b != shed_order.end() && pos_c != shed_order.end()) {
    EXPECT_LT(pos_c - shed_order.begin(), pos_b - shed_order.begin())
        << "lower criticality (higher priority value) sheds first";
  }
  // A shed thread runs demoted: idle-priority aperiodic.
  EXPECT_GT(sys.resilience().shed_count(), 0u);
  if (pos_c != shed_order.end() && c->cpu == 1) {
    EXPECT_EQ(c->constraints.cls, rt::ConstraintClass::kAperiodic);
    EXPECT_EQ(c->constraints.priority, rt::kIdlePriority);
  }
  EXPECT_EQ(a->constraints.cls, rt::ConstraintClass::kPeriodic);

  // Storm over: hysteresis exit, then restoration in criticality order.
  sys.run_for(sim::millis(90));
  const auto& st = sys.resilience().stats();
  EXPECT_GT(st.storms_entered, 0u);
  EXPECT_GT(st.storms_exited, 0u);
  EXPECT_GT(st.sheds, 0u);
  EXPECT_EQ(st.restores, st.sheds);  // everything came back
  EXPECT_EQ(sys.resilience().shed_count(), 0u);
  EXPECT_EQ(b->constraints.cls, rt::ConstraintClass::kPeriodic);
  EXPECT_EQ(b->constraints.period, b_orig.period);
  EXPECT_EQ(b->constraints.slice, b_orig.slice);
  EXPECT_EQ(b->constraints.priority, b_orig.priority);
  EXPECT_EQ(c->constraints.cls, rt::ConstraintClass::kPeriodic);
  // The most critical thread rode the whole storm out with constraints
  // intact and essentially no misses (EDF protects the earliest deadlines).
  EXPECT_LE(a->rt.misses, 2u);
  EXPECT_GT(a->rt.arrivals, 1000u);

  // The transition log is the auditable record: every lifecycle event is in
  // it, and the invariants stayed clean (a FORCE_AUDIT build would throw).
  EXPECT_FALSE(of_kind(sys, Transition::Kind::kStormEnter).empty());
  EXPECT_FALSE(of_kind(sys, Transition::Kind::kStormExit).empty());
  EXPECT_EQ(of_kind(sys, Transition::Kind::kShed).size(), st.sheds);
  EXPECT_EQ(of_kind(sys, Transition::Kind::kRestore).size(), st.restores);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kShedState), 0u);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kEffectiveCapacity), 0u);
}

// ---------- Audit invariants ----------

TEST(Resilience, EffectiveCapacityTamperIsCaught) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.smi_enabled = false;
  o.resilience.enabled = true;
  o.audit.enabled = true;
  System sys(std::move(o));
  sys.boot();
  sys.run_for(sim::millis(5));
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kEffectiveCapacity), 0u);
  // Someone raises a CPU's capacity behind the controller's back.  Check
  // immediately: the next sample would republish the correct value, which
  // is precisely why out-of-band writes must be flagged when they happen.
  sys.placement().ledger().set_capacity(1, 5.0);
  try {
    sys.resilience().audit(sys.engine().now());
  } catch (const audit::AuditError& e) {
    // HRT_FORCE_AUDIT build: the violation throws at the check.
    EXPECT_EQ(e.invariant(), audit::Invariant::kEffectiveCapacity);
  }
  EXPECT_GT(sys.auditor().count(audit::Invariant::kEffectiveCapacity), 0u);
}

TEST(Resilience, DisabledByDefaultCostsNothing) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(2);
  o.smi_enabled = false;
  System sys(std::move(o));
  sys.boot();
  const auto before = sys.engine().events_executed();
  sys.run_for(sim::seconds(1));
  // No watchdog timers, no sampling loop: the idle machine stays tickless.
  EXPECT_LT(sys.engine().events_executed() - before, 100u);
  EXPECT_EQ(sys.resilience().stats().samples, 0u);
  EXPECT_TRUE(sys.resilience().transitions().empty());
}

}  // namespace
}  // namespace hrt
