// Boot-time TSC calibration tests (section 3.4, Figure 3).
#include <gtest/gtest.h>

#include "hw/machine.hpp"
#include "timesync/calibration.hpp"

namespace hrt::timesync {
namespace {

TEST(Calibration, ShrinksRawBootSkew) {
  hw::Machine m(hw::MachineSpec::phi(), 42);
  // Raw skew before: up to 200 us (hundreds of thousands of cycles).
  sim::Nanos raw_max = 0;
  for (std::uint32_t c = 1; c < m.num_cpus(); ++c) {
    raw_max = std::max(raw_max, m.cpu(c).tsc().true_offset_ns());
  }
  EXPECT_GT(raw_max, sim::micros(50));

  auto res = calibrate(m);
  EXPECT_TRUE(res.performed);
  // After: within the paper's ~1000 cycles.
  EXPECT_LE(res.max_abs_residual(), 1100);
  EXPECT_GT(res.max_abs_residual(), 0);  // but not magically perfect
}

TEST(Calibration, ResidualMatchesGroundTruth) {
  hw::Machine m(hw::MachineSpec::phi_small(16), 7);
  auto res = calibrate(m);
  for (std::uint32_t c = 1; c < m.num_cpus(); ++c) {
    const sim::Cycles truth =
        m.spec().freq.ns_to_cycles(m.cpu(c).tsc().true_offset_ns());
    EXPECT_NEAR(static_cast<double>(res.residual_cycles[c]),
                static_cast<double>(truth), 2.0);
  }
}

TEST(Calibration, Cpu0DefinesWallClock) {
  hw::Machine m(hw::MachineSpec::phi_small(8), 3);
  calibrate(m);
  EXPECT_EQ(m.cpu(0).tsc().true_offset_ns(), 0);
}

TEST(Calibration, ErrorClampedToSpecMax) {
  hw::MachineSpec spec = hw::MachineSpec::phi_small(64);
  spec.skew.calib_error_std = 10'000;  // absurd noise
  spec.skew.calib_error_max = 500;     // but clamped
  hw::Machine m(spec, 11);
  auto res = calibrate(m);
  // Residual bounded by clamp plus a cycle of conversion rounding.
  EXPECT_LE(res.max_abs_residual(), 502);
}

TEST(Calibration, DeterministicForSeed) {
  hw::Machine a(hw::MachineSpec::phi_small(32), 99);
  hw::Machine b(hw::MachineSpec::phi_small(32), 99);
  auto ra = calibrate(a);
  auto rb = calibrate(b);
  EXPECT_EQ(ra.residual_cycles, rb.residual_cycles);
}

TEST(Calibration, R415TighterThanPhi) {
  hw::Machine phi(hw::MachineSpec::phi(), 5);
  hw::Machine r415(hw::MachineSpec::r415(), 5);
  auto rp = calibrate(phi);
  auto rr = calibrate(r415);
  // Fewer CPUs and lower noise: the R415's worst-case residual is smaller.
  EXPECT_LT(rr.max_abs_residual(), rp.max_abs_residual());
}

}  // namespace
}  // namespace hrt::timesync
