// System::spawn_batch (docs/API.md "Batched spawn"): one placement pass,
// pool-backed parked thread creation, one admission analysis per target CPU,
// all-or-nothing rollback — plus the two seeded-fault regressions this PR
// fixes (reservation lost on rejected commit; migration rollback releasing
// the wrong CPU's hold).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "audit/replay.hpp"
#include "global/global_scheduler.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options batch_options(std::uint32_t cpus, std::uint32_t laden = 0) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.audit.enabled = true;  // accumulate mode; FORCE builds throw instead
  o.interrupt_laden_cpus = laden;
  return o;
}

/// Run `fn`, tolerating the AuditError a throwing-mode (HRT_FORCE_AUDIT)
/// auditor raises, and return how many `inv` violations were seen.
std::uint64_t run_counting(System& sys, audit::Invariant inv,
                           const std::function<void()>& fn) {
  try {
    fn();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.invariant(), inv) << e.what();
  }
  return sys.auditor().count(inv);
}

/// Inner for batch RT specs: the ReservedAdmitBehavior wrapper installed by
/// spawn_batch does the constraint commit, so the inner only computes.
std::unique_ptr<nk::Behavior> batch_worker() {
  return std::make_unique<nk::FnBehavior>([](nk::ThreadCtx&, std::uint64_t) {
    return nk::Action::compute(sim::millis(2));
  });
}

System::SpawnSpec spec_of(std::string name, rt::Constraints c) {
  System::SpawnSpec s;
  s.name = std::move(name);
  s.behavior = batch_worker();
  s.constraints = c;
  return s;
}

rt::Constraints periodic_u(double util) {
  return rt::Constraints::periodic(
      0, sim::millis(1),
      static_cast<sim::Nanos>(util * static_cast<double>(sim::millis(1))));
}

// ---------- basic semantics ----------

TEST(SpawnBatch, EmptyBatchSucceedsTrivially) {
  System sys(batch_options(2));
  sys.boot();
  System::BatchSpawnResult r = sys.spawn_batch({});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.threads.empty());
  EXPECT_EQ(sys.kernel().threads_created(), 2u);  // idle threads only
}

TEST(SpawnBatch, AdmitsAndRunsMixedBurst) {
  System sys(batch_options(2));
  sys.boot();
  std::vector<System::SpawnSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(spec_of("p" + std::to_string(i), periodic_u(0.15)));
  }
  specs.push_back(spec_of("ap", rt::Constraints::aperiodic()));
  specs.push_back(
      spec_of("sp", rt::Constraints::sporadic(0, sim::micros(100),
                                              sim::millis(10))));
  const std::size_t n = specs.size();

  System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.threads.size(), n);
  ASSERT_EQ(r.cpus.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(r.threads[i]->cpu, r.cpus[i]);
  }

  const std::uint64_t ledger_faults =
      run_counting(sys, audit::Invariant::kPlacementLedger,
                   [&] { sys.run_for(sim::millis(20)); });
  EXPECT_EQ(ledger_faults, 0u);
  EXPECT_EQ(sys.auditor().count(audit::Invariant::kUtilization), 0u);

  // Every periodic member committed its reservation and is arriving.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(r.threads[i]->is_realtime()) << r.threads[i]->name;
    EXPECT_GT(r.threads[i]->rt.arrivals, 0u) << r.threads[i]->name;
    EXPECT_TRUE(r.threads[i]->last_admit_ok);
  }
  sys.sync_accounting();
  EXPECT_GT(r.threads[6]->total_cpu_ns, 0);  // aperiodic member ran too
}

TEST(SpawnBatch, AllOrNothingRollbackLeavesNoTrace) {
  System sys(batch_options(2));
  sys.boot();
  const std::size_t pool_before = sys.kernel().pool_size();
  const std::size_t created_before = sys.kernel().threads_created();

  // 4 x 0.5 cannot fit on two 0.79 CPUs no matter the packing.
  std::vector<System::SpawnSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(spec_of("big" + std::to_string(i), periodic_u(0.5)));
  }
  System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.threads.empty());
  EXPECT_TRUE(r.cpus.empty());

  // No reservation, no ledger charge, no enqueue survived the rollback.
  const global::UtilizationLedger& ledger = sys.placement().ledger();
  EXPECT_DOUBLE_EQ(ledger.total_committed(), 0.0);
  for (std::uint32_t c = 0; c < 2; ++c) {
    EXPECT_EQ(ledger.committed_raw(c), 0u);
    EXPECT_TRUE(sys.sched(c).probe_admission(periodic_u(0.75)));
  }
  // Every TCB went back to the pool; nothing leaked.
  EXPECT_GE(sys.kernel().pool_size(), pool_before + 4);
  EXPECT_EQ(sys.kernel().threads_created(), created_before + 4);

  // The freed capacity is genuinely usable: a fitting batch now succeeds
  // and reuses the pooled TCBs instead of allocating fresh ones.
  std::vector<System::SpawnSpec> fit;
  fit.push_back(spec_of("fit0", periodic_u(0.7)));
  fit.push_back(spec_of("fit1", periodic_u(0.7)));
  System::BatchSpawnResult r2 = sys.spawn_batch(std::move(fit));
  ASSERT_TRUE(r2.ok);
  EXPECT_GE(sys.kernel().pool_reuses(), 2u);
  EXPECT_EQ(sys.kernel().threads_created(), created_before + 4);
  sys.run_for(sim::millis(10));
  EXPECT_GT(r2.threads[0]->rt.arrivals, 0u);
  EXPECT_GT(r2.threads[1]->rt.arrivals, 0u);
}

TEST(SpawnBatch, OneAnalysisAndOneKickPerCpu) {
  System sys(batch_options(4));
  sys.boot();
  std::vector<System::SpawnSpec> specs;
  for (int i = 0; i < 16; ++i) {
    specs.push_back(spec_of("w" + std::to_string(i), periodic_u(0.15)));
  }
  System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
  ASSERT_TRUE(r.ok);

  // ONE placement pass for the whole vector.
  EXPECT_EQ(sys.placement().stats().batch_placements, 1u);
  EXPECT_EQ(sys.placement().stats().batch_specs, 16u);

  // ONE reserve_batch per distinct target CPU, covering all 16 threads.
  std::uint64_t reserves = 0, reserved_threads = 0;
  std::set<std::uint32_t> distinct(r.cpus.begin(), r.cpus.end());
  for (std::uint32_t c = 0; c < 4; ++c) {
    reserves += sys.sched(c).stats().batch_reserves;
    reserved_threads += sys.sched(c).stats().batch_reserved_threads;
  }
  EXPECT_EQ(reserves, distinct.size());
  EXPECT_EQ(reserved_threads, 16u);

  sys.run_for(sim::millis(20));
  for (nk::Thread* t : r.threads) {
    EXPECT_TRUE(t->is_realtime()) << t->name;
    EXPECT_GT(t->rt.arrivals, 0u) << t->name;
  }
}

// ---------- replay-oracle validation of a batch-spawn burst ----------
//
// The trace a committed batch produces must satisfy the EDF replay oracle on
// every CPU the batch landed on: batched admission may amortize the
// analysis, but the dispatch order it authorizes is the same one the oracle
// re-derives offline.

TEST(SpawnBatch, BatchBurstSatisfiesReplayOracle) {
  System sys(batch_options(2));
  sys.machine().trace().enable();
  sys.boot();
  std::vector<System::SpawnSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(spec_of("r" + std::to_string(i), periodic_u(0.2)));
  }
  System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
  ASSERT_TRUE(r.ok);
  sys.run_for(sim::millis(50));

  const audit::ReplayConfig cfg =
      audit::replay_config_for(sys.machine().spec());
  for (std::uint32_t cpu = 0; cpu < 2; ++cpu) {
    std::vector<audit::ReplayTask> tasks;
    std::vector<nk::Thread*> members;
    for (std::size_t i = 0; i < r.threads.size(); ++i) {
      if (r.cpus[i] != cpu) continue;
      members.push_back(r.threads[i]);
      tasks.push_back(
          {r.threads[i]->id, r.threads[i]->constraints, r.threads[i]->rt.gamma});
    }
    if (tasks.empty()) continue;
    audit::ReplayResult rr = audit::replay_edf(sys.machine().trace(), cpu,
                                               tasks, cfg, sys.engine().now());
    for (nk::Thread* t : members) {
      const std::uint64_t tol = std::max<std::uint64_t>(3, t->rt.arrivals / 50);
      audit::verify_stats(rr, t->id, t->rt.arrivals, t->rt.completions,
                          t->rt.misses, tol);
    }
    for (const auto& d : rr.divergences) {
      ADD_FAILURE() << "cpu " << cpu << " t=" << d.time << "ns: " << d.detail;
    }
    EXPECT_TRUE(rr.ok());
  }
}

// ---------- regression: rejected commit must keep the reservation ----------
//
// Two-phase admission holds utilization between reserve and commit.  The
// pre-fix change_constraints dropped the hold when the commit itself was
// rejected, silently losing the caller's reserved capacity.  The bug lives
// on behind Config::TestFaults::consume_reservation_on_reject.

TEST(SpawnBatch, RejectedCommitKeepsReservation) {
  System sys(batch_options(1));
  sys.boot();
  nk::Thread* t = sys.spawn("holder", batch_worker(), 0);
  ASSERT_TRUE(sys.sched(0).reserve_constraints(*t, periodic_u(0.3)));

  // A commit that exceeds capacity is rejected -- and must NOT eat the hold.
  EXPECT_FALSE(
      sys.sched(0).change_constraints(*t, periodic_u(0.9), sys.engine().now()));
  EXPECT_TRUE(sys.sched(0).has_reservation(*t));
  // The held 0.3 still guards its capacity against later arrivals...
  EXPECT_FALSE(sys.sched(0).probe_admission(periodic_u(0.6)));
  // ...and the holder can still consume it.
  EXPECT_TRUE(
      sys.sched(0).change_constraints(*t, periodic_u(0.3), sys.engine().now()));
  EXPECT_FALSE(sys.sched(0).has_reservation(*t));
}

TEST(SpawnBatch, SeededFaultConsumesReservationOnReject) {
  System::Options o = batch_options(1);
  o.sched.test_faults.consume_reservation_on_reject = true;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = sys.spawn("holder", batch_worker(), 0);
  ASSERT_TRUE(sys.sched(0).reserve_constraints(*t, periodic_u(0.3)));

  EXPECT_FALSE(
      sys.sched(0).change_constraints(*t, periodic_u(0.9), sys.engine().now()));
  // The seeded bug: the rejected commit consumed the hold, so the capacity
  // the caller thought was guaranteed is now up for grabs.
  EXPECT_FALSE(sys.sched(0).has_reservation(*t));
  EXPECT_TRUE(sys.sched(0).probe_admission(periodic_u(0.6)));
}

// ---------- regression: migration rollback targets the right CPU ----------
//
// A failed job-boundary hand-off must release the reservation on the
// *target* CPU (where request_migration took it).  The pre-fix rollback
// released on the original CPU, leaking the target's hold forever; the bug
// lives on behind Config::TestFaults::migration_rollback_wrong_cpu, and the
// auditor's stale-reservation check (audit_utilization) detects the leak.

/// Drive `sys` into a failed hand-off: admit a periodic thread on cpu 0,
/// request migration to cpu 1 mid-job (reserving 0.3 there), then degrade
/// cpu 1's capacity via its missing-time estimator so the job-boundary
/// commit is rejected.  Returns the migrating thread.
nk::Thread* fail_handoff(System& sys) {
  nk::Thread* t = sys.spawn(
      "mig",
      std::make_unique<nk::FnBehavior>([](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::millis(1), sim::micros(300)));
        }
        return nk::Action::compute(sim::millis(2));
      }),
      0);
  // Mid-job on cpu 0 (arrival at ~1.1ms after timer lateness, 300us budget
  // still draining) so the hand-off defers to the job boundary.
  sys.run_until(sim::millis(1) + sim::micros(200));
  EXPECT_TRUE(t->is_realtime());
  EXPECT_TRUE(t->rt.arrival_open);
  EXPECT_TRUE(sys.sched(0).request_migration(*t, 1));
  EXPECT_TRUE(sys.sched(1).has_reservation(*t));

  // Storm cpu 1's estimator host-side: ~0.9 stolen fraction over a dozen
  // closed windows pushes the EWMA far past the 0.49 that would still leave
  // room for the migrating 0.3 under degraded admission.
  auto& est = sys.sched(1).missing_time();
  const sim::Nanos w = sys.options().sched.estimator.window_ns;
  const sim::Nanos base = sys.engine().now();
  for (int k = 0; k < 12; ++k) {
    est.note_episode(sim::micros(1800), 0, base + k * w);
  }
  EXPECT_GT(est.ewma_fraction(), 0.49);

  // Run past the job boundary: the deferred hand-off fires and is rejected.
  sys.run_for(sim::millis(2));
  EXPECT_EQ(sys.sched(0).stats().migration_failures, 1u);
  return t;
}

System::Options handoff_options() {
  System::Options o = batch_options(2);
  o.sched.estimator.enabled = true;
  o.sched.degraded_admission = true;
  return o;
}

TEST(SpawnBatch, FailedHandoffReleasesTargetReservation) {
  System sys(handoff_options());
  sys.boot();
  nk::Thread* t = fail_handoff(sys);

  // Fixed behavior: the target's hold is gone, the thread fell back home
  // still real-time, and cpu 1's capacity is genuinely free again.
  EXPECT_FALSE(sys.sched(1).has_reservation(*t));
  EXPECT_EQ(t->cpu, 0u);
  EXPECT_TRUE(t->is_realtime());
  EXPECT_EQ(sys.placement().ledger().committed_raw(1), 0u);
  // Only the hand-off failure record itself; no stale-reservation audits.
  const std::uint64_t mig = run_counting(
      sys, audit::Invariant::kMigration, [&] { sys.run_for(sim::millis(2)); });
  EXPECT_EQ(mig, 1u);
}

TEST(SpawnBatch, SeededFaultLeaksTargetReservationOnRollback) {
  System::Options o = handoff_options();
  o.sched.test_faults.migration_rollback_wrong_cpu = true;
  System sys(std::move(o));
  sys.boot();
  nk::Thread* t = fail_handoff(sys);

  // The seeded bug: rollback released on cpu 0 (which held nothing), so the
  // target's 0.3 hold leaks and the auditor's stale-reservation check
  // flags it on every cpu-1 audit pass thereafter.
  EXPECT_TRUE(sys.sched(1).has_reservation(*t));
  const std::uint64_t mig = run_counting(
      sys, audit::Invariant::kMigration, [&] { sys.run_for(sim::millis(2)); });
  EXPECT_GT(mig, 1u);
}

}  // namespace
}  // namespace hrt
