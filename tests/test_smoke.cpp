// End-to-end smoke tests: boot, run threads, basic RT behavior.
#include <gtest/gtest.h>

#include "bsp/bsp.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

System::Options small_opts(std::uint32_t cpus = 4, bool smi = false) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(cpus);
  o.smi_enabled = smi;
  return o;
}

TEST(Smoke, BootAndIdle) {
  System sys(small_opts());
  sys.boot();
  sys.run_for(sim::millis(10));
  EXPECT_TRUE(sys.kernel().booted());
  // All CPUs run their idle threads; nothing should have crashed and no
  // runaway event storms should occur while idle.
  EXPECT_LT(sys.engine().events_executed(), 10000u);
}

TEST(Smoke, AperiodicThreadRuns) {
  System sys(small_opts());
  sys.boot();
  bool ran = false;
  sys.spawn("worker",
            std::make_unique<nk::SequenceBehavior>(std::vector<nk::Action>{
                nk::Action::compute(sim::micros(500),
                                    [&ran](nk::ThreadCtx&) { ran = true; }),
            }),
            1);
  sys.run_for(sim::millis(5));
  EXPECT_TRUE(ran);
}

TEST(Smoke, PeriodicThreadMeetsFeasibleConstraints) {
  System sys(small_opts());
  sys.boot();
  // 100 us period, 50 us slice -- Figure 4's configuration.
  auto behavior = std::make_unique<nk::FnBehavior>(
      [](nk::ThreadCtx&, std::uint64_t step) {
        if (step == 0) {
          return nk::Action::change_constraints(rt::Constraints::periodic(
              sim::millis(1), sim::micros(100), sim::micros(50)));
        }
        return nk::Action::compute(sim::micros(20));
      });
  nk::Thread* t = sys.spawn("rt", std::move(behavior), 1);
  sys.run_for(sim::millis(50));
  EXPECT_TRUE(t->last_admit_ok);
  // ~490 arrivals expected in ~49 ms of admitted time.
  EXPECT_GT(t->rt.arrivals, 400u);
  EXPECT_EQ(t->rt.misses, 0u);
}

TEST(Smoke, InfeasibleConstraintsRejectedByAdmission) {
  System sys(small_opts());
  sys.boot();
  nk::Thread* t = sys.spawn(
      "greedy",
      std::make_unique<nk::FnBehavior>(
          [](nk::ThreadCtx&, std::uint64_t step) {
            if (step == 0) {
              // 95% utilization > 79% available after reservations.
              return nk::Action::change_constraints(rt::Constraints::periodic(
                  sim::millis(1), sim::micros(100), sim::micros(95)));
            }
            return nk::Action::exit();
          }),
      1);
  sys.run_for(sim::millis(5));
  EXPECT_FALSE(t->last_admit_ok);
  EXPECT_EQ(t->constraints.cls, rt::ConstraintClass::kAperiodic);
}

TEST(Smoke, BspAperiodicWithBarrierCompletes) {
  System sys(small_opts(5));
  sys.boot();
  bsp::BspConfig cfg;
  cfg.P = 4;
  cfg.NE = 64;
  cfg.NC = 4;
  cfg.NW = 4;
  cfg.N = 50;
  cfg.barrier = true;
  cfg.mode = bsp::Mode::kAperiodic;
  auto res = bsp::run_bsp(sys, cfg);
  EXPECT_TRUE(res.all_done);
  EXPECT_LE(res.max_write_skew, 1u);
  EXPECT_EQ(res.barrier_rounds, 50u);
}

TEST(Smoke, BspGroupRtWithoutBarrierStaysInLockstep) {
  System sys(small_opts(5));
  sys.boot();
  bsp::BspConfig cfg;
  cfg.P = 4;
  cfg.NE = 64;
  cfg.NC = 4;
  cfg.NW = 4;
  cfg.N = 50;
  cfg.barrier = false;
  cfg.mode = bsp::Mode::kGroupRt;
  cfg.period = sim::micros(100);
  cfg.slice = sim::micros(75);
  auto res = bsp::run_bsp(sys, cfg);
  EXPECT_TRUE(res.admission_ok);
  EXPECT_TRUE(res.all_done);
  // Lockstep via time alone: skew bounded by a couple of iterations.
  EXPECT_LE(res.max_write_skew, 2u);
}

}  // namespace
}  // namespace hrt
