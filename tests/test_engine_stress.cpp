// Engine stress tests: randomized schedule/cancel/run interleavings checked
// against a naive reference implementation, for both the timer-wheel Engine
// and the seed priority-queue LegacyEngine.  Also pins the stale-cancel
// regressions: empty() must stay exact and a recycled pool slot must not be
// cancellable through an old handle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/legacy_engine.hpp"
#include "sim/rng.hpp"

namespace hrt::sim {
namespace {

// Naive reference model: a flat vector, linear min-scan on every pop.
class ReferenceModel {
 public:
  void schedule(Nanos when, std::uint8_t band, std::uint64_t tag) {
    pending_.push_back(Entry{when, band, next_seq_++, tag});
  }

  bool cancel(std::uint64_t tag) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->tag == tag) {
        pending_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Pop every entry with when <= t_end in (when, band, seq) order,
  /// appending tags to `order`.
  void run_until(Nanos t_end, std::vector<std::uint64_t>& order) {
    for (;;) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].when > t_end) continue;
        if (best == pending_.size() || before(pending_[i], pending_[best])) {
          best = i;
        }
      }
      if (best == pending_.size()) return;
      order.push_back(pending_[best].tag);
      now_ = pending_[best].when;
      pending_.erase(pending_.begin() +
                     static_cast<std::ptrdiff_t>(best));
    }
  }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] Nanos now() const { return now_; }

 private:
  struct Entry {
    Nanos when;
    std::uint8_t band;
    std::uint64_t seq;
    std::uint64_t tag;
  };
  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.band != b.band) return a.band < b.band;
    return a.seq < b.seq;
  }

  std::vector<Entry> pending_;
  std::uint64_t next_seq_ = 0;
  Nanos now_ = 0;
};

template <typename EngineT>
class EngineStress : public ::testing::Test {};

using EngineTypes = ::testing::Types<Engine, LegacyEngine>;
TYPED_TEST_SUITE(EngineStress, EngineTypes);

TYPED_TEST(EngineStress, RandomInterleavingsMatchReference) {
  for (std::uint64_t seed : {1u, 7u, 42u, 999u}) {
    TypeParam eng;
    ReferenceModel ref;
    Rng rng(seed);

    std::vector<std::uint64_t> got;       // engine execution order (tags)
    std::vector<std::uint64_t> expected;  // reference execution order
    struct Live {
      EventId id;
      std::uint64_t tag;
    };
    std::vector<Live> live;
    std::vector<EventId> stale;  // handles of events that already ran
    std::unordered_set<std::uint64_t> ran_tags;
    std::size_t got_consumed = 0;
    std::uint64_t next_tag = 1;

    for (int step = 0; step < 4000; ++step) {
      const double p = rng.next_double();
      if (p < 0.55) {
        // Schedule: bias to short delays (timer scale), with a far tail
        // that crosses the wheel-window boundary; delay 0 is legal.
        Nanos delay;
        const double q = rng.next_double();
        if (q < 0.6) {
          delay = rng.uniform(0, micros(100));
        } else if (q < 0.9) {
          delay = rng.uniform(micros(100), millis(6));
        } else {
          delay = rng.uniform(millis(6), millis(60));
        }
        const auto band = static_cast<EventBand>(rng.uniform(0, 3));
        const std::uint64_t tag = next_tag++;
        const EventId id = eng.schedule_after(
            delay, [tag, &got] { got.push_back(tag); }, band);
        ref.schedule(eng.now() + delay, static_cast<std::uint8_t>(band),
                     tag);
        live.push_back(Live{id, tag});
      } else if (p < 0.75 && !live.empty()) {
        // Cancel a pending event.
        const auto i = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
        eng.cancel(live[i].id);
        ASSERT_TRUE(ref.cancel(live[i].tag));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (p < 0.8 && !stale.empty()) {
        // Stale cancel: the event already ran; must be an exact no-op.
        const auto i = static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(stale.size()) - 1));
        eng.cancel(stale[i]);
      } else if (p < 0.95) {
        const Nanos horizon = eng.now() + rng.uniform(0, micros(500));
        eng.run_until(horizon);
        ref.run_until(horizon, expected);
      } else {
        eng.run_all();
        ref.run_until(std::numeric_limits<Nanos>::max() / 2, expected);
      }

      // Retire executed events from the live set into the stale pool.
      ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
      if (got_consumed < got.size()) {
        for (; got_consumed < got.size(); ++got_consumed) {
          ran_tags.insert(got[got_consumed]);
        }
        for (auto it = live.begin(); it != live.end();) {
          if (ran_tags.count(it->tag) != 0) {
            stale.push_back(it->id);
            it = live.erase(it);
          } else {
            ++it;
          }
        }
      }
      ASSERT_EQ(eng.empty(), ref.empty()) << "seed " << seed;
    }

    eng.run_all();
    ref.run_until(std::numeric_limits<Nanos>::max() / 2, expected);
    ASSERT_EQ(got, expected) << "seed " << seed;
    EXPECT_TRUE(eng.empty());
    EXPECT_EQ(eng.events_executed(), got.size());
  }
}

// Regression (seed bug): empty() compared queue size against tombstone
// count, so a cancel() with an id that had already run made the engine
// report non-empty forever.
TYPED_TEST(EngineStress, EmptyStaysExactUnderStaleCancel) {
  TypeParam eng;
  const EventId id = eng.schedule_at(10, [] {});
  EXPECT_FALSE(eng.empty());
  EXPECT_EQ(eng.run_all(), 1u);
  EXPECT_TRUE(eng.empty());

  eng.cancel(id);  // stale: the event already ran
  EXPECT_TRUE(eng.empty());

  bool ran = false;
  eng.schedule_at(20, [&ran] { ran = true; });
  EXPECT_FALSE(eng.empty());
  EXPECT_EQ(eng.run_all(), 1u);
  EXPECT_TRUE(ran);
  EXPECT_TRUE(eng.empty());
}

TYPED_TEST(EngineStress, DoubleCancelThenDrainReportsEmpty) {
  TypeParam eng;
  const EventId id = eng.schedule_at(50, [] {});
  eng.cancel(id);
  eng.cancel(id);  // second cancel of the same id is a no-op
  EXPECT_EQ(eng.run_all(), 0u);
  EXPECT_TRUE(eng.empty());
}

// Generation tags: a recycled pool slot must reject handles from its
// previous life.  (Only meaningful for the wheel engine; the legacy engine
// never reuses ids.)
TEST(EngineGenerations, StaleHandleCannotCancelRecycledSlot) {
  Engine eng;
  int first = 0;
  int second = 0;
  const EventId id1 = eng.schedule_at(10, [&first] { ++first; });
  eng.run_all();
  EXPECT_EQ(first, 1);

  // The pool slot of id1 is free; this schedule reuses it.
  eng.schedule_at(20, [&second] { ++second; });
  eng.cancel(id1);  // stale handle into a recycled slot: must be a no-op
  EXPECT_FALSE(eng.empty());
  eng.run_all();
  EXPECT_EQ(second, 1);
}

TEST(EngineGenerations, CancelReclaimsWheelSlotImmediately) {
  Engine eng;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = eng.schedule_after(micros(5), [] {});
    eng.cancel(id);
  }
  EXPECT_TRUE(eng.empty());
  EXPECT_EQ(eng.run_all(), 0u);
  EXPECT_EQ(eng.events_executed(), 0u);
}

}  // namespace
}  // namespace hrt::sim
