// Q32.32 fixed-point conversions, the lock-free AdmissionWord, and the
// admission fast path's conservative-soundness contract: a fast-path admit
// must imply the slow-path (double-arithmetic) answer — spurious rejects are
// allowed, spurious admits never (docs/API.md "Lock-free admission fast
// path").  The *Concurrency suites run under the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "global/ledger.hpp"
#include "nautilus/behavior.hpp"
#include "rt/fixed_point.hpp"
#include "rt/system.hpp"

namespace hrt {
namespace {

using rt::fp::AdmissionWord;
using rt::fp::from_double_ceil;
using rt::fp::from_double_floor;
using rt::fp::kMaxRaw;
using rt::fp::kOne;
using rt::fp::kUlp;
using rt::fp::Raw;
using rt::fp::sat_add;
using rt::fp::to_double;

// ---------- conversions ----------

TEST(FixedPoint, ZeroNegativeAndNanMapToZero) {
  EXPECT_EQ(from_double_ceil(0.0), 0u);
  EXPECT_EQ(from_double_ceil(-1.5), 0u);
  EXPECT_EQ(from_double_ceil(std::nan("")), 0u);
  EXPECT_EQ(from_double_floor(0.0), 0u);
  EXPECT_EQ(from_double_floor(-0.25), 0u);
}

TEST(FixedPoint, ExactDyadicsConvertExactly) {
  EXPECT_EQ(from_double_ceil(1.0), kOne);
  EXPECT_EQ(from_double_floor(1.0), kOne);
  EXPECT_EQ(from_double_ceil(0.5), kOne / 2);
  EXPECT_EQ(from_double_floor(0.5), kOne / 2);
  EXPECT_DOUBLE_EQ(to_double(kOne), 1.0);
  EXPECT_DOUBLE_EQ(to_double(kOne / 4), 0.25);
}

TEST(FixedPoint, CeilNeverUnderstatesFloorNeverOverstates) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 4.0);
  for (int i = 0; i < 10000; ++i) {
    const double u = dist(rng);
    const double up = to_double(from_double_ceil(u));
    const double down = to_double(from_double_floor(u));
    EXPECT_GE(up, u);
    EXPECT_LE(down, u);
    EXPECT_LE(up - u, kUlp);
    EXPECT_LE(u - down, kUlp);
  }
}

TEST(FixedPoint, DegenerateSentinelSaturates) {
  EXPECT_EQ(from_double_ceil(rt::fp::kSaturationThreshold), kMaxRaw);
  EXPECT_EQ(from_double_floor(1.0e300), kMaxRaw);
  // Saturated demand can never fit under a real capacity word.
  EXPECT_GT(from_double_ceil(rt::kDegenerateUtilization),
            from_double_floor(4096.0));
}

TEST(FixedPoint, SatAddSaturatesInsteadOfWrapping) {
  EXPECT_EQ(sat_add(1, 2), 3u);
  EXPECT_EQ(sat_add(kMaxRaw, 1), kMaxRaw);
  EXPECT_EQ(sat_add(kMaxRaw - 5, 10), kMaxRaw);
  EXPECT_EQ(sat_add(kMaxRaw, kMaxRaw), kMaxRaw);
}

// ---------- AdmissionWord semantics ----------

TEST(AdmissionWord, TryAdmitExactBoundary) {
  AdmissionWord w;
  const Raw cap = from_double_floor(1.0);
  EXPECT_TRUE(w.try_admit(cap, cap));  // exactly full is admissible
  EXPECT_EQ(w.raw(), cap);
  EXPECT_FALSE(w.try_admit(1, cap));  // one raw ulp over is not
  EXPECT_EQ(w.raw(), cap);            // failed admit changed nothing
}

TEST(AdmissionWord, ReleaseClampsAtZero) {
  AdmissionWord w;
  w.add(from_double_ceil(0.25));
  w.release(from_double_ceil(0.75));  // over-release clamps, like the
  EXPECT_EQ(w.raw(), 0u);             // shadow double ledgers do
}

TEST(AdmissionWord, OpsCounterFeedsUlpBudget) {
  AdmissionWord w;
  EXPECT_EQ(w.ops(), 0u);
  EXPECT_DOUBLE_EQ(w.ulp_budget(), 0.0);
  w.add(from_double_ceil(0.3));
  w.release(from_double_ceil(0.3));
  EXPECT_EQ(w.ops(), 2u);
  EXPECT_DOUBLE_EQ(w.ulp_budget(), 2.0 * kUlp);
  w.reset();
  EXPECT_EQ(w.ops(), 0u);
  EXPECT_EQ(w.raw(), 0u);
}

TEST(AdmissionWord, AddAccumulatesExactly) {
  AdmissionWord w;
  const Raw q = from_double_ceil(0.3);
  for (int i = 0; i < 100; ++i) w.add(q);
  EXPECT_EQ(w.raw(), 100 * q);  // integer accumulation is exact
  for (int i = 0; i < 100; ++i) w.release(q);
  EXPECT_EQ(w.raw(), 0u);
}

// ---------- concurrency (TSan CI job) ----------

TEST(AdmissionWordConcurrency, TryAdmitNeverOverCommits) {
  AdmissionWord w;
  const Raw quantum = kOne / 128;   // divides kOne exactly
  const Raw cap = kOne;             // room for exactly 128
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (w.try_admit(quantum, cap)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(admitted.load(), 128u);    // exactly capacity/quantum admits won
  EXPECT_EQ(w.raw(), cap);             // word sits exactly at capacity
  EXPECT_LE(w.raw(), cap);             // and never past it
}

TEST(AdmissionWordConcurrency, AdmitReleaseChurnBalances) {
  AdmissionWord w;
  const Raw quantum = kOne / 64;
  std::vector<std::thread> workers;
  workers.reserve(6);
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        w.add(quantum);
        w.release(quantum);
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(w.raw(), 0u);
  EXPECT_EQ(w.ops(), 6u * 2u * 2000u);
}

TEST(LedgerConcurrency, ConcurrentFeedsAndSnapshotsStayCoherent) {
  global::UtilizationLedger ledger(4, 0.79);
  const Raw q = from_double_ceil(0.01);
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    writers.emplace_back([&ledger, c, q] {
      for (int i = 0; i < 3000; ++i) {
        ledger.on_admit_raw(c, q);
        if (i % 2 == 1) ledger.on_release_raw(c, q);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (std::uint32_t c = 0; c < 4; ++c) {
        // Acquire-loaded snapshot: headroom is always within the physical
        // range even while the owner CPU is CAS-hammering the word.
        EXPECT_GE(ledger.headroom(c), 0.0);
        EXPECT_LE(ledger.committed_raw(c), from_double_ceil(3000 * 0.01));
      }
      (void)ledger.total_committed();
    }
  });
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  for (std::uint32_t c = 0; c < 4; ++c) {
    // 3000 admits, 1500 releases of the same quantum: exactly 1500 held.
    EXPECT_EQ(ledger.committed_raw(c), 1500 * q);
  }
  EXPECT_EQ(ledger.admits(), 4u * 3000u);
  EXPECT_EQ(ledger.releases(), 4u * 1500u);
}

// ---------- 10k-spec randomized fuzz: fast path vs slow path ----------
//
// Two identical systems differing only in Config::fast_admission run the
// same 10k-operation reserve/cancel churn.  Invariants:
//   (1) zero spurious fast admits — whenever the fast word probe says
//       "admit", the slow analysis on the identically-churned system
//       agrees (the ISSUE acceptance criterion);
//   (2) decision equivalence — because a fast-path reject falls back to
//       the slow analysis, the *final* admit decision is identical with
//       the fast path on and off, so ablating the flag only changes cost.

System::Options fuzz_options(bool fast) {
  System::Options o;
  o.spec = hw::MachineSpec::phi_small(1);
  o.smi_enabled = false;
  o.spec.smi.enabled = false;
  o.audit.enabled = true;
  o.sched.fast_admission = fast;
  return o;
}

TEST(AdmissionFastPathFuzz, TenThousandSpecsZeroSpuriousAdmits) {
  System fast_sys(fuzz_options(true));
  System slow_sys(fuzz_options(false));
  fast_sys.boot();
  slow_sys.boot();

  constexpr int kThreads = 48;
  std::vector<nk::Thread*> ft, st;
  for (int i = 0; i < kThreads; ++i) {
    auto mk = [] {
      return std::make_unique<nk::BusyLoopBehavior>(sim::micros(100));
    };
    ft.push_back(fast_sys.spawn("f" + std::to_string(i), mk(), 0));
    st.push_back(slow_sys.spawn("s" + std::to_string(i), mk(), 0));
  }

  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<sim::Nanos> period_us(50, 5000);
  std::uniform_int_distribution<int> pick(0, kThreads - 1);
  std::uniform_int_distribution<int> op(0, 9);

  std::uint64_t admits = 0, rejects = 0, fast_true = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    const int i = pick(rng);
    if (op(rng) < 2) {
      // Churn: drop a reservation (identically on both systems).
      fast_sys.sched(0).cancel_reservation(*ft[i]);
      slow_sys.sched(0).cancel_reservation(*st[i]);
      continue;
    }
    const sim::Nanos tau = sim::micros(period_us(rng));
    std::uniform_int_distribution<sim::Nanos> slice_ns(1, tau);
    const rt::Constraints c = rt::Constraints::periodic(0, tau, slice_ns(rng));

    const auto fast_view = fast_sys.sched(0).fast_path_decision(c);
    if (fast_view.has_value() && *fast_view) {
      ++fast_true;
      // Invariant (1): a fast admit is always confirmed by the slow path.
      ASSERT_TRUE(slow_sys.sched(0).probe_admission(c))
          << "spurious fast admit at iter " << iter << " for u="
          << c.utilization();
    }
    const bool a = fast_sys.sched(0).reserve_constraints(*ft[i], c);
    const bool b = slow_sys.sched(0).reserve_constraints(*st[i], c);
    // Invariant (2): final decisions identical (fallback covers rejects).
    ASSERT_EQ(a, b) << "decision divergence at iter " << iter << " for u="
                    << c.utilization();
    (a ? admits : rejects) += 1;
  }
  // The run must actually exercise both outcomes and the fast word.
  EXPECT_GT(admits, 100u);
  EXPECT_GT(rejects, 100u);
  EXPECT_GT(fast_true, 0u);
  EXPECT_GT(fast_sys.sched(0).stats().fast_admits, 0u);
  EXPECT_EQ(slow_sys.sched(0).stats().fast_admits, 0u);
}

}  // namespace
}  // namespace hrt
