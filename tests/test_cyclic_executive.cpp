// Cyclic executive builder (paper section 8 future work): frame-size
// selection, static schedule construction, validation.
#include <gtest/gtest.h>

#include "rt/cyclic_executive.hpp"
#include "sim/rng.hpp"

namespace hrt::rt {
namespace {

using sim::micros;

TEST(CyclicExec, HarmonicSetBuilds) {
  std::vector<PeriodicTask> s = {{micros(100), micros(25), 0},
                                 {micros(200), micros(40), 0},
                                 {micros(400), micros(60), 0}};
  auto ce = CyclicExecutiveBuilder::build(s);
  ASSERT_TRUE(ce.has_value());
  EXPECT_EQ(ce->hyperperiod, micros(400));
  EXPECT_GT(ce->frame, 0);
  EXPECT_EQ(ce->hyperperiod % ce->frame, 0);
  EXPECT_TRUE(ce->valid_for(s));
}

TEST(CyclicExec, OverloadedSetRejected) {
  std::vector<PeriodicTask> s = {{micros(100), micros(60), 0},
                                 {micros(100), micros(60), 0}};
  EXPECT_FALSE(CyclicExecutiveBuilder::build(s).has_value());
}

TEST(CyclicExec, MalformedSetRejected) {
  EXPECT_FALSE(CyclicExecutiveBuilder::build({{0, 10, 0}}).has_value());
  EXPECT_FALSE(
      CyclicExecutiveBuilder::build({{100, 200, 0}}).has_value());
  EXPECT_FALSE(CyclicExecutiveBuilder::build({}).has_value());
}

TEST(CyclicExec, CandidateFramesSatisfyConstraints) {
  std::vector<PeriodicTask> s = {{micros(100), micros(20), 0},
                                 {micros(150), micros(30), 0}};
  auto frames = CyclicExecutiveBuilder::candidate_frames(s);
  ASSERT_FALSE(frames.empty());
  const sim::Nanos h = micros(300);  // lcm(100, 150)
  for (sim::Nanos f : frames) {
    EXPECT_EQ(h % f, 0);
    for (const auto& t : s) {
      // 2f - gcd(f, tau) <= tau
      sim::Nanos a = f;
      sim::Nanos b = t.period;
      while (b != 0) {
        const sim::Nanos tmp = a % b;
        a = b;
        b = tmp;
      }
      EXPECT_LE(2 * f - a, t.period);
    }
  }
  // Largest first.
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_GT(frames[i - 1], frames[i]);
  }
}

TEST(CyclicExec, TaskAtCoversSchedule) {
  std::vector<PeriodicTask> s = {{micros(100), micros(50), 0},
                                 {micros(200), micros(80), 0}};
  auto ce = CyclicExecutiveBuilder::build(s);
  ASSERT_TRUE(ce.has_value());
  // Accumulate per-task time over one hyperperiod by sampling task_at.
  sim::Nanos t0 = 0;
  sim::Nanos t1 = 0;
  for (sim::Nanos t = 0; t < ce->hyperperiod; t += 1000) {
    const int w = ce->task_at(t);
    if (w == 0) t0 += 1000;
    if (w == 1) t1 += 1000;
  }
  // Task 0: 2 jobs x 50us, task 1: 1 job x 80us per 200us hyperperiod.
  EXPECT_NEAR(static_cast<double>(t0), micros(100), 4000.0);
  EXPECT_NEAR(static_cast<double>(t1), micros(80), 4000.0);
}

TEST(CyclicExec, ValidatorCatchesFrameOverflow) {
  std::vector<PeriodicTask> s = {{micros(100), micros(30), 0}};
  CyclicExecutive ce;
  ce.frame = micros(50);
  ce.hyperperiod = micros(100);
  ce.frames = {{FrameEntry{0, micros(60)}}, {}};  // 60 > 50: overflow
  EXPECT_FALSE(ce.valid_for(s));
}

TEST(CyclicExec, ValidatorCatchesUnderService) {
  std::vector<PeriodicTask> s = {{micros(100), micros(30), 0}};
  CyclicExecutive ce;
  ce.frame = micros(50);
  ce.hyperperiod = micros(100);
  ce.frames = {{FrameEntry{0, micros(10)}}, {}};  // only 10 of 30 delivered
  EXPECT_FALSE(ce.valid_for(s));
}

class CyclicExecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CyclicExecProperty, BuiltSchedulesAlwaysValidate) {
  sim::Rng rng(GetParam());
  int built = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<PeriodicTask> s;
    const int n = static_cast<int>(rng.uniform(1, 4));
    for (int i = 0; i < n; ++i) {
      const sim::Nanos tau = micros(50) << rng.uniform(0, 3);
      const sim::Nanos sigma = std::max<sim::Nanos>(1, tau * rng.uniform(5, 45) / 100);
      s.push_back({tau, sigma, 0});
    }
    auto ce = CyclicExecutiveBuilder::build(s);
    if (ce) {
      ++built;
      EXPECT_TRUE(ce->valid_for(s));
      // A built cyclic executive implies EDF feasibility.
      EXPECT_TRUE(edf_admissible(s, 1.0));
    }
  }
  EXPECT_GT(built, 10);  // the generator produces plenty of feasible sets
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicExecProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hrt::rt
