# Empty dependencies file for hrt.
# This may be replaced when dependencies are built.
