
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/tick_scheduler.cpp" "src/CMakeFiles/hrt.dir/baseline/tick_scheduler.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/baseline/tick_scheduler.cpp.o.d"
  "/root/repo/src/bsp/bsp.cpp" "src/CMakeFiles/hrt.dir/bsp/bsp.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/bsp/bsp.cpp.o.d"
  "/root/repo/src/group/group.cpp" "src/CMakeFiles/hrt.dir/group/group.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/group/group.cpp.o.d"
  "/root/repo/src/group/group_admission.cpp" "src/CMakeFiles/hrt.dir/group/group_admission.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/group/group_admission.cpp.o.d"
  "/root/repo/src/group/reusable_barrier.cpp" "src/CMakeFiles/hrt.dir/group/reusable_barrier.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/group/reusable_barrier.cpp.o.d"
  "/root/repo/src/hw/machine.cpp" "src/CMakeFiles/hrt.dir/hw/machine.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/hw/machine.cpp.o.d"
  "/root/repo/src/hw/machine_spec.cpp" "src/CMakeFiles/hrt.dir/hw/machine_spec.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/hw/machine_spec.cpp.o.d"
  "/root/repo/src/nautilus/buddy.cpp" "src/CMakeFiles/hrt.dir/nautilus/buddy.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/nautilus/buddy.cpp.o.d"
  "/root/repo/src/nautilus/executor.cpp" "src/CMakeFiles/hrt.dir/nautilus/executor.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/nautilus/executor.cpp.o.d"
  "/root/repo/src/nautilus/interrupt_thread.cpp" "src/CMakeFiles/hrt.dir/nautilus/interrupt_thread.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/nautilus/interrupt_thread.cpp.o.d"
  "/root/repo/src/nautilus/kernel.cpp" "src/CMakeFiles/hrt.dir/nautilus/kernel.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/nautilus/kernel.cpp.o.d"
  "/root/repo/src/nautilus/spinlock.cpp" "src/CMakeFiles/hrt.dir/nautilus/spinlock.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/nautilus/spinlock.cpp.o.d"
  "/root/repo/src/rt/admission.cpp" "src/CMakeFiles/hrt.dir/rt/admission.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/admission.cpp.o.d"
  "/root/repo/src/rt/ce_scheduler.cpp" "src/CMakeFiles/hrt.dir/rt/ce_scheduler.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/ce_scheduler.cpp.o.d"
  "/root/repo/src/rt/cyclic_executive.cpp" "src/CMakeFiles/hrt.dir/rt/cyclic_executive.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/cyclic_executive.cpp.o.d"
  "/root/repo/src/rt/local_scheduler.cpp" "src/CMakeFiles/hrt.dir/rt/local_scheduler.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/local_scheduler.cpp.o.d"
  "/root/repo/src/rt/report.cpp" "src/CMakeFiles/hrt.dir/rt/report.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/report.cpp.o.d"
  "/root/repo/src/rt/system.cpp" "src/CMakeFiles/hrt.dir/rt/system.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/system.cpp.o.d"
  "/root/repo/src/rt/taskset_gen.cpp" "src/CMakeFiles/hrt.dir/rt/taskset_gen.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/rt/taskset_gen.cpp.o.d"
  "/root/repo/src/runtime/team.cpp" "src/CMakeFiles/hrt.dir/runtime/team.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/runtime/team.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/hrt.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/hrt.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/sim/trace_export.cpp.o.d"
  "/root/repo/src/timesync/calibration.cpp" "src/CMakeFiles/hrt.dir/timesync/calibration.cpp.o" "gcc" "src/CMakeFiles/hrt.dir/timesync/calibration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
