file(REMOVE_RECURSE
  "libhrt.a"
)
