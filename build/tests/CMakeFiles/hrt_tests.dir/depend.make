# Empty dependencies file for hrt_tests.
# This may be replaced when dependencies are built.
