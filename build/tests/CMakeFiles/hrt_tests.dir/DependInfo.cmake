
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_admission.cpp" "tests/CMakeFiles/hrt_tests.dir/test_admission.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_admission.cpp.o.d"
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/hrt_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_bsp.cpp" "tests/CMakeFiles/hrt_tests.dir/test_bsp.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_bsp.cpp.o.d"
  "/root/repo/tests/test_buddy.cpp" "tests/CMakeFiles/hrt_tests.dir/test_buddy.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_buddy.cpp.o.d"
  "/root/repo/tests/test_constraints_report.cpp" "tests/CMakeFiles/hrt_tests.dir/test_constraints_report.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_constraints_report.cpp.o.d"
  "/root/repo/tests/test_cyclic_executive.cpp" "tests/CMakeFiles/hrt_tests.dir/test_cyclic_executive.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_cyclic_executive.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/hrt_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/hrt_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/hrt_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/hrt_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_group.cpp" "tests/CMakeFiles/hrt_tests.dir/test_group.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_group.cpp.o.d"
  "/root/repo/tests/test_hw.cpp" "tests/CMakeFiles/hrt_tests.dir/test_hw.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_hw.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/hrt_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_main.cpp" "tests/CMakeFiles/hrt_tests.dir/test_main.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_main.cpp.o.d"
  "/root/repo/tests/test_queues.cpp" "tests/CMakeFiles/hrt_tests.dir/test_queues.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_queues.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/hrt_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/hrt_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hrt_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/hrt_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_taskset_spinlock.cpp" "tests/CMakeFiles/hrt_tests.dir/test_taskset_spinlock.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_taskset_spinlock.cpp.o.d"
  "/root/repo/tests/test_timesync.cpp" "tests/CMakeFiles/hrt_tests.dir/test_timesync.cpp.o" "gcc" "tests/CMakeFiles/hrt_tests.dir/test_timesync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hrt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
