# Empty compiler generated dependencies file for cyclic_executive_demo.
# This may be replaced when dependencies are built.
