file(REMOVE_RECURSE
  "CMakeFiles/cyclic_executive_demo.dir/cyclic_executive_demo.cpp.o"
  "CMakeFiles/cyclic_executive_demo.dir/cyclic_executive_demo.cpp.o.d"
  "cyclic_executive_demo"
  "cyclic_executive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_executive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
