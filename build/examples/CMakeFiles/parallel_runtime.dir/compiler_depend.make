# Empty compiler generated dependencies file for parallel_runtime.
# This may be replaced when dependencies are built.
