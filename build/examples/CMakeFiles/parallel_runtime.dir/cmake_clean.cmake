file(REMOVE_RECURSE
  "CMakeFiles/parallel_runtime.dir/parallel_runtime.cpp.o"
  "CMakeFiles/parallel_runtime.dir/parallel_runtime.cpp.o.d"
  "parallel_runtime"
  "parallel_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
