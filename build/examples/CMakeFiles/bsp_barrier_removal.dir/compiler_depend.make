# Empty compiler generated dependencies file for bsp_barrier_removal.
# This may be replaced when dependencies are built.
