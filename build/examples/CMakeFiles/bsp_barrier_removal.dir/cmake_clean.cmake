file(REMOVE_RECURSE
  "CMakeFiles/bsp_barrier_removal.dir/bsp_barrier_removal.cpp.o"
  "CMakeFiles/bsp_barrier_removal.dir/bsp_barrier_removal.cpp.o.d"
  "bsp_barrier_removal"
  "bsp_barrier_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_barrier_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
