file(REMOVE_RECURSE
  "CMakeFiles/throttled_group.dir/throttled_group.cpp.o"
  "CMakeFiles/throttled_group.dir/throttled_group.cpp.o.d"
  "throttled_group"
  "throttled_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttled_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
