# Empty dependencies file for throttled_group.
# This may be replaced when dependencies are built.
