# Empty compiler generated dependencies file for fig08_misstime_phi.
# This may be replaced when dependencies are built.
