file(REMOVE_RECURSE
  "../bench/fig08_misstime_phi"
  "../bench/fig08_misstime_phi.pdb"
  "CMakeFiles/fig08_misstime_phi.dir/fig08_misstime_phi.cpp.o"
  "CMakeFiles/fig08_misstime_phi.dir/fig08_misstime_phi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_misstime_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
