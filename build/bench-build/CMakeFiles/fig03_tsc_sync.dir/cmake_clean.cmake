file(REMOVE_RECURSE
  "../bench/fig03_tsc_sync"
  "../bench/fig03_tsc_sync.pdb"
  "CMakeFiles/fig03_tsc_sync.dir/fig03_tsc_sync.cpp.o"
  "CMakeFiles/fig03_tsc_sync.dir/fig03_tsc_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_tsc_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
