file(REMOVE_RECURSE
  "../bench/fig11_group_sync8"
  "../bench/fig11_group_sync8.pdb"
  "CMakeFiles/fig11_group_sync8.dir/fig11_group_sync8.cpp.o"
  "CMakeFiles/fig11_group_sync8.dir/fig11_group_sync8.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_group_sync8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
