# Empty dependencies file for fig11_group_sync8.
# This may be replaced when dependencies are built.
