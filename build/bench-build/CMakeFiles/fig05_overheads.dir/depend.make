# Empty dependencies file for fig05_overheads.
# This may be replaced when dependencies are built.
