file(REMOVE_RECURSE
  "../bench/fig05_overheads"
  "../bench/fig05_overheads.pdb"
  "CMakeFiles/fig05_overheads.dir/fig05_overheads.cpp.o"
  "CMakeFiles/fig05_overheads.dir/fig05_overheads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
