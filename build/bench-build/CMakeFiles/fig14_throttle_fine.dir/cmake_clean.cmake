file(REMOVE_RECURSE
  "../bench/fig14_throttle_fine"
  "../bench/fig14_throttle_fine.pdb"
  "CMakeFiles/fig14_throttle_fine.dir/fig14_throttle_fine.cpp.o"
  "CMakeFiles/fig14_throttle_fine.dir/fig14_throttle_fine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_throttle_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
