# Empty dependencies file for fig14_throttle_fine.
# This may be replaced when dependencies are built.
