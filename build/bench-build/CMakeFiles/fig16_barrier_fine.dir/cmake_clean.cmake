file(REMOVE_RECURSE
  "../bench/fig16_barrier_fine"
  "../bench/fig16_barrier_fine.pdb"
  "CMakeFiles/fig16_barrier_fine.dir/fig16_barrier_fine.cpp.o"
  "CMakeFiles/fig16_barrier_fine.dir/fig16_barrier_fine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_barrier_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
