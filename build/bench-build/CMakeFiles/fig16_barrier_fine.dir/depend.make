# Empty dependencies file for fig16_barrier_fine.
# This may be replaced when dependencies are built.
