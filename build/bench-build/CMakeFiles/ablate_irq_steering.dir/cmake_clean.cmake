file(REMOVE_RECURSE
  "../bench/ablate_irq_steering"
  "../bench/ablate_irq_steering.pdb"
  "CMakeFiles/ablate_irq_steering.dir/ablate_irq_steering.cpp.o"
  "CMakeFiles/ablate_irq_steering.dir/ablate_irq_steering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_irq_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
