# Empty compiler generated dependencies file for ablate_irq_steering.
# This may be replaced when dependencies are built.
