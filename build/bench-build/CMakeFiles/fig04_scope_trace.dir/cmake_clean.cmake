file(REMOVE_RECURSE
  "../bench/fig04_scope_trace"
  "../bench/fig04_scope_trace.pdb"
  "CMakeFiles/fig04_scope_trace.dir/fig04_scope_trace.cpp.o"
  "CMakeFiles/fig04_scope_trace.dir/fig04_scope_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_scope_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
