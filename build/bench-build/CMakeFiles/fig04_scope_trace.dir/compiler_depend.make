# Empty compiler generated dependencies file for fig04_scope_trace.
# This may be replaced when dependencies are built.
