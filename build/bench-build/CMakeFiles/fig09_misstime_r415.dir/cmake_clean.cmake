file(REMOVE_RECURSE
  "../bench/fig09_misstime_r415"
  "../bench/fig09_misstime_r415.pdb"
  "CMakeFiles/fig09_misstime_r415.dir/fig09_misstime_r415.cpp.o"
  "CMakeFiles/fig09_misstime_r415.dir/fig09_misstime_r415.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_misstime_r415.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
