# Empty compiler generated dependencies file for fig09_misstime_r415.
# This may be replaced when dependencies are built.
