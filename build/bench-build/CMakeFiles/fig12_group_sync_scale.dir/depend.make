# Empty dependencies file for fig12_group_sync_scale.
# This may be replaced when dependencies are built.
