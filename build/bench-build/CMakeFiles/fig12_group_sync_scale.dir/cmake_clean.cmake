file(REMOVE_RECURSE
  "../bench/fig12_group_sync_scale"
  "../bench/fig12_group_sync_scale.pdb"
  "CMakeFiles/fig12_group_sync_scale.dir/fig12_group_sync_scale.cpp.o"
  "CMakeFiles/fig12_group_sync_scale.dir/fig12_group_sync_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_group_sync_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
