# Empty compiler generated dependencies file for ablate_cyclic_executive.
# This may be replaced when dependencies are built.
