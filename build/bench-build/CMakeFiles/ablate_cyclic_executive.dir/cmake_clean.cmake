file(REMOVE_RECURSE
  "../bench/ablate_cyclic_executive"
  "../bench/ablate_cyclic_executive.pdb"
  "CMakeFiles/ablate_cyclic_executive.dir/ablate_cyclic_executive.cpp.o"
  "CMakeFiles/ablate_cyclic_executive.dir/ablate_cyclic_executive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cyclic_executive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
