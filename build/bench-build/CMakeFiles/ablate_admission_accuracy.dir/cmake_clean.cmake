file(REMOVE_RECURSE
  "../bench/ablate_admission_accuracy"
  "../bench/ablate_admission_accuracy.pdb"
  "CMakeFiles/ablate_admission_accuracy.dir/ablate_admission_accuracy.cpp.o"
  "CMakeFiles/ablate_admission_accuracy.dir/ablate_admission_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_admission_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
