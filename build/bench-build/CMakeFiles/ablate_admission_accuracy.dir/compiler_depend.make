# Empty compiler generated dependencies file for ablate_admission_accuracy.
# This may be replaced when dependencies are built.
