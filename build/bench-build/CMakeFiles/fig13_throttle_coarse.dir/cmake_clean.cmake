file(REMOVE_RECURSE
  "../bench/fig13_throttle_coarse"
  "../bench/fig13_throttle_coarse.pdb"
  "CMakeFiles/fig13_throttle_coarse.dir/fig13_throttle_coarse.cpp.o"
  "CMakeFiles/fig13_throttle_coarse.dir/fig13_throttle_coarse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_throttle_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
