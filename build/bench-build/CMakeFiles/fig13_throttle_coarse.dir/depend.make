# Empty dependencies file for fig13_throttle_coarse.
# This may be replaced when dependencies are built.
