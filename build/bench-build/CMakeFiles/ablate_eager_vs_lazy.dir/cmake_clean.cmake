file(REMOVE_RECURSE
  "../bench/ablate_eager_vs_lazy"
  "../bench/ablate_eager_vs_lazy.pdb"
  "CMakeFiles/ablate_eager_vs_lazy.dir/ablate_eager_vs_lazy.cpp.o"
  "CMakeFiles/ablate_eager_vs_lazy.dir/ablate_eager_vs_lazy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_eager_vs_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
