# Empty dependencies file for ablate_eager_vs_lazy.
# This may be replaced when dependencies are built.
