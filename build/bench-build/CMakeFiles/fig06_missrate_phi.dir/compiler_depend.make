# Empty compiler generated dependencies file for fig06_missrate_phi.
# This may be replaced when dependencies are built.
