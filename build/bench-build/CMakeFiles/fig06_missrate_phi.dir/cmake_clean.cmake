file(REMOVE_RECURSE
  "../bench/fig06_missrate_phi"
  "../bench/fig06_missrate_phi.pdb"
  "CMakeFiles/fig06_missrate_phi.dir/fig06_missrate_phi.cpp.o"
  "CMakeFiles/fig06_missrate_phi.dir/fig06_missrate_phi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_missrate_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
