# Empty dependencies file for fig15_barrier_coarse.
# This may be replaced when dependencies are built.
