file(REMOVE_RECURSE
  "../bench/fig15_barrier_coarse"
  "../bench/fig15_barrier_coarse.pdb"
  "CMakeFiles/fig15_barrier_coarse.dir/fig15_barrier_coarse.cpp.o"
  "CMakeFiles/fig15_barrier_coarse.dir/fig15_barrier_coarse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_barrier_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
