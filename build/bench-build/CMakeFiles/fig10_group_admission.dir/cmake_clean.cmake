file(REMOVE_RECURSE
  "../bench/fig10_group_admission"
  "../bench/fig10_group_admission.pdb"
  "CMakeFiles/fig10_group_admission.dir/fig10_group_admission.cpp.o"
  "CMakeFiles/fig10_group_admission.dir/fig10_group_admission.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_group_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
