# Empty dependencies file for fig10_group_admission.
# This may be replaced when dependencies are built.
