# Empty compiler generated dependencies file for ablate_util_limit.
# This may be replaced when dependencies are built.
