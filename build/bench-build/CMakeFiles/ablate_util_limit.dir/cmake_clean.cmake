file(REMOVE_RECURSE
  "../bench/ablate_util_limit"
  "../bench/ablate_util_limit.pdb"
  "CMakeFiles/ablate_util_limit.dir/ablate_util_limit.cpp.o"
  "CMakeFiles/ablate_util_limit.dir/ablate_util_limit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_util_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
