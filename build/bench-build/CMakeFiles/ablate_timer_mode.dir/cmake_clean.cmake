file(REMOVE_RECURSE
  "../bench/ablate_timer_mode"
  "../bench/ablate_timer_mode.pdb"
  "CMakeFiles/ablate_timer_mode.dir/ablate_timer_mode.cpp.o"
  "CMakeFiles/ablate_timer_mode.dir/ablate_timer_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_timer_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
