# Empty compiler generated dependencies file for ablate_timer_mode.
# This may be replaced when dependencies are built.
