# Empty compiler generated dependencies file for fig07_missrate_r415.
# This may be replaced when dependencies are built.
