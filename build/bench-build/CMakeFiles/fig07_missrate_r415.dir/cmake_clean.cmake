file(REMOVE_RECURSE
  "../bench/fig07_missrate_r415"
  "../bench/fig07_missrate_r415.pdb"
  "CMakeFiles/fig07_missrate_r415.dir/fig07_missrate_r415.cpp.o"
  "CMakeFiles/fig07_missrate_r415.dir/fig07_missrate_r415.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_missrate_r415.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
