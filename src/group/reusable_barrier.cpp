#include "group/reusable_barrier.hpp"

namespace hrt::grp {

ReusableBarrier::ReusableBarrier(nk::Kernel& kernel, std::uint32_t expected)
    : kernel_(kernel), expected_(expected) {
  const auto& spec = kernel_.machine().spec();
  atomic_ns_ = spec.freq.cycles_to_ns_ceil(spec.cost.atomic_rmw +
                                           spec.cost.cacheline_transfer);
}

nk::WaitFlag& ReusableBarrier::flag_for(std::uint32_t gen) {
  while (flags_.size() <= gen) {
    flags_.push_back(std::make_unique<nk::WaitFlag>(kernel_));
  }
  return *flags_[gen];
}

nk::Action ReusableBarrier::arrive_action(Ticket* ticket) {
  return nk::Action::atomic(&line_, atomic_ns_, [this, ticket](nk::ThreadCtx&) {
    ticket->generation = generation_;
    if (++arrivals_ == expected_) {
      arrivals_ = 0;
      const std::uint32_t gen = generation_++;
      flag_for(gen).set();
    }
  });
}

nk::Action ReusableBarrier::wait_action(const Ticket* ticket) {
  return nk::Action::spin_until(&flag_for(ticket->generation));
}

}  // namespace hrt::grp
