// Thread groups (section 4.2).
//
// "Threads can create, join, leave, and destroy named groups.  A group can
// also have state associated with it, for example the timing constraints
// that all members of a group wish to share.  Group admission control also
// builds on other basic group features, namely distributed election,
// barrier, reduction, and broadcast, all scoped to the group."
//
// All coordination primitives are built from serialized shared-memory
// operations (SeqResource) and spin flags (WaitFlag), so their cost grows
// linearly with member count — the simple scheme the paper measures in
// Figure 10.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nautilus/action.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/sync.hpp"
#include "rt/constraints.hpp"

namespace hrt::grp {

/// Single-use spin barrier with serialized departure.
//
// Arrival is an atomic fetch-add on a shared line; everyone but the last
// arrival spins; departure re-reads the line, which serializes the spinners'
// cache misses and produces the per-thread departure delay delta that phase
// correction compensates (section 4.4).
class GroupBarrier {
 public:
  GroupBarrier(nk::Kernel& kernel, std::uint32_t expected);

  /// Step 0: the O(n) member-table scan each participant performs (local
  /// work, runs in parallel).
  [[nodiscard]] nk::Action scan_action();
  /// Step 1: arrive.  The last arrival releases the barrier.
  [[nodiscard]] nk::Action arrive_action();
  /// Step 2: spin until released.
  [[nodiscard]] nk::Action wait_action();
  /// Step 3: serialized departure.  `fx(ctx, order)` runs with this
  /// thread's 0-based release order.
  [[nodiscard]] nk::Action depart_action(
      std::function<void(nk::ThreadCtx&, int order)> fx = nullptr);

  [[nodiscard]] std::uint32_t expected() const { return expected_; }
  [[nodiscard]] std::uint32_t arrivals() const { return arrivals_; }
  [[nodiscard]] bool released() const { return flag_.is_set(); }

 private:
  nk::Kernel& kernel_;
  std::uint32_t expected_;
  std::uint32_t arrivals_ = 0;
  std::uint32_t departures_ = 0;
  nk::SeqResource line_;       // the barrier's cache line
  nk::WaitFlag flag_;
  sim::Nanos atomic_ns_;
  sim::Nanos transfer_ns_;
};

class ThreadGroup {
 public:
  ThreadGroup(nk::Kernel& kernel, std::string name,
              std::uint32_t expected_members);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t expected() const { return expected_; }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(members_.size());
  }
  [[nodiscard]] const std::vector<nk::Thread*>& members() const {
    return members_;
  }
  [[nodiscard]] nk::Kernel& kernel() { return kernel_; }

  /// Serialized join: the emitting thread becomes a member on completion.
  [[nodiscard]] nk::Action join_action(
      std::function<void(nk::ThreadCtx&)> fx = nullptr);
  /// Serialized leave.
  [[nodiscard]] nk::Action leave_action();

  /// Numbered barriers: every member asking for the same key gets the same
  /// instance (created on first use, expecting all members).
  GroupBarrier& barrier(std::uint32_t key);

  /// Group-scoped reduction helper: serialized add into an accumulator.
  [[nodiscard]] nk::Action reduce_add_action(std::int64_t value);
  [[nodiscard]] std::int64_t reduction_value() const { return reduction_; }
  void reset_reduction() { reduction_ = 0; }

  /// Broadcast: leader publishes a value; members read it (no cost beyond
  /// the barrier that usually precedes the read).
  void publish(std::int64_t v) { broadcast_ = v; }
  [[nodiscard]] std::int64_t published() const { return broadcast_; }

  /// Leader election state (used by group admission).
  [[nodiscard]] nk::Action elect_action();
  [[nodiscard]] nk::Thread* leader() const { return leader_; }

  /// Group lock + attached constraints (shared state).
  void lock(nk::Thread* owner) { lock_owner_ = owner; }
  void unlock() { lock_owner_ = nullptr; }
  [[nodiscard]] bool locked() const { return lock_owner_ != nullptr; }
  void attach_constraints(const rt::Constraints& c) { constraints_ = c; }
  [[nodiscard]] const rt::Constraints& constraints() const {
    return constraints_;
  }

  /// Admission failure accumulator (reduction target of Algorithm 1).
  void reset_admission_round() {
    failures_ = 0;
    leader_ = nullptr;
  }
  void add_failure() { ++failures_; }
  [[nodiscard]] std::uint32_t failures() const { return failures_; }

  /// The calibrated per-thread barrier departure delay (delta of section
  /// 4.4): one serialized cache-line transfer.
  [[nodiscard]] sim::Nanos departure_delta() const;

  /// Group-internal shared lines (exposed for the election/lock actions).
  nk::SeqResource& elect_line() { return elect_line_; }
  nk::SeqResource& lock_line() { return lock_line_; }

 private:
  nk::Kernel& kernel_;
  std::string name_;
  std::uint32_t expected_;
  std::vector<nk::Thread*> members_;
  std::vector<std::pair<std::uint32_t, std::unique_ptr<GroupBarrier>>>
      barriers_;

  nk::SeqResource join_line_;
  nk::SeqResource elect_line_;
  nk::SeqResource lock_line_;
  nk::SeqResource reduce_line_;

  nk::Thread* leader_ = nullptr;
  nk::Thread* lock_owner_ = nullptr;
  rt::Constraints constraints_;
  std::int64_t reduction_ = 0;
  std::int64_t broadcast_ = 0;
  std::uint32_t failures_ = 0;
};

/// Named-group registry ("threads can create, join, leave, and destroy
/// named groups").
class GroupRegistry {
 public:
  explicit GroupRegistry(nk::Kernel& kernel) : kernel_(kernel) {}

  ThreadGroup* create(const std::string& name, std::uint32_t expected);
  [[nodiscard]] ThreadGroup* find(const std::string& name) const;
  /// The group `t` is a member of, or null.  Group members are pinned by
  /// their collectives, so the rebalancer treats them as immovable.
  [[nodiscard]] ThreadGroup* group_of(const nk::Thread* t) const;
  bool destroy(const std::string& name);
  [[nodiscard]] std::size_t count() const { return groups_.size(); }

 private:
  nk::Kernel& kernel_;
  std::vector<std::unique_ptr<ThreadGroup>> groups_;
};

}  // namespace hrt::grp
