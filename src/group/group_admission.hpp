// Group admission control: Algorithm 1 of section 4.3, plus the phase
// correction of section 4.4.
//
// Every member of the group runs this protocol (the equivalent of calling
// nk_group_sched_change_constraints(group, constraints)):
//
//   conduct leader election
//   if leader: lock group; attach constraints
//   group barrier
//   conduct local admission control          (reserve; thread stays aperiodic)
//   group reduction over errors
//   if any failed: cancel reservation; barrier; leader unlocks; fail
//   group barrier -> my release order i
//   phase-correct my schedule: phi_i = phi + (n - i) * delta
//   leader unlocks
//   commit constraints (the thread becomes periodic/sporadic, first arrival
//   at Gamma_i + phi_i)
//
// Because release order i compensates the serialized barrier departure and
// Gamma_i tracks it, all members' first arrivals land at (nearly) the same
// wall-clock instant — after which the local schedulers keep them in
// lockstep with *no* further communication (section 4.1).
//
// The protocol is a sub-state-machine embedded in a host Behavior: call
// next() for the thread's next action until done().
#pragma once

#include <cstdint>
#include <functional>

#include "group/group.hpp"
#include "nautilus/behavior.hpp"
#include "rt/local_scheduler.hpp"

namespace hrt::grp {

class GroupChangeConstraints {
 public:
  /// Per-thread step timing (wall clock), for Figure 10.
  struct Timing {
    sim::Nanos start = -1;
    sim::Nanos join_done = -1;        // if the protocol performed the join
    sim::Nanos election_done = -1;
    sim::Nanos admission_done = -1;   // local admission + error reduction
    sim::Nanos barrier_done = -1;     // final barrier + phase correction
    sim::Nanos total_done = -1;
  };

  /// `constraints` must be periodic or sporadic; `join_first` makes the
  /// protocol begin with a group join (the benchmark measures that step
  /// separately).
  GroupChangeConstraints(ThreadGroup& group, rt::Constraints constraints,
                         bool join_first = false);

  /// Emit the next protocol action.  Call only while !done().
  [[nodiscard]] nk::Action next(nk::ThreadCtx& ctx);

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool succeeded() const { return success_; }
  [[nodiscard]] int release_order() const { return release_order_; }
  [[nodiscard]] const Timing& timing() const { return timing_; }
  /// If true, the caller disabled phase correction (ablation / Figure 11's
  /// "phase correction disabled" configuration).
  void set_phase_correction(bool on) { phase_correction_ = on; }

 private:
  enum class Step : std::uint8_t {
    kJoin,
    kElect,
    kLeaderSetup,
    kBarrierA,       // three sub-steps each: arrive, wait, depart
    kReserve,
    kReduceErrors,
    kBarrierB,
    kCheckErrors,
    kCancel,         // failure path
    kBarrierFail,
    kFinalBarrier,
    kCommit,
    kDone,
  };

  [[nodiscard]] nk::Action barrier_step(GroupBarrier& b, Step next_step,
                                        bool record_order);

  ThreadGroup& group_;
  rt::Constraints constraints_;
  Step step_;
  int barrier_phase_ = 0;  // 0 arrive, 1 wait, 2 depart
  bool done_ = false;
  bool success_ = false;
  bool phase_correction_ = true;
  bool reserved_ok_ = false;
  int release_order_ = -1;
  Timing timing_;
};

/// Convenience behavior: join + group admission, then delegate to an inner
/// behavior (the "application") which starts executing at the first
/// synchronized arrival.  On admission failure the thread exits.
class GroupAdmitThenBehavior final : public nk::Behavior {
 public:
  GroupAdmitThenBehavior(ThreadGroup& group, rt::Constraints constraints,
                         std::unique_ptr<nk::Behavior> inner,
                         bool join_first = true);

  nk::Action next(nk::ThreadCtx& ctx) override;

  [[nodiscard]] std::string describe() const override {
    return "group-admit";
  }
  [[nodiscard]] const GroupChangeConstraints& protocol() const {
    return protocol_;
  }
  [[nodiscard]] GroupChangeConstraints& protocol_mutable() {
    return protocol_;
  }

 private:
  GroupChangeConstraints protocol_;
  std::unique_ptr<nk::Behavior> inner_;
};

}  // namespace hrt::grp
