// Reusable (generation-counting) spin barrier for iterative workloads.
//
// GroupBarrier (group.hpp) is single-use, matching the distinct barriers of
// the admission protocol.  BSP iterations need the same barrier object every
// round; this one tracks a generation per round, with a fresh WaitFlag per
// generation and the same serialized-arrival cost model ("optional_barrier"
// of section 6.1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nautilus/action.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/sync.hpp"

namespace hrt::grp {

class ReusableBarrier {
 public:
  ReusableBarrier(nk::Kernel& kernel, std::uint32_t expected);

  /// A participant's per-round handle: arrive fills in the generation the
  /// thread must then wait on.
  struct Ticket {
    std::uint32_t generation = 0;
  };

  /// Step 1: serialized arrival; the last arrival of the round releases it.
  [[nodiscard]] nk::Action arrive_action(Ticket* ticket);
  /// Step 2: spin until the ticket's generation is released.
  [[nodiscard]] nk::Action wait_action(const Ticket* ticket);

  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  [[nodiscard]] std::uint64_t rounds_completed() const { return generation_; }

 private:
  nk::WaitFlag& flag_for(std::uint32_t gen);

  nk::Kernel& kernel_;
  std::uint32_t expected_;
  std::uint32_t arrivals_ = 0;
  std::uint32_t generation_ = 0;
  nk::SeqResource line_;
  sim::Nanos atomic_ns_;
  std::vector<std::unique_ptr<nk::WaitFlag>> flags_;
};

}  // namespace hrt::grp
