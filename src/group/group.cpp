#include "group/group.hpp"

#include <algorithm>
#include <string>

#include "audit/auditor.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::grp {

namespace {
sim::Nanos atomic_ns(nk::Kernel& k) {
  const auto& spec = k.machine().spec();
  return spec.freq.cycles_to_ns_ceil(spec.cost.atomic_rmw);
}
sim::Nanos transfer_ns(nk::Kernel& k) {
  const auto& spec = k.machine().spec();
  return spec.freq.cycles_to_ns_ceil(spec.cost.cacheline_transfer);
}
}  // namespace

GroupBarrier::GroupBarrier(nk::Kernel& kernel, std::uint32_t expected)
    : kernel_(kernel),
      expected_(expected),
      flag_(kernel),
      atomic_ns_(atomic_ns(kernel)),
      transfer_ns_(transfer_ns(kernel)) {}

nk::Action GroupBarrier::scan_action() {
  // The "simple scheme" of section 4.3: each participant does an O(n) scan
  // of the member table before arriving, which is what makes every group
  // collective's per-thread cost grow linearly with group size (Figure 10).
  // The scan is local work, so it runs in parallel across members.
  const auto& spec = kernel_.machine().spec();
  const sim::Nanos scan = spec.freq.cycles_to_ns_ceil(
      spec.cost.group_scan_per_member * static_cast<sim::Cycles>(expected_));
  return nk::Action::compute(scan);
}

nk::Action GroupBarrier::arrive_action() {
  return nk::Action::atomic(&line_, atomic_ns_, [this](nk::ThreadCtx& ctx) {
    const bool released = ++arrivals_ == expected_;
    if (released) {
      flag_.set();
    }
    if (auto* tel = kernel_.telemetry()) {
      tel->on_event(ctx.self.cpu, ctx.wall_now,
                    telemetry::EventKind::kBarrierArrive,
                    static_cast<std::uint32_t>(ctx.self.id),
                    static_cast<std::int64_t>(arrivals_));
      if (released) {
        tel->on_event(ctx.self.cpu, ctx.wall_now,
                      telemetry::EventKind::kBarrierRelease,
                      static_cast<std::uint32_t>(ctx.self.id),
                      static_cast<std::int64_t>(arrivals_));
      }
    }
    audit::Auditor* aud = kernel_.auditor();
    if (aud != nullptr && aud->enabled() && aud->config().check_group) {
      aud->count_check();
      if (arrivals_ > expected_) {
        aud->record(audit::Invariant::kGroup, ctx.self.cpu, ctx.wall_now,
                    "barrier arrivals " + std::to_string(arrivals_) +
                        " exceed expected " + std::to_string(expected_));
      }
    }
  });
}

nk::Action GroupBarrier::wait_action() {
  return nk::Action::spin_until(&flag_);
}

nk::Action GroupBarrier::depart_action(
    std::function<void(nk::ThreadCtx&, int)> fx) {
  return nk::Action::atomic(
      &line_, transfer_ns_, [this, fx = std::move(fx)](nk::ThreadCtx& ctx) {
        const int order = static_cast<int>(departures_++);
        audit::Auditor* aud = kernel_.auditor();
        if (aud != nullptr && aud->enabled() && aud->config().check_group) {
          aud->count_check();
          if (departures_ > arrivals_) {
            aud->record(audit::Invariant::kGroup, ctx.self.cpu, ctx.wall_now,
                        "barrier departures " + std::to_string(departures_) +
                            " exceed arrivals " + std::to_string(arrivals_));
          }
        }
        if (fx) fx(ctx, order);
      });
}

ThreadGroup::ThreadGroup(nk::Kernel& kernel, std::string name,
                         std::uint32_t expected_members)
    : kernel_(kernel), name_(std::move(name)), expected_(expected_members) {}

nk::Action ThreadGroup::join_action(std::function<void(nk::ThreadCtx&)> fx) {
  // Join takes the group lock's line plus a list insertion: a few transfers.
  const sim::Nanos cost = 3 * transfer_ns(kernel_);
  return nk::Action::atomic(&join_line_, cost,
                            [this, fx = std::move(fx)](nk::ThreadCtx& ctx) {
                              members_.push_back(&ctx.self);
                              if (fx) fx(ctx);
                            });
}

nk::Action ThreadGroup::leave_action() {
  const sim::Nanos cost = 3 * transfer_ns(kernel_);
  return nk::Action::atomic(&join_line_, cost, [this](nk::ThreadCtx& ctx) {
    auto it = std::find(members_.begin(), members_.end(), &ctx.self);
    if (it != members_.end()) members_.erase(it);
  });
}

GroupBarrier& ThreadGroup::barrier(std::uint32_t key) {
  for (auto& [k, b] : barriers_) {
    if (k == key) return *b;
  }
  barriers_.emplace_back(
      key, std::make_unique<GroupBarrier>(kernel_, expected_));
  return *barriers_.back().second;
}

nk::Action ThreadGroup::reduce_add_action(std::int64_t value) {
  // O(n) local scan (simple linear reduction scheme) followed by the
  // commutative add; contention on the accumulator line is negligible next
  // to the scan, so the scan runs as parallel compute.
  const auto& spec = kernel_.machine().spec();
  const sim::Nanos scan = spec.freq.cycles_to_ns_ceil(
      spec.cost.group_scan_per_member * static_cast<sim::Cycles>(expected_));
  return nk::Action::compute(scan + atomic_ns(kernel_),
                             [this, value](nk::ThreadCtx&) {
                               reduction_ += value;
                             });
}

nk::Action ThreadGroup::elect_action() {
  // Simple linear election: scan the member table (O(n), parallel local
  // work), then compare-and-swap the leader slot; first CAS wins.
  const auto& spec = kernel_.machine().spec();
  const sim::Nanos scan = spec.freq.cycles_to_ns_ceil(
      spec.cost.group_scan_per_member * static_cast<sim::Cycles>(expected_) /
      2);
  return nk::Action::compute(atomic_ns(kernel_) + scan,
                             [this](nk::ThreadCtx& ctx) {
                               if (leader_ == nullptr) leader_ = &ctx.self;
                             });
}

sim::Nanos ThreadGroup::departure_delta() const {
  return transfer_ns(kernel_);
}

ThreadGroup* GroupRegistry::create(const std::string& name,
                                   std::uint32_t expected) {
  if (find(name) != nullptr) return nullptr;
  groups_.push_back(std::make_unique<ThreadGroup>(kernel_, name, expected));
  return groups_.back().get();
}

ThreadGroup* GroupRegistry::find(const std::string& name) const {
  for (const auto& g : groups_) {
    if (g->name() == name) return g.get();
  }
  return nullptr;
}

ThreadGroup* GroupRegistry::group_of(const nk::Thread* t) const {
  for (const auto& g : groups_) {
    for (nk::Thread* m : g->members()) {
      if (m == t) return g.get();
    }
  }
  return nullptr;
}

bool GroupRegistry::destroy(const std::string& name) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if ((*it)->name() == name) {
      groups_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace hrt::grp
