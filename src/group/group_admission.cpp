#include "group/group_admission.hpp"

#include <stdexcept>
#include <utility>

#include "nautilus/kernel.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::grp {

namespace {

/// Append an extra completion hook to an action.
nk::Action with_fx(nk::Action a, std::function<void(nk::ThreadCtx&)> extra) {
  auto prev = std::move(a.on_complete);
  a.on_complete = [prev = std::move(prev),
                   extra = std::move(extra)](nk::ThreadCtx& ctx) {
    if (prev) prev(ctx);
    extra(ctx);
  };
  return a;
}

rt::LocalScheduler& local_sched(nk::ThreadCtx& ctx) {
  // The group layer is built for the hard real-time scheduler; the
  // static_cast mirrors the fact that nk_group_sched_change_constraints is
  // part of that scheduler's API.
  return static_cast<rt::LocalScheduler&>(
      ctx.kernel.scheduler(ctx.self.cpu));
}

constexpr std::uint32_t kBarrierA = 0;
constexpr std::uint32_t kBarrierB = 1;
constexpr std::uint32_t kBarrierFail = 2;
constexpr std::uint32_t kBarrierFinal = 3;

}  // namespace

GroupChangeConstraints::GroupChangeConstraints(ThreadGroup& group,
                                               rt::Constraints constraints,
                                               bool join_first)
    : group_(group),
      constraints_(constraints),
      step_(join_first ? Step::kJoin : Step::kElect) {
  if (!constraints.is_realtime()) {
    throw std::invalid_argument(
        "GroupChangeConstraints: constraints must be periodic or sporadic");
  }
}

nk::Action GroupChangeConstraints::barrier_step(GroupBarrier& b,
                                                Step next_step,
                                                bool record_order) {
  switch (barrier_phase_) {
    case 0:
      barrier_phase_ = 1;
      return b.scan_action();
    case 1:
      barrier_phase_ = 2;
      return b.arrive_action();
    case 2:
      barrier_phase_ = 3;
      return b.wait_action();
    default:
      barrier_phase_ = 0;
      step_ = next_step;
      if (record_order) {
        return b.depart_action([this](nk::ThreadCtx& ctx, int order) {
          release_order_ = order;
          timing_.barrier_done = ctx.wall_now;
        });
      }
      return b.depart_action();
  }
}

nk::Action GroupChangeConstraints::next(nk::ThreadCtx& ctx) {
  if (timing_.start < 0) timing_.start = ctx.wall_now;
  for (;;) {
    switch (step_) {
      case Step::kJoin: {
        step_ = Step::kElect;
        return group_.join_action([this](nk::ThreadCtx& c) {
          timing_.join_done = c.wall_now;
        });
      }
      case Step::kElect: {
        step_ = Step::kLeaderSetup;
        return with_fx(group_.elect_action(), [this](nk::ThreadCtx& c) {
          timing_.election_done = c.wall_now;
        });
      }
      case Step::kLeaderSetup: {
        step_ = Step::kBarrierA;
        if (group_.leader() == &ctx.self) {
          // lock group; attach constraints to group.
          return nk::Action::atomic(
              &group_.lock_line(), group_.departure_delta(),
              [this](nk::ThreadCtx& c) {
                group_.lock(&c.self);
                group_.attach_constraints(constraints_);
              });
        }
        continue;
      }
      case Step::kBarrierA:
        return barrier_step(group_.barrier(kBarrierA), Step::kReserve,
                            /*record_order=*/false);
      case Step::kReserve: {
        step_ = Step::kReduceErrors;
        const auto& spec = group_.kernel().machine().spec();
        const sim::Nanos adm_ns =
            spec.freq.cycles_to_ns_ceil(spec.cost.admission_control);
        // Local admission control, run in the context of the (still
        // aperiodic) requesting thread.  The group's attached constraints
        // are what every member requests.
        return nk::Action::compute(adm_ns, [this](nk::ThreadCtx& c) {
          reserved_ok_ = local_sched(c).reserve_constraints(
              c.self, group_.constraints());
          if (!reserved_ok_) group_.add_failure();
        });
      }
      case Step::kReduceErrors: {
        step_ = Step::kBarrierB;
        return group_.reduce_add_action(reserved_ok_ ? 0 : 1);
      }
      case Step::kBarrierB:
        return barrier_step(group_.barrier(kBarrierB), Step::kCheckErrors,
                            /*record_order=*/false);
      case Step::kCheckErrors: {
        timing_.admission_done = ctx.wall_now;
        step_ = group_.reduction_value() > 0 ? Step::kCancel
                                             : Step::kFinalBarrier;
        continue;
      }
      case Step::kCancel: {
        step_ = Step::kBarrierFail;
        if (reserved_ok_) {
          // "readmit myself using default constraints": release the
          // reservation; the thread never left the aperiodic class.
          return nk::Action::compute(
              group_.departure_delta(), [](nk::ThreadCtx& c) {
                local_sched(c).cancel_reservation(c.self);
              });
        }
        continue;
      }
      case Step::kBarrierFail: {
        nk::Action a = barrier_step(group_.barrier(kBarrierFail), Step::kDone,
                                    /*record_order=*/false);
        if (step_ == Step::kDone) {
          // Departure of the failure barrier finishes the protocol.
          a = with_fx(std::move(a), [this](nk::ThreadCtx& c) {
            if (group_.leader() == &c.self) group_.unlock();
            timing_.total_done = c.wall_now;
            success_ = false;
            done_ = true;
          });
        }
        return a;
      }
      case Step::kFinalBarrier:
        return barrier_step(group_.barrier(kBarrierFinal), Step::kCommit,
                            /*record_order=*/true);
      case Step::kCommit: {
        step_ = Step::kDone;
        // Phase correction (section 4.4): the ith thread released from the
        // final barrier gets phi_i = phi + (n - i) * delta, compensating the
        // serialized barrier departure so that first arrivals align.
        rt::Constraints c = group_.constraints();
        if (phase_correction_ && release_order_ >= 0) {
          const auto n = static_cast<sim::Nanos>(group_.expected());
          c.phase += (n - 1 - release_order_) * group_.departure_delta();
        }
        return nk::Action::change_constraints(
            c, [this, c](nk::ThreadCtx& cx) {
              success_ = cx.last_admit_ok;
              if (group_.leader() == &cx.self) {
                group_.unlock();
                // Auto-derived group SLO (docs/OBSERVABILITY.md): the leader
                // of a successful commit registers a burn-rate spec for the
                // whole group from the constraints it just admitted.
                if (success_ && cx.kernel.telemetry() != nullptr) {
                  cx.kernel.telemetry()->derive_group_slo(group_.name(), c);
                }
              }
              timing_.total_done = cx.wall_now;
              done_ = true;
            });
      }
      case Step::kDone:
        throw std::logic_error("GroupChangeConstraints: next() after done");
    }
  }
}

GroupAdmitThenBehavior::GroupAdmitThenBehavior(
    ThreadGroup& group, rt::Constraints constraints,
    std::unique_ptr<nk::Behavior> inner, bool join_first)
    : protocol_(group, constraints, join_first), inner_(std::move(inner)) {}

nk::Action GroupAdmitThenBehavior::next(nk::ThreadCtx& ctx) {
  if (!protocol_.done()) {
    return protocol_.next(ctx);
  }
  if (!protocol_.succeeded()) {
    return nk::Action::exit();
  }
  return inner_->next(ctx);
}

}  // namespace hrt::grp
