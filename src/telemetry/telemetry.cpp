#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "audit/auditor.hpp"

namespace hrt::telemetry {

namespace {
// Clamp a double utilization/fraction into a ppm payload.
std::int64_t to_ppm(double x) {
  if (!(x > 0.0)) return 0;
  const double ppm = x * 1e6;
  if (ppm >= 9.2e18) return INT64_MAX;
  return static_cast<std::int64_t>(std::llround(ppm));
}
}  // namespace

Telemetry::Telemetry(std::uint32_t num_cpus, Config cfg)
    : cfg_(std::move(cfg)),
      recorder_(std::make_unique<FlightRecorder>(num_cpus, cfg_.recorder)),
      metrics_(std::make_unique<MetricsRegistry>(num_cpus,
                                                 cfg_.max_thread_metrics)),
      slo_(std::make_unique<SloMonitor>(cfg_.slos)) {
  slo_->set_alert_fn([this](std::size_t spec, sim::Nanos now, double burn) {
    // Alerts are machine-wide; attribute them to CPU 0's ring.
    recorder_->record(0, EventKind::kSloAlert, now, 0, to_ppm(burn));
    if (cfg_.slo_audit && auditor_ != nullptr && auditor_->enabled() &&
        auditor_->config().check_slo) {
      const SloSpec& s = slo_->spec(spec);
      auditor_->record(audit::Invariant::kSloBudget, 0, now,
                       "slo '" + s.name + "' burn rate " +
                           std::to_string(burn) + " >= 1 (budget " +
                           std::to_string(s.miss_budget) + "/window)");
    }
  });
}

void Telemetry::on_pass(std::uint32_t cpu, sim::Nanos now, int reason) {
  if (!cfg_.enabled) return;
  ++metrics_->cpu(cpu).passes;
  recorder_->record(cpu, EventKind::kPass, now, 0, reason);
}

void Telemetry::on_pass_span(std::uint32_t cpu, double span_ns) {
  if (!cfg_.enabled) return;
  metrics_->cpu(cpu).pass_span_ns.add(span_ns);
}

void Telemetry::on_switch(std::uint32_t cpu, sim::Nanos now,
                          std::uint32_t tid) {
  if (!cfg_.enabled) return;
  ++metrics_->cpu(cpu).switches;
  recorder_->record(cpu, EventKind::kSwitch, now, tid, 0);
}

void Telemetry::on_kick(std::uint32_t cpu, sim::Nanos now) {
  if (!cfg_.enabled) return;
  ++metrics_->cpu(cpu).kicks;
  recorder_->record(cpu, EventKind::kKick, now, 0, 0);
}

void Telemetry::on_timer_arm(std::uint32_t cpu, sim::Nanos now,
                             sim::Nanos delay) {
  if (!cfg_.enabled) return;
  ++metrics_->cpu(cpu).timer_arms;
  recorder_->record(cpu, EventKind::kTimerArm, now, 0, delay);
}

void Telemetry::on_admit(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid,
                         bool ok, double util) {
  if (!cfg_.enabled) return;
  CpuMetrics& m = metrics_->cpu(cpu);
  if (ok) {
    ++m.admits_ok;
  } else {
    ++m.admits_rejected;
  }
  recorder_->record(cpu, ok ? EventKind::kAdmitOk : EventKind::kAdmitReject,
                    now, tid, to_ppm(util));
}

void Telemetry::on_completion(std::uint32_t cpu, sim::Nanos now,
                              std::uint32_t tid, std::string_view name,
                              sim::Nanos lateness) {
  if (!cfg_.enabled) return;
  metrics_->on_completion(cpu, tid, name, lateness);
  if (lateness > 0) {
    recorder_->record(cpu, EventKind::kDeadlineMiss, now, tid, lateness);
  }
  slo_->on_completion(name, lateness > 0, now);
}

void Telemetry::on_skipped_windows(std::uint32_t cpu, sim::Nanos now,
                                   std::uint32_t tid, std::string_view name,
                                   std::uint64_t n) {
  if (!cfg_.enabled || n == 0) return;
  metrics_->on_skipped(cpu, tid, name, n);
  recorder_->record(cpu, EventKind::kDeadlineMiss, now, tid,
                    -static_cast<std::int64_t>(n));
  slo_->on_completion(name, true, now, n);
}

void Telemetry::on_migration(std::uint32_t cpu, sim::Nanos now,
                             std::uint32_t tid, EventKind kind,
                             std::uint32_t peer) {
  if (!cfg_.enabled) return;
  CpuMetrics& m = metrics_->cpu(cpu);
  if (kind == EventKind::kMigrateIn) {
    ++m.migrations_in;
  } else if (kind == EventKind::kMigrateOut ||
             kind == EventKind::kAperiodicMigrate) {
    ++m.migrations_out;
  }
  recorder_->record(cpu, kind, now, tid, static_cast<std::int64_t>(peer));
}

void Telemetry::on_event(std::uint32_t cpu, sim::Nanos now, EventKind kind,
                         std::uint32_t tid, std::int64_t arg) {
  if (!cfg_.enabled) return;
  if (kind == EventKind::kShed) {
    ++metrics_->cpu(cpu).sheds;
  } else if (kind == EventKind::kRestore) {
    ++metrics_->cpu(cpu).restores;
  }
  recorder_->record(cpu, kind, now, tid, arg);
}

void Telemetry::set_effective_capacity(std::uint32_t cpu, double cap) {
  if (!cfg_.enabled) return;
  metrics_->cpu(cpu).effective_capacity = cap;
}

void Telemetry::derive_group_slo(std::string_view group_name,
                                 const rt::Constraints& admitted) {
  if (!cfg_.enabled || !cfg_.auto_group_slos || !admitted.is_realtime()) {
    return;
  }
  SloSpec s;
  s.name = "group:" + std::string(group_name);
  if (slo_->has(s.name)) return;
  // spawn_group_auto names members "<group>.<i>"; the trailing dot keeps a
  // group "g" from also matching a group "g2"'s workers.
  s.thread_match = std::string(group_name) + ".";
  s.miss_budget = cfg_.group_slo_budget;
  // One deadline window per arrival: periodic groups miss against the
  // period, sporadic ones against the deadline offset.
  const sim::Nanos window =
      admitted.cls == rt::ConstraintClass::kPeriodic
          ? admitted.period
          : admitted.deadline_offset - admitted.phase;
  const std::uint64_t n = cfg_.group_slo_windows > 0 ? cfg_.group_slo_windows : 1;
  s.window_ns = std::max<sim::Nanos>(sim::millis(1),
                                     window * static_cast<sim::Nanos>(n));
  slo_->add_spec(std::move(s));
}

}  // namespace hrt::telemetry
