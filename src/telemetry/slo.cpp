#include "telemetry/slo.hpp"

namespace hrt::telemetry {

SloMonitor::SloMonitor(std::vector<SloSpec> specs) {
  states_.reserve(specs.size());
  for (SloSpec& s : specs) {
    if (s.window_ns <= 0) s.window_ns = sim::millis(100);
    if (s.miss_budget <= 0.0) s.miss_budget = 1e-9;
    State st;
    st.spec = std::move(s);
    states_.push_back(std::move(st));
  }
  totals_completions_.assign(states_.size(), 0);
  totals_misses_.assign(states_.size(), 0);
}

std::size_t SloMonitor::add_spec(SloSpec spec) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].spec.name == spec.name) return i;
  }
  if (spec.window_ns <= 0) spec.window_ns = sim::millis(100);
  if (spec.miss_budget <= 0.0) spec.miss_budget = 1e-9;
  State st;
  st.spec = std::move(spec);
  states_.push_back(std::move(st));
  totals_completions_.push_back(0);
  totals_misses_.push_back(0);
  return states_.size() - 1;
}

bool SloMonitor::has(std::string_view name) const {
  for (const State& st : states_) {
    if (st.spec.name == name) return true;
  }
  return false;
}

void SloMonitor::rotate(State& st, sim::Nanos now) const {
  // Advance the two-bucket window pair until `now` falls in the current
  // window.  Jumping more than one window ahead clears both buckets.
  while (now >= st.window_start + st.spec.window_ns) {
    st.window_start += st.spec.window_ns;
    st.prev = st.cur;
    st.cur = Window{};
  }
}

double SloMonitor::burn_of(const State& st, sim::Nanos now) {
  // Weight the previous window by the fraction of it still inside the
  // sliding window ending at `now`.
  const double frac_elapsed =
      static_cast<double>(now - st.window_start) /
      static_cast<double>(st.spec.window_ns);
  const double w_prev = 1.0 - frac_elapsed;
  const double comp = static_cast<double>(st.cur.completions) +
                      w_prev * static_cast<double>(st.prev.completions);
  const double miss = static_cast<double>(st.cur.misses) +
                      w_prev * static_cast<double>(st.prev.misses);
  if (comp <= 0.0) return 0.0;
  return (miss / comp) / st.spec.miss_budget;
}

void SloMonitor::on_completion(std::string_view thread_name, bool missed,
                               sim::Nanos now, std::uint64_t n) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    if (!matches(st, thread_name)) continue;
    rotate(st, now);
    st.cur.completions += n;
    totals_completions_[i] += n;
    if (missed) {
      st.cur.misses += n;
      totals_misses_[i] += n;
    }
    if (st.cur.completions + st.prev.completions < st.spec.min_completions) {
      continue;
    }
    const double burn = burn_of(st, now);
    if (burn >= 1.0) {
      if (!st.alerting) {
        st.alerting = true;
        ++st.alerts;
        ++total_alerts_;
        if (alert_fn_) alert_fn_(i, now, burn);
      }
    } else {
      st.alerting = false;
    }
  }
}

double SloMonitor::burn_rate(std::size_t i, sim::Nanos now) const {
  State& st = states_[i];
  rotate(st, now);
  return burn_of(st, now);
}

std::optional<double> SloMonitor::burn_rate_for(std::string_view thread_name,
                                                sim::Nanos now) const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (matches(states_[i], thread_name)) return burn_rate(i, now);
  }
  return std::nullopt;
}

std::vector<SloStatus> SloMonitor::status(sim::Nanos now) const {
  std::vector<SloStatus> out;
  out.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    rotate(st, now);
    SloStatus s;
    s.spec = &st.spec;
    s.completions = totals_completions_[i];
    s.misses = totals_misses_[i];
    s.burn_rate = burn_of(st, now);
    s.alerting = st.alerting;
    s.alerts = st.alerts;
    out.push_back(s);
  }
  return out;
}

}  // namespace hrt::telemetry
