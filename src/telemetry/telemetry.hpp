// Telemetry hub: flight recorder + metrics + SLO monitor behind one handle
// (docs/OBSERVABILITY.md).
//
// The scheduler stack carries a single `telemetry::Telemetry*` (null when
// the subsystem is disabled — the same convention as the auditor and the
// placement ledger), so the hot-path cost of telemetry-off is one pointer
// test.  Every hook is a pure host-side observer: it charges no simulated
// time and mutates no scheduler state, which is what makes a telemetry-on
// run bit-identical (same switches, same misses, same audit results) to a
// telemetry-off run by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "rt/constraints.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/slo.hpp"

namespace hrt::audit {
class Auditor;
}

namespace hrt::telemetry {

struct Config {
  /// Master switch.  Off (the default) means rt::System does not even
  /// construct the subsystem and the kernel carries a null pointer.
  bool enabled = false;
  RecorderConfig recorder{};
  /// Distinct threads tracked with full histograms; beyond this only the
  /// per-CPU counters grow (overflow is counted, never silent).
  std::size_t max_thread_metrics = 4096;
  std::vector<SloSpec> slos;
  /// Raise an audit kSloBudget violation when an SLO alert fires (requires
  /// an attached auditor with check_slo set).
  bool slo_audit = true;
  /// Auto-derive one SLO spec per admitted thread group from the group's
  /// admitted constraints (docs/OBSERVABILITY.md): spec "group:<name>"
  /// matching "<name>." threads, window = group_slo_windows periods (or
  /// deadline windows for sporadic groups), budget group_slo_budget.  The
  /// group admission protocol's commit step calls derive_group_slo; specs
  /// are deduplicated by name, so re-admission is idempotent.
  bool auto_group_slos = true;
  double group_slo_budget = 0.01;
  std::uint64_t group_slo_windows = 100;
};

class Telemetry {
 public:
  Telemetry(std::uint32_t num_cpus, Config cfg);

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Optional: route SLO alerts into the audit report (kSloBudget).
  void attach_auditor(audit::Auditor* auditor) { auditor_ = auditor; }

  // --- hot-path hooks (all no-ops when disabled) -------------------------

  /// End of a scheduling pass.  `reason` is the nk::PassReason ordinal.
  void on_pass(std::uint32_t cpu, sim::Nanos now, int reason);
  /// Executor-measured scheduler handler span (irq + pass + switch), ns.
  void on_pass_span(std::uint32_t cpu, double span_ns);
  void on_switch(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid);
  void on_kick(std::uint32_t cpu, sim::Nanos now);
  void on_timer_arm(std::uint32_t cpu, sim::Nanos now, sim::Nanos delay);
  void on_admit(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid, bool ok,
                double util);
  /// Arrival close.  `lateness` is signed: > 0 is a deadline miss by that
  /// much, <= 0 met the deadline with -lateness slack.
  void on_completion(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid,
                     std::string_view name, sim::Nanos lateness);
  /// Whole deadline windows skipped by a late periodic arrival (counted as
  /// misses; no slack/lateness sample of their own).
  void on_skipped_windows(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid,
                          std::string_view name, std::uint64_t n);
  /// kind must be one of kMigrateRequest / kMigrateOut / kMigrateIn /
  /// kAperiodicMigrate; `peer` is the other CPU.
  void on_migration(std::uint32_t cpu, sim::Nanos now, std::uint32_t tid,
                    EventKind kind, std::uint32_t peer);
  /// Generic escape hatch for subsystems with their own vocabularies
  /// (storm controller, split planner, group barriers, benches).
  void on_event(std::uint32_t cpu, sim::Nanos now, EventKind kind,
                std::uint32_t tid, std::int64_t arg);
  /// Gauge: effective RT capacity published for a CPU.
  void set_effective_capacity(std::uint32_t cpu, double cap);

  /// Auto-derive a burn-rate SLO for an admitted thread group (see
  /// Config::auto_group_slos).  No-op when disabled or when "group:<name>"
  /// already exists.
  void derive_group_slo(std::string_view group_name,
                        const rt::Constraints& admitted);

  // --- cold-path access --------------------------------------------------

  [[nodiscard]] FlightRecorder& recorder() { return *recorder_; }
  [[nodiscard]] const FlightRecorder& recorder() const { return *recorder_; }
  [[nodiscard]] MetricsRegistry& metrics() { return *metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] SloMonitor& slo() { return *slo_; }
  [[nodiscard]] const SloMonitor& slo() const { return *slo_; }
  [[nodiscard]] audit::Auditor* auditor() const { return auditor_; }

 private:
  Config cfg_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<SloMonitor> slo_;
  audit::Auditor* auditor_ = nullptr;
};

}  // namespace hrt::telemetry
