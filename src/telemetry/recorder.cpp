#include "telemetry/recorder.hpp"

#include <algorithm>
#include <chrono>

namespace hrt::telemetry {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kPass:
      return "pass";
    case EventKind::kSwitch:
      return "switch";
    case EventKind::kKick:
      return "kick";
    case EventKind::kTimerArm:
      return "timer-arm";
    case EventKind::kAdmitOk:
      return "admit-ok";
    case EventKind::kAdmitReject:
      return "admit-reject";
    case EventKind::kDeadlineMiss:
      return "deadline-miss";
    case EventKind::kMigrateRequest:
      return "migrate-request";
    case EventKind::kMigrateOut:
      return "migrate-out";
    case EventKind::kMigrateIn:
      return "migrate-in";
    case EventKind::kAperiodicMigrate:
      return "aperiodic-migrate";
    case EventKind::kSplitPlan:
      return "split-plan";
    case EventKind::kStormEnter:
      return "storm-enter";
    case EventKind::kStormExit:
      return "storm-exit";
    case EventKind::kDrain:
      return "drain";
    case EventKind::kShed:
      return "shed";
    case EventKind::kRestore:
      return "restore";
    case EventKind::kBarrierArrive:
      return "barrier-arrive";
    case EventKind::kBarrierRelease:
      return "barrier-release";
    case EventKind::kNodeUp:
      return "node-up";
    case EventKind::kNodeDown:
      return "node-down";
    case EventKind::kNodeDrain:
      return "node-drain";
    case EventKind::kReplace:
      return "replace";
    case EventKind::kPreempt:
      return "preempt";
    case EventKind::kClusterShed:
      return "cluster-shed";
    case EventKind::kSloAlert:
      return "slo-alert";
    case EventKind::kCustom:
      return "custom";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::uint32_t num_cpus, RecorderConfig cfg)
    : cfg_(cfg) {
  rings_.reserve(num_cpus);
  for (std::uint32_t c = 0; c < num_cpus; ++c) {
    rings_.push_back(std::make_unique<SpscRing>(cfg_.ring_capacity));
  }
}

void FlightRecorder::record(std::uint32_t cpu, EventKind kind, sim::Nanos time,
                            std::uint32_t tid, std::int64_t arg) noexcept {
  if (cpu >= rings_.size()) return;
  Record r;
  r.time = time;
  r.arg = arg;
  r.tid = tid;
  r.cpu = static_cast<std::uint16_t>(cpu);
  r.kind = kind;
  ++kind_counts_[static_cast<std::size_t>(kind)];
  if (cfg_.cost_sample_every != 0 &&
      ++sample_tick_ % cfg_.cost_sample_every == 0) {
    const auto t0 = std::chrono::steady_clock::now();
    rings_[cpu]->push(r);
    const auto t1 = std::chrono::steady_clock::now();
    sampled_cost_ns_.add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  } else {
    rings_[cpu]->push(r);
  }
}

std::vector<Record> FlightRecorder::snapshot_all() const {
  std::vector<Record> out;
  for (const auto& ring : rings_) {
    std::vector<Record> one = ring->snapshot();
    out.insert(out.end(), one.begin(), one.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.cpu < b.cpu;
                   });
  return out;
}

std::uint64_t FlightRecorder::written() const {
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->written();
  return n;
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t n = 0;
  for (const auto& ring : rings_) n += ring->dropped();
  return n;
}

std::uint64_t FlightRecorder::retained_kind_count(std::uint32_t cpu,
                                                  EventKind k) const {
  std::uint64_t n = 0;
  for (const Record& r : rings_[cpu]->snapshot()) {
    if (r.kind == k) ++n;
  }
  return n;
}

double FlightRecorder::measure_record_cost_ns(std::size_t iters) {
  if (iters == 0) iters = 1;
  double best = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    // Fresh recorder per pass: one CPU, sampling off, a ring small enough to
    // stay cache-resident (wraparound included — that is the steady state).
    FlightRecorder scratch(1, RecorderConfig{4096, 0});
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      scratch.record(0, EventKind::kPass, static_cast<sim::Nanos>(i),
                     static_cast<std::uint32_t>(i & 0xFFFF),
                     static_cast<std::int64_t>(i));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    const double per = ns / static_cast<double>(iters);
    if (best < 0 || per < best) best = per;
  }
  return best;
}

}  // namespace hrt::telemetry
