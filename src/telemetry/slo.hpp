// Declarative SLO monitor (docs/OBSERVABILITY.md).
//
// An SloSpec declares a deadline-miss budget for a set of threads (matched
// by name prefix, so one spec can cover a whole group's workers) over a
// sliding window.  The monitor tracks the windowed miss fraction with a
// two-bucket rotation — current + previous window, weighted by how far the
// current window has progressed — which bounds memory at O(1) per spec and
// still reacts within one window of a burst.
//
// burn rate = windowed miss fraction / budget.  Burn >= 1.0 means the spec
// is consuming its budget faster than allowed; on that transition the
// monitor fires an alert: a kSloAlert flight-recorder event plus an audit
// kSloBudget violation (both optional, wired by the Telemetry hub).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hrt::telemetry {

struct SloSpec {
  std::string name;          // spec label for reports/export
  std::string thread_match;  // thread-name prefix ("" matches everything)
  double miss_budget = 0.01; // allowed miss fraction per window
  sim::Nanos window_ns = sim::millis(100);
  /// Don't alert before this many completions land in the window pair;
  /// keeps a single early miss from tripping a 1% budget.
  std::uint64_t min_completions = 10;
};

struct SloStatus {
  const SloSpec* spec = nullptr;
  std::uint64_t completions = 0;  // totals over the whole run
  std::uint64_t misses = 0;
  double burn_rate = 0.0;         // windowed, at query time
  bool alerting = false;
  std::uint64_t alerts = 0;       // burn >= 1 transitions seen
};

class SloMonitor {
 public:
  /// (spec index, now, burn rate) — invoked on each burn >= 1 transition.
  using AlertFn = std::function<void(std::size_t, sim::Nanos, double)>;

  explicit SloMonitor(std::vector<SloSpec> specs);

  /// Register one more spec at runtime (auto-derived group SLOs).  Returns
  /// its index; a spec whose name already exists is not duplicated and the
  /// existing index is returned instead.
  std::size_t add_spec(SloSpec spec);

  /// True when a spec with this name is already registered.
  [[nodiscard]] bool has(std::string_view name) const;

  void set_alert_fn(AlertFn fn) { alert_fn_ = std::move(fn); }

  [[nodiscard]] bool empty() const { return states_.empty(); }
  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] const SloSpec& spec(std::size_t i) const {
    return states_[i].spec;
  }

  /// Feed one arrival close for a thread.  `missed` mirrors the scheduler's
  /// deadline check; `n` lets skipped windows count as multiple misses.
  void on_completion(std::string_view thread_name, bool missed, sim::Nanos now,
                     std::uint64_t n = 1);

  /// Windowed burn rate of spec `i` at time `now`.
  [[nodiscard]] double burn_rate(std::size_t i, sim::Nanos now) const;

  /// Burn rate of the first spec matching a thread name, if any.
  [[nodiscard]] std::optional<double> burn_rate_for(
      std::string_view thread_name, sim::Nanos now) const;

  [[nodiscard]] std::vector<SloStatus> status(sim::Nanos now) const;

  /// Total alert transitions across all specs.
  [[nodiscard]] std::uint64_t alerts() const { return total_alerts_; }

 private:
  struct Window {
    std::uint64_t completions = 0;
    std::uint64_t misses = 0;
  };
  struct State {
    SloSpec spec;
    sim::Nanos window_start = 0;
    Window cur;
    Window prev;
    bool alerting = false;
    std::uint64_t alerts = 0;
  };

  void rotate(State& st, sim::Nanos now) const;
  [[nodiscard]] static double burn_of(const State& st, sim::Nanos now);
  [[nodiscard]] bool matches(const State& st,
                             std::string_view thread_name) const {
    return thread_name.substr(0, st.spec.thread_match.size()) ==
           st.spec.thread_match;
  }

  mutable std::vector<State> states_;
  AlertFn alert_fn_;
  std::uint64_t total_alerts_ = 0;
  std::vector<std::uint64_t> totals_completions_;
  std::vector<std::uint64_t> totals_misses_;
};

}  // namespace hrt::telemetry
