// Snapshot / export layer (docs/OBSERVABILITY.md).
//
// Two output formats:
//   * Chrome trace-event JSON ("traceEvents" array) — loadable in Perfetto
//     or chrome://tracing.  Flight-recorder records become instant events
//     ("i") named by kind; consecutive kSwitch records on one CPU become
//     duration events ("X") for the dispatched thread; effective-capacity
//     gauges become counter events ("C").  pid = cpu + 1 (Perfetto treats
//     pid 0 as "unknown"), tid = thread id, ts in microseconds with the
//     exact nanosecond timestamp preserved in args.t.
//   * Metrics JSON — the aggregate schema documented in docs/PERFORMANCE.md
//     (per-CPU counters + pass spans, per-thread slack/lateness quantiles,
//     SLO status, recorder accounting).
//
// A minimal tolerant parser for the Chrome format rides along so tests and
// the bench can round-trip an export without a JSON dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/record.hpp"

namespace hrt::sim {
class Trace;
}

namespace hrt::telemetry {

class Telemetry;

struct ChromeTraceOptions {
  /// Emit "X" duration events between consecutive switch records per CPU.
  bool run_spans = true;
  /// Emit "C" counter events for effective capacity (needs a Telemetry
  /// handle; ignored for bare record dumps).
  bool counters = true;
};

/// Write a merged record stream as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& os, const std::vector<Record>& events,
                        const ChromeTraceOptions& opts = {},
                        const Telemetry* tel = nullptr);

/// Convenience: snapshot all rings of `tel` and export them.
void write_chrome_trace(std::ostream& os, const Telemetry& tel,
                        const ChromeTraceOptions& opts = {});

/// Adapt a sim::Trace (machine-level trace buffer) into flight-recorder
/// records so the same exporter — and the same oracle cross-checks — apply:
/// kSwitch -> kSwitch, kSchedPass -> kPass, kIrqEnter -> kKick-like custom.
/// Only records of `cpu` are taken (cpu == ~0u takes all).
[[nodiscard]] std::vector<Record> from_sim_trace(const sim::Trace& trace,
                                                 std::uint32_t cpu = ~0u);

/// One parsed Chrome trace event (subset of fields the tests need).
struct ParsedEvent {
  std::string name;
  std::string phase;    // "i", "X", "C", ...
  double ts_us = 0.0;   // Chrome timestamp (microseconds)
  std::int64_t t_ns = 0;  // exact ns from args.t (0 if absent)
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  double dur_us = 0.0;
};

struct ParsedTrace {
  bool ok = false;
  std::string error;
  std::vector<ParsedEvent> events;
};

/// Minimal tolerant parser for the exporter's own output (and for any
/// {"traceEvents": [...]} document with flat string/number fields).  Not a
/// general JSON parser; good enough to validate round-trips in tests.
[[nodiscard]] ParsedTrace parse_chrome_trace(std::string_view json);

/// Aggregate metrics snapshot as JSON (schema: docs/PERFORMANCE.md).
void write_metrics_json(std::ostream& os, const Telemetry& tel,
                        sim::Nanos now);

}  // namespace hrt::telemetry
