// Per-CPU flight recorder (docs/OBSERVABILITY.md).
//
// Owns one SpscRing per CPU plus the bookkeeping the export layer needs:
// per-kind event counters and a self-measured record cost.  The cost is
// measured two ways — a sampled in-line probe (every Nth record is timed
// with the host steady clock, including the clock overhead) and a batch
// calibration (measure_record_cost_ns) that times a tight loop over the
// real push path and divides, which is the number BENCH_telemetry.json
// reports against the 2%-of-pass-span budget.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/stats.hpp"
#include "telemetry/ring.hpp"

namespace hrt::telemetry {

struct RecorderConfig {
  /// Per-CPU ring capacity in records (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
  /// Time every Nth record with the host steady clock (0 disables the
  /// in-line probe; the batch calibration is always available).
  std::uint32_t cost_sample_every = 64;
};

class FlightRecorder {
 public:
  FlightRecorder(std::uint32_t num_cpus, RecorderConfig cfg);

  void record(std::uint32_t cpu, EventKind kind, sim::Nanos time,
              std::uint32_t tid, std::int64_t arg) noexcept;

  [[nodiscard]] std::uint32_t num_cpus() const {
    return static_cast<std::uint32_t>(rings_.size());
  }
  [[nodiscard]] const SpscRing& ring(std::uint32_t cpu) const {
    return *rings_[cpu];
  }
  [[nodiscard]] const RecorderConfig& config() const { return cfg_; }

  /// Retained window of one CPU, oldest first.
  [[nodiscard]] std::vector<Record> snapshot(std::uint32_t cpu) const {
    return rings_[cpu]->snapshot();
  }
  /// All CPUs merged, sorted by (time, cpu); within one (time, cpu) pair the
  /// per-ring order (= emission order) is preserved.
  [[nodiscard]] std::vector<Record> snapshot_all() const;

  [[nodiscard]] std::uint64_t written() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t kind_count(EventKind k) const {
    return kind_counts_[static_cast<std::size_t>(k)];
  }
  /// Count of one kind inside a single CPU's retained window.
  [[nodiscard]] std::uint64_t retained_kind_count(std::uint32_t cpu,
                                                  EventKind k) const;

  /// Sampled in-line probe results (host ns per record, clock included).
  [[nodiscard]] const sim::RunningStats& sampled_cost_ns() const {
    return sampled_cost_ns_;
  }

  /// Batch calibration: time `iters` pushes through the real record() path
  /// on a scratch recorder and return host ns per record (best of three
  /// passes, so a scheduler hiccup on the host cannot inflate the figure).
  [[nodiscard]] static double measure_record_cost_ns(std::size_t iters);

 private:
  RecorderConfig cfg_;
  std::vector<std::unique_ptr<SpscRing>> rings_;
  std::array<std::uint64_t, kEventKindCount> kind_counts_{};
  std::uint64_t sample_tick_ = 0;
  sim::RunningStats sampled_cost_ns_;
};

}  // namespace hrt::telemetry
