#include "telemetry/metrics.hpp"

#include <algorithm>

namespace hrt::telemetry {

std::vector<const ThreadMetrics*> MetricsRegistry::threads_sorted() const {
  std::vector<const ThreadMetrics*> out;
  out.reserve(threads_.size());
  for (const auto& [tid, tm] : threads_) out.push_back(&tm);
  std::sort(out.begin(), out.end(),
            [](const ThreadMetrics* a, const ThreadMetrics* b) {
              return a->tid < b->tid;
            });
  return out;
}

}  // namespace hrt::telemetry
