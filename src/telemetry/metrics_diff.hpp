// hrt-metrics-diff: structural diff of two `hrt-metrics-v1` snapshots
// (export.hpp write_metrics_json), for cross-PR perf triage of the
// bench/snapshots/ trajectory (docs/OBSERVABILITY.md).
//
// The parser is a small special-purpose JSON reader for the one schema this
// repo emits — tolerant in the same spirit as parse_chrome_trace: unknown
// keys are flattened like any other, malformed input yields ok=false with a
// message instead of throwing, and nothing outside numeric/bool leaves is
// kept.  Every counter and quantile becomes one flat key:
//
//   now_ns / threads_dropped
//   cpu.<n>.passes ... cpu.<n>.pass_span_ns.mean ...
//   thread.<name>.completions / thread.<name>.slack_ns.p99 ...
//   slo.<name>.burn_rate / slo.<name>.alerts ...
//   recorder.written / recorder.sampled_cost_ns.mean ...
//
// diff_metrics() then reports per-key deltas plus keys present on only one
// side (a thread that appeared or vanished between two runs is itself a
// finding).  Header-only: the CLI (bench/hrt_metrics_diff.cpp) and the unit
// test are the two consumers.
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hrt::telemetry {

struct MetricsSnapshot {
  bool ok = false;
  std::string error;
  /// Flat key -> numeric value (booleans coerce to 0/1).
  std::map<std::string, double> values;
  /// String leaves (schema tag, thread/slo names) kept aside: they identify
  /// rows, they are not metrics.
  std::map<std::string, std::string> names;
};

struct MetricsDiffRow {
  std::string key;
  double before = 0.0;
  double after = 0.0;
  double delta = 0.0;
  bool only_before = false;  // key vanished in `after`
  bool only_after = false;   // key appeared in `after`
};

namespace diff_detail {

/// Minimal recursive-descent JSON reader over the snapshot text.  It only
/// distinguishes what the flattener needs: objects, arrays, strings,
/// numbers, and true/false/null.
class Reader {
 public:
  explicit Reader(std::string_view s) : s_(s) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  void fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    fail(std::string("expected '") + c + "'");
    return false;
  }

  /// Parse a JSON string (escapes decoded well enough for keys/names).
  std::string string() {
    if (!consume('"')) return {};
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        char e = s_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'u':
            // Keys in this schema are ASCII; keep the escape verbatim.
            out.push_back('u');
            break;
          default: out.push_back(e); break;
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= s_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == 'n' || s_[pos_] == 'a' || s_[pos_] == 'i' ||
            s_[pos_] == 'f')) {
      ++pos_;  // `nan`/`inf` appear when a histogram is empty
    }
    if (pos_ == start) {
      fail("expected number");
      return 0.0;
    }
    const std::string tok(s_.substr(start, pos_ - start));
    if (tok.find("nan") != std::string::npos) return 0.0;
    if (tok.find("inf") != std::string::npos) return 0.0;
    try {
      return std::stod(tok);
    } catch (...) {
      fail("bad number '" + tok + "'");
      return 0.0;
    }
  }

  bool literal(std::string_view lit) {
    skip_ws();
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

inline std::string join_key(const std::string& prefix, const std::string& k) {
  return prefix.empty() ? k : prefix + "." + k;
}

/// Flatten one JSON value under `prefix` into snap.values.  Array elements
/// are objects in this schema; each is re-prefixed by its natural identity
/// key ("cpu" for cpus[], "name" for threads[]/slos[]) when present, else by
/// index.
inline void flatten_value(Reader& r, const std::string& prefix,
                          MetricsSnapshot& snap);

inline void flatten_object(Reader& r, const std::string& prefix,
                           MetricsSnapshot& snap) {
  if (!r.consume('{')) return;
  if (r.peek() == '}') {
    r.consume('}');
    return;
  }
  while (!r.failed()) {
    const std::string key = r.string();
    if (!r.consume(':')) return;
    flatten_value(r, join_key(prefix, key), snap);
    if (r.peek() == ',') {
      r.consume(',');
      continue;
    }
    r.consume('}');
    return;
  }
}

/// Scan an array of objects: buffer each element's leaves under a temporary
/// index prefix, then re-home them under the element's identity key.
inline void flatten_array(Reader& r, const std::string& prefix,
                          MetricsSnapshot& snap) {
  if (!r.consume('[')) return;
  if (r.peek() == ']') {
    r.consume(']');
    return;
  }
  // "cpus" -> "cpu", "threads" -> "thread", "slos" -> "slo"; other arrays
  // keep their name as the per-element prefix.
  std::string stem = prefix;
  if (!stem.empty() && stem.back() == 's') stem.pop_back();
  std::size_t index = 0;
  while (!r.failed()) {
    MetricsSnapshot element;
    if (r.peek() == '{') {
      // Parse the element into a scratch snapshot keyed without prefix;
      // its "cpu"/"name" field becomes the identity.
      flatten_object(r, "", element);
      std::string id;
      auto it = element.values.find("cpu");
      if (stem == "cpu" && it != element.values.end()) {
        std::ostringstream os;
        os << static_cast<long long>(it->second);
        id = os.str();
      }
      if (id.empty()) {
        auto nit = element.names.find("name");
        if (nit != element.names.end()) id = nit->second;
      }
      if (id.empty()) id = std::to_string(index);
      for (const auto& [k, v] : element.values) {
        if (stem == "cpu" && k == "cpu") continue;     // identity, not a metric
        if (stem == "thread" && k == "tid") continue;  // ids shift across runs
        snap.values[stem + "." + id + "." + k] = v;
      }
    } else {
      // Array of scalars (not in this schema, but stay tolerant).
      flatten_value(r, stem + "." + std::to_string(index), snap);
    }
    ++index;
    if (r.peek() == ',') {
      r.consume(',');
      continue;
    }
    r.consume(']');
    return;
  }
}

inline void flatten_value(Reader& r, const std::string& prefix,
                          MetricsSnapshot& snap) {
  switch (r.peek()) {
    case '{':
      flatten_object(r, prefix, snap);
      return;
    case '[':
      flatten_array(r, prefix, snap);
      return;
    case '"': {
      const std::string v = r.string();
      snap.names[prefix] = v;  // strings kept aside for identity keys
      return;
    }
    default:
      if (r.literal("true")) {
        snap.values[prefix] = 1.0;
        return;
      }
      if (r.literal("false")) {
        snap.values[prefix] = 0.0;
        return;
      }
      if (r.literal("null")) return;
      snap.values[prefix] = r.number();
      return;
  }
}

}  // namespace diff_detail

/// Parse one hrt-metrics-v1 snapshot into flat numeric keys.  ok=false with
/// an error message on malformed input or a wrong/missing schema tag.
[[nodiscard]] inline MetricsSnapshot parse_metrics_snapshot(
    std::string_view json) {
  MetricsSnapshot snap;
  diff_detail::Reader r(json);
  diff_detail::flatten_object(r, "", snap);
  if (r.failed()) {
    snap.error = r.error();
    return snap;
  }
  auto it = snap.names.find("schema");
  if (it == snap.names.end() || it->second != "hrt-metrics-v1") {
    snap.error = "not an hrt-metrics-v1 snapshot";
    return snap;
  }
  snap.ok = true;
  return snap;
}

/// Per-key deltas between two parsed snapshots, sorted by |delta| descending
/// (appear/vanish rows first, then the biggest movers).  With only_changed
/// (the default) keys whose values are bit-equal are omitted.
[[nodiscard]] inline std::vector<MetricsDiffRow> diff_metrics(
    const MetricsSnapshot& before, const MetricsSnapshot& after,
    bool only_changed = true) {
  std::vector<MetricsDiffRow> rows;
  for (const auto& [k, v] : before.values) {
    MetricsDiffRow row;
    row.key = k;
    row.before = v;
    auto it = after.values.find(k);
    if (it == after.values.end()) {
      row.only_before = true;
      row.delta = -v;
    } else {
      row.after = it->second;
      row.delta = it->second - v;
      if (only_changed && row.delta == 0.0) continue;
    }
    rows.push_back(std::move(row));
  }
  for (const auto& [k, v] : after.values) {
    if (before.values.find(k) != before.values.end()) continue;
    MetricsDiffRow row;
    row.key = k;
    row.after = v;
    row.delta = v;
    row.only_after = true;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricsDiffRow& a, const MetricsDiffRow& b) {
              const int sa = (a.only_before || a.only_after) ? 0 : 1;
              const int sb = (b.only_before || b.only_after) ? 0 : 1;
              if (sa != sb) return sa < sb;
              if (std::fabs(a.delta) != std::fabs(b.delta)) {
                return std::fabs(a.delta) > std::fabs(b.delta);
              }
              return a.key < b.key;
            });
  return rows;
}

/// Human-readable rendering, one row per line:
///   cpu.3.passes           1200 -> 1350   (+150)
///   thread.web.7.misses    (gone, was 2)
/// `limit` truncates long reports (0 = unlimited); a trailing line counts
/// what was cut, so truncation is never silent.
[[nodiscard]] inline std::string format_metrics_diff(
    const std::vector<MetricsDiffRow>& rows, std::size_t limit = 0) {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const MetricsDiffRow& row : rows) {
    if (limit > 0 && shown >= limit) break;
    os << "  " << row.key << "  ";
    if (row.only_before) {
      os << "(gone, was " << row.before << ")";
    } else if (row.only_after) {
      os << "(new: " << row.after << ")";
    } else {
      os << row.before << " -> " << row.after << "  ("
         << (row.delta >= 0 ? "+" : "") << row.delta << ")";
    }
    os << "\n";
    ++shown;
  }
  if (limit > 0 && rows.size() > limit) {
    os << "  ... " << (rows.size() - limit) << " more rows truncated\n";
  }
  if (rows.empty()) os << "  (no differences)\n";
  return os.str();
}

}  // namespace hrt::telemetry
