// Flight-recorder record format (docs/OBSERVABILITY.md).
//
// Every instrumentation point in the scheduler stack emits one fixed-size
// binary record into its CPU's ring.  The format is deliberately compact —
// 24 bytes, no strings, no allocation — so the recorder's cost per event is
// a handful of stores and stays off the simulated machine's books entirely
// (telemetry is a pure observer: it charges no simulated time, which is what
// makes a telemetry-on run bit-identical to a telemetry-off run).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace hrt::telemetry {

/// What a flight-recorder record describes.  The `arg` payload per kind:
///   kPass          pass reason (nk::PassReason)
///   kSwitch        none (tid = dispatched thread)
///   kKick          none
///   kTimerArm      one-shot delay in ns
///   kAdmitOk/Rej   requested utilization in ppm
///   kDeadlineMiss  lateness in ns (tid = missing thread)
///   kMigrate*      peer CPU
///   kAperiodicMigrate  source CPU
///   kSplitPlan     number of pipeline chunks
///   kStorm*/kDrain/kShed/kRestore  observed fraction / moved util in ppm
///   kBarrierArrive/Release  arrival count
///   kSloAlert      burn rate in ppm (arg), tid = 0
///   kNodeUp/Down/Drain  cluster node lifecycle (cpu = node id)
///   kReplace       re-placement of a cluster job (tid = job id,
///                  arg = destination node)
///   kPreempt       cluster-level best-effort preemption (tid = job id)
///   kClusterShed   cluster-level shed of an RT job (tid = job id,
///                  arg = tenant criticality)
///   kCustom        benchmark-defined
enum class EventKind : std::uint8_t {
  kPass = 0,
  kSwitch,
  kKick,
  kTimerArm,
  kAdmitOk,
  kAdmitReject,
  kDeadlineMiss,
  kMigrateRequest,
  kMigrateOut,
  kMigrateIn,
  kAperiodicMigrate,
  kSplitPlan,
  kStormEnter,
  kStormExit,
  kDrain,
  kShed,
  kRestore,
  kBarrierArrive,
  kBarrierRelease,
  kSloAlert,
  kNodeUp,
  kNodeDown,
  kNodeDrain,
  kReplace,
  kPreempt,
  kClusterShed,
  kCustom,
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCustom) + 1;

[[nodiscard]] const char* event_kind_name(EventKind k);

/// One flight-recorder entry.  `gen` carries the low bits of the ring lap
/// count at write time, so a consumer looking at a raw dump can tell records
/// from different wraparound generations apart even without the ring's
/// sequence metadata.
struct Record {
  sim::Nanos time = 0;     // virtual (simulated) nanoseconds
  std::int64_t arg = 0;    // kind-specific payload (see EventKind)
  std::uint32_t tid = 0;   // thread id, or 0 when not thread-scoped
  std::uint16_t cpu = 0;   // emitting CPU
  EventKind kind = EventKind::kCustom;
  std::uint8_t gen = 0;    // ring generation (lap) low byte
};

static_assert(sizeof(Record) == 24, "flight-recorder records must stay compact");

}  // namespace hrt::telemetry
