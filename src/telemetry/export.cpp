#include "telemetry/export.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <string>

#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::telemetry {

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// Chrome ts is in microseconds; keep 3 decimals so distinct ns timestamps
/// stay distinct (exact value rides in args.t).
void write_ts_us(std::ostream& os, sim::Nanos t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  os << buf;
}

void write_instant(std::ostream& os, const Record& r, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"(    {"name":")" << event_kind_name(r.kind) << R"(","ph":"i","ts":)";
  write_ts_us(os, r.time);
  os << R"(,"pid":)" << (r.cpu + 1) << R"(,"tid":)" << r.tid
     << R"(,"s":"t","args":{"t":)" << r.time << R"(,"arg":)" << r.arg
     << R"(,"gen":)" << static_cast<int>(r.gen) << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const std::vector<Record>& events,
                        const ChromeTraceOptions& opts, const Telemetry* tel) {
  os << "{\n  \"traceEvents\": [\n";
  bool first = true;
  for (const Record& r : events) write_instant(os, r, first);

  if (opts.run_spans) {
    // Derive "X" run spans per CPU from consecutive switch records: thread T
    // runs from its dispatch until the next dispatch on that CPU.
    const std::uint32_t max_cpu = [&] {
      std::uint32_t m = 0;
      for (const Record& r : events) m = std::max<std::uint32_t>(m, r.cpu);
      return m;
    }();
    for (std::uint32_t cpu = 0; cpu <= max_cpu; ++cpu) {
      const Record* open = nullptr;
      for (const Record& r : events) {
        if (r.cpu != cpu || r.kind != EventKind::kSwitch) continue;
        if (open != nullptr && open->tid != 0) {
          if (!first) os << ",\n";
          first = false;
          os << R"(    {"name":"run t)" << open->tid
             << R"(","ph":"X","ts":)";
          write_ts_us(os, open->time);
          os << R"(,"dur":)";
          write_ts_us(os, r.time - open->time);
          os << R"(,"pid":)" << (cpu + 1) << R"(,"tid":)" << open->tid
             << R"(,"args":{"t":)" << open->time << "}}";
        }
        open = &r;
      }
    }
  }

  if (opts.counters && tel != nullptr) {
    const MetricsRegistry& m = tel->metrics();
    sim::Nanos last = 0;
    for (const Record& r : events) last = std::max(last, r.time);
    for (std::uint32_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
      if (!first) os << ",\n";
      first = false;
      os << R"(    {"name":"effective-capacity","ph":"C","ts":)";
      write_ts_us(os, last);
      os << R"(,"pid":)" << (cpu + 1) << R"(,"tid":0,"args":{"cap":)"
         << m.cpu(cpu).effective_capacity << "}}";
    }
  }

  os << "\n  ],\n  \"displayTimeUnit\": \"ns\"\n}\n";
}

void write_chrome_trace(std::ostream& os, const Telemetry& tel,
                        const ChromeTraceOptions& opts) {
  write_chrome_trace(os, tel.recorder().snapshot_all(), opts, &tel);
}

std::vector<Record> from_sim_trace(const sim::Trace& trace,
                                   std::uint32_t cpu) {
  std::vector<Record> out;
  for (const sim::TraceRecord& r : trace.records()) {
    if (cpu != ~0u && r.cpu != cpu) continue;
    Record rec;
    rec.time = r.time;
    rec.cpu = static_cast<std::uint16_t>(r.cpu);
    switch (r.kind) {
      case sim::TraceKind::kSwitch:
        rec.kind = EventKind::kSwitch;
        rec.tid = static_cast<std::uint32_t>(r.value);
        break;
      case sim::TraceKind::kSchedPass:
        rec.kind = EventKind::kPass;
        rec.arg = r.value;
        break;
      case sim::TraceKind::kIrqEnter:
        rec.kind = EventKind::kKick;
        rec.arg = r.value;  // vector
        break;
      default:
        continue;  // pin / active / inactive / exit: no recorder analogue
    }
    out.push_back(rec);
  }
  return out;
}

namespace {

/// Find `"key":` in `obj` and return the character index just past the
/// colon, or npos.
std::size_t find_key(std::string_view obj, std::string_view key) {
  const std::string pat = "\"" + std::string(key) + "\":";
  const std::size_t p = obj.find(pat);
  return p == std::string_view::npos ? p : p + pat.size();
}

std::string get_string(std::string_view obj, std::string_view key) {
  std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return {};
  while (p < obj.size() && (obj[p] == ' ' || obj[p] == '\t')) ++p;
  if (p >= obj.size() || obj[p] != '"') return {};
  ++p;
  const std::size_t e = obj.find('"', p);
  if (e == std::string_view::npos) return {};
  return std::string(obj.substr(p, e - p));
}

double get_number(std::string_view obj, std::string_view key, double def) {
  std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return def;
  while (p < obj.size() && (obj[p] == ' ' || obj[p] == '\t')) ++p;
  std::size_t e = p;
  while (e < obj.size() &&
         (std::isdigit(static_cast<unsigned char>(obj[e])) || obj[e] == '-' ||
          obj[e] == '+' || obj[e] == '.' || obj[e] == 'e' || obj[e] == 'E')) {
    ++e;
  }
  double v = def;
  std::from_chars(obj.data() + p, obj.data() + e, v);
  return v;
}

}  // namespace

ParsedTrace parse_chrome_trace(std::string_view json) {
  ParsedTrace out;
  const std::size_t key = json.find("\"traceEvents\"");
  if (key == std::string_view::npos) {
    out.error = "no traceEvents key";
    return out;
  }
  const std::size_t open = json.find('[', key);
  if (open == std::string_view::npos) {
    out.error = "no traceEvents array";
    return out;
  }
  std::size_t i = open + 1;
  int array_depth = 1;
  while (i < json.size() && array_depth > 0) {
    const char c = json[i];
    if (c == ']') {
      --array_depth;
      ++i;
    } else if (c == '[') {
      ++array_depth;
      ++i;
    } else if (c == '{') {
      // Balanced-brace scan of one event object (no nested strings with
      // braces in our exporter's output).
      int depth = 0;
      std::size_t j = i;
      for (; j < json.size(); ++j) {
        if (json[j] == '{') ++depth;
        if (json[j] == '}' && --depth == 0) break;
      }
      if (j >= json.size()) {
        out.error = "unbalanced object";
        return out;
      }
      const std::string_view obj = json.substr(i, j - i + 1);
      ParsedEvent ev;
      ev.name = get_string(obj, "name");
      ev.phase = get_string(obj, "ph");
      ev.ts_us = get_number(obj, "ts", 0.0);
      ev.pid = static_cast<std::int64_t>(get_number(obj, "pid", 0.0));
      ev.tid = static_cast<std::int64_t>(get_number(obj, "tid", 0.0));
      ev.dur_us = get_number(obj, "dur", 0.0);
      ev.t_ns = static_cast<std::int64_t>(get_number(obj, "t", 0.0));
      if (ev.name.empty() || ev.phase.empty()) {
        out.error = "event missing name/ph";
        return out;
      }
      out.events.push_back(std::move(ev));
      i = j + 1;
    } else {
      ++i;
    }
  }
  if (array_depth != 0) {
    out.error = "unterminated traceEvents array";
    return out;
  }
  out.ok = true;
  return out;
}

namespace {

void write_log_hist(std::ostream& os, const LogHistogram& h) {
  os << "{\"count\": " << h.total() << ", \"min\": " << h.min()
     << ", \"mean\": " << h.mean() << ", \"p50\": " << h.quantile(0.50)
     << ", \"p90\": " << h.quantile(0.90) << ", \"p99\": " << h.quantile(0.99)
     << ", \"max\": " << h.max() << "}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const Telemetry& tel,
                        sim::Nanos now) {
  const MetricsRegistry& m = tel.metrics();
  os << "{\n  \"schema\": \"hrt-metrics-v1\",\n";
  os << "  \"now_ns\": " << now << ",\n";
  os << "  \"cpus\": [\n";
  for (std::uint32_t c = 0; c < m.num_cpus(); ++c) {
    const CpuMetrics& cm = m.cpu(c);
    os << "    {\"cpu\": " << c << ", \"passes\": " << cm.passes
       << ", \"switches\": " << cm.switches << ", \"kicks\": " << cm.kicks
       << ", \"timer_arms\": " << cm.timer_arms
       << ", \"admits_ok\": " << cm.admits_ok
       << ", \"admits_rejected\": " << cm.admits_rejected
       << ", \"completions\": " << cm.completions
       << ", \"misses\": " << cm.misses
       << ", \"migrations_in\": " << cm.migrations_in
       << ", \"migrations_out\": " << cm.migrations_out
       << ", \"sheds\": " << cm.sheds << ", \"restores\": " << cm.restores
       << ", \"pass_span_ns\": {\"count\": " << cm.pass_span_ns.count()
       << ", \"mean\": " << cm.pass_span_ns.mean()
       << ", \"max\": " << cm.pass_span_ns.max() << "}"
       << ", \"effective_capacity\": " << cm.effective_capacity << "}"
       << (c + 1 < m.num_cpus() ? ",\n" : "\n");
  }
  os << "  ],\n";

  os << "  \"threads\": [\n";
  const auto threads = m.threads_sorted();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const ThreadMetrics& tm = *threads[i];
    os << "    {\"tid\": " << tm.tid << ", \"name\": \"";
    json_escape(os, tm.name);
    os << "\", \"completions\": " << tm.completions
       << ", \"misses\": " << tm.misses << ", \"slack_ns\": ";
    write_log_hist(os, tm.slack_ns);
    os << ", \"lateness_ns\": ";
    write_log_hist(os, tm.lateness_ns);
    os << "}" << (i + 1 < threads.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"threads_dropped\": " << m.threads_dropped() << ",\n";

  os << "  \"slos\": [\n";
  const auto slos = tel.slo().status(now);
  for (std::size_t i = 0; i < slos.size(); ++i) {
    const SloStatus& s = slos[i];
    os << "    {\"name\": \"";
    json_escape(os, s.spec->name);
    os << "\", \"thread_match\": \"";
    json_escape(os, s.spec->thread_match);
    os << "\", \"miss_budget\": " << s.spec->miss_budget
       << ", \"window_ns\": " << s.spec->window_ns
       << ", \"completions\": " << s.completions
       << ", \"misses\": " << s.misses << ", \"burn_rate\": " << s.burn_rate
       << ", \"alerting\": " << (s.alerting ? "true" : "false")
       << ", \"alerts\": " << s.alerts << "}"
       << (i + 1 < slos.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  const FlightRecorder& rec = tel.recorder();
  os << "  \"recorder\": {\"written\": " << rec.written()
     << ", \"dropped\": " << rec.dropped()
     << ", \"ring_capacity\": " << rec.ring(0).capacity()
     << ", \"sampled_cost_ns\": {\"samples\": "
     << rec.sampled_cost_ns().count()
     << ", \"mean\": " << rec.sampled_cost_ns().mean() << "}}\n";
  os << "}\n";
}

}  // namespace hrt::telemetry
