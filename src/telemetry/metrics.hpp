// Streaming metrics layer (docs/OBSERVABILITY.md).
//
// Unlike the flight recorder — which keeps the *recent* event history — the
// metrics registry keeps bounded-size aggregates over the whole run:
// log-bucketed per-thread deadline-slack/lateness histograms, per-CPU
// pass-span and effective-capacity gauges, and monotonic counters.  All
// host-side state; nothing here charges simulated time.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hrt::telemetry {

/// Log2-bucketed histogram over non-negative nanosecond values.  Bucket 0
/// holds exactly {0}; bucket b >= 1 covers [2^(b-1), 2^b).  Quantiles are
/// extracted by linear interpolation within the winning bucket, clamped to
/// the exact observed min/max so the tails never over-report.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // {0} + 64 powers of two

  void add(std::uint64_t v) {
    ++counts_[bucket_of(v)];
    ++total_;
    sum_ += static_cast<double>(v);
    if (total_ == 1 || v < min_) min_ = v;
    if (total_ == 1 || v > max_) max_ = v;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t min() const { return total_ > 0 ? min_ : 0; }
  [[nodiscard]] std::uint64_t max() const { return total_ > 0 ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return counts_[b];
  }
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
  }
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// q in [0, 1]; returns 0 on an empty histogram.
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const double rank = q * static_cast<double>(total_ - 1);
    double cum = 0.0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const double c = static_cast<double>(counts_[b]);
      if (c == 0.0) continue;
      if (rank < cum + c) {
        if (b == 0) return 0.0;
        const double frac = (rank - cum + 0.5) / c;
        const double lo = static_cast<double>(bucket_lo(b));
        double v = lo + frac * lo;  // bucket width equals its lower bound
        const double mn = static_cast<double>(min_);
        const double mx = static_cast<double>(max_);
        if (v < mn) v = mn;
        if (v > mx) v = mx;
        return v;
      }
      cum += c;
    }
    return static_cast<double>(max_);
  }

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// Per-thread deadline statistics.  Slack is (deadline - completion) for
/// arrivals that met their deadline; lateness is (completion - deadline) for
/// the ones that missed.
struct ThreadMetrics {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;
  LogHistogram slack_ns;
  LogHistogram lateness_ns;
};

/// Per-CPU gauges and monotonic counters.
struct CpuMetrics {
  std::uint64_t passes = 0;
  std::uint64_t switches = 0;
  std::uint64_t kicks = 0;
  std::uint64_t timer_arms = 0;
  std::uint64_t admits_ok = 0;
  std::uint64_t admits_rejected = 0;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t sheds = 0;
  std::uint64_t restores = 0;
  sim::RunningStats pass_span_ns;   // executor handler span (scheduler path)
  double effective_capacity = 0.0;  // gauge: RT capacity after degradation
};

class MetricsRegistry {
 public:
  MetricsRegistry(std::uint32_t num_cpus, std::size_t max_threads)
      : cpus_(num_cpus), max_threads_(max_threads) {}

  [[nodiscard]] CpuMetrics& cpu(std::uint32_t c) { return cpus_[c]; }
  [[nodiscard]] const CpuMetrics& cpu(std::uint32_t c) const {
    return cpus_[c];
  }
  [[nodiscard]] std::uint32_t num_cpus() const {
    return static_cast<std::uint32_t>(cpus_.size());
  }

  /// Record one arrival close.  `lateness` is signed: negative means the
  /// deadline was met with that much slack.
  void on_completion(std::uint32_t cpu, std::uint32_t tid,
                     std::string_view name, sim::Nanos lateness) {
    ++cpus_[cpu].completions;
    ThreadMetrics* tm = thread_slot(tid, name);
    if (lateness > 0) {
      ++cpus_[cpu].misses;
      if (tm != nullptr) {
        ++tm->completions;
        ++tm->misses;
        tm->lateness_ns.add(static_cast<std::uint64_t>(lateness));
      }
    } else if (tm != nullptr) {
      ++tm->completions;
      tm->slack_ns.add(static_cast<std::uint64_t>(-lateness));
    }
  }

  /// Deadline windows skipped outright (late service elapsed whole periods):
  /// misses with no completion event of their own.
  void on_skipped(std::uint32_t cpu, std::uint32_t tid, std::string_view name,
                  std::uint64_t n) {
    cpus_[cpu].misses += n;
    ThreadMetrics* tm = thread_slot(tid, name);
    if (tm != nullptr) tm->misses += n;
  }

  [[nodiscard]] const ThreadMetrics* thread(std::uint32_t tid) const {
    auto it = threads_.find(tid);
    return it == threads_.end() ? nullptr : &it->second;
  }
  /// Stable (tid-sorted) view for export.
  [[nodiscard]] std::vector<const ThreadMetrics*> threads_sorted() const;
  [[nodiscard]] std::uint64_t threads_dropped() const {
    return threads_dropped_;
  }

 private:
  ThreadMetrics* thread_slot(std::uint32_t tid, std::string_view name) {
    auto it = threads_.find(tid);
    if (it != threads_.end()) return &it->second;
    if (threads_.size() >= max_threads_) {
      ++threads_dropped_;
      return nullptr;
    }
    ThreadMetrics& tm = threads_[tid];
    tm.tid = tid;
    tm.name.assign(name.data(), name.size());
    return &tm;
  }

  std::vector<CpuMetrics> cpus_;
  std::unordered_map<std::uint32_t, ThreadMetrics> threads_;
  std::size_t max_threads_;
  std::uint64_t threads_dropped_ = 0;
};

}  // namespace hrt::telemetry
