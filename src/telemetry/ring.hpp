// Lock-free SPSC flight-recorder ring (docs/OBSERVABILITY.md).
//
// One ring per CPU, one writer (the code instrumented on that CPU), any
// number of snapshot readers.  The ring never blocks the writer: when full
// it overwrites the oldest slot (drop-oldest, the flight-recorder policy —
// the most recent history is the valuable part).  Each slot carries a
// per-slot sequence tag in the seqlock style: odd while a write is in
// flight, even (2 * (logical_index + 1)) once committed.  A reader copies
// the slot and re-checks the tag; a concurrent overwrite of that slot shows
// up as a tag change and the torn copy is discarded rather than returned.
//
// Inside the simulator all CPUs of one System run on a single host thread,
// so writer and reader never actually race there; the real atomics matter
// for the cross-thread stress test (tests/test_telemetry.cpp) and keep the
// design honest for a native port.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/record.hpp"

namespace hrt::telemetry {

class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Writer side.  Always succeeds; a full ring drops its oldest record.
  void push(const Record& r) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    // Odd tag: write in flight.  Readers that see it skip the slot.
    s.seq.store(2 * h + 1, std::memory_order_release);
    s.rec = r;
    s.rec.gen = static_cast<std::uint8_t>(h / capacity_);
    // Even tag encodes the logical index, so a reader can verify the copy
    // belongs to the generation it expected (wraparound detection).
    s.seq.store(2 * (h + 1), std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Total records ever pushed.
  [[nodiscard]] std::uint64_t written() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Records overwritten by wraparound (drop-oldest).
  [[nodiscard]] std::uint64_t dropped() const {
    const std::uint64_t h = written();
    return h > capacity_ ? h - capacity_ : 0;
  }

  /// Oldest logical index still retained.
  [[nodiscard]] std::uint64_t first_retained() const {
    const std::uint64_t h = written();
    return h > capacity_ ? h - capacity_ : 0;
  }

  /// Copy out the retained window, oldest first.  Slots overwritten (or
  /// mid-write) during the copy are skipped; `torn` (optional) counts them.
  [[nodiscard]] std::vector<Record> snapshot(
      std::uint64_t* torn = nullptr) const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t lo = h > capacity_ ? h - capacity_ : 0;
    std::vector<Record> out;
    out.reserve(static_cast<std::size_t>(h - lo));
    std::uint64_t skipped = 0;
    for (std::uint64_t i = lo; i < h; ++i) {
      const Slot& s = slots_[i & mask_];
      const std::uint64_t before = s.seq.load(std::memory_order_acquire);
      Record r = s.rec;
      std::atomic_thread_fence(std::memory_order_acquire);
      const std::uint64_t after = s.seq.load(std::memory_order_relaxed);
      if (before == after && before == 2 * (i + 1)) {
        out.push_back(r);
      } else {
        ++skipped;  // overwritten or being written while we copied
      }
    }
    if (torn != nullptr) *torn = skipped;
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    Record rec{};
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace hrt::telemetry
