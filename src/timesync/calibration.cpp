#include "timesync/calibration.hpp"

#include "hw/machine.hpp"

namespace hrt::timesync {

CalibrationResult calibrate(hw::Machine& machine) {
  CalibrationResult result;
  result.performed = true;
  result.residual_cycles.resize(machine.num_cpus(), 0);

  const auto& spec = machine.spec();
  const sim::Frequency freq = spec.freq;
  sim::Rng rng = machine.rng().fork(0xCA1B);

  for (std::uint32_t i = 1; i < machine.num_cpus(); ++i) {
    hw::Cpu& c = machine.cpu(i);
    // The true phase difference the exchange is trying to estimate.
    const sim::Nanos true_offset_ns = c.tsc().true_offset_ns();

    // Estimation noise: the exchange and the TSC write both take
    // multi-cycle instruction sequences, so the estimate lands within a
    // clamped normal of the truth.
    sim::Cycles noise =
        static_cast<sim::Cycles>(rng.normal(
            0.0, static_cast<double>(spec.skew.calib_error_std)));
    if (noise > spec.skew.calib_error_max) noise = spec.skew.calib_error_max;
    if (noise < -spec.skew.calib_error_max) noise = -spec.skew.calib_error_max;

    const sim::Cycles measured =
        freq.ns_to_cycles(true_offset_ns) + noise;

    // Write the predicted value (or apply the equivalent software offset on
    // machines whose TSC is not writable; the observable wall clock is the
    // same either way).
    c.tsc().adjust_cycles(-measured);

    result.residual_cycles[i] = freq.ns_to_cycles(c.tsc().true_offset_ns());
  }
  return result;
}

}  // namespace hrt::timesync
