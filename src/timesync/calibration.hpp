// Boot-time cross-CPU cycle counter calibration (section 3.4, Figure 3).
//
// Each CPU's kernel boot begins at a slightly different time, so raw TSC
// readings disagree about wall clock.  At boot the local schedulers run a
// barrier-like exchange against CPU 0 (whose counter *defines* wall-clock
// time), estimate each counter's phase, and — on hardware that allows it —
// write the counter with the predicted value.  Both the measurement and the
// write execute instruction sequences whose granularity exceeds a cycle, so
// a residual error remains; the paper measures it at under ~1000 cycles
// across all 256 CPUs of the Phi.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hrt::hw {
class Machine;
}

namespace hrt::timesync {

struct CalibrationResult {
  bool performed = false;
  /// Per-CPU residual offset vs CPU 0, in cycles, after correction.
  /// Ground truth (a real system can only bound this, not read it).
  std::vector<sim::Cycles> residual_cycles;

  [[nodiscard]] sim::Cycles max_abs_residual() const {
    sim::Cycles m = 0;
    for (auto r : residual_cycles) {
      const sim::Cycles a = r < 0 ? -r : r;
      if (a > m) m = a;
    }
    return m;
  }
};

/// Estimate every CPU's TSC offset relative to CPU 0 and apply the
/// write-back correction.  The estimation error of each exchange is drawn
/// from the machine spec's calibration noise model.
CalibrationResult calibrate(hw::Machine& machine);

}  // namespace hrt::timesync
