#include "baseline/tick_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "nautilus/executor.hpp"

namespace hrt::baseline {

nk::PassResult TickScheduler::pass(nk::PassReason reason, sim::Nanos now) {
  if (reason == nk::PassReason::kTimer) ++ticks_;

  // Wake sleepers whose time has come.
  while (!sleepers_.empty() && sleepers_.top()->wake_time <= now) {
    nk::Thread* t = sleepers_.pop();
    t->state = nk::Thread::State::kReady;
    ready_.push_back(t);
  }

  nk::Thread* cur = exec_->current();
  const bool cur_runnable =
      cur != nullptr && cur->state == nk::Thread::State::kRunning;

  nk::Thread* next = cur_runnable ? cur : nullptr;
  if (cur_runnable && !cur->is_idle) {
    ++quantum_used_;
    if ((quantum_used_ >= cfg_.quantum_ticks ||
         reason == nk::PassReason::kYield) &&
        !ready_.empty()) {
      ready_.push_back(cur);
      next = nullptr;
    }
  }
  if (next == nullptr || next->is_idle) {
    if (!ready_.empty()) {
      next = ready_.front();
      ready_.pop_front();
      quantum_used_ = 0;
    } else if (next == nullptr) {
      next = kernel_.idle_thread(cpu_);
    }
  }

  nk::PassResult res;
  res.next = next;
  // All queued tasks run inline; this scheduler has no RT thread to protect.
  while (!tasks_.empty()) {
    res.task_ns += std::max<sim::Nanos>(tasks_.front().size, 0);
    res.task_callbacks.push_back(std::move(tasks_.front().fn));
    tasks_.pop_front();
  }
  const auto& cost = kernel_.machine().spec().cost;
  res.pass_cycles =
      cost.sched_pass_base +
      cost.sched_pass_per_thread * static_cast<sim::Cycles>(thread_count());
  return res;
}

void TickScheduler::arm_timer(sim::Nanos /*now*/) {
  // Conventional periodic tick: always re-arm at the fixed rate, whether or
  // not anything is runnable.  This is precisely the noise source tickless
  // designs remove.
  kernel_.machine().cpu(cpu_).apic().arm_oneshot(cfg_.tick);
}

bool TickScheduler::change_constraints(nk::Thread& t, const rt::Constraints& c,
                                       sim::Nanos /*gamma*/) {
  // No real-time support: aperiodic requests succeed (priority is kept),
  // real-time requests are refused.
  if (c.cls != rt::ConstraintClass::kAperiodic) return false;
  t.constraints = c;
  return true;
}

void TickScheduler::enqueue(nk::Thread* t) {
  t->state = nk::Thread::State::kReady;
  ready_.push_back(t);
}

void TickScheduler::on_sleep(nk::Thread& t, sim::Nanos wake_local) {
  t.wake_time = wake_local;
  if (!sleepers_.push(&t)) {
    throw std::runtime_error("TickScheduler: sleep queue full");
  }
}

bool TickScheduler::try_wake(nk::Thread& t) {
  if (!sleepers_.remove(&t)) return false;
  t.state = nk::Thread::State::kReady;
  ready_.push_back(&t);
  return true;
}

void TickScheduler::submit_task(nk::Task task) {
  tasks_.push_back(std::move(task));
}

std::size_t TickScheduler::stealable_count() const {
  std::size_t n = 0;
  for (const nk::Thread* t : ready_) {
    if (!t->bound && !t->is_idle) ++n;
  }
  return n;
}

nk::Thread* TickScheduler::try_steal() {
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if (!(*it)->bound && !(*it)->is_idle) {
      nk::Thread* t = *it;
      ready_.erase(it);
      return t;
    }
  }
  return nullptr;
}

std::size_t TickScheduler::thread_count() const {
  return ready_.size() + sleepers_.size() +
         (exec_ != nullptr && exec_->current() != nullptr ? 1 : 0);
}

}  // namespace hrt::baseline
