// Baseline non-real-time scheduler: a commodity-style fixed-tick
// round-robin policy.
//
// The paper's non-hard-real-time comparison point is its own scheduler's
// aperiodic class (round-robin at 10 Hz); this module additionally provides
// a conventional periodic-tick scheduler (not tickless, no RT classes, no
// admission control) so the test suite can demonstrate the kernel's
// scheduler pluggability and quantify the "OS noise" a fixed tick imposes
// on a parallel workload.
#pragma once

#include <cstdint>
#include <deque>

#include "nautilus/kernel.hpp"
#include "nautilus/scheduler.hpp"
#include "nautilus/thread.hpp"
#include "rt/queues.hpp"

namespace hrt::baseline {

class TickScheduler final : public nk::SchedulerBase {
 public:
  struct Config {
    sim::Nanos tick = sim::millis(1);  // 1 kHz periodic tick
    std::uint32_t quantum_ticks = 10;  // RR quantum in ticks
    std::size_t max_threads = 1024;    // sleep-queue capacity
  };

  TickScheduler(nk::Kernel& kernel, std::uint32_t cpu, Config cfg)
      : kernel_(kernel),
        cpu_(cpu),
        cfg_(cfg),
        sleepers_(cfg.max_threads) {}

  void attach(nk::CpuExecutor* exec) override { exec_ = exec; }
  nk::PassResult pass(nk::PassReason reason, sim::Nanos now) override;
  void arm_timer(sim::Nanos now) override;
  bool change_constraints(nk::Thread& t, const rt::Constraints& c,
                          sim::Nanos gamma) override;
  [[nodiscard]] sim::Cycles admission_cost_cycles(
      const nk::Thread&, const rt::Constraints&) const override {
    return 500;  // no analysis: just a class check and a field write
  }
  void enqueue(nk::Thread* t) override;
  void on_sleep(nk::Thread& t, sim::Nanos wake_local) override;
  void on_exit(nk::Thread&) override {}
  bool try_wake(nk::Thread& t) override;
  void submit_task(nk::Task task) override;
  [[nodiscard]] std::size_t stealable_count() const override;
  nk::Thread* try_steal() override;
  [[nodiscard]] std::size_t thread_count() const override;
  [[nodiscard]] double admitted_utilization() const override { return 0.0; }

  [[nodiscard]] std::uint64_t ticks_seen() const { return ticks_; }

  static nk::Kernel::SchedulerFactory factory(Config cfg) {
    return [cfg](nk::Kernel& k, std::uint32_t cpu) {
      return std::make_unique<TickScheduler>(k, cpu, cfg);
    };
  }

 private:
  struct WakeBefore {
    bool operator()(const nk::Thread* a, const nk::Thread* b) const {
      return a->wake_time < b->wake_time;
    }
  };

  nk::Kernel& kernel_;
  std::uint32_t cpu_;
  Config cfg_;
  nk::CpuExecutor* exec_ = nullptr;
  std::deque<nk::Thread*> ready_;
  // Earliest-wake heap: the per-tick sleeper sweep peeks top() instead of
  // scanning, and try_wake removes in O(log n) via the intrusive index.
  rt::BoundedHeap<nk::Thread*, WakeBefore, rt::MemberIndex<nk::Thread*>>
      sleepers_;
  std::deque<nk::Task> tasks_;
  std::uint64_t ticks_ = 0;
  std::uint32_t quantum_used_ = 0;
};

}  // namespace hrt::baseline
