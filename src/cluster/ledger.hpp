// Cluster utilization ledger: per-node rollups of the node tier's lock-free
// per-CPU UtilizationLedger words (docs/CLUSTER.md).
//
// The controller refreshes this cache once per control tick by summing each
// node's per-CPU committed/capacity words — the same Q32.32 raw fixed-point
// quanta the node's schedulers publish, so the rollup is exact integer
// arithmetic with no float drift.  Because the node ledger already carries
// the resilience controller's degraded capacity publication
// (StormController -> set_capacity), a storm-flagged node's degradation
// propagates cluster-wide through the same rollup; the entry additionally
// counts storm-flagged CPUs so placement can deprioritize the whole node.
//
// The kClusterLedger audit invariant (docs/AUDIT.md) recomputes the sums
// from the live node words at every tick and compares them to this cache
// bit-exactly — a stale or corrupted rollup is an audit violation, not a
// silent misplacement.  A down node must publish zero capacity (its frozen
// committed words are kept for post-mortem inspection).
#pragma once

#include <cstdint>
#include <vector>

#include "rt/fixed_point.hpp"
#include "sim/time.hpp"

namespace hrt::audit {
class Auditor;
}
namespace hrt::global {
class UtilizationLedger;
}
namespace hrt::resilience {
class StormController;
}

namespace hrt::cluster {

enum class NodeState : std::uint8_t {
  kUp,        // advancing, placeable
  kDraining,  // advancing, jobs being moved off, no new placements
  kDrained,   // advancing, empty of cluster jobs, no new placements
  kDown,      // frozen at its failure time
};

[[nodiscard]] const char* node_state_name(NodeState s);

class ClusterLedger {
 public:
  struct Entry {
    NodeState state = NodeState::kUp;
    rt::fp::Raw committed = 0;  // sum of per-CPU committed words
    rt::fp::Raw capacity = 0;   // sum of published (degraded) capacities;
                                // forced to 0 while the node is down/drained
    std::uint32_t storm_cpus = 0;
    std::uint32_t cpus = 0;
  };

  explicit ClusterLedger(std::uint32_t nodes) : entries_(nodes) {}

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] const Entry& entry(std::uint32_t node) const {
    return entries_[node];
  }

  /// Re-sum one node's per-CPU words into the cache.  `storm` may be null
  /// (offline tests).  Down and drained nodes contribute zero capacity —
  /// drained keeps serving what it still runs, but offers nothing new.
  void refresh(std::uint32_t node, const global::UtilizationLedger& src,
               const resilience::StormController* storm, NodeState state);

  [[nodiscard]] double committed(std::uint32_t node) const {
    return rt::fp::to_double(entries_[node].committed);
  }
  /// Capacity the cluster may place against: zero unless the node is up.
  /// (A draining node keeps its capacity on the books for what it still
  /// runs, but the controller's placement loop excludes it separately.)
  [[nodiscard]] double capacity(std::uint32_t node) const {
    return rt::fp::to_double(entries_[node].capacity);
  }
  [[nodiscard]] double headroom(std::uint32_t node) const {
    const Entry& e = entries_[node];
    return e.capacity > e.committed ? rt::fp::to_double(e.capacity - e.committed)
                                    : 0.0;
  }
  [[nodiscard]] bool storm_flagged(std::uint32_t node) const {
    return entries_[node].storm_cpus > 0;
  }

  [[nodiscard]] double total_committed() const;
  [[nodiscard]] double total_capacity() const;

  /// kClusterLedger invariant: recompute node's sums from the live words and
  /// compare to the cache bit-exactly; check the down/drained zero-capacity
  /// rule.  Returns true when consistent; records a violation otherwise.
  bool audit_node(audit::Auditor& auditor, sim::Nanos now, std::uint32_t node,
                  const global::UtilizationLedger& src,
                  const resilience::StormController* storm) const;

  /// Seeded-fault hook (tests only): corrupt the cached committed rollup so
  /// a test can prove the audit catches real divergence.
  void corrupt_committed(std::uint32_t node, rt::fp::Raw delta) {
    entries_[node].committed += delta;
  }

 private:
  static Entry recompute(const global::UtilizationLedger& src,
                         const resilience::StormController* storm,
                         NodeState state);

  std::vector<Entry> entries_;
};

}  // namespace hrt::cluster
