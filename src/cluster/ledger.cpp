#include "cluster/ledger.hpp"

#include <string>

#include "audit/auditor.hpp"
#include "global/ledger.hpp"
#include "resilience/storm.hpp"

namespace hrt::cluster {

const char* node_state_name(NodeState s) {
  switch (s) {
    case NodeState::kUp:
      return "up";
    case NodeState::kDraining:
      return "draining";
    case NodeState::kDrained:
      return "drained";
    case NodeState::kDown:
      return "down";
  }
  return "?";
}

ClusterLedger::Entry ClusterLedger::recompute(
    const global::UtilizationLedger& src,
    const resilience::StormController* storm, NodeState state) {
  Entry e;
  e.state = state;
  e.cpus = src.num_cpus();
  for (std::uint32_t c = 0; c < src.num_cpus(); ++c) {
    e.committed += src.committed_raw(c);
    if (state == NodeState::kUp || state == NodeState::kDraining) {
      e.capacity += src.capacity_raw(c);
    }
    if (storm != nullptr && storm->in_storm(c)) ++e.storm_cpus;
  }
  return e;
}

void ClusterLedger::refresh(std::uint32_t node,
                            const global::UtilizationLedger& src,
                            const resilience::StormController* storm,
                            NodeState state) {
  entries_[node] = recompute(src, storm, state);
}

double ClusterLedger::total_committed() const {
  rt::fp::Raw sum = 0;
  for (const Entry& e : entries_) sum += e.committed;
  return rt::fp::to_double(sum);
}

double ClusterLedger::total_capacity() const {
  rt::fp::Raw sum = 0;
  for (const Entry& e : entries_) sum += e.capacity;
  return rt::fp::to_double(sum);
}

bool ClusterLedger::audit_node(audit::Auditor& auditor, sim::Nanos now,
                               std::uint32_t node,
                               const global::UtilizationLedger& src,
                               const resilience::StormController* storm) const {
  if (!auditor.enabled() || !auditor.config().check_cluster_ledger) {
    return true;
  }
  auditor.count_check();
  const Entry& cached = entries_[node];
  const Entry live = recompute(src, storm, cached.state);
  if (cached.committed != live.committed) {
    auditor.record(audit::Invariant::kClusterLedger, node, now,
                   "node " + std::to_string(node) + " committed rollup " +
                       std::to_string(cached.committed) +
                       " != live per-CPU sum " + std::to_string(live.committed));
    return false;
  }
  if (cached.capacity != live.capacity) {
    auditor.record(audit::Invariant::kClusterLedger, node, now,
                   "node " + std::to_string(node) + " capacity rollup " +
                       std::to_string(cached.capacity) +
                       " != live per-CPU sum " + std::to_string(live.capacity));
    return false;
  }
  if ((cached.state == NodeState::kDown || cached.state == NodeState::kDrained) &&
      cached.capacity != 0) {
    auditor.record(audit::Invariant::kClusterLedger, node, now,
                   "node " + std::to_string(node) + " is " +
                       node_state_name(cached.state) +
                       " but publishes non-zero capacity " +
                       std::to_string(cached.capacity));
    return false;
  }
  return true;
}

}  // namespace hrt::cluster
