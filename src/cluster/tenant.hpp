// Tenant and job model for the cluster tier (docs/CLUSTER.md).
//
// A tenant owns jobs and carries two knobs the controller's placement loop
// reads: a fairshare `weight` (its slice of cluster capacity under
// contention) and a `criticality` rank (lower = more important — the same
// flipped-niceness convention as rt::AperiodicPriority).  Criticality is
// what failover consumes: when surviving capacity cannot hold everything,
// the controller sheds jobs from the least critical tenants first.
//
// A job is the unit of placement, re-placement, preemption, and shedding —
// jobs move between nodes whole, never thread-by-thread, because the node
// tier's admission guarantees (group admission, semi-partitioned splits)
// are per-job constructs.
#pragma once

#include <cstdint>
#include <string>

#include "rt/constraints.hpp"
#include "sim/time.hpp"

namespace hrt::cluster {

using JobId = std::uint64_t;

inline constexpr std::uint32_t kInvalidNode = 0xFFFFFFFFu;

struct TenantSpec {
  std::string name;
  /// Fairshare weight: under contention the tenant is entitled to
  /// weight / sum(weights) of the cluster's effective RT capacity; pending
  /// jobs of tenants over their share queue behind those under it.
  double weight = 1.0;
  /// Shed/placement rank; lower = more important.  Failover sheds jobs in
  /// decreasing criticality value (least important first), and a pending
  /// job may only displace jobs of strictly larger criticality.
  std::uint32_t criticality = 100;
};

/// How a job maps onto the node tier's spawn surface.
enum class JobKind : std::uint8_t {
  kGang,        // spawn_group_auto: n threads admitted together
  kPipeline,    // spawn_split: semi-partitioned chunk pipeline
  kBatch,       // spawn_batch: n independent RT threads, all-or-nothing
  kBestEffort,  // spawn_batch aperiodic: no reservation, preemptible
};

[[nodiscard]] const char* job_kind_name(JobKind k);

struct JobSpec {
  std::string tenant;
  std::string name;
  JobKind kind = JobKind::kGang;
  /// Per-thread constraints for kGang/kBatch; the whole logical task for
  /// kPipeline (the node's split planner carves it into chunks).  Ignored
  /// by kBestEffort except for priority.
  rt::Constraints constraints = rt::Constraints::aperiodic();
  /// Gang width / batch size / best-effort worker count (kPipeline derives
  /// its chunk count from the split plan instead).
  std::uint32_t threads = 1;
  /// Busy-loop chunk each worker computes between action boundaries; also
  /// the eviction latency bound — an evicted worker exits at its next
  /// boundary.
  sim::Nanos work_chunk = sim::millis(2);
};

enum class JobState : std::uint8_t {
  kPending,   // waiting for placement (includes re-placement after failure)
  kPlacing,   // spawned on a node, in-sim admission still in flight
  kRunning,   // every worker admitted (alive, for best-effort)
  kShed,      // evicted for capacity; retried like kPending when room returns
  kLost,      // node died and failover is disabled
  kFailed,    // exhausted max_place_attempts spawn/admission failures
};

[[nodiscard]] const char* job_state_name(JobState s);

}  // namespace hrt::cluster
