#include "cluster/controller.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "nautilus/behavior.hpp"
#include "nautilus/thread.hpp"

namespace hrt::cluster {

namespace {

/// Cluster-side eviction wrapper: the controller flips the shared flag and
/// the worker exits at its next action boundary (job-boundary semantics —
/// the same place migration hand-offs happen), releasing its utilization
/// through the scheduler's normal detach path.
class EvictableBehavior final : public nk::Behavior {
 public:
  EvictableBehavior(std::shared_ptr<std::atomic<bool>> stop,
                    std::unique_ptr<nk::Behavior> inner)
      : stop_(std::move(stop)), inner_(std::move(inner)) {}

  nk::Action next(nk::ThreadCtx& ctx) override {
    if (stop_->load(std::memory_order_relaxed)) return nk::Action::exit();
    return inner_->next(ctx);
  }

  [[nodiscard]] std::string describe() const override {
    return "evictable(" + inner_->describe() + ")";
  }

 private:
  std::shared_ptr<std::atomic<bool>> stop_;
  std::unique_ptr<nk::Behavior> inner_;
};

bool is_rt_kind(JobKind k) { return k != JobKind::kBestEffort; }

/// Best-effort workers run as background scavengers, well below the default
/// aperiodic priority.  Freshly spawned RT workers start aperiodic at the
/// default priority until their admission step commits — if best-effort
/// busy-loops ran at the same level they could starve that step forever and
/// the placement would hang in kPlacing.
constexpr rt::AperiodicPriority kBestEffortPriority =
    rt::kDefaultPriority + 10'000;

bool thread_live(const nk::Thread* t, nk::Thread::Id id) {
  // Pool reuse guard: a reaped TCB may be recycled under a new id; a stale
  // pointer with a changed id means OUR thread is gone.
  return t != nullptr && t->id == id && t->state != nk::Thread::State::kExited &&
         t->state != nk::Thread::State::kPooled;
}

}  // namespace

const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::kGang:
      return "gang";
    case JobKind::kPipeline:
      return "pipeline";
    case JobKind::kBatch:
      return "batch";
    case JobKind::kBestEffort:
      return "best-effort";
  }
  return "?";
}

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kPending:
      return "pending";
    case JobState::kPlacing:
      return "placing";
    case JobState::kRunning:
      return "running";
    case JobState::kShed:
      return "shed";
    case JobState::kLost:
      return "lost";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

ClusterController::ClusterController(Options opt)
    : opt_(std::move(opt)), ledger_(opt_.nodes) {
  if (opt_.nodes == 0) {
    throw std::invalid_argument("ClusterController: need at least one node");
  }
  if (opt_.control_period <= 0) opt_.control_period = sim::micros(500);
  auditor_ = std::make_unique<audit::Auditor>(opt_.audit);
  // The cluster hub's "cpu" axis is the NODE id: one flight-recorder ring
  // and one counter row per node.
  telemetry_ = std::make_unique<telemetry::Telemetry>(opt_.nodes,
                                                      opt_.telemetry);
  if (telemetry_->enabled()) telemetry_->attach_auditor(auditor_.get());
  nodes_.resize(opt_.nodes);
  for (std::uint32_t i = 0; i < opt_.nodes; ++i) {
    hrt::System::Options o = opt_.node_options;
    o.seed += i;  // decorrelate nodes, stay reproducible
    nodes_[i].sys = std::make_unique<hrt::System>(std::move(o));
    nodes_[i].sys->boot();
    emit(i, telemetry::EventKind::kNodeUp, 0, 0);
  }
  refresh_ledger();
}

ClusterController::~ClusterController() = default;

void ClusterController::add_tenant(TenantSpec spec) {
  for (auto& t : tenants_) {
    if (t.name == spec.name) {
      t = std::move(spec);  // re-registration updates the knobs
      return;
    }
  }
  tenants_.push_back(std::move(spec));
  tenant_delivered_.push_back(0);
  tenant_expected_.push_back(0);
}

std::size_t ClusterController::tenant_index(const std::string& name) {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].name == name) return i;
  }
  TenantSpec def;
  def.name = name;
  tenants_.push_back(std::move(def));
  tenant_delivered_.push_back(0);
  tenant_expected_.push_back(0);
  return tenants_.size() - 1;
}

JobId ClusterController::submit(JobSpec spec) {
  Job j;
  j.id = next_job_id_++;
  j.tenant = tenant_index(spec.tenant);
  j.spec = std::move(spec);
  jobs_.push_back(std::move(j));
  return jobs_.back().id;
}

void ClusterController::run_for(sim::Nanos d) {
  const sim::Nanos end = now_ + d;
  while (now_ < end) {
    const sim::Nanos next = std::min(end, now_ + opt_.control_period);
    const sim::Nanos dt = next - now_;
    for (Node& n : nodes_) {
      if (n.state == NodeState::kDown) continue;
      sim::Nanos target = next;
      if (n.fail_at >= 0) target = std::min(target, n.fail_at);
      if (n.sys->engine().now() < target) n.sys->run_until(target);
    }
    now_ = next;
    tick(dt);
  }
}

void ClusterController::fail_node(std::uint32_t node, sim::Nanos at) {
  Node& n = nodes_[node];
  if (n.state == NodeState::kDown) return;
  n.fail_at = std::max(now_, at);
}

void ClusterController::drain_node(std::uint32_t node) {
  Node& n = nodes_[node];
  if (n.state != NodeState::kUp) return;
  n.state = NodeState::kDraining;
  ++stats_.drains;
  emit(node, telemetry::EventKind::kNodeDrain, 0, 0);
}

void ClusterController::restore_node(std::uint32_t node) {
  Node& n = nodes_[node];
  if (n.state == NodeState::kUp) return;
  // A down node's engine is behind cluster time; the next advance catches it
  // up, and the zombie threads of its fenced placements exit at their first
  // action boundary — their jobs were already re-placed elsewhere, so
  // letting them run would double-execute.
  n.state = NodeState::kUp;
  n.fail_at = -1;
  n.down_since = -1;
  n.evictions.clear();
  emit(node, telemetry::EventKind::kNodeUp, 0, 0);
}

// --- control tick ----------------------------------------------------------

void ClusterController::tick(sim::Nanos dt) {
  ++stats_.ticks;
  detect_failures();
  refresh_ledger();
  progress_drains();
  update_job_states();
  coordinate_overload();
  place_pending_rt();
  if (opt_.preemption) enforce_best_effort_slots();
  if (opt_.backfill) backfill_best_effort();
  account_availability(dt);
  audit_ledger();
}

void ClusterController::detect_failures() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.state == NodeState::kDown || n.fail_at < 0 || n.fail_at > now_) {
      continue;
    }
    // Missed heartbeat: the node's engine stalled at fail_at < tick time.
    n.state = NodeState::kDown;
    n.down_since = n.fail_at;
    n.evictions.clear();
    ++stats_.failovers;
    stats_.detect_ns.add(static_cast<double>(now_ - n.fail_at));
    emit(i, telemetry::EventKind::kNodeDown, 0, now_ - n.fail_at);
    for (Job& j : jobs_) {
      if (j.cur.node != i ||
          (j.state != JobState::kPlacing && j.state != JobState::kRunning)) {
        continue;
      }
      // Fence the frozen threads (they only matter if the node is later
      // restored), drop the placement, and hand the job back to placement.
      j.cur.evict->store(true, std::memory_order_relaxed);
      if (j.state == JobState::kPlacing && is_rt_kind(j.spec.kind)) {
        n.inflight = std::max(0.0, n.inflight - j.cur.demand);
      }
      j.cur = Placement{};
      j.seamless = false;
      if (opt_.failover) {
        j.state = JobState::kPending;
        j.lost_at = n.fail_at;
        j.attempts = 0;
      } else {
        j.state = JobState::kLost;
      }
    }
  }
}

void ClusterController::refresh_ledger() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    // GC eviction records whose threads all exited: their utilization is in
    // the rollup again, so they stop counting as prospective headroom.
    n.shed_credit = 0.0;
    auto& ev = n.evictions;
    ev.erase(std::remove_if(ev.begin(), ev.end(),
                            [](const Node::EvictionRecord& r) {
                              for (std::size_t k = 0; k < r.threads.size();
                                   ++k) {
                                if (thread_live(r.threads[k], r.ids[k])) {
                                  return false;
                                }
                              }
                              return true;
                            }),
             ev.end());
    for (const auto& r : ev) n.shed_credit += r.demand;
    ledger_.refresh(i, n.sys->placement().ledger(), &n.sys->resilience(),
                    n.state);
  }
  if (opt_.test_faults.corrupt_rollup) {
    // Seeded fault: one raw ulp of divergence between the cache and the
    // live words; the tick's audit must catch it (refresh heals it next
    // tick, so every violation traces back to this line).
    ledger_.corrupt_committed(0, 1);
  }
}

void ClusterController::progress_drains() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.state != NodeState::kDraining) continue;
    bool any_left = false;
    for (Job& j : jobs_) {
      if (j.cur.node != i ||
          (j.state != JobState::kRunning && j.state != JobState::kPlacing)) {
        continue;
      }
      // Make-before-break: only jobs already running move seamlessly; a
      // placement still admitting is simply torn down and re-queued.
      if (j.state == JobState::kRunning) {
        if (!move_job(j, i)) any_left = true;
      } else {
        teardown_placement(j, JobState::kPending);
      }
    }
    if (!any_left) {
      n.state = NodeState::kDrained;
      emit(i, telemetry::EventKind::kNodeDrain, 0, 1);
    }
  }
}

void ClusterController::update_job_states() {
  for (Job& j : jobs_) {
    if (j.state != JobState::kPlacing && j.state != JobState::kRunning) {
      continue;
    }
    if (j.cur.node == kInvalidNode) continue;
    std::uint32_t alive = 0;
    std::uint32_t admitted = 0;
    poll_placement(j, &alive, &admitted);
    const auto expected = static_cast<std::uint32_t>(j.cur.threads.size());
    if (alive < expected) {
      // A worker exited before eviction: in-sim admission gave up (or the
      // whole group admission failed).  All-or-nothing at the job level:
      // tear the rest down and retry placement from scratch.
      teardown_placement(j, JobState::kPending);
      ++j.attempts;
      ++stats_.failed_placements;
      if (j.attempts >= opt_.max_place_attempts) j.state = JobState::kFailed;
      continue;
    }
    if (j.state == JobState::kPlacing) {
      const bool ready = is_rt_kind(j.spec.kind) ? admitted == expected
                                                 : alive == expected;
      if (ready) {
        j.state = JobState::kRunning;
        j.seamless = false;
        Node& n = nodes_[j.cur.node];
        if (is_rt_kind(j.spec.kind)) {
          n.inflight = std::max(0.0, n.inflight - j.cur.demand);
        }
        if (j.lost_at >= 0) {
          j.last_replace_latency = now_ - j.lost_at;
          stats_.replace_ns.add(static_cast<double>(j.last_replace_latency));
          j.lost_at = -1;
        }
      }
    }
  }
}

void ClusterController::coordinate_overload() {
  // Machine-wide shed coordination (docs/RESILIENCE.md follow-up): a node
  // whose committed RT demand no longer fits its degraded capacity gets its
  // least-critical job moved off — or shed when nowhere fits.  One job per
  // node per tick keeps the response gentle.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.state != NodeState::kUp) continue;
    const double over = ledger_.committed(i) - node_effective_capacity(i) -
                        n.shed_credit;
    if (over <= 1e-9) continue;
    Job* victim = nullptr;
    for (Job& j : jobs_) {
      if (j.cur.node != i || j.state != JobState::kRunning ||
          !is_rt_kind(j.spec.kind)) {
        continue;
      }
      if (victim == nullptr || tenants_[j.tenant].criticality >
                                   tenants_[victim->tenant].criticality) {
        victim = &j;
      }
    }
    if (victim == nullptr) continue;
    if (!move_job(*victim, i)) {
      teardown_placement(*victim, JobState::kShed);
      ++stats_.sheds;
      emit(i, telemetry::EventKind::kClusterShed,
           static_cast<std::uint32_t>(victim->id),
           tenants_[victim->tenant].criticality);
    }
  }
}

void ClusterController::place_pending_rt() {
  std::vector<Job*> pending;
  for (Job& j : jobs_) {
    if (!is_rt_kind(j.spec.kind)) continue;
    if (j.state == JobState::kPending || j.state == JobState::kShed) {
      pending.push_back(&j);
    }
  }
  // Placement order: criticality first (failover must re-home the most
  // important tenants before anything else), then tenants under their fair
  // share before those over it, then submission order.
  std::stable_sort(pending.begin(), pending.end(),
                   [this](const Job* a, const Job* b) {
                     const std::uint32_t ca = tenants_[a->tenant].criticality;
                     const std::uint32_t cb = tenants_[b->tenant].criticality;
                     if (ca != cb) return ca < cb;
                     const bool oa =
                         tenant_placed_util(a->tenant) > fair_share(a->tenant);
                     const bool ob =
                         tenant_placed_util(b->tenant) > fair_share(b->tenant);
                     if (oa != ob) return !oa;
                     return a->id < b->id;
                   });
  for (Job* j : pending) {
    if (!place_job(*j, kInvalidNode)) {
      if (j->attempts >= opt_.max_place_attempts) {
        // Spawn/admission failed that many times (waiting for room does not
        // burn attempts): the job is structurally unplaceable.
        j->state = JobState::kFailed;
        continue;
      }
      // Nothing fits whole: shed strictly-less-critical jobs to make room;
      // the capacity lands over the next tick or two and this job (still
      // pending, placed first by criticality) takes it.
      try_shed_for(*j);
    }
  }
}

void ClusterController::enforce_best_effort_slots() {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    if (n.state != NodeState::kUp) continue;
    const double slot = std::max(1e-6, opt_.best_effort_slot_util);
    const auto budget =
        static_cast<std::int64_t>(node_headroom(i) / slot);
    std::int64_t over = static_cast<std::int64_t>(be_threads_on(i)) - budget;
    while (over > 0) {
      // RT demand arrived and ate the slack: preempt whole best-effort
      // jobs, least-critical tenant first, newest job first.
      Job* victim = nullptr;
      for (Job& j : jobs_) {
        if (j.cur.node != i || j.spec.kind != JobKind::kBestEffort ||
            (j.state != JobState::kRunning && j.state != JobState::kPlacing)) {
          continue;
        }
        if (victim == nullptr ||
            tenants_[j.tenant].criticality >
                tenants_[victim->tenant].criticality ||
            (tenants_[j.tenant].criticality ==
                 tenants_[victim->tenant].criticality &&
             j.id > victim->id)) {
          victim = &j;
        }
      }
      if (victim == nullptr) break;
      over -= static_cast<std::int64_t>(victim->cur.threads.size());
      teardown_placement(*victim, JobState::kPending);
      ++stats_.preemptions;
      emit(i, telemetry::EventKind::kPreempt,
           static_cast<std::uint32_t>(victim->id),
           tenants_[victim->tenant].criticality);
    }
  }
}

void ClusterController::backfill_best_effort() {
  for (Job& j : jobs_) {
    if (j.spec.kind != JobKind::kBestEffort || j.state != JobState::kPending) {
      continue;
    }
    if (place_job(j, kInvalidNode) && j.placements > 1) {
      ++stats_.backfills;
    }
  }
}

void ClusterController::account_availability(sim::Nanos dt) {
  for (const Job& j : jobs_) {
    if (!is_rt_kind(j.spec.kind) || j.state == JobState::kFailed) continue;
    stats_.rt_expected_ns += dt;
    tenant_expected_[j.tenant] += dt;
    const bool served = j.state == JobState::kRunning ||
                        (j.state == JobState::kPlacing && j.seamless);
    if (served) {
      stats_.rt_delivered_ns += dt;
      tenant_delivered_[j.tenant] += dt;
    }
  }
}

void ClusterController::audit_ledger() {
  if (!auditor_->enabled() || !auditor_->config().check_cluster_ledger) return;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    ledger_.audit_node(*auditor_, now_, i, nodes_[i].sys->placement().ledger(),
                       &nodes_[i].sys->resilience());
  }
}

// --- placement mechanics ---------------------------------------------------

double ClusterController::job_demand(const Job& j) const {
  switch (j.spec.kind) {
    case JobKind::kGang:
    case JobKind::kBatch:
      return j.spec.constraints.utilization() *
             static_cast<double>(j.spec.threads);
    case JobKind::kPipeline:
      return j.spec.constraints.utilization();
    case JobKind::kBestEffort:
      return 0.0;  // no RT reservation; BE occupancy is slot math
  }
  return 0.0;
}

bool ClusterController::node_placeable(std::uint32_t node) const {
  return nodes_[node].state == NodeState::kUp;
}

double ClusterController::node_effective_capacity(std::uint32_t node) const {
  double cap = ledger_.capacity(node);
  if (ledger_.storm_flagged(node)) cap *= opt_.storm_derate;
  return cap;
}

double ClusterController::node_headroom(std::uint32_t node) const {
  const double h = node_effective_capacity(node) - ledger_.committed(node) -
                   nodes_[node].inflight;
  return h > 0.0 ? h : 0.0;
}

std::uint32_t ClusterController::be_threads_on(std::uint32_t node) const {
  std::uint32_t count = 0;
  for (const Job& j : jobs_) {
    if (j.cur.node == node && j.spec.kind == JobKind::kBestEffort &&
        (j.state == JobState::kRunning || j.state == JobState::kPlacing)) {
      count += static_cast<std::uint32_t>(j.cur.threads.size());
    }
  }
  return count;
}

bool ClusterController::node_fits(std::uint32_t node, const Job& j) const {
  if (!node_placeable(node)) return false;
  if (j.spec.kind == JobKind::kBestEffort) {
    const double slot = std::max(1e-6, opt_.best_effort_slot_util);
    const auto budget = static_cast<std::int64_t>(node_headroom(node) / slot);
    return budget - static_cast<std::int64_t>(be_threads_on(node)) >=
           static_cast<std::int64_t>(j.spec.threads);
  }
  const double demand = job_demand(j);
  if (node_headroom(node) < demand) return false;
  if (j.spec.kind == JobKind::kGang) {
    // A gang needs n DISTINCT CPUs with per-thread headroom; read the live
    // per-CPU words (the rollup can't answer this).
    const auto& nl = nodes_[node].sys->placement().ledger();
    const double u = j.spec.constraints.utilization();
    std::uint32_t fit = 0;
    for (std::uint32_t c = 0; c < nl.num_cpus(); ++c) {
      if (nl.headroom(c) >= u) ++fit;
    }
    return fit >= j.spec.threads;
  }
  if (j.spec.kind == JobKind::kBatch) {
    const auto& nl = nodes_[node].sys->placement().ledger();
    const double u = j.spec.constraints.utilization();
    for (std::uint32_t c = 0; c < nl.num_cpus(); ++c) {
      if (nl.headroom(c) >= u) return true;
    }
    return false;
  }
  return true;  // pipeline: the node's split planner is the authority
}

std::vector<std::uint32_t> ClusterController::candidate_nodes(
    const Job& j, std::uint32_t exclude) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (i != exclude && node_placeable(i)) out.push_back(i);
  }
  switch (opt_.placement) {
    case global::Policy::kFirstFit:
      break;  // node id order
    case global::Policy::kBestFit:
      std::stable_sort(out.begin(), out.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                         return node_headroom(a) < node_headroom(b);
                       });
      break;
    case global::Policy::kWorstFit:
    case global::Policy::kTopology:
      std::stable_sort(out.begin(), out.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                         return node_headroom(a) > node_headroom(b);
                       });
      break;
  }
  // Storm-flagged nodes last: their published capacity is already degraded,
  // but quiet nodes are still the better first choice.
  std::stable_partition(out.begin(), out.end(), [this](std::uint32_t n) {
    return !ledger_.storm_flagged(n);
  });
  (void)j;
  return out;
}

bool ClusterController::place_job(Job& j, std::uint32_t exclude) {
  const std::vector<std::uint32_t> candidates = candidate_nodes(j, exclude);
  // The cluster fit gate is advisory: it keeps jobs that merely need room
  // waiting (no attempt burned) until capacity frees up.  A job whose demand
  // exceeds every candidate's FULL effective capacity — or whose per-thread
  // utilization fits no single CPU anywhere — can never be helped by
  // waiting, so the gate is skipped and the node's authoritative admission
  // rejects it, burning an attempt toward kFailed instead of pending
  // forever.
  bool could_ever_fit = j.spec.kind == JobKind::kBestEffort;
  if (!could_ever_fit) {
    const double demand = job_demand(j);
    for (std::uint32_t node : candidates) {
      if (node_effective_capacity(node) >= demand) {
        could_ever_fit = true;
        break;
      }
    }
  }
  if (could_ever_fit &&
      (j.spec.kind == JobKind::kGang || j.spec.kind == JobKind::kBatch)) {
    const double u = j.spec.constraints.utilization();
    could_ever_fit = false;
    for (std::uint32_t node : candidates) {
      const auto& nl = nodes_[node].sys->placement().ledger();
      for (std::uint32_t c = 0; c < nl.num_cpus(); ++c) {
        if (nl.capacity(c) >= u) {
          could_ever_fit = true;
          break;
        }
      }
      if (could_ever_fit) break;
    }
  }
  for (std::uint32_t node : candidates) {
    if (could_ever_fit && !node_fits(node, j)) continue;
    hrt::System& sys = *nodes_[node].sys;
    Placement p;
    p.node = node;
    p.evict = std::make_shared<std::atomic<bool>>(false);
    p.demand = job_demand(j);
    const auto evict = p.evict;
    const sim::Nanos chunk =
        j.spec.work_chunk > 0 ? j.spec.work_chunk : sim::millis(2);
    auto make_worker = [&evict, chunk](std::uint32_t) {
      return std::make_unique<EvictableBehavior>(
          evict, std::make_unique<nk::BusyLoopBehavior>(chunk));
    };
    // Placement-generation suffix keeps re-placements from colliding with
    // the group/thread names an earlier placement registered on this node.
    const std::string base =
        j.spec.name + "~" + std::to_string(j.placements);
    std::vector<nk::Thread*> threads;
    bool ok = false;
    switch (j.spec.kind) {
      case JobKind::kGang:
        threads = sys.spawn_group_auto(base, j.spec.threads,
                                       j.spec.constraints, make_worker);
        ok = !threads.empty();
        break;
      case JobKind::kPipeline:
        threads = sys.spawn_split(base, j.spec.constraints, make_worker);
        ok = !threads.empty();
        break;
      case JobKind::kBatch:
      case JobKind::kBestEffort: {
        std::vector<hrt::System::SpawnSpec> specs;
        specs.reserve(j.spec.threads);
        for (std::uint32_t i = 0; i < j.spec.threads; ++i) {
          hrt::System::SpawnSpec s;
          s.name = base + "." + std::to_string(i);
          s.behavior = make_worker(i);
          if (j.spec.kind == JobKind::kBatch) {
            s.constraints = j.spec.constraints;
            s.priority = j.spec.constraints.priority;
          } else {
            const rt::AperiodicPriority mu =
                j.spec.constraints.priority == rt::kDefaultPriority
                    ? kBestEffortPriority
                    : j.spec.constraints.priority;
            s.constraints = rt::Constraints::aperiodic(mu);
            s.priority = mu;
          }
          specs.push_back(std::move(s));
        }
        hrt::System::BatchSpawnResult r = sys.spawn_batch(std::move(specs));
        ok = r.ok;
        threads = std::move(r.threads);
        break;
      }
    }
    if (!ok) {
      ++stats_.failed_placements;
      ++j.attempts;  // a real spawn/admission failure, not just "no room"
      continue;      // try the next candidate node
    }
    p.threads = std::move(threads);
    p.ids.reserve(p.threads.size());
    for (const nk::Thread* t : p.threads) p.ids.push_back(t->id);
    if (is_rt_kind(j.spec.kind)) nodes_[node].inflight += p.demand;
    const bool replaced = j.placements > 0;
    j.cur = std::move(p);
    j.state = is_rt_kind(j.spec.kind) ? JobState::kPlacing : JobState::kRunning;
    ++j.placements;
    ++stats_.placements;
    if (replaced) {
      ++stats_.replacements;
      emit(node, telemetry::EventKind::kReplace,
           static_cast<std::uint32_t>(j.id), node);
    }
    return true;
  }
  return false;
}

bool ClusterController::move_job(Job& j, std::uint32_t exclude) {
  // Make-before-break: spawn the replacement first; only once it exists is
  // the original evicted.  The old placement keeps serving while the new
  // one admits, so the job never has an availability gap.
  Placement old = std::move(j.cur);
  j.cur = Placement{};
  const JobState old_state = j.state;
  if (!place_job(j, exclude)) {
    j.cur = std::move(old);
    j.state = old_state;
    return false;
  }
  j.seamless = true;
  old.evict->store(true, std::memory_order_relaxed);
  Node& n = nodes_[old.node];
  if (is_rt_kind(j.spec.kind) &&
      (n.state == NodeState::kUp || n.state == NodeState::kDraining)) {
    n.evictions.push_back(
        Node::EvictionRecord{old.threads, old.ids, old.demand});
  }
  return true;
}

bool ClusterController::try_shed_for(const Job& j) {
  const double demand = job_demand(j);
  const std::uint32_t jc = tenants_[j.tenant].criticality;
  // If sheds already in flight will cover the demand somewhere, wait for
  // them instead of shedding more.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (node_placeable(i) &&
        node_headroom(i) + nodes_[i].shed_credit >= demand) {
      return true;
    }
  }
  // Find a node where evicting strictly-less-critical jobs frees enough.
  for (std::uint32_t i : candidate_nodes(j, kInvalidNode)) {
    double have = node_headroom(i) + nodes_[i].shed_credit;
    std::vector<Job*> victims;
    for (Job& v : jobs_) {
      if (v.cur.node != i || !is_rt_kind(v.spec.kind) ||
          (v.state != JobState::kRunning && v.state != JobState::kPlacing)) {
        continue;
      }
      if (tenants_[v.tenant].criticality > jc) victims.push_back(&v);
    }
    double total = have;
    for (const Job* v : victims) total += v->cur.demand;
    if (total < demand) continue;
    // Least-critical victims first, newest first within a tenant rank.
    std::stable_sort(victims.begin(), victims.end(),
                     [this](const Job* a, const Job* b) {
                       const std::uint32_t ca = tenants_[a->tenant].criticality;
                       const std::uint32_t cb = tenants_[b->tenant].criticality;
                       if (ca != cb) return ca > cb;
                       return a->id > b->id;
                     });
    for (Job* v : victims) {
      if (have >= demand) break;
      have += v->cur.demand;
      ++stats_.sheds;
      emit(i, telemetry::EventKind::kClusterShed,
           static_cast<std::uint32_t>(v->id), tenants_[v->tenant].criticality);
      teardown_placement(*v, JobState::kShed);
    }
    return true;
  }
  return false;
}

void ClusterController::teardown_placement(Job& j, JobState next_state) {
  if (j.cur.node != kInvalidNode) {
    j.cur.evict->store(true, std::memory_order_relaxed);
    Node& n = nodes_[j.cur.node];
    if (is_rt_kind(j.spec.kind)) {
      if (j.state == JobState::kPlacing) {
        n.inflight = std::max(0.0, n.inflight - j.cur.demand);
      }
      if (n.state == NodeState::kUp || n.state == NodeState::kDraining) {
        n.evictions.push_back(
            Node::EvictionRecord{j.cur.threads, j.cur.ids, j.cur.demand});
      }
    }
  }
  j.cur = Placement{};
  j.seamless = false;
  j.state = next_state;
}

void ClusterController::poll_placement(const Job& j, std::uint32_t* alive,
                                       std::uint32_t* admitted) const {
  *alive = 0;
  *admitted = 0;
  for (std::size_t k = 0; k < j.cur.threads.size(); ++k) {
    const nk::Thread* t = j.cur.threads[k];
    if (!thread_live(t, j.cur.ids[k])) continue;
    ++*alive;
    if (j.spec.kind == JobKind::kBestEffort || t->is_realtime()) ++*admitted;
  }
}

double ClusterController::fair_share(std::size_t tenant) const {
  double weights = 0.0;
  for (const TenantSpec& t : tenants_) weights += std::max(0.0, t.weight);
  if (weights <= 0.0) return 0.0;
  double cap = 0.0;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (node_placeable(i)) cap += node_effective_capacity(i);
  }
  return std::max(0.0, tenants_[tenant].weight) / weights * cap;
}

double ClusterController::tenant_placed_util(std::size_t tenant) const {
  double util = 0.0;
  for (const Job& j : jobs_) {
    if (j.tenant == tenant && j.cur.node != kInvalidNode &&
        (j.state == JobState::kRunning || j.state == JobState::kPlacing)) {
      util += j.cur.demand;
    }
  }
  return util;
}

void ClusterController::emit(std::uint32_t node, telemetry::EventKind kind,
                             std::uint32_t tid, std::int64_t arg) {
  if (telemetry_->enabled()) telemetry_->on_event(node, now_, kind, tid, arg);
}

// --- introspection ---------------------------------------------------------

ClusterController::JobInfo ClusterController::info_of(const Job& j) const {
  JobInfo info;
  info.id = j.id;
  info.tenant = tenants_[j.tenant].name;
  info.name = j.spec.name;
  info.kind = j.spec.kind;
  info.state = j.state;
  info.node = j.cur.node;
  info.placements = j.placements;
  info.last_replace_latency = j.last_replace_latency;
  poll_placement(j, &info.threads_alive, &info.threads_admitted);
  for (std::size_t k = 0; k < j.cur.threads.size(); ++k) {
    const nk::Thread* t = j.cur.threads[k];
    if (!thread_live(t, j.cur.ids[k])) continue;
    info.misses += t->rt.misses;
    info.arrivals += t->rt.arrivals;
  }
  return info;
}

ClusterController::JobInfo ClusterController::job(JobId id) const {
  for (const Job& j : jobs_) {
    if (j.id == id) return info_of(j);
  }
  throw std::out_of_range("ClusterController::job: unknown job id " +
                          std::to_string(id));
}

std::vector<const nk::Thread*> ClusterController::job_threads(JobId id) const {
  std::vector<const nk::Thread*> out;
  for (const Job& j : jobs_) {
    if (j.id != id) continue;
    for (std::size_t k = 0; k < j.cur.threads.size(); ++k) {
      if (thread_live(j.cur.threads[k], j.cur.ids[k])) {
        out.push_back(j.cur.threads[k]);
      }
    }
  }
  return out;
}

std::vector<ClusterController::JobInfo> ClusterController::jobs() const {
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const Job& j : jobs_) out.push_back(info_of(j));
  return out;
}

std::vector<ClusterController::TenantInfo> ClusterController::tenants() const {
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    TenantInfo t;
    t.spec = tenants_[i];
    t.placed_util = tenant_placed_util(i);
    t.fair_share = fair_share(i);
    t.delivered_ns = tenant_delivered_[i];
    t.expected_ns = tenant_expected_[i];
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace hrt::cluster
