// ClusterController: the cluster tier over N simulated nodes
// (docs/CLUSTER.md).
//
// Each node is a full rt::System over its own hw::Machine; the controller
// drives every node's sim engine to common control-period boundaries under
// one cluster clock, then runs one control tick host-side.  Nothing the
// controller does charges simulated time on any node — like telemetry, it
// is an out-of-band observer/actuator whose only in-sim effects go through
// the node tier's public spawn/evict surfaces, so every node's trace stays
// replay-oracle-checkable on its own.
//
// The control tick, in order:
//   1. failure detection — a node whose engine stalled before the tick
//      boundary missed its heartbeat; mark it down, fence its placements
//      (zombie eviction flags, for a later restore), and re-queue its jobs.
//   2. ledger refresh — roll each node's per-CPU committed/capacity words
//      into the ClusterLedger (exact raw sums; storm-degraded capacities
//      propagate cluster-wide here).
//   3. drain progress — make-before-break: re-place each job still on a
//      draining node, evict the original only after the replacement landed.
//   4. job state tracking — in-flight admissions resolve to running (or
//      back to pending on give-up); replace latency is recorded when a job
//      lost to a failure runs again.
//   5. overload coordination — a node whose committed RT demand exceeds its
//      degraded effective capacity (SMI storm) gets its least-critical job
//      moved off; this is the machine-wide shed coordination the resilience
//      tier deferred to the cluster.
//   6. RT placement — pending RT jobs in (criticality, fairshare-excess,
//      arrival) order over first/best/worst-fit across nodes; when nothing
//      fits, jobs of strictly less critical tenants are shed to make room.
//   7. best-effort preemption + backfill — BE jobs occupy slack-derived
//      slots; RT demand shrinking a node's slack preempts BE jobs off it,
//      and pending BE jobs backfill wherever slots remain.
//   8. availability accounting + kClusterLedger audit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "cluster/ledger.hpp"
#include "cluster/tenant.hpp"
#include "global/placement.hpp"
#include "rt/system.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::cluster {

class ClusterController {
 public:
  struct Options {
    std::uint32_t nodes = 3;
    /// Template for every node's rt::System; node i gets seed
    /// node_options.seed + i so nodes decorrelate but stay reproducible.
    hrt::System::Options node_options{};
    /// Cluster heartbeat/control tick.  Failure detection latency is
    /// bounded by one period.
    sim::Nanos control_period = sim::micros(500);
    /// Cluster-level fit policy across nodes (kTopology behaves as
    /// worst-fit here; node-internal topology steering is the node's job).
    global::Policy placement = global::Policy::kWorstFit;
    bool failover = true;    // off = the no-failover baseline for the bench
    bool preemption = true;  // enforce BE slot budgets
    bool backfill = true;    // re-place pending/preempted BE jobs
    /// Slack utilization one best-effort worker slot represents: a node
    /// offers floor(headroom / best_effort_slot_util) BE slots.
    double best_effort_slot_util = 0.25;
    /// Spawn/admission failures before a job is marked kFailed.
    std::uint32_t max_place_attempts = 8;
    /// Extra cluster-side derate applied to a storm-flagged node's rolled-up
    /// capacity (the node's own publication is already degraded; < 1.0 adds
    /// cluster-level caution).
    double storm_derate = 1.0;
    /// Controller-level audits (kClusterLedger) and telemetry.  The
    /// telemetry hub's rings are indexed by NODE id, not CPU id.
    audit::Config audit{};
    telemetry::Config telemetry{};
    struct TestFaults {
      /// Corrupt node 0's cached committed rollup by one raw ulp right
      /// before the next tick's audit (seeded fault for the kClusterLedger
      /// regression test).
      bool corrupt_rollup = false;
    } test_faults;
  };

  struct JobInfo {
    JobId id = 0;
    std::string tenant;
    std::string name;
    JobKind kind = JobKind::kGang;
    JobState state = JobState::kPending;
    std::uint32_t node = kInvalidNode;
    std::uint32_t threads_alive = 0;
    std::uint32_t threads_admitted = 0;
    /// Deadline misses of the CURRENT placement's threads (a re-placed
    /// job's counter restarts at re-admission — this is what the
    /// zero-post-failover-miss gate reads).
    std::uint64_t misses = 0;
    std::uint64_t arrivals = 0;
    std::uint32_t placements = 0;  // spawns that succeeded (1 = never moved)
    sim::Nanos last_replace_latency = -1;  // fail -> running again
  };

  struct TenantInfo {
    TenantSpec spec;
    double placed_util = 0.0;      // demand of live placements
    double fair_share = 0.0;       // weight slice of effective capacity
    sim::Nanos delivered_ns = 0;   // RT availability credit
    sim::Nanos expected_ns = 0;
  };

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t placements = 0;
    std::uint64_t replacements = 0;  // failover + drain + overload moves
    std::uint64_t failed_placements = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t backfills = 0;
    std::uint64_t sheds = 0;
    std::uint64_t failovers = 0;  // node-down events processed
    std::uint64_t drains = 0;     // drain_node requests
    sim::RunningStats detect_ns;   // node failure -> detection
    sim::RunningStats replace_ns;  // node failure -> job running again
    sim::Nanos rt_delivered_ns = 0;
    sim::Nanos rt_expected_ns = 0;
  };

  explicit ClusterController(Options opt);
  ~ClusterController();

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  /// Register a tenant before submitting its jobs.  Unknown tenants named
  /// by a JobSpec are auto-registered with default weight/criticality.
  void add_tenant(TenantSpec spec);

  /// Queue a job; placement happens at the next control tick.
  JobId submit(JobSpec spec);

  /// Advance the whole cluster, ticking at every control-period boundary.
  void run_for(sim::Nanos d);
  [[nodiscard]] sim::Nanos now() const { return now_; }

  /// Crash a node at cluster time `at` (or at the current time when `at` is
  /// in the past): its engine freezes there and the controller detects the
  /// missed heartbeat at the next tick.
  void fail_node(std::uint32_t node, sim::Nanos at = -1);
  /// Graceful drain: no new placements, existing jobs move off
  /// make-before-break over the following ticks.
  void drain_node(std::uint32_t node);
  /// Bring a down or drained node back: zombie threads of fenced placements
  /// exit as the node catches up to cluster time, then capacity returns.
  void restore_node(std::uint32_t node);

  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] hrt::System& node(std::uint32_t id) { return *nodes_[id].sys; }
  [[nodiscard]] NodeState node_state(std::uint32_t id) const {
    return nodes_[id].state;
  }
  [[nodiscard]] const ClusterLedger& ledger() const { return ledger_; }
  [[nodiscard]] audit::Auditor& auditor() { return *auditor_; }
  [[nodiscard]] telemetry::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] JobInfo job(JobId id) const;
  [[nodiscard]] std::vector<JobInfo> jobs() const;
  /// Live threads of the job's current placement (empty when not placed).
  /// For inspection — replay-oracle tests read constraints/gamma from them.
  [[nodiscard]] std::vector<const nk::Thread*> job_threads(JobId id) const;
  [[nodiscard]] std::vector<TenantInfo> tenants() const;

  /// Cluster RT availability so far: delivered / expected job-time.
  [[nodiscard]] double availability() const {
    return stats_.rt_expected_ns > 0
               ? static_cast<double>(stats_.rt_delivered_ns) /
                     static_cast<double>(stats_.rt_expected_ns)
               : 1.0;
  }

 private:
  struct Placement {
    std::uint32_t node = kInvalidNode;
    std::vector<nk::Thread*> threads;
    std::vector<nk::Thread::Id> ids;  // validity guard against pool reuse
    std::shared_ptr<std::atomic<bool>> evict;
    double demand = 0.0;  // RT utilization this placement books
  };

  struct Job {
    JobId id = 0;
    JobSpec spec;
    std::size_t tenant = 0;  // index into tenants_
    JobState state = JobState::kPending;
    Placement cur;
    std::uint32_t attempts = 0;
    std::uint32_t placements = 0;
    sim::Nanos lost_at = -1;  // node-failure time awaiting re-run
    sim::Nanos last_replace_latency = -1;
    /// Make-before-break move in flight: the old placement still serves
    /// while the new one admits, so availability is not docked.
    bool seamless = false;
  };

  struct Node {
    std::unique_ptr<hrt::System> sys;
    NodeState state = NodeState::kUp;
    sim::Nanos fail_at = -1;
    sim::Nanos down_since = -1;
    double inflight = 0.0;  // demand placed but not yet in the rollup
    /// Evictions whose threads have not exited yet: their demand is counted
    /// as prospective headroom so the shed loop does not over-shed while
    /// earlier evictions are still landing.
    struct EvictionRecord {
      std::vector<nk::Thread*> threads;
      std::vector<nk::Thread::Id> ids;
      double demand = 0.0;
    };
    std::vector<EvictionRecord> evictions;
    double shed_credit = 0.0;  // recomputed from `evictions` each tick
  };

  void tick(sim::Nanos dt);
  void detect_failures();
  void refresh_ledger();
  void progress_drains();
  void update_job_states();
  void coordinate_overload();
  void place_pending_rt();
  void enforce_best_effort_slots();
  void backfill_best_effort();
  void account_availability(sim::Nanos dt);
  void audit_ledger();

  [[nodiscard]] double job_demand(const Job& j) const;
  [[nodiscard]] bool node_placeable(std::uint32_t node) const;
  [[nodiscard]] double node_effective_capacity(std::uint32_t node) const;
  [[nodiscard]] double node_headroom(std::uint32_t node) const;
  [[nodiscard]] bool node_fits(std::uint32_t node, const Job& j) const;
  [[nodiscard]] std::vector<std::uint32_t> candidate_nodes(
      const Job& j, std::uint32_t exclude) const;
  bool place_job(Job& j, std::uint32_t exclude);
  bool move_job(Job& j, std::uint32_t exclude);
  bool try_shed_for(const Job& j);
  void teardown_placement(Job& j, JobState next_state);
  void poll_placement(const Job& j, std::uint32_t* alive,
                      std::uint32_t* admitted) const;
  [[nodiscard]] std::size_t tenant_index(const std::string& name);
  [[nodiscard]] double fair_share(std::size_t tenant) const;
  [[nodiscard]] double tenant_placed_util(std::size_t tenant) const;
  void emit(std::uint32_t node, telemetry::EventKind kind, std::uint32_t tid,
            std::int64_t arg);
  [[nodiscard]] JobInfo info_of(const Job& j) const;
  [[nodiscard]] std::uint32_t be_threads_on(std::uint32_t node) const;

  Options opt_;
  std::vector<Node> nodes_;
  std::unique_ptr<audit::Auditor> auditor_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  ClusterLedger ledger_;
  std::vector<TenantSpec> tenants_;
  std::vector<sim::Nanos> tenant_delivered_;
  std::vector<sim::Nanos> tenant_expected_;
  std::vector<Job> jobs_;
  Stats stats_;
  sim::Nanos now_ = 0;
  JobId next_job_id_ = 1;
};

}  // namespace hrt::cluster
