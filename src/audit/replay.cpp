#include "audit/replay.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hrt::audit {

namespace {

constexpr sim::Nanos kNever = std::numeric_limits<sim::Nanos>::max();

struct TaskState {
  ReplayTask task;
  ReplayTaskStats stats;
  bool open = false;
  bool done = false;           // sporadic whose one arrival closed
  bool closing = false;        // budget exhausted; grid advance deferred to
                               // the next IRQ (the scheduler's close pass)
  sim::Nanos close_completion = 0;
  sim::Nanos next_release = 0; // absolute, meaningful while !open && !done
  sim::Nanos release_time = 0; // current arrival's release (grid time)
  sim::Nanos ready_time = 0;   // when the scheduler could first serve it:
                               // max(release, previous arrival's close)
  sim::Nanos deadline = 0;
  sim::Nanos remaining = 0;    // budget left per the reference accounting
};

class Replayer {
 public:
  Replayer(const std::vector<ReplayTask>& tasks, const ReplayConfig& cfg)
      : cfg_(cfg) {
    for (const ReplayTask& t : tasks) {
      if (!t.constraints.is_realtime()) {
        throw std::invalid_argument("replay_edf: task is not real-time");
      }
      TaskState ts;
      ts.task = t;
      ts.stats.thread_id = t.thread_id;
      ts.next_release = t.gamma + t.constraints.phase;
      if (t.constraints.cls == rt::ConstraintClass::kSporadic) {
        ts.deadline = t.gamma + t.constraints.deadline_offset;
      }
      tasks_.push_back(std::move(ts));
    }
  }

  ReplayResult run(const sim::Trace& trace, std::uint32_t cpu,
                   sim::Nanos end_time) {
    for (const sim::TraceRecord& r : trace.records()) {
      if (r.cpu != cpu) continue;
      switch (r.kind) {
        case sim::TraceKind::kThreadActive:
          advance_to(r.time);
          on_active(static_cast<std::uint32_t>(r.value), r.time);
          break;
        case sim::TraceKind::kThreadInactive:
          advance_to(r.time);
          on_inactive(static_cast<std::uint32_t>(r.value), r.time);
          break;
        case sim::TraceKind::kIrqEnter:
          advance_to(r.time);
          // The scheduler closes an exhausted arrival at its next pass, and
          // its window-skip rule runs against that pass's clock — which is
          // this IRQ's timestamp, not the exhaustion instant.
          for (TaskState& ts : tasks_) {
            if (ts.closing) finalize_close(ts, r.time);
          }
          ++irq_depth_;
          break;
        case sim::TraceKind::kIrqExit:
          advance_to(r.time);
          if (irq_depth_ > 0) --irq_depth_;
          break;
        default:
          break;
      }
    }
    for (TaskState& ts : tasks_) {
      if (ts.closing) finalize_close(ts, ts.close_completion);
    }
    if (end_time > now_) advance_to(end_time);
    ReplayResult out;
    out.divergences = std::move(divergences_);
    for (TaskState& ts : tasks_) out.tasks.push_back(ts.stats);
    return out;
  }

 private:
  TaskState* find(std::uint32_t id) {
    for (TaskState& ts : tasks_) {
      if (ts.task.thread_id == id) return &ts;
    }
    return nullptr;
  }

  void diverge(sim::Nanos t, std::string detail) {
    divergences_.push_back(Divergence{t, std::move(detail)});
  }

  /// Deadline the active thread is effectively serving, for EDF comparisons.
  /// A task whose release is due within the pump slop counts as open: the
  /// scheduler legitimately opens arrivals that early.
  sim::Nanos effective_deadline(const TaskState& ts, sim::Nanos t) const {
    if (ts.open) return ts.deadline;
    if (!ts.done && ts.next_release <= t + cfg_.slop) {
      return ts.task.constraints.cls == rt::ConstraintClass::kPeriodic
                 ? ts.next_release + ts.task.constraints.period
                 : ts.deadline;
    }
    return kNever;
  }

  sim::Nanos active_effective_deadline(sim::Nanos t) const {
    if (active_id_ == 0) return kNever;
    for (const TaskState& ts : tasks_) {
      if (ts.task.thread_id == active_id_) return effective_deadline(ts, t);
    }
    return kNever;  // a non-RT thread is running
  }

  /// A still-unserved arrival (ignoring ones within charge-drift of done).
  bool claims_cpu(const TaskState& ts) const {
    return ts.open && ts.remaining > cfg_.budget_tolerance;
  }

  void open_arrival(TaskState& ts, sim::Nanos t) {
    ts.open = true;
    ++ts.stats.arrivals;
    ts.release_time = ts.next_release;
    // Under overload a release lands while the task's previous arrival is
    // still in service; the scheduler can only open it at the close.  The
    // dispatch-promptness clocks run from that point, not the grid time.
    ts.ready_time = std::max(ts.next_release, t);
    if (ts.task.constraints.cls == rt::ConstraintClass::kPeriodic) {
      ts.deadline = ts.next_release + ts.task.constraints.period;
      ts.remaining = ts.task.constraints.slice;
    } else {
      ts.remaining = ts.task.constraints.size;
    }
  }

  void close_arrival(TaskState& ts, sim::Nanos completion, bool assume_ontime) {
    ts.open = false;
    ++ts.stats.completions;
    if (!assume_ontime && completion > ts.deadline) {
      ++ts.stats.misses;
    }
    if (ts.task.constraints.cls == rt::ConstraintClass::kPeriodic) {
      ts.closing = true;
      ts.close_completion = completion;
    } else {
      ts.done = true;
    }
    if (ts.task.thread_id == active_id_) rearm_after_active_close(completion);
  }

  /// Advance the release grid once the scheduler's close time is known.
  /// Mirrors the scheduler: the next window opens at the deadline, and
  /// windows that fully elapsed while this one was served late are skipped
  /// and counted as misses — judged against the close pass's clock.
  void finalize_close(TaskState& ts, sim::Nanos sched_close) {
    ts.closing = false;
    sim::Nanos next = ts.deadline;
    const sim::Nanos period = ts.task.constraints.period;
    while (next + period <= sched_close + cfg_.slop) {
      ++ts.stats.arrivals;
      ++ts.stats.misses;
      next += period;
    }
    ts.next_release = next;
  }

  void rearm_after_active_close(sim::Nanos t) {
    for (const TaskState& ts : tasks_) {
      if (ts.task.thread_id != active_id_ && claims_cpu(ts)) {
        must_switch_by_ = std::min(must_switch_by_, t + cfg_.dispatch_latency);
        return;
      }
    }
  }

  void process_releases(sim::Nanos t) {
    for (TaskState& ts : tasks_) {
      // Heal charge-accounting drift: an arrival the scheduler closed but
      // the reference still holds a sliver of budget for would otherwise
      // wedge the release grid.
      if (ts.open && ts.remaining <= cfg_.budget_tolerance &&
          t >= ts.deadline) {
        close_arrival(ts, ts.deadline, /*assume_ontime=*/true);
      }
      while (!ts.open && !ts.done && !ts.closing && ts.next_release <= t) {
        open_arrival(ts, t);
        if (seen_activity_ &&
            ts.deadline < active_effective_deadline(ts.ready_time)) {
          must_switch_by_ = std::min(
              must_switch_by_, ts.ready_time + cfg_.dispatch_latency);
        }
      }
    }
  }

  void check_missed_preemption(sim::Nanos t) {
    if (t <= must_switch_by_) return;
    must_switch_by_ = kNever;
    for (const TaskState& ts : tasks_) {
      if (ts.task.thread_id != active_id_ && claims_cpu(ts)) {
        diverge(t, "thread " + std::to_string(ts.task.thread_id) +
                       " has an open arrival (deadline " +
                       std::to_string(ts.deadline) +
                       ") unserved past the dispatch-latency bound");
        return;
      }
    }
  }

  /// Walk reference time up to `t`, charging run time and processing the
  /// release grid at every breakpoint.
  void advance_to(sim::Nanos t) {
    while (true) {
      process_releases(now_);
      check_missed_preemption(now_);
      if (now_ >= t) break;

      sim::Nanos bp = t;
      for (const TaskState& ts : tasks_) {
        if (!ts.open && !ts.done && ts.next_release > now_ &&
            ts.next_release < bp) {
          bp = ts.next_release;
        }
      }
      TaskState* at = active_id_ != 0 ? find(active_id_) : nullptr;
      const bool charging = at != nullptr && irq_depth_ == 0;
      if (charging && at->open) {
        const sim::Nanos fin = now_ + at->remaining;
        if (fin > now_ && fin < bp) bp = fin;
      }
      if (must_switch_by_ > now_ && must_switch_by_ < bp) bp = must_switch_by_ + 1;
      if (bp > t) bp = t;

      if (charging) {
        const sim::Nanos span = bp - now_;
        if (at->open) {
          at->remaining -= span;
          at->stats.charged_ns += span;
          if (at->remaining <= 0) close_arrival(*at, bp, false);
        } else if (at->stats.arrivals > 0 && !at->done) {
          // Running between arrivals is an overrun; running before the
          // first release (pre-admission aperiodic phase) or after a
          // sporadic completed (its aperiodic tail) is legitimate.
          tail_run_ += span;
          if (tail_run_ > cfg_.overrun_tolerance && !tail_flagged_) {
            tail_flagged_ = true;
            diverge(bp, "thread " + std::to_string(active_id_) +
                            " ran " + std::to_string(tail_run_) +
                            "ns past its exhausted budget");
          }
        }
      }
      now_ = bp;
    }
  }

  void on_active(std::uint32_t id, sim::Nanos t) {
    seen_activity_ = true;
    active_id_ = id;
    tail_run_ = 0;
    tail_flagged_ = false;
    TaskState* ts = find(id);
    const sim::Nanos own =
        ts != nullptr ? effective_deadline(*ts, t) : kNever;
    must_switch_by_ = kNever;
    for (const TaskState& other : tasks_) {
      if (other.task.thread_id == id || !claims_cpu(other)) continue;
      if (other.deadline < own) {
        if (t - other.ready_time > cfg_.dispatch_grace) {
          diverge(t, "thread " + std::to_string(id) + " dispatched (deadline " +
                         (own == kNever ? std::string("none")
                                        : std::to_string(own)) +
                         ") while thread " +
                         std::to_string(other.task.thread_id) +
                         " had an earlier open deadline " +
                         std::to_string(other.deadline));
        } else {
          // Released between the pass decision and the switch; it must
          // still be served promptly.
          must_switch_by_ = std::min(
              must_switch_by_, other.ready_time + cfg_.dispatch_latency);
        }
      }
    }
  }

  void on_inactive(std::uint32_t id, sim::Nanos t) {
    seen_activity_ = true;
    if (active_id_ == id) active_id_ = 0;
    tail_run_ = 0;
    tail_flagged_ = false;
    for (const TaskState& ts : tasks_) {
      if (claims_cpu(ts)) {
        must_switch_by_ =
            std::min(must_switch_by_, t + cfg_.dispatch_latency);
        return;
      }
    }
  }

  ReplayConfig cfg_;
  std::vector<TaskState> tasks_;
  std::vector<Divergence> divergences_;
  sim::Nanos now_ = 0;
  std::uint32_t active_id_ = 0;  // 0 = none (thread ids start at 1)
  int irq_depth_ = 0;
  bool seen_activity_ = false;
  sim::Nanos must_switch_by_ = kNever;
  sim::Nanos tail_run_ = 0;
  bool tail_flagged_ = false;
};

}  // namespace

ReplayConfig replay_config_for(const hw::MachineSpec& spec) {
  ReplayConfig c;
  c.slop = spec.timer.apic_tick_ns + 1;
  const auto& cost = spec.cost;
  // Two jitter-inflated handler path lengths: IRQ dispatch, a pass over a
  // moderately full queue, the switch, and the fixed tail.
  const sim::Nanos handler = spec.freq.cycles_to_ns_ceil(
      2 * (cost.irq_dispatch + cost.sched_pass_base +
           64 * cost.sched_pass_per_thread + cost.context_switch +
           cost.sched_other));
  c.dispatch_grace = handler + c.slop + sim::micros(2);
  c.dispatch_latency = 2 * handler + c.slop + sim::micros(20);
  c.budget_tolerance = handler + sim::micros(2);
  c.overrun_tolerance = handler + 2 * c.slop + sim::micros(5);
  if (spec.smi.enabled) {
    c.dispatch_grace += spec.smi.max_duration_ns;
    c.dispatch_latency += 2 * spec.smi.max_duration_ns;
    c.overrun_tolerance += 2 * spec.smi.max_duration_ns;
  }
  return c;
}

const ReplayTaskStats* ReplayResult::find(std::uint32_t thread_id) const {
  for (const ReplayTaskStats& t : tasks) {
    if (t.thread_id == thread_id) return &t;
  }
  return nullptr;
}

ReplayResult replay_edf(const sim::Trace& trace, std::uint32_t cpu,
                        const std::vector<ReplayTask>& tasks,
                        const ReplayConfig& cfg, sim::Nanos end_time) {
  Replayer r(tasks, cfg);
  return r.run(trace, cpu, end_time);
}

void verify_stats(ReplayResult& result, std::uint32_t thread_id,
                  std::uint64_t observed_arrivals,
                  std::uint64_t observed_completions,
                  std::uint64_t observed_misses, std::uint64_t tolerance) {
  const ReplayTaskStats* ref = result.find(thread_id);
  if (ref == nullptr) {
    result.divergences.push_back(
        Divergence{0, "thread " + std::to_string(thread_id) +
                          " was not part of the replay"});
    return;
  }
  auto gap = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : b - a;
  };
  auto check = [&](const char* what, std::uint64_t refv, std::uint64_t obs) {
    if (gap(refv, obs) > tolerance) {
      result.divergences.push_back(Divergence{
          0, "thread " + std::to_string(thread_id) + " " + what +
                 " disagree: reference " + std::to_string(refv) +
                 " vs scheduler " + std::to_string(obs) +
                 " (tolerance " + std::to_string(tolerance) + ")"});
    }
  };
  check("arrivals", ref->arrivals, observed_arrivals);
  check("completions", ref->completions, observed_completions);
  check("misses", ref->misses, observed_misses);
}

}  // namespace hrt::audit
