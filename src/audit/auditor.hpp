// Scheduler invariant auditor (correctness tooling, not a feature).
//
// The paper's hard guarantees — "no deadline misses when admitted" — only
// hold if the eager-EDF engine's internal state is actually consistent:
// queue membership, budget conservation, and utilization accounting are
// exactly where latent bugs hide.  The Auditor is a cheap, config-toggleable
// set of invariant checks the schedulers and group collectives call into at
// natural quiesce points (end of a scheduling pass, arrival close, timer
// arm, barrier arrive/depart).  Violations either throw (tests) or
// accumulate into a bounded report that rt::report prints, so benchmarks can
// run with audits on without changing their output shape.
//
// The invariants checked (see docs/AUDIT.md for the full catalogue):
//   * queue-state: a thread is in at most one of pending/rt_run/nonrt/
//     sleepers, the heap structure and intrusive indices agree, and a
//     queued thread's State matches its queue.
//   * budget: an arrival is never charged more than sigma plus the timer
//     slop (and, when SMIs are enabled, a bounded missing-time allowance).
//   * utilization: the admitted_periodic/sporadic ledgers equal the sums
//     recomputed from the live thread set after every admit/exit/change.
//   * edf-order: the eager engine never dispatches a later-deadline open RT
//     thread while an earlier-deadline one sits in the run queue.
//   * timer-arm: the one-shot timer is never re-armed at zero delay an
//     unbounded number of times in a row (a past-target storm).
//   * group: barrier arrivals/departures never exceed the expected count.
//   * replay: divergence found by the offline EDF replay oracle
//     (audit/replay.hpp) against a recorded trace.
//   * placement-ledger: the global placement subsystem's per-CPU utilization
//     ledger (global/ledger.hpp) equals the owning scheduler's own
//     admitted_periodic + sporadic ledgers.
//   * migration: every thread queued on a scheduler is owned by that CPU
//     (t->cpu agrees), and job-boundary migration hand-offs never fail
//     despite holding a reservation on the target.
//   * shed-state: every shed record held by the resilience storm controller
//     matches the live thread it names (idle-priority aperiodic while shed;
//     records never dangle past thread exit/reuse).
//   * effective-capacity: the per-CPU capacity published to the placement
//     ledger equals the controller's degraded value (base - missing-time
//     EWMA - reserve) and never exceeds the configured base capacity.
//   * slo-budget: a declared telemetry SLO (telemetry/slo.hpp) burned its
//     deadline-miss budget — the windowed miss fraction reached the budget
//     while the monitor had enough samples to trust the estimate.
//   * cluster-ledger: the cluster controller's cached per-node rollup
//     (cluster/ledger.hpp) diverged from the sums recomputed live from the
//     node's own lock-free UtilizationLedger words, or a down node still
//     published non-zero capacity.
//
// Compile with -DHRT_FORCE_AUDIT=1 (CMake option HRT_FORCE_AUDIT) to force
// every Auditor into enabled+throwing mode regardless of runtime config;
// CI's sanitizer job runs the tier-1 suite this way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hrt::audit {

enum class Invariant : std::uint8_t {
  kQueueState,
  kBudget,
  kUtilization,
  kEdfOrder,
  kTimerArm,
  kGroup,
  kReplay,
  kPlacementLedger,
  kMigration,
  kShedState,
  kEffectiveCapacity,
  kSloBudget,
  kClusterLedger,
};

[[nodiscard]] const char* invariant_name(Invariant inv);

struct Violation {
  Invariant invariant;
  std::uint32_t cpu;
  sim::Nanos time;
  std::string detail;
};

/// Thrown by a throwing-mode Auditor at the point of violation.
class AuditError : public std::runtime_error {
 public:
  AuditError(Invariant inv, std::string what)
      : std::runtime_error(std::move(what)), invariant_(inv) {}
  [[nodiscard]] Invariant invariant() const { return invariant_; }

 private:
  Invariant invariant_;
};

struct Config {
  bool enabled = false;
  /// Throw AuditError at the violation site (tests) instead of accumulating
  /// into the report (benches).
  bool throw_on_violation = false;
  bool check_queues = true;
  bool check_budget = true;
  bool check_utilization = true;
  bool check_edf_order = true;
  bool check_timer = true;
  bool check_group = true;
  bool check_placement_ledger = true;
  bool check_migration = true;
  bool check_shed_state = true;
  bool check_effective_capacity = true;
  bool check_slo = true;
  bool check_cluster_ledger = true;
  /// Violations recorded verbatim; beyond this only the counter grows.
  std::size_t max_recorded = 64;
  /// Extra tolerance for the budget-conservation check, on top of the
  /// scheduler's own timer slop.  Negative means auto: twice the slop plus
  /// 1 us, plus a missing-time allowance when the machine has SMIs.
  sim::Nanos budget_slop = -1;
};

class Auditor {
 public:
  Auditor() : Auditor(Config{}) {}
  explicit Auditor(Config cfg);

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Report a violation: throws in throwing mode, records otherwise.
  void record(Invariant inv, std::uint32_t cpu, sim::Nanos time,
              std::string detail);

  /// Checkpoint accounting, so tests can assert the audits actually ran.
  void count_check() { ++checks_run_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  [[nodiscard]] std::uint64_t total_violations() const {
    return total_violations_;
  }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t count(Invariant inv) const {
    return per_invariant_[static_cast<std::size_t>(inv)];
  }
  void clear();

 private:
  Config cfg_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_run_ = 0;
  std::uint64_t per_invariant_[13] = {};
};

}  // namespace hrt::audit
