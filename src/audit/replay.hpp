// Offline EDF replay oracle.
//
// Goossens et al.'s exact schedulability test (PAPERS.md) works by
// simulating the task set over a bounded interval; the same idea turned
// inward makes a correctness oracle for the scheduler itself: re-derive the
// per-CPU schedule that *should* have happened from first principles
// (release grid, EDF order, budget accounting) and compare it against the
// schedule the trace says *did* happen.  Divergences — a later-deadline
// thread dispatched over an earlier one, an open arrival left unserved past
// the dispatch-latency bound, a thread run far past its exhausted budget, or
// per-task arrival/completion/miss counters that disagree with the
// scheduler's own — are reported with timestamps.
//
// Input is the existing sim::Trace stream (the same records trace_export
// writes to CSV/VCD): kThreadActive/kThreadInactive delimit run intervals
// and kIrqEnter/kIrqExit delimit handler windows, which are excluded from
// budget charging exactly as the executor excludes them.  The oracle is
// per-CPU; threads are bound, so a machine-wide check is a loop over CPUs.
//
// Accuracy model: the reference cannot see scheduler-internal times, so all
// comparisons carry explicit tolerances (ReplayConfig) derived from the
// machine spec — the APIC-tick pump slop, the jittered handler path length,
// and the maximum SMI missing-time when SMIs are enabled.  Enable the trace
// before admitting the tasks under test; records must cover the tasks' whole
// lifetime.  Sleeping inside an RT arrival is not modelled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine_spec.hpp"
#include "rt/constraints.hpp"
#include "sim/trace.hpp"

namespace hrt::audit {

/// One admitted RT constraint to replay (periodic or sporadic).
struct ReplayTask {
  std::uint32_t thread_id = 0;
  rt::Constraints constraints;
  sim::Nanos gamma = 0;  // admission time (Thread::rt.gamma)
};

struct ReplayTaskStats {
  std::uint32_t thread_id = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  std::uint64_t misses = 0;
  sim::Nanos charged_ns = 0;  // total budget the trace delivered
};

struct Divergence {
  sim::Nanos time = 0;
  std::string detail;
};

struct ReplayConfig {
  /// Arrival pump slop: the scheduler opens arrivals up to this early.
  sim::Nanos slop = 21;
  /// A dispatch may trail the pass that decided it by the handler path; a
  /// task released within this window of a dispatch is not a violation.
  sim::Nanos dispatch_grace = sim::micros(15);
  /// An open earlier-deadline arrival must be running within this bound.
  sim::Nanos dispatch_latency = sim::micros(50);
  /// Charge-accounting drift below which an arrival counts as served.
  sim::Nanos budget_tolerance = sim::micros(5);
  /// Run time past an exhausted budget before it is a divergence.
  sim::Nanos overrun_tolerance = sim::micros(20);
};

/// Tolerances derived from a machine spec (tick, handler costs, SMI bound).
[[nodiscard]] ReplayConfig replay_config_for(const hw::MachineSpec& spec);

struct ReplayResult {
  std::vector<Divergence> divergences;
  std::vector<ReplayTaskStats> tasks;
  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] const ReplayTaskStats* find(std::uint32_t thread_id) const;
};

/// Replay `cpu`'s schedule from the trace over [first record, end_time].
ReplayResult replay_edf(const sim::Trace& trace, std::uint32_t cpu,
                        const std::vector<ReplayTask>& tasks,
                        const ReplayConfig& cfg, sim::Nanos end_time);

/// Compare the oracle's per-task counters against the scheduler's own
/// (Thread::rt.arrivals/completions/misses); disagreement beyond `tolerance`
/// appends an unaccounted-miss divergence to `result`.
void verify_stats(ReplayResult& result, std::uint32_t thread_id,
                  std::uint64_t observed_arrivals,
                  std::uint64_t observed_completions,
                  std::uint64_t observed_misses, std::uint64_t tolerance);

}  // namespace hrt::audit
