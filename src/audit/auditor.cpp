#include "audit/auditor.hpp"

namespace hrt::audit {

const char* invariant_name(Invariant inv) {
  switch (inv) {
    case Invariant::kQueueState:
      return "queue-state";
    case Invariant::kBudget:
      return "budget";
    case Invariant::kUtilization:
      return "utilization";
    case Invariant::kEdfOrder:
      return "edf-order";
    case Invariant::kTimerArm:
      return "timer-arm";
    case Invariant::kGroup:
      return "group";
    case Invariant::kReplay:
      return "replay";
    case Invariant::kPlacementLedger:
      return "placement-ledger";
    case Invariant::kMigration:
      return "migration";
    case Invariant::kShedState:
      return "shed-state";
    case Invariant::kEffectiveCapacity:
      return "effective-capacity";
    case Invariant::kSloBudget:
      return "slo-budget";
    case Invariant::kClusterLedger:
      return "cluster-ledger";
  }
  return "?";
}

Auditor::Auditor(Config cfg) : cfg_(cfg) {
#ifdef HRT_FORCE_AUDIT
  // CI sanitizer builds force every auditor hot: any invariant violation in
  // the tier-1 suite fails the build even if the test did not opt in.
  cfg_.enabled = true;
  cfg_.throw_on_violation = true;
#endif
}

void Auditor::record(Invariant inv, std::uint32_t cpu, sim::Nanos time,
                     std::string detail) {
  ++total_violations_;
  ++per_invariant_[static_cast<std::size_t>(inv)];
  if (cfg_.throw_on_violation) {
    throw AuditError(inv, std::string(invariant_name(inv)) + " violation on cpu " +
                              std::to_string(cpu) + " at t=" +
                              std::to_string(time) + "ns: " + detail);
  }
  if (violations_.size() < cfg_.max_recorded) {
    violations_.push_back(Violation{inv, cpu, time, std::move(detail)});
  }
}

void Auditor::clear() {
  violations_.clear();
  total_violations_ = 0;
  checks_run_ = 0;
  for (auto& c : per_invariant_) c = 0;
}

}  // namespace hrt::audit
