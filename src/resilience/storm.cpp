#include "resilience/storm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "audit/auditor.hpp"
#include "global/global_scheduler.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/thread.hpp"
#include "rt/local_scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::resilience {

namespace {
// Matches the admission/ledger tolerance used across src/global/.
constexpr double kEps = 1e-9;
constexpr double kCapacityAuditEps = 1e-9;

bool thread_dead(const nk::Thread* t) {
  return t->state == nk::Thread::State::kExited ||
         t->state == nk::Thread::State::kPooled;
}
}  // namespace

const char* transition_name(Transition::Kind k) {
  switch (k) {
    case Transition::Kind::kStormEnter:
      return "storm-enter";
    case Transition::Kind::kStormExit:
      return "storm-exit";
    case Transition::Kind::kDrain:
      return "drain";
    case Transition::Kind::kShed:
      return "shed";
    case Transition::Kind::kRestore:
      return "restore";
  }
  return "?";
}

void StormController::attach(nk::Kernel* kernel,
                             global::GlobalScheduler* global,
                             audit::Auditor* auditor) {
  kernel_ = kernel;
  global_ = global;
  auditor_ = auditor;
}

void StormController::start() {
  if (!cfg_.enabled || kernel_ == nullptr || global_ == nullptr) return;
  if (sample_event_.valid()) return;  // boot() is idempotent; so is this
  const std::uint32_t n = kernel_->num_cpus();
  cpus_.assign(n, CpuState{});
  for (auto& cs : cpus_) cs.published = base_capacity_;
  storm_flags_.assign(n, 0);
  global_->engine_mut().set_storm_flags(&storm_flags_);
  sample_event_ = engine().schedule_after(
      cfg_.sample_interval_ns, [this] { sample(); }, sim::EventBand::kObserver);
}

std::size_t StormController::shed_count() const {
  std::size_t n = 0;
  for (const ShedRecord& r : sheds_) {
    if (r.applied) ++n;
  }
  return n;
}

sim::Engine& StormController::engine() const {
  return kernel_->machine().engine();
}

rt::LocalScheduler* StormController::sched(std::uint32_t cpu) const {
  return dynamic_cast<rt::LocalScheduler*>(&kernel_->scheduler(cpu));
}

void StormController::log(Transition::Kind k, std::uint32_t cpu, sim::Nanos t,
                          std::uint32_t thread_id, double util) {
  transitions_.push_back(Transition{k, cpu, t, thread_id, util});
  telemetry::Telemetry* tel =
      kernel_ != nullptr ? kernel_->telemetry() : nullptr;
  if (tel != nullptr) {
    telemetry::EventKind ek = telemetry::EventKind::kCustom;
    switch (k) {
      case Transition::Kind::kStormEnter:
        ek = telemetry::EventKind::kStormEnter;
        break;
      case Transition::Kind::kStormExit:
        ek = telemetry::EventKind::kStormExit;
        break;
      case Transition::Kind::kDrain:
        ek = telemetry::EventKind::kDrain;
        break;
      case Transition::Kind::kShed:
        ek = telemetry::EventKind::kShed;
        break;
      case Transition::Kind::kRestore:
        ek = telemetry::EventKind::kRestore;
        break;
    }
    tel->on_event(cpu, t, ek, thread_id,
                  static_cast<std::int64_t>(util * 1e6));
  }
}

StormController::ShedRecord* StormController::find_record(const nk::Thread* t,
                                                          std::uint32_t id) {
  for (ShedRecord& r : sheds_) {
    if (r.thread == t && r.id == id) return &r;
  }
  return nullptr;
}

bool StormController::has_record(const nk::Thread* t) const {
  for (const ShedRecord& r : sheds_) {
    if (r.thread == t && r.id == t->id) return true;
  }
  return false;
}

void StormController::gc_records() {
  // A thread may exit (or be reaped and reused) while shed; its demoted
  // constraints die with it and the record is retired without a restore.
  sheds_.erase(std::remove_if(sheds_.begin(), sheds_.end(),
                              [](const ShedRecord& r) {
                                return r.thread->id != r.id ||
                                       thread_dead(r.thread);
                              }),
               sheds_.end());
}

void StormController::sample() {
  const sim::Nanos now = engine().now();
  ++stats_.samples;
  gc_records();
  auto& ledger = global_->ledger();
  for (std::uint32_t c = 0; c < cpus_.size(); ++c) {
    rt::LocalScheduler* ls = sched(c);
    if (ls == nullptr) continue;
    MissingTimeEstimator& est = ls->missing_time();
    est.advance(now);
    classify(c, est.windowed_max_fraction(), now);
    if (cfg_.degrade_capacity) {
      double eff = base_capacity_ - est.ewma_fraction() - cfg_.capacity_reserve;
      eff = std::clamp(eff, 0.0, base_capacity_);
      cpus_[c].published = eff;
      ledger.set_capacity(c, eff);
      if (auto* tel = kernel_->telemetry()) {
        tel->set_effective_capacity(c, eff);
      }
    }
    storm_flags_[c] = cpus_[c].storm ? 1 : 0;
  }
  for (std::uint32_t c = 0; c < cpus_.size(); ++c) {
    if (cpus_[c].storm) respond(c, now);
  }
  try_restores(now);
  audit(now);
  sample_event_ = engine().schedule_after(
      cfg_.sample_interval_ns, [this] { sample(); }, sim::EventBand::kObserver);
}

void StormController::classify(std::uint32_t cpu, double frac,
                               sim::Nanos now) {
  CpuState& cs = cpus_[cpu];
  if (!cs.storm) {
    cs.hot_streak = frac >= cfg_.storm_enter_fraction ? cs.hot_streak + 1 : 0;
    if (cs.hot_streak >= cfg_.storm_enter_samples) {
      cs.storm = true;
      cs.hot_streak = 0;
      cs.calm_streak = 0;
      ++stats_.storms_entered;
      log(Transition::Kind::kStormEnter, cpu, now, 0, frac);
    }
  } else {
    cs.calm_streak = frac <= cfg_.storm_exit_fraction ? cs.calm_streak + 1 : 0;
    if (cs.calm_streak >= cfg_.storm_exit_samples) {
      cs.storm = false;
      cs.hot_streak = 0;
      cs.calm_streak = 0;
      ++stats_.storms_exited;
      log(Transition::Kind::kStormExit, cpu, now, 0, frac);
    }
  }
}

void StormController::shed_thread(nk::Thread* t, std::uint32_t cpu,
                                  sim::Nanos now, double util) {
  sheds_.push_back(ShedRecord{t, t->id, cpu, t->constraints, util});
  log(Transition::Kind::kShed, cpu, now, t->id, util);
  ++stats_.sheds;
  const std::uint32_t id = t->id;
  sched(cpu)->defer_constraint_change(
      *t, rt::Constraints::aperiodic(rt::kIdlePriority),
      [this, id](nk::Thread* th, bool ok) {
        ShedRecord* r = find_record(th, id);
        if (r == nullptr) return;
        if (ok) {
          r->applied = true;
        } else {
          // Thread exited or moved before the pass; nothing was changed.
          sheds_.erase(sheds_.begin() + (r - sheds_.data()));
        }
      });
}

void StormController::respond(std::uint32_t cpu, sim::Nanos now) {
  auto& ledger = global_->ledger();
  double over = ledger.committed(cpu) - ledger.capacity(cpu);

  std::vector<nk::Thread*> periodics;
  std::vector<nk::Thread*> aperiodics;
  for (nk::Thread* t : kernel_->live_threads()) {
    if (t->cpu != cpu || t->is_idle || thread_dead(t)) continue;
    if (t->migrate_to != nk::kNoMigrateTarget) {
      // A drain already in flight: its utilization leaves at the next job
      // boundary, so it no longer counts toward the overload.
      over -= t->constraints.utilization();
      continue;
    }
    if (const ShedRecord* r = find_record(t, t->id)) {
      // Shed requested but not yet applied: the release is coming.
      if (!r->applied) over -= r->util;
      continue;
    }
    if (t->constraints.cls == rt::ConstraintClass::kPeriodic) {
      periodics.push_back(t);
    } else if (t->constraints.cls == rt::ConstraintClass::kAperiodic &&
               t->constraints.priority != rt::kIdlePriority) {
      aperiodics.push_back(t);
    }
  }
  if (over <= kEps) return;

  auto util_of = [](const nk::Thread* t) {
    return t->constraints.utilization();
  };

  // Drain first: job-boundary migrations to CPUs with headroom, largest
  // load first so the fewest threads move.  SMIs are machine-wide, so a
  // storm flag on the target is no veto by itself — what matters is spare
  // *degraded* capacity there (the ledger headroom is already computed
  // against the published effective capacity); rt_cpu_order still ranks any
  // quiet CPUs first.
  if (cfg_.drain) {
    std::sort(periodics.begin(), periodics.end(),
              [&](const nk::Thread* a, const nk::Thread* b) {
                if (util_of(a) != util_of(b)) return util_of(a) > util_of(b);
                return a->id < b->id;
              });
    for (auto it = periodics.begin();
         it != periodics.end() && over > kEps;) {
      nk::Thread* t = *it;
      if (!global_->rebalancer().movable(t)) {
        ++it;
        continue;
      }
      const double u = util_of(t);
      bool moved = false;
      for (std::uint32_t c : global_->engine().rt_cpu_order(u)) {
        if (c == cpu) continue;
        if (ledger.headroom(c) + kEps < u) continue;
        if (sched(cpu)->request_migration(*t, c)) {
          over -= u;
          log(Transition::Kind::kDrain, cpu, now, t->id, u);
          ++stats_.drains;
          moved = true;
          break;
        }
      }
      it = moved ? periodics.erase(it) : std::next(it);
    }
  }
  if (!cfg_.shed || over <= kEps) return;

  // Shedding: aperiodics stop contending for the shrunken slack first (they
  // hold no reservation, but every cycle they take is one the surviving RT
  // set may need), then the least-critical periodic reservations are demoted
  // until the committed load fits the degraded capacity.
  for (nk::Thread* t : aperiodics) {
    if (!global_->rebalancer().movable(t)) continue;
    shed_thread(t, cpu, now, 0.0);
  }
  std::sort(periodics.begin(), periodics.end(),
            [&](const nk::Thread* a, const nk::Thread* b) {
              if (a->constraints.priority != b->constraints.priority) {
                return a->constraints.priority > b->constraints.priority;
              }
              if (util_of(a) != util_of(b)) return util_of(a) > util_of(b);
              return a->id < b->id;
            });
  for (nk::Thread* t : periodics) {
    if (over <= kEps) break;
    if (!global_->rebalancer().movable(t)) continue;
    over -= util_of(t);
    shed_thread(t, cpu, now, util_of(t));
  }
}

void StormController::try_restores(sim::Nanos now) {
  (void)now;  // transitions stamp the apply time, not the request time
  if (sheds_.empty()) return;
  auto& ledger = global_->ledger();
  // Most critical first: restoration is the reverse of shed order.
  std::vector<std::size_t> order(sheds_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (sheds_[a].original.priority != sheds_[b].original.priority) {
      return sheds_[a].original.priority < sheds_[b].original.priority;
    }
    return sheds_[a].id < sheds_[b].id;
  });
  for (std::size_t i : order) {
    ShedRecord& r = sheds_[i];
    if (!r.applied || r.restoring) continue;
    nk::Thread* t = r.thread;
    if (t->id != r.id || thread_dead(t)) continue;  // next gc retires it
    // Hysteresis guard: restore only once both the shed CPU and the thread's
    // current home have left the storm state.
    if (in_storm(r.home_cpu) || in_storm(t->cpu)) continue;
    if (r.util > 0 && ledger.headroom(t->cpu) + kEps < r.util) {
      ++stats_.restore_retries;
      continue;
    }
    r.restoring = true;
    const std::uint32_t id = r.id;
    sched(t->cpu)->defer_constraint_change(
        *t, r.original, [this, id](nk::Thread* th, bool ok) {
          ShedRecord* rec = find_record(th, id);
          if (rec == nullptr) return;
          if (ok) {
            log(Transition::Kind::kRestore, th->cpu, engine().now(), th->id,
                rec->util);
            ++stats_.restores;
            sheds_.erase(sheds_.begin() + (rec - sheds_.data()));
          } else if (th->id == id && !thread_dead(th)) {
            // Re-admission failed (capacity still tight); stay shed and let
            // a later sample retry.
            rec->restoring = false;
            ++stats_.restore_retries;
          } else {
            sheds_.erase(sheds_.begin() + (rec - sheds_.data()));
          }
        });
  }
}

void StormController::audit(sim::Nanos now) {
  if (auditor_ == nullptr || !auditor_->enabled() || !cfg_.enabled) return;
  const audit::Config& acfg = auditor_->config();
  if (acfg.check_shed_state) {
    auditor_->count_check();
    for (const ShedRecord& r : sheds_) {
      if (!r.applied || r.restoring) continue;
      const nk::Thread* t = r.thread;
      if (t->id != r.id || thread_dead(t)) continue;  // gc territory
      if (t->constraints.cls != rt::ConstraintClass::kAperiodic ||
          t->constraints.priority != rt::kIdlePriority) {
        auditor_->record(audit::Invariant::kShedState, t->cpu, now,
                         "thread " + std::to_string(t->id) +
                             " has a live shed record but runs with class/" +
                             "priority inconsistent with the demotion");
      }
    }
  }
  if (acfg.check_effective_capacity && !cpus_.empty()) {
    auditor_->count_check();
    const auto& ledger = global_->ledger();
    for (std::uint32_t c = 0; c < cpus_.size(); ++c) {
      const double cap = ledger.capacity(c);
      if (std::abs(cap - cpus_[c].published) > kCapacityAuditEps) {
        auditor_->record(audit::Invariant::kEffectiveCapacity, c, now,
                         "ledger capacity " + std::to_string(cap) +
                             " != controller-published " +
                             std::to_string(cpus_[c].published));
      } else if (cap > base_capacity_ + kCapacityAuditEps) {
        auditor_->record(audit::Invariant::kEffectiveCapacity, c, now,
                         "effective capacity " + std::to_string(cap) +
                             " exceeds the base capacity " +
                             std::to_string(base_capacity_));
      }
    }
  }
}

}  // namespace hrt::resilience
