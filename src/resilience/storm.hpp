// SMI storm controller (docs/RESILIENCE.md).
//
// SMIs are firmware-level and machine-wide: every CPU freezes, the OS can
// neither mask nor shorten them, and the only recourse is to *adapt the
// committed load* to the capacity that actually remains.  The controller
// closes that loop:
//
//   sample --> classify --> degrade --> drain --> shed --> restore
//
// Every sample interval it reads each CPU's MissingTimeEstimator (fed by
// the local scheduler's timer path; the ground-truth hw::SmiSource is never
// consulted), publishes degraded effective capacities to the placement
// ledger, and classifies sustained elevation as a *storm* with hysteresis
// (enter after N consecutive hot windows, exit after M consecutive calm
// ones).  On a storm CPU whose committed utilization exceeds its degraded
// capacity it first *drains* — job-boundary migrations of movable periodic
// threads to quiet CPUs with headroom — and only if the overload persists
// *sheds*: aperiodics drop to idle priority first, then the least-critical
// periodic threads (highest Constraints::priority value) are demoted to
// idle-priority aperiodic, freeing their reservation while letting them run
// in slack.  When the storm clears, shed threads are restored in reverse
// criticality order, each through a fresh admission test, retrying until it
// passes.
//
// The controller runs as an engine observer, outside any CPU's handler
// sequence, so it never mutates scheduler queues directly: drains go through
// the existing request_migration protocol and shed/restore through
// LocalScheduler::defer_constraint_change, which applies the change at the
// next scheduling pass on the owning CPU.  Every state change is appended
// to the transition log (the auditable record), and two invariants are
// checked each sample when an auditor is attached: shed-state consistency
// and the effective-capacity ledger bound.
#pragma once

#include <cstdint>
#include <vector>

#include "resilience/estimator.hpp"
#include "rt/constraints.hpp"
#include "sim/engine.hpp"

namespace hrt::nk {
class Kernel;
class Thread;
}  // namespace hrt::nk

namespace hrt::global {
class GlobalScheduler;
}

namespace hrt::audit {
class Auditor;
}

namespace hrt::rt {
class LocalScheduler;
}

namespace hrt::resilience {

struct Config {
  bool enabled = false;
  /// Copied into every LocalScheduler (estimator.enabled follows `enabled`).
  EstimatorConfig estimator;
  /// Local admission subtracts the estimated missing fraction + reserve.
  bool degrade_admission = true;
  /// Publish degraded effective capacities to the placement ledger.
  bool degrade_capacity = true;
  bool drain = true;
  bool shed = true;
  /// Safety margin subtracted from effective capacity on top of the
  /// estimate, absorbing estimator lag at storm onset.
  double capacity_reserve = 0.02;
  sim::Nanos sample_interval_ns = sim::millis(1);
  /// Storm hysteresis over the estimator's windowed-max fraction.
  double storm_enter_fraction = 0.05;
  double storm_exit_fraction = 0.02;
  std::uint32_t storm_enter_samples = 2;
  std::uint32_t storm_exit_samples = 4;
};

struct Transition {
  enum class Kind : std::uint8_t {
    kStormEnter,
    kStormExit,
    kDrain,    // migration of a periodic thread off a storm CPU accepted
    kShed,     // thread demoted (periodic -> idle aperiodic, or priority)
    kRestore,  // shed thread re-admitted with its original constraints
  };
  Kind kind;
  std::uint32_t cpu;
  sim::Nanos time;
  std::uint32_t thread_id;  // 0 for storm enter/exit
  double util;              // utilization moved/freed, or observed fraction
};

[[nodiscard]] const char* transition_name(Transition::Kind k);

class StormController {
 public:
  struct Stats {
    std::uint64_t samples = 0;
    std::uint64_t storms_entered = 0;
    std::uint64_t storms_exited = 0;
    std::uint64_t drains = 0;
    std::uint64_t sheds = 0;
    std::uint64_t restores = 0;
    std::uint64_t restore_retries = 0;  // re-admission failed; kept shed
  };

  StormController(Config cfg, double base_capacity)
      : cfg_(cfg), base_capacity_(base_capacity) {}

  /// Late wiring; all three outlive the controller's uses.  Registers the
  /// storm flags with the placement engine.
  void attach(nk::Kernel* kernel, global::GlobalScheduler* global,
              audit::Auditor* auditor);

  /// Begin the sampling loop (no-op when disabled).
  void start();

  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Transition>& transitions() const {
    return transitions_;
  }
  [[nodiscard]] bool in_storm(std::uint32_t cpu) const {
    return cpu < cpus_.size() && cpus_[cpu].storm;
  }
  [[nodiscard]] double published_capacity(std::uint32_t cpu) const {
    return cpu < cpus_.size() ? cpus_[cpu].published : base_capacity_;
  }
  /// Currently shed threads (applied and not yet restored).
  [[nodiscard]] std::size_t shed_count() const;
  [[nodiscard]] double base_capacity() const { return base_capacity_; }

  /// Check the kShedState and kEffectiveCapacity invariants now (also runs
  /// automatically every sample).
  void audit(sim::Nanos now);

 private:
  struct ShedRecord {
    nk::Thread* thread;
    std::uint32_t id;        // guards against thread-pool reuse
    std::uint32_t home_cpu;  // storm CPU the shed happened on
    rt::Constraints original;
    double util;      // RT utilization freed (0 for aperiodic sheds)
    bool applied = false;    // deferred demotion has run
    bool restoring = false;  // deferred restore is in flight
  };
  struct CpuState {
    bool storm = false;
    std::uint32_t hot_streak = 0;
    std::uint32_t calm_streak = 0;
    double published = 0.0;  // capacity last written to the ledger
  };

  void sample();
  void classify(std::uint32_t cpu, double frac, sim::Nanos now);
  void respond(std::uint32_t cpu, sim::Nanos now);
  void shed_thread(nk::Thread* t, std::uint32_t cpu, sim::Nanos now,
                   double util);
  void try_restores(sim::Nanos now);
  void gc_records();
  void log(Transition::Kind k, std::uint32_t cpu, sim::Nanos t,
           std::uint32_t thread_id, double util);
  [[nodiscard]] rt::LocalScheduler* sched(std::uint32_t cpu) const;
  [[nodiscard]] sim::Engine& engine() const;
  [[nodiscard]] ShedRecord* find_record(const nk::Thread* t, std::uint32_t id);
  [[nodiscard]] bool has_record(const nk::Thread* t) const;

  Config cfg_;
  double base_capacity_;
  nk::Kernel* kernel_ = nullptr;
  global::GlobalScheduler* global_ = nullptr;
  audit::Auditor* auditor_ = nullptr;
  std::vector<CpuState> cpus_;
  std::vector<std::uint8_t> storm_flags_;  // shared with PlacementEngine
  std::vector<ShedRecord> sheds_;
  std::vector<Transition> transitions_;
  sim::EventId sample_event_;
  Stats stats_;
};

}  // namespace hrt::resilience
