// Online missing-time estimator (section 3.6 resilience).
//
// Firmware-level SMIs freeze the whole machine; the OS cannot mask them and
// cannot observe them directly -- the TSC keeps counting through the freeze.
// The only software-visible footprint is *lateness*: a timer interrupt whose
// fire instant falls inside a frozen window is delivered when the window
// ends, so the handler observes now() > expected fire time.
//
// The estimator turns those lateness episodes into an unbiased estimate of
// the stolen-time fraction.  The subtlety is sampling bias: a freeze is only
// caught if it covers a pending fire instant.  With an armed timer delay of
// A ns, a freeze of length d < A is caught with probability ~d/A, and when
// caught the observed lateness averages d/2.  Charging
//
//     stolen_per_episode = lateness + min(A, cap)/2
//
// makes the expectation come out right in both regimes:
//   * d >= A: always caught, observed lateness ~ d - U(0,A), so adding A/2
//     recovers d exactly in expectation.
//   * d <  A: caught with prob d/A, and E[lateness + A/2 | caught] ~ A, so
//     E[charge] = (d/A) * A = d.
// The credit is capped so that one long-armed quiet-CPU timer cannot charge
// a huge phantom credit for a tiny blip.
//
// To keep A bounded (and the estimate responsive) without burning cycles,
// the scheduler arms an additional low-rate watchdog timer whose period
// adapts: quiet cadence normally, alert cadence once the EWMA fraction
// crosses a threshold.  The estimator only does arithmetic; the scheduler
// feeds it episodes from its timer path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hrt::resilience {

struct EstimatorConfig {
  bool enabled = false;
  // Bucketing window for the windowed-max fraction.
  sim::Nanos window_ns = sim::millis(2);
  // Ring of completed windows considered by windowed_max_fraction().
  std::uint32_t windows_tracked = 8;
  // EWMA smoothing over completed windows (higher = more reactive).
  double ewma_alpha = 0.25;
  // Lateness below this is attributed to handler/masking jitter, not SMIs.
  sim::Nanos lateness_floor_ns = sim::micros(1);
  // Cap on the A/2 arming-gap credit charged per caught episode.
  sim::Nanos episode_credit_cap_ns = sim::micros(50);
  // Watchdog timer cadence: quiet normally, alert once elevated.
  sim::Nanos watchdog_quiet_ns = sim::micros(200);
  sim::Nanos watchdog_alert_ns = sim::micros(20);
  // EWMA fraction above which the watchdog switches to the alert cadence.
  double alert_fraction = 0.01;
};

class MissingTimeEstimator {
 public:
  explicit MissingTimeEstimator(EstimatorConfig cfg = {}) : cfg_(cfg) {
    if (cfg_.window_ns <= 0) cfg_.window_ns = sim::millis(2);
    if (cfg_.windows_tracked == 0) cfg_.windows_tracked = 1;
    ring_.assign(cfg_.windows_tracked, 0.0);
  }

  const EstimatorConfig& config() const { return cfg_; }

  // Roll the window bucketing forward to `now`.  Windows that elapsed with
  // no episodes contribute zero stolen time (they decay the EWMA).
  void advance(sim::Nanos now) {
    if (!cfg_.enabled) return;
    if (window_start_ < 0) {
      window_start_ = now;
      return;
    }
    while (now - window_start_ >= cfg_.window_ns) {
      close_window();
      window_start_ += cfg_.window_ns;
    }
  }

  // Record one caught lateness episode.  `lateness` is delivery delay past
  // the expected fire instant; `armed_delay` is the delay the timer was
  // armed with (the sampling gap A).
  void note_episode(sim::Nanos lateness, sim::Nanos armed_delay,
                    sim::Nanos now) {
    if (!cfg_.enabled || lateness < cfg_.lateness_floor_ns) return;
    advance(now);
    const sim::Nanos gap = std::max<sim::Nanos>(armed_delay, 0);
    const sim::Nanos credit =
        std::min<sim::Nanos>(gap, cfg_.episode_credit_cap_ns) / 2;
    window_stolen_ += lateness + credit;
    stolen_total_ += lateness + credit;
    ++episodes_;
  }

  // Record one pass-to-rearm handler span residual (actual span minus the
  // scheduler's own predicted handler cost).  Freezes that land inside the
  // handler window (after the pending fire expectation was consumed, before
  // the timer is re-armed) are invisible to the lateness path; they show up
  // only as the handler taking longer than its known cost.  Any constant
  // prediction offset (rounding differences in the cost model) is learned
  // online as the running minimum — freezes can only stretch a span, never
  // shrink it — and the excess above that floor is charged as stolen time.
  void note_span(sim::Nanos residual, sim::Nanos now) {
    if (!cfg_.enabled) return;
    advance(now);
    if (!min_span_valid_ || residual < min_span_) {
      min_span_ = residual;
      min_span_valid_ = true;
    }
    const sim::Nanos excess = residual - min_span_;
    if (excess < cfg_.lateness_floor_ns) return;
    window_stolen_ += excess;
    stolen_total_ += excess;
    ++span_episodes_;
  }

  // Smoothed stolen-time fraction (0..1) over completed windows.
  double ewma_fraction() const { return ewma_; }

  // Worst completed window in the tracked ring -- the storm detector keys
  // off this so a single bad window is not averaged away.
  double windowed_max_fraction() const {
    double m = 0.0;
    for (double f : ring_) m = std::max(m, f);
    return m;
  }

  std::uint64_t stolen_total_ns() const { return stolen_total_; }
  std::uint64_t episodes() const { return episodes_; }
  std::uint64_t span_episodes() const { return span_episodes_; }

  // Cadence the scheduler should use for its watchdog timer right now.
  sim::Nanos watchdog_period() const {
    return ewma_ > cfg_.alert_fraction ? cfg_.watchdog_alert_ns
                                       : cfg_.watchdog_quiet_ns;
  }

 private:
  void close_window() {
    const double frac = std::clamp(
        static_cast<double>(window_stolen_) /
            static_cast<double>(cfg_.window_ns),
        0.0, 1.0);
    ring_[ring_pos_] = frac;
    ring_pos_ = (ring_pos_ + 1) % ring_.size();
    ewma_ = cfg_.ewma_alpha * frac + (1.0 - cfg_.ewma_alpha) * ewma_;
    window_stolen_ = 0;
  }

  EstimatorConfig cfg_;
  sim::Nanos window_start_ = -1;
  sim::Nanos window_stolen_ = 0;
  std::uint64_t stolen_total_ = 0;
  std::uint64_t episodes_ = 0;
  std::uint64_t span_episodes_ = 0;
  sim::Nanos min_span_ = 0;  // learned un-frozen span residual
  bool min_span_valid_ = false;
  std::vector<double> ring_;
  std::size_t ring_pos_ = 0;
  double ewma_ = 0.0;
};

}  // namespace hrt::resilience
