// Utilization-aware CPU placement (docs/GLOBAL.md).
//
// The placement engine sits between the public spawn API and the per-CPU
// local schedulers.  It never admits anything itself: it only *chooses*
// CPUs, using the utilization ledger as its view of commitments, and the
// chosen CPU's own rt::Admission test remains the final authority.  That
// keeps the safety argument local — a bad placement decision can only cost
// throughput, never a deadline.
//
// Three layers:
//   * PlacementEngine — online single-thread placement with pluggable
//     policies (first-fit, best-fit, worst-fit, topology-aware), plus
//     group co-placement.
//   * pack_decreasing / pack_semi_partitioned — offline set packing used by
//     the ablation bench and by spawn-time overflow splitting.  The
//     semi-partitioned packer splits tasks that fit no single CPU into
//     restricted-migration pipeline chunks (split_task) and by construction
//     admits at least as much utilization as the best pure partitioning.
//   * split_task — the pipeline-split math: chunk i runs on its own CPU
//     with constraints periodic(phi + i*tau, tau, sigma_i), so within one
//     logical job the chunks' windows are disjoint and ordered — chunk i's
//     deadline is exactly chunk i+1's release — and no two chunks of the
//     same job can ever run concurrently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rt/admission.hpp"
#include "rt/constraints.hpp"
#include "sim/time.hpp"

namespace hrt::global {

class UtilizationLedger;

inline constexpr std::uint32_t kInvalidCpu = 0xFFFFFFFFu;

enum class Policy : std::uint8_t {
  kFirstFit,   // lowest-numbered CPU with headroom
  kBestFit,    // most-loaded CPU that still fits (minimum residual)
  kWorstFit,   // least-loaded CPU (maximum residual; balances load)
  kTopology,   // worst-fit, but steer RT work off interrupt-laden CPUs
};

[[nodiscard]] const char* policy_name(Policy p);

struct Config {
  Policy policy = Policy::kTopology;
  /// Mirror of nk::Kernel::Options::interrupt_laden_cpus: CPUs [0, n) take
  /// device interrupts (section 3.5's partition), so kTopology places RT
  /// threads on CPUs >= n whenever they fit there.
  std::uint32_t interrupt_laden_cpus = 1;
  bool steer_rt_interrupt_free = true;
  /// Overflow splitting: cap on pipeline chunks per task, and the smallest
  /// slice a chunk may be given (mirrors LocalScheduler::Config::min_slice).
  std::uint32_t max_split_chunks = 8;
  sim::Nanos min_split_slice = sim::micros(10);
  /// Degrade each CPU's split headroom by its scheduler's windowed peak
  /// missing-time fraction (docs/RESILIENCE.md): a chunk sized to the
  /// ledger's headroom on an SMI-hit CPU would overcommit the capacity the
  /// CPU can actually deliver.  No-op while the estimator reads zero.
  bool split_degrade_missing_time = true;
  /// Aligned split release (docs/GLOBAL.md): spawn_split stamps every chunk
  /// with an anchored release grid (rt::Constraints::align_release), so the
  /// chunks' release grids coincide exactly even though each chunk's
  /// admission runs — and may retry — at its own time.  Off restores the
  /// historical behavior where grids were aligned only to within the
  /// admission-time skew.
  bool split_aligned_release = true;
  /// Rebalancer knobs (rebalancer.hpp).
  double rebalance_threshold = 0.25;  // act when max-min committed gap >= this
  std::uint32_t admit_retries = 3;    // auto-admit attempts before giving up
  sim::Nanos rebalance_task_size = sim::micros(5);
};

/// Online placement decisions against the live ledger.
class PlacementEngine {
 public:
  PlacementEngine(const UtilizationLedger& ledger, Config cfg)
      : ledger_(ledger), cfg_(cfg) {}

  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Pick a CPU for a thread demanding `util` of a CPU.  Real-time requests
  /// under kTopology prefer the interrupt-free partition.  Returns
  /// kInvalidCpu when no CPU has the headroom.
  [[nodiscard]] std::uint32_t choose_cpu(double util, bool realtime) const;
  [[nodiscard]] std::uint32_t choose_cpu(const rt::Constraints& c) const {
    return choose_cpu(c.utilization(), c.is_realtime());
  }

  /// Placement of last resort when nothing fits: the least-committed CPU
  /// (interrupt-free preferred for RT), so the inevitable admission
  /// rejection lands where a rebalance is most likely to make room.
  [[nodiscard]] std::uint32_t fallback_cpu(bool realtime) const;

  /// Co-place `n` group members, each demanding `c`'s utilization: distinct
  /// CPUs in headroom order (group collectives gain nothing from sharing a
  /// CPU; distinct CPUs let all members run concurrently).  Empty result if
  /// fewer than `n` CPUs fit.
  [[nodiscard]] std::vector<std::uint32_t> choose_group(
      std::uint32_t n, const rt::Constraints& c) const;

  /// One placement pass for a whole batch (System::spawn_batch): the ledger
  /// is snapshotted into a scratch headroom vector once, then the specs are
  /// packed worst-fit-decreasing against the scratch — each placement
  /// debits it, so later specs see earlier ones without another ledger
  /// read.  Specs that fit nowhere get the fallback CPU, exactly like
  /// place(); result[i] is the CPU for specs[i].
  [[nodiscard]] std::vector<std::uint32_t> place_batch(
      const std::vector<rt::Constraints>& specs) const;

  /// All CPUs ordered by how attractive they are for an RT thread of
  /// `util`: interrupt-free first (when steering), then by descending
  /// headroom.  Used by the rebalancer's make-room search.
  [[nodiscard]] std::vector<std::uint32_t> rt_cpu_order(double util) const;

  /// Storm deprioritization (docs/RESILIENCE.md): the resilience controller
  /// marks CPUs it has classified as storm-hit; choose_cpu and rt_cpu_order
  /// then prefer quiet CPUs, falling back to stormy ones only when nothing
  /// else fits.  SMIs freeze the whole machine, but per-CPU marks matter
  /// because storm-hit CPUs are the ones whose *committed* load no longer
  /// fits their degraded capacity.
  void set_storm_flags(const std::vector<std::uint8_t>* flags) {
    storm_flags_ = flags;
  }
  [[nodiscard]] bool storm_hit(std::uint32_t cpu) const {
    return storm_flags_ != nullptr && cpu < storm_flags_->size() &&
           (*storm_flags_)[cpu] != 0;
  }

 private:
  [[nodiscard]] bool fits(std::uint32_t cpu, double util) const;

  const UtilizationLedger& ledger_;
  Config cfg_;
  const std::vector<std::uint8_t>* storm_flags_ = nullptr;  // by CPU; unowned
};

// --- offline set packing (bench + overflow planning) ---

struct SplitChunk {
  std::uint32_t cpu = kInvalidCpu;
  rt::Constraints constraints;
};

struct SplitPlan {
  bool ok = false;
  std::vector<SplitChunk> chunks;
};

/// Split one periodic task across CPUs as a restricted-migration pipeline.
/// `headroom[i]` is the spare utilization on CPU i.  Chunk i gets
/// periodic(task.phase + i*task.period, task.period, sigma_i) with
/// sigma_i <= headroom[cpu_i] * period, chunks ordered by decreasing
/// headroom.  Fails (ok=false) when the task fits in no combination of
/// max_chunks CPUs or a chunk would drop under min_slice.
///
/// The phase offsets make the same job's chunk windows disjoint: chunk i
/// owns [arrival + i*tau, arrival + (i+1)*tau), so pieces never run
/// concurrently and every piece still enjoys a plain implicit-deadline
/// periodic reservation on its CPU.  The cost is end-to-end latency: the
/// logical job completes k*tau after its release instead of tau
/// (docs/GLOBAL.md discusses this relaxation).
[[nodiscard]] SplitPlan split_task(const rt::PeriodicTask& task,
                                   const std::vector<double>& headroom,
                                   sim::Nanos min_slice,
                                   std::uint32_t max_chunks);

struct PackResult {
  /// assignment[i] = CPU of tasks[i], or kInvalidCpu if not placed.
  std::vector<std::uint32_t> assignment;
  std::vector<double> per_cpu;  // committed utilization per CPU
  double admitted_util = 0.0;
  std::uint32_t placed = 0;
};

/// Decreasing-utilization bin packing of `tasks` onto `num_cpus` CPUs of
/// `capacity` each, under `policy`'s candidate ordering.  Fit test is the
/// real rt::edf_admissible over the tentative per-CPU set, so a reported
/// packing is exactly what per-CPU admission would accept.
[[nodiscard]] PackResult pack_decreasing(const std::vector<rt::PeriodicTask>& tasks,
                                         std::uint32_t num_cpus,
                                         double capacity, Policy policy,
                                         std::uint32_t interrupt_laden_cpus = 0);

struct SemiPartitionedResult {
  PackResult base;          // best pure partitioning found
  Policy base_policy = Policy::kWorstFit;
  /// splits[j] = plan for the j-th task the base packing left unplaced
  /// (index into the original task vector in .task_index).
  struct Split {
    std::size_t task_index = 0;
    SplitPlan plan;
  };
  std::vector<Split> splits;
  std::vector<double> per_cpu;
  double admitted_util = 0.0;
  std::uint32_t placed = 0;  // tasks placed whole or split
};

/// Best of FFD/BFD/WFD, then pipeline-split the leftovers into remaining
/// headroom (each chunk re-validated with rt::edf_admissible before
/// committing).  admitted_util >= every pure policy's by construction.
[[nodiscard]] SemiPartitionedResult pack_semi_partitioned(
    const std::vector<rt::PeriodicTask>& tasks, std::uint32_t num_cpus,
    double capacity, sim::Nanos min_slice, std::uint32_t max_chunks);

}  // namespace hrt::global
