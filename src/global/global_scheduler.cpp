#include "global/global_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "nautilus/behavior.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/thread.hpp"
#include "rt/local_scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::global {

namespace {

/// The auto-admission wrapper (GlobalScheduler::auto_admit).  State machine:
///   kAdmit -> kCheck -> kRun (admitted)
///                    -> make room + sleep -> kAdmit (rejected, retries left)
///                    -> exit               (rejected, retries exhausted)
class AutoAdmitBehavior final : public nk::Behavior {
 public:
  AutoAdmitBehavior(GlobalScheduler& gs, rt::Constraints c,
                    std::unique_ptr<nk::Behavior> inner)
      : gs_(gs), constraints_(c), inner_(std::move(inner)) {}

  nk::Action next(nk::ThreadCtx& ctx) override {
    switch (phase_) {
      case Phase::kAdmit:
        phase_ = Phase::kCheck;
        return nk::Action::change_constraints(constraints_);
      case Phase::kCheck: {
        if (ctx.last_admit_ok) {
          phase_ = Phase::kRun;
          return run_inner(ctx);
        }
        if (attempts_ >= gs_.config().admit_retries) {
          gs_.note_give_up();
          return nk::Action::exit();
        }
        ++attempts_;
        // Rejected: try to migrate someone out of the way, follow the room
        // if it opened on another CPU (we are still aperiodic, so a parked
        // re-home is legal), and retry after the hand-off had a chance to
        // complete — periodic hand-offs happen at job boundaries, so two
        // periods always covers one.
        const std::uint32_t room =
            gs_.rebalancer().make_room(constraints_, &ctx.self);
        if (room != kInvalidCpu && room != ctx.self.cpu) {
          gs_.rebalancer().relocate_when_parked(&ctx.self, room);
        }
        phase_ = Phase::kAdmit;
        return nk::Action::sleep(retry_delay());
      }
      case Phase::kRun:
        return run_inner(ctx);
    }
    return nk::Action::exit();
  }

  [[nodiscard]] std::string describe() const override {
    return "auto-admit(" + inner_->describe() + ")";
  }

 private:
  enum class Phase : std::uint8_t { kAdmit, kCheck, kRun };

  nk::Action run_inner(nk::ThreadCtx& ctx) {
    nk::Action a = inner_->next(ctx);
    if (a.kind == nk::Action::Kind::kExit) {
      // Our departure frees utilization; let the rebalancer re-level after
      // the exit settles.
      gs_.rebalancer().on_thread_exit(ctx.self.cpu);
    }
    return a;
  }

  [[nodiscard]] sim::Nanos retry_delay() const {
    const sim::Nanos floor = sim::millis(1);
    if (constraints_.cls == rt::ConstraintClass::kPeriodic) {
      return std::max(floor, 2 * constraints_.period);
    }
    return floor;
  }

  GlobalScheduler& gs_;
  rt::Constraints constraints_;
  std::unique_ptr<nk::Behavior> inner_;
  Phase phase_ = Phase::kAdmit;
  std::uint32_t attempts_ = 0;
};

}  // namespace

std::unique_ptr<nk::Behavior> GlobalScheduler::auto_admit(
    const rt::Constraints& c, std::unique_ptr<nk::Behavior> inner) {
  return std::make_unique<AutoAdmitBehavior>(*this, c, std::move(inner));
}

SplitPlan GlobalScheduler::plan_split(const rt::Constraints& c,
                                      sim::Nanos min_slice) {
  if (c.cls != rt::ConstraintClass::kPeriodic || !c.well_formed()) {
    return {};
  }
  const rt::PeriodicTask task{c.period, c.slice, c.phase};
  const std::uint32_t n = ledger_.num_cpus();
  std::vector<double> headroom(n);
  for (std::uint32_t i = 0; i < n; ++i) headroom[i] = ledger_.headroom(i);

  // Resilience follow-up (docs/RESILIENCE.md): chunk sizing must respect
  // what each CPU can actually deliver, not just what the ledger says is
  // uncommitted.  The windowed *peak* missing-time fraction is the right
  // degradation here — a split plan is a long-lived commitment, so it must
  // survive the worst recent window, not the average.
  if (kernel_ != nullptr && cfg_.split_degrade_missing_time) {
    for (std::uint32_t i = 0; i < n && i < kernel_->num_cpus(); ++i) {
      auto* ls = dynamic_cast<rt::LocalScheduler*>(&kernel_->scheduler(i));
      if (ls == nullptr) continue;
      headroom[i] -= ls->missing_time().windowed_max_fraction();
      if (headroom[i] < 0.0) headroom[i] = 0.0;
    }
  }

  SplitPlan plan;
  const bool steer = cfg_.policy == Policy::kTopology &&
                     cfg_.steer_rt_interrupt_free &&
                     cfg_.interrupt_laden_cpus < n;
  if (steer) {
    std::vector<double> steered = headroom;
    for (std::uint32_t i = 0; i < cfg_.interrupt_laden_cpus; ++i) {
      steered[i] = 0.0;
    }
    plan = split_task(task, steered, min_slice, cfg_.max_split_chunks);
  }
  if (!plan.ok) {
    plan = split_task(task, headroom, min_slice, cfg_.max_split_chunks);
  }
  if (plan.ok) {
    ++stats_.split_plans;
    stats_.split_chunks += plan.chunks.size();
    if (kernel_ != nullptr && kernel_->telemetry() != nullptr) {
      kernel_->telemetry()->on_event(
          plan.chunks.front().cpu,
          kernel_->machine().cpu(0).tsc().wall_ns(),
          telemetry::EventKind::kSplitPlan, 0,
          static_cast<std::int64_t>(plan.chunks.size()));
    }
  }
  return plan;
}

}  // namespace hrt::global
