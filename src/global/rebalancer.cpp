#include "global/rebalancer.hpp"

#include <cmath>

#include "global/ledger.hpp"
#include "group/group.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/thread.hpp"
#include "rt/local_scheduler.hpp"

namespace hrt::global {

namespace {

rt::LocalScheduler* local_sched(nk::Kernel& kernel, std::uint32_t cpu) {
  return dynamic_cast<rt::LocalScheduler*>(&kernel.scheduler(cpu));
}

}  // namespace

bool Rebalancer::movable(const nk::Thread* t) const {
  if (t == nullptr || t->is_idle) return false;
  if (t->state == nk::Thread::State::kExited ||
      t->state == nk::Thread::State::kPooled) {
    return false;
  }
  if (t->migrate_to != nk::kNoMigrateTarget) return false;
  if (groups_ != nullptr && groups_->group_of(t) != nullptr) return false;
  return true;
}

bool Rebalancer::rebalance_once() {
  if (kernel_ == nullptr) return false;
  const std::uint32_t n = ledger_.num_cpus();
  if (n < 2) return false;

  std::uint32_t hi = 0;
  for (std::uint32_t c = 1; c < n; ++c) {
    if (ledger_.committed(c) > ledger_.committed(hi)) hi = c;
  }
  // The destination is picked the same way placement is: interrupt-free
  // partition first when steering is on.
  std::uint32_t lo = kInvalidCpu;
  for (std::uint32_t c : engine_.rt_cpu_order(0.0)) {
    if (c == hi) continue;
    if (lo == kInvalidCpu || ledger_.committed(c) < ledger_.committed(lo)) {
      lo = c;
    }
  }
  if (lo == kInvalidCpu) return false;
  const double gap = ledger_.committed(hi) - ledger_.committed(lo);
  if (gap < cfg_.rebalance_threshold) return false;

  // Largest movable periodic thread on `hi` that both fits in the gap
  // (moving it must not just flip the imbalance) and fits in `lo`'s
  // headroom.  The does-it-flip test compares in the ledger's own Q32.32
  // quantization: the candidate's demand quantum is exactly what its admit
  // added to `hi`'s word, so the boundary case (u == true gap) resolves
  // identically to exact real arithmetic instead of inheriting the ulp the
  // per-admit ceil rounding adds to the committed words.
  const rt::fp::Raw gap_raw =
      ledger_.committed_raw(hi) - ledger_.committed_raw(lo);
  nk::Thread* victim = nullptr;
  double victim_util = 0.0;
  for (nk::Thread* t : kernel_->live_threads()) {
    if (t->cpu != hi || !movable(t)) continue;
    if (t->constraints.cls != rt::ConstraintClass::kPeriodic) continue;
    const double u = t->constraints.utilization();
    if (rt::fp::from_double_ceil(u) >= gap_raw || u > ledger_.headroom(lo))
      continue;
    if (victim == nullptr || u > victim_util) {
      victim = t;
      victim_util = u;
    }
  }
  if (victim == nullptr) return false;

  rt::LocalScheduler* src = local_sched(*kernel_, hi);
  if (src == nullptr || !src->request_migration(*victim, lo)) return false;
  ++stats_.migrations_proposed;
  return true;
}

void Rebalancer::schedule_rebalance(std::uint32_t cpu) {
  if (kernel_ == nullptr) return;
  kernel_->submit_task(
      cpu, nk::Task{[this]() { rebalance_once(); }, cfg_.rebalance_task_size});
}

void Rebalancer::on_thread_exit(std::uint32_t cpu) {
  // Deferred: the exiting thread still holds its utilization until the
  // scheduler's exit handling finishes, so re-level in a later pass.
  ++stats_.exit_rebalances;
  schedule_rebalance(cpu);
}

std::uint32_t Rebalancer::make_room(const rt::Constraints& c,
                                    const nk::Thread* for_thread) {
  ++stats_.make_room_calls;
  if (kernel_ == nullptr) return kInvalidCpu;
  const double util = c.utilization();
  const auto live = kernel_->live_threads();

  for (std::uint32_t x : engine_.rt_cpu_order(util)) {
    const double deficit = util - ledger_.headroom(x);
    if (deficit <= 0) return x;  // already fits; caller just retries here

    // Smallest movable periodic thread on x whose departure covers the
    // deficit, paired with the roomiest destination that can absorb it.
    nk::Thread* victim = nullptr;
    double victim_util = 0.0;
    for (nk::Thread* t : live) {
      if (t == for_thread || t->cpu != x || !movable(t)) continue;
      if (t->constraints.cls != rt::ConstraintClass::kPeriodic) continue;
      const double u = t->constraints.utilization();
      if (u + 1e-12 < deficit) continue;
      if (victim == nullptr || u < victim_util) {
        victim = t;
        victim_util = u;
      }
    }
    if (victim == nullptr) continue;
    std::uint32_t dest = kInvalidCpu;
    for (std::uint32_t y = 0; y < ledger_.num_cpus(); ++y) {
      if (y == x) continue;
      if (ledger_.headroom(y) + 1e-12 < victim_util) continue;
      if (dest == kInvalidCpu ||
          ledger_.headroom(y) > ledger_.headroom(dest)) {
        dest = y;
      }
    }
    if (dest == kInvalidCpu) continue;
    rt::LocalScheduler* src = local_sched(*kernel_, x);
    if (src == nullptr || !src->request_migration(*victim, dest)) continue;
    ++stats_.make_room_migrations;
    ++stats_.migrations_proposed;
    return x;
  }
  return kInvalidCpu;
}

void Rebalancer::relocate_when_parked(nk::Thread* t, std::uint32_t to) {
  if (kernel_ == nullptr || t == nullptr) return;
  const nk::Thread::Id id = t->id;
  nk::Kernel* kernel = kernel_;
  // Deferred sized task on the thread's own CPU: by the time the task runs
  // the thread has been descheduled (tasks run inside a scheduler pass), so
  // the parked-only migrate_aperiodic can succeed.  The id re-check guards
  // against the thread exiting and its object being recycled meanwhile.
  kernel_->submit_task(t->cpu, nk::Task{[this, kernel, t, id, to]() {
                                          if (t->id != id) return;
                                          if (kernel->migrate_aperiodic(t, to)) {
                                            ++stats_.relocations;
                                          }
                                        },
                                        cfg_.rebalance_task_size});
}

}  // namespace hrt::global
