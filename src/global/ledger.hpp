// Per-CPU utilization ledger: the global placement subsystem's view of how
// much real-time utilization each local scheduler has committed.
//
// The local schedulers feed the ledger deltas at their three utilization
// mutation points (admission commit, detach/exit, sporadic tail release), so
// it tracks the per-CPU admitted_periodic + sporadic ledgers exactly — the
// kPlacementLedger audit invariant (docs/AUDIT.md) recomputes the
// correspondence after every scheduling pass.  The placement engine and the
// rebalancer read headroom from here instead of polling every scheduler.
//
// Reservations (two-phase group admission, migration holds) are deliberately
// *not* in the ledger: they are transient and already protect admission on
// the owning CPU; the ledger reflects only committed demand.
#pragma once

#include <cstdint>
#include <vector>

namespace hrt::global {

class UtilizationLedger {
 public:
  /// `capacity` is the per-CPU utilization available to RT admission
  /// (utilization_limit minus the sporadic and aperiodic reservations).
  UtilizationLedger(std::uint32_t num_cpus, double capacity);

  void on_admit(std::uint32_t cpu, double util);
  void on_release(std::uint32_t cpu, double util);

  [[nodiscard]] std::uint32_t num_cpus() const {
    return static_cast<std::uint32_t>(committed_.size());
  }
  [[nodiscard]] double committed(std::uint32_t cpu) const {
    return committed_[cpu];
  }
  [[nodiscard]] double capacity(std::uint32_t cpu) const {
    return capacity_[cpu];
  }
  [[nodiscard]] double headroom(std::uint32_t cpu) const {
    return capacity_[cpu] - committed_[cpu];
  }
  void set_capacity(std::uint32_t cpu, double cap) { capacity_[cpu] = cap; }

  [[nodiscard]] double total_committed() const;
  [[nodiscard]] std::uint64_t admits() const { return admits_; }
  [[nodiscard]] std::uint64_t releases() const { return releases_; }

 private:
  std::vector<double> committed_;
  std::vector<double> capacity_;
  std::uint64_t admits_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace hrt::global
