// Per-CPU utilization ledger: the global placement subsystem's view of how
// much real-time utilization each local scheduler has committed.
//
// The local schedulers feed the ledger deltas at their three utilization
// mutation points (admission commit, detach/exit, sporadic tail release), so
// it tracks the per-CPU admitted_periodic + sporadic ledgers exactly — the
// kPlacementLedger audit invariant (docs/AUDIT.md) recomputes the
// correspondence after every scheduling pass.  The placement engine and the
// rebalancer read headroom from here instead of polling every scheduler.
//
// Lock-free representation: each per-CPU entry is a Q32.32 fixed-point
// rt::fp::AdmissionWord (cache-line padded), updated by CAS with
// release-publication and read with acquire loads, so PlacementEngine
// observes a coherent snapshot without locking even when admissions run on
// other host threads (sharded engine, batch spawn).  The deltas are fed as
// *raw* fixed-point quanta computed once at the scheduler's mutation point
// (LocalScheduler::ledger_admit / ledger_release), so this ledger's word and
// the scheduler's own fast-path word hold bit-identical values — the audit
// checks them for exact raw equality, and against the scheduler's shadow
// double ledgers within one ulp (2^-32) per operation.
//
// Reservations (two-phase group admission, migration holds) are deliberately
// *not* in the ledger: they are transient and already protect admission on
// the owning CPU; the ledger reflects only committed demand.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "rt/fixed_point.hpp"

namespace hrt::global {

class UtilizationLedger {
 public:
  /// `capacity` is the per-CPU utilization available to RT admission
  /// (utilization_limit minus the sporadic and aperiodic reservations).
  UtilizationLedger(std::uint32_t num_cpus, double capacity);

  /// Raw fixed-point feed: the scheduler converts its double delta once
  /// (demand rounds up) and publishes the same quantum to its own fast-path
  /// word and to this ledger, keeping the two bit-identical.
  void on_admit_raw(std::uint32_t cpu, rt::fp::Raw q);
  void on_release_raw(std::uint32_t cpu, rt::fp::Raw q);

  /// Double-delta convenience used by offline tests and tools; converts
  /// with the demand rounding (up) and forwards to the raw feed.
  void on_admit(std::uint32_t cpu, double util) {
    on_admit_raw(cpu, rt::fp::from_double_ceil(util));
  }
  void on_release(std::uint32_t cpu, double util) {
    on_release_raw(cpu, rt::fp::from_double_ceil(util));
  }

  [[nodiscard]] std::uint32_t num_cpus() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  [[nodiscard]] double committed(std::uint32_t cpu) const {
    return entries_[cpu].committed.value();
  }
  [[nodiscard]] rt::fp::Raw committed_raw(std::uint32_t cpu) const {
    return entries_[cpu].committed.raw();
  }
  /// Operations applied to a CPU's word so far; scales the audit tolerance
  /// (one ulp of double<->fixed divergence allowed per operation).
  [[nodiscard]] std::uint64_t committed_ops(std::uint32_t cpu) const {
    return entries_[cpu].committed.ops();
  }
  [[nodiscard]] double capacity(std::uint32_t cpu) const {
    return rt::fp::to_double(capacity_raw(cpu));
  }
  [[nodiscard]] rt::fp::Raw capacity_raw(std::uint32_t cpu) const {
    return entries_[cpu].capacity.load(std::memory_order_acquire);
  }
  [[nodiscard]] double headroom(std::uint32_t cpu) const {
    const rt::fp::Raw cap = capacity_raw(cpu);
    const rt::fp::Raw com = committed_raw(cpu);
    return cap > com ? rt::fp::to_double(cap - com) : 0.0;
  }
  /// Capacity rounds DOWN (never overstate what a CPU can take); used by
  /// boot sizing and by the resilience controller's degraded publication.
  void set_capacity(std::uint32_t cpu, double cap) {
    entries_[cpu].capacity.store(rt::fp::from_double_floor(cap),
                                 std::memory_order_release);
  }

  [[nodiscard]] double total_committed() const;
  [[nodiscard]] std::uint64_t admits() const {
    return admits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t releases() const {
    return releases_.load(std::memory_order_relaxed);
  }

 private:
  // One cache line per CPU: the word is CAS-hammered from the owning
  // scheduler while the placement engine scans all of them; padding keeps a
  // hot admit loop from invalidating its neighbors' lines.
  struct alignas(64) Entry {
    rt::fp::AdmissionWord committed;
    std::atomic<rt::fp::Raw> capacity{0};
  };

  std::vector<Entry> entries_;
  std::atomic<std::uint64_t> admits_{0};
  std::atomic<std::uint64_t> releases_{0};
};

}  // namespace hrt::global
