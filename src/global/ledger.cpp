#include "global/ledger.hpp"

namespace hrt::global {

UtilizationLedger::UtilizationLedger(std::uint32_t num_cpus, double capacity)
    : entries_(num_cpus) {
  for (std::uint32_t c = 0; c < num_cpus; ++c) set_capacity(c, capacity);
}

void UtilizationLedger::on_admit_raw(std::uint32_t cpu, rt::fp::Raw q) {
  entries_[cpu].committed.add(q);
  admits_.fetch_add(1, std::memory_order_relaxed);
}

void UtilizationLedger::on_release_raw(std::uint32_t cpu, rt::fp::Raw q) {
  // Clamp exactly like the schedulers' own ledgers do (AdmissionWord clamps
  // at zero), so the audit cross-check stays drift-free.
  entries_[cpu].committed.release(q);
  releases_.fetch_add(1, std::memory_order_relaxed);
}

double UtilizationLedger::total_committed() const {
  double total = 0.0;
  for (const Entry& e : entries_) total += e.committed.value();
  return total;
}

}  // namespace hrt::global
