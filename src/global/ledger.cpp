#include "global/ledger.hpp"

namespace hrt::global {

UtilizationLedger::UtilizationLedger(std::uint32_t num_cpus, double capacity)
    : committed_(num_cpus, 0.0), capacity_(num_cpus, capacity) {}

void UtilizationLedger::on_admit(std::uint32_t cpu, double util) {
  committed_[cpu] += util;
  ++admits_;
}

void UtilizationLedger::on_release(std::uint32_t cpu, double util) {
  // Clamp exactly like the schedulers' own ledgers do, so the audit
  // cross-check stays drift-free.
  committed_[cpu] -= util;
  if (committed_[cpu] < 0) committed_[cpu] = 0;
  ++releases_;
}

double UtilizationLedger::total_committed() const {
  double total = 0.0;
  for (double u : committed_) total += u;
  return total;
}

}  // namespace hrt::global
