// The global placement subsystem's front door (docs/GLOBAL.md).
//
// GlobalScheduler bundles the three pieces — utilization ledger, placement
// engine, rebalancer — and exposes what rt::System needs:
//   * place()       — pick a CPU for a new thread (spawn_auto)
//   * auto_admit()  — wrap a behavior with admit/retry/rebalance logic
//   * plan_split()  — semi-partitioned overflow plan for a task too big for
//                     any single CPU (spawn_split)
// It is deliberately *not* a scheduler in the SchedulerBase sense: all
// per-CPU scheduling stays in rt::LocalScheduler, and the global layer only
// decides where threads live.  This mirrors the paper's architecture, where
// hard real-time guarantees are per-CPU and anything cross-CPU (work
// stealing, interrupt steering) merely chooses placements.
#pragma once

#include <cstdint>
#include <memory>

#include "global/ledger.hpp"
#include "global/placement.hpp"
#include "global/rebalancer.hpp"
#include "rt/constraints.hpp"

namespace hrt::nk {
class Behavior;
class Kernel;
}  // namespace hrt::nk

namespace hrt::grp {
class GroupRegistry;
}

namespace hrt::global {

class GlobalScheduler {
 public:
  struct Stats {
    std::uint64_t auto_placements = 0;      // place() calls
    std::uint64_t fallback_placements = 0;  // nothing fit; least-loaded used
    std::uint64_t split_plans = 0;          // successful plan_split calls
    std::uint64_t split_chunks = 0;         // chunks across those plans
    std::uint64_t admit_give_ups = 0;       // auto-admit exhausted retries
    std::uint64_t batch_placements = 0;     // place_batch calls
    std::uint64_t batch_specs = 0;          // specs across those batches
  };

  GlobalScheduler(std::uint32_t num_cpus, double cpu_capacity, Config cfg)
      : cfg_(cfg),
        ledger_(num_cpus, cpu_capacity),
        engine_(ledger_, cfg),
        rebalancer_(ledger_, engine_, cfg) {}

  /// Late wiring; the kernel and registry outlive this object's uses.
  void attach(nk::Kernel* kernel, grp::GroupRegistry* groups) {
    kernel_ = kernel;
    rebalancer_.attach(kernel, groups);
  }

  [[nodiscard]] UtilizationLedger& ledger() { return ledger_; }
  [[nodiscard]] const UtilizationLedger& ledger() const { return ledger_; }
  [[nodiscard]] const PlacementEngine& engine() const { return engine_; }
  /// Mutable engine access for late wiring (the resilience controller
  /// registers its per-CPU storm flags here).
  [[nodiscard]] PlacementEngine& engine_mut() { return engine_; }
  [[nodiscard]] Rebalancer& rebalancer() { return rebalancer_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Choose a CPU for a new thread with constraints `c`.  Always returns a
  /// valid CPU: when nothing fits, the least-committed (interrupt-free
  /// preferred for RT) CPU is used so the admission failure lands where a
  /// rebalance is most likely to help.
  [[nodiscard]] std::uint32_t place(const rt::Constraints& c) {
    ++stats_.auto_placements;
    std::uint32_t cpu = engine_.choose_cpu(c);
    if (cpu == kInvalidCpu) {
      cpu = engine_.fallback_cpu(c.is_realtime());
      ++stats_.fallback_placements;
    }
    return cpu;
  }

  /// One placement pass for a whole batch of constraints (spawn_batch):
  /// snapshot the ledger once, pack worst-fit-decreasing against the
  /// scratch copy.  result[i] is the CPU for specs[i]; always valid.
  [[nodiscard]] std::vector<std::uint32_t> place_batch(
      const std::vector<rt::Constraints>& specs) {
    ++stats_.batch_placements;
    stats_.batch_specs += specs.size();
    return engine_.place_batch(specs);
  }

  /// Wrap `inner` with the auto-admission protocol: request `c`, and on
  /// rejection ask the rebalancer to make room (possibly re-homing this
  /// still-aperiodic thread to the CPU where room was made), sleep two
  /// periods, retry — up to config().admit_retries times, then exit.  Once
  /// admitted, `inner` runs unmodified except that its exit also triggers
  /// an exit-rebalance pass.
  [[nodiscard]] std::unique_ptr<nk::Behavior> auto_admit(
      const rt::Constraints& c, std::unique_ptr<nk::Behavior> inner);

  /// Semi-partitioned overflow plan for a periodic constraint too large for
  /// any single CPU's current headroom.  Headroom is read from the live
  /// ledger; under topology steering the interrupt-laden partition is
  /// excluded first and only used if the steered plan fails.
  [[nodiscard]] SplitPlan plan_split(const rt::Constraints& c,
                                     sim::Nanos min_slice);

  void note_give_up() { ++stats_.admit_give_ups; }

 private:
  Config cfg_;
  UtilizationLedger ledger_;
  PlacementEngine engine_;
  Rebalancer rebalancer_;
  nk::Kernel* kernel_ = nullptr;  // set by attach(); null in offline tests
  Stats stats_;
};

}  // namespace hrt::global
