#include "global/placement.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "global/ledger.hpp"

namespace hrt::global {

namespace {

// Mirrors the admission test's tolerance so "fits by ledger" and "admitted
// by the scheduler" agree on the boundary.
constexpr double kEps = 1e-9;

}  // namespace

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFirstFit: return "first-fit";
    case Policy::kBestFit: return "best-fit";
    case Policy::kWorstFit: return "worst-fit";
    case Policy::kTopology: return "topology";
  }
  return "?";
}

bool PlacementEngine::fits(std::uint32_t cpu, double util) const {
  return ledger_.headroom(cpu) + kEps >= util;
}

std::uint32_t PlacementEngine::choose_cpu(double util, bool realtime) const {
  const std::uint32_t n = ledger_.num_cpus();
  if (n == 0) return kInvalidCpu;

  // Storm-hit CPUs (resilience controller) are considered only when no
  // quiet CPU in the candidate set fits.
  auto pick = [&](auto&& eligible, auto&& better) {
    auto scan = [&](bool avoid_storm) {
      std::uint32_t best = kInvalidCpu;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (avoid_storm && storm_hit(c)) continue;
        if (!eligible(c) || !fits(c, util)) continue;
        if (best == kInvalidCpu || better(c, best)) best = c;
      }
      return best;
    };
    const std::uint32_t quiet = scan(true);
    return quiet != kInvalidCpu ? quiet : scan(false);
  };
  auto any = [](std::uint32_t) { return true; };
  auto lowest = [](std::uint32_t, std::uint32_t) { return false; };
  auto least_loaded = [&](std::uint32_t a, std::uint32_t b) {
    return ledger_.committed(a) < ledger_.committed(b);
  };
  auto most_loaded = [&](std::uint32_t a, std::uint32_t b) {
    return ledger_.committed(a) > ledger_.committed(b);
  };

  switch (cfg_.policy) {
    case Policy::kFirstFit:
      return pick(any, lowest);
    case Policy::kBestFit:
      return pick(any, most_loaded);
    case Policy::kWorstFit:
      return pick(any, least_loaded);
    case Policy::kTopology: {
      if (!cfg_.steer_rt_interrupt_free ||
          cfg_.interrupt_laden_cpus >= n) {
        return pick(any, least_loaded);
      }
      const std::uint32_t laden = cfg_.interrupt_laden_cpus;
      if (realtime) {
        // RT work belongs in the interrupt-free partition (section 3.5);
        // spill into the laden partition only when it must.
        const std::uint32_t c =
            pick([&](std::uint32_t x) { return x >= laden; }, least_loaded);
        if (c != kInvalidCpu) return c;
        return pick([&](std::uint32_t x) { return x < laden; }, least_loaded);
      }
      // Non-RT work goes the other way, keeping the quiet partition quiet.
      const std::uint32_t c =
          pick([&](std::uint32_t x) { return x < laden; }, least_loaded);
      if (c != kInvalidCpu) return c;
      return pick([&](std::uint32_t x) { return x >= laden; }, least_loaded);
    }
  }
  return kInvalidCpu;
}

std::uint32_t PlacementEngine::fallback_cpu(bool realtime) const {
  const std::uint32_t n = ledger_.num_cpus();
  if (n == 0) return kInvalidCpu;
  const bool steer = realtime && cfg_.policy == Policy::kTopology &&
                     cfg_.steer_rt_interrupt_free &&
                     cfg_.interrupt_laden_cpus < n;
  std::uint32_t best = kInvalidCpu;
  std::uint32_t best_quiet = kInvalidCpu;
  for (std::uint32_t c = steer ? cfg_.interrupt_laden_cpus : 0; c < n; ++c) {
    if (best == kInvalidCpu ||
        ledger_.committed(c) < ledger_.committed(best)) {
      best = c;
    }
    if (!storm_hit(c) &&
        (best_quiet == kInvalidCpu ||
         ledger_.committed(c) < ledger_.committed(best_quiet))) {
      best_quiet = c;
    }
  }
  return best_quiet != kInvalidCpu ? best_quiet : best;
}

std::vector<std::uint32_t> PlacementEngine::rt_cpu_order(double util) const {
  const std::uint32_t n = ledger_.num_cpus();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const bool steer = cfg_.policy == Policy::kTopology &&
                     cfg_.steer_rt_interrupt_free &&
                     cfg_.interrupt_laden_cpus < n;
  const std::uint32_t laden = steer ? cfg_.interrupt_laden_cpus : 0;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     const bool sa = storm_hit(a), sb = storm_hit(b);
                     if (sa != sb) return !sa;  // quiet CPUs first
                     const bool fa = a >= laden, fb = b >= laden;
                     if (fa != fb) return fa;  // interrupt-free first
                     return ledger_.headroom(a) > ledger_.headroom(b);
                   });
  (void)util;
  return order;
}

std::vector<std::uint32_t> PlacementEngine::place_batch(
    const std::vector<rt::Constraints>& specs) const {
  const std::uint32_t n = ledger_.num_cpus();
  std::vector<std::uint32_t> out(specs.size(), kInvalidCpu);
  if (n == 0 || specs.empty()) return out;

  // ONE ledger snapshot for the whole batch; every placement debits the
  // scratch copy so later specs see earlier ones.
  std::vector<double> head(n);
  std::vector<double> committed(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    head[c] = ledger_.headroom(c);
    committed[c] = ledger_.committed(c);
  }

  // Worst-fit DECREASING: placing the big specs first is what makes the
  // single-pass packing competitive with per-spec placement against a live
  // ledger (classic bin-packing; also how pack_decreasing orders work).
  std::vector<std::size_t> order(specs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return specs[a].utilization() > specs[b].utilization();
                   });

  const bool steer = cfg_.policy == Policy::kTopology &&
                     cfg_.steer_rt_interrupt_free &&
                     cfg_.interrupt_laden_cpus < n;
  for (std::size_t i : order) {
    const double util = specs[i].utilization();
    const bool realtime = specs[i].is_realtime();
    auto scan = [&](bool want_free, bool avoid_storm, bool need_fit) {
      std::uint32_t best = kInvalidCpu;
      for (std::uint32_t c = 0; c < n; ++c) {
        if (avoid_storm && storm_hit(c)) continue;
        if (steer && ((c >= cfg_.interrupt_laden_cpus) != want_free)) continue;
        if (need_fit && head[c] + kEps < util) continue;
        if (best == kInvalidCpu || committed[c] < committed[best]) best = c;
      }
      return best;
    };
    std::uint32_t cpu = kInvalidCpu;
    // Same preference order as choose_cpu/fallback_cpu: quiet before
    // stormy, the right partition before the wrong one, fitting before
    // fallback-least-committed.
    const bool free_first = !steer || realtime;
    for (const bool need_fit : {true, false}) {
      cpu = scan(free_first, true, need_fit);
      if (cpu == kInvalidCpu) cpu = scan(!free_first, true, need_fit);
      if (cpu == kInvalidCpu) cpu = scan(free_first, false, need_fit);
      if (cpu == kInvalidCpu) cpu = scan(!free_first, false, need_fit);
      if (cpu != kInvalidCpu) break;
    }
    out[i] = cpu;
    if (cpu != kInvalidCpu) {
      head[cpu] -= util;
      if (head[cpu] < 0.0) head[cpu] = 0.0;
      committed[cpu] += util;
    }
  }
  return out;
}

std::vector<std::uint32_t> PlacementEngine::choose_group(
    std::uint32_t n, const rt::Constraints& c) const {
  const double util = c.utilization();
  std::vector<std::uint32_t> out;
  for (std::uint32_t cpu : rt_cpu_order(util)) {
    if (!fits(cpu, util)) continue;
    out.push_back(cpu);
    if (out.size() == n) return out;
  }
  return {};  // not enough distinct CPUs with headroom
}

SplitPlan split_task(const rt::PeriodicTask& task,
                     const std::vector<double>& headroom,
                     sim::Nanos min_slice, std::uint32_t max_chunks) {
  SplitPlan plan;
  if (task.period <= 0 || task.slice <= 0 || min_slice <= 0 ||
      max_chunks == 0) {
    return plan;
  }
  std::vector<std::uint32_t> order(headroom.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return headroom[a] > headroom[b];
                   });

  sim::Nanos remaining = task.slice;
  const double period = static_cast<double>(task.period);
  for (std::uint32_t cpu : order) {
    if (remaining == 0 || plan.chunks.size() == max_chunks) break;
    // Floor to whole nanoseconds so chunk/period <= headroom exactly.
    sim::Nanos chunk = static_cast<sim::Nanos>(
        std::floor(std::max(0.0, headroom[cpu]) * period));
    chunk = std::min(chunk, remaining);
    // Never strand a tail smaller than the minimum admissible slice.
    if (chunk < remaining && remaining - chunk < min_slice) {
      chunk = remaining - min_slice;
    }
    if (chunk < min_slice) continue;  // this CPU can't hold a real chunk
    SplitChunk sc;
    sc.cpu = cpu;
    const auto i = static_cast<sim::Nanos>(plan.chunks.size());
    sc.constraints =
        rt::Constraints::periodic(task.phase + i * task.period, task.period,
                                  chunk);
    plan.chunks.push_back(sc);
    remaining -= chunk;
  }
  plan.ok = remaining == 0 && !plan.chunks.empty();
  if (!plan.ok) plan.chunks.clear();
  return plan;
}

namespace {

double task_util(const rt::PeriodicTask& t) {
  return t.period > 0
             ? static_cast<double>(t.slice) / static_cast<double>(t.period)
             : 0.0;
}

/// Indices of `tasks` in decreasing-utilization order (stable).
std::vector<std::size_t> decreasing_order(
    const std::vector<rt::PeriodicTask>& tasks) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return task_util(tasks[a]) > task_util(tasks[b]);
                   });
  return order;
}

}  // namespace

PackResult pack_decreasing(const std::vector<rt::PeriodicTask>& tasks,
                           std::uint32_t num_cpus, double capacity,
                           Policy policy,
                           std::uint32_t interrupt_laden_cpus) {
  PackResult r;
  r.assignment.assign(tasks.size(), kInvalidCpu);
  r.per_cpu.assign(num_cpus, 0.0);
  std::vector<std::vector<rt::PeriodicTask>> sets(num_cpus);

  auto candidates = [&]() {
    std::vector<std::uint32_t> order(num_cpus);
    std::iota(order.begin(), order.end(), 0u);
    switch (policy) {
      case Policy::kFirstFit:
        break;  // index order
      case Policy::kBestFit:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return r.per_cpu[a] > r.per_cpu[b];
                         });
        break;
      case Policy::kWorstFit:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           return r.per_cpu[a] < r.per_cpu[b];
                         });
        break;
      case Policy::kTopology:
        std::stable_sort(order.begin(), order.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                           const bool fa = a >= interrupt_laden_cpus;
                           const bool fb = b >= interrupt_laden_cpus;
                           if (fa != fb) return fa;  // interrupt-free first
                           return r.per_cpu[a] < r.per_cpu[b];
                         });
        break;
    }
    return order;
  };

  for (std::size_t i : decreasing_order(tasks)) {
    for (std::uint32_t cpu : candidates()) {
      sets[cpu].push_back(tasks[i]);
      if (rt::edf_admissible(sets[cpu], capacity)) {
        r.assignment[i] = cpu;
        r.per_cpu[cpu] += task_util(tasks[i]);
        r.admitted_util += task_util(tasks[i]);
        ++r.placed;
        break;
      }
      sets[cpu].pop_back();
    }
  }
  return r;
}

SemiPartitionedResult pack_semi_partitioned(
    const std::vector<rt::PeriodicTask>& tasks, std::uint32_t num_cpus,
    double capacity, sim::Nanos min_slice, std::uint32_t max_chunks) {
  SemiPartitionedResult r;
  for (Policy p : {Policy::kFirstFit, Policy::kBestFit, Policy::kWorstFit}) {
    PackResult pr = pack_decreasing(tasks, num_cpus, capacity, p);
    if (pr.admitted_util > r.base.admitted_util ||
        r.base.assignment.empty()) {
      r.base = std::move(pr);
      r.base_policy = p;
    }
  }
  r.per_cpu = r.base.per_cpu;
  r.admitted_util = r.base.admitted_util;
  r.placed = r.base.placed;

  // Rebuild the per-CPU sets the base packing committed, so split chunks
  // are validated by the same admission test that will run at spawn time.
  std::vector<std::vector<rt::PeriodicTask>> sets(num_cpus);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (r.base.assignment[i] != kInvalidCpu) {
      sets[r.base.assignment[i]].push_back(tasks[i]);
    }
  }

  for (std::size_t i : decreasing_order(tasks)) {
    if (r.base.assignment[i] != kInvalidCpu) continue;
    std::vector<double> headroom(num_cpus);
    for (std::uint32_t c = 0; c < num_cpus; ++c) {
      headroom[c] = capacity - r.per_cpu[c];
    }
    SplitPlan plan = split_task(tasks[i], headroom, min_slice, max_chunks);
    if (!plan.ok) continue;
    bool admitted = true;
    std::size_t pushed = 0;
    for (const SplitChunk& sc : plan.chunks) {
      sets[sc.cpu].push_back(rt::PeriodicTask{sc.constraints.period,
                                              sc.constraints.slice,
                                              sc.constraints.phase});
      ++pushed;
      if (!rt::edf_admissible(sets[sc.cpu], capacity)) {
        admitted = false;
        break;
      }
    }
    if (!admitted) {
      for (std::size_t j = 0; j < pushed; ++j) {
        sets[plan.chunks[j].cpu].pop_back();
      }
      continue;
    }
    for (const SplitChunk& sc : plan.chunks) {
      r.per_cpu[sc.cpu] += sc.constraints.utilization();
    }
    r.admitted_util += task_util(tasks[i]);
    ++r.placed;
    r.splits.push_back({i, std::move(plan)});
  }
  return r;
}

}  // namespace hrt::global
