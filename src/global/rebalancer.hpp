// The rebalancer (docs/GLOBAL.md): reactive migration proposals.
//
// It never preempts anything.  Every move it proposes is executed by the
// existing safe machinery — rt::LocalScheduler::request_migration for
// admitted periodic threads (job-boundary hand-off holding a reservation on
// the target) and nk::Kernel::migrate_aperiodic for parked non-RT threads —
// so the rebalancer can only fail to improve the packing, never break it.
//
// Trigger points:
//   * on_thread_exit — an exiting RT thread frees utilization, which may
//     leave the system lopsided; a deferred lightweight task re-levels it.
//   * make_room — an admission just failed on every attractive CPU; try to
//     migrate a small committed thread off one of them so a retry fits.
// Both defer the actual work through Kernel::submit_task so it runs in a
// scheduler pass *after* the triggering event has fully settled (an exiting
// thread still holds its utilization while its exit handler runs).
#pragma once

#include <cstdint>

#include "global/placement.hpp"
#include "rt/constraints.hpp"

namespace hrt::nk {
class Kernel;
class Thread;
}  // namespace hrt::nk

namespace hrt::grp {
class GroupRegistry;
}

namespace hrt::global {

class UtilizationLedger;

class Rebalancer {
 public:
  struct Stats {
    std::uint64_t exit_rebalances = 0;     // deferred passes scheduled
    std::uint64_t migrations_proposed = 0; // request_migration accepted
    std::uint64_t make_room_calls = 0;
    std::uint64_t make_room_migrations = 0;
    std::uint64_t relocations = 0;         // aperiodic re-homes completed
  };

  Rebalancer(const UtilizationLedger& ledger, const PlacementEngine& engine,
             Config cfg)
      : ledger_(ledger), engine_(engine), cfg_(cfg) {}

  /// Late wiring: the kernel exists only after System assembles it.
  void attach(nk::Kernel* kernel, grp::GroupRegistry* groups) {
    kernel_ = kernel;
    groups_ = groups;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// One re-leveling step: if the most- and least-committed CPUs differ by
  /// at least the configured threshold, propose migrating the largest
  /// movable periodic thread that fits in the gap.  Returns true if a
  /// migration was accepted.
  bool rebalance_once();

  /// Schedule a deferred rebalance pass on `cpu` (lightweight sized task),
  /// to run after the current event settles.
  void schedule_rebalance(std::uint32_t cpu);

  /// An RT thread on `cpu` is exiting: re-level once its utilization is
  /// actually released.
  void on_thread_exit(std::uint32_t cpu);

  /// Admission of `c` failed everywhere it was tried.  Walk the attractive
  /// CPUs; on the first where migrating one committed thread away would
  /// create enough headroom, propose that migration and return the CPU (the
  /// caller should retry admission there after the hand-off completes).
  /// `for_thread` is excluded as a victim.  kInvalidCpu when no single
  /// migration helps.
  std::uint32_t make_room(const rt::Constraints& c,
                          const nk::Thread* for_thread);

  /// Re-home a (still aperiodic) thread once it parks: deferred task that
  /// calls Kernel::migrate_aperiodic, guarded against thread-pool reuse by
  /// re-checking the thread id.
  void relocate_when_parked(nk::Thread* t, std::uint32_t to);

  /// A thread is movable if it's live, not idle, not mid-migration, and not
  /// a group member (collectives assume stable membership CPUs).
  [[nodiscard]] bool movable(const nk::Thread* t) const;

 private:
  const UtilizationLedger& ledger_;
  const PlacementEngine& engine_;
  Config cfg_;
  nk::Kernel* kernel_ = nullptr;
  grp::GroupRegistry* groups_ = nullptr;
  Stats stats_;
};

}  // namespace hrt::global
