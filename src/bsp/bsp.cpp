#include "bsp/bsp.hpp"

#include <algorithm>
#include <stdexcept>

namespace hrt::bsp {

namespace {

/// Shared run state: per-thread progress, skew tracking, completion.
struct BspRun {
  BspConfig cfg;
  BspWork work;
  std::vector<std::uint64_t> iteration;  // per-rank current iteration
  std::vector<sim::Nanos> first_start;   // true time of first dispatch
  std::vector<sim::Nanos> finish;        // true time of completion
  std::uint32_t done_count = 0;
  std::uint64_t max_write_skew = 0;
  std::unique_ptr<grp::ReusableBarrier> barrier;

  BspRun(const BspConfig& c, BspWork w)
      : cfg(c),
        work(w),
        iteration(c.P, 0),
        first_start(c.P, -1),
        finish(c.P, -1) {}
};

/// One BSP worker (rank r of P).  Per iteration: local compute, the
/// remote-write batch toward rank (r+1) % P, then the optional barrier.
class BspWorker final : public nk::Behavior {
 public:
  BspWorker(BspRun& run, std::uint32_t rank) : run_(run), rank_(rank) {}

  nk::Action next(nk::ThreadCtx& ctx) override {
    if (run_.first_start[rank_] < 0) {
      run_.first_start[rank_] = ctx.kernel.machine().engine().now();
    }
    for (;;) {
      switch (step_) {
        case Step::kCompute: {
          if (iter_ >= run_.cfg.N) {
            step_ = Step::kFinish;
            continue;
          }
          step_ = Step::kWrite;
          return nk::Action::compute(run_.work.compute_ns);
        }
        case Step::kWrite: {
          step_ = run_.cfg.barrier ? Step::kBarrierArrive : Step::kEndIter;
          if (run_.cfg.NW == 0) continue;
          return nk::Action::compute(
              run_.work.write_ns, [this](nk::ThreadCtx&) {
                // Ring-pattern write: note the target's iteration to
                // measure BSP skew.  With a barrier (or a correct lockstep
                // schedule) the writer is at most one iteration away from
                // its target.
                const std::uint32_t target = (rank_ + 1) % run_.cfg.P;
                const std::uint64_t mine = iter_;
                const std::uint64_t theirs = run_.iteration[target];
                const std::uint64_t skew =
                    mine > theirs ? mine - theirs : theirs - mine;
                run_.max_write_skew = std::max(run_.max_write_skew, skew);
              });
        }
        case Step::kBarrierArrive:
          step_ = Step::kBarrierWait;
          return run_.barrier->arrive_action(&ticket_);
        case Step::kBarrierWait:
          step_ = Step::kEndIter;
          return run_.barrier->wait_action(&ticket_);
        case Step::kEndIter:
          ++iter_;
          run_.iteration[rank_] = iter_;
          step_ = Step::kCompute;
          continue;
        case Step::kFinish:
          step_ = Step::kDone;
          return nk::Action::compute(0, [this](nk::ThreadCtx& c) {
            run_.finish[rank_] = c.kernel.machine().engine().now();
            ++run_.done_count;
          });
        case Step::kDone:
          return nk::Action::exit();
      }
    }
  }

  [[nodiscard]] std::string describe() const override { return "bsp"; }

 private:
  enum class Step : std::uint8_t {
    kCompute,
    kWrite,
    kBarrierArrive,
    kBarrierWait,
    kEndIter,
    kFinish,
    kDone,
  };

  BspRun& run_;
  std::uint32_t rank_;
  std::uint64_t iter_ = 0;
  Step step_ = Step::kCompute;
  grp::ReusableBarrier::Ticket ticket_;
};

}  // namespace

BspWork derive_work(const hw::MachineSpec& spec, const BspConfig& cfg) {
  BspWork w{};
  const sim::Cycles compute_cycles = static_cast<sim::Cycles>(cfg.NE) *
                                     static_cast<sim::Cycles>(cfg.NC) *
                                     cfg.op_cycles;
  w.compute_ns = spec.freq.cycles_to_ns_ceil(compute_cycles);
  w.write_ns = spec.freq.cycles_to_ns_ceil(
      static_cast<sim::Cycles>(cfg.NW) * spec.cost.cacheline_transfer);
  return w;
}

BspResult run_bsp(System& sys, const BspConfig& cfg) {
  if (!sys.kernel().booted()) {
    throw std::logic_error("run_bsp: system not booted");
  }
  if (cfg.first_cpu + cfg.P > sys.machine().num_cpus()) {
    throw std::invalid_argument("run_bsp: not enough CPUs");
  }

  auto run =
      std::make_unique<BspRun>(cfg, derive_work(sys.machine().spec(), cfg));
  run->barrier = std::make_unique<grp::ReusableBarrier>(sys.kernel(), cfg.P);

  grp::ThreadGroup* group = nullptr;
  std::vector<const grp::GroupChangeConstraints*> protocols;
  if (cfg.mode == Mode::kGroupRt) {
    group = sys.groups().create("bsp-" + std::to_string(sys.engine().now()),
                                cfg.P);
    if (group == nullptr) {
      throw std::logic_error("run_bsp: group name collision");
    }
  }

  for (std::uint32_t r = 0; r < cfg.P; ++r) {
    auto worker = std::make_unique<BspWorker>(*run, r);
    std::unique_ptr<nk::Behavior> behavior;
    if (cfg.mode == Mode::kGroupRt) {
      auto wrapped = std::make_unique<grp::GroupAdmitThenBehavior>(
          *group, rt::Constraints::periodic(cfg.phase, cfg.period, cfg.slice),
          std::move(worker));
      protocols.push_back(&wrapped->protocol());
      behavior = std::move(wrapped);
    } else {
      behavior = std::move(worker);
    }
    sys.spawn("bsp" + std::to_string(r), std::move(behavior),
              cfg.first_cpu + r);
  }

  // Drive the simulation until every worker finished or the cap is hit.
  const sim::Nanos t0 = sys.engine().now();
  const sim::Nanos cap = t0 + cfg.timeout;
  while (run->done_count < cfg.P && sys.engine().now() < cap) {
    sys.engine().run_until(std::min(cap, sys.engine().now() + sim::millis(5)));
  }

  BspResult res;
  res.all_done = run->done_count == cfg.P;
  for (const auto* p : protocols) {
    if (!p->done() || !p->succeeded()) res.admission_ok = false;
  }
  sim::Nanos start = -1;
  sim::Nanos finish = -1;
  for (std::uint32_t r = 0; r < cfg.P; ++r) {
    if (run->first_start[r] >= 0) {
      start = start < 0 ? run->first_start[r]
                        : std::min(start, run->first_start[r]);
    }
    finish = std::max(finish, run->finish[r]);
  }
  res.start = start < 0 ? t0 : start;
  res.finish = finish < 0 ? sys.engine().now() : finish;
  res.makespan = res.finish - res.start;
  res.max_write_skew = run->max_write_skew;
  res.barrier_rounds = run->barrier->rounds_completed();
  if (res.makespan > 0) {
    res.avg_iterations_per_second = static_cast<double>(cfg.N) *
                                    sim::kNanosPerSecond /
                                    static_cast<double>(res.makespan);
  }
  return res;
}

}  // namespace hrt::bsp
