// The fine-grain BSP microbenchmark of section 6.1.
//
// "The benchmark emulates iterative computation on a discrete domain,
// modeled as a vector of doubles.  [It] is parameterized by P, the number of
// CPUs used (each CPU runs a single thread), NE, the number of elements of
// the domain local to a given CPU, NC, the number of computations done on
// each element per iteration, NW, the number of remote writes to other
// CPUs' elements per iteration, and N, the number of iterations.  Remote
// writes are done according to a ring pattern: CPU i writes to some of the
// elements owned by CPU (i+1) % P."
//
// Each iteration: compute NE*NC element operations, perform NW remote
// writes, then the optional barrier.  Skipping the barrier is only correct
// when something else keeps the threads in lockstep — which is exactly what
// the hard real-time group schedule provides (section 6.4).  The harness
// tracks the iteration skew each remote write observes at its target, so
// barrier-free runs are checked, not assumed, to stay coherent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "group/group_admission.hpp"
#include "group/reusable_barrier.hpp"
#include "rt/system.hpp"

namespace hrt::bsp {

enum class Mode : std::uint8_t {
  kAperiodic,  // non-real-time scheduling (the paper's baseline)
  kGroupRt,    // hard real-time group with a common periodic constraint
};

struct BspConfig {
  std::uint32_t P = 8;       // threads (one per CPU, starting at first_cpu)
  std::uint64_t NE = 1024;   // elements per CPU
  std::uint64_t NC = 8;      // computations per element per iteration
  std::uint64_t NW = 8;      // remote writes per iteration (ring pattern)
  std::uint64_t N = 100;     // iterations
  bool barrier = true;
  sim::Cycles op_cycles = 6;  // cost of one element computation

  Mode mode = Mode::kAperiodic;
  sim::Nanos period = sim::micros(1000);  // tau   (kGroupRt)
  sim::Nanos slice = sim::micros(900);    // sigma (kGroupRt)
  sim::Nanos phase = sim::millis(2);      // phi: must exceed admission time

  std::uint32_t first_cpu = 1;  // keep CPU 0 for the interrupt-laden side
  sim::Nanos timeout = sim::seconds(30);  // simulated-time cap
};

struct BspResult {
  bool all_done = false;
  bool admission_ok = true;
  sim::Nanos start = 0;      // earliest first-iteration start (true time)
  sim::Nanos finish = 0;     // latest thread finish (true time)
  sim::Nanos makespan = 0;   // finish - start
  std::uint64_t max_write_skew = 0;  // max |writer iter - target iter|
  std::uint64_t barrier_rounds = 0;
  double avg_iterations_per_second = 0.0;
};

/// Per-iteration work derived from a config on a given machine.
struct BspWork {
  sim::Nanos compute_ns;
  sim::Nanos write_ns;
  [[nodiscard]] sim::Nanos per_iteration() const {
    return compute_ns + write_ns;
  }
};
[[nodiscard]] BspWork derive_work(const hw::MachineSpec& spec,
                                  const BspConfig& cfg);

/// Build the threads, run the benchmark on `sys` (which must be booted),
/// and collect results.  Uses CPUs [first_cpu, first_cpu + P).
[[nodiscard]] BspResult run_bsp(System& sys, const BspConfig& cfg);

}  // namespace hrt::bsp
