// Synthetic I/O device: an interrupt source with a configurable arrival
// process.  Stands in for the NIC/disk/console devices whose Nautilus
// drivers have "interrupt handler logic with deterministic path length"
// (section 2); the handler cost itself is charged by the kernel when the
// interrupt is taken.
#pragma once

#include <cstdint>

#include "hw/ioapic.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hrt::hw {

class Device {
 public:
  enum class Arrival : std::uint8_t { kPeriodic, kPoisson };

  Device(sim::Engine& engine, IoApic& ioapic, Vector vector,
         Arrival arrival, sim::Nanos mean_interval, sim::Rng rng)
      : engine_(engine),
        ioapic_(ioapic),
        vector_(vector),
        arrival_(arrival),
        mean_interval_(mean_interval),
        rng_(rng) {}

  void start() {
    if (!running_) {
      running_ = true;
      schedule_next();
    }
  }
  void stop() { running_ = false; }

  [[nodiscard]] Vector vector() const { return vector_; }
  [[nodiscard]] std::uint64_t interrupts_raised() const { return raised_; }

 private:
  void schedule_next() {
    sim::Nanos gap = mean_interval_;
    if (arrival_ == Arrival::kPoisson) {
      gap = static_cast<sim::Nanos>(
          rng_.exponential(static_cast<double>(mean_interval_)));
    }
    if (gap < 1) gap = 1;
    engine_.schedule_after(
        gap,
        [this] {
          if (!running_) return;
          ++raised_;
          ioapic_.assert_irq(vector_);
          schedule_next();
        },
        sim::EventBand::kHardware);
  }

  sim::Engine& engine_;
  IoApic& ioapic_;
  Vector vector_;
  Arrival arrival_;
  sim::Nanos mean_interval_;
  sim::Rng rng_;
  bool running_ = false;
  std::uint64_t raised_ = 0;
};

}  // namespace hrt::hw
