// I/O APIC: routes external (device) interrupts to CPUs.
//
// "An external interrupt, from an I/O device, for example, can be steered to
// any CPU in the system" (section 3.5).  The kernel programs the routing
// table to implement the interrupt-laden / interrupt-free partition.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "hw/interrupts.hpp"

namespace hrt::hw {

class IoApic {
 public:
  /// `raise(cpu, vector)` delivers to the machine's CPU array.
  explicit IoApic(std::function<void(std::uint32_t, Vector)> raise)
      : raise_(std::move(raise)) {
    routes_.fill(0);
  }

  /// Steer `vector` to `cpu`.
  void route(Vector vector, std::uint32_t cpu) { routes_[vector] = cpu; }

  [[nodiscard]] std::uint32_t destination(Vector vector) const {
    return routes_[vector];
  }

  /// A device asserts its interrupt line.
  void assert_irq(Vector vector) { raise_(routes_[vector], vector); }

 private:
  std::function<void(std::uint32_t, Vector)> raise_;
  std::array<std::uint32_t, 256> routes_{};
};

}  // namespace hrt::hw
