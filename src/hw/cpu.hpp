// One hardware thread ("CPU" in the paper's terminology, section 3).
//
// The Cpu models the interrupt acceptance rules the scheduler relies on:
//   * an interrupt-enable flag (cleared for the duration of a handler),
//   * the APIC task priority register (TPR) used for interrupt steering
//     away from hard real-time threads (section 3.5),
//   * the SMI freeze state, during which nothing is delivered and no
//     software runs, but timers and the TSC keep advancing (section 3.6).
//
// Vectors that cannot be delivered immediately are latched pending and
// delivered, highest priority class first, as soon as the blocking condition
// clears.  Actual handler timing/behavior belongs to the kernel layer, which
// installs the deliver hook.
#pragma once

#include <bitset>
#include <cstdint>
#include <functional>
#include <memory>

#include "hw/apic.hpp"
#include "hw/interrupts.hpp"
#include "hw/machine_spec.hpp"
#include "hw/tsc.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace hrt::hw {

class Cpu {
 public:
  Cpu(std::uint32_t id, const MachineSpec& spec, sim::Engine& engine,
      sim::Nanos tsc_offset_ns, sim::Rng rng)
      : id_(id),
        engine_(engine),
        rng_(rng),
        tsc_(engine, spec.freq, tsc_offset_ns),
        apic_(std::make_unique<Apic>(engine, spec.timer, spec.freq,
                                     [this](Vector v) { raise(v); })) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] Tsc& tsc() { return tsc_; }
  [[nodiscard]] const Tsc& tsc() const { return tsc_; }
  [[nodiscard]] Apic& apic() { return *apic_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Kernel installs this; invoked exactly when a vector is accepted.
  /// The hook conventionally clears the interrupt flag first thing
  /// (handler entry), preventing nested delivery.
  void set_deliver_hook(std::function<void(Vector)> hook) {
    deliver_ = std::move(hook);
  }

  /// Assert an interrupt at this CPU.  Delivered immediately if acceptable,
  /// otherwise latched pending.
  void raise(Vector v) {
    pending_.set(v);
    try_deliver();
  }

  void set_interrupts_enabled(bool on) {
    interrupts_enabled_ = on;
    if (on) try_deliver();
  }
  [[nodiscard]] bool interrupts_enabled() const { return interrupts_enabled_; }

  void set_tpr(std::uint8_t tpr) {
    tpr_ = tpr;
    try_deliver();
  }
  [[nodiscard]] std::uint8_t tpr() const { return tpr_; }

  void freeze() { frozen_ = true; }
  void unfreeze() {
    frozen_ = false;
    try_deliver();
  }
  [[nodiscard]] bool frozen() const { return frozen_; }

  [[nodiscard]] bool has_pending() const { return pending_.any(); }
  [[nodiscard]] bool is_pending(Vector v) const { return pending_.test(v); }

 private:
  void try_deliver() {
    // Deliver highest-priority acceptable vectors until blocked.  The hook
    // normally disables interrupts on entry, so at most one delivery happens
    // per call in practice.
    while (!frozen_ && interrupts_enabled_ && pending_.any()) {
      int found = -1;
      for (int v = 255; v >= 0; --v) {
        if (pending_.test(static_cast<std::size_t>(v)) &&
            priority_class(static_cast<Vector>(v)) > tpr_) {
          found = v;
          break;
        }
      }
      if (found < 0) return;
      pending_.reset(static_cast<std::size_t>(found));
      if (deliver_) {
        deliver_(static_cast<Vector>(found));
      }
    }
  }

  std::uint32_t id_;
  sim::Engine& engine_;
  sim::Rng rng_;
  Tsc tsc_;
  std::unique_ptr<Apic> apic_;
  std::function<void(Vector)> deliver_;
  std::bitset<256> pending_;
  bool interrupts_enabled_ = true;
  bool frozen_ = false;
  std::uint8_t tpr_ = kTprOpen;
};

}  // namespace hrt::hw
