// Per-CPU time stamp counter.
//
// The TSC is "constant rate" (a requirement the paper states in section 3.3):
// it never stops, including across SMIs, which is exactly why SMIs appear to
// software as missing time.  Each CPU's counter carries a boot-time offset
// relative to true time; the timesync module estimates and (on machines that
// allow it) writes the counter to cancel that offset.
#pragma once

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace hrt::hw {

class Tsc {
 public:
  Tsc(sim::Engine& engine, sim::Frequency freq, sim::Nanos offset_ns)
      : engine_(engine), freq_(freq), offset_ns_(offset_ns) {}

  /// RDTSC: the counter value this CPU observes right now.
  [[nodiscard]] sim::Cycles read() const {
    return freq_.ns_to_cycles(engine_.now() + offset_ns_);
  }

  /// This CPU's wall-clock estimate in nanoseconds (cycle counter converted
  /// at the calibrated frequency).  After calibration this differs from true
  /// time only by the residual offset error.
  [[nodiscard]] sim::Nanos wall_ns() const { return engine_.now() + offset_ns_; }

  /// WRMSR to the TSC: set the counter to `value` as of now.
  void write(sim::Cycles value) {
    offset_ns_ = freq_.cycles_to_ns(value) - engine_.now();
  }

  /// Shift the counter by a signed cycle delta (the calibration write-back).
  void adjust_cycles(sim::Cycles delta) {
    offset_ns_ += freq_.cycles_to_ns(delta);
  }

  /// Offset of this counter's time domain vs. true simulation time.  This is
  /// ground truth the software under test must *not* read; it exists for
  /// test assertions and for generating Figure 3.
  [[nodiscard]] sim::Nanos true_offset_ns() const { return offset_ns_; }

  [[nodiscard]] sim::Frequency freq() const { return freq_; }

 private:
  sim::Engine& engine_;
  sim::Frequency freq_;
  sim::Nanos offset_ns_;
};

}  // namespace hrt::hw
