// Parallel-port GPIO interface (section 5.2).
//
// The paper adds a parallel port to the machine; a single outb changes all
// 8 output pins, which an oscilloscope monitors.  Here an outb records pin
// transitions into the machine trace; sim::ScopeAnalyzer recovers the scope
// view (pulse widths, duty cycle, fuzz).
#pragma once

#include <cstdint>

#include "sim/trace.hpp"

namespace hrt::hw {

class Gpio {
 public:
  explicit Gpio(sim::Trace& trace) : trace_(trace) {}

  /// Write the 8-pin output latch.  Each pin that changes level produces a
  /// kPin trace record whose value encodes (pin << 1) | new_level.
  void outb(sim::Nanos now, std::uint32_t cpu, std::uint8_t value) {
    const std::uint8_t changed = static_cast<std::uint8_t>(latch_ ^ value);
    for (int pin = 0; pin < 8; ++pin) {
      if ((changed >> pin) & 1) {
        const std::int64_t level = (value >> pin) & 1;
        trace_.record(now, cpu, sim::TraceKind::kPin,
                      (static_cast<std::int64_t>(pin) << 1) | level);
      }
    }
    latch_ = value;
  }

  /// Set or clear a single pin, preserving the rest of the latch.
  void set_pin(sim::Nanos now, std::uint32_t cpu, int pin, bool level) {
    std::uint8_t v = latch_;
    if (level) {
      v = static_cast<std::uint8_t>(v | (1u << pin));
    } else {
      v = static_cast<std::uint8_t>(v & ~(1u << pin));
    }
    outb(now, cpu, v);
  }

  [[nodiscard]] std::uint8_t latch() const { return latch_; }

 private:
  sim::Trace& trace_;
  std::uint8_t latch_ = 0;
};

}  // namespace hrt::hw
