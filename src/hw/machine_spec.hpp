// MachineSpec: the cost model of a simulated x64 node.
//
// The paper evaluates on two machines (section 5.1):
//   * "Phi":  Colfax KNL Ninja — Intel Xeon Phi 7210, 64 cores x 4 HW threads
//             = 256 CPUs at 1.3 GHz.  Slow individual hardware threads.
//   * "R415": Dell R415 — dual AMD 4122, 8 CPUs at 2.2 GHz.  Much faster
//             individual hardware threads, so lower cycle costs.
//
// All software path lengths are expressed in cycles so that the Phi/R415
// contrast of Figures 5-9 (identical shape, shifted feasibility edge) is
// driven by exactly what drives it on real hardware: per-CPU speed.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace hrt::hw {

/// Software path lengths, in cycles.  Jitter (the oscilloscope "fuzz" of
/// Figure 4) is applied multiplicatively when costs are charged.
struct CostModel {
  sim::Cycles irq_dispatch;          // vectoring, entry/exit, EOI
  sim::Cycles sched_pass_base;       // one local scheduler pass
  sim::Cycles sched_pass_per_thread; // queue-size-dependent component
  sim::Cycles context_switch;        // register/stack switch
  sim::Cycles sched_other;           // accounting + APIC reprogramming
  sim::Cycles admission_control;     // one local admission-control call
  sim::Cycles atomic_rmw;            // uncontended atomic read-modify-write
  sim::Cycles cacheline_transfer;    // cross-CPU cache line migration
  sim::Cycles spin_notice;           // latency for a spinner to observe a flag
  sim::Cycles thread_create;         // thread pool allocation + setup
  sim::Cycles group_scan_per_member; // collective O(n) member scan, per member
  double jitter_rel_std;             // relative std-dev on charged costs
};

/// APIC timer properties.
struct TimerSpec {
  sim::Nanos apic_tick_ns;  // one-shot countdown granularity
  bool tsc_deadline;        // if true, program deadlines in TSC cycles
  sim::Nanos ipi_latency_ns;
};

/// System management interrupt ("missing time") behavior.  SMIs stop every
/// CPU while firmware runs; software cannot mask or observe them except as
/// a surprising jump in the cycle counter (section 3.6).
///
/// Burst mode models pathological firmware (thermal handlers, EC polling
/// loops) as a two-state Markov modulation: the source dwells in a quiet
/// state at `mean_interval_ns`, occasionally flips into a storm state where
/// SMIs arrive at `storm_mean_interval_ns`, then recovers.  Dwell times in
/// both states are exponential, so the whole process stays deterministic
/// under a seeded RNG.
struct SmiSpec {
  bool enabled;
  sim::Nanos mean_interval_ns;  // exponential inter-arrival mean (quiet)
  sim::Nanos min_duration_ns;
  sim::Nanos mean_duration_ns;  // min + exponential tail
  sim::Nanos max_duration_ns;   // clamp

  bool burst_enabled = false;
  sim::Nanos storm_mean_interval_ns = 0;  // inter-arrival mean while storming
  sim::Nanos mean_quiet_ns = 0;           // exponential dwell in quiet state
  sim::Nanos mean_storm_ns = 0;           // exponential dwell in storm state

  /// Returns nullptr when the spec is internally consistent, else a static
  /// string naming the first violated constraint.  `Machine` rejects invalid
  /// specs at construction (a mean below the minimum used to feed a negative
  /// mean into the exponential draw, silently).
  [[nodiscard]] const char* validate() const;
};

/// Boot-time cycle counter skew across CPUs and calibration quality.
struct SkewSpec {
  sim::Nanos boot_skew_max_ns;   // raw per-CPU TSC offset, uniform [0, max]
  sim::Cycles calib_error_std;   // residual error of offset estimation
  sim::Cycles calib_error_max;   // clamp on the residual
  bool tsc_writable;             // whether write-back correction is possible
};

struct MachineSpec {
  std::string name;
  std::uint32_t num_cpus = 1;
  sim::Frequency freq{1'000'000'000};
  CostModel cost;
  TimerSpec timer;
  SmiSpec smi;
  SkewSpec skew;

  /// Intel Xeon Phi 7210 (Knights Landing), 256 hardware threads @ 1.3 GHz.
  /// Total scheduler software overhead ~6000 cycles (Figure 5a); feasibility
  /// edge ~10 us (Figure 6).
  static MachineSpec phi();

  /// Dell R415, dual AMD 4122, 8 hardware threads @ 2.2 GHz.  Roughly 2.4x
  /// lower cycle overheads (Figure 5b); feasibility edge ~4 us (Figure 7).
  static MachineSpec r415();

  /// phi() with a reduced CPU count, for fast unit tests.
  static MachineSpec phi_small(std::uint32_t cpus);
};

}  // namespace hrt::hw
