// Per-CPU advanced programmable interrupt controller (APIC) model:
// the one-shot timer the local scheduler re-arms on every pass ("tickless"),
// plus IPI transmission.
//
// Timer programming follows section 3.3: the requested nanosecond countdown
// is converted to APIC ticks conservatively, so resolution mismatch causes
// an *earlier* firing, never a later one.  With TSC-deadline mode enabled the
// conversion is to cycles instead, eliminating most of the quantization.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/interrupts.hpp"
#include "hw/machine_spec.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hrt::hw {

class Cpu;  // fwd; apic raises vectors on its own cpu

class Apic {
 public:
  Apic(sim::Engine& engine, const TimerSpec& spec, sim::Frequency freq,
       std::function<void(Vector)> raise)
      : engine_(engine), spec_(spec), freq_(freq), raise_(std::move(raise)) {}

  Apic(const Apic&) = delete;
  Apic& operator=(const Apic&) = delete;

  /// Arm the one-shot timer to fire `delay_ns` from now (local-clock
  /// relative, which equals true-clock relative since TSC rates are
  /// constant).  Any previously armed timer is replaced.  The actual firing
  /// delay is the requested delay quantized *down* to the timer's
  /// granularity (minimum one tick).
  void arm_oneshot(sim::Nanos delay_ns) {
    cancel();
    armed_delay_ = quantize(delay_ns);
    if (delay_ns > armed_delay_) {
      earliness_.add(static_cast<double>(delay_ns - armed_delay_));
    } else {
      earliness_.add(0.0);
    }
    fire_at_ = engine_.now() + armed_delay_;
    timer_event_ = engine_.schedule_at(
        fire_at_,
        [this] {
          timer_event_.reset();
          ++fires_;
          raise_(kTimerVector);
        },
        sim::EventBand::kHardware);
  }

  void cancel() {
    engine_.cancel(timer_event_);
    timer_event_.reset();
  }

  [[nodiscard]] bool armed() const { return timer_event_.valid(); }
  [[nodiscard]] sim::Nanos pending_fire_time() const { return fire_at_; }
  [[nodiscard]] sim::Nanos armed_delay() const { return armed_delay_; }
  [[nodiscard]] std::uint64_t fires() const { return fires_; }

  /// Distribution of how much earlier than requested each armed countdown
  /// will fire (the quantization loss; near zero in TSC-deadline mode).
  [[nodiscard]] const sim::RunningStats& earliness() const {
    return earliness_;
  }

  /// The worst-case earliness the quantization can introduce.
  [[nodiscard]] sim::Nanos max_earliness() const {
    if (spec_.tsc_deadline) {
      return freq_.cycles_to_ns_ceil(1);
    }
    return spec_.apic_tick_ns;
  }

 private:
  [[nodiscard]] sim::Nanos quantize(sim::Nanos delay_ns) const {
    if (delay_ns < 0) delay_ns = 0;
    if (spec_.tsc_deadline) {
      // Cycle-granular deadline; still conservative.
      sim::Cycles c = freq_.ns_to_cycles_floor(delay_ns);
      if (c < 1) c = 1;
      // Convert back rounding down so we never fire late.
      const __int128 num = static_cast<__int128>(c) * sim::kNanosPerSecond;
      sim::Nanos ns = static_cast<sim::Nanos>(num / freq_.hz());
      return ns < 1 ? 1 : ns;
    }
    const sim::Nanos tick = spec_.apic_tick_ns;
    sim::Nanos ticks = delay_ns / tick;
    if (ticks < 1) ticks = 1;
    return ticks * tick;
  }

  sim::Engine& engine_;
  TimerSpec spec_;
  sim::Frequency freq_;
  std::function<void(Vector)> raise_;
  sim::EventId timer_event_;
  sim::Nanos fire_at_ = 0;
  sim::Nanos armed_delay_ = 0;
  std::uint64_t fires_ = 0;
  sim::RunningStats earliness_;
};

}  // namespace hrt::hw
