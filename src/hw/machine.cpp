#include "hw/machine.hpp"

#include <stdexcept>

namespace hrt::hw {

Machine::Machine(const MachineSpec& spec, std::uint64_t seed,
                 const Sharding& sharding)
    : spec_(spec),
      rng_(seed),
      gpio_(trace_),
      ioapic_([this](std::uint32_t cpu_id, Vector v) {
        cpus_[cpu_id]->raise(v);
      }) {
  if (const char* err = spec_.smi.validate()) {
    throw std::invalid_argument(err);
  }
  if (sharding.host_threads > 1) {
    // Serial-commit sharding: parallel wheel maintenance, exact serial
    // callback order.  The lookahead is the minimum latency of any
    // cross-CPU interaction — IPIs are the fastest cross-CPU path in the
    // simulated hardware, so ipi_latency_ns bounds it.
    sim::ShardedEngine::Config cfg;
    cfg.shards = sharding.host_threads;
    cfg.domains = spec_.num_cpus + 1;  // domain 0 = machine-wide hardware
    cfg.lookahead = sharding.lookahead_ns > 0 ? sharding.lookahead_ns
                                              : spec_.timer.ipi_latency_ns;
    cfg.commit = sim::ShardedEngine::CommitMode::kSerial;
    sharded_ = std::make_unique<sim::ShardedEngine>(cfg);
  }
  cpus_.reserve(spec_.num_cpus);
  for (std::uint32_t i = 0; i < spec_.num_cpus; ++i) {
    // CPU 0 defines wall-clock time (section 3.4); the rest carry a raw
    // boot-time TSC skew that calibration will estimate and cancel.
    sim::Nanos offset = 0;
    if (i != 0) {
      offset = rng_.uniform(0, spec_.skew.boot_skew_max_ns);
    }
    cpus_.push_back(std::make_unique<Cpu>(i, spec_, engine_for_cpu(i), offset,
                                          rng_.fork(i)));
  }
  smi_ = std::make_unique<SmiSource>(
      engine(), spec_.smi, rng_.fork(0x5111),
      [this](sim::Nanos d) { freeze_all(d); });
}

void Machine::send_ipi(std::uint32_t /*from*/, std::uint32_t to,
                       Vector vector) {
  // Scheduled on the destination CPU's shard: the delivery callback only
  // touches that CPU's interrupt state.  With the shared clock and FIFO
  // counter this is key-for-key identical to the serial machine's
  // schedule_after on the single engine.
  engine_for_cpu(to).schedule_after(
      spec_.timer.ipi_latency_ns,
      [this, to, vector] { cpus_[to]->raise(vector); },
      sim::EventBand::kHardware);
}

Device& Machine::add_device(Vector vector, Device::Arrival arrival,
                            sim::Nanos mean_interval) {
  devices_.push_back(std::make_unique<Device>(
      engine(), ioapic_, vector, arrival, mean_interval,
      rng_.fork(0xde70 + devices_.size())));
  ioapic_.route(vector, 0);
  return *devices_.back();
}

void Machine::freeze_all(sim::Nanos duration) {
  sim::Engine& eng = engine();
  const sim::Nanos now = eng.now();
  const sim::Nanos until = now + duration;
  if (freeze_depth_ == 0) {
    freeze_depth_ = 1;
    freeze_start_ = now;
    frozen_until_ = until;
    for (auto& c : cpus_) {
      if (hooks_.on_freeze) hooks_.on_freeze(c->id());
      c->freeze();
    }
  } else {
    // Overlapping SMI: extend the window.
    if (until > frozen_until_) frozen_until_ = until;
  }
  eng.schedule_at(
      frozen_until_,
      [this] {
        if (freeze_depth_ == 0 || engine().now() < frozen_until_) {
          return;  // stale (window was extended)
        }
        freeze_depth_ = 0;
        const sim::Nanos d = engine().now() - freeze_start_;
        for (auto& c : cpus_) {
          if (hooks_.on_unfreeze) hooks_.on_unfreeze(c->id(), d);
        }
        // Unfreeze after all executors adjusted their in-flight work, so
        // pended interrupts are taken against consistent state.
        for (auto& c : cpus_) {
          c->unfreeze();
        }
      },
      sim::EventBand::kSmi);
}

}  // namespace hrt::hw
