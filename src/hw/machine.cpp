#include "hw/machine.hpp"

#include <stdexcept>

namespace hrt::hw {

Machine::Machine(const MachineSpec& spec, std::uint64_t seed)
    : spec_(spec),
      rng_(seed),
      gpio_(trace_),
      ioapic_([this](std::uint32_t cpu_id, Vector v) {
        cpus_[cpu_id]->raise(v);
      }) {
  if (const char* err = spec_.smi.validate()) {
    throw std::invalid_argument(err);
  }
  cpus_.reserve(spec_.num_cpus);
  for (std::uint32_t i = 0; i < spec_.num_cpus; ++i) {
    // CPU 0 defines wall-clock time (section 3.4); the rest carry a raw
    // boot-time TSC skew that calibration will estimate and cancel.
    sim::Nanos offset = 0;
    if (i != 0) {
      offset = rng_.uniform(0, spec_.skew.boot_skew_max_ns);
    }
    cpus_.push_back(
        std::make_unique<Cpu>(i, spec_, engine_, offset, rng_.fork(i)));
  }
  smi_ = std::make_unique<SmiSource>(
      engine_, spec_.smi, rng_.fork(0x5111),
      [this](sim::Nanos d) { freeze_all(d); });
}

void Machine::send_ipi(std::uint32_t /*from*/, std::uint32_t to,
                       Vector vector) {
  engine_.schedule_after(
      spec_.timer.ipi_latency_ns,
      [this, to, vector] { cpus_[to]->raise(vector); },
      sim::EventBand::kHardware);
}

Device& Machine::add_device(Vector vector, Device::Arrival arrival,
                            sim::Nanos mean_interval) {
  devices_.push_back(std::make_unique<Device>(
      engine_, ioapic_, vector, arrival, mean_interval,
      rng_.fork(0xde70 + devices_.size())));
  ioapic_.route(vector, 0);
  return *devices_.back();
}

void Machine::freeze_all(sim::Nanos duration) {
  const sim::Nanos now = engine_.now();
  const sim::Nanos until = now + duration;
  if (freeze_depth_ == 0) {
    freeze_depth_ = 1;
    freeze_start_ = now;
    frozen_until_ = until;
    for (auto& c : cpus_) {
      if (hooks_.on_freeze) hooks_.on_freeze(c->id());
      c->freeze();
    }
  } else {
    // Overlapping SMI: extend the window.
    if (until > frozen_until_) frozen_until_ = until;
  }
  engine_.schedule_at(
      frozen_until_,
      [this] {
        if (freeze_depth_ == 0 || engine_.now() < frozen_until_) {
          return;  // stale (window was extended)
        }
        freeze_depth_ = 0;
        const sim::Nanos d = engine_.now() - freeze_start_;
        for (auto& c : cpus_) {
          if (hooks_.on_unfreeze) hooks_.on_unfreeze(c->id(), d);
        }
        // Unfreeze after all executors adjusted their in-flight work, so
        // pended interrupts are taken against consistent state.
        for (auto& c : cpus_) {
          c->unfreeze();
        }
      },
      sim::EventBand::kSmi);
}

}  // namespace hrt::hw
