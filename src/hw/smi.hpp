// System management interrupt source ("missing time", section 3.6).
//
// When the firmware asserts an SMI, *all* CPUs stop, one executes the
// curtained handler, and everything resumes afterward.  Software — including
// the kernel under test — cannot mask, observe, or bound this except
// empirically.  The source therefore lives entirely in the hardware layer:
// it calls a machine-level freeze/unfreeze pair and keeps ground-truth
// statistics the benchmarks may report but the scheduler may not read.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/machine_spec.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace hrt::hw {

class SmiSource {
 public:
  /// `freeze_all(duration)` must stop every CPU for `duration` starting now.
  SmiSource(sim::Engine& engine, const SmiSpec& spec, sim::Rng rng,
            std::function<void(sim::Nanos)> freeze_all)
      : engine_(engine),
        spec_(spec),
        rng_(rng),
        freeze_all_(std::move(freeze_all)) {}

  /// Begin generating SMIs (no-op when disabled in the spec).
  void start() {
    if (spec_.enabled && !started_) {
      started_ = true;
      schedule_next();
    }
  }

  /// Inject one SMI of exactly `duration` right now (failure injection for
  /// tests and the eager-vs-lazy ablation).
  void force(sim::Nanos duration) { fire(duration); }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] sim::Nanos total_stolen() const { return total_stolen_; }

 private:
  void schedule_next() {
    const auto gap = static_cast<sim::Nanos>(
        rng_.exponential(static_cast<double>(spec_.mean_interval_ns)));
    engine_.schedule_after(
        gap < 1 ? 1 : gap,
        [this] {
          fire(draw_duration());
          schedule_next();
        },
        sim::EventBand::kSmi);
  }

  [[nodiscard]] sim::Nanos draw_duration() {
    const double tail = rng_.exponential(static_cast<double>(
        spec_.mean_duration_ns - spec_.min_duration_ns));
    auto d = spec_.min_duration_ns + static_cast<sim::Nanos>(tail);
    if (d > spec_.max_duration_ns) d = spec_.max_duration_ns;
    return d;
  }

  void fire(sim::Nanos duration) {
    ++count_;
    total_stolen_ += duration;
    freeze_all_(duration);
  }

  sim::Engine& engine_;
  SmiSpec spec_;
  sim::Rng rng_;
  std::function<void(sim::Nanos)> freeze_all_;
  bool started_ = false;
  std::uint64_t count_ = 0;
  sim::Nanos total_stolen_ = 0;
};

}  // namespace hrt::hw
