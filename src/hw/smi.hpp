// System management interrupt source ("missing time", section 3.6).
//
// When the firmware asserts an SMI, *all* CPUs stop, one executes the
// curtained handler, and everything resumes afterward.  Software — including
// the kernel under test — cannot mask, observe, or bound this except
// empirically.  The source therefore lives entirely in the hardware layer:
// it calls a machine-level freeze/unfreeze pair and keeps ground-truth
// statistics the benchmarks may report but the scheduler may not read.
//
// With `SmiSpec::burst_enabled`, arrivals are Markov-modulated: the source
// alternates between a quiet state (mean_interval_ns) and a storm state
// (storm_mean_interval_ns), with exponential dwell times in each.  A state
// flip cancels the pending arrival and redraws it at the new rate, so a
// storm's elevated rate takes effect immediately rather than after one more
// quiet-length gap.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/machine_spec.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace hrt::hw {

/// Ground-truth snapshot of everything the source has injected.  Benchmarks
/// compare the scheduler's *empirical* missing-time estimate against this;
/// the scheduler itself must never read it (see header comment).
struct SmiStats {
  std::uint64_t count = 0;             // SMIs delivered (natural + forced)
  std::uint64_t forced = 0;            // of which force() injections
  sim::Nanos total_stolen_ns = 0;      // sum of all freeze durations
  std::uint64_t storm_transitions = 0; // quiet -> storm entries
  bool in_storm = false;               // current modulation state
};

class SmiSource {
 public:
  /// `freeze_all(duration)` must stop every CPU for `duration` starting now.
  SmiSource(sim::Engine& engine, const SmiSpec& spec, sim::Rng rng,
            std::function<void(sim::Nanos)> freeze_all)
      : engine_(engine),
        spec_(spec),
        rng_(rng),
        freeze_all_(std::move(freeze_all)) {}

  /// Begin generating SMIs (no-op when disabled in the spec).
  void start() {
    if (spec_.enabled && !started_) {
      started_ = true;
      schedule_next();
      if (spec_.burst_enabled) schedule_state_flip();
    }
  }

  /// Inject one SMI of exactly `duration` right now (failure injection for
  /// tests and ablations).  Valid before or after start(): the injection is
  /// counted in stats() either way, and non-positive durations are ignored
  /// instead of scheduling a zero-length freeze window.
  void force(sim::Nanos duration) {
    if (duration <= 0) return;
    ++stats_.forced;
    fire(duration);
  }

  /// Ground-truth counters for benches and reports (never the scheduler).
  [[nodiscard]] SmiStats stats() const { return stats_; }

 private:
  [[nodiscard]] sim::Nanos current_mean_interval() const {
    return stats_.in_storm ? spec_.storm_mean_interval_ns
                           : spec_.mean_interval_ns;
  }

  void schedule_next() {
    const auto gap = static_cast<sim::Nanos>(
        rng_.exponential(static_cast<double>(current_mean_interval())));
    next_smi_ = engine_.schedule_after(
        gap < 1 ? 1 : gap,
        [this] {
          fire(draw_duration());
          schedule_next();
        },
        sim::EventBand::kSmi);
  }

  void schedule_state_flip() {
    const double dwell_mean = static_cast<double>(
        stats_.in_storm ? spec_.mean_storm_ns : spec_.mean_quiet_ns);
    const auto dwell = static_cast<sim::Nanos>(rng_.exponential(dwell_mean));
    engine_.schedule_after(
        dwell < 1 ? 1 : dwell,
        [this] {
          stats_.in_storm = !stats_.in_storm;
          if (stats_.in_storm) ++stats_.storm_transitions;
          // Redraw the pending arrival at the new rate so the storm (or the
          // recovery) is not delayed by a gap drawn at the old rate.
          engine_.cancel(next_smi_);
          schedule_next();
          schedule_state_flip();
        },
        sim::EventBand::kSmi);
  }

  [[nodiscard]] sim::Nanos draw_duration() {
    const double tail = rng_.exponential(static_cast<double>(
        spec_.mean_duration_ns - spec_.min_duration_ns));
    auto d = spec_.min_duration_ns + static_cast<sim::Nanos>(tail);
    if (d > spec_.max_duration_ns) d = spec_.max_duration_ns;
    return d;
  }

  void fire(sim::Nanos duration) {
    ++stats_.count;
    stats_.total_stolen_ns += duration;
    freeze_all_(duration);
  }

  sim::Engine& engine_;
  SmiSpec spec_;
  sim::Rng rng_;
  std::function<void(sim::Nanos)> freeze_all_;
  bool started_ = false;
  sim::EventId next_smi_{};
  SmiStats stats_;
};

}  // namespace hrt::hw
