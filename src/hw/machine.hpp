// The simulated node: engine + CPUs + interrupt fabric + SMI source + GPIO.
//
// The Machine owns the hardware only; the kernel layer (nautilus/) installs
// hooks for interrupt delivery and SMI freezes.  SMIs are applied machine-
// wide: every CPU freezes, pending interrupts latch, timers and TSCs keep
// counting, and on resume software observes the missing time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/cpu.hpp"
#include "hw/device.hpp"
#include "hw/gpio.hpp"
#include "hw/ioapic.hpp"
#include "hw/machine_spec.hpp"
#include "hw/smi.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/trace.hpp"

namespace hrt::hw {

class Machine {
 public:
  /// Hooks the kernel installs so its executors can suspend/resume work
  /// around an SMI window.  Called once per CPU per transition.
  struct FreezeHooks {
    std::function<void(std::uint32_t cpu)> on_freeze;
    std::function<void(std::uint32_t cpu, sim::Nanos duration)> on_unfreeze;
  };

  /// Host-parallel simulation config.  host_threads <= 1 keeps the classic
  /// single serial engine (byte-for-byte the pre-sharding machine).  With
  /// more threads, per-CPU hardware is partitioned across timer-wheel
  /// shards driven by a serial-commit sim::ShardedEngine: staging runs on
  /// all host threads, callbacks commit in exact serial order, so traces
  /// are bit-identical to the serial machine.
  struct Sharding {
    unsigned host_threads = 1;
    /// Conservative lookahead; 0 means "derive from the spec"
    /// (timer.ipi_latency_ns, the minimum cross-CPU event latency).
    sim::Nanos lookahead_ns = 0;
  };

  explicit Machine(const MachineSpec& spec, std::uint64_t seed = 42)
      : Machine(spec, seed, Sharding{}) {}
  Machine(const MachineSpec& spec, std::uint64_t seed,
          const Sharding& sharding);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] const MachineSpec& spec() const { return spec_; }

  /// The global-domain engine (shard 0 when sharded).  Scheduling here
  /// places machine-wide events; run_until/now() behave identically either
  /// way, so callers never need to know whether the machine is sharded.
  [[nodiscard]] sim::Engine& engine() {
    return sharded_ ? sharded_->shard(0) : engine_;
  }

  /// The engine shard owning CPU `i`'s hardware (APIC timer, TSC, executor
  /// completions).  Equals engine() on an unsharded machine.
  [[nodiscard]] sim::Engine& engine_for_cpu(std::uint32_t i) {
    return sharded_ ? sharded_->engine_for(i + 1) : engine_;
  }

  [[nodiscard]] sim::ShardedEngine* sharded() { return sharded_.get(); }
  [[nodiscard]] std::uint32_t num_shards() const {
    return sharded_ ? sharded_->num_shards() : 1;
  }
  [[nodiscard]] sim::Trace& trace() { return trace_; }
  [[nodiscard]] Gpio& gpio() { return gpio_; }
  [[nodiscard]] IoApic& ioapic() { return ioapic_; }
  [[nodiscard]] SmiSource& smi() { return *smi_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  [[nodiscard]] std::uint32_t num_cpus() const {
    return static_cast<std::uint32_t>(cpus_.size());
  }
  [[nodiscard]] Cpu& cpu(std::uint32_t i) { return *cpus_[i]; }
  [[nodiscard]] const Cpu& cpu(std::uint32_t i) const { return *cpus_[i]; }

  void set_freeze_hooks(FreezeHooks hooks) { hooks_ = std::move(hooks); }

  /// Send an IPI from one CPU to another (kick).  Delivery is delayed by the
  /// interconnect latency.
  void send_ipi(std::uint32_t from, std::uint32_t to, Vector vector);

  /// Attach a synthetic device on `vector`, routed initially to CPU 0.
  Device& add_device(Vector vector, Device::Arrival arrival,
                     sim::Nanos mean_interval);

  /// Stop the world for `duration` (SMI semantics).  Public so failure-
  /// injection tests can freeze directly.
  void freeze_all(sim::Nanos duration);

  [[nodiscard]] bool frozen() const { return freeze_depth_ > 0; }

 private:
  MachineSpec spec_;
  // Declared before everything engine-dependent so it is destroyed last
  // (CPUs, SMI source, and devices hold references into its shards).
  std::unique_ptr<sim::ShardedEngine> sharded_;
  sim::Engine engine_;  // serial engine (unused when sharded_ is set)
  sim::Rng rng_;
  sim::Trace trace_;
  Gpio gpio_;
  IoApic ioapic_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::unique_ptr<SmiSource> smi_;
  std::vector<std::unique_ptr<Device>> devices_;
  FreezeHooks hooks_;
  int freeze_depth_ = 0;
  sim::Nanos freeze_start_ = 0;
  sim::Nanos frozen_until_ = 0;
};

}  // namespace hrt::hw
