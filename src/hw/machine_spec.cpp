#include "hw/machine_spec.hpp"

namespace hrt::hw {

const char* SmiSpec::validate() const {
  if (!enabled) return nullptr;  // ignored fields are not checked
  if (mean_interval_ns <= 0) return "SmiSpec: mean_interval_ns must be > 0";
  if (min_duration_ns < 0) return "SmiSpec: min_duration_ns must be >= 0";
  if (mean_duration_ns < min_duration_ns) {
    return "SmiSpec: mean_duration_ns < min_duration_ns";
  }
  if (max_duration_ns < min_duration_ns) {
    return "SmiSpec: max_duration_ns < min_duration_ns";
  }
  if (burst_enabled) {
    if (storm_mean_interval_ns <= 0) {
      return "SmiSpec: burst mode needs storm_mean_interval_ns > 0";
    }
    if (mean_quiet_ns <= 0) return "SmiSpec: burst mode needs mean_quiet_ns > 0";
    if (mean_storm_ns <= 0) return "SmiSpec: burst mode needs mean_storm_ns > 0";
  }
  return nullptr;
}

MachineSpec MachineSpec::phi() {
  MachineSpec s{
      .name = "phi",
      .num_cpus = 256,
      .freq = sim::Frequency(1'300'000'000),
      .cost =
          CostModel{
              .irq_dispatch = 1500,
              .sched_pass_base = 2300,
              .sched_pass_per_thread = 10,
              .context_switch = 1100,
              .sched_other = 600,
              .admission_control = 80'000,
              .atomic_rmw = 120,
              .cacheline_transfer = 300,
              .spin_notice = 220,
              .thread_create = 40'000,
              .group_scan_per_member = 300,
              .jitter_rel_std = 0.08,
          },
      .timer =
          TimerSpec{
              .apic_tick_ns = 20,
              .tsc_deadline = false,
              .ipi_latency_ns = 400,
          },
      .smi =
          SmiSpec{
              .enabled = true,
              .mean_interval_ns = sim::millis(50),
              .min_duration_ns = sim::micros(4),
              .mean_duration_ns = sim::micros(10),
              .max_duration_ns = sim::micros(30),
          },
      .skew =
          SkewSpec{
              .boot_skew_max_ns = sim::micros(200),
              .calib_error_std = 300,
              .calib_error_max = 1000,
              .tsc_writable = true,
          },
  };
  return s;
}

MachineSpec MachineSpec::r415() {
  MachineSpec s{
      .name = "r415",
      .num_cpus = 8,
      .freq = sim::Frequency(2'200'000'000),
      .cost =
          CostModel{
              .irq_dispatch = 650,
              .sched_pass_base = 1050,
              .sched_pass_per_thread = 6,
              .context_switch = 520,
              .sched_other = 300,
              .admission_control = 30'000,
              .atomic_rmw = 60,
              .cacheline_transfer = 140,
              .spin_notice = 110,
              .thread_create = 18'000,
              .group_scan_per_member = 120,
              .jitter_rel_std = 0.08,
          },
      .timer =
          TimerSpec{
              .apic_tick_ns = 12,
              .tsc_deadline = false,
              .ipi_latency_ns = 300,
          },
      .smi =
          SmiSpec{
              .enabled = true,
              .mean_interval_ns = sim::millis(40),
              .min_duration_ns = sim::micros(3),
              .mean_duration_ns = sim::micros(8),
              .max_duration_ns = sim::micros(25),
          },
      .skew =
          SkewSpec{
              .boot_skew_max_ns = sim::micros(120),
              .calib_error_std = 150,
              .calib_error_max = 600,
              .tsc_writable = true,
          },
  };
  return s;
}

MachineSpec MachineSpec::phi_small(std::uint32_t cpus) {
  MachineSpec s = phi();
  s.num_cpus = cpus;
  return s;
}

}  // namespace hrt::hw
