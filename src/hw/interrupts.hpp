// Interrupt vector layout.
//
// As on x64, a vector's priority class is its high nibble; the APIC task
// priority register (TPR) blocks delivery of any vector whose class is not
// above the programmed threshold.  The scheduler uses this to steer device
// interrupts away from hard real-time threads (section 3.5): while an RT
// thread runs, TPR is raised so only the scheduling-related vectors (timer
// and kick IPI) get through.
#pragma once

#include <cstdint>

namespace hrt::hw {

using Vector = std::uint8_t;

inline constexpr Vector kTimerVector = 0xF0;  // APIC one-shot timer
inline constexpr Vector kKickVector = 0xF1;   // cross-scheduler kick IPI
inline constexpr Vector kFirstDeviceVector = 0x30;
inline constexpr Vector kLastDeviceVector = 0x7F;

[[nodiscard]] constexpr std::uint8_t priority_class(Vector v) {
  return static_cast<std::uint8_t>(v >> 4);
}

/// TPR value that admits only scheduling vectors (class 0xF).
inline constexpr std::uint8_t kTprRealTime = 0xE;
/// TPR value that admits everything.
inline constexpr std::uint8_t kTprOpen = 0x0;

}  // namespace hrt::hw
