// Spin-based synchronization objects.
//
// All blocking in the paper's parallel workloads is busy-waiting: a spinning
// thread keeps consuming its CPU (and, under a periodic constraint, its
// slice), which is precisely why a time-synchronized schedule can replace a
// barrier.  WaitFlag models the memory word such spinners poll.  The wake
// path is owned by the kernel because waking requires poking executors.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace hrt::nk {

class Kernel;
class Thread;

class WaitFlag {
 public:
  explicit WaitFlag(Kernel& kernel) : kernel_(kernel) {}

  WaitFlag(const WaitFlag&) = delete;
  WaitFlag& operator=(const WaitFlag&) = delete;

  [[nodiscard]] bool is_set() const { return set_; }

  /// Raise the flag: every registered spinner is notified (those currently
  /// running observe it after the machine's spin-notice latency; descheduled
  /// ones observe it when next dispatched).  Defined in kernel.cpp.
  void set();

  /// Lower the flag for reuse.  Only meaningful with no active spinners.
  void clear() { set_ = false; }

  /// Executor bookkeeping.
  void add_spinner(Thread* t) { spinners_.push_back(t); }
  void remove_spinner(Thread* t) {
    for (auto it = spinners_.begin(); it != spinners_.end(); ++it) {
      if (*it == t) {
        spinners_.erase(it);
        return;
      }
    }
  }
  [[nodiscard]] std::size_t spinner_count() const { return spinners_.size(); }

 private:
  Kernel& kernel_;
  bool set_ = false;
  std::vector<Thread*> spinners_;
};

}  // namespace hrt::nk
