// Behavior: the "code" of a simulated thread.
//
// The executor asks the behavior for the next Action each time the previous
// one completes.  ThreadCtx gives the behavior its view of the world: the
// kernel, itself, the local wall clock, and the result of the most recent
// admission request.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nautilus/action.hpp"
#include "sim/time.hpp"

namespace hrt::nk {

class Kernel;
class Thread;

struct ThreadCtx {
  Kernel& kernel;
  Thread& self;
  sim::Nanos wall_now;     // this CPU's wall-clock estimate
  bool last_admit_ok;      // result of the last kChangeConstraints
};

class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Produce the next action.  Returning Action::exit() ends the thread.
  virtual Action next(ThreadCtx& ctx) = 0;

  [[nodiscard]] virtual std::string describe() const { return "behavior"; }
};

/// A behavior assembled from a fixed list of actions, then exit.
class SequenceBehavior final : public Behavior {
 public:
  explicit SequenceBehavior(std::vector<Action> actions)
      : actions_(std::move(actions)) {}

  Action next(ThreadCtx&) override {
    if (index_ >= actions_.size()) return Action::exit();
    return actions_[index_++];
  }

  [[nodiscard]] std::string describe() const override { return "sequence"; }

 private:
  std::vector<Action> actions_;
  std::size_t index_ = 0;
};

/// A behavior driven by a callable: fn(ctx, step) -> Action.  `step`
/// increments on every call, so simple loops are one lambda.
class FnBehavior final : public Behavior {
 public:
  using Fn = std::function<Action(ThreadCtx&, std::uint64_t step)>;
  explicit FnBehavior(Fn fn) : fn_(std::move(fn)) {}

  Action next(ThreadCtx& ctx) override { return fn_(ctx, step_++); }

  [[nodiscard]] std::string describe() const override { return "fn"; }

 private:
  Fn fn_;
  std::uint64_t step_ = 0;
};

/// Compute forever in fixed-size chunks; the canonical CPU-bound load.
class BusyLoopBehavior final : public Behavior {
 public:
  explicit BusyLoopBehavior(sim::Nanos chunk) : chunk_(chunk) {}

  Action next(ThreadCtx&) override { return Action::compute(chunk_); }

  [[nodiscard]] std::string describe() const override { return "busy-loop"; }

 private:
  sim::Nanos chunk_;
};

}  // namespace hrt::nk
