#include "nautilus/spinlock.hpp"

namespace hrt::nk {

SpinLock::SpinLock(Kernel& kernel) : kernel_(kernel) {
  const auto& spec = kernel_.machine().spec();
  atomic_ns_ = spec.freq.cycles_to_ns_ceil(spec.cost.atomic_rmw +
                                           spec.cost.cacheline_transfer);
}

WaitFlag& SpinLock::flag_for(std::uint32_t ticket) {
  while (flags_.size() <= ticket) {
    flags_.push_back(std::make_unique<WaitFlag>(kernel_));
  }
  return *flags_[ticket];
}

Action SpinLock::take_ticket_action(Ticket* ticket) {
  return Action::atomic(&line_, atomic_ns_, [this, ticket](ThreadCtx&) {
    ticket->number = next_ticket_++;
    if (ticket->number == serving_) {
      // Uncontended: the lock is immediately ours.
      flag_for(ticket->number).set();
    }
  });
}

Action SpinLock::wait_action(const Ticket* ticket) {
  return Action::spin_until(&flag_for(ticket->number));
}

Action SpinLock::release_action() {
  return Action::atomic(&line_, atomic_ns_, [this](ThreadCtx&) {
    ++serving_;
    // Wake the next waiter, or pre-arm the slot so an uncontended acquire
    // proceeds immediately.
    flag_for(serving_).set();
  });
}

}  // namespace hrt::nk
