// The vocabulary of things a simulated thread can do.
//
// Real Nautilus threads run arbitrary C; in the simulated machine a thread's
// code is a Behavior (behavior.hpp) that emits Actions, and the per-CPU
// executor charges simulated time for each one.  The vocabulary is small but
// sufficient to express the paper's workloads: bounded computation, remote
// memory traffic, spin-based synchronization, serialized atomics, sleeping,
// and the scheduler entry points a thread can invoke (yield, exit,
// constraint changes, section 3.3).
#pragma once

#include <cstdint>
#include <functional>

#include "rt/constraints.hpp"
#include "sim/time.hpp"

namespace hrt::nk {

class WaitFlag;
struct SeqResource;
struct ThreadCtx;

struct Action {
  enum class Kind : std::uint8_t {
    kCompute,            // consume `duration` of CPU time (preemptable)
    kSpinUntil,          // busy-wait on a WaitFlag (preemptable, burns CPU)
    kAtomic,             // serialized op on a SeqResource (non-preemptable)
    kSleep,              // block for `duration`
    kYield,              // invoke the local scheduler, stay runnable
    kExit,               // terminate the thread
    kChangeConstraints,  // request admission with new constraints
    kHalt,               // idle thread only: halt CPU until next interrupt
  };

  Kind kind = Kind::kExit;
  sim::Nanos duration = 0;           // compute work / sleep time / atomic hold
  WaitFlag* flag = nullptr;          // kSpinUntil
  SeqResource* resource = nullptr;   // kAtomic (null = uncontended)
  rt::Constraints constraints{};     // kChangeConstraints
  std::function<void(ThreadCtx&)> on_complete;  // side effect at completion

  [[nodiscard]] static Action compute(
      sim::Nanos work, std::function<void(ThreadCtx&)> fx = nullptr) {
    Action a;
    a.kind = Kind::kCompute;
    a.duration = work;
    a.on_complete = std::move(fx);
    return a;
  }

  [[nodiscard]] static Action spin_until(
      WaitFlag* f, std::function<void(ThreadCtx&)> fx = nullptr) {
    Action a;
    a.kind = Kind::kSpinUntil;
    a.flag = f;
    a.on_complete = std::move(fx);
    return a;
  }

  [[nodiscard]] static Action atomic(
      SeqResource* r, sim::Nanos cost,
      std::function<void(ThreadCtx&)> fx = nullptr) {
    Action a;
    a.kind = Kind::kAtomic;
    a.resource = r;
    a.duration = cost;
    a.on_complete = std::move(fx);
    return a;
  }

  [[nodiscard]] static Action sleep(sim::Nanos d) {
    Action a;
    a.kind = Kind::kSleep;
    a.duration = d;
    return a;
  }

  [[nodiscard]] static Action yield() {
    Action a;
    a.kind = Kind::kYield;
    return a;
  }

  [[nodiscard]] static Action exit() {
    Action a;
    a.kind = Kind::kExit;
    return a;
  }

  [[nodiscard]] static Action change_constraints(
      const rt::Constraints& c, std::function<void(ThreadCtx&)> fx = nullptr) {
    Action a;
    a.kind = Kind::kChangeConstraints;
    a.constraints = c;
    a.on_complete = std::move(fx);
    return a;
  }

  [[nodiscard]] static Action halt() {
    Action a;
    a.kind = Kind::kHalt;
    return a;
  }
};

/// A point of serialization between CPUs: an atomic variable / contended
/// cache line.  Operations are granted exclusive access in arrival order;
/// each holds the resource for its service cost.  This is what makes group
/// collective costs grow linearly with member count (Figure 10).
struct SeqResource {
  sim::Nanos free_at = 0;
  std::uint64_t ops = 0;

  /// Reserve the resource for an op issued at `now` taking `cost`;
  /// returns the completion time.
  sim::Nanos reserve(sim::Nanos now, sim::Nanos cost) {
    const sim::Nanos start = now > free_at ? now : free_at;
    free_at = start + cost;
    ++ops;
    return free_at;
  }
};

}  // namespace hrt::nk
