// The "interrupt thread" of section 3.5: the second amelioration mechanism
// for the interrupt-laden partition.
//
// "...the second mechanism provides the ability to steer interrupts toward
// a specific 'interrupt thread'."  The hardware handler (top half) stays
// minimal — acknowledge and count — and the deferred processing (bottom
// half) runs in an ordinary aperiodic thread that the scheduler places in
// the gaps, so device work contends like any other thread instead of
// preempting arbitrary code.
#pragma once

#include <cstdint>
#include <string>

#include "hw/interrupts.hpp"
#include "nautilus/kernel.hpp"

namespace hrt::nk {

class InterruptThread {
 public:
  /// Create the bottom-half thread on `cpu` (normally within the
  /// interrupt-laden partition).  `bottom_half_cost` is the per-interrupt
  /// processing cost in cycles.
  InterruptThread(Kernel& kernel, std::uint32_t cpu,
                  sim::Cycles bottom_half_cost,
                  rt::AperiodicPriority priority = rt::kDefaultPriority);

  InterruptThread(const InterruptThread&) = delete;
  InterruptThread& operator=(const InterruptThread&) = delete;

  /// Route `vector` here: registers a minimal top half (cost
  /// `top_half_cost` cycles) that queues work for the bottom-half thread
  /// and wakes it.
  void attach_vector(hw::Vector vector, sim::Cycles top_half_cost);

  [[nodiscard]] Thread* thread() const { return thread_; }
  [[nodiscard]] std::uint64_t interrupts_queued() const { return queued_; }
  [[nodiscard]] std::uint64_t interrupts_processed() const {
    return processed_;
  }
  [[nodiscard]] std::uint64_t backlog() const { return queued_ - processed_; }

 private:
  class BottomHalf;

  Kernel& kernel_;
  Thread* thread_ = nullptr;
  sim::Nanos bottom_half_ns_;
  std::uint64_t queued_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hrt::nk
