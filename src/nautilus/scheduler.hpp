// The interface a local scheduler presents to the kernel/executor layer.
//
// The concrete hard real-time scheduler lives in rt/; keeping the interface
// here lets the kernel host any per-CPU scheduling policy (the baseline
// non-real-time schedulers implement it too).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rt/constraints.hpp"
#include "sim/time.hpp"

namespace hrt::nk {

class CpuExecutor;
class Thread;

/// Why a scheduling pass is running.
enum class PassReason : std::uint8_t {
  kBoot,
  kTimer,
  kKick,
  kYield,
  kSleep,
  kExit,
  kChangeConstraints,
};

/// A lightweight task (section 3.1): a queued callback, cheaper than a
/// thread.  Size-tagged tasks (size >= 0) may be run directly by the
/// scheduler when they fit before the next RT arrival; unsized tasks
/// (size < 0) must go to the task-exec helper thread.
struct Task {
  std::function<void()> fn;
  sim::Nanos size = -1;
};

/// Outcome of one scheduling pass.
struct PassResult {
  Thread* next = nullptr;               // thread to run (never null; idle ok)
  sim::Cycles pass_cycles = 0;          // cost of the pass itself
  sim::Nanos task_ns = 0;               // inline sized-task execution time
  std::vector<std::function<void()>> task_callbacks;  // run at handler end
};

class SchedulerBase {
 public:
  virtual ~SchedulerBase() = default;

  /// Wire up the executor this scheduler drives.  Called once at boot.
  virtual void attach(CpuExecutor* exec) = 0;

  /// One scheduling pass at local wall time `local_now`.  Must be
  /// deterministic given its queue state and `local_now` — group scheduling
  /// (section 4.1) depends on identical inputs producing identical outputs.
  virtual PassResult pass(PassReason reason, sim::Nanos local_now) = 0;

  /// Program the one-shot timer for the next scheduling event, given that
  /// the chosen thread resumes at `local_now`.
  virtual void arm_timer(sim::Nanos local_now) = 0;

  /// Local admission control.  `gamma` is the wall-clock admission time.
  /// Returns false (and leaves the thread's constraints untouched) on
  /// rejection.  Aperiodic requests always succeed.
  virtual bool change_constraints(Thread& t, const rt::Constraints& c,
                                  sim::Nanos gamma) = 0;

  /// Cost of admission-control processing for this request, in cycles.
  /// Schedulers may discount requests that only commit an existing
  /// reservation (group admission's final step, section 4.4).
  [[nodiscard]] virtual sim::Cycles admission_cost_cycles(
      const Thread& t, const rt::Constraints& c) const = 0;

  /// Make a (new or migrated) ready thread runnable on this CPU.
  virtual void enqueue(Thread* t) = 0;

  /// Thread-context events.
  virtual void on_sleep(Thread& t, sim::Nanos wake_local) = 0;
  virtual void on_exit(Thread& t) = 0;

  /// Wake a sleeping thread early (interrupt-thread signalling).  Returns
  /// false if the thread was not sleeping here.
  virtual bool try_wake(Thread& t) = 0;

  /// Lightweight tasks.
  virtual void submit_task(Task task) = 0;

  /// Work stealing support (aperiodic, unbound threads only).
  [[nodiscard]] virtual std::size_t stealable_count() const = 0;
  virtual Thread* try_steal() = 0;

  /// Detach a named non-realtime thread from this scheduler's run or sleep
  /// queue so the kernel can re-home it (deliberate migration, src/global/ —
  /// unlike try_steal the caller picks the thread, and bound threads are
  /// eligible because the placement layer owns the binding decision).
  /// Returns false when the thread is not detachable here.  Default:
  /// migration unsupported.
  virtual bool detach_for_migration(Thread& /*t*/) { return false; }

  /// Introspection for tests and admission bookkeeping.
  [[nodiscard]] virtual std::size_t thread_count() const = 0;
  [[nodiscard]] virtual double admitted_utilization() const = 0;

  /// Invariant-audit checkpoint (audit/auditor.hpp), called by the executor
  /// after every handler once the switch has settled.  Default: no checks.
  virtual void audit_state(sim::Nanos /*local_now*/) {}
};

}  // namespace hrt::nk
