// Kernel thread object.
//
// A Nautilus thread bound to a CPU keeps its scheduler state in the most
// desirable NUMA zone and is never migrated; only aperiodic threads may move
// (work stealing, section 3.4).  RT bookkeeping (arrival, deadline, budget)
// is owned by the local scheduler but stored inline here so scheduler passes
// are O(1) per thread with no map lookups — the bounded-execution-time
// property of section 3.3 depends on that.
#pragma once

#include <cstdint>
#include <string>

#include "nautilus/action.hpp"
#include "rt/constraints.hpp"
#include "rt/queues.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hrt::nk {

class Behavior;

/// Sentinel for Thread::migrate_to: no migration pending.
inline constexpr std::uint32_t kNoMigrateTarget = 0xFFFFFFFFu;

class Thread {
 public:
  using Id = std::uint32_t;

  enum class State : std::uint8_t {
    kReady,     // in some scheduler queue (or pending arrival)
    kRunning,   // current on its CPU (includes spinning)
    kSleeping,  // timed block
    kExited,    // finished, awaiting reap
    kPooled,    // reaped, reusable
  };

  /// Real-time accounting, managed by the local scheduler.
  struct RtState {
    sim::Nanos gamma = 0;          // admission time
    sim::Nanos arrival = 0;        // current arrival's time
    sim::Nanos deadline = 0;       // current arrival's deadline
    sim::Nanos budget_left = 0;    // slice remaining for this arrival
    bool arrival_open = false;     // an arrival is being served
    bool in_pending = false;       // waiting for arrival time
    bool dispatched_this_arrival = false;
    double density = 0.0;          // sporadic: omega / (d - phase)
    std::uint64_t arrivals = 0;
    std::uint64_t completions = 0;    // arrivals whose budget was delivered
    std::uint64_t misses = 0;         // late or skipped arrivals
    sim::RunningStats miss_ns;        // lateness of late completions
    sim::RunningStats switch_latency; // arrival -> first dispatch
  };

  Id id = 0;
  std::string name;
  std::uint32_t cpu = 0;     // owning local scheduler
  /// Pending job-boundary migration target (global placement, src/global/):
  /// the source scheduler holds a reservation there and hands the thread off
  /// at its next arrival close.
  std::uint32_t migrate_to = kNoMigrateTarget;
  bool bound = false;        // bound threads are never stolen
  bool is_idle = false;      // the per-CPU idle thread
  State state = State::kReady;
  rt::Constraints constraints = rt::Constraints::aperiodic();

  Behavior* behavior = nullptr;  // owned by the kernel alongside the thread

  // Action progress (managed by the executor).
  Action action;
  bool action_active = false;
  sim::Nanos action_remaining = 0;
  bool spin_satisfied = false;  // flag fired while we were descheduled
  class WaitFlag* spinning_on = nullptr;  // registered spinner on this flag
  bool last_admit_ok = true;

  // Scheduler linkage.
  std::uint64_t rr_seq = 0;      // round-robin ordering within a priority
  sim::Nanos wake_time = 0;      // for sleepers
  rt::HeapIndex heap_index;      // which scheduler heap holds us, and where
  RtState rt;

  // NUMA placement of the thread's essential state (stack, TCB): allocated
  // from the buddy arena of the owning CPU's zone (section 2).
  std::uint64_t state_addr = 0;
  std::uint32_t state_zone = 0xFFFFFFFFu;

  // Lifetime statistics.
  sim::Nanos total_cpu_ns = 0;
  std::uint64_t dispatches = 0;

  [[nodiscard]] bool is_realtime() const { return constraints.is_realtime(); }

  /// Reset for reuse from the thread pool.
  void recycle(Id new_id, std::string new_name) {
    id = new_id;
    name = std::move(new_name);
    migrate_to = kNoMigrateTarget;
    state = State::kReady;
    constraints = rt::Constraints::aperiodic();
    behavior = nullptr;
    action = Action::exit();
    action_active = false;
    action_remaining = 0;
    spin_satisfied = false;
    spinning_on = nullptr;
    last_admit_ok = true;
    rr_seq = 0;
    wake_time = 0;
    heap_index = rt::HeapIndex{};
    rt = RtState{};
    total_cpu_ns = 0;
    dispatches = 0;
    bound = false;
    is_idle = false;
  }
};

}  // namespace hrt::nk
