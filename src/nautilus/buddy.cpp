#include "nautilus/buddy.hpp"

#include <algorithm>
#include <stdexcept>

namespace hrt::nk {

BuddyAllocator::BuddyAllocator(std::uint64_t base, std::uint32_t min_order,
                               std::uint32_t max_order)
    : base_(base), min_order_(min_order), levels_(max_order - min_order + 1) {
  if (max_order < min_order || max_order >= 63) {
    throw std::invalid_argument("BuddyAllocator: bad order range");
  }
  free_lists_.resize(levels_);
  free_lists_.back().push_back(0);  // one maximal block
}

std::uint32_t BuddyAllocator::order_for(std::uint64_t size) const {
  std::uint32_t order = min_order_;
  while (block_size(order) < size) ++order;
  return order;
}

std::optional<std::uint64_t> BuddyAllocator::alloc(std::uint64_t size) {
  if (size == 0) size = 1;
  const std::uint32_t want = order_for(size);
  if (want > min_order_ + levels_ - 1) return std::nullopt;
  // Find the smallest free block of order >= want.
  std::uint32_t have = want;
  while (have <= min_order_ + levels_ - 1 &&
         free_lists_[have - min_order_].empty()) {
    ++have;
  }
  if (have > min_order_ + levels_ - 1) return std::nullopt;

  std::uint64_t offset = free_lists_[have - min_order_].back();
  free_lists_[have - min_order_].pop_back();
  // Split down to the wanted order; at most (max_order - min_order) splits,
  // a compile-time-bounded path length.
  while (have > want) {
    --have;
    free_lists_[have - min_order_].push_back(offset + block_size(have));
  }
  live_.push_back(Live{offset, want});
  allocated_ += block_size(want);
  ++alloc_count_;
  return base_ + offset;
}

void BuddyAllocator::free(std::uint64_t addr) {
  if (addr < base_) throw std::invalid_argument("BuddyAllocator: bad free");
  std::uint64_t offset = addr - base_;
  auto it = std::find_if(live_.begin(), live_.end(), [&](const Live& l) {
    return l.offset == offset;
  });
  if (it == live_.end()) {
    throw std::invalid_argument("BuddyAllocator: free of unallocated block");
  }
  std::uint32_t order = it->order;
  live_.erase(it);
  allocated_ -= block_size(order);

  // Coalesce with the buddy while it is free.
  while (order < min_order_ + levels_ - 1) {
    const std::uint64_t buddy = offset ^ block_size(order);
    auto& list = free_lists_[order - min_order_];
    auto bit = std::find(list.begin(), list.end(), buddy);
    if (bit == list.end()) break;
    list.erase(bit);
    offset = std::min(offset, buddy);
    ++order;
  }
  free_lists_[order - min_order_].push_back(offset);
}

std::uint64_t BuddyAllocator::largest_free_block() const {
  for (std::uint32_t i = levels_; i-- > 0;) {
    if (!free_lists_[i].empty()) return block_size(min_order_ + i);
  }
  return 0;
}

bool BuddyAllocator::check_invariants() const {
  // Collect every block (free and live) as [start, end) and verify they
  // tile the arena without overlap.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (std::uint32_t i = 0; i < levels_; ++i) {
    for (std::uint64_t off : free_lists_[i]) {
      spans.emplace_back(off, off + block_size(min_order_ + i));
    }
  }
  for (const Live& l : live_) {
    spans.emplace_back(l.offset, l.offset + block_size(l.order));
  }
  std::sort(spans.begin(), spans.end());
  std::uint64_t cursor = 0;
  for (const auto& [s, e] : spans) {
    if (s != cursor) return false;
    cursor = e;
  }
  return cursor == capacity();
}

}  // namespace hrt::nk
