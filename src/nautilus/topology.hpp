// Minimal NUMA topology description.
//
// Nautilus guarantees that a bound thread's essential state lives in the
// most desirable zone (section 2).  The simulated cost model charges no
// extra latency for NUMA (the Phi is one socket), but zone assignment is
// tracked so allocation locality is testable and the R415's two sockets are
// represented.
#pragma once

#include <cstdint>
#include <vector>

namespace hrt::nk {

class Topology {
 public:
  Topology(std::uint32_t num_cpus, std::uint32_t num_zones)
      : num_cpus_(num_cpus), num_zones_(num_zones == 0 ? 1 : num_zones) {}

  [[nodiscard]] std::uint32_t num_cpus() const { return num_cpus_; }
  [[nodiscard]] std::uint32_t num_zones() const { return num_zones_; }

  /// Zone of a CPU: CPUs are divided into contiguous equal blocks.
  [[nodiscard]] std::uint32_t zone_of(std::uint32_t cpu) const {
    const std::uint32_t per = (num_cpus_ + num_zones_ - 1) / num_zones_;
    const std::uint32_t z = cpu / per;
    return z < num_zones_ ? z : num_zones_ - 1;
  }

  [[nodiscard]] std::vector<std::uint32_t> cpus_in_zone(
      std::uint32_t zone) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = 0; c < num_cpus_; ++c) {
      if (zone_of(c) == zone) out.push_back(c);
    }
    return out;
  }

 private:
  std::uint32_t num_cpus_;
  std::uint32_t num_zones_;
};

}  // namespace hrt::nk
