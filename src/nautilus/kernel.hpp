// The Nautilus-model kernel: thread lifecycle, per-CPU executors and
// schedulers, interrupt steering, device handler registry, work stealing,
// and the thread pool.
//
// As in the real framework (section 2), everything runs "in kernel mode":
// there are no system calls, no page faults, and no DPC/softIRQ machinery —
// only interrupt handlers and threads (plus the scheduler's lightweight
// tasks).  The kernel is policy-free about scheduling: a SchedulerFactory
// supplies one SchedulerBase per CPU (the hard real-time scheduler from rt/,
// or a baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "nautilus/behavior.hpp"
#include "nautilus/buddy.hpp"
#include "nautilus/executor.hpp"
#include "nautilus/scheduler.hpp"
#include "nautilus/sync.hpp"
#include "nautilus/thread.hpp"
#include "nautilus/topology.hpp"
#include "timesync/calibration.hpp"

namespace hrt::audit {
class Auditor;
}

namespace hrt::global {
class UtilizationLedger;
}

namespace hrt::telemetry {
class Telemetry;
}

namespace hrt::nk {

class Kernel {
 public:
  using SchedulerFactory =
      std::function<std::unique_ptr<SchedulerBase>(Kernel&, std::uint32_t)>;

  struct Options {
    SchedulerFactory scheduler_factory;  // required
    bool work_stealing = false;
    sim::Nanos steal_poll_interval = sim::millis(1);
    std::uint32_t interrupt_laden_cpus = 1;  // section 3.5 default partition
    bool tpr_steering = true;  // raise TPR while an RT thread runs (3.5)
    bool calibrate_tsc = true;
    bool start_smi_source = true;
    std::uint32_t numa_zones = 1;
    /// Per-zone buddy arena: thread stacks + scheduler state are allocated
    /// from the owning CPU's zone (section 2: state "is guaranteed to
    /// always be in the most desirable zone").
    std::uint32_t zone_arena_min_order = 12;  // 4 KiB blocks
    std::uint32_t zone_arena_max_order = 26;  // 64 MiB per zone
    std::uint64_t thread_state_bytes = 16384; // stack + TCB per thread
    /// Invariant auditor shared by all schedulers and group collectives
    /// (owned by the caller, typically rt::System); null disables audits.
    audit::Auditor* auditor = nullptr;
    /// Per-CPU utilization ledger for the global placement subsystem
    /// (global/ledger.hpp), fed by the local schedulers' admission and
    /// detach events; owned by the caller, null disables the feed.
    global::UtilizationLedger* placement_ledger = nullptr;
    /// Telemetry hub (telemetry/telemetry.hpp): flight recorder, metrics,
    /// SLO monitor.  Owned by the caller (typically rt::System); null
    /// disables all instrumentation at the cost of one pointer test.
    telemetry::Telemetry* telemetry = nullptr;
  };

  /// Per-CPU GPIO instrumentation for the external-scope experiment
  /// (Figure 4).  Pins: 0 = watched thread active, 1 = scheduler pass,
  /// 2 = interrupt handler.
  struct ScopeConfig {
    bool enabled = false;
    std::uint32_t cpu = 0;
    Thread* watch_thread = nullptr;
  };

  Kernel(hw::Machine& machine, Options options);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Bring the system up: TSC calibration, executors + idle threads on every
  /// CPU, SMI source start.  Must be called exactly once, before any
  /// create_thread.
  void boot();

  [[nodiscard]] bool booted() const { return booted_; }

  /// Create a thread bound to `cpu`, initially aperiodic (section 3.1:
  /// "newly created threads begin their life in this class").
  Thread* create_thread(std::string name, std::unique_ptr<Behavior> behavior,
                        std::uint32_t cpu,
                        rt::AperiodicPriority priority = rt::kDefaultPriority,
                        bool bound = true);

  /// Batch-spawn building blocks (rt::System::spawn_batch).  A parked
  /// create fully materializes the thread — TCB from the zone arena pool,
  /// state placed, behavior attached — but does NOT enqueue it or kick the
  /// CPU, so a failed group admission can abort with nothing observable
  /// having happened on any scheduler.
  Thread* create_thread_parked(
      std::string name, std::unique_ptr<Behavior> behavior, std::uint32_t cpu,
      rt::AperiodicPriority priority = rt::kDefaultPriority, bool bound = true);

  /// Publish a parked batch: enqueue every thread, then kick each distinct
  /// CPU exactly once — one IPI per CPU instead of one per thread is half
  /// the batch-spawn amortization (the other half is the single group
  /// admission pass in rt::LocalScheduler::reserve_batch).
  void commit_thread_batch(const std::vector<Thread*>& batch);

  /// Roll a parked batch back: return every thread to the pool.  Legal only
  /// for threads from create_thread_parked that were never committed.
  void abort_thread_batch(const std::vector<Thread*>& batch);

  /// Grow the thread pool to at least `n` entries so a subsequent batch
  /// spawn allocates no new TCBs on the hot path.
  void prewarm_thread_pool(std::size_t n);

  /// Return an exited thread to the pool.
  void reap(Thread* t);

  /// Thread-pool statistics.
  [[nodiscard]] std::size_t pool_size() const { return pool_.size(); }
  [[nodiscard]] std::uint64_t pool_reuses() const { return pool_reuses_; }

  [[nodiscard]] hw::Machine& machine() { return machine_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] CpuExecutor& executor(std::uint32_t cpu) {
    return *executors_[cpu];
  }
  [[nodiscard]] SchedulerBase& scheduler(std::uint32_t cpu) {
    return *schedulers_[cpu];
  }
  [[nodiscard]] Thread* idle_thread(std::uint32_t cpu) {
    return idle_threads_[cpu];
  }
  [[nodiscard]] std::uint32_t num_cpus() const {
    return machine_.num_cpus();
  }
  [[nodiscard]] const timesync::CalibrationResult& calibration() const {
    return calibration_;
  }
  [[nodiscard]] audit::Auditor* auditor() const { return options_.auditor; }
  [[nodiscard]] telemetry::Telemetry* telemetry() const {
    return options_.telemetry;
  }

  /// Submit a lightweight task to a CPU's scheduler.
  void submit_task(std::uint32_t cpu, Task task);

  /// Register a driver for a device vector: the bounded handler cost
  /// (Nautilus drivers promise deterministic path length, section 2) and an
  /// optional top-half callback run at handler end.
  void register_device_handler(hw::Vector v, sim::Cycles cost,
                               std::function<void()> on_irq = nullptr);
  [[nodiscard]] sim::Cycles device_handler_cost(hw::Vector v) const;
  void run_device_callback(hw::Vector v);

  /// Route all registered device vectors into the interrupt-laden partition
  /// (round-robin over its CPUs).
  void apply_interrupt_partition();

  /// Is `cpu` in the interrupt-free partition?
  [[nodiscard]] bool interrupt_free(std::uint32_t cpu) const {
    return cpu >= options_.interrupt_laden_cpus;
  }

  /// WaitFlag wake path.
  void notify_flag(Thread* t, WaitFlag* f);

  /// Wake a sleeping thread early and kick its CPU.  Returns false if it
  /// was not sleeping.
  bool wake_thread(Thread* t) {
    if (!schedulers_[t->cpu]->try_wake(*t)) return false;
    machine_.cpu(t->cpu).raise(hw::kKickVector);
    return true;
  }

  /// Power-of-two-random-choices work stealing (section 3.4).  Returns the
  /// stolen thread (now enqueued at `thief`) or nullptr.
  Thread* steal_for(std::uint32_t thief);
  [[nodiscard]] std::uint64_t steals() const { return steals_; }

  /// Deliberately re-home a non-realtime thread onto `to` (global placement
  /// and rebalancing, src/global/).  Unlike opportunistic stealing, this
  /// moves a named thread — bound or not — and re-places its stack/TCB into
  /// the destination zone's arena.  The thread must be parked (ready in a
  /// run queue, or sleeping); a running or real-time thread is refused
  /// (false).  RT threads migrate only at job boundaries, through
  /// rt::LocalScheduler::request_migration.
  bool migrate_aperiodic(Thread* t, std::uint32_t to);
  [[nodiscard]] std::uint64_t aperiodic_migrations() const {
    return aperiodic_migrations_;
  }

  /// Scope instrumentation.
  void set_scope(ScopeConfig cfg) { scope_ = cfg; }
  [[nodiscard]] const ScopeConfig& scope() const { return scope_; }

  /// Sum of thread objects ever created (pool reuses don't count twice).
  [[nodiscard]] std::size_t threads_created() const {
    return threads_.size();
  }

  /// The buddy arena serving a NUMA zone's allocations.
  [[nodiscard]] BuddyAllocator& zone_arena(std::uint32_t zone) {
    return *zone_arenas_[zone];
  }
  [[nodiscard]] BuddyAllocator& zone_arena_of_cpu(std::uint32_t cpu) {
    return *zone_arenas_[topology_.zone_of(cpu)];
  }

  /// All live (non-pooled) threads, for diagnostics.
  [[nodiscard]] std::vector<Thread*> live_threads() const;

 private:
  Thread* allocate_thread(std::string name);
  void place_thread_state(Thread* t);

  hw::Machine& machine_;
  Options options_;
  Topology topology_;
  bool booted_ = false;

  std::vector<std::unique_ptr<CpuExecutor>> executors_;
  std::vector<std::unique_ptr<SchedulerBase>> schedulers_;
  std::vector<Thread*> idle_threads_;

  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<std::unique_ptr<Behavior>> behaviors_;
  std::vector<std::unique_ptr<BuddyAllocator>> zone_arenas_;
  std::vector<Thread*> pool_;
  std::uint64_t pool_reuses_ = 0;
  Thread::Id next_id_ = 1;

  struct DeviceHandler {
    sim::Cycles cost = 0;
    std::function<void()> on_irq;
    bool registered = false;
  };
  std::vector<DeviceHandler> device_handlers_;

  timesync::CalibrationResult calibration_;
  std::uint64_t steals_ = 0;
  std::uint64_t aperiodic_migrations_ = 0;
  ScopeConfig scope_;
};

}  // namespace hrt::nk
