#include "nautilus/executor.hpp"

#include <stdexcept>
#include <utility>

#include "nautilus/behavior.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/sync.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::nk {

namespace {
constexpr int kPinThread = 0;
constexpr int kPinPass = 1;
constexpr int kPinIrq = 2;
}  // namespace

CpuExecutor::CpuExecutor(Kernel& kernel, std::uint32_t cpu_id,
                         SchedulerBase* sched)
    : kernel_(kernel),
      machine_(kernel.machine()),
      engine_(machine_.engine_for_cpu(cpu_id)),
      cpu_(machine_.cpu(cpu_id)),
      cpu_id_(cpu_id),
      sched_(sched) {}

sim::Nanos CpuExecutor::wall_now() const { return cpu_.tsc().wall_ns(); }

sim::Nanos CpuExecutor::cost_ns(sim::Cycles cycles) {
  if (cycles <= 0) return 0;
  const auto& spec = machine_.spec();
  const sim::Cycles j = cpu_.rng().jittered(cycles, spec.cost.jitter_rel_std);
  sim::Nanos ns = spec.freq.cycles_to_ns_ceil(j);
  return ns < 1 ? 1 : ns;
}

void CpuExecutor::begin(Thread* idle) {
  cpu_.set_deliver_hook([this](hw::Vector v) { deliver(v); });
  current_ = idle;
  idle->state = Thread::State::kRunning;
  ++idle->dispatches;
  run_span_start_ = engine_.now();
  run_span_open_ = true;
  sched_->attach(this);
  mode_ = Mode::kThread;
  start_action();
  sched_->arm_timer(wall_now());
}

void CpuExecutor::set_inflight(sim::Nanos end, std::function<void()> cont) {
  const sim::Nanos now = engine_.now();
  stage_start_ = now;
  stage_end_ = end < now ? now : end;
  stage_cont_ = std::move(cont);
  inflight_ = engine_.schedule_at(stage_end_, [this] {
    inflight_.reset();
    auto c = std::move(stage_cont_);
    stage_cont_ = nullptr;
    c();
  });
}

void CpuExecutor::clear_inflight() {
  engine_.cancel(inflight_);
  inflight_.reset();
}

void CpuExecutor::close_run_span() {
  if (!run_span_open_ || current_ == nullptr) return;
  const sim::Nanos span = engine_.now() - run_span_start_;
  current_->total_cpu_ns += span;
  if (current_->is_realtime() && current_->rt.arrival_open) {
    current_->rt.budget_left -= span;
  }
  run_span_open_ = false;
}

void CpuExecutor::sync_run_span() {
  if (run_span_open_) {
    close_run_span();
    run_span_start_ = engine_.now();
    run_span_open_ = true;
  }
}

void CpuExecutor::deliver(hw::Vector v) {
  // The Cpu only invokes this when the vector is acceptable: interrupts on,
  // not frozen, TPR passed.  Modes kHandler/kSchedCall keep interrupts off,
  // so we are in kThread or kHalted here.
  cpu_.set_interrupts_enabled(false);
  const sim::Nanos now = engine_.now();
  machine_.trace().record(now, cpu_id_, sim::TraceKind::kIrqEnter, v);
  const auto& scope = kernel_.scope();
  if (scope.enabled && scope.cpu == cpu_id_) {
    machine_.gpio().set_pin(now, cpu_id_, kPinIrq, true);
  }
  if (mode_ == Mode::kThread) suspend_current();
  if (v == hw::kTimerVector) {
    begin_sched_handler(PassReason::kTimer);
  } else if (v == hw::kKickVector) {
    if (auto* tel = kernel_.telemetry()) tel->on_kick(cpu_id_, now);
    begin_sched_handler(PassReason::kKick);
  } else {
    begin_device_handler(v);
  }
}

void CpuExecutor::suspend_current() {
  close_run_span();
  if (inflight_.valid()) {
    ++preemptions_;
    if (current_->action.kind == Action::Kind::kCompute) {
      sim::Nanos done = engine_.now() - stage_start_;
      if (done > current_->action_remaining) done = current_->action_remaining;
      current_->action_remaining -= done;
    } else if (current_->action.kind == Action::Kind::kSpinUntil) {
      // Interrupted during the spin-notice window; observe on resume.
      current_->spin_satisfied = true;
    }
    clear_inflight();
    stage_cont_ = nullptr;
  }
}

void CpuExecutor::begin_sched_handler(PassReason reason) {
  const sim::Nanos now = engine_.now();
  const auto& cost = machine_.spec().cost;
  const sim::Nanos irq_ns = cost_ns(cost.irq_dispatch);

  // The pass decision is computed here; its time is charged as part of the
  // handler span that follows.
  PassResult pr = sched_->pass(reason, wall_now());
  const sim::Nanos pass_ns = cost_ns(pr.pass_cycles);
  const sim::Nanos other_ns = cost_ns(cost.sched_other);
  const bool sw = pr.next != current_;
  const sim::Nanos sw_ns = sw ? cost_ns(cost.context_switch) : 0;

  const sim::Frequency f = machine_.spec().freq;
  overheads_.irq.add(static_cast<double>(f.ns_to_cycles(irq_ns)));
  overheads_.pass.add(static_cast<double>(f.ns_to_cycles(pass_ns)));
  overheads_.other.add(static_cast<double>(f.ns_to_cycles(other_ns)));
  if (sw) overheads_.swtch.add(static_cast<double>(f.ns_to_cycles(sw_ns)));
  ++overheads_.passes;
  if (sw) ++overheads_.switches;
  if (auto* tel = kernel_.telemetry()) {
    tel->on_pass_span(cpu_id_,
                      static_cast<double>(irq_ns + pass_ns + other_ns + sw_ns));
  }
  machine_.trace().record(now, cpu_id_, sim::TraceKind::kSchedPass,
                          static_cast<std::int64_t>(pass_seq_++));

  const auto& scope = kernel_.scope();
  if (scope.enabled && scope.cpu == cpu_id_) {
    engine_.schedule_at(
        now + irq_ns,
        [this] {
          machine_.gpio().set_pin(engine_.now(), cpu_id_, kPinPass,
                                  true);
        },
        sim::EventBand::kObserver);
    engine_.schedule_at(
        now + irq_ns + pass_ns,
        [this] {
          machine_.gpio().set_pin(engine_.now(), cpu_id_, kPinPass,
                                  false);
        },
        sim::EventBand::kObserver);
  }

  mode_ = Mode::kHandler;
  const sim::Nanos total = irq_ns + pass_ns + other_ns + sw_ns + pr.task_ns;
  set_inflight(now + total,
               [this, pr = std::move(pr)]() mutable {
                 finish_handler(std::move(pr), /*via_irq=*/true);
               });
}

void CpuExecutor::begin_device_handler(hw::Vector v) {
  const sim::Nanos dur = cost_ns(kernel_.device_handler_cost(v));
  mode_ = Mode::kHandler;
  set_inflight(engine_.now() + dur, [this, v] {
    const sim::Nanos now = engine_.now();
    machine_.trace().record(now, cpu_id_, sim::TraceKind::kIrqExit, v);
    const auto& scope = kernel_.scope();
    if (scope.enabled && scope.cpu == cpu_id_) {
      machine_.gpio().set_pin(now, cpu_id_, kPinIrq, false);
    }
    kernel_.run_device_callback(v);
    // Return from interrupt without a scheduler pass; if the top half woke
    // anything, it raised a kick that will be taken right after we re-enable
    // interrupts below.
    run_span_start_ = now;
    run_span_open_ = true;
    mode_ = Mode::kThread;
    start_action();
    maybe_enable_interrupts();
  });
}

void CpuExecutor::finish_handler(PassResult pr, bool via_irq) {
  const sim::Nanos now = engine_.now();
  if (via_irq) {
    machine_.trace().record(now, cpu_id_, sim::TraceKind::kIrqExit,
                            hw::kTimerVector);
    const auto& scope = kernel_.scope();
    if (scope.enabled && scope.cpu == cpu_id_) {
      machine_.gpio().set_pin(now, cpu_id_, kPinIrq, false);
    }
  }
  for (auto& cb : pr.task_callbacks) cb();
  Thread* prev = current_;
  if (pr.next != current_) do_switch(pr.next);
  if (prev != nullptr && prev != current_ &&
      prev->state == Thread::State::kExited) {
    kernel_.reap(prev);
  }
  sched_->arm_timer(wall_now());
  // Invariant-audit checkpoint: the switch has settled and every queued
  // thread should be in a consistent state (no-op unless audits are on).
  sched_->audit_state(wall_now());
  run_span_start_ = now;
  run_span_open_ = true;
  mode_ = Mode::kThread;
  start_action();
  maybe_enable_interrupts();
}

void CpuExecutor::do_switch(Thread* next) {
  const sim::Nanos now = engine_.now();
  Thread* prev = current_;
  const auto& scope = kernel_.scope();
  if (prev != nullptr) {
    machine_.trace().record(now, cpu_id_, sim::TraceKind::kThreadInactive,
                            prev->id);
    if (scope.enabled && scope.cpu == cpu_id_ && scope.watch_thread == prev) {
      machine_.gpio().set_pin(now, cpu_id_, kPinThread, false);
    }
    if (prev->state == Thread::State::kRunning) {
      prev->state = Thread::State::kReady;
    }
  }
  current_ = next;
  next->state = Thread::State::kRunning;
  ++next->dispatches;
  if (next->is_realtime() && next->rt.arrival_open &&
      !next->rt.dispatched_this_arrival) {
    next->rt.dispatched_this_arrival = true;
    next->rt.switch_latency.add(
        static_cast<double>(wall_now() - next->rt.arrival));
  }
  // Interrupt steering (section 3.5): while a hard real-time thread runs,
  // only scheduling-related vectors may be delivered.
  if (kernel_.options().tpr_steering) {
    cpu_.set_tpr(next->is_realtime() ? hw::kTprRealTime : hw::kTprOpen);
  }
  machine_.trace().record(now, cpu_id_, sim::TraceKind::kSwitch, next->id);
  machine_.trace().record(now, cpu_id_, sim::TraceKind::kThreadActive,
                          next->id);
  if (auto* tel = kernel_.telemetry()) {
    tel->on_switch(cpu_id_, now, static_cast<std::uint32_t>(next->id));
  }
  if (scope.enabled && scope.cpu == cpu_id_ && scope.watch_thread == next) {
    machine_.gpio().set_pin(now, cpu_id_, kPinThread, true);
  }
}

void CpuExecutor::maybe_enable_interrupts() {
  if (mode_ == Mode::kHalted) {
    cpu_.set_interrupts_enabled(true);
    return;
  }
  if (mode_ == Mode::kThread) {
    const bool atomic = current_->action_active &&
                        current_->action.kind == Action::Kind::kAtomic;
    if (!atomic) cpu_.set_interrupts_enabled(true);
  }
  // kHandler / kSchedCall: interrupts stay masked until the stage ends.
}

void CpuExecutor::start_action() {
  for (;;) {
    Thread* t = current_;
    const sim::Nanos now = engine_.now();
    if (!t->action_active) {
      ThreadCtx ctx{kernel_, *t, wall_now(), t->last_admit_ok};
      t->action = t->behavior->next(ctx);
      t->action_active = true;
      t->action_remaining = t->action.duration;
      t->spin_satisfied = false;
    }
    Action& a = t->action;
    switch (a.kind) {
      case Action::Kind::kCompute: {
        if (t->action_remaining > 0) {
          mode_ = Mode::kThread;
          set_inflight(now + t->action_remaining, [this] {
            finish_current_action();
            start_action();
            maybe_enable_interrupts();
          });
          return;
        }
        finish_current_action();
        continue;
      }
      case Action::Kind::kSpinUntil: {
        mode_ = Mode::kThread;
        if (a.flag->is_set() || t->spin_satisfied) {
          set_inflight(
              now + cost_ns(machine_.spec().cost.spin_notice), [this] {
                finish_current_action();
                start_action();
                maybe_enable_interrupts();
              });
        } else {
          if (t->spinning_on != a.flag) {
            a.flag->add_spinner(t);
            t->spinning_on = a.flag;
          }
          // Spinning: CPU is busy but no completion is scheduled; the wake
          // comes from notify_flag or from re-dispatch.
        }
        return;
      }
      case Action::Kind::kAtomic: {
        mode_ = Mode::kThread;
        cpu_.set_interrupts_enabled(false);
        const sim::Nanos hold =
            cost_ns(machine_.spec().freq.ns_to_cycles(a.duration));
        const sim::Nanos done = a.resource != nullptr
                                    ? a.resource->reserve(now, hold)
                                    : now + hold;
        set_inflight(done, [this] {
          finish_current_action();
          start_action();
          maybe_enable_interrupts();
        });
        return;
      }
      case Action::Kind::kSleep:
      case Action::Kind::kYield:
      case Action::Kind::kExit:
      case Action::Kind::kChangeConstraints:
        begin_sched_call();
        return;
      case Action::Kind::kHalt: {
        t->action_active = false;
        close_run_span();
        mode_ = Mode::kHalted;
        return;
      }
    }
  }
}

void CpuExecutor::finish_current_action() {
  Thread* t = current_;
  const sim::Nanos now = engine_.now();
  if (now == last_complete_time_) {
    if (++completions_at_time_ > 200000) {
      throw std::logic_error("behavior livelock: zero-width action loop on cpu " +
                             std::to_string(cpu_id_));
    }
  } else {
    last_complete_time_ = now;
    completions_at_time_ = 0;
  }
  Action a = std::move(t->action);
  t->action_active = false;
  t->action_remaining = 0;
  if (t->spinning_on != nullptr) {
    t->spinning_on->remove_spinner(t);
    t->spinning_on = nullptr;
  }
  t->spin_satisfied = false;
  if (a.on_complete) {
    ThreadCtx ctx{kernel_, *t, wall_now(), t->last_admit_ok};
    a.on_complete(ctx);
  }
}

void CpuExecutor::begin_sched_call() {
  cpu_.set_interrupts_enabled(false);
  close_run_span();
  const sim::Nanos now = engine_.now();
  const auto& cost = machine_.spec().cost;
  Thread* t = current_;
  Action a = std::move(t->action);
  t->action_active = false;

  sim::Nanos extra = 0;
  PassReason reason = PassReason::kYield;
  switch (a.kind) {
    case Action::Kind::kYield:
      reason = PassReason::kYield;
      break;
    case Action::Kind::kSleep: {
      t->state = Thread::State::kSleeping;
      t->wake_time = wall_now() + a.duration;
      sched_->on_sleep(*t, t->wake_time);
      reason = PassReason::kSleep;
      break;
    }
    case Action::Kind::kExit: {
      t->state = Thread::State::kExited;
      sched_->on_exit(*t);
      reason = PassReason::kExit;
      break;
    }
    case Action::Kind::kChangeConstraints: {
      const sim::Nanos adm_ns =
          cost_ns(sched_->admission_cost_cycles(*t, a.constraints));
      extra += adm_ns;
      // Gamma is the wall-clock time admission processing completes.
      const sim::Nanos gamma = wall_now() + adm_ns;
      t->last_admit_ok =
          sched_->change_constraints(*t, a.constraints, gamma);
      reason = PassReason::kChangeConstraints;
      break;
    }
    default:
      throw std::logic_error("begin_sched_call: not a scheduler action");
  }

  PassResult pr = sched_->pass(reason, wall_now());
  const sim::Nanos pass_ns = cost_ns(pr.pass_cycles);
  const sim::Nanos other_ns = cost_ns(cost.sched_other);
  const bool sw = pr.next != t;
  const sim::Nanos sw_ns = sw ? cost_ns(cost.context_switch) : 0;

  const sim::Frequency f = machine_.spec().freq;
  overheads_.pass.add(static_cast<double>(f.ns_to_cycles(pass_ns)));
  overheads_.other.add(static_cast<double>(f.ns_to_cycles(other_ns)));
  if (sw) overheads_.swtch.add(static_cast<double>(f.ns_to_cycles(sw_ns)));
  ++overheads_.passes;
  if (sw) ++overheads_.switches;
  if (auto* tel = kernel_.telemetry()) {
    tel->on_pass_span(cpu_id_,
                      static_cast<double>(pass_ns + other_ns + sw_ns));
  }

  mode_ = Mode::kSchedCall;
  const sim::Nanos total = extra + pass_ns + other_ns + sw_ns + pr.task_ns;
  set_inflight(now + total,
               [this, pr = std::move(pr), fx = std::move(a.on_complete),
                t]() mutable {
                 if (fx && t->state != Thread::State::kExited) {
                   ThreadCtx ctx{kernel_, *t, wall_now(), t->last_admit_ok};
                   fx(ctx);
                 }
                 finish_handler(std::move(pr), /*via_irq=*/false);
               });
}

void CpuExecutor::notify_flag(Thread* t, WaitFlag* f) {
  if (current_ == t && mode_ == Mode::kThread && t->action_active &&
      t->action.kind == Action::Kind::kSpinUntil && t->action.flag == f &&
      !inflight_.valid()) {
    // Actively spinning right now: the spinner observes the flag after the
    // cache line propagates.
    set_inflight(engine_.now() +
                     cost_ns(machine_.spec().cost.spin_notice),
                 [this] {
                   finish_current_action();
                   start_action();
                   maybe_enable_interrupts();
                 });
  } else {
    t->spin_satisfied = true;
  }
}

void CpuExecutor::on_freeze() {
  if (!inflight_.valid()) {
    freeze_pending_resume_ = false;
    return;
  }
  const sim::Nanos now = engine_.now();
  clear_inflight();
  if (mode_ == Mode::kThread &&
      current_->action.kind == Action::Kind::kCompute) {
    // Charge real progress; the remainder resumes after the freeze.  Note
    // the run span stays open: the scheduler will charge the frozen window
    // against the thread's budget, because software cannot tell missing
    // time from execution (section 3.6).
    sim::Nanos done = now - stage_start_;
    if (done > current_->action_remaining) done = current_->action_remaining;
    current_->action_remaining -= done;
    freeze_resume_delay_ = current_->action_remaining;
  } else {
    freeze_resume_delay_ = stage_end_ - now;
    if (freeze_resume_delay_ < 0) freeze_resume_delay_ = 0;
  }
  freeze_pending_resume_ = true;
}

void CpuExecutor::on_unfreeze(sim::Nanos /*duration*/) {
  if (!freeze_pending_resume_) return;
  freeze_pending_resume_ = false;
  auto cont = std::move(stage_cont_);
  set_inflight(engine_.now() + freeze_resume_delay_,
               std::move(cont));
}

}  // namespace hrt::nk
