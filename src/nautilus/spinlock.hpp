// Ticket spinlock model.
//
// Each local scheduler "has lockable state" and kernel features like
// thread-pool reaping and work stealing take such locks for bounded times
// (section 3.4).  This primitive composes the existing simulation pieces —
// a serialized ticket counter plus a per-ticket spin flag — so behaviors
// can express bounded critical sections whose contention costs are charged
// faithfully.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nautilus/action.hpp"
#include "nautilus/kernel.hpp"
#include "nautilus/sync.hpp"

namespace hrt::nk {

class SpinLock {
 public:
  explicit SpinLock(Kernel& kernel);

  /// Per-acquisition handle (analogous to the ticket you drew).
  struct Ticket {
    std::uint32_t number = 0;
  };

  /// Step 1: draw a ticket (serialized fetch-add on the lock line).
  [[nodiscard]] Action take_ticket_action(Ticket* ticket);
  /// Step 2: spin until our ticket is served.  The holder of the previous
  /// ticket must release before this completes.
  [[nodiscard]] Action wait_action(const Ticket* ticket);
  /// Step 3 (after the critical section): serve the next ticket.
  [[nodiscard]] Action release_action();

  [[nodiscard]] bool held() const { return serving_ < next_ticket_; }
  [[nodiscard]] std::uint32_t acquisitions() const { return next_ticket_; }

 private:
  WaitFlag& flag_for(std::uint32_t ticket);

  Kernel& kernel_;
  SeqResource line_;
  sim::Nanos atomic_ns_;
  std::uint32_t next_ticket_ = 0;
  std::uint32_t serving_ = 0;  // tickets [0, serving_) have released
  std::vector<std::unique_ptr<WaitFlag>> flags_;
};

}  // namespace hrt::nk
