#include "nautilus/kernel.hpp"

#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace hrt::nk {

namespace {

/// The per-CPU idle thread: optionally runs the work stealer, otherwise
/// halts until the next interrupt (section 3.4: "the work stealer ...
/// operates as part of the idle thread that each CPU runs").
class IdleBehavior final : public Behavior {
 public:
  IdleBehavior(std::uint32_t cpu, sim::Nanos probe_ns)
      : cpu_(cpu), probe_ns_(probe_ns) {}

  Action next(ThreadCtx& ctx) override {
    if (!ctx.kernel.options().work_stealing) {
      return Action::halt();
    }
    if (!probed_) {
      probed_ = true;
      return Action::compute(probe_ns_, [this](ThreadCtx& c) {
        stole_ = c.kernel.steal_for(cpu_) != nullptr;
      });
    }
    probed_ = false;
    if (stole_) {
      // Immediately yield to the stolen work.
      return Action::yield();
    }
    // Nothing to steal: pause for the poll interval before probing again.
    return Action::compute(ctx.kernel.options().steal_poll_interval);
  }

  [[nodiscard]] std::string describe() const override { return "idle"; }

 private:
  std::uint32_t cpu_;
  sim::Nanos probe_ns_;
  bool probed_ = false;
  bool stole_ = false;
};

}  // namespace

void WaitFlag::set() {
  if (set_) return;
  set_ = true;
  std::vector<Thread*> to_wake = std::move(spinners_);
  spinners_.clear();
  for (Thread* t : to_wake) {
    kernel_.notify_flag(t, this);
  }
}

Kernel::Kernel(hw::Machine& machine, Options options)
    : machine_(machine),
      options_(std::move(options)),
      topology_(machine.num_cpus(),
                options_.numa_zones == 0 ? 1 : options_.numa_zones) {
  if (!options_.scheduler_factory) {
    throw std::invalid_argument("Kernel: scheduler_factory is required");
  }
  device_handlers_.resize(256);
  // One buddy arena per NUMA zone, at disjoint simulated physical bases.
  const std::uint64_t arena_span = 1ull << (options_.zone_arena_max_order + 1);
  for (std::uint32_t z = 0; z < topology_.num_zones(); ++z) {
    zone_arenas_.push_back(std::make_unique<BuddyAllocator>(
        0x1000'0000ull + z * arena_span, options_.zone_arena_min_order,
        options_.zone_arena_max_order));
  }
}

Kernel::~Kernel() = default;

void Kernel::boot() {
  if (booted_) throw std::logic_error("Kernel::boot called twice");

  if (options_.calibrate_tsc) {
    calibration_ = timesync::calibrate(machine_);
  }

  machine_.set_freeze_hooks(hw::Machine::FreezeHooks{
      .on_freeze =
          [this](std::uint32_t cpu) {
            if (cpu < executors_.size()) executors_[cpu]->on_freeze();
          },
      .on_unfreeze =
          [this](std::uint32_t cpu, sim::Nanos d) {
            if (cpu < executors_.size()) executors_[cpu]->on_unfreeze(d);
          },
  });

  const std::uint32_t n = machine_.num_cpus();
  executors_.reserve(n);
  schedulers_.reserve(n);
  idle_threads_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    schedulers_.push_back(options_.scheduler_factory(*this, c));
    executors_.push_back(
        std::make_unique<CpuExecutor>(*this, c, schedulers_[c].get()));
  }

  const sim::Nanos probe_ns = machine_.spec().freq.cycles_to_ns_ceil(
      4 * machine_.spec().cost.cacheline_transfer);
  for (std::uint32_t c = 0; c < n; ++c) {
    Thread* idle = allocate_thread("idle" + std::to_string(c));
    idle->is_idle = true;
    idle->bound = true;
    idle->cpu = c;
    place_thread_state(idle);
    idle->constraints = rt::Constraints::aperiodic(rt::kIdlePriority);
    behaviors_.push_back(std::make_unique<IdleBehavior>(c, probe_ns));
    idle->behavior = behaviors_.back().get();
    idle_threads_.push_back(idle);
  }
  for (std::uint32_t c = 0; c < n; ++c) {
    executors_[c]->begin(idle_threads_[c]);
  }

  apply_interrupt_partition();
  if (options_.start_smi_source) {
    machine_.smi().start();
  }
  booted_ = true;
}

void Kernel::place_thread_state(Thread* t) {
  const std::uint32_t zone = topology_.zone_of(t->cpu);
  if (t->state_addr != 0 && t->state_zone == zone) return;  // already local
  if (t->state_addr != 0) {
    zone_arenas_[t->state_zone]->free(t->state_addr);
    t->state_addr = 0;
  }
  auto addr = zone_arenas_[zone]->alloc(options_.thread_state_bytes);
  if (!addr) {
    throw std::runtime_error("Kernel: zone arena exhausted");
  }
  t->state_addr = *addr;
  t->state_zone = zone;
}

Thread* Kernel::allocate_thread(std::string name) {
  if (!pool_.empty()) {
    Thread* t = pool_.back();
    pool_.pop_back();
    ++pool_reuses_;
    t->recycle(next_id_++, std::move(name));
    return t;
  }
  threads_.push_back(std::make_unique<Thread>());
  Thread* t = threads_.back().get();
  t->id = next_id_++;
  t->name = std::move(name);
  return t;
}

Thread* Kernel::create_thread(std::string name,
                              std::unique_ptr<Behavior> behavior,
                              std::uint32_t cpu,
                              rt::AperiodicPriority priority, bool bound) {
  Thread* t =
      create_thread_parked(std::move(name), std::move(behavior), cpu,
                           priority, bound);
  schedulers_[cpu]->enqueue(t);
  // Kick the target local scheduler so the new thread is noticed promptly.
  machine_.cpu(cpu).raise(hw::kKickVector);
  return t;
}

Thread* Kernel::create_thread_parked(std::string name,
                                     std::unique_ptr<Behavior> behavior,
                                     std::uint32_t cpu,
                                     rt::AperiodicPriority priority,
                                     bool bound) {
  if (!booted_) throw std::logic_error("Kernel: create_thread before boot");
  if (cpu >= machine_.num_cpus()) {
    throw std::out_of_range("Kernel: create_thread bad cpu");
  }
  Thread* t = allocate_thread(std::move(name));
  t->cpu = cpu;
  t->bound = bound;
  place_thread_state(t);
  t->constraints = rt::Constraints::aperiodic(priority);
  behaviors_.push_back(std::move(behavior));
  t->behavior = behaviors_.back().get();
  t->state = Thread::State::kReady;
  return t;
}

void Kernel::commit_thread_batch(const std::vector<Thread*>& batch) {
  std::vector<bool> kicked(machine_.num_cpus(), false);
  for (Thread* t : batch) {
    schedulers_[t->cpu]->enqueue(t);
    kicked[t->cpu] = true;
  }
  for (std::uint32_t c = 0; c < machine_.num_cpus(); ++c) {
    if (kicked[c]) machine_.cpu(c).raise(hw::kKickVector);
  }
}

void Kernel::abort_thread_batch(const std::vector<Thread*>& batch) {
  for (Thread* t : batch) reap(t);
}

void Kernel::prewarm_thread_pool(std::size_t n) {
  while (pool_.size() < n) {
    threads_.push_back(std::make_unique<Thread>());
    Thread* t = threads_.back().get();
    t->state = Thread::State::kPooled;
    pool_.push_back(t);
  }
}

void Kernel::reap(Thread* t) {
  t->state = Thread::State::kPooled;
  pool_.push_back(t);
}

void Kernel::submit_task(std::uint32_t cpu, Task task) {
  schedulers_[cpu]->submit_task(std::move(task));
  // Kick as a real IPI (engine-deferred), never a synchronous raise: a
  // thread may submit a task to its *own* CPU (the rebalancer does), and a
  // same-CPU raise with interrupts enabled would re-enter the executor in
  // the middle of the submitting thread's action.
  machine_.send_ipi(cpu, cpu, hw::kKickVector);
}

void Kernel::register_device_handler(hw::Vector v, sim::Cycles cost,
                                     std::function<void()> on_irq) {
  device_handlers_[v] =
      DeviceHandler{cost, std::move(on_irq), /*registered=*/true};
}

sim::Cycles Kernel::device_handler_cost(hw::Vector v) const {
  const auto& h = device_handlers_[v];
  // Unregistered vectors get a minimal spurious-interrupt cost.
  return h.registered ? h.cost : 200;
}

void Kernel::run_device_callback(hw::Vector v) {
  if (device_handlers_[v].on_irq) device_handlers_[v].on_irq();
}

void Kernel::apply_interrupt_partition() {
  std::uint32_t next = 0;
  const std::uint32_t laden =
      options_.interrupt_laden_cpus == 0 ? 1 : options_.interrupt_laden_cpus;
  for (std::uint32_t v = hw::kFirstDeviceVector; v <= hw::kLastDeviceVector;
       ++v) {
    if (device_handlers_[v].registered) {
      machine_.ioapic().route(static_cast<hw::Vector>(v), next % laden);
      ++next;
    }
  }
}

void Kernel::notify_flag(Thread* t, WaitFlag* f) {
  executors_[t->cpu]->notify_flag(t, f);
}

Thread* Kernel::steal_for(std::uint32_t thief) {
  const std::uint32_t n = machine_.num_cpus();
  if (n < 2) return nullptr;
  sim::Rng& rng = machine_.cpu(thief).rng();
  // Power-of-two-random-choices victim selection (section 3.4).
  std::uint32_t v1 = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
  std::uint32_t v2 = static_cast<std::uint32_t>(rng.uniform(0, n - 1));
  if (v1 == thief) v1 = (v1 + 1) % n;
  if (v2 == thief) v2 = (v2 + 1) % n;
  const std::uint32_t victim =
      schedulers_[v1]->stealable_count() >= schedulers_[v2]->stealable_count()
          ? v1
          : v2;
  if (schedulers_[victim]->stealable_count() == 0) return nullptr;
  Thread* t = schedulers_[victim]->try_steal();
  if (t == nullptr) return nullptr;
  ++steals_;
  t->cpu = thief;
  schedulers_[thief]->enqueue(t);
  return t;
}

bool Kernel::migrate_aperiodic(Thread* t, std::uint32_t to) {
  if (t == nullptr || to >= num_cpus() || t->cpu == to) return false;
  if (t->is_realtime() || t->is_idle) return false;
  if (executors_[t->cpu]->current() == t) return false;
  const bool sleeping = t->state == Thread::State::kSleeping;
  if (!sleeping && t->state != Thread::State::kReady) return false;
  if (!schedulers_[t->cpu]->detach_for_migration(*t)) return false;
  const std::uint32_t from = t->cpu;
  t->cpu = to;
  place_thread_state(t);  // stack/TCB follow the thread into the new zone
  if (sleeping) {
    // Still sleeping, just on the destination's sleep queue now; the
    // destination timer must cover the wake, hence the kick below.
    schedulers_[to]->on_sleep(*t, t->wake_time);
  } else {
    schedulers_[to]->enqueue(t);
  }
  ++aperiodic_migrations_;
  if (auto* tel = telemetry()) {
    tel->on_migration(to, machine_.cpu(to).tsc().wall_ns(),
                      static_cast<std::uint32_t>(t->id),
                      telemetry::EventKind::kAperiodicMigrate, from);
  }
  machine_.send_ipi(t->cpu, to, hw::kKickVector);
  return true;
}

std::vector<Thread*> Kernel::live_threads() const {
  std::vector<Thread*> out;
  for (const auto& t : threads_) {
    if (t->state != Thread::State::kPooled) out.push_back(t.get());
  }
  return out;
}

}  // namespace hrt::nk
