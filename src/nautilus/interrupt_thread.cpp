#include "nautilus/interrupt_thread.hpp"

namespace hrt::nk {

/// Bottom-half loop: process the backlog one interrupt at a time, then
/// sleep until the top half wakes us.
class InterruptThread::BottomHalf final : public Behavior {
 public:
  explicit BottomHalf(InterruptThread& owner) : owner_(owner) {}

  Action next(ThreadCtx&) override {
    if (owner_.processed_ < owner_.queued_) {
      return Action::compute(owner_.bottom_half_ns_, [this](ThreadCtx&) {
        ++owner_.processed_;
      });
    }
    // Nothing pending: block until the next top half wakes us.  The long
    // timeout is a liveness backstop, not a poll.
    return Action::sleep(sim::seconds(3600));
  }

  [[nodiscard]] std::string describe() const override {
    return "interrupt-thread";
  }

 private:
  InterruptThread& owner_;
};

InterruptThread::InterruptThread(Kernel& kernel, std::uint32_t cpu,
                                 sim::Cycles bottom_half_cost,
                                 rt::AperiodicPriority priority)
    : kernel_(kernel),
      bottom_half_ns_(kernel.machine().spec().freq.cycles_to_ns_ceil(
          bottom_half_cost)) {
  thread_ = kernel_.create_thread("irq-thread",
                                  std::make_unique<BottomHalf>(*this), cpu,
                                  priority);
}

void InterruptThread::attach_vector(hw::Vector vector,
                                    sim::Cycles top_half_cost) {
  kernel_.register_device_handler(vector, top_half_cost, [this] {
    ++queued_;
    kernel_.wake_thread(thread_);
  });
}

}  // namespace hrt::nk
