// CpuExecutor: executes thread Actions on one simulated CPU and charges
// time for every software path.
//
// The executor is the moral equivalent of the low-level context switch +
// interrupt entry code in Nautilus.  It owns exactly one in-flight timed
// stage at any moment:
//   * kThread:    the current thread's action is progressing (a completion
//                 event is scheduled, except while spinning on an unset flag)
//   * kHandler:   an interrupt handler occupies the CPU (irqs masked)
//   * kSchedCall: the current thread invoked the scheduler (yield / sleep /
//                 exit / change-constraints; irqs masked)
//   * kHalted:    the idle thread executed hlt; only an interrupt resumes us
//
// SMI freezes suspend the in-flight stage and resume it shifted by the
// stolen time, which is exactly how missing time manifests to software.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/machine.hpp"
#include "nautilus/scheduler.hpp"
#include "nautilus/thread.hpp"
#include "sim/stats.hpp"

namespace hrt::nk {

class Kernel;
class WaitFlag;

/// Per-CPU scheduler overhead accounting (cycles), regenerating Figure 5.
struct OverheadStats {
  sim::RunningStats irq;    // interrupt dispatch + EOI
  sim::RunningStats pass;   // scheduler pass ("resched")
  sim::RunningStats other;  // accounting + timer reprogram
  sim::RunningStats swtch;  // context switch
  std::uint64_t passes = 0;
  std::uint64_t switches = 0;
};

class CpuExecutor {
 public:
  CpuExecutor(Kernel& kernel, std::uint32_t cpu_id, SchedulerBase* sched);

  CpuExecutor(const CpuExecutor&) = delete;
  CpuExecutor& operator=(const CpuExecutor&) = delete;

  /// Install hardware hooks and start running the idle thread.
  void begin(Thread* idle);

  [[nodiscard]] Thread* current() const { return current_; }
  [[nodiscard]] std::uint32_t cpu_id() const { return cpu_id_; }
  [[nodiscard]] SchedulerBase& scheduler() { return *sched_; }

  /// This CPU's wall-clock estimate (calibrated TSC), the time base of all
  /// scheduling decisions.
  [[nodiscard]] sim::Nanos wall_now() const;

  /// SMI hooks (invoked by the machine through the kernel).
  void on_freeze();
  void on_unfreeze(sim::Nanos duration);

  /// A WaitFlag this thread may be spinning on was set.
  void notify_flag(Thread* t, WaitFlag* f);

  /// Charge the currently running thread for CPU time up to now (called
  /// before reading budget state outside a pass).
  void sync_run_span();

  [[nodiscard]] const OverheadStats& overheads() const { return overheads_; }
  [[nodiscard]] std::uint64_t preemptions() const { return preemptions_; }

  /// Convert a cycle cost to jittered nanoseconds, recording nothing.
  sim::Nanos cost_ns(sim::Cycles cycles);

 private:
  enum class Mode : std::uint8_t { kHalted, kThread, kHandler, kSchedCall };

  void deliver(hw::Vector v);
  void begin_sched_handler(PassReason reason);
  void begin_device_handler(hw::Vector v);
  void finish_handler(PassResult pr, bool via_irq);
  void do_switch(Thread* next);
  void start_action();
  void complete_action();
  void begin_sched_call();
  void maybe_enable_interrupts();
  void finish_current_action();
  void suspend_current();
  void close_run_span();
  void set_inflight(sim::Nanos end, std::function<void()> cont);
  void clear_inflight();

  Kernel& kernel_;
  hw::Machine& machine_;
  // This CPU's engine shard: every executor schedule/cancel is CPU-local
  // (completion events, handler ends), so it must stay on the shard owning
  // the CPU — EventIds are shard-local.  Same object as machine_.engine()
  // on an unsharded machine.
  sim::Engine& engine_;
  hw::Cpu& cpu_;
  std::uint32_t cpu_id_;
  SchedulerBase* sched_;

  Mode mode_ = Mode::kHalted;
  Thread* current_ = nullptr;

  // In-flight stage bookkeeping.
  sim::EventId inflight_;
  sim::Nanos stage_start_ = 0;
  sim::Nanos stage_end_ = 0;
  std::function<void()> stage_cont_;

  // Freeze bookkeeping.
  bool freeze_pending_resume_ = false;
  sim::Nanos freeze_resume_delay_ = 0;

  // CPU-time accounting for the current dispatch.
  sim::Nanos run_span_start_ = 0;
  bool run_span_open_ = false;

  // Livelock guard for zero-width behavior loops.
  sim::Nanos last_complete_time_ = -1;
  std::uint32_t completions_at_time_ = 0;

  OverheadStats overheads_;
  std::uint64_t preemptions_ = 0;
  std::uint64_t pass_seq_ = 0;
};

}  // namespace hrt::nk
