// Buddy-system allocator.
//
// Nautilus does all memory management with per-zone buddy allocators chosen
// by target NUMA zone (section 2): allocation is explicit, happens at
// deterministic cost, and there is no paging or movement afterward.  This is
// a real allocator over a simulated physical range — the kernel uses it to
// place thread stacks/state, and its determinism properties are unit-tested
// (constant split/merge depth bounds).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace hrt::nk {

class BuddyAllocator {
 public:
  /// Manages [base, base + (1 << max_order) * min_block) bytes.
  /// min_block must be a power of two.
  BuddyAllocator(std::uint64_t base, std::uint32_t min_order,
                 std::uint32_t max_order);

  BuddyAllocator(const BuddyAllocator&) = delete;
  BuddyAllocator& operator=(const BuddyAllocator&) = delete;

  /// Allocate at least `size` bytes; returns the block address, or nullopt
  /// when no block is available.
  std::optional<std::uint64_t> alloc(std::uint64_t size);

  /// Free a previously allocated block.  Throws on double free or on an
  /// address that was never returned by alloc.
  void free(std::uint64_t addr);

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t capacity() const {
    return 1ull << (min_order_ + levels_ - 1);
  }
  [[nodiscard]] std::uint64_t bytes_allocated() const { return allocated_; }
  [[nodiscard]] std::uint64_t free_bytes() const {
    return capacity() - allocated_;
  }
  [[nodiscard]] std::uint64_t alloc_count() const { return alloc_count_; }

  /// Largest contiguous block currently available, in bytes (0 if full).
  [[nodiscard]] std::uint64_t largest_free_block() const;

  /// Internal invariant check (free lists consistent, no overlapping
  /// blocks).  Used by tests.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Block {
    std::uint64_t addr;
  };

  [[nodiscard]] std::uint32_t order_for(std::uint64_t size) const;
  [[nodiscard]] std::uint64_t block_size(std::uint32_t order) const {
    return 1ull << order;
  }

  std::uint64_t base_;
  std::uint32_t min_order_;  // log2 of smallest block
  std::uint32_t levels_;     // number of orders managed
  std::uint64_t allocated_ = 0;
  std::uint64_t alloc_count_ = 0;

  // free_lists_[i] holds free blocks of order (min_order_ + i), as offsets
  // from base_.
  std::vector<std::vector<std::uint64_t>> free_lists_;

  struct Live {
    std::uint64_t offset;
    std::uint32_t order;
  };
  std::vector<Live> live_;  // allocated blocks (offset-sorted not required)
};

}  // namespace hrt::nk
