#include "rt/cyclic_executive.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace hrt::rt {

namespace {

sim::Nanos gcd64(sim::Nanos a, sim::Nanos b) {
  while (b != 0) {
    const sim::Nanos t = a % b;
    a = b;
    b = t;
  }
  return a;
}

sim::Nanos hyperperiod_of(const std::vector<PeriodicTask>& set) {
  sim::Nanos h = 1;
  for (const auto& t : set) {
    h = h / gcd64(h, t.period) * t.period;
    if (h <= 0 || h > sim::seconds(10)) return -1;  // unreasonable horizon
  }
  return h;
}

}  // namespace

int CyclicExecutive::task_at(sim::Nanos t) const {
  if (frame <= 0 || frames.empty()) return -1;
  const std::size_t fi =
      static_cast<std::size_t>((t % hyperperiod) / frame);
  sim::Nanos off = (t % hyperperiod) % frame;
  for (const FrameEntry& e : frames[fi]) {
    if (off < e.duration) return static_cast<int>(e.task);
    off -= e.duration;
  }
  return -1;
}

bool CyclicExecutive::valid_for(const std::vector<PeriodicTask>& set) const {
  if (frame <= 0 || hyperperiod <= 0) return false;
  if (frames.size() != static_cast<std::size_t>(hyperperiod / frame)) {
    return false;
  }
  // No frame overflows.
  for (const auto& f : frames) {
    sim::Nanos used = 0;
    for (const auto& e : f) used += e.duration;
    if (used > frame) return false;
  }
  // Every job receives its slice within [release, deadline].
  for (std::size_t i = 0; i < set.size(); ++i) {
    const sim::Nanos tau = set[i].period;
    for (sim::Nanos release = 0; release < hyperperiod; release += tau) {
      const sim::Nanos deadline = release + tau;
      sim::Nanos got = 0;
      for (std::size_t fi = 0; fi < frames.size(); ++fi) {
        const sim::Nanos fs = static_cast<sim::Nanos>(fi) * frame;
        const sim::Nanos fe = fs + frame;
        if (fs < release || fe > deadline) continue;
        for (const auto& e : frames[fi]) {
          if (e.task == i) got += e.duration;
        }
      }
      if (got < set[i].slice) return false;
    }
  }
  return true;
}

std::vector<sim::Nanos> CyclicExecutiveBuilder::candidate_frames(
    const std::vector<PeriodicTask>& set) {
  std::vector<sim::Nanos> out;
  if (set.empty()) return out;
  const sim::Nanos h = hyperperiod_of(set);
  if (h <= 0) return out;
  // Enumerate divisors of the hyperperiod via trial division to sqrt(h).
  std::vector<sim::Nanos> divisors;
  for (sim::Nanos d = 1; d * d <= h; ++d) {
    if (h % d == 0) {
      divisors.push_back(d);
      if (d != h / d) divisors.push_back(h / d);
    }
  }
  std::sort(divisors.begin(), divisors.end(), std::greater<>());
  for (sim::Nanos f : divisors) {
    bool ok = true;
    for (const auto& t : set) {
      if (2 * f - gcd64(f, t.period) > t.period) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(f);
  }
  return out;
}

std::optional<CyclicExecutive> CyclicExecutiveBuilder::build(
    const std::vector<PeriodicTask>& set) {
  if (set.empty()) return std::nullopt;
  for (const auto& t : set) {
    if (t.period <= 0 || t.slice <= 0 || t.slice > t.period) {
      return std::nullopt;
    }
  }
  if (total_utilization(set) > 1.0 + 1e-9) return std::nullopt;
  const sim::Nanos h = hyperperiod_of(set);
  if (h <= 0) return std::nullopt;

  for (sim::Nanos f : candidate_frames(set)) {
    CyclicExecutive ce;
    ce.frame = f;
    ce.hyperperiod = h;
    const std::size_t nframes = static_cast<std::size_t>(h / f);
    ce.frames.assign(nframes, {});

    // EDF-greedy packing of job chunks into frames.
    struct Job {
      std::size_t task;
      sim::Nanos release;
      sim::Nanos deadline;
      sim::Nanos remaining;
    };
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (sim::Nanos r = 0; r < h; r += set[i].period) {
        jobs.push_back(Job{i, r, r + set[i].period, set[i].slice});
      }
    }
    bool feasible = true;
    for (std::size_t fi = 0; fi < nframes && feasible; ++fi) {
      const sim::Nanos fs = static_cast<sim::Nanos>(fi) * f;
      const sim::Nanos fe = fs + f;
      sim::Nanos room = f;
      // Eligible jobs: released by frame start, deadline at/after frame end.
      std::vector<Job*> eligible;
      for (auto& j : jobs) {
        if (j.remaining > 0 && j.release <= fs && j.deadline >= fe) {
          eligible.push_back(&j);
        }
      }
      std::sort(eligible.begin(), eligible.end(),
                [](const Job* a, const Job* b) {
                  return a->deadline < b->deadline;
                });
      for (Job* j : eligible) {
        if (room == 0) break;
        const sim::Nanos chunk = std::min(room, j->remaining);
        ce.frames[fi].push_back(FrameEntry{j->task, chunk});
        j->remaining -= chunk;
        room -= chunk;
      }
    }
    for (const auto& j : jobs) {
      if (j.remaining > 0) {
        feasible = false;
        break;
      }
    }
    if (feasible && ce.valid_for(set)) return ce;
  }
  return std::nullopt;
}

}  // namespace hrt::rt
