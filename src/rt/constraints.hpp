// Timing constraints, following the model of Liu adopted in section 3.1.
//
// A thread is in exactly one class at a time:
//   * Aperiodic: no real-time constraint, only a priority mu.  Newly created
//     threads begin life in this class.  Admission cannot fail.
//   * Periodic (phi, tau, sigma): first arrival at Gamma + phi, then every
//     tau; each arrival is guaranteed sigma of execution before the next
//     arrival, which is its deadline.
//   * Sporadic (phi, omega, d, mu): one arrival at Gamma + phi, guaranteed
//     omega of execution before the deadline, then the thread continues as
//     aperiodic with priority mu.
//
// Gamma is the wall-clock admission time; phase and (sporadic) deadline are
// stored relative to Gamma and resolved at admission.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace hrt::rt {

enum class ConstraintClass : std::uint8_t { kAperiodic, kPeriodic, kSporadic };

/// Lower value = more important, like a Unix niceness flipped.
using AperiodicPriority = std::uint32_t;
inline constexpr AperiodicPriority kDefaultPriority = 100;
inline constexpr AperiodicPriority kIdlePriority = 0xFFFFFFFFu;

/// Utilization reported for a degenerate sporadic constraint (zero-width
/// deadline window): impossible to admit.  The value sits safely inside the
/// double and Q32.32 ranges — it converts to a saturated fixed-point word
/// (rt/fixed_point.hpp) and exceeds every real capacity, so both admission
/// paths reject it without overflow-dependent behavior.  Never compare
/// against a bare 1.0e9 literal; use this constant.
inline constexpr double kDegenerateUtilization = 1.0e9;

struct Constraints {
  ConstraintClass cls = ConstraintClass::kAperiodic;

  // Aperiodic (also the tail behavior of a completed sporadic).
  AperiodicPriority priority = kDefaultPriority;

  // Shared by periodic and sporadic: offset of first arrival from Gamma.
  sim::Nanos phase = 0;

  // Periodic.
  sim::Nanos period = 0;  // tau
  sim::Nanos slice = 0;   // sigma

  // Sporadic.
  sim::Nanos size = 0;              // omega
  sim::Nanos deadline_offset = 0;   // deadline relative to Gamma

  // Anchored release grid (periodic only; docs/GLOBAL.md "Aligned split
  // release").  When set, admission re-resolves the phase so every release
  // lands exactly on the absolute grid
  //   { release_anchor + (phase mod period) + m * period },
  // preserving the whole-period part of the phase as a pipeline offset.
  // Tasks sharing (anchor, phase residue, period) then share one release
  // grid no matter when each one's admission actually ran — this is what
  // lines up semi-partitioned pipeline chunks that admit independently.
  // The scheduler rewrites (phase, release_anchor) at commit so the stored
  // constraints describe the same grid, making re-admission (migration
  // hand-off, retry) idempotent.
  bool align_release = false;
  sim::Nanos release_anchor = 0;

  [[nodiscard]] static Constraints aperiodic(
      AperiodicPriority mu = kDefaultPriority) {
    Constraints c;
    c.cls = ConstraintClass::kAperiodic;
    c.priority = mu;
    return c;
  }

  [[nodiscard]] static Constraints periodic(sim::Nanos phase, sim::Nanos tau,
                                            sim::Nanos sigma) {
    Constraints c;
    c.cls = ConstraintClass::kPeriodic;
    c.phase = phase;
    c.period = tau;
    c.slice = sigma;
    return c;
  }

  [[nodiscard]] static Constraints sporadic(
      sim::Nanos phase, sim::Nanos omega, sim::Nanos deadline_offset,
      AperiodicPriority mu = kDefaultPriority) {
    Constraints c;
    c.cls = ConstraintClass::kSporadic;
    c.phase = phase;
    c.size = omega;
    c.deadline_offset = deadline_offset;
    c.priority = mu;
    return c;
  }

  [[nodiscard]] bool is_realtime() const {
    return cls != ConstraintClass::kAperiodic;
  }

  /// Long-run CPU utilization demanded by this constraint.  Sporadic
  /// utilization is its density omega / (deadline - phase), the classic
  /// conservative measure.
  [[nodiscard]] double utilization() const {
    switch (cls) {
      case ConstraintClass::kPeriodic:
        // Degenerate (zero-period) constraints round toward reject: report
        // the saturating sentinel, never a 0.0 that would admit for free.
        // well_formed() screens these structurally, but every numeric path
        // must fail closed too.
        return period > 0
                   ? static_cast<double>(slice) / static_cast<double>(period)
                   : kDegenerateUtilization;
      case ConstraintClass::kSporadic: {
        const sim::Nanos window = deadline_offset - phase;
        return window > 0
                   ? static_cast<double>(size) / static_cast<double>(window)
                   : kDegenerateUtilization;
      }
      case ConstraintClass::kAperiodic:
        return 0.0;
    }
    return 0.0;
  }

  /// Structural validity (admission feasibility is the scheduler's job).
  [[nodiscard]] bool well_formed() const {
    switch (cls) {
      case ConstraintClass::kAperiodic:
        return true;
      case ConstraintClass::kPeriodic:
        return phase >= 0 && period > 0 && slice > 0 && slice <= period;
      case ConstraintClass::kSporadic:
        return phase >= 0 && size > 0 && deadline_offset > phase &&
               size <= deadline_offset - phase;
    }
    return false;
  }

  [[nodiscard]] bool operator==(const Constraints& o) const {
    if (cls != o.cls) return false;
    switch (cls) {
      case ConstraintClass::kAperiodic:
        return priority == o.priority;
      case ConstraintClass::kPeriodic:
        return phase == o.phase && period == o.period && slice == o.slice;
      case ConstraintClass::kSporadic:
        return phase == o.phase && size == o.size &&
               deadline_offset == o.deadline_offset && priority == o.priority;
    }
    return false;
  }
};

}  // namespace hrt::rt
