// Random periodic task-set generation for admission-control evaluation.
//
// Implements the standard UUniFast algorithm (Bini & Buttazzo): draw n
// per-task utilizations summing exactly to a target U, unbiased over the
// simplex, then attach periods drawn log-uniformly from a range.  Used by
// the admission-accuracy benchmark and the property tests ("random feasible
// sets never miss").
#pragma once

#include <cstdint>
#include <vector>

#include "rt/admission.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hrt::rt {

struct TaskSetParams {
  std::size_t n = 4;
  double total_utilization = 0.5;
  sim::Nanos min_period = sim::micros(100);
  sim::Nanos max_period = sim::millis(10);
  /// Round periods to a multiple of this, keeping hyperperiods tractable
  /// for the simulation-based admission test.  0 = no rounding.
  sim::Nanos period_granule = sim::micros(100);
  /// Floor on slices, matching the scheduler's constraint-granularity
  /// bound (section 3.3); UUniFast can otherwise hand a task a share too
  /// small to be admissible.
  sim::Nanos min_slice = sim::micros(1);
};

/// UUniFast: n utilizations summing to `total`, uniform over the simplex.
[[nodiscard]] std::vector<double> uunifast(std::size_t n, double total,
                                           sim::Rng& rng);

/// A full task set with log-uniform periods and UUniFast utilizations.
/// Slices are floored at params.min_slice.
[[nodiscard]] std::vector<PeriodicTask> generate_taskset(
    const TaskSetParams& params, sim::Rng& rng);

}  // namespace hrt::rt
