#include "rt/admission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace hrt::rt {

double total_utilization(const std::vector<PeriodicTask>& set) {
  // Neumaier compensated summation: naive += accumulates O(n * eps) error,
  // enough to flip an exactly-at-capacity decision for large sets; the
  // compensated sum keeps the error at O(eps) so the boundary comparison's
  // slack (admission_slack) can stay provably tight.
  double sum = 0.0;
  double comp = 0.0;
  for (const auto& t : set) {
    const double u =
        static_cast<double>(t.slice) / static_cast<double>(t.period);
    const double s = sum + u;
    if (std::abs(sum) >= std::abs(u)) {
      comp += (sum - s) + u;
    } else {
      comp += (u - s) + sum;
    }
    sum = s;
  }
  return sum + comp;
}

bool edf_admissible(const std::vector<PeriodicTask>& set, double available) {
  for (const auto& t : set) {
    if (t.period <= 0 || t.slice <= 0 || t.slice > t.period) return false;
  }
  return utilization_fits(total_utilization(set), set.size(), available);
}

bool rm_ll_admissible(const std::vector<PeriodicTask>& set, double available) {
  for (const auto& t : set) {
    if (t.period <= 0 || t.slice <= 0 || t.slice > t.period) return false;
  }
  const auto n = static_cast<double>(set.size());
  if (set.empty()) return true;
  const double bound = n * (std::pow(2.0, 1.0 / n) - 1.0);
  return utilization_fits(total_utilization(set), set.size(),
                          bound * available);
}

bool rm_rta_admissible(const std::vector<PeriodicTask>& set,
                       double available) {
  if (available <= 0.0) return set.empty();
  std::vector<PeriodicTask> s = set;
  for (auto& t : s) {
    if (t.period <= 0 || t.slice <= 0) return false;
    // Approximate partial availability by inflating execution demand.
    t.slice = static_cast<sim::Nanos>(
        std::ceil(static_cast<double>(t.slice) / available));
    if (t.slice > t.period) return false;
  }
  // RM priority: shorter period = higher priority.
  std::sort(s.begin(), s.end(), [](const PeriodicTask& a,
                                   const PeriodicTask& b) {
    return a.period < b.period;
  });
  for (std::size_t i = 0; i < s.size(); ++i) {
    // Fixed-point iteration R = C_i + sum_{j<i} ceil(R / T_j) C_j.
    sim::Nanos r = s[i].slice;
    for (int iter = 0; iter < 1000; ++iter) {
      sim::Nanos demand = s[i].slice;
      for (std::size_t j = 0; j < i; ++j) {
        const sim::Nanos jobs = (r + s[j].period - 1) / s[j].period;
        demand += jobs * s[j].slice;
      }
      if (demand == r) break;
      r = demand;
      if (r > s[i].period) return false;
    }
    if (r > s[i].period) return false;
  }
  return true;
}

namespace {

sim::Nanos gcd64(sim::Nanos a, sim::Nanos b) {
  while (b != 0) {
    const sim::Nanos t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

SimAdmissionResult simulate_edf_admission(const std::vector<PeriodicTask>& set,
                                          const SimAdmissionConfig& cfg) {
  SimAdmissionResult result;
  if (set.empty()) {
    result.admissible = true;
    return result;
  }
  // Hyperperiod via lcm with overflow/horizon guard.
  sim::Nanos hyper = 1;
  sim::Nanos max_phase = 0;
  for (const auto& t : set) {
    if (t.period <= 0 || t.slice <= 0 || t.slice > t.period) return result;
    const sim::Nanos g = gcd64(hyper, t.period);
    hyper = hyper / g * t.period;
    max_phase = std::max(max_phase, t.phase);
    if (hyper > cfg.max_horizon) {
      result.horizon_exceeded = true;
      return result;
    }
  }
  result.hyperperiod = hyper;
  const sim::Nanos horizon = max_phase + 2 * hyper;

  // Event-driven eager-EDF simulation of the periodic set.  Each slice costs
  // two scheduler invocations' worth of overhead (arrival + timeout).
  struct Job {
    sim::Nanos deadline;
    sim::Nanos remaining;
    std::size_t task;
  };
  auto later = [](const Job& a, const Job& b) {
    return a.deadline > b.deadline;
  };
  std::priority_queue<Job, std::vector<Job>, decltype(later)> ready(later);

  std::vector<sim::Nanos> next_arrival(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) next_arrival[i] = set[i].phase;

  sim::Nanos now = 0;
  while (now < horizon) {
    // Release everything due.
    sim::Nanos next_rel = horizon;
    for (std::size_t i = 0; i < set.size(); ++i) {
      while (next_arrival[i] <= now) {
        ready.push(Job{next_arrival[i] + set[i].period,
                       set[i].slice + 2 * cfg.per_invocation_overhead, i});
        next_arrival[i] += set[i].period;
      }
      next_rel = std::min(next_rel, next_arrival[i]);
    }
    if (ready.empty()) {
      now = next_rel;
      continue;
    }
    Job job = ready.top();
    ready.pop();
    // Run until done or the next release, whichever first.
    const sim::Nanos run = std::min(job.remaining, next_rel - now);
    now += run;
    job.remaining -= run;
    if (job.remaining > 0) {
      ready.push(job);
    } else if (now > job.deadline) {
      ++result.missed_deadlines;
    }
  }
  // Anything still queued past its deadline at the horizon is also late.
  while (!ready.empty()) {
    if (horizon > ready.top().deadline) ++result.missed_deadlines;
    ready.pop();
  }
  result.admissible = result.missed_deadlines == 0;
  return result;
}

}  // namespace hrt::rt
