#include "rt/system.hpp"

namespace hrt {

System::System() : System(Options{}) {}

System::System(Options options) : options_(std::move(options)) {
  hw::MachineSpec spec = options_.spec;
  if (!options_.smi_enabled) spec.smi.enabled = false;
  machine_ = std::make_unique<hw::Machine>(spec, options_.seed);
  auditor_ = std::make_unique<audit::Auditor>(options_.audit);

  nk::Kernel::Options ko;
  ko.auditor = auditor_.get();
  ko.scheduler_factory = rt::make_scheduler_factory(options_.sched);
  ko.work_stealing = options_.work_stealing;
  ko.interrupt_laden_cpus = options_.interrupt_laden_cpus;
  ko.tpr_steering = options_.tpr_steering;
  ko.calibrate_tsc = options_.calibrate_tsc;
  ko.start_smi_source = true;  // no-op when the spec disables SMIs
  kernel_ = std::make_unique<nk::Kernel>(*machine_, std::move(ko));
  groups_ = std::make_unique<grp::GroupRegistry>(*kernel_);
}

}  // namespace hrt
