#include "rt/system.hpp"

#include <stdexcept>
#include <utility>

#include "group/group_admission.hpp"

namespace hrt {

namespace {

/// Batch-spawn commit wrapper: the thread's utilization is already held by
/// a reservation (LocalScheduler::reserve_batch), so the step-0 commit is
/// an O(1) fast-path probe that cannot fail under normal operation — only
/// a capacity degradation between reserve and first run (SMI storm) can
/// reject it, and then the thread exits rather than run unadmitted.
class ReservedAdmitBehavior final : public nk::Behavior {
 public:
  ReservedAdmitBehavior(rt::Constraints c, std::unique_ptr<nk::Behavior> inner)
      : constraints_(c), inner_(std::move(inner)) {}

  nk::Action next(nk::ThreadCtx& ctx) override {
    if (!committed_) {
      committed_ = true;
      return nk::Action::change_constraints(constraints_);
    }
    if (!checked_) {
      checked_ = true;
      if (!ctx.last_admit_ok) return nk::Action::exit();
    }
    return inner_->next(ctx);
  }

  [[nodiscard]] std::string describe() const override {
    return "reserved-admit(" + inner_->describe() + ")";
  }

 private:
  rt::Constraints constraints_;
  std::unique_ptr<nk::Behavior> inner_;
  bool committed_ = false;
  bool checked_ = false;
};

}  // namespace

System::System() : System(Options{}) {}

System::System(Options options) : options_(std::move(options)) {
  hw::MachineSpec spec = options_.spec;
  if (!options_.smi_enabled) spec.smi.enabled = false;
  machine_ = std::make_unique<hw::Machine>(
      spec, options_.seed,
      hw::Machine::Sharding{options_.sim_host_threads,
                            options_.sim_lookahead_ns});
  auditor_ = std::make_unique<audit::Auditor>(options_.audit);
  telemetry_ = std::make_unique<telemetry::Telemetry>(machine_->num_cpus(),
                                                      options_.telemetry);
  if (telemetry_->enabled()) telemetry_->attach_auditor(auditor_.get());

  // Resilience knobs propagate into every local scheduler's config: the
  // estimator lives in the scheduler's timer path, and degraded admission is
  // a per-CPU decision (docs/RESILIENCE.md).
  if (options_.resilience.enabled) {
    options_.sched.estimator = options_.resilience.estimator;
    options_.sched.estimator.enabled = true;
    options_.sched.degraded_admission = options_.resilience.degrade_admission;
    options_.sched.resilience_reserve = options_.resilience.capacity_reserve;
  }

  // Per-CPU capacity available to RT admission; the ledger must agree with
  // the local schedulers on what "full" means.
  const double capacity = options_.sched.utilization_limit -
                          options_.sched.sporadic_reservation -
                          options_.sched.aperiodic_reservation;
  global::Config gc = options_.placement_config;
  gc.interrupt_laden_cpus = options_.interrupt_laden_cpus;
  global_ = std::make_unique<global::GlobalScheduler>(machine_->num_cpus(),
                                                      capacity, gc);

  nk::Kernel::Options ko;
  ko.auditor = auditor_.get();
  ko.placement_ledger = &global_->ledger();
  ko.telemetry = telemetry_->enabled() ? telemetry_.get() : nullptr;
  ko.scheduler_factory = rt::make_scheduler_factory(options_.sched);
  ko.work_stealing = options_.work_stealing;
  ko.interrupt_laden_cpus = options_.interrupt_laden_cpus;
  ko.tpr_steering = options_.tpr_steering;
  ko.calibrate_tsc = options_.calibrate_tsc;
  ko.start_smi_source = true;  // no-op when the spec disables SMIs
  kernel_ = std::make_unique<nk::Kernel>(*machine_, std::move(ko));
  groups_ = std::make_unique<grp::GroupRegistry>(*kernel_);
  global_->attach(kernel_.get(), groups_.get());

  storm_ = std::make_unique<resilience::StormController>(options_.resilience,
                                                         capacity);
  storm_->attach(kernel_.get(), global_.get(), auditor_.get());

  // Seed the effective-capacity gauges with the undegraded base; the storm
  // controller overwrites them as it publishes degradations.
  if (telemetry_->enabled()) {
    for (std::uint32_t c = 0; c < machine_->num_cpus(); ++c) {
      telemetry_->set_effective_capacity(c, capacity);
    }
  }
}

nk::Thread* System::spawn(std::string name,
                          std::unique_ptr<nk::Behavior> behavior,
                          std::uint32_t cpu, rt::AperiodicPriority priority) {
  if (cpu >= kernel_->num_cpus()) {
    throw std::out_of_range(
        "System::spawn: cpu " + std::to_string(cpu) +
        " out of range (machine has " + std::to_string(kernel_->num_cpus()) +
        " cpus)");
  }
  return kernel_->create_thread(std::move(name), std::move(behavior), cpu,
                                priority);
}

nk::Thread* System::spawn_auto(std::string name,
                               std::unique_ptr<nk::Behavior> behavior,
                               const rt::Constraints& constraints,
                               rt::AperiodicPriority priority) {
  const std::uint32_t cpu = global_->place(constraints);
  return kernel_->create_thread(
      std::move(name), global_->auto_admit(constraints, std::move(behavior)),
      cpu, priority);
}

System::BatchSpawnResult System::spawn_batch(std::vector<SpawnSpec> specs) {
  BatchSpawnResult result;
  if (specs.empty()) {
    result.ok = true;
    return result;
  }

  // Phase 1: ONE placement pass over the whole batch.
  std::vector<rt::Constraints> cs;
  cs.reserve(specs.size());
  for (const SpawnSpec& s : specs) cs.push_back(s.constraints);
  std::vector<std::uint32_t> cpus = global_->place_batch(cs);

  // Phase 2: materialize every thread PARKED — pool-backed TCBs, no
  // scheduler has seen any of them yet, so a rejection can still unwind to
  // exactly the pre-call state.
  kernel_->prewarm_thread_pool(specs.size());
  std::vector<nk::Thread*> threads;
  threads.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SpawnSpec& s = specs[i];
    std::unique_ptr<nk::Behavior> b =
        s.constraints.is_realtime()
            ? std::make_unique<ReservedAdmitBehavior>(s.constraints,
                                                      std::move(s.behavior))
            : std::move(s.behavior);
    threads.push_back(kernel_->create_thread_parked(
        std::move(s.name), std::move(b), cpus[i], s.priority));
  }

  // Phase 3: ONE admission analysis per distinct target CPU.  Group the
  // batch by CPU and reserve each subset atomically; the first rejecting
  // CPU fails the whole batch.
  std::vector<std::uint32_t> touched;
  bool admitted = true;
  for (std::uint32_t cpu = 0; cpu < kernel_->num_cpus() && admitted; ++cpu) {
    std::vector<std::pair<nk::Thread*, rt::Constraints>> items;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (cpus[i] == cpu && cs[i].is_realtime()) {
        items.emplace_back(threads[i], cs[i]);
      }
    }
    if (items.empty()) continue;
    if (sched(cpu).reserve_batch(items)) {
      touched.push_back(cpu);
    } else {
      admitted = false;
    }
  }

  if (!admitted) {
    // All-or-nothing rollback: drop the reservations taken so far, return
    // every TCB to the pool.  No queue was touched, no CPU kicked.
    for (std::uint32_t cpu : touched) {
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (cpus[i] == cpu) sched(cpu).cancel_reservation(*threads[i]);
      }
    }
    kernel_->abort_thread_batch(threads);
    return result;
  }

  // Phase 4: publish — enqueue everything, one kick per distinct CPU.
  kernel_->commit_thread_batch(threads);
  result.ok = true;
  result.threads = std::move(threads);
  result.cpus = std::move(cpus);
  return result;
}

std::vector<nk::Thread*> System::spawn_split(
    const std::string& name, const rt::Constraints& constraints,
    const std::function<std::unique_ptr<nk::Behavior>(std::uint32_t)>&
        make_inner) {
  global::SplitPlan plan =
      global_->plan_split(constraints, options_.sched.min_slice);
  if (!plan.ok) return {};
  std::vector<nk::Thread*> out;
  out.reserve(plan.chunks.size());
  for (std::uint32_t i = 0; i < plan.chunks.size(); ++i) {
    const global::SplitChunk& sc = plan.chunks[i];
    std::unique_ptr<nk::Behavior> inner =
        make_inner ? make_inner(i)
                   : std::make_unique<nk::BusyLoopBehavior>(sim::millis(2));
    rt::Constraints cc = sc.constraints;
    if (global_->config().split_aligned_release) {
      // Anchored release grid: all chunks share anchor 0, so their admitted
      // grids coincide exactly even though each chunk's admission (with its
      // own gamma, possibly after retries) runs at a different time.
      cc.align_release = true;
      cc.release_anchor = 0;
    }
    out.push_back(kernel_->create_thread(
        name + "." + std::to_string(i), global_->auto_admit(cc, std::move(inner)),
        sc.cpu));
  }
  return out;
}

std::vector<nk::Thread*> System::spawn_group_auto(
    const std::string& name, std::uint32_t n,
    const rt::Constraints& constraints,
    const std::function<std::unique_ptr<nk::Behavior>(std::uint32_t)>&
        make_inner) {
  const std::vector<std::uint32_t> cpus =
      global_->engine().choose_group(n, constraints);
  if (cpus.size() != n) return {};
  grp::ThreadGroup* group = groups_->create(name, n);
  if (group == nullptr) return {};
  std::vector<nk::Thread*> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(kernel_->create_thread(
        name + "." + std::to_string(i),
        std::make_unique<grp::GroupAdmitThenBehavior>(
            *group, constraints, make_inner(i), /*join_first=*/true),
        cpus[i]));
  }
  return out;
}

}  // namespace hrt
