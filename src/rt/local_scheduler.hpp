// The hard real-time local scheduler (section 3).
//
// One instance drives each CPU.  At its base it is a simple *eager* earliest
// deadline first engine with three queues:
//   * pending:   admitted RT threads waiting for their next arrival time
//   * rt run:    RT threads with an open arrival, ordered by deadline (EDF)
//   * non-rt run: aperiodic threads, priority + round-robin
// plus a sleep queue and the lightweight task queues.
//
// It is invoked only on a timer interrupt, a kick IPI from another local
// scheduler, or by a small set of current-thread actions (sleep, yield,
// exit, change constraints).  Every invocation is bounded: the queues have
// fixed capacity and the pass cost model charges base + per-thread work.
//
// Eagerness (section 3.6): a runnable real-time thread is switched to
// immediately, never delayed to the latest feasible start, so that SMI
// missing time striking mid-slice rarely pushes completion past the
// deadline.  The lazy variant is retained behind a config flag for the
// ablation benchmark.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "nautilus/kernel.hpp"
#include "nautilus/scheduler.hpp"
#include "nautilus/thread.hpp"
#include "resilience/estimator.hpp"
#include "rt/admission.hpp"
#include "rt/constraints.hpp"
#include "rt/fixed_point.hpp"
#include "rt/queues.hpp"

namespace hrt::audit {
class Auditor;
}

namespace hrt::global {
class UtilizationLedger;
}

namespace hrt::telemetry {
class Telemetry;
}

namespace hrt::rt {

enum class AdmissionPolicy : std::uint8_t {
  kEdf,         // utilization test against the configured limit
  kRmLl,        // Liu-Layland rate-monotonic bound
  kRmRta,       // exact response-time analysis
  kSimulation,  // hyperperiod simulation prototype (section 3.2)
};

class LocalScheduler final : public nk::SchedulerBase {
 public:
  struct Config {
    // Paper's default configuration (section 5.1): 99% utilization limit,
    // 10% sporadic reservation, 10% aperiodic reservation, aperiodic
    // round-robin at 10 Hz.
    double utilization_limit = 0.99;
    double sporadic_reservation = 0.10;
    double aperiodic_reservation = 0.10;
    sim::Nanos aperiodic_quantum = sim::millis(100);
    AdmissionPolicy policy = AdmissionPolicy::kEdf;
    bool admission_enabled = true;  // figures 6-9 turn this off
    bool eager = true;              // ablation: lazy EDF when false
    /// O(1) lock-free admission fast path (docs/API.md): probe the Q32.32
    /// committed/reserved words before running the O(n) analysis.  The
    /// probe's conservative rounding (rt/fixed_point.hpp) guarantees a fast
    /// admit implies the slow-path admit, so decisions are identical with
    /// the flag on or off; off is the serial-slow ablation baseline
    /// (bench/ablate_spawn).  kEdf only; other policies always fall back.
    bool fast_admission = true;
    std::size_t max_threads = 1024;
    std::size_t max_tasks = 4096;
    // Bounds on requestable constraints (section 3.3: "Bounds are also
    // placed on the granularity and minimum size of the timing
    // constraints"), enforced only when admission is enabled.
    sim::Nanos min_period = sim::micros(1);
    sim::Nanos min_slice = sim::micros(1);

    // SMI missing-time resilience (docs/RESILIENCE.md).  The estimator
    // watches timer-delivery lateness at scheduler entry; when degraded
    // admission is on, the admission test subtracts the estimated stolen
    // fraction (plus a reserve) from the available RT utilization.
    resilience::EstimatorConfig estimator;
    bool degraded_admission = false;
    double resilience_reserve = 0.0;

    /// Deliberately re-introduce fixed bugs so the auditor's regression
    /// tests can prove each one is caught (test_audit.cpp); never set
    /// outside tests.
    struct TestFaults {
      bool sleeping_change_to_nonrt = false;  // sleeper -> nonrt_ on change
      bool stale_sporadic_tail = false;   // keep rr_seq + reservation on tail
      bool double_count_current = false;  // thread_count() counts cur twice
      bool rearm_past_quantum = false;    // arm quantum target in the past
      bool drop_ledger_release = false;   // placement ledger misses releases
      bool stale_migrate_cpu = false;     // migrate without updating t->cpu
      // Failed admission consumes the caller's two-phase reservation (the
      // pre-fix change_constraints behavior: held utilization silently lost
      // on a rejected commit).
      bool consume_reservation_on_reject = false;
      // A failed migration hand-off releases the reservation on the
      // *original* CPU instead of the target, leaking the target's held
      // utilization (the spawn_auto admit-retry rollback bug).
      bool migration_rollback_wrong_cpu = false;
    };
    TestFaults test_faults;
  };

  struct Stats {
    std::uint64_t passes = 0;
    std::uint64_t timer_passes = 0;
    std::uint64_t kick_passes = 0;
    std::uint64_t admissions_ok = 0;
    std::uint64_t admissions_rejected = 0;
    std::uint64_t fast_admits = 0;      // fast path decided without analysis
    std::uint64_t fast_fallbacks = 0;   // fast path punted to the slow path
    std::uint64_t batch_reserves = 0;   // reserve_batch calls
    std::uint64_t batch_reserved_threads = 0;  // threads those calls admitted
    std::uint64_t tasks_inline = 0;
    std::uint64_t rr_rotations = 0;
    std::uint64_t zero_delay_arms = 0;  // one-shot armed with zero delay
    std::uint64_t migrations_requested = 0;  // request_migration accepted
    std::uint64_t migrations_out = 0;        // hand-offs completed from here
    std::uint64_t migrations_in = 0;         // hand-offs landed here
    std::uint64_t migration_failures = 0;    // hand-off fell back / demoted
  };

  LocalScheduler(nk::Kernel& kernel, std::uint32_t cpu, Config cfg);

  // --- nk::SchedulerBase ---
  void attach(nk::CpuExecutor* exec) override { exec_ = exec; }
  nk::PassResult pass(nk::PassReason reason, sim::Nanos now) override;
  void arm_timer(sim::Nanos now) override;
  bool change_constraints(nk::Thread& t, const Constraints& c,
                          sim::Nanos gamma) override;
  [[nodiscard]] sim::Cycles admission_cost_cycles(
      const nk::Thread& t, const Constraints& c) const override;
  void enqueue(nk::Thread* t) override;
  void on_sleep(nk::Thread& t, sim::Nanos wake_local) override;
  void on_exit(nk::Thread& t) override;
  bool try_wake(nk::Thread& t) override;
  void submit_task(nk::Task task) override;
  [[nodiscard]] std::size_t stealable_count() const override;
  nk::Thread* try_steal() override;
  bool detach_for_migration(nk::Thread& t) override;
  [[nodiscard]] std::size_t thread_count() const override;
  [[nodiscard]] double admitted_utilization() const override {
    return admitted_periodic_util_ + sporadic_util_;
  }
  void audit_state(sim::Nanos now) override;

  // --- introspection ---
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::size_t rt_run_count() const { return rt_run_.size(); }
  [[nodiscard]] std::size_t nonrt_count() const { return nonrt_.size(); }
  [[nodiscard]] std::size_t sleeper_count() const { return sleepers_.size(); }
  [[nodiscard]] double available_rt_utilization() const {
    return cfg_.utilization_limit - cfg_.sporadic_reservation -
           cfg_.aperiodic_reservation;
  }
  /// RT availability after subtracting the estimated missing-time fraction
  /// and the configured reserve (identity when degraded admission is off).
  [[nodiscard]] double effective_rt_availability() const {
    double avail = available_rt_utilization();
    if (cfg_.degraded_admission) {
      avail -= estimator_.ewma_fraction() + cfg_.resilience_reserve;
    }
    return avail > 0 ? avail : 0.0;
  }
  [[nodiscard]] resilience::MissingTimeEstimator& missing_time() {
    return estimator_;
  }
  [[nodiscard]] const resilience::MissingTimeEstimator& missing_time() const {
    return estimator_;
  }
  /// Unsized-task access for the task-exec helper thread.
  [[nodiscard]] bool has_unsized_task() const {
    return !unsized_tasks_.empty();
  }
  nk::Task pop_unsized_task();

  // --- two-phase admission for group scheduling (section 4.4) ---
  // During group admission the requesting thread must stay aperiodic (it
  // still has barriers and the phase-correction step to execute), so the
  // utilization is reserved first and the class switch happens at the final
  // change_constraints.  change_constraints consumes a matching reservation
  // automatically.
  [[nodiscard]] bool reserve_constraints(nk::Thread& t, const Constraints& c);
  void cancel_reservation(nk::Thread& t);
  [[nodiscard]] bool has_reservation(const nk::Thread& t) const;

  // --- batched admission (System::spawn_batch, docs/API.md) ---
  // Admit a group of freshly created threads with ONE admission analysis
  // (or one fast-path word probe) for the whole group, all-or-nothing: on
  // success every thread holds a two-phase reservation to be consumed by
  // its first change_constraints; on failure nothing is reserved.
  // Aperiodic entries are accepted without a reservation (aperiodic
  // admission cannot fail).
  [[nodiscard]] bool reserve_batch(
      const std::vector<std::pair<nk::Thread*, Constraints>>& items);

  // --- lock-free admission fast path (docs/API.md) ---
  // O(1) wait-free probe of the Q32.32 words.  Returns nullopt when the
  // fast path does not apply (disabled, non-kEdf policy, non-periodic
  // class); otherwise the conservative decision: true implies the slow
  // path would also admit, false may be spurious (slow path remains the
  // authority inside admit_check).
  [[nodiscard]] std::optional<bool> fast_path_decision(
      const Constraints& c) const;
  /// Full admission answer for a hypothetical brand-new thread (no
  /// exclusions), fast path included; bench/fuzz probe, no state change
  /// beyond stats.
  [[nodiscard]] bool probe_admission(const Constraints& c);
  /// The committed/reserved fast-path words (diagnostics and audits).
  [[nodiscard]] const fp::AdmissionWord& fast_committed_word() const {
    return fast_committed_;
  }
  [[nodiscard]] const fp::AdmissionWord& fast_reserved_word() const {
    return fast_reserved_;
  }

  // --- job-boundary RT migration (global placement, docs/GLOBAL.md) ---
  // Move an admitted periodic thread to another CPU without ever splitting a
  // job: the target's utilization is held with a reservation immediately,
  // and the hand-off happens when the thread is parked between arrivals —
  // right away if it already is, otherwise at its next arrival close inside
  // pass().  Lifetime statistics (arrivals/misses) survive the move.
  bool request_migration(nk::Thread& t, std::uint32_t to);

  // --- deferred constraint changes (resilience shed/restore) ---
  // External subsystems (the storm controller runs as an engine observer,
  // outside any CPU's handler sequence) must not mutate scheduler state
  // directly: the executor may be mid-handler with a dispatch decision
  // already made.  They queue the change here instead; pass() applies it at
  // entry — the same quiesce point where arrival closes and migration
  // hand-offs run.  `done` is called with the admission outcome; the change
  // is dropped (done(false)) if the thread exited or moved CPUs meanwhile.
  void defer_constraint_change(nk::Thread& t, const Constraints& c,
                               std::function<void(nk::Thread*, bool)> done);

 private:
  struct ArrivalBefore {
    bool operator()(const nk::Thread* a, const nk::Thread* b) const {
      return a->rt.arrival < b->rt.arrival;
    }
  };
  struct DeadlineBefore {
    bool operator()(const nk::Thread* a, const nk::Thread* b) const {
      return a->rt.deadline < b->rt.deadline;
    }
  };
  struct AperBefore {
    bool operator()(const nk::Thread* a, const nk::Thread* b) const {
      if (a->constraints.priority != b->constraints.priority) {
        return a->constraints.priority < b->constraints.priority;
      }
      return a->rr_seq < b->rr_seq;
    }
  };
  struct WakeBefore {
    bool operator()(const nk::Thread* a, const nk::Thread* b) const {
      return a->wake_time < b->wake_time;
    }
  };

  void pump(sim::Nanos now);
  void open_arrival(nk::Thread* t);
  void close_arrival(nk::Thread* t, sim::Nanos now);
  void complete_migration(nk::Thread& t, sim::Nanos now);
  void ledger_admit(double util);
  void ledger_release(double util);
  nk::Thread* select_next(sim::Nanos now, nk::PassReason reason);
  void detach_bookkeeping(nk::Thread* t);
  [[nodiscard]] bool admit_check(const nk::Thread* t, const Constraints& c);
  [[nodiscard]] bool periodic_set_admissible(
      const std::vector<PeriodicTask>& set) const;
  [[nodiscard]] bool fast_words_fit(fp::Raw need) const;
  /// Fixed-point quantum already held by `t`'s reservation of class `cls`
  /// (0 if none): a commit consuming it adds only the difference.
  [[nodiscard]] fp::Raw reserved_quantum(const nk::Thread& t,
                                         ConstraintClass cls) const;
  [[nodiscard]] std::vector<PeriodicTask> periodic_tasks_with(
      const nk::Thread* exclude, const Constraints* extra) const;
  void audit_queues(sim::Nanos now);
  void audit_utilization(sim::Nanos now);
  void audit_edf_order(const nk::Thread* next, sim::Nanos now);
  void audit_budget(const nk::Thread* t, sim::Nanos now);

  nk::Kernel& kernel_;
  std::uint32_t cpu_;
  Config cfg_;
  nk::CpuExecutor* exec_ = nullptr;
  sim::Nanos slop_;  // timer earliness tolerance (one APIC tick)
  audit::Auditor* auditor_ = nullptr;  // owned by System; may be null
  global::UtilizationLedger* ledger_ = nullptr;  // placement ledger; may be null
  telemetry::Telemetry* telemetry_ = nullptr;    // flight recorder; may be null
  sim::Nanos budget_audit_slop_ = 0;   // tolerance for the budget invariant
  std::uint32_t zero_arm_streak_ = 0;  // consecutive zero-delay one-shots

  // Intrusively indexed: a thread knows which of these heaps holds it, so
  // remove()/detach are O(log n) and cross-queue probes are O(1) misses.
  BoundedHeap<nk::Thread*, ArrivalBefore, MemberIndex<nk::Thread*>> pending_;
  BoundedHeap<nk::Thread*, DeadlineBefore, MemberIndex<nk::Thread*>> rt_run_;
  BoundedHeap<nk::Thread*, AperBefore, MemberIndex<nk::Thread*>> nonrt_;
  BoundedHeap<nk::Thread*, WakeBefore, MemberIndex<nk::Thread*>> sleepers_;
  std::vector<nk::Thread*> periodic_set_;  // admitted periodic threads

  std::deque<nk::Task> sized_tasks_;
  std::deque<nk::Task> unsized_tasks_;
  std::vector<std::pair<nk::Thread*, Constraints>> reservations_;

  struct DeferredChange {
    nk::Thread* thread;
    std::uint64_t id;  // guards against pool reuse between defer and apply
    Constraints constraints;
    std::function<void(nk::Thread*, bool)> done;
  };
  std::vector<DeferredChange> deferred_changes_;

  resilience::MissingTimeEstimator estimator_;
  sim::Nanos expected_fire_ = -1;  // target of the last armed one-shot
  sim::Nanos armed_delay_ = -1;    // its arming delay (the sampling gap)
  sim::Nanos pass_entry_ = -1;     // start of the handler span being timed
  sim::Nanos expected_span_ = 0;   // predicted cost of that span

  double admitted_periodic_util_ = 0.0;
  double sporadic_util_ = 0.0;
  // Lock-free admission fast path: Q32.32 mirrors of the double ledgers
  // above (committed = periodic + sporadic, fed with the same deltas at
  // ledger_admit/ledger_release) and of the reservation list.  Demand
  // rounds up on entry, so the words upper-bound the true sums and a word
  // probe can admit without the O(n) analysis (docs/API.md); the
  // kPlacementLedger audit bounds their divergence from the doubles by one
  // ulp per operation.
  fp::AdmissionWord fast_committed_;
  fp::AdmissionWord fast_reserved_;
  std::uint64_t rr_seq_counter_ = 0;
  sim::Nanos quantum_start_ = 0;
  sim::Nanos lazy_wake_ = -1;  // lazy mode: scheduled latest-start wakeup

  Stats stats_;
};

/// Factory for Kernel::Options.
[[nodiscard]] nk::Kernel::SchedulerFactory make_scheduler_factory(
    LocalScheduler::Config cfg);

}  // namespace hrt::rt
