// Q32.32 fixed-point utilization and the lock-free admission word.
//
// The admission fast path (docs/API.md "Lock-free admission fast path")
// needs a per-CPU utilization accumulator that can be read and CAS-updated
// wait-free from any context, and whose rounding is *provably conservative*:
// a fast-path admit must imply the slow-path (double-arithmetic) admit, so
// the fast path may spuriously reject but never spuriously admit.  The
// sledge admissions-control idiom (one atomic fixed-point word) provides
// the shape; the rounding discipline here provides the safety argument:
//
//   * demand converts with from_double_ceil  (rounds UP, never understates)
//   * capacity converts with from_double_floor (rounds DOWN, never
//     overstates)
//
// so `sum(ceil(demand_i)) <= floor(capacity)` implies the exact real
// inequality `sum(demand_i) <= capacity`, which the slow path's
// compensated-summation test (rt/admission.hpp) accepts by construction.
//
// Each conversion introduces at most one ulp (2^-32 ~ 2.3e-10) of error,
// and integer accumulation is exact, so after N admit/release operations
// the word differs from the shadow double ledger by at most N ulp — the
// bound the kPlacementLedger audit invariant enforces (docs/AUDIT.md).
//
// The degenerate-constraint sentinel (rt::kDegenerateUtilization) and any
// other out-of-range demand saturate to the maximum raw value, which can
// never fit under a real capacity word, so degenerate specs are rejected by
// the fast path without a special case.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>

namespace hrt::rt::fp {

/// Raw Q32.32 value: 32 integer bits, 32 fraction bits.
using Raw = std::uint64_t;

inline constexpr std::uint32_t kFracBits = 32;
inline constexpr Raw kOne = Raw{1} << kFracBits;
inline constexpr Raw kMaxRaw = ~Raw{0};
/// One unit in the last place, as a double: the per-operation conversion
/// error bound (2^-32).
inline constexpr double kUlp = 1.0 / 4294967296.0;

/// Largest double that still converts without saturating (2^32).
inline constexpr double kSaturationThreshold = 4294967296.0;

/// Demand conversion: round UP so the fixed-point word never understates
/// real demand.  Non-positive and NaN inputs map to zero; anything at or
/// above 2^32 (including the degenerate-constraint sentinel) saturates.
[[nodiscard]] inline Raw from_double_ceil(double u) {
  if (!(u > 0.0)) return 0;  // also catches NaN
  if (u >= kSaturationThreshold) return kMaxRaw;
  const double scaled = std::ceil(std::ldexp(u, kFracBits));
  if (scaled >= 18446744073709551616.0) return kMaxRaw;  // 2^64
  return static_cast<Raw>(scaled);
}

/// Capacity conversion: round DOWN so the fixed-point word never overstates
/// real capacity.
[[nodiscard]] inline Raw from_double_floor(double u) {
  if (!(u > 0.0)) return 0;
  if (u >= kSaturationThreshold) return kMaxRaw;
  const double scaled = std::floor(std::ldexp(u, kFracBits));
  if (scaled >= 18446744073709551616.0) return kMaxRaw;
  return static_cast<Raw>(scaled);
}

[[nodiscard]] inline double to_double(Raw r) {
  return std::ldexp(static_cast<double>(r), -static_cast<int>(kFracBits));
}

/// Saturating add: the words accumulate demand, and overflow must fail
/// closed (saturate to "infinite demand", which can never fit), not wrap to
/// a small value that would spuriously admit.
[[nodiscard]] inline Raw sat_add(Raw a, Raw b) {
  const Raw s = a + b;
  return s < a ? kMaxRaw : s;
}

/// A lock-free admission word: one atomic Q32.32 utilization accumulator,
/// CAS admit/release in the sledge admissions-control style.
///
/// Memory ordering: mutations publish with release semantics and reads use
/// acquire, so a placement decision that observes a committed value also
/// observes every write the admitting CPU made before publishing it (the
/// satellite-3 ordering requirement; exercised by the TSan concurrency
/// tests).
///
/// The operation counter feeds the audit tolerance: after ops() operations
/// the word and the shadow double ledger may legitimately differ by up to
/// ops() * kUlp.
class AdmissionWord {
 public:
  AdmissionWord() = default;

  // The word is a per-CPU singleton embedded in scheduler/ledger state;
  // copies would silently fork the accounting.
  AdmissionWord(const AdmissionWord&) = delete;
  AdmissionWord& operator=(const AdmissionWord&) = delete;

  /// Wait-free conditional admit: reserve `demand` iff the new total stays
  /// within `capacity`.  Returns false (and changes nothing) otherwise.
  bool try_admit(Raw demand, Raw capacity) {
    Raw cur = committed_.load(std::memory_order_acquire);
    for (;;) {
      const Raw next = sat_add(cur, demand);
      if (next > capacity) return false;
      if (committed_.compare_exchange_weak(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        ops_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }

  /// Unconditional admit (publication of a decision the slow path already
  /// made): saturating, never drops demand.
  void add(Raw demand) {
    Raw cur = committed_.load(std::memory_order_acquire);
    while (!committed_.compare_exchange_weak(cur, sat_add(cur, demand),
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
    }
    ops_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Release `demand`, clamped at zero — exactly like the shadow double
  /// ledgers clamp, so the audit cross-check stays drift-free.
  void release(Raw demand) {
    Raw cur = committed_.load(std::memory_order_acquire);
    for (;;) {
      const Raw next = cur >= demand ? cur - demand : 0;
      if (committed_.compare_exchange_weak(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        ops_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  [[nodiscard]] Raw raw() const {
    return committed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] double value() const { return to_double(raw()); }
  [[nodiscard]] std::uint64_t ops() const {
    return ops_.load(std::memory_order_relaxed);
  }
  /// Audit tolerance accumulated so far: one ulp per operation.
  [[nodiscard]] double ulp_budget() const {
    return static_cast<double>(ops()) * kUlp;
  }

  void reset() {
    committed_.store(0, std::memory_order_release);
    ops_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<Raw> committed_{0};
  std::atomic<std::uint64_t> ops_{0};
};

}  // namespace hrt::rt::fp
