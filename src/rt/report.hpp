// Human-readable scheduling reports: per-CPU scheduler statistics and a
// per-thread timing table.  Examples and interactive tools use this the way
// an operator would use a /proc interface on the real system.
#pragma once

#include <ostream>

#include "rt/system.hpp"

namespace hrt::rt {

struct ReportOptions {
  bool include_idle_threads = false;
  bool include_pooled_threads = false;
  /// Only report CPUs whose scheduler has seen at least one pass beyond
  /// boot (quiet CPUs add noise on a 256-CPU machine).
  bool skip_quiet_cpus = true;
};

/// Per-CPU table: passes (timer/kick), switches, admissions, admitted
/// utilization, queue depths, overhead means.
void print_cpu_report(System& sys, std::ostream& os,
                      const ReportOptions& opt = {});

/// Per-thread table: class, constraints, arrivals/completions/misses,
/// CPU time, dispatches.
void print_thread_report(System& sys, std::ostream& os,
                         const ReportOptions& opt = {});

/// Invariant-audit summary: checks run, violations (with details), one line
/// per recorded violation.  Prints nothing when audits are disabled.
void print_audit_report(System& sys, std::ostream& os);

/// Telemetry summary (docs/OBSERVABILITY.md): per-CPU event counters and
/// pass spans from the metrics registry, recorder accounting, and one line
/// per declared SLO with its windowed burn rate.  Prints nothing when the
/// telemetry subsystem is disabled.
void print_telemetry_report(System& sys, std::ostream& os);

/// Both, plus machine-level counters (SMIs, events) and — when enabled —
/// the audit and telemetry summaries.
void print_report(System& sys, std::ostream& os,
                  const ReportOptions& opt = {});

}  // namespace hrt::rt
