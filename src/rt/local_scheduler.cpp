#include "rt/local_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "audit/auditor.hpp"
#include "global/ledger.hpp"
#include "nautilus/executor.hpp"
#include "nautilus/kernel.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt::rt {

namespace {
constexpr sim::Nanos kNoTimer = -1;
// Utilization ledgers accumulate float error across admit/exit cycles; the
// audit recomputation tolerates this much drift.
constexpr double kLedgerEps = 1e-6;
// Zero-delay one-shot re-arms in a row before the auditor calls it a storm.
constexpr std::uint32_t kZeroArmStormThreshold = 64;
}  // namespace

LocalScheduler::LocalScheduler(nk::Kernel& kernel, std::uint32_t cpu,
                               Config cfg)
    : kernel_(kernel),
      cpu_(cpu),
      cfg_(cfg),
      slop_(kernel.machine().spec().timer.apic_tick_ns + 1),
      auditor_(kernel.auditor()),
      ledger_(kernel.options().placement_ledger),
      telemetry_(kernel.options().telemetry),
      pending_(cfg.max_threads),
      rt_run_(cfg.max_threads),
      nonrt_(cfg.max_threads),
      sleepers_(cfg.max_threads),
      estimator_(cfg.estimator) {
  // Budget-conservation tolerance: timer quantization (arming rounds the
  // enforcement interrupt up, and it can land one pass late) plus, when the
  // machine has SMIs, a bounded missing-time allowance — frozen windows are
  // charged to the running thread's budget (section 3.6), so an arrival can
  // legitimately overrun sigma by the missing time it absorbed.
  const auto& spec = kernel.machine().spec();
  if (auditor_ != nullptr && auditor_->config().budget_slop >= 0) {
    budget_audit_slop_ = slop_ + auditor_->config().budget_slop;
  } else {
    budget_audit_slop_ = 2 * slop_ + sim::micros(1);
    if (spec.smi.enabled) {
      budget_audit_slop_ += 8 * spec.smi.max_duration_ns;
    }
  }
}

void LocalScheduler::open_arrival(nk::Thread* t) {
  ++t->rt.arrivals;
  t->rt.arrival_open = true;
  t->rt.dispatched_this_arrival = false;
  if (t->constraints.cls == ConstraintClass::kPeriodic) {
    t->rt.deadline = t->rt.arrival + t->constraints.period;
    t->rt.budget_left = t->constraints.slice;
  } else {
    // Sporadic: deadline fixed at admission; budget is the size.
    t->rt.budget_left = t->constraints.size;
  }
}

void LocalScheduler::close_arrival(nk::Thread* t, sim::Nanos now) {
  audit_budget(t, now);
  t->rt.arrival_open = false;
  ++t->rt.completions;
  if (now > t->rt.deadline) {
    ++t->rt.misses;
    t->rt.miss_ns.add(static_cast<double>(now - t->rt.deadline));
  }
  if (telemetry_ != nullptr) {
    telemetry_->on_completion(cpu_, now, static_cast<std::uint32_t>(t->id),
                              t->name, now - t->rt.deadline);
  }
  if (t->constraints.cls == ConstraintClass::kPeriodic) {
    // Next arrival is the current deadline; windows that already fully
    // elapsed while we were serving this one late are skipped and counted
    // as misses.
    sim::Nanos next_arrival = t->rt.deadline;
    std::uint64_t skipped = 0;
    while (next_arrival + t->constraints.period <= now + slop_) {
      ++t->rt.arrivals;
      ++t->rt.misses;
      ++skipped;
      next_arrival += t->constraints.period;
    }
    if (skipped != 0 && telemetry_ != nullptr) {
      telemetry_->on_skipped_windows(cpu_, now,
                                     static_cast<std::uint32_t>(t->id),
                                     t->name, skipped);
    }
    t->rt.arrival = next_arrival;
    t->rt.in_pending = true;
    if (!pending_.push(t)) {
      throw std::runtime_error("LocalScheduler: pending queue full");
    }
  } else {
    // Sporadic threads continue as aperiodic with their tail priority
    // (section 3.1).  The caller keeps the thread current; it is not queued.
    ledger_release(t->rt.density);
    sporadic_util_ -= t->rt.density;
    if (sporadic_util_ < 0) sporadic_util_ = 0;
    t->rt.density = 0.0;
    t->constraints = Constraints::aperiodic(t->constraints.priority);
    if (!cfg_.test_faults.stale_sporadic_tail) {
      // The tail enters the aperiodic class at the back of the round-robin
      // order: a stale rr_seq from before admission would let it jump ahead
      // of threads that have been waiting.  Any reservation made on its
      // behalf during the RT phase is utilization it no longer claims.
      t->rr_seq = ++rr_seq_counter_;
      cancel_reservation(*t);
    }
  }
}

void LocalScheduler::pump(sim::Nanos now) {
  while (!pending_.empty() && pending_.top()->rt.arrival <= now + slop_) {
    nk::Thread* t = pending_.pop();
    t->rt.in_pending = false;
    open_arrival(t);
    if (!rt_run_.push(t)) {
      throw std::runtime_error("LocalScheduler: rt run queue full");
    }
  }
  while (!sleepers_.empty() && sleepers_.top()->wake_time <= now + slop_) {
    nk::Thread* t = sleepers_.pop();
    t->state = nk::Thread::State::kReady;
    if (t->is_realtime() && t->rt.arrival_open) {
      // An RT thread that slept mid-arrival resumes EDF competition; parking
      // it with the aperiodics would let lower-class work starve it.
      if (!rt_run_.push(t)) {
        throw std::runtime_error("LocalScheduler: rt run queue full");
      }
    } else {
      t->rr_seq = ++rr_seq_counter_;
      if (!nonrt_.push(t)) {
        throw std::runtime_error("LocalScheduler: nonrt queue full");
      }
    }
  }
}

nk::Thread* LocalScheduler::select_next(sim::Nanos now,
                                        nk::PassReason reason) {
  nk::Thread* cur = exec_->current();
  const bool cur_runnable = cur != nullptr &&
                            cur->state == nk::Thread::State::kRunning &&
                            !cur->rt.in_pending;
  lazy_wake_ = kNoTimer;

  // Hard real-time first: EDF over the rt run queue and the current thread.
  const bool cur_rt_open = cur_runnable && cur->is_realtime() &&
                           cur->rt.arrival_open;
  if (cur_rt_open) {
    if (!rt_run_.empty() &&
        rt_run_.top()->rt.deadline < cur->rt.deadline) {
      nk::Thread* next = rt_run_.pop();
      if (!rt_run_.push(cur)) {
        throw std::runtime_error("LocalScheduler: rt run queue full");
      }
      return next;
    }
    return cur;
  }
  if (!rt_run_.empty()) {
    nk::Thread* top = rt_run_.top();
    if (!cfg_.eager && cur_runnable && !cur->is_idle) {
      // Lazy (non-work-conserving) variant: delay the switch to the latest
      // start that still meets the deadline, leaving margin only for the
      // *predictable* overheads (two scheduler invocations).  Missing time
      // is unpredictable by definition, so it is not in the margin — which
      // is exactly why this variant is SMI-fragile (section 3.6 ablation).
      const auto& cost = kernel_.machine().spec().cost;
      const sim::Nanos margin =
          kernel_.machine().spec().freq.cycles_to_ns_ceil(
              2 * (cost.irq_dispatch + cost.sched_pass_base +
                   cost.context_switch + cost.sched_other));
      const sim::Nanos latest_start =
          top->rt.deadline - top->rt.budget_left - margin;
      if (now < latest_start) {
        lazy_wake_ = latest_start;
        return cur;
      }
    }
    nk::Thread* next = rt_run_.pop();
    if (cur_runnable && !cur->is_idle) {
      cur->rr_seq = ++rr_seq_counter_;
      if (!nonrt_.push(cur)) {
        throw std::runtime_error("LocalScheduler: nonrt queue full");
      }
    }
    return next;
  }

  // Aperiodic: priority order, round-robin within a priority.
  if (cur_runnable && !cur->is_idle &&
      cur->constraints.cls == ConstraintClass::kAperiodic) {
    if (nonrt_.empty()) return cur;
    nk::Thread* top = nonrt_.top();
    const bool higher = top->constraints.priority < cur->constraints.priority;
    const bool quantum_expired =
        (reason == nk::PassReason::kTimer || reason == nk::PassReason::kKick)
            ? (now - quantum_start_) >= cfg_.aperiodic_quantum
            : reason == nk::PassReason::kYield;
    const bool rotate = quantum_expired &&
                        top->constraints.priority <= cur->constraints.priority;
    if (higher || rotate) {
      nk::Thread* next = nonrt_.pop();
      cur->rr_seq = ++rr_seq_counter_;
      if (!nonrt_.push(cur)) {
        throw std::runtime_error("LocalScheduler: nonrt queue full");
      }
      ++stats_.rr_rotations;
      return next;
    }
    return cur;
  }
  if (!nonrt_.empty()) return nonrt_.pop();
  if (cur_runnable) return cur;  // idle keeps running
  return kernel_.idle_thread(cpu_);
}

nk::PassResult LocalScheduler::pass(nk::PassReason reason, sim::Nanos now) {
  ++stats_.passes;
  if (reason == nk::PassReason::kTimer) ++stats_.timer_passes;
  if (reason == nk::PassReason::kKick) ++stats_.kick_passes;
  if (telemetry_ != nullptr) {
    telemetry_->on_pass(cpu_, now, static_cast<int>(reason));
  }

  // Missing-time estimation (section 3.6, docs/RESILIENCE.md): a machine
  // freeze covering a pending timer fire delays its delivery; the lateness
  // observed here is the only software-visible footprint of an SMI.  The
  // handler reads its wall clock before any handler cost is charged, so a
  // non-frozen fire arrives with lateness at most the APIC quantization.
  // Any pass past the armed fire time means delivery was delayed — a freeze
  // also delays completion events, and whichever delayed event pumps first
  // observes the same lateness, so the episode must not be gated on kTimer.
  if (cfg_.estimator.enabled) {
    estimator_.advance(now);
    if (expected_fire_ >= 0 && now >= expected_fire_) {
      estimator_.note_episode(now - expected_fire_, armed_delay_, now);
      expected_fire_ = kNoTimer;
    }
    pass_entry_ = now;
  }

  pump(now);

  // Shed/restore constraint changes queued by the storm controller apply
  // here, at the pass quiesce point (see defer_constraint_change).
  if (!deferred_changes_.empty()) {
    auto changes = std::move(deferred_changes_);
    deferred_changes_.clear();
    for (auto& d : changes) {
      const bool alive = d.thread->id == d.id && d.thread->cpu == cpu_ &&
                         d.thread->state != nk::Thread::State::kExited &&
                         d.thread->state != nk::Thread::State::kPooled;
      const bool ok = alive && change_constraints(*d.thread, d.constraints, now);
      if (d.done) d.done(d.thread, ok);
    }
  }

  // Account the current thread's real-time state.  The executor has already
  // charged its run span into budget_left.
  nk::Thread* cur = exec_->current();
  if (cur != nullptr && cur->is_realtime() && cur->rt.arrival_open &&
      cur->state == nk::Thread::State::kRunning && cur->rt.budget_left <= 0) {
    close_arrival(cur, now);
  }
  // A pending job-boundary migration fires the moment the current thread is
  // parked between arrivals (restricted migration: a job never splits across
  // CPUs).  Parked non-current threads were already handed off at request
  // time.
  if (cur != nullptr && cur->migrate_to != nk::kNoMigrateTarget &&
      cur->rt.in_pending && !cur->rt.arrival_open) {
    complete_migration(*cur, now);
  }

  nk::Thread* next = select_next(now, reason);
  audit_edf_order(next, now);
  if (next != cur) quantum_start_ = now;

  nk::PassResult result;
  result.next = next;

  // Sized tasks run directly by the scheduler, but never when they could
  // delay a real-time thread (section 3.1).
  if (!sized_tasks_.empty() && (next == nullptr || !next->is_realtime())) {
    sim::Nanos window = pending_.empty()
                            ? sim::seconds(3600)
                            : pending_.top()->rt.arrival - now;
    while (!sized_tasks_.empty() &&
           result.task_ns + sized_tasks_.front().size + slop_ <= window) {
      result.task_ns += sized_tasks_.front().size;
      result.task_callbacks.push_back(std::move(sized_tasks_.front().fn));
      sized_tasks_.pop_front();
      ++stats_.tasks_inline;
    }
  }

  const auto n = static_cast<sim::Cycles>(thread_count());
  const auto& cost = kernel_.machine().spec().cost;
  result.pass_cycles = cost.sched_pass_base + cost.sched_pass_per_thread * n;

  // Predict this handler span's cost from the same model the executor
  // charges, so arm_timer can attribute any stretch beyond it to a freeze
  // (see MissingTimeEstimator::note_span).  Admission and inline-task spans
  // have workload-dependent extra cost; exclude them from the signal.
  if (cfg_.estimator.enabled && pass_entry_ >= 0) {
    if (reason == nk::PassReason::kChangeConstraints || result.task_ns > 0) {
      pass_entry_ = kNoTimer;
    } else {
      sim::Cycles span_cycles = result.pass_cycles + cost.sched_other;
      if (result.next != cur) span_cycles += cost.context_switch;
      if (reason == nk::PassReason::kTimer || reason == nk::PassReason::kKick) {
        span_cycles += cost.irq_dispatch;
      }
      expected_span_ = kernel_.machine().spec().freq.cycles_to_ns(span_cycles);
    }
  }
  return result;
}

void LocalScheduler::arm_timer(sim::Nanos now) {
  // Freezes landing between the pass and this re-arm are invisible to the
  // delivery-lateness path: the fire expectation was already consumed, so
  // the only software-visible footprint is the handler span stretching past
  // its learned un-frozen minimum (see MissingTimeEstimator::note_span).
  // An armed fire crossed by the span is NOT charged here — its vector may
  // have pended benignly while the handler masked interrupts.
  if (cfg_.estimator.enabled && pass_entry_ >= 0) {
    estimator_.note_span(now - pass_entry_ - expected_span_, now);
    pass_entry_ = kNoTimer;
  }
  sim::Nanos next = kNoTimer;
  auto consider = [&next](sim::Nanos t) {
    if (t >= 0 && (next < 0 || t < next)) next = t;
  };

  nk::Thread* cur = exec_->current();
  if (cur != nullptr && cur->is_realtime() && cur->rt.arrival_open &&
      cur->state == nk::Thread::State::kRunning) {
    const sim::Nanos budget =
        cur->rt.budget_left > 0 ? cur->rt.budget_left : 0;
    // Budget enforcement rounds *up* by one tick: the constraint guarantees
    // *at least* sigma, so firing a tick late here is correct — whereas
    // firing early would burn an extra scheduler pass re-arming for the
    // residual few nanoseconds of budget.  Arrivals/deadlines keep the
    // conservative early-never-late rule (handled by the APIC floor
    // quantization plus the pump slop).
    consider(now + budget + slop_);
  }
  if (!pending_.empty()) consider(pending_.top()->rt.arrival);
  if (!sleepers_.empty()) consider(sleepers_.top()->wake_time);
  if (lazy_wake_ >= 0) consider(lazy_wake_);
  if (cur != nullptr && !cur->is_realtime() && !nonrt_.empty()) {
    // The rotation point can already be in the past: the quantum expired but
    // select_next kept the current thread (everything queued is lower
    // priority).  Re-arming at the stale target would fire a one-shot every
    // APIC tick forever; this pass already made the rotation decision for
    // the elapsed quantum, so the next check is one full quantum out.
    sim::Nanos rotation = quantum_start_ + cfg_.aperiodic_quantum;
    if (rotation <= now && !cfg_.test_faults.rearm_past_quantum) {
      rotation = now + cfg_.aperiodic_quantum;
    }
    consider(rotation);
  }
  // Safety net: if RT work is queued but not current (e.g. the lazy
  // variant is holding), make sure a pass happens by its deadline.
  if (!rt_run_.empty() &&
      (cur == nullptr || !cur->is_realtime())) {
    consider(rt_run_.top()->rt.deadline);
  }
  // Missing-time watchdog: bound the arming gap so freezes are sampled at a
  // known rate even on an otherwise idle CPU.  The cadence adapts — quiet
  // normally, alert once the estimate is elevated (see estimator.hpp).
  if (cfg_.estimator.enabled) {
    consider(now + estimator_.watchdog_period());
  }

  auto& apic = kernel_.machine().cpu(cpu_).apic();
  if (next < 0) {
    apic.cancel();
    expected_fire_ = kNoTimer;
    armed_delay_ = kNoTimer;
    return;
  }
  sim::Nanos delay = next - now;
  if (delay < 0) delay = 0;
  if (delay == 0) {
    ++stats_.zero_delay_arms;
    ++zero_arm_streak_;
    if (zero_arm_streak_ >= kZeroArmStormThreshold) {
      zero_arm_streak_ = 0;
      if (auditor_ != nullptr && auditor_->enabled() &&
          auditor_->config().check_timer) {
        auditor_->record(audit::Invariant::kTimerArm, cpu_, now,
                         "one-shot timer re-armed at zero delay " +
                             std::to_string(kZeroArmStormThreshold) +
                             " times in a row (past-target storm)");
      }
    }
  } else {
    zero_arm_streak_ = 0;
  }
  expected_fire_ = now + delay;
  armed_delay_ = delay;
  if (telemetry_ != nullptr) telemetry_->on_timer_arm(cpu_, now, delay);
  apic.arm_oneshot(delay);
}

void LocalScheduler::defer_constraint_change(
    nk::Thread& t, const Constraints& c,
    std::function<void(nk::Thread*, bool)> done) {
  deferred_changes_.push_back(DeferredChange{&t, t.id, c, std::move(done)});
}

bool LocalScheduler::periodic_set_admissible(
    const std::vector<PeriodicTask>& set) const {
  const double avail = effective_rt_availability();
  switch (cfg_.policy) {
    case AdmissionPolicy::kEdf:
      return edf_admissible(set, avail);
    case AdmissionPolicy::kRmLl:
      return rm_ll_admissible(set, avail);
    case AdmissionPolicy::kRmRta:
      return rm_rta_admissible(set, avail);
    case AdmissionPolicy::kSimulation: {
      SimAdmissionConfig sc;
      const auto& spec = kernel_.machine().spec();
      sc.per_invocation_overhead = spec.freq.cycles_to_ns_ceil(
          spec.cost.irq_dispatch + spec.cost.sched_pass_base +
          spec.cost.context_switch + spec.cost.sched_other);
      return simulate_edf_admission(set, sc).admissible;
    }
  }
  return false;
}

bool LocalScheduler::fast_words_fit(fp::Raw need) const {
  // Conservative by construction: demand (committed + reserved + need) was
  // rounded up on entry, capacity rounds down here, so `fit` implies the
  // exact real inequality and therefore the slow path's answer.
  const fp::Raw cap = fp::from_double_floor(effective_rt_availability());
  const fp::Raw total = fp::sat_add(
      fp::sat_add(fast_committed_.raw(), fast_reserved_.raw()), need);
  return total <= cap;
}

fp::Raw LocalScheduler::reserved_quantum(const nk::Thread& t,
                                         ConstraintClass cls) const {
  for (const auto& [rthread, rc] : reservations_) {
    if (rthread == &t && rc.cls == cls) {
      return fp::from_double_ceil(rc.utilization());
    }
  }
  return 0;
}

std::optional<bool> LocalScheduler::fast_path_decision(
    const Constraints& c) const {
  if (!cfg_.admission_enabled || !cfg_.fast_admission) return std::nullopt;
  if (cfg_.policy != AdmissionPolicy::kEdf) return std::nullopt;
  if (c.cls != ConstraintClass::kPeriodic) return std::nullopt;
  if (!c.well_formed() || c.period < cfg_.min_period ||
      c.slice < cfg_.min_slice) {
    return false;  // structural rejection; identical to the slow answer
  }
  return fast_words_fit(fp::from_double_ceil(c.utilization()));
}

bool LocalScheduler::probe_admission(const Constraints& c) {
  return c.well_formed() && admit_check(nullptr, c);
}

bool LocalScheduler::admit_check(const nk::Thread* t, const Constraints& c) {
  if (!cfg_.admission_enabled) return true;
  // Degraded-capacity admission: with resilience on, the budget shrinks by
  // the estimated missing-time fraction plus the reserve, so a storm-hit CPU
  // stops accepting load it can no longer actually deliver.
  switch (c.cls) {
    case ConstraintClass::kAperiodic:
      return true;  // aperiodic admission cannot fail (section 3.2)
    case ConstraintClass::kPeriodic: {
      if (c.period < cfg_.min_period || c.slice < cfg_.min_slice) {
        return false;
      }
      // Lock-free fast path: one word probe instead of the O(n) set build.
      // The committed word already counts t's own old utilization and the
      // reserved word its reservation, both of which the slow path would
      // exclude — extra demand only, so a fast admit is still conservative.
      // A matching-class reservation held by t covers (part of) the new
      // demand: committing it releases the held quantum, so only the
      // difference is genuinely new.
      if (cfg_.fast_admission && cfg_.policy == AdmissionPolicy::kEdf) {
        fp::Raw need = fp::from_double_ceil(c.utilization());
        if (t != nullptr) {
          const fp::Raw held = reserved_quantum(*t, c.cls);
          need = need > held ? need - held : 0;
        }
        if (fast_words_fit(need)) {
          ++stats_.fast_admits;
          return true;
        }
        ++stats_.fast_fallbacks;
      }
      return periodic_set_admissible(periodic_tasks_with(t, &c));
    }
    case ConstraintClass::kSporadic: {
      if (c.size < cfg_.min_slice) return false;
      const double density = c.utilization();
      double current = sporadic_util_;
      if (t != nullptr && t->constraints.cls == ConstraintClass::kSporadic) {
        current -= t->rt.density;
      }
      std::size_t terms = 2;  // the running sum + the new density
      for (const auto& [rthread, rc] : reservations_) {
        if (rthread != t && rc.cls == ConstraintClass::kSporadic) {
          current += rc.utilization();
          ++terms;
        }
      }
      // Conservative rounding toward reject (docs/API.md): the old blanket
      // 1e-9 epsilon admitted densities genuinely over the budget.
      return utilization_fits(current + density, terms,
                              cfg_.sporadic_reservation);
    }
  }
  return false;
}

std::vector<PeriodicTask> LocalScheduler::periodic_tasks_with(
    const nk::Thread* exclude, const Constraints* extra) const {
  std::vector<PeriodicTask> set;
  for (const nk::Thread* p : periodic_set_) {
    if (p == exclude) continue;
    set.push_back(PeriodicTask{p->constraints.period, p->constraints.slice,
                               p->constraints.phase});
  }
  for (const auto& [rt, rc] : reservations_) {
    if (rt == exclude) continue;
    if (rc.cls == ConstraintClass::kPeriodic) {
      set.push_back(PeriodicTask{rc.period, rc.slice, rc.phase});
    }
  }
  if (extra != nullptr && extra->cls == ConstraintClass::kPeriodic) {
    set.push_back(PeriodicTask{extra->period, extra->slice, extra->phase});
  }
  return set;
}

bool LocalScheduler::reserve_constraints(nk::Thread& t, const Constraints& c) {
  cancel_reservation(t);
  const bool ok = c.well_formed() && admit_check(&t, c);
  if (telemetry_ != nullptr) {
    telemetry_->on_admit(cpu_, kernel_.machine().cpu(cpu_).tsc().wall_ns(),
                         static_cast<std::uint32_t>(t.id), ok,
                         c.utilization());
  }
  if (!ok) {
    ++stats_.admissions_rejected;
    return false;
  }
  ++stats_.admissions_ok;
  reservations_.emplace_back(&t, c);
  fast_reserved_.add(fp::from_double_ceil(c.utilization()));
  return true;
}

bool LocalScheduler::reserve_batch(
    const std::vector<std::pair<nk::Thread*, Constraints>>& items) {
  ++stats_.batch_reserves;
  if (items.empty()) return true;
  // Structural validation first: one malformed spec fails the whole batch
  // (all-or-nothing), before any capacity math runs.
  for (const auto& [t, c] : items) {
    if (t == nullptr || !c.well_formed()) return false;
    if (c.cls == ConstraintClass::kPeriodic &&
        (c.period < cfg_.min_period || c.slice < cfg_.min_slice)) {
      return false;
    }
    if (c.cls == ConstraintClass::kSporadic && c.size < cfg_.min_slice) {
      return false;
    }
  }
  bool ok = true;
  if (cfg_.admission_enabled) {
    // ONE admission analysis for the whole group.  Periodic demand: either
    // a single fast-path word probe over the summed quanta, or one slow
    // analysis of (current set + every new spec) — never one pass per spec.
    fp::Raw periodic_need = 0;
    std::size_t periodic_count = 0;
    for (const auto& [t, c] : items) {
      if (c.cls != ConstraintClass::kPeriodic) continue;
      periodic_need =
          fp::sat_add(periodic_need, fp::from_double_ceil(c.utilization()));
      ++periodic_count;
    }
    if (periodic_count > 0) {
      bool periodic_ok = false;
      if (cfg_.fast_admission && cfg_.policy == AdmissionPolicy::kEdf &&
          fast_words_fit(periodic_need)) {
        ++stats_.fast_admits;
        periodic_ok = true;
      } else {
        if (cfg_.fast_admission && cfg_.policy == AdmissionPolicy::kEdf) {
          ++stats_.fast_fallbacks;
        }
        auto set = periodic_tasks_with(nullptr, nullptr);
        for (const auto& [t, c] : items) {
          if (c.cls == ConstraintClass::kPeriodic) {
            set.push_back(PeriodicTask{c.period, c.slice, c.phase});
          }
        }
        periodic_ok = periodic_set_admissible(set);
      }
      ok = periodic_ok;
    }
    // Sporadic demand goes against its own reservation budget; one summed
    // conservative comparison covers the subset.
    double sporadic_total = sporadic_util_;
    std::size_t sporadic_terms = 1;
    std::size_t sporadic_count = 0;
    for (const auto& [rthread, rc] : reservations_) {
      if (rc.cls == ConstraintClass::kSporadic) {
        sporadic_total += rc.utilization();
        ++sporadic_terms;
      }
    }
    for (const auto& [t, c] : items) {
      if (c.cls != ConstraintClass::kSporadic) continue;
      sporadic_total += c.utilization();
      ++sporadic_terms;
      ++sporadic_count;
    }
    if (sporadic_count > 0) {
      ok = ok && utilization_fits(sporadic_total, sporadic_terms,
                                  cfg_.sporadic_reservation);
    }
  }
  const sim::Nanos now = kernel_.machine().cpu(cpu_).tsc().wall_ns();
  if (!ok) {
    for (const auto& [t, c] : items) {
      ++stats_.admissions_rejected;
      if (telemetry_ != nullptr) {
        telemetry_->on_admit(cpu_, now, static_cast<std::uint32_t>(t->id),
                             false, c.utilization());
      }
    }
    return false;
  }
  for (const auto& [t, c] : items) {
    ++stats_.admissions_ok;
    if (telemetry_ != nullptr) {
      telemetry_->on_admit(cpu_, now, static_cast<std::uint32_t>(t->id), true,
                           c.utilization());
    }
    if (c.cls == ConstraintClass::kAperiodic) continue;  // nothing to hold
    cancel_reservation(*t);
    reservations_.emplace_back(t, c);
    fast_reserved_.add(fp::from_double_ceil(c.utilization()));
    ++stats_.batch_reserved_threads;
  }
  return true;
}

void LocalScheduler::cancel_reservation(nk::Thread& t) {
  for (auto it = reservations_.begin(); it != reservations_.end(); ++it) {
    if (it->first == &t) {
      fast_reserved_.release(fp::from_double_ceil(it->second.utilization()));
      reservations_.erase(it);
      return;
    }
  }
}

bool LocalScheduler::has_reservation(const nk::Thread& t) const {
  for (const auto& [rt, rc] : reservations_) {
    if (rt == &t) return true;
  }
  return false;
}

void LocalScheduler::detach_bookkeeping(nk::Thread* t) {
  pending_.remove(t);
  rt_run_.remove(t);
  nonrt_.remove(t);
  sleepers_.remove(t);
  if (t->constraints.cls == ConstraintClass::kPeriodic) {
    auto it = std::find(periodic_set_.begin(), periodic_set_.end(), t);
    if (it != periodic_set_.end()) {
      ledger_release(t->constraints.utilization());
      admitted_periodic_util_ -= t->constraints.utilization();
      if (admitted_periodic_util_ < 0) admitted_periodic_util_ = 0;
      periodic_set_.erase(it);
    }
  }
  if (t->constraints.cls == ConstraintClass::kSporadic && t->rt.density > 0) {
    ledger_release(t->rt.density);
    sporadic_util_ -= t->rt.density;
    if (sporadic_util_ < 0) sporadic_util_ = 0;
    // Zero the released density: a second detach (exit after a failed
    // change) must not double-release it.
    t->rt.density = 0.0;
  }
  // A detach (exit, or a fresh change_constraints) abandons any in-flight
  // migration; release the utilization held on the target.
  if (t->migrate_to != nk::kNoMigrateTarget) {
    auto* target =
        dynamic_cast<LocalScheduler*>(&kernel_.scheduler(t->migrate_to));
    if (target != nullptr) target->cancel_reservation(*t);
    t->migrate_to = nk::kNoMigrateTarget;
  }
  t->rt.in_pending = false;
}

bool LocalScheduler::change_constraints(nk::Thread& t, const Constraints& req,
                                        sim::Nanos gamma) {
  Constraints c = req;
  if (c.align_release && c.cls == ConstraintClass::kPeriodic && c.period > 0 &&
      c.phase >= 0) {
    // Anchored release grid (constraints.hpp): resolve the phase against the
    // actual admission time so the first arrival is the earliest grid point
    // >= gamma, then re-anchor so the stored constraints name the same grid
    // (re-admission at any future gamma re-aligns identically).
    const sim::Nanos tau = c.period;
    const sim::Nanos keep = (c.phase / tau) * tau;  // pipeline offset
    const sim::Nanos res = c.phase % tau;           // requested grid residue
    sim::Nanos r = (c.release_anchor + res - gamma) % tau;
    if (r < 0) r += tau;
    sim::Nanos a2 = (c.release_anchor + res - r) % tau;
    if (a2 < 0) a2 += tau;
    c.release_anchor = a2;
    c.phase = keep + r;
  }
  // A two-phase reservation (group admission, migration hold, batch spawn)
  // is consumed only on a SUCCESSFUL commit: the admission test excludes
  // t's own reservation, so it needs no cancel-first, and a rejected commit
  // must leave the held utilization in place for the caller's retry or
  // rollback.  (The pre-fix code cancelled up front, silently losing the
  // hold on rejection — kept behind a test fault for the regression test.)
  if (!c.well_formed() || !admit_check(&t, c)) {
    if (cfg_.test_faults.consume_reservation_on_reject) cancel_reservation(t);
    ++stats_.admissions_rejected;
    if (telemetry_ != nullptr) {
      telemetry_->on_admit(cpu_, gamma, static_cast<std::uint32_t>(t.id),
                           false, c.utilization());
    }
    return false;
  }
  cancel_reservation(t);
  ++stats_.admissions_ok;
  if (telemetry_ != nullptr) {
    telemetry_->on_admit(cpu_, gamma, static_cast<std::uint32_t>(t.id), true,
                         c.utilization());
  }
  // A sleeping thread keeps sleeping across a class change: detaching pulls
  // it out of sleepers_, so it must be re-queued there (aperiodic) or left
  // to wake into its first arrival (RT classes pass through pending_, whose
  // pump ignores thread state, so the sleep is cut short by admission — the
  // constraint's phase is the tool for delaying the first arrival).
  const bool was_sleeping = t.state == nk::Thread::State::kSleeping;
  detach_bookkeeping(&t);
  t.constraints = c;
  t.rt = nk::Thread::RtState{};
  t.rt.gamma = gamma;
  switch (c.cls) {
    case ConstraintClass::kAperiodic: {
      if (was_sleeping && !cfg_.test_faults.sleeping_change_to_nonrt) {
        // wake_time is still valid; the pump wakes it on schedule.
        if (!sleepers_.push(&t)) {
          throw std::runtime_error("LocalScheduler: sleep queue full");
        }
      } else if (&t != exec_->current()) {
        t.rr_seq = ++rr_seq_counter_;
        if (!nonrt_.push(&t)) {
          throw std::runtime_error("LocalScheduler: nonrt queue full");
        }
      }
      break;
    }
    case ConstraintClass::kPeriodic: {
      if (was_sleeping) t.state = nk::Thread::State::kReady;
      ledger_admit(c.utilization());
      admitted_periodic_util_ += c.utilization();
      periodic_set_.push_back(&t);
      t.rt.arrival = gamma + c.phase;
      t.rt.in_pending = true;
      if (!pending_.push(&t)) {
        throw std::runtime_error("LocalScheduler: pending queue full");
      }
      break;
    }
    case ConstraintClass::kSporadic: {
      if (was_sleeping) t.state = nk::Thread::State::kReady;
      t.rt.density = c.utilization();
      ledger_admit(t.rt.density);
      sporadic_util_ += t.rt.density;
      t.rt.arrival = gamma + c.phase;
      t.rt.deadline = gamma + c.deadline_offset;
      t.rt.in_pending = true;
      if (!pending_.push(&t)) {
        throw std::runtime_error("LocalScheduler: pending queue full");
      }
      break;
    }
  }
  return true;
}

sim::Cycles LocalScheduler::admission_cost_cycles(const nk::Thread& t,
                                                  const Constraints&) const {
  const auto& cost = kernel_.machine().spec().cost;
  // Committing an existing reservation skips the analysis: the utilization
  // was already accounted during group admission, so only the class switch
  // and queue moves remain.
  if (has_reservation(t)) return cost.admission_control / 20;
  return cost.admission_control;
}

void LocalScheduler::enqueue(nk::Thread* t) {
  if (t->is_realtime()) {
    throw std::logic_error(
        "LocalScheduler: only aperiodic threads may be enqueued directly");
  }
  t->state = nk::Thread::State::kReady;
  t->rr_seq = ++rr_seq_counter_;
  if (!nonrt_.push(t)) {
    throw std::runtime_error("LocalScheduler: nonrt queue full");
  }
}

void LocalScheduler::on_sleep(nk::Thread& t, sim::Nanos wake_local) {
  t.wake_time = wake_local;
  if (!sleepers_.push(&t)) {
    throw std::runtime_error("LocalScheduler: sleep queue full");
  }
}

void LocalScheduler::on_exit(nk::Thread& t) { detach_bookkeeping(&t); }

bool LocalScheduler::try_wake(nk::Thread& t) {
  if (t.state != nk::Thread::State::kSleeping) return false;
  if (!sleepers_.remove(&t)) return false;
  t.state = nk::Thread::State::kReady;
  if (t.is_realtime() && t.rt.arrival_open) {
    if (!rt_run_.push(&t)) {
      throw std::runtime_error("LocalScheduler: rt run queue full");
    }
  } else {
    t.rr_seq = ++rr_seq_counter_;
    if (!nonrt_.push(&t)) {
      throw std::runtime_error("LocalScheduler: nonrt queue full");
    }
  }
  return true;
}

void LocalScheduler::submit_task(nk::Task task) {
  auto& q = task.size >= 0 ? sized_tasks_ : unsized_tasks_;
  if (q.size() >= cfg_.max_tasks) {
    throw std::runtime_error("LocalScheduler: task queue full");
  }
  q.push_back(std::move(task));
}

nk::Task LocalScheduler::pop_unsized_task() {
  if (unsized_tasks_.empty()) {
    throw std::logic_error("LocalScheduler: no unsized task");
  }
  nk::Task t = std::move(unsized_tasks_.front());
  unsized_tasks_.pop_front();
  return t;
}

std::size_t LocalScheduler::stealable_count() const {
  std::size_t n = 0;
  nonrt_.for_each([&n](const nk::Thread* t) {
    if (!t->bound && !t->is_idle) ++n;
  });
  return n;
}

nk::Thread* LocalScheduler::try_steal() {
  return nonrt_
      .extract_if([](const nk::Thread* t) { return !t->bound && !t->is_idle; })
      .value_or(nullptr);
}

bool LocalScheduler::detach_for_migration(nk::Thread& t) {
  // RT threads migrate only through the job-boundary protocol below.
  if (t.is_realtime() || t.is_idle) return false;
  return nonrt_.remove(&t) || sleepers_.remove(&t);
}

// --- job-boundary RT migration (docs/GLOBAL.md) ---------------------------

void LocalScheduler::ledger_admit(double util) {
  // One rounding, two destinations: the same raw quantum feeds this
  // scheduler's fast-path word and the global placement ledger, so the two
  // words stay bit-identical (the kPlacementLedger audit checks exact raw
  // equality) and each differs from the shadow doubles by at most one ulp
  // per operation.
  const fp::Raw q = fp::from_double_ceil(util);
  fast_committed_.add(q);
  if (ledger_ != nullptr) ledger_->on_admit_raw(cpu_, q);
}

void LocalScheduler::ledger_release(double util) {
  const fp::Raw q = fp::from_double_ceil(util);
  fast_committed_.release(q);
  if (ledger_ == nullptr || cfg_.test_faults.drop_ledger_release) return;
  ledger_->on_release_raw(cpu_, q);
}

bool LocalScheduler::request_migration(nk::Thread& t, std::uint32_t to) {
  if (to >= kernel_.num_cpus() || to == cpu_ || t.cpu != cpu_) return false;
  if (t.constraints.cls != ConstraintClass::kPeriodic) return false;
  if (t.state == nk::Thread::State::kExited ||
      t.state == nk::Thread::State::kPooled) {
    return false;
  }
  if (t.migrate_to != nk::kNoMigrateTarget) return false;  // already in flight
  auto* target = dynamic_cast<LocalScheduler*>(&kernel_.scheduler(to));
  if (target == nullptr) return false;
  // Hold the utilization on the target now, so the space is still there when
  // the job boundary arrives.
  if (!target->reserve_constraints(t, t.constraints)) return false;
  t.migrate_to = to;
  ++stats_.migrations_requested;
  if (telemetry_ != nullptr) {
    telemetry_->on_migration(cpu_, kernel_.machine().cpu(cpu_).tsc().wall_ns(),
                             static_cast<std::uint32_t>(t.id),
                             telemetry::EventKind::kMigrateRequest, to);
  }
  // Parked between arrivals and not current: hand off immediately.  In every
  // other case pass() completes the migration at the next arrival close.
  nk::Thread* cur = exec_ != nullptr ? exec_->current() : nullptr;
  if (&t != cur && t.rt.in_pending && !t.rt.arrival_open) {
    complete_migration(t, kernel_.machine().cpu(cpu_).tsc().wall_ns());
  }
  return true;
}

void LocalScheduler::complete_migration(nk::Thread& t, sim::Nanos now) {
  const std::uint32_t to = t.migrate_to;
  t.migrate_to = nk::kNoMigrateTarget;  // before detach: keep the reservation
  auto* target = dynamic_cast<LocalScheduler*>(&kernel_.scheduler(to));
  if (target == nullptr) return;
  // Re-admission on the target starts a fresh RtState; carry the lifetime
  // statistics over so the migration is invisible in arrival/miss counters,
  // and rebase the phase so the next arrival lands exactly on schedule.
  const nk::Thread::RtState saved = t.rt;
  Constraints c = t.constraints;
  c.phase = saved.arrival > now ? saved.arrival - now : 0;
  detach_bookkeeping(&t);
  if (t.state == nk::Thread::State::kRunning) {
    // The executor's switch-away would flip this after the pass; the target
    // may audit its queues before then, so settle the state here.
    t.state = nk::Thread::State::kReady;
  }
  if (!cfg_.test_faults.stale_migrate_cpu) t.cpu = to;
  bool ok = target->change_constraints(t, c, now);
  if (ok) {
    ++stats_.migrations_out;
    ++target->stats_.migrations_in;
    if (telemetry_ != nullptr) {
      telemetry_->on_migration(cpu_, now, static_cast<std::uint32_t>(t.id),
                               telemetry::EventKind::kMigrateOut, to);
      telemetry_->on_migration(to, now, static_cast<std::uint32_t>(t.id),
                               telemetry::EventKind::kMigrateIn, cpu_);
    }
    kernel_.machine().send_ipi(cpu_, to, hw::kKickVector);
  } else {
    // The reservation held the target utilization, so this only happens
    // when the target's capacity shrank underneath the hold (degraded
    // admission during an SMI storm); put the thread back here (its
    // utilization was just released, so local re-admission passes), or
    // demote it rather than lose it.  The failed commit did NOT consume the
    // reservation, and it lives on the *target* CPU — release it there.
    // Releasing on the original candidate instead (the seeded
    // migration_rollback_wrong_cpu fault) leaks the target's held
    // utilization forever.
    ++stats_.migration_failures;
    if (cfg_.test_faults.migration_rollback_wrong_cpu) {
      cancel_reservation(t);
    } else {
      target->cancel_reservation(t);
    }
    t.cpu = cpu_;
    ok = change_constraints(t, c, now);
    if (auditor_ != nullptr && auditor_->enabled() &&
        auditor_->config().check_migration) {
      auditor_->record(audit::Invariant::kMigration, cpu_, now,
                       "thread " + std::to_string(t.id) + " hand-off to cpu " +
                           std::to_string(to) +
                           " failed despite a reservation" +
                           (ok ? " (re-admitted locally)"
                               : " (demoted to aperiodic)"));
    }
    if (!ok) {
      t.constraints = Constraints::aperiodic(t.constraints.priority);
      t.rt = nk::Thread::RtState{};
      nk::Thread* cur = exec_ != nullptr ? exec_->current() : nullptr;
      if (&t != cur) enqueue(&t);
    }
  }
  t.rt.arrivals += saved.arrivals;
  t.rt.completions += saved.completions;
  t.rt.misses += saved.misses;
  t.rt.miss_ns = saved.miss_ns;
  t.rt.switch_latency = saved.switch_latency;
}

std::size_t LocalScheduler::thread_count() const {
  std::size_t n =
      pending_.size() + rt_run_.size() + nonrt_.size() + sleepers_.size();
  // The current thread is counted only when no queue holds it: mid-pass,
  // select_next may already have re-queued it into rt_run_/nonrt_ (rotation,
  // RT preemption), and counting it twice inflates the pass cost charged.
  const nk::Thread* cur =
      exec_ != nullptr ? exec_->current() : nullptr;
  if (cur != nullptr && (cur->heap_index.owner == nullptr ||
                         cfg_.test_faults.double_count_current)) {
    ++n;
  }
  return n;
}

// --- invariant audits (audit/auditor.hpp) ---------------------------------
//
// All checks are gated on the auditor being present and enabled, so a
// default-configured system pays one null-pointer test per hook.

void LocalScheduler::audit_state(sim::Nanos now) {
  if (auditor_ == nullptr || !auditor_->enabled()) return;
  if (auditor_->config().check_queues) audit_queues(now);
  if (auditor_->config().check_utilization) audit_utilization(now);
}

void LocalScheduler::audit_queues(sim::Nanos now) {
  auditor_->count_check();
  auto bad = [&](const std::string& detail) {
    auditor_->record(audit::Invariant::kQueueState, cpu_, now, detail);
  };
  std::string why;
  if (!pending_.validate(&why)) bad("pending_: " + why);
  if (!rt_run_.validate(&why)) bad("rt_run_: " + why);
  if (!nonrt_.validate(&why)) bad("nonrt_: " + why);
  if (!sleepers_.validate(&why)) bad("sleepers_: " + why);

  const nk::Thread* cur = exec_ != nullptr ? exec_->current() : nullptr;
  auto who = [](const nk::Thread* t) {
    return "thread " + std::to_string(t->id) + " (" + t->name + ")";
  };
  // Migration invariant: everything queued here is owned by this CPU.  A
  // mismatch means a hand-off (steal, migrate) queued a thread without
  // re-homing it.
  const bool check_owner = auditor_->config().check_migration;
  auto owned = [&](const nk::Thread* t) {
    if (check_owner && t->cpu != cpu_) {
      auditor_->record(audit::Invariant::kMigration, cpu_, now,
                       who(t) + " queued on cpu " + std::to_string(cpu_) +
                           " but owned by cpu " + std::to_string(t->cpu));
    }
  };
  pending_.for_each([&](const nk::Thread* t) {
    owned(t);
    if (t == cur) bad(who(t) + " is current but queued in pending_");
    if (!t->rt.in_pending) bad(who(t) + " in pending_ without in_pending set");
    if (!t->is_realtime()) bad(who(t) + " in pending_ but not real-time");
    if (t->state != nk::Thread::State::kReady) {
      bad(who(t) + " in pending_ with non-ready state");
    }
  });
  rt_run_.for_each([&](const nk::Thread* t) {
    owned(t);
    if (t == cur) bad(who(t) + " is current but queued in rt_run_");
    if (!t->is_realtime() || !t->rt.arrival_open) {
      bad(who(t) + " in rt_run_ without an open RT arrival");
    }
    if (t->rt.in_pending) bad(who(t) + " in rt_run_ with in_pending set");
    if (t->state != nk::Thread::State::kReady) {
      bad(who(t) + " in rt_run_ with non-ready state");
    }
  });
  nonrt_.for_each([&](const nk::Thread* t) {
    owned(t);
    if (t == cur) bad(who(t) + " is current but queued in nonrt_");
    if (t->is_realtime() && t->rt.arrival_open) {
      bad(who(t) + " has an open RT arrival but sits in nonrt_");
    }
    if (t->state != nk::Thread::State::kReady) {
      bad(who(t) + " in nonrt_ with non-ready state");
    }
  });
  sleepers_.for_each([&](const nk::Thread* t) {
    owned(t);
    if (t == cur) bad(who(t) + " is current but queued in sleepers_");
    if (t->state != nk::Thread::State::kSleeping) {
      bad(who(t) + " in sleepers_ but not sleeping");
    }
  });
}

void LocalScheduler::audit_utilization(sim::Nanos now) {
  auditor_->count_check();
  double periodic = 0.0;
  for (const nk::Thread* t : periodic_set_) {
    periodic += t->constraints.utilization();
  }
  if (std::abs(periodic - admitted_periodic_util_) > kLedgerEps) {
    auditor_->record(
        audit::Invariant::kUtilization, cpu_, now,
        "periodic ledger " + std::to_string(admitted_periodic_util_) +
            " != recomputed " + std::to_string(periodic));
  }
  double sporadic = 0.0;
  auto add = [&sporadic](const nk::Thread* t) {
    if (t->constraints.cls == ConstraintClass::kSporadic) {
      sporadic += t->rt.density;
    }
  };
  pending_.for_each(add);
  rt_run_.for_each(add);
  nonrt_.for_each(add);
  sleepers_.for_each(add);
  const nk::Thread* cur = exec_ != nullptr ? exec_->current() : nullptr;
  if (cur != nullptr && cur->heap_index.owner == nullptr) add(cur);
  if (std::abs(sporadic - sporadic_util_) > kLedgerEps) {
    auditor_->record(audit::Invariant::kUtilization, cpu_, now,
                     "sporadic ledger " + std::to_string(sporadic_util_) +
                         " != recomputed " + std::to_string(sporadic));
  }
  // Placement-ledger invariant: the global subsystem's per-CPU view must
  // track this scheduler's own ledgers exactly (same deltas, same clamping).
  if (ledger_ != nullptr && auditor_->config().check_placement_ledger) {
    const double mine = admitted_periodic_util_ + sporadic_util_;
    if (std::abs(ledger_->committed(cpu_) - mine) > kLedgerEps) {
      auditor_->record(
          audit::Invariant::kPlacementLedger, cpu_, now,
          "placement ledger " + std::to_string(ledger_->committed(cpu_)) +
              " != scheduler ledgers " + std::to_string(mine));
    }
    // Lock-free word cross-checks (docs/AUDIT.md): the global ledger's
    // Q32.32 word is fed the same raw quanta as the local fast-path word,
    // so the two must be bit-identical; and the word may diverge from the
    // shadow doubles by at most one ulp per operation (demand rounds up
    // once per admit/release, integer accumulation is exact).
    if (ledger_->committed_raw(cpu_) != fast_committed_.raw()) {
      auditor_->record(
          audit::Invariant::kPlacementLedger, cpu_, now,
          "placement ledger word " +
              std::to_string(ledger_->committed_raw(cpu_)) +
              " != scheduler fast-path word " +
              std::to_string(fast_committed_.raw()));
    }
    const double word_drift = std::abs(fast_committed_.value() - mine);
    if (word_drift > fast_committed_.ulp_budget() + kLedgerEps) {
      auditor_->record(
          audit::Invariant::kPlacementLedger, cpu_, now,
          "fast-path word " + std::to_string(fast_committed_.value()) +
              " drifted " + std::to_string(word_drift) +
              " from double ledgers " + std::to_string(mine) + " (budget " +
              std::to_string(fast_committed_.ulp_budget() + kLedgerEps) +
              " after " + std::to_string(fast_committed_.ops()) + " ops)");
    }
  }
  // Reserved-word invariant: the reservation list and its Q32.32 mirror
  // must agree exactly (same ceil rounding on entry and exit).
  fp::Raw reserved_sum = 0;
  for (const auto& [rthread, rc] : reservations_) {
    reserved_sum =
        fp::sat_add(reserved_sum, fp::from_double_ceil(rc.utilization()));
  }
  if (reserved_sum != fast_reserved_.raw()) {
    auditor_->record(audit::Invariant::kUtilization, cpu_, now,
                     "reserved fast-path word " +
                         std::to_string(fast_reserved_.raw()) +
                         " != recomputed reservation sum " +
                         std::to_string(reserved_sum));
  }
  // Stale-reservation invariant: every hold must belong to a thread homed
  // here or migrating here.  A reservation whose owner neither lives on
  // this CPU nor targets it is a rollback leak (the migration hand-off
  // failure path released the wrong CPU's hold) and would depress this
  // CPU's admission capacity forever.
  if (auditor_->config().check_migration) {
    for (const auto& [rthread, rc] : reservations_) {
      if (rthread->cpu != cpu_ && rthread->migrate_to != cpu_) {
        auditor_->record(
            audit::Invariant::kMigration, cpu_, now,
            "reservation held for thread " + std::to_string(rthread->id) +
                " which is homed on cpu " + std::to_string(rthread->cpu) +
                " and not migrating here (leaked rollback hold)");
      }
    }
  }
}

void LocalScheduler::audit_edf_order(const nk::Thread* next, sim::Nanos now) {
  if (auditor_ == nullptr || !auditor_->enabled() ||
      !auditor_->config().check_edf_order || !cfg_.eager) {
    return;  // the lazy ablation delays RT dispatch by design
  }
  auditor_->count_check();
  if (rt_run_.empty()) return;
  const nk::Thread* top = rt_run_.top();
  if (next == nullptr || !next->is_realtime() || !next->rt.arrival_open) {
    auditor_->record(audit::Invariant::kEdfOrder, cpu_, now,
                     "dispatching a non-RT thread while thread " +
                         std::to_string(top->id) + " (deadline " +
                         std::to_string(top->rt.deadline) +
                         ") waits in rt_run_");
  } else if (top->rt.deadline < next->rt.deadline) {
    auditor_->record(audit::Invariant::kEdfOrder, cpu_, now,
                     "dispatching thread " + std::to_string(next->id) +
                         " (deadline " + std::to_string(next->rt.deadline) +
                         ") over earlier-deadline thread " +
                         std::to_string(top->id) + " (deadline " +
                         std::to_string(top->rt.deadline) + ")");
  }
}

void LocalScheduler::audit_budget(const nk::Thread* t, sim::Nanos now) {
  if (auditor_ == nullptr || !auditor_->enabled() ||
      !auditor_->config().check_budget) {
    return;
  }
  auditor_->count_check();
  const sim::Nanos overrun = -t->rt.budget_left;
  if (overrun > budget_audit_slop_) {
    const sim::Nanos sigma = t->constraints.cls == ConstraintClass::kPeriodic
                                 ? t->constraints.slice
                                 : t->constraints.size;
    auditor_->record(audit::Invariant::kBudget, cpu_, now,
                     "thread " + std::to_string(t->id) + " charged " +
                         std::to_string(sigma + overrun) +
                         "ns against a budget of " + std::to_string(sigma) +
                         "ns (tolerance " +
                         std::to_string(budget_audit_slop_) + "ns)");
  }
}

nk::Kernel::SchedulerFactory make_scheduler_factory(
    LocalScheduler::Config cfg) {
  return [cfg](nk::Kernel& k, std::uint32_t cpu) {
    return std::make_unique<LocalScheduler>(k, cpu, cfg);
  };
}

}  // namespace hrt::rt
