// Admission control analyses (section 3.2).
//
// "Periodic and sporadic threads are admitted based on the classic single
// CPU schemes for rate monotonic (RM) and earliest deadline first (EDF)
// models [Liu & Layland 1973]."  The module provides, over a candidate set
// of periodic constraints and an available utilization budget:
//   * the EDF utilization test (exact for implicit deadlines),
//   * the Liu-Layland RM bound, plus exact response-time analysis (RTA),
//   * the paper's prototype simulation-based admission: simulate the local
//     scheduler over a hyperperiod and accept iff no deadline is missed
//     ("We developed one prototype that did admission for a periodic
//     thread-only model by simulating the local scheduler for a
//     hyperperiod").
#pragma once

#include <cstdint>
#include <vector>

#include "rt/constraints.hpp"
#include "sim/time.hpp"

namespace hrt::rt {

struct PeriodicTask {
  sim::Nanos period;
  sim::Nanos slice;
  sim::Nanos phase = 0;
};

/// Sum of slice/period over the set, computed with Neumaier compensated
/// summation so the accumulated error is O(eps), independent of set size.
[[nodiscard]] double total_utilization(const std::vector<PeriodicTask>& set);

/// Rounding slack for admission boundary comparisons: covers one double
/// rounding per contributing term (each utilization is one division, the
/// compensated sum adds O(eps) more), scaled by the comparison magnitude.
/// Deliberately far below the old blanket 1e-9 epsilon, which admitted sets
/// genuinely over capacity by up to 1e-9: a demand overshoot of even one
/// 2^-43 utilization quantum must reject, while a set whose exact rational
/// sum equals the capacity must still admit despite per-term representation
/// error.  Rounds toward reject by construction.
[[nodiscard]] inline double admission_slack(std::size_t terms, double scale) {
  constexpr double kDoubleEps = 2.220446049250313e-16;
  const double mag = scale > 1.0 ? scale : 1.0;
  return 4.0 * kDoubleEps * static_cast<double>(terms + 1) * mag;
}

/// Conservative boundary comparison: total <= available, tolerating only
/// the provable double-rounding error of `terms` contributions.
[[nodiscard]] inline bool utilization_fits(double total, std::size_t terms,
                                           double available) {
  return total <= available + admission_slack(terms, available);
}

/// EDF: schedulable on `available` fraction of a CPU iff U <= available.
[[nodiscard]] bool edf_admissible(const std::vector<PeriodicTask>& set,
                                  double available);

/// RM, Liu-Layland sufficient bound: U <= n (2^(1/n) - 1), scaled by the
/// available fraction.  Conservative; never admits an unschedulable set.
[[nodiscard]] bool rm_ll_admissible(const std::vector<PeriodicTask>& set,
                                    double available);

/// RM, exact response-time analysis (Joseph & Pandya).  Only valid for a
/// full CPU (available == 1.0 semantics are approximated by inflating
/// slices by 1/available).
[[nodiscard]] bool rm_rta_admissible(const std::vector<PeriodicTask>& set,
                                     double available);

struct SimAdmissionConfig {
  /// Per-scheduler-invocation overhead charged in the simulation; this is
  /// how the utilization limit's headroom for the scheduler itself is
  /// reflected (two invocations bound each slice: arrival and timeout).
  sim::Nanos per_invocation_overhead = 0;
  /// Cap on the simulated horizon; hyperperiods beyond this are rejected
  /// (admission must itself be bounded).
  sim::Nanos max_horizon = sim::millis(500);
};

struct SimAdmissionResult {
  bool admissible = false;
  bool horizon_exceeded = false;  // hyperperiod too long to simulate
  sim::Nanos hyperperiod = 0;
  std::uint64_t missed_deadlines = 0;
};

/// Simulate an eager-EDF schedule of `set` for one hyperperiod (plus the
/// largest phase) and report whether every arrival receives its slice by
/// its deadline.
[[nodiscard]] SimAdmissionResult simulate_edf_admission(
    const std::vector<PeriodicTask>& set, const SimAdmissionConfig& cfg);

}  // namespace hrt::rt
