// CyclicExecutiveScheduler: run a statically constructed cyclic executive
// (section 8 future work) as a per-CPU scheduler.
//
// Where the EDF local scheduler decides at run time, this scheduler decides
// nothing: the frame table built by CyclicExecutiveBuilder fixes which task
// runs at every instant of the hyperperiod.  Threads claim task slots by
// requesting periodic constraints that exactly match a slot; once every
// slot is claimed the executive starts at the next hyperperiod boundary of
// the local clock, and the timer simply walks the precomputed segment list.
// Aperiodic threads run in the idle segments.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "nautilus/kernel.hpp"
#include "nautilus/scheduler.hpp"
#include "rt/cyclic_executive.hpp"

namespace hrt::rt {

class CyclicExecutiveScheduler final : public nk::SchedulerBase {
 public:
  CyclicExecutiveScheduler(nk::Kernel& kernel, std::uint32_t cpu,
                           CyclicExecutive executive,
                           std::vector<PeriodicTask> tasks);

  // --- nk::SchedulerBase ---
  void attach(nk::CpuExecutor* exec) override { exec_ = exec; }
  nk::PassResult pass(nk::PassReason reason, sim::Nanos now) override;
  void arm_timer(sim::Nanos now) override;
  bool change_constraints(nk::Thread& t, const Constraints& c,
                          sim::Nanos gamma) override;
  [[nodiscard]] sim::Cycles admission_cost_cycles(
      const nk::Thread&, const Constraints&) const override {
    // Admission is a table lookup: find a matching unclaimed slot.
    return 2000;
  }
  void enqueue(nk::Thread* t) override;
  void on_sleep(nk::Thread& t, sim::Nanos wake_local) override;
  void on_exit(nk::Thread& t) override;
  bool try_wake(nk::Thread& t) override;
  void submit_task(nk::Task task) override;
  [[nodiscard]] std::size_t stealable_count() const override { return 0; }
  nk::Thread* try_steal() override { return nullptr; }
  [[nodiscard]] std::size_t thread_count() const override;
  [[nodiscard]] double admitted_utilization() const override;

  // --- introspection ---
  [[nodiscard]] bool active() const { return epoch_ >= 0; }
  [[nodiscard]] sim::Nanos epoch() const { return epoch_; }
  [[nodiscard]] std::size_t slots_claimed() const;
  [[nodiscard]] const CyclicExecutive& executive() const { return executive_; }

  /// Factory for Kernel::Options: every CPU gets the same executive.
  [[nodiscard]] static nk::Kernel::SchedulerFactory factory(
      CyclicExecutive executive, std::vector<PeriodicTask> tasks);

 private:
  struct Segment {
    sim::Nanos start;     // offset within the hyperperiod
    sim::Nanos duration;
    int slot;             // -1 = idle segment
  };

  void build_segments();
  void maybe_activate(sim::Nanos now);
  [[nodiscard]] const Segment& segment_at(sim::Nanos now) const;
  [[nodiscard]] sim::Nanos segment_end_wall(sim::Nanos now) const;

  nk::Kernel& kernel_;
  std::uint32_t cpu_;
  nk::CpuExecutor* exec_ = nullptr;
  CyclicExecutive executive_;
  std::vector<PeriodicTask> tasks_;
  std::vector<nk::Thread*> slot_threads_;
  std::vector<Segment> segments_;
  sim::Nanos epoch_ = -1;  // wall time the executive started; -1 = inactive
  sim::Nanos slop_;        // timer earliness tolerance (one APIC tick)

  std::deque<nk::Thread*> aperiodic_;
  std::deque<nk::Thread*> sleepers_;
  std::deque<nk::Task> tasks_queue_;
};

}  // namespace hrt::rt
