#include "rt/report.hpp"

#include <iomanip>
#include <vector>

namespace hrt::rt {

namespace {

const char* class_name(ConstraintClass cls) {
  switch (cls) {
    case ConstraintClass::kAperiodic:
      return "aperiodic";
    case ConstraintClass::kPeriodic:
      return "periodic";
    case ConstraintClass::kSporadic:
      return "sporadic";
  }
  return "?";
}

const char* state_name(nk::Thread::State s) {
  switch (s) {
    case nk::Thread::State::kReady:
      return "ready";
    case nk::Thread::State::kRunning:
      return "running";
    case nk::Thread::State::kSleeping:
      return "sleeping";
    case nk::Thread::State::kExited:
      return "exited";
    case nk::Thread::State::kPooled:
      return "pooled";
  }
  return "?";
}

}  // namespace

void print_cpu_report(System& sys, std::ostream& os,
                      const ReportOptions& opt) {
  // Per-CPU deadline misses, aggregated from the live thread table (cheap,
  // and available whether or not telemetry is enabled).
  std::vector<std::uint64_t> misses(sys.kernel().num_cpus(), 0);
  for (const nk::Thread* t : sys.kernel().live_threads()) {
    if (t->cpu < misses.size()) misses[t->cpu] += t->rt.misses;
  }
  os << "cpu   passes  timer   kick  switch  adm-ok adm-rej  util eff-cap "
        "  miss   pend rtq  apq  pass-cyc\n";
  for (std::uint32_t c = 0; c < sys.kernel().num_cpus(); ++c) {
    auto& sched = sys.sched(c);
    const auto& st = sched.stats();
    const auto& oh = sys.kernel().executor(c).overheads();
    if (opt.skip_quiet_cpus && st.passes < 2) continue;
    os << std::setw(3) << c << std::setw(9) << st.passes << std::setw(7)
       << st.timer_passes << std::setw(7) << st.kick_passes << std::setw(8)
       << oh.switches << std::setw(8) << st.admissions_ok << std::setw(8)
       << st.admissions_rejected << std::setw(7) << std::fixed
       << std::setprecision(2) << sched.admitted_utilization() << std::setw(8)
       << sched.effective_rt_availability() << std::setw(7) << misses[c]
       << std::setw(6) << sched.pending_count() << std::setw(5)
       << sched.rt_run_count() << std::setw(5) << sched.nonrt_count()
       << std::setw(10) << std::setprecision(0) << oh.pass.mean() << "\n";
  }
}

void print_thread_report(System& sys, std::ostream& os,
                         const ReportOptions& opt) {
  const bool tel_on = sys.telemetry().enabled();
  os << "id    name           cpu class      state     arriv   compl  "
        "miss     cpu-ms  disp";
  if (tel_on) os << "  slo-burn";
  os << "\n";
  sys.sync_accounting();
  for (const nk::Thread* t : sys.kernel().live_threads()) {
    if (t->is_idle && !opt.include_idle_threads) continue;
    if (t->state == nk::Thread::State::kPooled &&
        !opt.include_pooled_threads) {
      continue;
    }
    os << std::setw(4) << t->id << "  " << std::setw(13) << std::left
       << t->name << std::right << std::setw(4) << t->cpu << " "
       << std::setw(10) << std::left << class_name(t->constraints.cls)
       << std::setw(9) << state_name(t->state) << std::right << std::setw(8)
       << t->rt.arrivals << std::setw(8) << t->rt.completions << std::setw(6)
       << t->rt.misses << std::setw(11) << std::fixed << std::setprecision(3)
       << static_cast<double>(t->total_cpu_ns) / 1e6 << std::setw(6)
       << t->dispatches;
    if (tel_on) {
      const auto burn =
          sys.telemetry().slo().burn_rate_for(t->name, sys.engine().now());
      if (burn.has_value()) {
        os << std::setw(10) << std::fixed << std::setprecision(2) << *burn;
      } else {
        os << std::setw(10) << "-";
      }
    }
    os << "\n";
  }
}

void print_audit_report(System& sys, std::ostream& os) {
  const audit::Auditor& aud = sys.auditor();
  if (!aud.enabled()) return;
  os << "audit: " << aud.checks_run() << " checks, "
     << aud.total_violations() << " violations\n";
  for (const audit::Violation& v : aud.violations()) {
    os << "  [" << audit::invariant_name(v.invariant) << "] cpu " << v.cpu
       << " t=" << v.time << "ns: " << v.detail << "\n";
  }
  const std::uint64_t dropped =
      aud.total_violations() - aud.violations().size();
  if (dropped > 0) os << "  (+" << dropped << " more not recorded)\n";
}

void print_telemetry_report(System& sys, std::ostream& os) {
  telemetry::Telemetry& tel = sys.telemetry();
  if (!tel.enabled()) return;
  const telemetry::FlightRecorder& rec = tel.recorder();
  os << "telemetry: " << rec.written() << " events recorded, " << rec.dropped()
     << " dropped";
  if (rec.sampled_cost_ns().count() > 0) {
    os << ", ~" << std::fixed << std::setprecision(0)
       << rec.sampled_cost_ns().mean() << " host-ns/record";
  }
  os << "\n";
  os << "cpu   passes switch   kick  tm-arm  compl  miss mig-in mig-out "
        "shed  span-ns eff-cap\n";
  for (std::uint32_t c = 0; c < tel.metrics().num_cpus(); ++c) {
    const telemetry::CpuMetrics& m = tel.metrics().cpu(c);
    if (m.passes == 0 && m.completions == 0) continue;
    os << std::setw(3) << c << std::setw(9) << m.passes << std::setw(7)
       << m.switches << std::setw(7) << m.kicks << std::setw(8) << m.timer_arms
       << std::setw(7) << m.completions << std::setw(6) << m.misses
       << std::setw(7) << m.migrations_in << std::setw(8) << m.migrations_out
       << std::setw(5) << m.sheds << std::setw(9) << std::fixed
       << std::setprecision(0) << m.pass_span_ns.mean() << std::setw(8)
       << std::setprecision(2) << m.effective_capacity << "\n";
  }
  if (tel.slo().size() > 0) {
    os << "slo            compl   miss  burn  state  alerts\n";
    for (const telemetry::SloStatus& st : tel.slo().status(sys.engine().now())) {
      os << std::setw(13) << std::left << st.spec->name << std::right
         << std::setw(8) << st.completions << std::setw(7) << st.misses
         << std::setw(6) << std::fixed << std::setprecision(2) << st.burn_rate
         << std::setw(7) << (st.alerting ? "ALERT" : "ok") << std::setw(8)
         << st.alerts << "\n";
    }
  }
}

void print_report(System& sys, std::ostream& os, const ReportOptions& opt) {
  os << "=== machine: " << sys.machine().spec().name << ", "
     << sys.machine().num_cpus() << " CPUs @ " << std::fixed
     << std::setprecision(1) << sys.machine().spec().freq.ghz()
     << " GHz ===\n";
  const hw::SmiStats smi = sys.machine().smi().stats();
  os << "now=" << sys.engine().now() << " ns  events="
     << sys.engine().events_executed() << "  smis=" << smi.count << " (stole "
     << smi.total_stolen_ns / 1000 << " us)\n\n";
  print_cpu_report(sys, os, opt);
  os << "\n";
  print_thread_report(sys, os, opt);
  if (sys.auditor().enabled()) {
    os << "\n";
    print_audit_report(sys, os);
  }
  if (sys.telemetry().enabled()) {
    os << "\n";
    print_telemetry_report(sys, os);
  }
}

}  // namespace hrt::rt
