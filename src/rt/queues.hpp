// Fixed-capacity binary heap, optionally with intrusive index tracking.
//
// "The maximum number of threads in the whole system is determined at
// compile time, each local scheduler uses fixed size priority queues ...
// As a result, the time spent in a local scheduler invocation is bounded"
// (section 3.3).  The heap never allocates after construction; push beyond
// capacity fails explicitly.
//
// Index tracking: scheduler elements (threads) record which heap they sit in
// and at what position, via a HeapIndex field updated on every sift.  That
// turns remove() from an O(n) scan + re-sift into an O(log n) locate +
// re-sift — and, just as important on the hot path, into an O(1) *miss* when
// the element is in some other queue (detach_bookkeeping probes all four
// scheduler queues on every thread teardown).  An element can be tracked by
// at most one indexed heap at a time; the scheduler's queues are mutually
// exclusive states, so this invariant holds by construction.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace hrt::rt {

/// Embedded bookkeeping for elements tracked by an indexed BoundedHeap.
struct HeapIndex {
  void* owner = nullptr;  // the heap currently holding the element
  std::uint32_t pos = 0;  // position within that heap
};

/// Index policy for pointer-like elements exposing a `heap_index` member.
template <typename P>
struct MemberIndex {
  static HeapIndex& of(const P& p) { return p->heap_index; }
};

/// Index policy disabling tracking (remove() falls back to a linear scan).
struct NoIndex {};

/// Before(a, b) == true means a is dequeued before b.
template <typename T, typename Before, typename Index = NoIndex>
class BoundedHeap {
  static constexpr bool kIndexed = !std::is_same_v<Index, NoIndex>;

 public:
  explicit BoundedHeap(std::size_t capacity, Before before = Before())
      : capacity_(capacity), before_(std::move(before)) {
    heap_.reserve(capacity);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Returns false when full.
  [[nodiscard]] bool push(T v) {
    if (heap_.size() >= capacity_) return false;
    heap_.push_back(std::move(v));
    reindex(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return true;
  }

  [[nodiscard]] const T& top() const {
    if (heap_.empty()) throw std::logic_error("BoundedHeap: top of empty");
    return heap_.front();
  }

  T pop() {
    if (heap_.empty()) throw std::logic_error("BoundedHeap: pop of empty");
    T out = std::move(heap_.front());
    unindex(out);
    fill_hole(0);
    return out;
  }

  /// True if this heap currently holds `v`.  O(1) when indexed.
  [[nodiscard]] bool contains(const T& v) const {
    if constexpr (kIndexed) {
      return Index::of(v).owner == this;
    } else {
      for (const T& e : heap_) {
        if (e == v) return true;
      }
      return false;
    }
  }

  /// Remove a specific element.  Returns false if absent.  O(log n) when
  /// indexed (O(1) when `v` is tracked by another heap or none); O(n) scan
  /// otherwise.
  bool remove(const T& v) {
    if constexpr (kIndexed) {
      const HeapIndex& hi = Index::of(v);
      if (hi.owner != this) return false;
      assert(hi.pos < heap_.size() && heap_[hi.pos] == v);
      remove_at(hi.pos);
      return true;
    } else {
      for (std::size_t i = 0; i < heap_.size(); ++i) {
        if (heap_[i] == v) {
          remove_at(i);
          return true;
        }
      }
      return false;
    }
  }

  /// Remove and return the first element satisfying pred (heap order scan),
  /// or std::nullopt if none matches.
  template <typename Pred>
  std::optional<T> extract_if(Pred pred) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pred(heap_[i])) {
        T out = std::move(heap_[i]);
        unindex(out);
        fill_hole(i);
        return out;
      }
    }
    return std::nullopt;
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const T& v : heap_) fn(v);
  }

  void clear() {
    if constexpr (kIndexed) {
      for (T& v : heap_) unindex(v);
    }
    heap_.clear();
  }

  /// Structural audit: the heap order holds at every edge and, when indexed,
  /// every element's HeapIndex points back here at the right position.  O(n);
  /// meant for the invariant auditor, not the hot path.
  [[nodiscard]] bool validate(std::string* why = nullptr) const {
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      const std::size_t parent = (i - 1) / 2;
      if (before_(heap_[i], heap_[parent])) {
        if (why != nullptr) {
          *why = "heap order violated at index " + std::to_string(i);
        }
        return false;
      }
    }
    if constexpr (kIndexed) {
      for (std::size_t i = 0; i < heap_.size(); ++i) {
        const HeapIndex& hi = Index::of(heap_[i]);
        if (hi.owner != this || hi.pos != i) {
          if (why != nullptr) {
            *why = "intrusive index mismatch at position " + std::to_string(i);
          }
          return false;
        }
      }
    }
    return true;
  }

 private:
  void reindex(std::size_t i) {
    if constexpr (kIndexed) {
      HeapIndex& hi = Index::of(heap_[i]);
      hi.owner = this;
      hi.pos = static_cast<std::uint32_t>(i);
    }
  }

  void unindex(const T& v) {
    if constexpr (kIndexed) {
      Index::of(v).owner = nullptr;
    }
  }

  void remove_at(std::size_t i) {
    unindex(heap_[i]);
    fill_hole(i);
  }

  /// Move the last element into hole `i` and restore heap order.
  void fill_hole(std::size_t i) {
    const std::size_t last = heap_.size() - 1;
    if (i != last) {
      heap_[i] = std::move(heap_[last]);
      heap_.pop_back();
      reindex(i);
      sift_down(i);
      sift_up(i);
    } else {
      heap_.pop_back();
    }
  }

  void swap_at(std::size_t i, std::size_t j) {
    using std::swap;
    swap(heap_[i], heap_[j]);
    reindex(i);
    reindex(j);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before_(heap_[i], heap_[parent])) break;
      swap_at(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t best = i;
      if (l < heap_.size() && before_(heap_[l], heap_[best])) best = l;
      if (r < heap_.size() && before_(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      swap_at(i, best);
      i = best;
    }
  }

  std::size_t capacity_;
  Before before_;
  std::vector<T> heap_;
};

}  // namespace hrt::rt
