// Fixed-capacity binary heap.
//
// "The maximum number of threads in the whole system is determined at
// compile time, each local scheduler uses fixed size priority queues ...
// As a result, the time spent in a local scheduler invocation is bounded"
// (section 3.3).  The heap never allocates after construction; push beyond
// capacity fails explicitly.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace hrt::rt {

/// Before(a, b) == true means a is dequeued before b.
template <typename T, typename Before>
class BoundedHeap {
 public:
  explicit BoundedHeap(std::size_t capacity, Before before = Before())
      : capacity_(capacity), before_(std::move(before)) {
    heap_.reserve(capacity);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Returns false when full.
  [[nodiscard]] bool push(T v) {
    if (heap_.size() >= capacity_) return false;
    heap_.push_back(std::move(v));
    sift_up(heap_.size() - 1);
    return true;
  }

  [[nodiscard]] const T& top() const {
    if (heap_.empty()) throw std::logic_error("BoundedHeap: top of empty");
    return heap_.front();
  }

  T pop() {
    if (heap_.empty()) throw std::logic_error("BoundedHeap: pop of empty");
    T out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  /// Remove a specific element (linear scan).  Returns false if absent.
  bool remove(const T& v) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i] == v) {
        remove_at(i);
        return true;
      }
    }
    return false;
  }

  /// Remove and return the first element satisfying pred (heap order scan),
  /// or a default-constructed T if none matches.
  template <typename Pred>
  T extract_if(Pred pred) {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pred(heap_[i])) {
        T out = std::move(heap_[i]);
        remove_at(i);
        return out;
      }
    }
    return T{};
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const T& v : heap_) fn(v);
  }

  void clear() { heap_.clear(); }

 private:
  void remove_at(std::size_t i) {
    heap_[i] = std::move(heap_.back());
    heap_.pop_back();
    if (i < heap_.size()) {
      sift_down(i);
      sift_up(i);
    }
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before_(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      std::size_t best = i;
      if (l < heap_.size() && before_(heap_[l], heap_[best])) best = l;
      if (r < heap_.size() && before_(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::size_t capacity_;
  Before before_;
  std::vector<T> heap_;
};

}  // namespace hrt::rt
