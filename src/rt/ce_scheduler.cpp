#include "rt/ce_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "nautilus/executor.hpp"

namespace hrt::rt {

CyclicExecutiveScheduler::CyclicExecutiveScheduler(
    nk::Kernel& kernel, std::uint32_t cpu, CyclicExecutive executive,
    std::vector<PeriodicTask> tasks)
    : kernel_(kernel),
      cpu_(cpu),
      executive_(std::move(executive)),
      tasks_(std::move(tasks)),
      slot_threads_(tasks_.size(), nullptr),
      slop_(kernel.machine().spec().timer.apic_tick_ns + 1) {
  if (!executive_.valid_for(tasks_)) {
    throw std::invalid_argument(
        "CyclicExecutiveScheduler: executive does not fit the task set");
  }
  build_segments();
}

void CyclicExecutiveScheduler::build_segments() {
  segments_.clear();
  const sim::Nanos f = executive_.frame;
  for (std::size_t fi = 0; fi < executive_.frames.size(); ++fi) {
    sim::Nanos cursor = static_cast<sim::Nanos>(fi) * f;
    const sim::Nanos frame_end = cursor + f;
    for (const FrameEntry& e : executive_.frames[fi]) {
      segments_.push_back(
          Segment{cursor, e.duration, static_cast<int>(e.task)});
      cursor += e.duration;
    }
    if (cursor < frame_end) {
      segments_.push_back(Segment{cursor, frame_end - cursor, -1});
    }
  }
}

std::size_t CyclicExecutiveScheduler::slots_claimed() const {
  std::size_t n = 0;
  for (auto* t : slot_threads_) {
    if (t != nullptr) ++n;
  }
  return n;
}

void CyclicExecutiveScheduler::maybe_activate(sim::Nanos now) {
  if (epoch_ >= 0 || slots_claimed() != tasks_.size()) return;
  // Start at the next hyperperiod boundary, leaving at least half a frame
  // so the activating pass can finish first.
  const sim::Nanos h = executive_.hyperperiod;
  epoch_ = ((now + executive_.frame / 2 + h - 1) / h) * h;
}

const CyclicExecutiveScheduler::Segment& CyclicExecutiveScheduler::segment_at(
    sim::Nanos now) const {
  const sim::Nanos rel = (now - epoch_) % executive_.hyperperiod;
  // Binary search over the ordered segment list.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), rel,
      [](sim::Nanos v, const Segment& s) { return v < s.start; });
  if (it != segments_.begin()) --it;
  return *it;
}

sim::Nanos CyclicExecutiveScheduler::segment_end_wall(sim::Nanos now) const {
  const sim::Nanos rel = (now - epoch_) % executive_.hyperperiod;
  const Segment& s = segment_at(now);
  return now - rel + s.start + s.duration;
}

nk::PassResult CyclicExecutiveScheduler::pass(nk::PassReason /*reason*/,
                                              sim::Nanos now) {
  // Wake sleepers.
  for (auto it = sleepers_.begin(); it != sleepers_.end();) {
    if ((*it)->wake_time <= now) {
      (*it)->state = nk::Thread::State::kReady;
      aperiodic_.push_back(*it);
      it = sleepers_.erase(it);
    } else {
      ++it;
    }
  }

  nk::Thread* cur = exec_->current();
  const bool cur_runnable =
      cur != nullptr && cur->state == nk::Thread::State::kRunning;

  nk::Thread* next = nullptr;
  if (epoch_ >= 0 && now + slop_ >= epoch_) {
    // The timer's conservative rounding fires up to one tick early; treat a
    // boundary within that slop as crossed, or every pass would dispatch
    // the segment that is just ending.
    const Segment& s = segment_at(now + slop_ < epoch_ ? now : now + slop_);
    if (s.slot >= 0) {
      nk::Thread* owner = slot_threads_[static_cast<std::size_t>(s.slot)];
      if (owner != nullptr && owner->state != nk::Thread::State::kExited &&
          owner->state != nk::Thread::State::kSleeping) {
        next = owner;
      }
    }
  }
  if (next == nullptr) {
    // Idle segment (or inactive executive): run aperiodic work.
    if (cur_runnable && !cur->is_idle &&
        cur->constraints.cls == ConstraintClass::kAperiodic &&
        std::find(slot_threads_.begin(), slot_threads_.end(), cur) ==
            slot_threads_.end()) {
      next = cur;
    } else if (!aperiodic_.empty()) {
      next = aperiodic_.front();
      aperiodic_.pop_front();
    } else {
      next = kernel_.idle_thread(cpu_);
    }
  }
  // Re-queue a displaced aperiodic current.
  if (cur_runnable && cur != next && !cur->is_idle &&
      std::find(slot_threads_.begin(), slot_threads_.end(), cur) ==
          slot_threads_.end()) {
    aperiodic_.push_back(cur);
  }

  nk::PassResult res;
  res.next = next;
  if (next == nullptr || !next->is_realtime()) {
    while (!tasks_queue_.empty()) {
      res.task_ns += std::max<sim::Nanos>(tasks_queue_.front().size, 0);
      res.task_callbacks.push_back(std::move(tasks_queue_.front().fn));
      tasks_queue_.pop_front();
    }
  }
  const auto& cost = kernel_.machine().spec().cost;
  // A table walk is cheaper than a queue-based pass.
  res.pass_cycles = cost.sched_pass_base / 2;
  return res;
}

void CyclicExecutiveScheduler::arm_timer(sim::Nanos now) {
  auto& apic = kernel_.machine().cpu(cpu_).apic();
  sim::Nanos next = -1;
  if (epoch_ >= 0) {
    next = now + slop_ < epoch_ ? epoch_ : segment_end_wall(now + slop_);
  }
  for (nk::Thread* t : sleepers_) {
    if (next < 0 || t->wake_time < next) next = t->wake_time;
  }
  if (next < 0) {
    apic.cancel();
    return;
  }
  sim::Nanos delay = next - now;
  if (delay < 0) delay = 0;
  apic.arm_oneshot(delay);
}

bool CyclicExecutiveScheduler::change_constraints(nk::Thread& t,
                                                  const Constraints& c,
                                                  sim::Nanos now) {
  if (c.cls == ConstraintClass::kAperiodic) {
    // Release any slot the thread held.
    for (auto& s : slot_threads_) {
      if (s == &t) s = nullptr;
    }
    t.constraints = c;
    return true;
  }
  if (c.cls != ConstraintClass::kPeriodic) return false;  // no sporadics
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (slot_threads_[i] == nullptr && tasks_[i].period == c.period &&
        tasks_[i].slice == c.slice) {
      slot_threads_[i] = &t;
      t.constraints = c;
      t.rt = nk::Thread::RtState{};
      t.rt.gamma = now;
      maybe_activate(now);
      return true;
    }
  }
  return false;  // no matching unclaimed slot
}

void CyclicExecutiveScheduler::enqueue(nk::Thread* t) {
  t->state = nk::Thread::State::kReady;
  aperiodic_.push_back(t);
}

void CyclicExecutiveScheduler::on_sleep(nk::Thread& t, sim::Nanos wake) {
  t.wake_time = wake;
  sleepers_.push_back(&t);
}

void CyclicExecutiveScheduler::on_exit(nk::Thread& t) {
  for (auto& s : slot_threads_) {
    if (s == &t) s = nullptr;
  }
  auto it = std::find(aperiodic_.begin(), aperiodic_.end(), &t);
  if (it != aperiodic_.end()) aperiodic_.erase(it);
}

bool CyclicExecutiveScheduler::try_wake(nk::Thread& t) {
  auto it = std::find(sleepers_.begin(), sleepers_.end(), &t);
  if (it == sleepers_.end()) return false;
  sleepers_.erase(it);
  t.state = nk::Thread::State::kReady;
  aperiodic_.push_back(&t);
  return true;
}

void CyclicExecutiveScheduler::submit_task(nk::Task task) {
  tasks_queue_.push_back(std::move(task));
}

std::size_t CyclicExecutiveScheduler::thread_count() const {
  return slots_claimed() + aperiodic_.size() + sleepers_.size() +
         (exec_ != nullptr && exec_->current() != nullptr ? 1 : 0);
}

double CyclicExecutiveScheduler::admitted_utilization() const {
  double u = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (slot_threads_[i] != nullptr) {
      u += static_cast<double>(tasks_[i].slice) /
           static_cast<double>(tasks_[i].period);
    }
  }
  return u;
}

nk::Kernel::SchedulerFactory CyclicExecutiveScheduler::factory(
    CyclicExecutive executive, std::vector<PeriodicTask> tasks) {
  return [executive = std::move(executive),
          tasks = std::move(tasks)](nk::Kernel& k, std::uint32_t cpu) {
    return std::make_unique<CyclicExecutiveScheduler>(k, cpu, executive,
                                                      tasks);
  };
}

}  // namespace hrt::rt
