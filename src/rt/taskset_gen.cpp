#include "rt/taskset_gen.hpp"

#include <algorithm>
#include <cmath>

namespace hrt::rt {

std::vector<double> uunifast(std::size_t n, double total, sim::Rng& rng) {
  std::vector<double> u(n, 0.0);
  if (n == 0) return u;
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // next_sum = sum * r^(1/(n-i-1)) keeps the remaining mass uniform.
    const double r = rng.next_double();
    const double next_sum =
        sum * std::pow(r, 1.0 / static_cast<double>(n - i - 1));
    u[i] = sum - next_sum;
    sum = next_sum;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<PeriodicTask> generate_taskset(const TaskSetParams& params,
                                           sim::Rng& rng) {
  const std::vector<double> utils =
      uunifast(params.n, params.total_utilization, rng);
  std::vector<PeriodicTask> set;
  set.reserve(params.n);
  const double log_lo = std::log(static_cast<double>(params.min_period));
  const double log_hi = std::log(static_cast<double>(params.max_period));
  for (std::size_t i = 0; i < params.n; ++i) {
    double period_d =
        std::exp(log_lo + (log_hi - log_lo) * rng.next_double());
    auto period = static_cast<sim::Nanos>(period_d);
    if (params.period_granule > 0) {
      period = std::max(params.period_granule,
                        period / params.period_granule *
                            params.period_granule);
    }
    auto slice = static_cast<sim::Nanos>(static_cast<double>(period) *
                                         utils[i]);
    if (slice < params.min_slice) slice = params.min_slice;
    if (slice > period) slice = period;
    set.push_back(PeriodicTask{period, slice, 0});
  }
  return set;
}

}  // namespace hrt::rt
