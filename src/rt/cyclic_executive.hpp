// Cyclic executive construction (section 8, future work):
// "We are also exploring compiling parallel programs directly into cyclic
// executives, providing real-time behavior by static construction."
//
// Given a periodic task set, the builder picks a frame size f and statically
// assigns every job's execution to frames such that all deadlines are met by
// construction.  Classic frame constraints:
//   (1) f >= max slice            (a job chunk fits in a frame)  -- relaxed
//       here because chunks may split across frames; retained as a
//       preference when choosing f,
//   (2) f divides the hyperperiod,
//   (3) 2f - gcd(f, tau_i) <= tau_i for every task (a full frame fits
//       between release and deadline).
// Jobs are packed EDF-greedily into the frames of one hyperperiod.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/admission.hpp"
#include "sim/time.hpp"

namespace hrt::rt {

struct FrameEntry {
  std::size_t task;      // index into the input set
  sim::Nanos duration;   // how long this chunk runs within the frame
};

struct CyclicExecutive {
  sim::Nanos frame = 0;        // f
  sim::Nanos hyperperiod = 0;  // H
  std::vector<std::vector<FrameEntry>> frames;  // H / f frames

  /// Validate that each job of each task receives its full slice between
  /// release and deadline.  Used by tests and by the builder itself.
  [[nodiscard]] bool valid_for(const std::vector<PeriodicTask>& set) const;

  /// Which task chunk runs at offset `t` into the hyperperiod (-1 = idle).
  [[nodiscard]] int task_at(sim::Nanos t) const;
};

class CyclicExecutiveBuilder {
 public:
  /// Build a cyclic executive, or nullopt when the set is infeasible or no
  /// acceptable frame size exists.
  [[nodiscard]] static std::optional<CyclicExecutive> build(
      const std::vector<PeriodicTask>& set);

  /// All frame sizes satisfying the classic constraints, largest first.
  [[nodiscard]] static std::vector<sim::Nanos> candidate_frames(
      const std::vector<PeriodicTask>& set);
};

}  // namespace hrt::rt
