// System: the public facade tying together the simulated machine, the
// Nautilus-model kernel, and the hard real-time scheduler.
//
// Typical use (see examples/quickstart.cpp):
//
//   hrt::System sys;                     // Xeon Phi spec, default config
//   sys.boot();
//   auto* t = sys.spawn("worker", behavior, /*cpu=*/1);
//   // the behavior requests periodic constraints via
//   // Action::change_constraints(Constraints::periodic(phi, tau, sigma));
//   sys.run_for(sim::millis(100));
//   // inspect t->rt.arrivals / misses / miss_ns ...
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "global/global_scheduler.hpp"
#include "group/group.hpp"
#include "hw/machine.hpp"
#include "nautilus/kernel.hpp"
#include "resilience/storm.hpp"
#include "rt/local_scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace hrt {

class System {
 public:
  struct Options {
    hw::MachineSpec spec = hw::MachineSpec::phi();
    std::uint64_t seed = 42;
    rt::LocalScheduler::Config sched{};
    bool work_stealing = false;
    std::uint32_t interrupt_laden_cpus = 1;
    bool tpr_steering = true;
    bool calibrate_tsc = true;
    bool smi_enabled = true;  // overrides spec.smi.enabled when false
    /// Scheduler invariant audits (audit/auditor.hpp).  Off by default;
    /// HRT_FORCE_AUDIT builds force them on and throwing regardless.
    audit::Config audit{};
    /// Global placement subsystem (src/global/, docs/GLOBAL.md).
    /// interrupt_laden_cpus is synced from the option above at construction.
    global::Config placement_config{};
    /// SMI missing-time resilience (src/resilience/, docs/RESILIENCE.md).
    /// Off by default; when enabled the estimator knobs are copied into the
    /// per-CPU scheduler config and the storm controller starts at boot().
    resilience::Config resilience{};
    /// Telemetry flight recorder + metrics + SLO observability
    /// (src/telemetry/, docs/OBSERVABILITY.md).  Off by default: the kernel
    /// carries a null pointer and scheduling is bit-identical to a build
    /// without the subsystem.
    telemetry::Config telemetry{};
    /// Host worker threads driving the simulation (sim::ShardedEngine,
    /// docs/DESIGN.md "Sharded execution").  1 = classic serial engine;
    /// > 1 partitions per-CPU hardware across that many timer-wheel shards
    /// with serial-commit semantics — traces stay bit-identical to the
    /// serial engine at any thread count.
    unsigned sim_host_threads = 1;
    /// Conservative-lookahead override in ns; 0 derives it from
    /// spec.timer.ipi_latency_ns (the minimum cross-CPU event latency).
    sim::Nanos sim_lookahead_ns = 0;
  };

  System();  // Xeon Phi spec, default scheduler config
  explicit System(Options options);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Boot the kernel (idempotent guard inside the kernel) and, when
  /// resilience is enabled, start the storm controller's sampling loop.
  void boot() {
    kernel_->boot();
    storm_->start();
  }

  [[nodiscard]] hw::Machine& machine() { return *machine_; }
  [[nodiscard]] nk::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] sim::Engine& engine() { return machine_->engine(); }
  [[nodiscard]] grp::GroupRegistry& groups() { return *groups_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] audit::Auditor& auditor() { return *auditor_; }
  [[nodiscard]] global::GlobalScheduler& placement() { return *global_; }
  [[nodiscard]] resilience::StormController& resilience() { return *storm_; }
  [[nodiscard]] telemetry::Telemetry& telemetry() { return *telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const {
    return *telemetry_;
  }

  /// The concrete hard real-time scheduler on `cpu`.
  [[nodiscard]] rt::LocalScheduler& sched(std::uint32_t cpu) {
    return static_cast<rt::LocalScheduler&>(kernel_->scheduler(cpu));
  }

  /// Create an aperiodic thread bound to `cpu`.  Throws std::out_of_range
  /// on a CPU the machine does not have.
  nk::Thread* spawn(std::string name, std::unique_ptr<nk::Behavior> behavior,
                    std::uint32_t cpu,
                    rt::AperiodicPriority priority = rt::kDefaultPriority);

  /// Auto-placed spawn: the global placement engine picks the CPU for
  /// `constraints`, and the behavior is wrapped so the thread requests
  /// admission itself, retrying (with rebalancer help) on rejection before
  /// handing control to `behavior` (docs/GLOBAL.md).
  nk::Thread* spawn_auto(std::string name,
                         std::unique_ptr<nk::Behavior> behavior,
                         const rt::Constraints& constraints,
                         rt::AperiodicPriority priority = rt::kDefaultPriority);

  /// One thread of a batch spawn (spawn_batch).
  struct SpawnSpec {
    std::string name;
    std::unique_ptr<nk::Behavior> behavior;
    rt::Constraints constraints;  // aperiodic specs skip admission entirely
    rt::AperiodicPriority priority = rt::kDefaultPriority;
  };

  struct BatchSpawnResult {
    bool ok = false;
    /// Empty when !ok (all-or-nothing: a rejected batch creates nothing).
    std::vector<nk::Thread*> threads;  // threads[i] came from specs[i]
    std::vector<std::uint32_t> cpus;   // cpus[i] = threads[i]'s CPU
  };

  /// Batched spawn with group admission semantics: ONE placement pass over
  /// the whole vector (global::PlacementEngine::place_batch), pool-backed
  /// parked thread creation, and ONE admission analysis per target CPU
  /// (rt::LocalScheduler::reserve_batch) instead of one per spec.
  /// All-or-nothing: if any CPU rejects its subset, every reservation is
  /// rolled back and every thread returned to the pool — the system is left
  /// exactly as it was, and no thread was ever visible to a scheduler.  On
  /// success each RT thread commits its reserved constraints at first run
  /// (the reservation makes that commit an O(1) fast-path probe).
  BatchSpawnResult spawn_batch(std::vector<SpawnSpec> specs);

  /// Semi-partitioned overflow spawn: split a periodic constraint that fits
  /// no single CPU into pipeline chunks (global::split_task) and spawn one
  /// auto-admitted thread per chunk, named `name.0`, `name.1`, ...
  /// `make_inner(i)` supplies chunk i's behavior (default: busy loop).
  /// Empty result when no viable split exists.
  std::vector<nk::Thread*> spawn_split(
      const std::string& name, const rt::Constraints& constraints,
      const std::function<std::unique_ptr<nk::Behavior>(std::uint32_t)>&
          make_inner = nullptr);

  /// Group-aware auto placement: choose `n` distinct CPUs with headroom for
  /// `constraints` (interrupt-free preferred), create group `name`, and
  /// spawn one member per CPU running the full group admission protocol
  /// around `make_inner(i)`.  Empty result when the CPUs or the group name
  /// are unavailable.
  std::vector<nk::Thread*> spawn_group_auto(
      const std::string& name, std::uint32_t n,
      const rt::Constraints& constraints,
      const std::function<std::unique_ptr<nk::Behavior>(std::uint32_t)>&
          make_inner);

  /// Advance the simulation.
  void run_for(sim::Nanos d) { engine().run_until(engine().now() + d); }
  void run_until(sim::Nanos t) { engine().run_until(t); }

  /// Charge every CPU's open run span so per-thread CPU-time statistics are
  /// current as of now().  Call before reading Thread::total_cpu_ns for a
  /// thread that may still be running.
  void sync_accounting() {
    for (std::uint32_t c = 0; c < kernel_->num_cpus(); ++c) {
      kernel_->executor(c).sync_run_span();
    }
  }

 private:
  Options options_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<audit::Auditor> auditor_;  // before kernel_: schedulers use it
  std::unique_ptr<telemetry::Telemetry> telemetry_;  // before kernel_ too
  std::unique_ptr<global::GlobalScheduler> global_;  // ledger precedes kernel_
  std::unique_ptr<nk::Kernel> kernel_;
  std::unique_ptr<grp::GroupRegistry> groups_;
  std::unique_ptr<resilience::StormController> storm_;  // after kernel_
};

}  // namespace hrt
