// System: the public facade tying together the simulated machine, the
// Nautilus-model kernel, and the hard real-time scheduler.
//
// Typical use (see examples/quickstart.cpp):
//
//   hrt::System sys;                     // Xeon Phi spec, default config
//   sys.boot();
//   auto* t = sys.spawn("worker", behavior, /*cpu=*/1);
//   // the behavior requests periodic constraints via
//   // Action::change_constraints(Constraints::periodic(phi, tau, sigma));
//   sys.run_for(sim::millis(100));
//   // inspect t->rt.arrivals / misses / miss_ns ...
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "audit/auditor.hpp"
#include "group/group.hpp"
#include "hw/machine.hpp"
#include "nautilus/kernel.hpp"
#include "rt/local_scheduler.hpp"

namespace hrt {

class System {
 public:
  struct Options {
    hw::MachineSpec spec = hw::MachineSpec::phi();
    std::uint64_t seed = 42;
    rt::LocalScheduler::Config sched{};
    bool work_stealing = false;
    std::uint32_t interrupt_laden_cpus = 1;
    bool tpr_steering = true;
    bool calibrate_tsc = true;
    bool smi_enabled = true;  // overrides spec.smi.enabled when false
    /// Scheduler invariant audits (audit/auditor.hpp).  Off by default;
    /// HRT_FORCE_AUDIT builds force them on and throwing regardless.
    audit::Config audit{};
  };

  System();  // Xeon Phi spec, default scheduler config
  explicit System(Options options);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Boot the kernel (idempotent guard inside the kernel).
  void boot() { kernel_->boot(); }

  [[nodiscard]] hw::Machine& machine() { return *machine_; }
  [[nodiscard]] nk::Kernel& kernel() { return *kernel_; }
  [[nodiscard]] sim::Engine& engine() { return machine_->engine(); }
  [[nodiscard]] grp::GroupRegistry& groups() { return *groups_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] audit::Auditor& auditor() { return *auditor_; }

  /// The concrete hard real-time scheduler on `cpu`.
  [[nodiscard]] rt::LocalScheduler& sched(std::uint32_t cpu) {
    return static_cast<rt::LocalScheduler&>(kernel_->scheduler(cpu));
  }

  /// Create an aperiodic thread bound to `cpu`.
  nk::Thread* spawn(std::string name, std::unique_ptr<nk::Behavior> behavior,
                    std::uint32_t cpu,
                    rt::AperiodicPriority priority = rt::kDefaultPriority) {
    return kernel_->create_thread(std::move(name), std::move(behavior), cpu,
                                  priority);
  }

  /// Advance the simulation.
  void run_for(sim::Nanos d) { engine().run_until(engine().now() + d); }
  void run_until(sim::Nanos t) { engine().run_until(t); }

  /// Charge every CPU's open run span so per-thread CPU-time statistics are
  /// current as of now().  Call before reading Thread::total_cpu_ns for a
  /// thread that may still be running.
  void sync_accounting() {
    for (std::uint32_t c = 0; c < kernel_->num_cpus(); ++c) {
      kernel_->executor(c).sync_run_span();
    }
  }

 private:
  Options options_;
  std::unique_ptr<hw::Machine> machine_;
  std::unique_ptr<audit::Auditor> auditor_;  // before kernel_: schedulers use it
  std::unique_ptr<nk::Kernel> kernel_;
  std::unique_ptr<grp::GroupRegistry> groups_;
};

}  // namespace hrt
