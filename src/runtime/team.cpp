#include "runtime/team.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace hrt::nrt {

double Job::imbalance() const {
  if (worker_busy_.empty()) return 1.0;
  sim::Nanos max_busy = 0;
  sim::Nanos sum = 0;
  for (sim::Nanos b : worker_busy_) {
    max_busy = std::max(max_busy, b);
    sum += b;
  }
  const double mean =
      static_cast<double>(sum) / static_cast<double>(worker_busy_.size());
  return mean > 0 ? static_cast<double>(max_busy) / mean : 1.0;
}

/// Per-worker execution: wait for the next job, drain chunks, signal done.
/// Holds shared ownership of the team state so the TeamRuntime handle may
/// be destroyed first.
class TeamWorker final : public nk::Behavior {
 public:
  TeamWorker(std::shared_ptr<TeamState> state, std::uint32_t rank)
      : state_(std::move(state)), rank_(rank) {}

  nk::Action next(nk::ThreadCtx& ctx) override {
    TeamState& ts = *state_;
    for (;;) {
      switch (stage_) {
        case Stage::kAwaitJob: {
          if (job_idx_ < ts.jobs.size()) {
            stage_ = Stage::kBegin;
            continue;
          }
          if (ts.stopping) return nk::Action::exit();
          // Spin until the next submission (workers under a periodic
          // constraint keep their class; spinning costs the simulator
          // nothing while the flag is clear).
          return nk::Action::spin_until(&ts.flag_for_job(job_idx_));
        }
        case Stage::kBegin: {
          Job& job = *ts.jobs[job_idx_];
          if (job.start_ < 0) {
            job.start_ = ctx.kernel.machine().engine().now();
          }
          if (job.dispatch_ == Dispatch::kStatic) {
            const std::uint64_t per =
                (job.total_iters_ + job.workers_ - 1) / job.workers_;
            lo_ = std::min<std::uint64_t>(rank_ * per, job.total_iters_);
            hi_ = std::min<std::uint64_t>(lo_ + per, job.total_iters_);
            stage_ = Stage::kRunChunk;
          } else {
            stage_ = Stage::kGrabChunk;
          }
          continue;
        }
        case Stage::kGrabChunk: {
          Job& job = *ts.jobs[job_idx_];
          const auto& spec = ctx.kernel.machine().spec();
          const sim::Nanos atomic_ns = spec.freq.cycles_to_ns_ceil(
              spec.cost.atomic_rmw + spec.cost.cacheline_transfer);
          stage_ = Stage::kRunChunk;
          return nk::Action::atomic(
              &job.counter_line_, atomic_ns, [this, &job](nk::ThreadCtx&) {
                lo_ = job.next_index_;
                hi_ = std::min(lo_ + job.chunk_, job.total_iters_);
                job.next_index_ = hi_;
              });
        }
        case Stage::kRunChunk: {
          Job& job = *ts.jobs[job_idx_];
          if (lo_ >= hi_) {
            stage_ = Stage::kFinish;
            continue;
          }
          // Static mode also proceeds chunk-at-a-time through its range so
          // long jobs stay preemptable at chunk granularity.
          const std::uint64_t end = job.dispatch_ == Dispatch::kStatic
                                        ? std::min(lo_ + job.chunk_, hi_)
                                        : hi_;
          sim::Nanos work = 0;
          for (std::uint64_t i = lo_; i < end; ++i) {
            work += job.iter_cost_(i);
          }
          const std::uint64_t count = end - lo_;
          lo_ = end;
          if (job.dispatch_ == Dispatch::kGuided && lo_ >= hi_) {
            stage_ = Stage::kGrabChunk;
          }
          if (work < 1) work = 1;
          return nk::Action::compute(
              work, [this, &job, count, work](nk::ThreadCtx&) {
                job.iters_run_ += count;
                job.worker_busy_[rank_] += work;
              });
        }
        case Stage::kFinish: {
          Job& job = *ts.jobs[job_idx_];
          const auto& spec = ctx.kernel.machine().spec();
          const sim::Nanos atomic_ns =
              spec.freq.cycles_to_ns_ceil(spec.cost.atomic_rmw);
          stage_ = Stage::kAwaitJob;
          ++job_idx_;
          return nk::Action::atomic(
              &job.counter_line_, atomic_ns, [&job](nk::ThreadCtx& c) {
                if (++job.workers_done_ == job.workers_) {
                  job.finish_ = c.kernel.machine().engine().now();
                }
              });
        }
      }
    }
  }

  [[nodiscard]] std::string describe() const override { return "nrt-worker"; }

 private:
  enum class Stage : std::uint8_t {
    kAwaitJob,
    kBegin,
    kGrabChunk,
    kRunChunk,
    kFinish,
  };

  std::shared_ptr<TeamState> state_;
  std::uint32_t rank_;
  Stage stage_ = Stage::kAwaitJob;
  std::size_t job_idx_ = 0;
  std::uint64_t lo_ = 0;
  std::uint64_t hi_ = 0;
};

TeamRuntime::TeamRuntime(System& sys, Options options)
    : sys_(sys),
      options_(options),
      state_(std::make_shared<TeamState>(sys.kernel())) {
  // Atomic: bench harnesses construct independent Systems (and teams) from
  // worker threads in parallel.
  static std::atomic<std::uint64_t> team_counter{0};
  const std::uint64_t team_seq =
      team_counter.fetch_add(1, std::memory_order_relaxed);
  state_->workers = options_.workers;
  if (options_.first_cpu + options_.workers > sys_.machine().num_cpus()) {
    throw std::invalid_argument("TeamRuntime: not enough CPUs");
  }
  grp::ThreadGroup* group = nullptr;
  if (options_.hard_rt) {
    group = sys_.groups().create("nrt-team-" + std::to_string(team_seq),
                                 options_.workers);
    if (group == nullptr) {
      throw std::logic_error("TeamRuntime: group name collision");
    }
  }
  for (std::uint32_t r = 0; r < options_.workers; ++r) {
    auto worker = std::make_unique<TeamWorker>(state_, r);
    std::unique_ptr<nk::Behavior> behavior;
    if (options_.hard_rt) {
      auto wrapped = std::make_unique<grp::GroupAdmitThenBehavior>(
          *group,
          rt::Constraints::periodic(options_.phase, options_.period,
                                    options_.slice),
          std::move(worker));
      admissions_.push_back(wrapped.get());
      behavior = std::move(wrapped);
    } else {
      behavior = std::move(worker);
    }
    threads_.push_back(sys_.spawn("nrt" + std::to_string(r),
                                  std::move(behavior),
                                  options_.first_cpu + r));
  }
}

TeamRuntime::~TeamRuntime() {
  state_->stopping = true;
  // Wake spinners parked on the next-job flag so they observe the poison.
  state_->flag_for_job(state_->jobs.size()).set();
}

Job& TeamRuntime::parallel_for(
    std::uint64_t iterations,
    std::function<sim::Nanos(std::uint64_t)> iter_cost, Dispatch dispatch,
    std::uint64_t chunk) {
  auto job = std::make_unique<Job>();
  job->total_iters_ = iterations;
  job->iter_cost_ = std::move(iter_cost);
  job->dispatch_ = dispatch;
  job->chunk_ = chunk == 0 ? 1 : chunk;
  job->workers_ = options_.workers;
  job->worker_busy_.assign(options_.workers, 0);
  state_->jobs.push_back(std::move(job));
  // Release any workers spinning for this submission.
  state_->flag_for_job(state_->jobs.size() - 1).set();
  return *state_->jobs.back();
}

bool TeamRuntime::wait(const Job& job, sim::Nanos timeout) {
  const sim::Nanos cap = sys_.engine().now() + timeout;
  while (!job.done() && sys_.engine().now() < cap) {
    sys_.engine().run_until(
        std::min(cap, sys_.engine().now() + sim::millis(2)));
  }
  return job.done();
}

bool TeamRuntime::admission_ok() const {
  if (!options_.hard_rt) return true;
  for (const auto* a : admissions_) {
    if (!a->protocol().done() || !a->protocol().succeeded()) return false;
  }
  return true;
}

}  // namespace hrt::nrt
