// A miniature data-parallel run-time system, in the HRT mold.
//
// The paper's premise (section 2) is that parallel run-times — Legion,
// NESL, OpenMP ports — fuse with the kernel framework and drive scheduling
// directly.  This module is such a run-time in miniature: a persistent
// worker team pinned one-per-CPU that executes parallel-for jobs, with
//   * static or guided (shared-counter) chunk dispatch,
//   * an optional hard real-time group mode in which the team is admitted
//     with a common periodic constraint, so gang scheduling and
//     administrative throttling apply to the whole team at once, and
//   * per-worker accounting so load imbalance is measurable.
//
// Lifetime: worker threads share ownership of the team state, so a
// TeamRuntime may be destroyed while the simulation continues; destruction
// poisons the job queue and the workers exit at their next dispatch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "group/group_admission.hpp"
#include "rt/system.hpp"

namespace hrt::nrt {

enum class Dispatch : std::uint8_t {
  kStatic,  // iteration space pre-split into equal worker ranges
  kGuided,  // workers grab fixed-size chunks from a shared counter
};

class TeamRuntime;
struct TeamState;

/// A submitted parallel-for.  Poll done() while advancing the simulation.
class Job {
 public:
  [[nodiscard]] bool done() const { return workers_done_ == workers_; }
  [[nodiscard]] sim::Nanos start_time() const { return start_; }
  [[nodiscard]] sim::Nanos finish_time() const { return finish_; }
  [[nodiscard]] sim::Nanos makespan() const { return finish_ - start_; }
  [[nodiscard]] std::uint64_t iterations_run() const { return iters_run_; }
  /// Max over workers of busy time divided by the mean: 1.0 = perfectly
  /// balanced.
  [[nodiscard]] double imbalance() const;

 private:
  friend class TeamRuntime;
  friend class TeamWorker;

  std::uint64_t total_iters_ = 0;
  std::function<sim::Nanos(std::uint64_t)> iter_cost_;
  Dispatch dispatch_ = Dispatch::kStatic;
  std::uint64_t chunk_ = 1;
  std::uint32_t workers_ = 0;

  // Shared dispatch state.
  nk::SeqResource counter_line_;
  std::uint64_t next_index_ = 0;

  // Progress.
  std::uint32_t workers_done_ = 0;
  std::uint64_t iters_run_ = 0;
  sim::Nanos start_ = -1;
  sim::Nanos finish_ = -1;
  std::vector<sim::Nanos> worker_busy_;
};

/// State shared between the TeamRuntime handle and its worker behaviors,
/// so either side may outlive the other.
struct TeamState {
  explicit TeamState(nk::Kernel& kernel) : kernel(kernel) {}

  nk::Kernel& kernel;
  std::uint32_t workers = 0;
  bool stopping = false;
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<std::unique_ptr<nk::WaitFlag>> job_flags;

  nk::WaitFlag& flag_for_job(std::size_t idx) {
    while (job_flags.size() <= idx) {
      job_flags.push_back(std::make_unique<nk::WaitFlag>(kernel));
    }
    return *job_flags[idx];
  }
};

class TeamRuntime {
 public:
  struct Options {
    std::uint32_t workers = 4;
    std::uint32_t first_cpu = 1;
    bool hard_rt = false;          // admit the team as an RT group
    sim::Nanos period = sim::micros(1000);
    sim::Nanos slice = sim::micros(800);
    sim::Nanos phase = sim::millis(3);
  };

  /// Spawns the worker threads immediately (system must be booted).  In
  /// hard_rt mode the workers first run group admission; check
  /// admission_ok() after the first job (or after run-in time).
  TeamRuntime(System& sys, Options options);

  /// Poisons the job queue: workers exit at their next dispatch.  Safe
  /// while the simulation keeps running (state is shared with the workers).
  ~TeamRuntime();

  TeamRuntime(const TeamRuntime&) = delete;
  TeamRuntime& operator=(const TeamRuntime&) = delete;

  /// Submit a parallel-for of `iterations`, each costing
  /// `iter_cost(index)` of simulated compute.  Jobs execute in submission
  /// order.  The returned Job lives as long as the team state.
  Job& parallel_for(std::uint64_t iterations,
                    std::function<sim::Nanos(std::uint64_t)> iter_cost,
                    Dispatch dispatch = Dispatch::kStatic,
                    std::uint64_t chunk = 16);

  /// Convenience: fixed cost per iteration.
  Job& parallel_for(std::uint64_t iterations, sim::Nanos cost_each,
                    Dispatch dispatch = Dispatch::kStatic,
                    std::uint64_t chunk = 16) {
    return parallel_for(
        iterations, [cost_each](std::uint64_t) { return cost_each; },
        dispatch, chunk);
  }

  /// Advance the simulation until the job completes (or the timeout of
  /// simulated time elapses).  Returns job.done().
  bool wait(const Job& job, sim::Nanos timeout = sim::seconds(10));

  [[nodiscard]] std::uint32_t workers() const { return options_.workers; }
  [[nodiscard]] bool admission_ok() const;
  [[nodiscard]] const std::vector<nk::Thread*>& worker_threads() const {
    return threads_;
  }

 private:
  System& sys_;
  Options options_;
  std::shared_ptr<TeamState> state_;
  std::vector<nk::Thread*> threads_;
  std::vector<grp::GroupAdmitThenBehavior*> admissions_;
};

}  // namespace hrt::nrt
