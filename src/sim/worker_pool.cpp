#include "sim/worker_pool.hpp"

namespace hrt::sim {

namespace {
// Spin budget before a waiter parks on its condition variable.  Large
// enough to cover the inter-window gap of a busy ShardedEngine run, small
// enough that an idle pool costs microseconds, not milliseconds.
constexpr int kSpinIters = 4000;
}  // namespace

WorkerPool::WorkerPool(unsigned threads) {
  if (threads > 1) {
    workers_.reserve(threads - 1);
    for (unsigned w = 0; w < threads - 1; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void WorkerPool::record_exception() {
  std::lock_guard<std::mutex> lock(err_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void WorkerPool::run_share(unsigned self) {
  const auto& fn = *fn_;
  try {
    if (dynamic_) {
      for (;;) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n_) break;
        fn(i);
      }
    } else {
      const std::size_t stride = workers_.size() + 1;
      for (std::size_t i = self; i < n_; i += stride) fn(i);
    }
  } catch (...) {
    record_exception();
  }
}

void WorkerPool::worker_main(unsigned self) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin first; park on the cv only if no work shows up promptly.
    bool woke = false;
    for (int i = 0; i < kSpinIters; ++i) {
      if (epoch_.load(std::memory_order_acquire) != seen ||
          stop_.load(std::memory_order_acquire)) {
        woke = true;
        break;
      }
    }
    if (!woke) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_acquire) != seen ||
               stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = epoch_.load(std::memory_order_acquire);
    run_share(self);
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last one out: wake the caller (lock guards against a missed wakeup
      // between the caller's predicate check and its wait).
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_one();
    }
  }
}

void WorkerPool::dispatch(std::size_t n,
                          const std::function<void(std::size_t)>& fn,
                          bool dynamic) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    first_error_ = nullptr;
  }
  if (workers_.empty()) {
    // Inline path: no atomics, no barrier.
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      record_exception();
    }
  } else {
    fn_ = &fn;
    n_ = n;
    dynamic_ = dynamic;
    next_.store(0, std::memory_order_relaxed);
    active_.store(static_cast<unsigned>(workers_.size()),
                  std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      epoch_.fetch_add(1, std::memory_order_release);
    }
    cv_.notify_all();
    // The caller is the last stripe / another dynamic claimant.
    run_share(static_cast<unsigned>(workers_.size()));
    // Spin-then-park until every worker has checked out.
    bool done = false;
    for (int i = 0; i < kSpinIters; ++i) {
      if (active_.load(std::memory_order_acquire) == 0) {
        done = true;
        break;
      }
    }
    if (!done) {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return active_.load(std::memory_order_acquire) == 0;
      });
    }
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    err = first_error_;
    first_error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  dispatch(n, fn, /*dynamic=*/true);
}

void WorkerPool::for_stripes(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  dispatch(n, fn, /*dynamic=*/false);
}

}  // namespace hrt::sim
