// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic element of the simulation (cost jitter, SMI arrival,
// boot skew, work-stealing victim selection) draws from an Rng seeded
// explicitly, so that simulations are exactly reproducible run-to-run.
// The generator is xoshiro256** (public domain, Blackman & Vigna).
#pragma once

#include <cstdint>
#include <cmath>

namespace hrt::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Standard normal via Box-Muller (one value per call; simple and adequate
  /// for jitter modeling).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.283185307179586 * u2);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = next_double();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// A cost with multiplicative jitter: base * (1 + N(0, rel_std)), clamped
  /// to be at least min_fraction of the base.  Models the "fuzz" in
  /// interrupt/scheduler path lengths seen on the paper's oscilloscope traces.
  std::int64_t jittered(std::int64_t base, double rel_std,
                        double min_fraction = 0.5) {
    if (base <= 0 || rel_std <= 0.0) return base;
    const double v = static_cast<double>(base) * (1.0 + normal(0.0, rel_std));
    const double floor_v = static_cast<double>(base) * min_fraction;
    return static_cast<std::int64_t>(v < floor_v ? floor_v : v);
  }

  /// Derive an independent stream (e.g., one per CPU) from this seed space.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (stream_id * 0x9e3779b97f4a7c15ULL));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace hrt::sim
