#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace hrt::sim {

namespace {
// Min-heap ordering for late-event entries: (when, band, seq).
constexpr auto kLateAfter = [](const auto& a, const auto& b) {
  if (a.when != b.when) return a.when > b.when;
  if (a.band != b.band) return a.band > b.band;
  return a.seq > b.seq;
};
}  // namespace

ShardedEngine::ShardedEngine(const Config& cfg) {
  domains_ = std::max(1u, cfg.domains);
  std::uint32_t shards = std::max(1u, cfg.shards);
  shards = std::min(shards, domains_);
  lookahead_ = std::max<Nanos>(1, cfg.lookahead);
  mode_ = cfg.commit;
  domain_msg_seq_.assign(domains_, 0);
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto sh = std::make_unique<Shard>();
    Engine& e = sh->engine;
    e.owner_ = this;
    e.shard_index_ = s;
    if (mode_ == CommitMode::kSerial) {
      // One committed clock, one FIFO counter: the ingredients of exact
      // serial equivalence.
      e.now_ptr_ = &now_;
      e.seq_ptr_ = &seq_;
    } else {
      e.now_ptr_ = &sh->local_now;
    }
    shards_.push_back(std::move(sh));
  }
  if (shards_.size() > 1) {
    pool_ = std::make_unique<WorkerPool>(
        static_cast<unsigned>(shards_.size()));
  }
}

ShardedEngine::~ShardedEngine() = default;

std::uint32_t ShardedEngine::shard_of(Domain d) const {
  const auto s_count = static_cast<std::uint32_t>(shards_.size());
  if (d == kGlobalDomain || s_count == 1 || domains_ <= 1) return 0;
  const std::uint64_t cpu = d - 1;  // CPU domains are 1..domains_-1
  const auto s = static_cast<std::uint32_t>(cpu * s_count / (domains_ - 1));
  return std::min(s, s_count - 1);
}

ShardedEngine::EventRef ShardedEngine::schedule_at(Domain d, Nanos when,
                                                   Callback cb,
                                                   EventBand band) {
  const std::uint32_t s = shard_of(d);
  return EventRef{s, shards_[s]->engine.schedule_at(when, std::move(cb), band)};
}

void ShardedEngine::cancel(EventRef& ref) {
  if (!ref.valid()) return;
  shards_[ref.shard]->engine.cancel(ref.id);
  ref.reset();
}

void ShardedEngine::post(Domain src, Domain dst, Nanos when, Callback cb,
                         EventBand band) {
  if (mode_ == CommitMode::kSerial || !in_window_) {
    // Serial-commit (or idle): plain scheduling on the destination shard is
    // already exact — the late-event heap catches anything inside an
    // in-flight window, and the shared FIFO counter keeps the global order.
    engine_for(dst).schedule_at(when, std::move(cb), band);
    return;
  }
  // Parallel-commit window: the destination shard may already be past
  // `when` locally, so the lookahead contract is load-bearing here.
  if (when < window_horizon_) {
    throw std::logic_error(
        "ShardedEngine::post: event below the window horizon violates the "
        "conservative lookahead");
  }
  Shard& sh = *shards_[shard_of(src)];
  sh.outbox.push_back(
      Msg{when, domain_msg_seq_[src]++, src, dst,
          static_cast<std::uint8_t>(band), std::move(cb)});
}

void ShardedEngine::note_schedule(std::uint32_t shard, Nanos when) {
  Shard& sh = *shards_[shard];
  if (when < sh.cached_next) sh.cached_next = when;
}

void ShardedEngine::note_late(std::uint32_t shard, std::uint32_t idx,
                              std::uint32_t gen, Nanos when,
                              std::uint8_t band, std::uint64_t seq) {
  Shard& sh = *shards_[shard];
  sh.late.push_back(LateEntry{when, seq, idx, gen, band});
  std::push_heap(sh.late.begin(), sh.late.end(), kLateAfter);
}

Nanos ShardedEngine::global_next() const {
  Nanos t = Engine::kNoEvent;
  for (const auto& sh : shards_) t = std::min(t, sh->cached_next);
  return t;
}

void ShardedEngine::stage_shard(Shard& sh, Nanos horizon) {
  sh.staged.clear();
  sh.cursor = 0;
  sh.window_executed = 0;
  if (sh.cached_next < horizon) {
    sh.cached_next = sh.engine.stage_until(horizon, sh.staged);
  }
}

bool ShardedEngine::peek_shard(Shard& sh, Cand& out) {
  Engine& e = sh.engine;
  // Staged-run head, lazily reclaiming commit-time cancellations.
  while (sh.cursor < sh.staged.size()) {
    const std::uint32_t idx = sh.staged[sh.cursor];
    if (!e.pool_[idx].cancelled) break;
    e.free_staged_cancelled(idx);
    ++sh.cursor;
  }
  // Late-heap top, same treatment.
  while (!sh.late.empty()) {
    const LateEntry& t = sh.late.front();
    assert(e.pool_[t.idx].gen == t.gen);
    if (!e.pool_[t.idx].cancelled) break;
    e.free_staged_cancelled(t.idx);
    std::pop_heap(sh.late.begin(), sh.late.end(), kLateAfter);
    sh.late.pop_back();
  }
  const bool has_staged = sh.cursor < sh.staged.size();
  const bool has_late = !sh.late.empty();
  if (!has_staged && !has_late) return false;
  bool use_late = has_late;
  if (has_staged && has_late) {
    const auto& n = e.pool_[sh.staged[sh.cursor]];
    const LateEntry& t = sh.late.front();
    use_late = (t.when != n.when)   ? t.when < n.when
               : (t.band != n.band) ? t.band < n.band
                                    : t.seq < n.seq;
  }
  if (use_late) {
    const LateEntry& t = sh.late.front();
    out = Cand{t.when, t.seq, t.idx, t.band, true};
  } else {
    const std::uint32_t idx = sh.staged[sh.cursor];
    const auto& n = e.pool_[idx];
    out = Cand{n.when, n.seq, idx, n.band, false};
  }
  return true;
}

void ShardedEngine::consume(Shard& sh, const Cand& c) {
  if (c.from_late) {
    std::pop_heap(sh.late.begin(), sh.late.end(), kLateAfter);
    sh.late.pop_back();
  } else {
    ++sh.cursor;
  }
}

std::uint64_t ShardedEngine::commit_serial(Nanos horizon) {
  for (auto& sh : shards_) sh->engine.commit_horizon_ = horizon;
  std::uint64_t n = 0;
  try {
    for (;;) {
      // S-way merge of staged runs and late heaps by (when, band, seq).
      // S is small (<= host cores), so a linear scan per event beats
      // maintaining a loser tree.
      Cand best;
      Shard* best_sh = nullptr;
      for (auto& sp : shards_) {
        Cand c;
        if (!peek_shard(*sp, c)) continue;
        const bool wins =
            best_sh == nullptr || c.when < best.when ||
            (c.when == best.when &&
             (c.band < best.band ||
              (c.band == best.band && c.seq < best.seq)));
        if (wins) {
          best = c;
          best_sh = sp.get();
        }
      }
      if (best_sh == nullptr) break;
      consume(*best_sh, best);
      now_ = best.when;
      Callback cb = best_sh->engine.take_staged(best.idx);
      ++n;
      cb();
    }
  } catch (...) {
    for (auto& sh : shards_) {
      sh->engine.commit_horizon_ = Engine::kNotCommitting;
    }
    throw;
  }
  for (auto& sh : shards_) sh->engine.commit_horizon_ = Engine::kNotCommitting;
  return n;
}

void ShardedEngine::commit_shard(Shard& sh, Nanos horizon) {
  Engine& e = sh.engine;
  e.commit_horizon_ = horizon;
  try {
    Cand c;
    while (peek_shard(sh, c)) {
      consume(sh, c);
      sh.local_now = c.when;
      Callback cb = e.take_staged(c.idx);
      ++sh.window_executed;
      cb();
    }
  } catch (...) {
    e.commit_horizon_ = Engine::kNotCommitting;
    throw;
  }
  e.commit_horizon_ = Engine::kNotCommitting;
}

void ShardedEngine::drain_outboxes() {
  inject_scratch_.clear();
  for (auto& sh : shards_) {
    for (auto& m : sh->outbox) inject_scratch_.push_back(std::move(m));
    sh->outbox.clear();
  }
  if (inject_scratch_.empty()) return;
  // Sort by (when, band, src domain, per-source FIFO) — a total order that
  // does not depend on the domain→shard mapping, so injection (and the
  // destination-local seq numbers it assigns) is identical across shard
  // counts.
  std::sort(inject_scratch_.begin(), inject_scratch_.end(),
            [](const Msg& a, const Msg& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.band != b.band) return a.band < b.band;
              if (a.src != b.src) return a.src < b.src;
              return a.src_seq < b.src_seq;
            });
  for (auto& m : inject_scratch_) {
    engine_for(m.dst).schedule_at(m.when, std::move(m.cb),
                                  static_cast<EventBand>(m.band));
  }
  inject_scratch_.clear();
}

std::uint64_t ShardedEngine::run_window(Nanos horizon) {
  const std::size_t s_count = shards_.size();
  in_window_ = true;
  window_horizon_ = horizon;
  std::uint64_t executed = 0;
  try {
    unsigned busy = 0;
    for (const auto& sh : shards_) busy += (sh->cached_next < horizon) ? 1 : 0;
    if (mode_ == CommitMode::kSerial) {
      if (pool_ && busy >= 2) {
        ++parallel_dispatches_;
        pool_->for_stripes(s_count, [&](std::size_t i) {
          stage_shard(*shards_[i], horizon);
        });
      } else {
        // Sparse window: dispatching the pool would cost more than the
        // staging itself.
        for (auto& sh : shards_) stage_shard(*sh, horizon);
      }
      executed = commit_serial(horizon);
    } else {
      // Stage and commit fuse into one dispatch: a shard's commit touches
      // only its own wheel/state, so it need not wait for other shards'
      // staging.  Cross-shard sends are buffered until the barrier below.
      auto job = [&](std::size_t i) {
        Shard& sh = *shards_[i];
        stage_shard(sh, horizon);
        commit_shard(sh, horizon);
      };
      if (pool_ && busy >= 2) {
        ++parallel_dispatches_;
        pool_->for_stripes(s_count, job);
      } else {
        for (std::size_t i = 0; i < s_count; ++i) job(i);
      }
      for (const auto& sh : shards_) {
        executed += sh->window_executed;
        if (sh->local_now > now_) now_ = sh->local_now;
      }
      drain_outboxes();
    }
  } catch (...) {
    for (auto& sh : shards_) {
      sh->engine.commit_horizon_ = Engine::kNotCommitting;
    }
    in_window_ = false;
    throw;
  }
  in_window_ = false;
  ++windows_;
  return executed;
}

std::uint64_t ShardedEngine::run_until(Nanos t_end) {
  if (running_) {
    throw std::logic_error("ShardedEngine: re-entrant run_until");
  }
  running_ = true;
  std::uint64_t total = 0;
  try {
    for (;;) {
      const Nanos T = global_next();
      if (T == Engine::kNoEvent || T > t_end) break;
      // Events at exactly t_end still run: the final window's horizon is
      // t_end + 1 (exclusive).
      const Nanos horizon =
          (t_end - T >= lookahead_) ? T + lookahead_ : t_end + 1;
      total += run_window(horizon);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (now_ < t_end) now_ = t_end;
  if (mode_ == CommitMode::kParallel) {
    for (auto& sh : shards_) sh->local_now = now_;
  }
  return total;
}

std::uint64_t ShardedEngine::run_all() {
  if (running_) {
    throw std::logic_error("ShardedEngine: re-entrant run_all");
  }
  running_ = true;
  std::uint64_t total = 0;
  try {
    for (;;) {
      const Nanos T = global_next();
      if (T == Engine::kNoEvent) break;
      const Nanos horizon = (T > Engine::kNoEvent - lookahead_)
                                ? Engine::kNoEvent
                                : T + lookahead_;
      total += run_window(horizon);
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (mode_ == CommitMode::kParallel) {
    for (auto& sh : shards_) sh->local_now = now_;
  }
  return total;
}

bool ShardedEngine::step() {
  if (running_) throw std::logic_error("ShardedEngine: re-entrant step");
  running_ = true;
  bool ran = false;
  try {
    for (;;) {
      const Nanos T = global_next();
      if (T == Engine::kNoEvent) break;
      // A stale cached_next can yield an empty window; loop until an event
      // actually runs (each window tightens cached_next, so this makes
      // progress).
      if (run_window(T + 1) > 0) {
        ran = true;
        break;
      }
    }
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  if (ran && mode_ == CommitMode::kParallel) {
    for (auto& sh : shards_) {
      if (sh->local_now < now_) sh->local_now = now_;
    }
  }
  return ran;
}

bool ShardedEngine::empty() const { return pending_count() == 0; }

std::uint64_t ShardedEngine::pending_count() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->engine.live_count_;
  return n;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->engine.executed_;
  return n;
}

}  // namespace hrt::sim
