#include "sim/trace_export.hpp"

#include <array>

namespace hrt::sim {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPin:
      return "pin";
    case TraceKind::kThreadActive:
      return "thread_active";
    case TraceKind::kThreadInactive:
      return "thread_inactive";
    case TraceKind::kIrqEnter:
      return "irq_enter";
    case TraceKind::kIrqExit:
      return "irq_exit";
    case TraceKind::kSchedPass:
      return "sched_pass";
    case TraceKind::kSwitch:
      return "switch";
    case TraceKind::kCustom:
      return "custom";
  }
  return "unknown";
}

void export_csv(const Trace& trace, std::ostream& os) {
  os << "time_ns,cpu,kind,value\n";
  for (const TraceRecord& r : trace.records()) {
    os << r.time << ',' << r.cpu << ',' << trace_kind_name(r.kind) << ','
       << r.value << '\n';
  }
}

void export_pins_vcd(const Trace& trace, std::uint32_t cpu, std::ostream& os,
                     const std::string& module_name) {
  os << "$timescale 1ns $end\n";
  os << "$scope module " << module_name << " $end\n";
  std::array<char, 8> ids{};
  for (int pin = 0; pin < 8; ++pin) {
    ids[static_cast<std::size_t>(pin)] = static_cast<char>('!' + pin);
    os << "$var wire 1 " << ids[static_cast<std::size_t>(pin)] << " pin"
       << pin << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  os << "$dumpvars\n";
  for (int pin = 0; pin < 8; ++pin) {
    os << '0' << ids[static_cast<std::size_t>(pin)] << '\n';
  }
  os << "$end\n";

  Nanos last_time = -1;
  for (const TraceRecord& r : trace.records()) {
    if (r.kind != TraceKind::kPin || r.cpu != cpu) continue;
    const int pin = static_cast<int>(r.value >> 1);
    const int level = static_cast<int>(r.value & 1);
    if (pin < 0 || pin >= 8) continue;
    if (r.time != last_time) {
      os << '#' << r.time << '\n';
      last_time = r.time;
    }
    os << level << ids[static_cast<std::size_t>(pin)] << '\n';
  }
}

}  // namespace hrt::sim
