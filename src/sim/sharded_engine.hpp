// Sharded deterministic discrete-event engine.
//
// Partitions the event population into per-shard timer wheels (sim::Engine
// instances) and advances simulated time in conservative-lookahead windows:
// if L is the minimum latency of any cross-shard interaction (for a
// simulated machine, hw::MachineSpec::ipi_latency_ns), then every event a
// callback executing at time t can create on *another* shard lands at
// t' >= t + L.  Events in the window [T, T + L) — where T is the global
// next-event time — therefore cannot be created by other events in the same
// window across shards, so all shards can harvest their window contents
// concurrently without seeing each other's effects early.
//
// Execution of a window has two phases:
//
//   STAGE  (parallel)  Each shard pops every pending event with
//                      when < horizon from its own wheel, in (when, band,
//                      seq) order, into a per-shard staged run.  Touches
//                      only shard-local state; embarrassingly parallel.
//   COMMIT             Two modes:
//     * kSerial   — the coordinator merges the staged runs (plus any
//                   late-scheduled events, see below) by (when, band, seq)
//                   and executes callbacks one at a time on one thread.
//                   Because every shard shares the owner's committed clock
//                   and one global FIFO counter, the execution order is
//                   *exactly* the order a single serial sim::Engine would
//                   produce — bit-identical traces by construction, for
//                   arbitrary callbacks touching arbitrary shared state
//                   (the full simulated kernel).  Parallelism comes from
//                   the stage phase: wheel maintenance — slot draining,
//                   far-heap migration, heap pops, tombstone reclamation —
//                   is the bulk of engine work and runs on all cores.
//     * kParallel — each shard executes its own staged run concurrently.
//                   Requires shard-confined callbacks (a callback may only
//                   touch state and schedule events belonging to its own
//                   shard's domains; cross-shard communication must go
//                   through post()).  Used by the scaling benchmark and
//                   any workload partitioned by construction.
//
// Late events — scheduled by an executing callback for a time still inside
// the current window — are intercepted at schedule time (the shard's
// containers for [T, horizon) were already drained) and pushed onto a
// per-shard late-event min-heap that the commit merge consults alongside
// the staged runs.  This is what makes the serial-commit mode exact: an
// event scheduled at time t for time t' ∈ [t, horizon) is executed in its
// correct (when, band, seq) slot within the same window, just as the serial
// engine would.
//
// Cross-shard messages in parallel-commit mode are buffered in per-shard
// outboxes during the window and injected at the barrier, sorted by
// (when, band, src_domain, src_seq) — an order independent of the
// domain→shard mapping, so parallel-commit results are identical across
// shard counts for shard-confined workloads.
//
// Domains: scheduling is addressed by a small integer domain, not a shard.
// Domain 0 is the global domain (machine-wide hardware: SMI source, GPIO,
// devices) pinned to shard 0; a simulated machine maps CPU c to domain
// c + 1.  Domains are block-partitioned across shards so the domain→shard
// mapping is stable and cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/worker_pool.hpp"

namespace hrt::sim {

class ShardedEngine {
 public:
  using Domain = std::uint32_t;
  static constexpr Domain kGlobalDomain = 0;

  enum class CommitMode : std::uint8_t {
    kSerial,    // exact serial equivalence; parallel staging only
    kParallel,  // parallel callback execution; shard-confined workloads
  };

  struct Config {
    std::uint32_t shards = 1;   // host-parallel wheel shards (>= 1)
    std::uint32_t domains = 1;  // scheduling domains incl. kGlobalDomain
    Nanos lookahead = 1;        // min cross-shard event latency (> 0)
    CommitMode commit = CommitMode::kSerial;
  };

  explicit ShardedEngine(const Config& cfg);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint32_t num_domains() const { return domains_; }
  [[nodiscard]] Nanos lookahead() const { return lookahead_; }
  [[nodiscard]] CommitMode commit_mode() const { return mode_; }

  /// Stable domain → shard mapping (block partition; domain 0 → shard 0).
  [[nodiscard]] std::uint32_t shard_of(Domain d) const;

  /// Direct access to a shard's engine.  Scheduling on it participates in
  /// the sharded run (its run_*/now()/seq draw from this owner), so
  /// components can hold a plain `sim::Engine&` and never know they are
  /// sharded.
  [[nodiscard]] Engine& shard(std::uint32_t s) { return shards_[s]->engine; }
  [[nodiscard]] Engine& engine_for(Domain d) {
    return shards_[shard_of(d)]->engine;
  }

  /// Cancellation handle: EventIds are shard-local, so the shard index
  /// travels with the id.
  struct EventRef {
    std::uint32_t shard = 0;
    EventId id;
    [[nodiscard]] bool valid() const { return id.valid(); }
    void reset() { id.reset(); }
  };

  EventRef schedule_at(Domain d, Nanos when, Callback cb,
                       EventBand band = EventBand::kDefault);
  EventRef schedule_after(Domain d, Nanos delay, Callback cb,
                          EventBand band = EventBand::kDefault) {
    return schedule_at(d, now_ + delay, std::move(cb), band);
  }
  void cancel(EventRef& ref);

  /// Cross-domain event hand-off.  In serial-commit mode (or outside a run)
  /// this is plain scheduling on the destination shard.  In parallel-commit
  /// windows it buffers the event in the source shard's outbox for sorted
  /// injection at the window barrier; `when` must respect the lookahead
  /// (when >= window horizon) or std::logic_error is thrown.
  void post(Domain src, Domain dst, Nanos when, Callback cb,
            EventBand band = EventBand::kDefault);

  /// Same semantics as Engine::run_until / run_all: events at exactly t_end
  /// run; afterwards now() == t_end.
  std::uint64_t run_until(Nanos t_end);
  std::uint64_t run_all();

  /// Executes every event at the earliest pending timestamp (one window of
  /// width 1 ns).  NOTE: unlike Engine::step this may run several events if
  /// they tie on `when`.  Returns false when no events are pending.
  bool step();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::uint64_t pending_count() const;
  [[nodiscard]] std::uint64_t events_executed() const;

  // Introspection for benches/tests.
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t parallel_stage_dispatches() const {
    return parallel_dispatches_;
  }

 private:
  friend class Engine;

  // A callback scheduled this event into the in-flight commit window; the
  // merge consults these heaps alongside the staged runs.
  struct LateEntry {
    Nanos when = 0;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;
    std::uint32_t gen = 0;
    std::uint8_t band = 0;
  };

  // Parallel-commit cross-shard message, buffered until the window barrier.
  struct Msg {
    Nanos when = 0;
    std::uint64_t src_seq = 0;  // per-source-domain FIFO counter
    Domain src = 0;
    Domain dst = 0;
    std::uint8_t band = 0;
    Callback cb;
  };

  struct Shard {
    Engine engine;
    Nanos local_now = 0;  // parallel-commit per-shard clock
    // Exact next-event time after stage_until; a monotone lower bound
    // otherwise (schedules min it in, cancels may leave it stale-low,
    // which costs at most one empty window).
    Nanos cached_next = Engine::kNoEvent;
    std::vector<std::uint32_t> staged;  // this window's run (pool indices)
    std::size_t cursor = 0;
    std::vector<LateEntry> late;  // min-heap by (when, band, seq)
    std::vector<Msg> outbox;      // parallel-commit cross-shard sends
    std::uint64_t window_executed = 0;
    // Keep concurrently-staged shards off each other's cache lines.
    alignas(64) char pad_[1] = {};
  };

  // Engine hooks (called from schedule_impl via friendship).
  void note_schedule(std::uint32_t shard, Nanos when);
  void note_late(std::uint32_t shard, std::uint32_t idx, std::uint32_t gen,
                 Nanos when, std::uint8_t band, std::uint64_t seq);

  [[nodiscard]] Nanos global_next() const;
  std::uint64_t run_window(Nanos horizon);
  void stage_shard(Shard& sh, Nanos horizon);
  std::uint64_t commit_serial(Nanos horizon);
  void commit_shard(Shard& sh, Nanos horizon);
  void drain_outboxes();

  // Next candidate (staged-run head vs late-heap top) for one shard;
  // lazily reclaims tombstones.  Returns false if the shard's window work
  // is exhausted.
  struct Cand {
    Nanos when = 0;
    std::uint64_t seq = 0;
    std::uint32_t idx = 0;
    std::uint8_t band = 0;
    bool from_late = false;
  };
  static bool peek_shard(Shard& sh, Cand& out);
  static void consume(Shard& sh, const Cand& c);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<WorkerPool> pool_;
  std::uint32_t domains_ = 1;
  Nanos lookahead_ = 1;
  CommitMode mode_ = CommitMode::kSerial;

  Nanos now_ = 0;
  std::uint64_t seq_ = 1;  // shared FIFO counter (serial-commit mode)
  bool running_ = false;
  bool in_window_ = false;
  Nanos window_horizon_ = 0;
  std::vector<std::uint64_t> domain_msg_seq_;  // per-domain post() FIFO
  std::vector<Msg> inject_scratch_;

  std::uint64_t windows_ = 0;
  std::uint64_t parallel_dispatches_ = 0;
};

}  // namespace hrt::sim
