// Move-only callable with small-buffer optimization.
//
// The event engine runs tens of millions of callbacks per simulated second;
// `std::function` heap-allocates for any capture larger than two pointers and
// that allocation dominated the old engine's profile.  Callback keeps the
// callable inline when it fits (every capture in this codebase does — they
// are a `this` pointer plus a few scalars) and only falls back to the heap
// for oversized captures, so the common path never touches the allocator.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hrt::sim {

class Callback {
 public:
  // Inline budget: enough for a `this` pointer plus several captured scalars.
  static constexpr std::size_t kInlineSize = 48;

  Callback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      using Holder = std::unique_ptr<Fn>;
      static_assert(sizeof(Holder) <= kInlineSize);
      ::new (static_cast<void*>(buf_))
          Holder(std::make_unique<Fn>(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<std::unique_ptr<Fn>*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) std::unique_ptr<Fn>(
            std::move(*static_cast<std::unique_ptr<Fn>*>(src)));
      },
      [](void* p) { static_cast<std::unique_ptr<Fn>*>(p)->reset(); },
  };

  void move_from(Callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buf_, other.buf_);
      ops_->destroy(other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hrt::sim
