// Persistent host-thread worker pool shared by everything in the repo that
// wants host parallelism: the ShardedEngine's stage/commit phases and the
// bench sweeps' cell fan-out (bench::parallel_for_index).  One pool, one
// --threads knob.
//
// Dispatch is a phase barrier: the caller publishes a job, wakes the
// workers, participates in the job itself, then waits for the last worker
// to check out.  Workers spin briefly before falling back to a condition
// variable, so back-to-back dispatches (the ShardedEngine issues one per
// lookahead window) avoid futex round-trips while long idle gaps cost no
// CPU.
//
// Two sharing disciplines:
//   * parallel_for  — dynamic: indices are claimed from a shared atomic
//     counter; best when per-index cost varies (bench sweep cells).
//   * for_stripes   — static: worker w takes indices w, w+P, w+2P, ...;
//     deterministic index→thread assignment with zero claim contention,
//     which is what the ShardedEngine wants (shard s always staged/committed
//     by the same thread, so shard state never migrates between caches).
//
// Exceptions thrown by the body are captured and the first one is rethrown
// on the calling thread after the barrier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hrt::sim {

class WorkerPool {
 public:
  /// `threads` is the total parallelism including the calling thread; the
  /// pool spawns threads-1 workers.  0 or 1 means "run everything inline".
  explicit WorkerPool(unsigned threads);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Run fn(i) for i in [0, n) with dynamic index claiming.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Run fn(i) for i in [0, n) with static striping (worker w → i ≡ w mod P).
  void for_stripes(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void dispatch(std::size_t n, const std::function<void(std::size_t)>& fn,
                bool dynamic);
  void run_share(unsigned self);
  void worker_main(unsigned self);
  void record_exception();

  // Job slot: written by the caller before the epoch bump, read by workers
  // after observing the bump (release/acquire pairs make this race-free).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  bool dynamic_ = false;
  std::atomic<std::size_t> next_{0};

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> active_{0};
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable cv_;        // workers wait for a new epoch
  std::condition_variable done_cv_;   // caller waits for active_ == 0

  std::mutex err_mu_;
  std::exception_ptr first_error_;

  std::vector<std::thread> workers_;
};

}  // namespace hrt::sim
