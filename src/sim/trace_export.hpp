// Trace export: CSV for analysis scripts, and VCD (value change dump) so
// GPIO/scheduler traces open in standard waveform viewers — the software
// equivalent of saving the oscilloscope capture from section 5.2.
#pragma once

#include <ostream>
#include <string>

#include "sim/trace.hpp"

namespace hrt::sim {

/// Write every record as "time_ns,cpu,kind,value" rows.
void export_csv(const Trace& trace, std::ostream& os);

/// Write the kPin records of one CPU as an 8-signal VCD.  `timescale_ns`
/// sets the VCD timescale (1 = nanosecond resolution).
void export_pins_vcd(const Trace& trace, std::uint32_t cpu, std::ostream& os,
                     const std::string& module_name = "gpio");

/// Human-readable kind name (stable; used by the CSV header and tests).
[[nodiscard]] const char* trace_kind_name(TraceKind kind);

}  // namespace hrt::sim
