#include "sim/legacy_engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace hrt::sim {

EventId LegacyEngine::schedule_at(Nanos when, Callback cb, EventBand band) {
  if (when < now_) {
    throw std::logic_error("LegacyEngine::schedule_at: time in the past");
  }
  const std::uint64_t id = next_seq_++;
  queue_.push(Event{when, static_cast<std::uint8_t>(band), id, id,
                    std::move(cb)});
  live_.insert(id);
  return EventId{id};
}

void LegacyEngine::cancel(EventId id) {
  // Stale ids (already run, already cancelled, never issued) are no-ops;
  // only a live id becomes a tombstone, so empty() stays exact.
  if (id.valid() && live_.erase(id.value) != 0) {
    cancelled_.insert(id.value);
  }
}

bool LegacyEngine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; we must copy the callback out before pop.
    Event ev = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.when >= now_);
    live_.erase(ev.id);
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

std::uint64_t LegacyEngine::run_until(Nanos t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > t_end) break;
    if (step()) ++n;
  }
  // Advance the clock to the horizon even if the queue ran dry earlier.
  if (now_ < t_end) now_ = t_end;
  return n;
}

std::uint64_t LegacyEngine::run_all() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace hrt::sim
