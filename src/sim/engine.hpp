// Discrete-event simulation engine.
//
// The engine owns the global "true" timeline of the simulated machine in
// nanoseconds.  Hardware components schedule events (timer expiry, SMI
// assertion, action completion) against it.  Events at the same timestamp
// are ordered by an explicit priority band first (so that, e.g., an SMI
// freeze at time T is applied before a work completion at T), then FIFO.
//
// Implementation: a hierarchical timer wheel.  Events land in one of three
// places:
//
//   * ready heap — events earlier than the wheel window (already-drained
//     slots); a small binary heap ordered by (when, band, seq).
//   * wheel      — kNumSlots circular buckets of kSlotNs each (~4 ms span);
//     each bucket is an intrusive doubly-linked list, with an occupancy
//     bitmap for O(1) find-next-bucket.
//   * far heap   — events beyond the wheel horizon; migrated into the wheel
//     in amortized O(log n) as the window advances.
//
// Events live in a pooled free-list arena with generation-tagged slots, so
// EventId validation needs no hash lookup: schedule_at and cancel are O(1)
// amortized.  Cancellation matters — preemption constantly invalidates
// in-flight completion events — so a wheel-resident event is unlinked and
// reclaimed immediately, while heap-resident events are tombstoned and
// reclaimed lazily at pop.  Callbacks use a small-buffer-optimized Callback
// (sim/callback.hpp): no per-event heap allocation on the common path.
//
// The seed `std::priority_queue` implementation is preserved as
// sim/legacy_engine.hpp for benchmarking and cross-checking.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace hrt::sim {

class ShardedEngine;

/// Ordering bands for simultaneous events.  Lower runs first.
enum class EventBand : std::uint8_t {
  kSmi = 0,       // stop-the-world freezes preempt everything
  kHardware = 1,  // timer expiry, interrupt wire assertions
  kDefault = 2,   // completions, software callbacks
  kObserver = 3,  // measurement hooks that must see settled state
};

/// Opaque handle for cancelling a scheduled event.  Value 0 is "none".
/// Encodes (generation << 32 | pool slot + 1); a stale handle — the event
/// already ran, was cancelled, or the slot was reused — never matches.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  void reset() { value = 0; }
};

class Engine {
 public:
  using Callback = sim::Callback;

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.  For a free-standing engine this is its own
  /// clock; for a shard owned by a ShardedEngine it reads the owner's
  /// committed clock (serial-commit) or the shard-local clock
  /// (parallel-commit) through `now_ptr_`.
  [[nodiscard]] Nanos now() const { return *now_ptr_; }

  /// Schedule `cb` at absolute time `when` (>= now).  Returns a handle that
  /// may be passed to cancel() until the event has run.
  EventId schedule_at(Nanos when, Callback cb,
                      EventBand band = EventBand::kDefault);

  /// Schedule `cb` after a relative delay (>= 0).
  EventId schedule_after(Nanos delay, Callback cb,
                         EventBand band = EventBand::kDefault) {
    return schedule_at(now() + delay, std::move(cb), band);
  }

  /// Cancel a pending event.  Safe to call with an already-run, already-
  /// cancelled, or invalid id (it becomes a no-op).  O(1).
  void cancel(EventId id);

  /// Run events until the queue is empty or `t_end` is passed.  Events at
  /// exactly t_end still run.  Returns the number of events executed.
  /// On a shard owned by a ShardedEngine this delegates to the owner so
  /// existing call sites (rt::System, runtime host loops) work unchanged.
  std::uint64_t run_until(Nanos t_end);

  /// Run until the queue drains entirely.
  std::uint64_t run_all();

  /// Execute exactly one event if present.  Returns false if queue empty.
  /// (On an owned shard: runs the earliest pending window via the owner.)
  bool step();

  /// Exact: counts scheduled events that have neither run nor been
  /// cancelled.  Stale cancels cannot skew it (generation tags reject them).
  /// On an owned shard these aggregate across the whole sharded machine.
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t pending_count() const;

  /// If an event callback throws, the exception propagates out of run_*;
  /// the engine remains usable.

 private:
  friend class ShardedEngine;

  /// Sentinel returned by stage_until when the shard has no pending events.
  static constexpr Nanos kNoEvent = std::numeric_limits<Nanos>::max();
  /// commit_horizon_ value meaning "not inside a commit window".
  static constexpr Nanos kNotCommitting = std::numeric_limits<Nanos>::min();
  // 2^12 slots of 2^10 ns: ~1 us buckets spanning ~4.2 ms.  Timer and
  // completion events land in the wheel; multi-ms device/SMI events take
  // the far heap and migrate as the window advances.
  static constexpr int kSlotShift = 10;
  static constexpr Nanos kSlotNs = Nanos{1} << kSlotShift;
  static constexpr std::uint32_t kNumSlots = 1u << 12;
  static constexpr std::uint32_t kSlotMask = kNumSlots - 1;
  static constexpr Nanos kSpanNs = kSlotNs * kNumSlots;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  enum class Loc : std::uint8_t {
    kFree,    // on the free list
    kWheel,   // linked into a wheel slot
    kFar,     // in the far (overflow) heap
    kReady,   // in the ready heap
    kStaged,  // extracted for an owner's commit window (no container)
  };

  struct Node {
    Nanos when = 0;
    std::uint64_t seq = 0;  // global FIFO tie-break
    Callback cb;
    std::uint32_t next = kNil;  // wheel slot list linkage
    std::uint32_t prev = kNil;
    std::uint32_t gen = 0;
    std::uint8_t band = 0;
    Loc loc = Loc::kFree;
    bool cancelled = false;  // tombstone for heap-resident nodes
  };

  [[nodiscard]] static std::uint64_t encode(std::uint32_t idx,
                                            std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(idx) + 1);
  }

  // --- ShardedEngine staging interface (private; accessed via friendship) --

  /// Shared implementation behind schedule_at / schedule_keyed: `seq` is the
  /// FIFO tie-break to stamp on the node.
  EventId schedule_impl(Nanos when, std::uint64_t seq, Callback cb,
                        EventBand band);

  /// Inject an event with a pre-assigned sequence number (cross-shard
  /// mailbox delivery must reproduce the serial engine's global FIFO order).
  EventId schedule_keyed(Nanos when, std::uint64_t seq, Callback cb,
                         EventBand band) {
    return schedule_impl(when, seq, std::move(cb), band);
  }

  /// Pop every pending event with when < horizon, in (when, band, seq)
  /// order, marking each kStaged and appending its pool index to `out`.
  /// Returns the exact `when` of the next remaining event (>= horizon), or
  /// kNoEvent if the shard drained.  Safe to run concurrently with other
  /// shards' stage_until — touches only this shard's containers.
  Nanos stage_until(Nanos horizon, std::vector<std::uint32_t>& out);

  /// Detach and return the callback of a live staged node, freeing the slot.
  Callback take_staged(std::uint32_t idx);

  /// Reclaim a staged node that was cancelled between staging and commit.
  void free_staged_cancelled(std::uint32_t idx);

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  void link_wheel(std::uint32_t idx);
  void unlink_wheel(std::uint32_t idx);
  void drain_slot(std::uint32_t slot, Nanos slot_start);
  [[nodiscard]] std::uint32_t find_occupied_from(std::uint32_t slot) const;
  void purge_cancelled_ready_top();
  /// Advance wheel state until the ready heap holds a live event.
  /// Returns false when no live events exist anywhere.
  bool refill_ready();

  // Ready/far heaps store pool indices; ordering lives in the pool nodes.
  [[nodiscard]] bool ready_after(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] bool far_after(std::uint32_t a, std::uint32_t b) const;
  void ready_push(std::uint32_t idx);
  std::uint32_t ready_pop();
  void far_push(std::uint32_t idx);
  std::uint32_t far_pop();

  Nanos now_ = 0;
  Nanos wheel_base_ = 0;  // slot-aligned start of the undrained window
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;

  // Sharding hooks.  A free-standing engine points these at its own fields;
  // a ShardedEngine repoints them so every shard shares one committed clock
  // and (in serial-commit mode) one global FIFO counter — which is what
  // makes sharded execution bit-identical to the serial engine.
  const Nanos* now_ptr_ = &now_;
  std::uint64_t* seq_ptr_ = &next_seq_;
  ShardedEngine* owner_ = nullptr;
  std::uint32_t shard_index_ = 0;
  // While the owner commits a window [T, horizon), events scheduled below
  // the horizon bypass the containers: they are born kStaged and handed to
  // the owner's late-event heap so the in-flight merge still sees them.
  Nanos commit_horizon_ = kNotCommitting;
  std::uint64_t live_count_ = 0;   // scheduled, not run, not cancelled
  std::uint64_t wheel_count_ = 0;  // live nodes currently wheel-resident

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::array<std::uint32_t, kNumSlots> slot_head_;
  std::array<std::uint64_t, kNumSlots / 64> occupied_;
  std::vector<std::uint32_t> ready_;
  std::vector<std::uint32_t> far_;
};

}  // namespace hrt::sim
