// Discrete-event simulation engine.
//
// The engine owns the global "true" timeline of the simulated machine in
// nanoseconds.  Hardware components schedule events (timer expiry, SMI
// assertion, action completion) against it.  Events at the same timestamp
// are ordered by an explicit priority band first (so that, e.g., an SMI
// freeze at time T is applied before a work completion at T), then FIFO.
//
// Implementation: a hierarchical timer wheel.  Events land in one of three
// places:
//
//   * ready heap — events earlier than the wheel window (already-drained
//     slots); a small binary heap ordered by (when, band, seq).
//   * wheel      — kNumSlots circular buckets of kSlotNs each (~4 ms span);
//     each bucket is an intrusive doubly-linked list, with an occupancy
//     bitmap for O(1) find-next-bucket.
//   * far heap   — events beyond the wheel horizon; migrated into the wheel
//     in amortized O(log n) as the window advances.
//
// Events live in a pooled free-list arena with generation-tagged slots, so
// EventId validation needs no hash lookup: schedule_at and cancel are O(1)
// amortized.  Cancellation matters — preemption constantly invalidates
// in-flight completion events — so a wheel-resident event is unlinked and
// reclaimed immediately, while heap-resident events are tombstoned and
// reclaimed lazily at pop.  Callbacks use a small-buffer-optimized Callback
// (sim/callback.hpp): no per-event heap allocation on the common path.
//
// The seed `std::priority_queue` implementation is preserved as
// sim/legacy_engine.hpp for benchmarking and cross-checking.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace hrt::sim {

/// Ordering bands for simultaneous events.  Lower runs first.
enum class EventBand : std::uint8_t {
  kSmi = 0,       // stop-the-world freezes preempt everything
  kHardware = 1,  // timer expiry, interrupt wire assertions
  kDefault = 2,   // completions, software callbacks
  kObserver = 3,  // measurement hooks that must see settled state
};

/// Opaque handle for cancelling a scheduled event.  Value 0 is "none".
/// Encodes (generation << 32 | pool slot + 1); a stale handle — the event
/// already ran, was cancelled, or the slot was reused — never matches.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
  void reset() { value = 0; }
};

class Engine {
 public:
  using Callback = sim::Callback;

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Nanos now() const { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now).  Returns a handle that
  /// may be passed to cancel() until the event has run.
  EventId schedule_at(Nanos when, Callback cb,
                      EventBand band = EventBand::kDefault);

  /// Schedule `cb` after a relative delay (>= 0).
  EventId schedule_after(Nanos delay, Callback cb,
                         EventBand band = EventBand::kDefault) {
    return schedule_at(now_ + delay, std::move(cb), band);
  }

  /// Cancel a pending event.  Safe to call with an already-run, already-
  /// cancelled, or invalid id (it becomes a no-op).  O(1).
  void cancel(EventId id);

  /// Run events until the queue is empty or `t_end` is passed.  Events at
  /// exactly t_end still run.  Returns the number of events executed.
  std::uint64_t run_until(Nanos t_end);

  /// Run until the queue drains entirely.
  std::uint64_t run_all();

  /// Execute exactly one event if present.  Returns false if queue empty.
  bool step();

  /// Exact: counts scheduled events that have neither run nor been
  /// cancelled.  Stale cancels cannot skew it (generation tags reject them).
  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t pending_count() const { return live_count_; }

  /// If an event callback throws, the exception propagates out of run_*;
  /// the engine remains usable.

 private:
  // 2^12 slots of 2^10 ns: ~1 us buckets spanning ~4.2 ms.  Timer and
  // completion events land in the wheel; multi-ms device/SMI events take
  // the far heap and migrate as the window advances.
  static constexpr int kSlotShift = 10;
  static constexpr Nanos kSlotNs = Nanos{1} << kSlotShift;
  static constexpr std::uint32_t kNumSlots = 1u << 12;
  static constexpr std::uint32_t kSlotMask = kNumSlots - 1;
  static constexpr Nanos kSpanNs = kSlotNs * kNumSlots;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  enum class Loc : std::uint8_t {
    kFree,   // on the free list
    kWheel,  // linked into a wheel slot
    kFar,    // in the far (overflow) heap
    kReady,  // in the ready heap
  };

  struct Node {
    Nanos when = 0;
    std::uint64_t seq = 0;  // global FIFO tie-break
    Callback cb;
    std::uint32_t next = kNil;  // wheel slot list linkage
    std::uint32_t prev = kNil;
    std::uint32_t gen = 0;
    std::uint8_t band = 0;
    Loc loc = Loc::kFree;
    bool cancelled = false;  // tombstone for heap-resident nodes
  };

  [[nodiscard]] static std::uint64_t encode(std::uint32_t idx,
                                            std::uint32_t gen) {
    return (static_cast<std::uint64_t>(gen) << 32) |
           (static_cast<std::uint64_t>(idx) + 1);
  }

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);
  void link_wheel(std::uint32_t idx);
  void unlink_wheel(std::uint32_t idx);
  void drain_slot(std::uint32_t slot, Nanos slot_start);
  [[nodiscard]] std::uint32_t find_occupied_from(std::uint32_t slot) const;
  void purge_cancelled_ready_top();
  /// Advance wheel state until the ready heap holds a live event.
  /// Returns false when no live events exist anywhere.
  bool refill_ready();

  // Ready/far heaps store pool indices; ordering lives in the pool nodes.
  [[nodiscard]] bool ready_after(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] bool far_after(std::uint32_t a, std::uint32_t b) const;
  void ready_push(std::uint32_t idx);
  std::uint32_t ready_pop();
  void far_push(std::uint32_t idx);
  std::uint32_t far_pop();

  Nanos now_ = 0;
  Nanos wheel_base_ = 0;  // slot-aligned start of the undrained window
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t live_count_ = 0;   // scheduled, not run, not cancelled
  std::uint64_t wheel_count_ = 0;  // live nodes currently wheel-resident

  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNil;
  std::array<std::uint32_t, kNumSlots> slot_head_;
  std::array<std::uint64_t, kNumSlots / 64> occupied_;
  std::vector<std::uint32_t> ready_;
  std::vector<std::uint32_t> far_;
};

}  // namespace hrt::sim
